package rdffrag

// Status-code regression tests for the /update endpoint. The handler
// once collapsed every error to 400; these pin one response class per
// failure mode so a busy or broken server is never reported as a client
// mistake: 400 only for the client's own errors (unparsable N-Triples,
// bad op), 503 for shutdown/overload, 501 for a server without an update
// sink, 5xx timeouts for deadline/cancel, and 500 for internal failures
// such as a write-ahead log that rejects appends.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdffrag/internal/serve"
)

func updateTestServer(t *testing.T) *Server {
	t.Helper()
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return dep.StartServer(ServerConfig{Workers: 2})
}

// doUpdate drives the handler directly so tests can control the request
// context (httptest servers always hand handlers a live context).
func doUpdate(srv *Server, method, target, body string, ctx context.Context) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

func TestHandleUpdateStatusCodes(t *testing.T) {
	srv := updateTestServer(t)
	defer srv.Close()

	insert := "<HTTP_S> <name> \"Http S\" .\n"

	// 200: a good insert, then a good delete through both spellings.
	rec := doUpdate(srv, http.MethodPost, "/update", insert, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d, body %s", rec.Code, rec.Body)
	}
	var res struct {
		Added   int `json:"added"`
		Deleted int `json:"deleted"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || res.Added != 1 {
		t.Fatalf("insert response %s (err %v), want added=1", rec.Body, err)
	}
	rec = doUpdate(srv, http.MethodPost, "/update?op=delete", insert, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("op=delete: status %d, body %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || res.Deleted != 1 {
		t.Fatalf("op=delete response %s (err %v), want deleted=1", rec.Body, err)
	}
	doUpdate(srv, http.MethodPost, "/update", insert, nil)
	rec = doUpdate(srv, http.MethodDelete, "/update", insert, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE method: status %d, body %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || res.Deleted != 1 {
		t.Fatalf("DELETE response %s (err %v), want deleted=1", rec.Body, err)
	}

	// 400: only the client's own mistakes.
	for name, tc := range map[string]struct{ method, target, body string }{
		"garbage-insert":   {http.MethodPost, "/update", "<a> <b> nonsense\n"},
		"garbage-delete":   {http.MethodPost, "/update?op=delete", "<a> <b> nonsense\n"},
		"empty-batch":      {http.MethodPost, "/update", "# just a comment\n"},
		"unknown-op":       {http.MethodPost, "/update?op=upsert", insert},
		"contradicting-op": {http.MethodDelete, "/update?op=insert", insert},
	} {
		if rec := doUpdate(srv, tc.method, tc.target, tc.body, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, rec.Code, rec.Body)
		}
	}

	// 405: not an update verb at all.
	if rec := doUpdate(srv, http.MethodGet, "/update", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", rec.Code)
	}

	// 504 / 408: the client's deadline or disconnect, never a 400.
	expired, cancelExp := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelExp()
	if rec := doUpdate(srv, http.MethodPost, "/update", insert, expired); rec.Code != http.StatusGatewayTimeout {
		t.Errorf("expired deadline: status %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if rec := doUpdate(srv, http.MethodPost, "/update", insert, canceled); rec.Code != http.StatusRequestTimeout {
		t.Errorf("canceled: status %d, want 408 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandleUpdateClosedServer503: shutdown is a retryable 5xx — the
// regression this file exists for reported it as the client's fault.
func TestHandleUpdateClosedServer503(t *testing.T) {
	srv := updateTestServer(t)
	srv.Close()
	rec := doUpdate(srv, http.MethodPost, "/update", "<S> <name> \"S\" .\n", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed server: status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandleUpdateNoSink501: a server constructed without an update sink
// reports the capability gap, not a bad request.
func TestHandleUpdateNoSink501(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	srv := &Server{dep: dep, inner: serve.New(dep.engine, serve.Config{})}
	defer srv.Close()
	rec := doUpdate(srv, http.MethodPost, "/update", "<S> <name> \"S\" .\n", nil)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("no sink: status %d, want 501 (body %s)", rec.Code, rec.Body)
	}
}

// TestHandleUpdateWALFailure500: a durable server whose WAL rejects the
// append must answer 500 — the batch was never wrong, the server is —
// for inserts and deletes alike.
func TestHandleUpdateWALFailure500(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	d, err := OpenDurable(DurabilityConfig{Dir: t.TempDir(), Sync: "always"})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if err := d.Bootstrap(dep); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	srv := dep.StartServer(ServerConfig{Workers: 2, Durable: d})
	defer srv.Close()

	// Seed a triple while the log is healthy so the delete has a target.
	if rec := doUpdate(srv, http.MethodPost, "/update", "<WalS> <name> \"Wal S\" .\n", nil); rec.Code != http.StatusOK {
		t.Fatalf("seed insert: status %d, body %s", rec.Code, rec.Body)
	}

	// Poison the log: every further append fails, so acks must stop.
	d.log.Close()
	rec := doUpdate(srv, http.MethodPost, "/update", "<WalT> <name> \"Wal T\" .\n", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("insert on poisoned WAL: status %d, want 500 (body %s)", rec.Code, rec.Body)
	}
	rec = doUpdate(srv, http.MethodDelete, "/update", "<WalS> <name> \"Wal S\" .\n", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("delete on poisoned WAL: status %d, want 500 (body %s)", rec.Code, rec.Body)
	}
	// Nothing un-logged may have mutated state: the failed insert's
	// subject must be absent and the failed delete's target still present.
	res, err := srv.Query(context.Background(), `SELECT ?n WHERE { <WalS> <name> ?n . }`)
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("delete applied despite failed WAL append: rows %v, err %v", res, err)
	}
	res, err = srv.Query(context.Background(), `SELECT ?n WHERE { <WalT> <name> ?n . }`)
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("insert applied despite failed WAL append: rows %v, err %v", res, err)
	}
}

// WatDiv example: generate a WatDiv-like benchmark dataset, deploy both
// fragmentation strategies, and compare the 20 benchmark queries
// (Figure 12 at example scale).
//
//	go run ./examples/watdiv
package main

import (
	"fmt"
	"log"
	"time"

	"rdffrag"
	"rdffrag/internal/watdiv"
)

func main() {
	ds := watdiv.Generate(watdiv.Options{Triples: 5000, Seed: 42})
	fmt.Printf("generated WatDiv-like dataset: %d triples\n", ds.Graph.NumTriples())

	// Render the dataset as strings through the public API.
	db := map[rdffrag.Strategy]*rdffrag.DB{}
	for _, s := range []rdffrag.Strategy{rdffrag.Vertical, rdffrag.Horizontal} {
		db[s] = rdffrag.Open(rdffrag.Config{Strategy: s, Sites: 5, MinSupport: 0.01})
	}
	for _, t := range ds.Graph.Triples() {
		s := ds.Graph.Dict.Decode(t.S).Value
		p := ds.Graph.Dict.Decode(t.P).Value
		o := ds.Graph.Dict.Decode(t.O)
		for _, d := range db {
			if o.Kind == 1 { // literal
				d.AddTripleLit(s, p, o.Value)
			} else {
				d.AddTriple(s, p, o.Value)
			}
		}
	}

	// Workload: 300 template-instantiated queries.
	wl, err := ds.GenerateWorkload(300, 7)
	if err != nil {
		log.Fatal(err)
	}
	var wlText []string
	for _, q := range wl {
		wlText = append(wlText, "SELECT * WHERE { "+q.StringWithDict(ds.Graph.Dict)+" }")
	}

	bench, names, err := ds.BenchmarkQueries(11)
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range []rdffrag.Strategy{rdffrag.Vertical, rdffrag.Horizontal} {
		dep, err := db[s].Deploy(wlText)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n%s\n", s, dep.Describe())
		fmt.Printf("%-5s %10s %6s %6s\n", "query", "time", "rows", "sites")
		for i, q := range bench {
			text := "SELECT * WHERE { " + q.StringWithDict(ds.Graph.Dict) + " }"
			t0 := time.Now()
			res, err := dep.Query(text)
			if err != nil {
				log.Fatalf("%s: %v", names[i], err)
			}
			fmt.Printf("%-5s %10s %6d %6d\n", names[i], time.Since(t0).Round(10*time.Microsecond),
				len(res.Rows), res.Stats.SitesTouched)
		}
	}
}

// Quickstart: load a tiny RDF graph, deploy with a workload, run a query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"rdffrag"
)

const data = `
<alice> <knows> <bob> .
<alice> <name> "Alice" .
<bob> <knows> <carol> .
<bob> <name> "Bob" .
<carol> <name> "Carol" .
<carol> <worksAt> <acme> .
<acme> <name> "ACME Corp" .
<acme> <located> <berlin> .
`

// The workload teaches the system which shapes matter: here, name lookups
// joined with the social graph.
var workload = []string{
	`SELECT ?x ?n WHERE { ?x <knows> ?y . ?x <name> ?n . }`,
	`SELECT ?x ?n WHERE { ?x <knows> ?y . ?x <name> ?n . }`,
	`SELECT ?x ?n WHERE { ?x <knows> ?y . ?x <name> ?n . }`,
	`SELECT ?c WHERE { ?x <worksAt> ?c . ?c <name> ?m . }`,
	`SELECT ?c WHERE { ?x <worksAt> ?c . ?c <name> ?m . }`,
}

func main() {
	db := rdffrag.Open(rdffrag.Config{Sites: 2, MinSupport: 0.2})
	if _, err := db.LoadNTriples(strings.NewReader(data)); err != nil {
		log.Fatal(err)
	}

	dep, err := db.Deploy(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployment:", dep.Describe())

	res, err := dep.Query(`SELECT ?who ?n WHERE { ?who <knows> ?other . ?other <name> ?n . }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwho knows whom (by name):")
	for _, row := range res.Rows {
		fmt.Printf("  %s -> %s\n", row[0], row[1])
	}
	fmt.Printf("\nexecuted as %d subqueries touching %d site(s)\n",
		res.Stats.Subqueries, res.Stats.SitesTouched)
}

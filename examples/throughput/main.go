// Throughput example: drives the concurrent query server (internal/serve
// via rdffrag.Server) with N concurrent clients replaying a DBpedia-like
// query log against both fragmentation strategies. Vertical fragmentation
// (Section 5.1) is the throughput-oriented strategy: queries touching
// disjoint fragments execute on disjoint sites, so concurrent clients
// scale until the cluster's worker pools saturate. The server adds what
// the paper's engine lacks: streaming joins, an admission queue, a plan
// cache for repeated query shapes, and live QPS/latency metrics.
//
//	go run ./examples/throughput
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"rdffrag"
	"rdffrag/internal/workload"
)

const clients = 8

func main() {
	db, err := workload.GenerateDBpedia(workload.DBpediaOptions{
		Triples: 8000, Queries: 800, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBpedia-like corpus: %d triples, %d logged queries\n",
		db.Graph.NumTriples(), len(db.Log))

	for _, s := range []rdffrag.Strategy{rdffrag.Vertical, rdffrag.Horizontal} {
		store := rdffrag.Open(rdffrag.Config{Strategy: s, Sites: 6, MinSupport: 0.005})
		for _, t := range db.Graph.Triples() {
			sub := db.Graph.Dict.Decode(t.S).Value
			p := db.Graph.Dict.Decode(t.P).Value
			o := db.Graph.Dict.Decode(t.O)
			if o.Kind == 1 {
				store.AddTripleLit(sub, p, o.Value)
			} else {
				store.AddTriple(sub, p, o.Value)
			}
		}
		var wl []string
		for _, q := range db.Log {
			wl = append(wl, "SELECT * WHERE { "+q.StringWithDict(db.Graph.Dict)+" }")
		}
		dep, err := store.Deploy(wl)
		if err != nil {
			log.Fatal(err)
		}

		srv := dep.StartServer(rdffrag.ServerConfig{
			Workers:    clients,
			QueueDepth: 4 * clients,
			Timeout:    time.Minute,
		})

		// Replay ~1% of the log with concurrent clients, each walking the
		// sample at its own offset so distinct query shapes overlap.
		sample := wl[:len(wl)/100*1+8]
		t0 := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range sample {
					q := sample[(i+c*len(sample)/clients)%len(sample)]
					if _, err := srv.Query(context.Background(), q); err != nil {
						log.Fatal(err)
					}
				}
			}(c)
		}
		wg.Wait()
		el := time.Since(t0)
		m := srv.Metrics()
		srv.Close()
		fmt.Printf("%-10s  %d queries, %d clients in %s  →  %.0f q/s  p50=%s p95=%s p99=%s  cache hit %.0f%%\n",
			s, clients*len(sample), clients, el.Round(time.Millisecond),
			float64(clients*len(sample))/el.Seconds(),
			m.P50.Round(time.Microsecond), m.P95.Round(time.Microsecond), m.P99.Round(time.Microsecond),
			100*m.CacheHitRate)
	}
}

// Throughput example: demonstrates the vertical-fragmentation throughput
// claim (Section 5.1) — queries that touch disjoint fragments execute on
// disjoint sites and therefore in parallel, while a broadcast strategy
// serializes on every site.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"rdffrag"
	"rdffrag/internal/workload"
)

func main() {
	db, err := workload.GenerateDBpedia(workload.DBpediaOptions{
		Triples: 8000, Queries: 800, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBpedia-like corpus: %d triples, %d logged queries\n",
		db.Graph.NumTriples(), len(db.Log))

	for _, s := range []rdffrag.Strategy{rdffrag.Vertical, rdffrag.Horizontal} {
		store := rdffrag.Open(rdffrag.Config{Strategy: s, Sites: 6, MinSupport: 0.005})
		for _, t := range db.Graph.Triples() {
			sub := db.Graph.Dict.Decode(t.S).Value
			p := db.Graph.Dict.Decode(t.P).Value
			o := db.Graph.Dict.Decode(t.O)
			if o.Kind == 1 {
				store.AddTripleLit(sub, p, o.Value)
			} else {
				store.AddTriple(sub, p, o.Value)
			}
		}
		var wl []string
		for _, q := range db.Log {
			wl = append(wl, "SELECT * WHERE { "+q.StringWithDict(db.Graph.Dict)+" }")
		}
		dep, err := store.Deploy(wl)
		if err != nil {
			log.Fatal(err)
		}

		// Replay 1% of the log with 8 concurrent clients.
		sample := wl[:len(wl)/100*1+8]
		t0 := time.Now()
		var wg sync.WaitGroup
		jobs := make(chan string, len(sample))
		for _, q := range sample {
			jobs <- q
		}
		close(jobs)
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := range jobs {
					if _, err := dep.Query(q); err != nil {
						log.Fatal(err)
					}
				}
			}()
		}
		wg.Wait()
		el := time.Since(t0)
		fmt.Printf("%-10s  %d queries in %s  →  %.0f queries/minute\n",
			s, len(sample), el.Round(time.Millisecond),
			float64(len(sample))/el.Minutes())
	}
}

// Philosophers reproduces the paper's running example (Figures 1–7): the
// philosopher RDF graph, the three frequent access patterns p1–p3, and
// the query Q4 whose decomposition the paper walks through in Example 4.
//
//	go run ./examples/philosophers
package main

import (
	"fmt"
	"log"
	"strings"

	"rdffrag"
)

// Figure 1's RDF graph (slightly abridged).
const figure1 = `
<Boethius> <placeOfDeath> <Pavia> .
<Boethius> <mainInterest> <Religion> .
<Boethius> <name> "Boethius" .
<Pavia> <country> <Italy> .
<Pavia> <postalCode> "27100" .
<Friedrich_Nietzsche> <mainInterest> <Ethics> .
<Friedrich_Nietzsche> <placeOfDeath> <Weimar> .
<Friedrich_Nietzsche> <influencedBy> <Aristotle> .
<Friedrich_Nietzsche> <name> "Friedrich Nietzsche" .
<Weimar> <country> <Germany> .
<Weimar> <postalCode> "99401" .
<Weimar> <wappen> <WappenWeimar.svg> .
<Max_Horkheimer> <influencedBy> <Karl_Marx> .
<Max_Horkheimer> <mainInterest> <Social_theory> .
<Max_Horkheimer> <placeOfDeath> <Nuremberg> .
<Max_Horkheimer> <name> "Max Horkheimer" .
<Max_Horkheimer> <viaf> "100218964" .
<Nuremberg> <country> <Germany> .
<Nuremberg> <postalCode> "90000" .
<Aristotle> <influencedBy> <Plato> .
<Aristotle> <mainInterest> <Ethics> .
<Aristotle> <placeOfDeath> <Chalcis> .
<Aristotle> <name> "Aristotle" .
<Chalcis> <country> <Greece> .
<Chalcis> <postalCode> "341 00" .
<Chalcis> <imageSkyline> <Chalkida.JPG> .
<Karl_Marx> <influencedBy> <Aristotle> .
`

// A workload whose generalizations are the paper's patterns p1–p3
// (Figure 4): p1 = country+postalCode star, p2 = name+placeOfDeath,
// p3 = name+influencedBy+mainInterest.
func workload() []string {
	var w []string
	for i := 0; i < 5; i++ {
		w = append(w, `SELECT ?x WHERE { ?x <country> ?c . ?x <postalCode> ?z . }`)
	}
	for i := 0; i < 5; i++ {
		w = append(w, `SELECT ?x ?n WHERE { ?x <name> ?n . ?x <placeOfDeath> ?p . }`)
	}
	for i := 0; i < 5; i++ {
		w = append(w, `SELECT ?x ?n WHERE { ?x <name> ?n . ?x <influencedBy> <Aristotle> . ?x <mainInterest> <Ethics> . }`)
	}
	return w
}

func main() {
	for _, strategy := range []rdffrag.Strategy{rdffrag.Vertical, rdffrag.Horizontal} {
		db := rdffrag.Open(rdffrag.Config{Strategy: strategy, Sites: 3, MinSupport: 0.2})
		if _, err := db.LoadNTriples(strings.NewReader(figure1)); err != nil {
			log.Fatal(err)
		}
		dep, err := db.Deploy(workload())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s fragmentation ---\n%s\n", strategy, dep.Describe())

		// The paper's Q4 (Figure 7a): philosophers influenced by
		// Aristotle interested in Religion, with death place and viaf.
		// We drop the viaf edge variant and run the hot core, plus a
		// second query exercising the cold property path.
		q4 := `SELECT ?x ?n WHERE {
			?x <name> ?n .
			?x <influencedBy> <Aristotle> .
			?x <mainInterest> ?i .
			?x <placeOfDeath> ?c .
		}`
		res, err := dep.Query(q4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q4-style query: %d result(s), %d subqueries, %d site(s)\n",
			len(res.Rows), res.Stats.Subqueries, res.Stats.SitesTouched)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}

		cold := `SELECT ?x ?v WHERE { ?x <viaf> ?v . ?x <name> ?n . }`
		resC, err := dep.Query(cold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cold-property query: %d result(s) (viaf lives in the cold graph)\n\n", len(resC.Rows))
	}
}

package rdffrag

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"
)

// updateDoc adds a new philosopher (hot properties), extends a known
// city (hot), appends a cold-property triple, introduces a brand-new
// predicate, repeats an existing line (a duplicate that must be
// skipped), and — the incremental-maintenance case — completes a
// pattern match for Boethius, whose deploy-time <name> triple was
// pruned from {name, influencedBy} fragments because he had no
// <influencedBy> edge at fragmentation time. Routing must pull that
// pruned partner triple back into the fragment, or live results diverge
// from the redeploy oracle.
const updateDoc = `
<Simone_de_Beauvoir> <name> "Simone de Beauvoir" .
<Simone_de_Beauvoir> <mainInterest> <Ethics> .
<Simone_de_Beauvoir> <influencedBy> <Aristotle> .
<Simone_de_Beauvoir> <placeOfDeath> <Paris> .
<Paris> <country> <France> .
<Paris> <imageSkyline> <Paris.JPG> .
<Paris> <twinCity> <Rome> .
<Aristotle> <name> "Aristotle" .
<Boethius> <influencedBy> <Aristotle> .
`

var updateProbes = []string{
	`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> <Ethics> . }`,
	`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Aristotle> . }`,
	`SELECT ?c WHERE { ?x <placeOfDeath> ?p . ?p <country> ?c . }`,
	`SELECT ?x WHERE { ?x <imageSkyline> ?i . }`,
	`SELECT ?x WHERE { ?x <twinCity> ?c . }`,
	`SELECT ?p ?o WHERE { <Paris> ?p ?o . }`,
}

func sortedRows(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, strings.Join(r, "\t"))
	}
	sort.Strings(out)
	return out
}

// TestServerUpdateEndToEnd is the deployment half of the differential
// harness: after streaming updates through the public Server.Update, every
// probe query must answer exactly what a from-scratch deployment over the
// merged data answers — pattern-routed, cold and global subqueries alike —
// without the live deployment re-running fragmentation.
func TestServerUpdateEndToEnd(t *testing.T) {
	for _, strategy := range []Strategy{Vertical, Horizontal} {
		t.Run(string(strategy), func(t *testing.T) {
			db := loadPhilosophers(t, Config{Strategy: strategy, Sites: 3, MinSupport: 0.2})
			dep, err := db.Deploy(phWorkload)
			if err != nil {
				t.Fatalf("Deploy: %v", err)
			}
			srv := dep.StartServer(ServerConfig{Workers: 2})
			defer srv.Close()

			before, err := srv.Query(context.Background(), updateProbes[0])
			if err != nil {
				t.Fatalf("baseline query: %v", err)
			}

			res, err := srv.Update(context.Background(), updateDoc)
			if err != nil {
				t.Fatalf("Update: %v", err)
			}
			if res.Added != 8 { // 9 lines, 1 duplicate
				t.Errorf("Added = %d, want 8", res.Added)
			}

			after, err := srv.Query(context.Background(), updateProbes[0])
			if err != nil {
				t.Fatalf("post-update query: %v", err)
			}
			if len(after.Rows) != len(before.Rows)+1 {
				t.Errorf("Ethics rows %d -> %d, want +1 (Simone de Beauvoir missing)",
					len(before.Rows), len(after.Rows))
			}

			// Differential oracle: a fresh deployment over the merged data.
			db2 := loadPhilosophers(t, Config{Strategy: strategy, Sites: 3, MinSupport: 0.2})
			if _, err := db2.LoadNTriples(strings.NewReader(updateDoc)); err != nil {
				t.Fatalf("oracle load: %v", err)
			}
			dep2, err := db2.Deploy(phWorkload)
			if err != nil {
				t.Fatalf("oracle Deploy: %v", err)
			}
			for _, q := range updateProbes {
				got, err := srv.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("live %s: %v", q, err)
				}
				want, err := dep2.Query(q)
				if err != nil {
					t.Fatalf("oracle %s: %v", q, err)
				}
				g, w := sortedRows(got), sortedRows(want)
				if strings.Join(g, "\n") != strings.Join(w, "\n") {
					t.Errorf("%s:\nlive   %v\noracle %v", q, g, w)
				}
			}

			// The updated triples must be in delta overlays or compacted
			// CSRs — never a thawed map (that is the regression this PR
			// exists to prevent).
			if !db.Graph().Frozen() {
				t.Error("global graph thawed by Update")
			}

			// A second identical update is a no-op.
			res2, err := srv.Update(context.Background(), updateDoc)
			if err != nil {
				t.Fatalf("repeat Update: %v", err)
			}
			if res2.Added != 0 {
				t.Errorf("repeat Added = %d, want 0", res2.Added)
			}

			// Server metrics expose the update counters.
			m := srv.Metrics()
			if m.Updates != 2 || m.TriplesAdded != 8 {
				t.Errorf("metrics updates=%d triples_added=%d, want 2/8", m.Updates, m.TriplesAdded)
			}

			// Server.Save snapshots under the exclusive lock
			// (compact-on-save), and the reloaded deployment answers
			// identically — the updated triples survive persistence.
			var buf bytes.Buffer
			if err := srv.Save(&buf); err != nil {
				t.Fatalf("Server.Save: %v", err)
			}
			if db.Graph().DeltaLen() != 0 {
				t.Errorf("Save left a %d-triple delta (compact-on-save skipped)", db.Graph().DeltaLen())
			}
			reloaded, err := LoadDeployment(&buf, Config{})
			if err != nil {
				t.Fatalf("LoadDeployment: %v", err)
			}
			for _, q := range updateProbes {
				got, err := reloaded.Query(q)
				if err != nil {
					t.Fatalf("reloaded %s: %v", q, err)
				}
				want, err := dep2.Query(q)
				if err != nil {
					t.Fatalf("oracle %s: %v", q, err)
				}
				if strings.Join(sortedRows(got), "\n") != strings.Join(sortedRows(want), "\n") {
					t.Errorf("reloaded deployment diverges on %s", q)
				}
			}
		})
	}
}

// deleteDoc removes a mix the unrouting must get right: a hot pattern
// triple added live (Simone's mainInterest — the Ethics probe row must
// disappear), a cold triple added live (the Paris skyline), and a
// deploy-time base triple that feeds a join (Aristotle's placeOfDeath —
// the country probe loses Greece). The last two lines must be no-ops: a
// triple of never-seen terms, and an absent triple of known terms.
const deleteDoc = `
<Simone_de_Beauvoir> <mainInterest> <Ethics> .
<Paris> <imageSkyline> <Paris.JPG> .
<Aristotle> <placeOfDeath> <Chalcis> .
<Never_Seen> <unknownProp> <Nowhere> .
<Aristotle> <influencedBy> <Paris> .
`

// TestServerDeleteEndToEnd: after an insert batch and then a delete
// batch through the public API, every probe query must answer exactly
// what a from-scratch deployment over the surviving triples answers —
// deletes reach the global graph, the hot/cold split and the fragment
// overlays without the live deployment re-running fragmentation.
func TestServerDeleteEndToEnd(t *testing.T) {
	for _, strategy := range []Strategy{Vertical, Horizontal} {
		t.Run(string(strategy), func(t *testing.T) {
			db := loadPhilosophers(t, Config{Strategy: strategy, Sites: 3, MinSupport: 0.2})
			dep, err := db.Deploy(phWorkload)
			if err != nil {
				t.Fatalf("Deploy: %v", err)
			}
			srv := dep.StartServer(ServerConfig{Workers: 2})
			defer srv.Close()

			if _, err := srv.Update(context.Background(), updateDoc); err != nil {
				t.Fatalf("Update: %v", err)
			}
			res, err := srv.Delete(context.Background(), deleteDoc)
			if err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if res.Deleted != 3 { // 5 lines, 2 no-ops
				t.Errorf("Deleted = %d, want 3", res.Deleted)
			}

			// Differential oracle: a fresh deployment over exactly the
			// surviving lines.
			gone := map[string]bool{}
			for _, line := range strings.Split(deleteDoc, "\n") {
				if line = strings.TrimSpace(line); line != "" {
					gone[line] = true
				}
			}
			var survivors strings.Builder
			for _, line := range strings.Split(phNT+updateDoc, "\n") {
				if l := strings.TrimSpace(line); l != "" && !gone[l] {
					survivors.WriteString(l + "\n")
				}
			}
			db2 := Open(Config{Strategy: strategy, Sites: 3, MinSupport: 0.2})
			if _, err := db2.LoadNTriples(strings.NewReader(survivors.String())); err != nil {
				t.Fatalf("oracle load: %v", err)
			}
			dep2, err := db2.Deploy(phWorkload)
			if err != nil {
				t.Fatalf("oracle Deploy: %v", err)
			}
			for _, q := range updateProbes {
				got, err := srv.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("live %s: %v", q, err)
				}
				want, err := dep2.Query(q)
				if err != nil {
					t.Fatalf("oracle %s: %v", q, err)
				}
				g, w := sortedRows(got), sortedRows(want)
				if strings.Join(g, "\n") != strings.Join(w, "\n") {
					t.Errorf("%s:\nlive   %v\noracle %v", q, g, w)
				}
			}

			// Deletes ride the tombstone overlay — no thaw.
			if !db.Graph().Frozen() {
				t.Error("global graph thawed by Delete")
			}

			// A repeat of the same delete batch removes nothing further.
			res2, err := srv.Delete(context.Background(), deleteDoc)
			if err != nil {
				t.Fatalf("repeat Delete: %v", err)
			}
			if res2.Deleted != 0 {
				t.Errorf("repeat Deleted = %d, want 0", res2.Deleted)
			}

			// Delete-then-reinsert: re-adding a deleted line brings its
			// probe row back (the later insert outlives the tombstone).
			reinsert := "<Simone_de_Beauvoir> <mainInterest> <Ethics> .\n"
			res3, err := srv.Update(context.Background(), reinsert)
			if err != nil || res3.Added != 1 {
				t.Fatalf("reinsert: res %+v, err %v", res3, err)
			}
			after, err := srv.Query(context.Background(), updateProbes[0])
			if err != nil {
				t.Fatalf("post-reinsert query: %v", err)
			}
			want, err := dep2.Query(updateProbes[0])
			if err != nil {
				t.Fatal(err)
			}
			if len(after.Rows) != len(want.Rows)+1 {
				t.Errorf("post-reinsert Ethics rows = %d, want %d", len(after.Rows), len(want.Rows)+1)
			}

			m := srv.Metrics()
			if m.TriplesDeleted != 3 {
				t.Errorf("metrics triples_deleted = %d, want 3", m.TriplesDeleted)
			}
		})
	}
}

// TestServerDeleteAllUnknownTermsIsNoOp: a delete batch whose every
// triple references never-interned terms succeeds as a whole-batch no-op
// without polluting the dictionary or (on a durable server) the WAL.
func TestServerDeleteAllUnknownTermsIsNoOp(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	srv := dep.StartServer(ServerConfig{})
	defer srv.Close()
	dictLen := db.Graph().Dict.Len()
	res, err := srv.Delete(context.Background(), "<Ghost> <haunts> <Nothing> .\n")
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if res.Deleted != 0 {
		t.Errorf("Deleted = %d, want 0", res.Deleted)
	}
	if got := db.Graph().Dict.Len(); got != dictLen {
		t.Errorf("no-op delete interned %d terms", got-dictLen)
	}
	if m := srv.Metrics(); m.Updates != 0 {
		t.Errorf("whole-batch no-op counted as an update batch: %+v", m.Updates)
	}
}

// TestServerUpdateRejectsGarbage: a malformed document mutates nothing.
func TestServerUpdateRejectsGarbage(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	srv := dep.StartServer(ServerConfig{})
	defer srv.Close()
	n := db.Graph().NumTriples()
	if _, err := srv.Update(context.Background(), "<a> <b> nonsense\n"); err == nil {
		t.Fatal("malformed update accepted")
	}
	if _, err := srv.Update(context.Background(), "# only a comment\n"); err == nil {
		t.Fatal("empty update accepted")
	}
	if db.Graph().NumTriples() != n {
		t.Fatalf("failed update mutated the graph: %d -> %d", n, db.Graph().NumTriples())
	}
}

package rdffrag

import (
	"sort"
	"testing"
)

func TestOrderBy(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	res, err := dep.Query(`SELECT ?x ?n WHERE { ?x <name> ?n . } ORDER BY ?n`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	names := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		names[i] = row[1]
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("not sorted: %v", names)
	}

	desc, err := dep.Query(`SELECT ?x ?n WHERE { ?x <name> ?n . } ORDER BY DESC(?n)`)
	if err != nil {
		t.Fatalf("Query DESC: %v", err)
	}
	for i := 1; i < len(desc.Rows); i++ {
		if desc.Rows[i-1][1] < desc.Rows[i][1] {
			t.Errorf("DESC not sorted at %d: %v", i, desc.Rows)
		}
	}
}

func TestOrderByWithLimit(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	all, err := dep.Query(`SELECT ?n WHERE { ?x <name> ?n . } ORDER BY ?n`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	top2, err := dep.Query(`SELECT ?n WHERE { ?x <name> ?n . } ORDER BY ?n LIMIT 2`)
	if err != nil {
		t.Fatalf("Query LIMIT: %v", err)
	}
	if len(top2.Rows) != 2 {
		t.Fatalf("rows = %d", len(top2.Rows))
	}
	// LIMIT must be applied after ORDER BY: top2 equals the first two
	// rows of the full ordered result.
	for i := 0; i < 2; i++ {
		if top2.Rows[i][0] != all.Rows[i][0] {
			t.Errorf("row %d: %q vs %q", i, top2.Rows[i][0], all.Rows[i][0])
		}
	}
}

func TestOrderByErrors(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	for _, bad := range []string{
		`SELECT ?n WHERE { ?x <name> ?n . } ORDER BY`,
		`SELECT ?n WHERE { ?x <name> ?n . } ORDER ?n`,
		`SELECT ?n WHERE { ?x <name> ?n . } ORDER BY DESC ?n`,
	} {
		if _, err := dep.Query(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

package rdffrag

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file renders query Results in the W3C SPARQL 1.1 result formats:
// application/sparql-results+json, text/csv and text/tab-separated-values.
// Result rows hold terms in N-Triples syntax (<iri>, "literal", _:blank);
// the serializers classify them accordingly.

type jsonResults struct {
	Head    jsonHead   `json:"head"`
	Results jsonResSet `json:"results"`
	// Partial flags a degraded-mode answer computed without the listed
	// unreachable sites (an extension field; absent on complete results).
	Partial          bool  `json:"partial,omitempty"`
	UnreachableSites []int `json:"unreachableSites,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars"`
}

type jsonResSet struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type  string `json:"type"`
	Value string `json:"value"`
}

func classifyTerm(s string) (jsonTerm, bool) {
	switch {
	case s == "":
		return jsonTerm{}, false
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		return jsonTerm{Type: "uri", Value: s[1 : len(s)-1]}, true
	case strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2:
		return jsonTerm{Type: "literal", Value: unquoteResult(s[1 : len(s)-1])}, true
	case strings.HasPrefix(s, "_:"):
		return jsonTerm{Type: "bnode", Value: s[2:]}, true
	default:
		return jsonTerm{Type: "literal", Value: s}, true
	}
}

func unquoteResult(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	r := strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n", `\t`, "\t", `\r`, "\r")
	return r.Replace(s)
}

// WriteJSON emits the result in the SPARQL 1.1 Query Results JSON format.
func (r *Result) WriteJSON(w io.Writer) error {
	out := jsonResults{
		Head:             jsonHead{Vars: r.Vars},
		Partial:          r.Stats.Partial,
		UnreachableSites: r.Stats.UnreachableSites,
	}
	out.Results.Bindings = make([]map[string]jsonTerm, 0, len(r.Rows))
	for _, row := range r.Rows {
		b := make(map[string]jsonTerm, len(r.Vars))
		for i, v := range r.Vars {
			if i >= len(row) {
				continue
			}
			if t, ok := classifyTerm(row[i]); ok {
				b[v] = t
			}
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits the result in the SPARQL 1.1 CSV format: a header of
// variable names, then plain term values (IRIs without brackets, literal
// lexical forms).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Vars); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := make([]string, len(r.Vars))
		for i := range r.Vars {
			if i < len(row) {
				if t, ok := classifyTerm(row[i]); ok {
					rec[i] = t.Value
				}
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTSV emits the SPARQL 1.1 TSV format, which keeps N-Triples-style
// term syntax.
func (r *Result) WriteTSV(w io.Writer) error {
	header := make([]string, len(r.Vars))
	for i, v := range r.Vars {
		header[i] = "?" + v
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Command datagen emits synthetic corpora in the formats cmd/rdffrag
// consumes: an N-Triples data file and a workload file (queries separated
// by '---' lines).
//
// Usage:
//
//	datagen -kind dbpedia -triples 10000 -queries 500 -out /tmp/corpus
//	datagen -kind watdiv  -triples 20000 -queries 300 -out /tmp/corpus
//
// produces <out>.nt and <out>.rq.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
	"rdffrag/internal/watdiv"
	"rdffrag/internal/workload"
)

func main() {
	var (
		kind    = flag.String("kind", "dbpedia", "corpus kind: dbpedia or watdiv")
		triples = flag.Int("triples", 10000, "approximate dataset size")
		queries = flag.Int("queries", 500, "workload length")
		out     = flag.String("out", "corpus", "output path prefix")
		seed    = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	var graph *rdf.Graph
	var log []*sparql.Graph
	switch *kind {
	case "dbpedia":
		db, err := workload.GenerateDBpedia(workload.DBpediaOptions{
			Triples: *triples, Queries: *queries, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		graph, log = db.Graph, db.Log
	case "watdiv":
		ds := watdiv.Generate(watdiv.Options{Triples: *triples, Seed: *seed})
		wl, err := ds.GenerateWorkload(*queries, *seed+1)
		if err != nil {
			fatal(err)
		}
		graph, log = ds.Graph, wl
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	ntPath := *out + ".nt"
	f, err := os.Create(ntPath)
	if err != nil {
		fatal(err)
	}
	if err := rdf.WriteNTriples(graph, f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	rqPath := *out + ".rq"
	wf, err := os.Create(rqPath)
	if err != nil {
		fatal(err)
	}
	bw := bufio.NewWriter(wf)
	for i, q := range log {
		if i > 0 {
			fmt.Fprintln(bw, "---")
		}
		fmt.Fprintf(bw, "SELECT * WHERE { %s }\n", q.StringWithDict(graph.Dict))
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	if err := wf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d triples) and %s (%d queries)\n",
		ntPath, graph.NumTriples(), rqPath, len(log))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}

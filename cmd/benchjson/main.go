// Command benchjson turns `go test -bench -benchmem` output into the
// repository's benchmark-trajectory JSON. It reads bench output on stdin
// and writes a JSON document holding two measurement sets: "baseline"
// (the first numbers ever recorded in the output file, preserved across
// reruns) and "current" (this run), plus the ns/op speedup of current
// over baseline per benchmark.
//
// Two optional sections extend the document:
//
//   - -parallel "1=seq.txt,8=par.txt" records per-GOMAXPROCS runs of the
//     same benchmarks (bench output files captured under each setting)
//     and their ns/op speedup over the GOMAXPROCS=1 run — the scaling
//     trajectory of the morsel-driven parallel matcher.
//   - -prev BENCH_N.json -max-regress 0.20 gates on the previous
//     committed trajectory file: if any benchmark's current ns/op is
//     more than the fraction slower than the previous file's current
//     section, benchjson exits nonzero (the CI perf gate).
//
// Usage:
//
//	go test -run '^$' -bench <pat> -benchmem <pkgs> | benchjson -pr 3 -out BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark's numbers from a single run.
type Measurement struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the trajectory document committed as BENCH_<pr>.json.
type File struct {
	PR       int                    `json:"pr"`
	Note     string                 `json:"note,omitempty"`
	Baseline map[string]Measurement `json:"baseline"`
	Current  map[string]Measurement `json:"current"`
	// SpeedupNsPerOp is baseline/current per benchmark present in both.
	SpeedupNsPerOp map[string]float64 `json:"speedup_ns_per_op"`
	// Parallel, when present, holds the same benchmarks measured under
	// explicit GOMAXPROCS settings plus each setting's ns/op speedup
	// over the GOMAXPROCS=1 run.
	Parallel *ParallelSection `json:"parallel,omitempty"`
}

// ParallelSection is the scaling record: measurements keyed by the
// GOMAXPROCS value they ran under.
type ParallelSection struct {
	GOMAXPROCS map[string]map[string]Measurement `json:"gomaxprocs"`
	// SpeedupVs1 is, per GOMAXPROCS setting and benchmark, the ns/op of
	// the GOMAXPROCS=1 run divided by this run's (>1 = scaling).
	SpeedupVs1 map[string]map[string]float64 `json:"speedup_vs_1"`
}

func main() {
	pr := flag.Int("pr", 0, "PR number recorded in the document")
	out := flag.String("out", "", "output file; its existing baseline section is preserved (required)")
	note := flag.String("note", "", "free-form note stored in the document")
	require := flag.String("require", "", "comma-separated benchmark names that must be present on stdin")
	parallel := flag.String("parallel", "", "comma-separated GOMAXPROCS=file pairs of bench outputs, e.g. '1=seq.txt,8=par.txt'")
	prev := flag.String("prev", "", "previous trajectory file to gate against (compares current ns/op sections)")
	maxRegress := flag.Float64("max-regress", 0.20, "with -prev: maximum tolerated ns/op regression as a fraction")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			if _, ok := current[strings.TrimSpace(name)]; !ok {
				fmt.Fprintf(os.Stderr, "benchjson: required benchmark %q missing from input (crashed mid-suite?)\n", name)
				os.Exit(1)
			}
		}
	}

	doc := &File{PR: *pr, Current: current}
	if _, statErr := os.Stat(*out); statErr == nil {
		// The output file exists: its baseline section is the recorded
		// pre-optimization numbers and must survive. A present-but-
		// unparseable file is a hard error — silently reseeding the
		// baseline from current would erase the recorded history.
		prev, err := readFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is unreadable (%v); refusing to reseed its baseline\n", *out, err)
			os.Exit(1)
		}
		if len(prev.Baseline) > 0 {
			doc.Baseline = prev.Baseline
			if *note == "" {
				doc.Note = prev.Note
			}
		} else {
			doc.Baseline = current
		}
	} else {
		doc.Baseline = current // first run seeds the baseline
	}
	if *note != "" {
		doc.Note = *note
	}
	doc.SpeedupNsPerOp = make(map[string]float64)
	for name, cur := range doc.Current {
		if base, ok := doc.Baseline[name]; ok && cur.NsPerOp > 0 {
			doc.SpeedupNsPerOp[name] = round2(base.NsPerOp / cur.NsPerOp)
		}
	}
	if *parallel != "" {
		sec, err := parseParallel(*parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		doc.Parallel = sec
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(current), *out)

	// The regression gate runs last so the trajectory point is recorded
	// even when the gate fails — the artifact shows what regressed.
	if *prev != "" {
		if err := gate(current, *prev, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// gate compares current against the previous trajectory file's current
// section and errors when any shared benchmark's ns/op regressed by more
// than the tolerated fraction.
func gate(current map[string]Measurement, prevPath string, maxRegress float64) error {
	prev, err := readFile(prevPath)
	if err != nil {
		return fmt.Errorf("reading -prev %s: %w", prevPath, err)
	}
	var offenders []string
	for name, p := range prev.Current {
		c, ok := current[name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		if c.NsPerOp > p.NsPerOp*(1+maxRegress) {
			offenders = append(offenders,
				fmt.Sprintf("%s: %.0f ns/op vs %.0f in %s (%.0f%% slower, tolerance %.0f%%)",
					name, c.NsPerOp, p.NsPerOp, prevPath,
					100*(c.NsPerOp/p.NsPerOp-1), 100*maxRegress))
		}
	}
	if len(offenders) > 0 {
		sort.Strings(offenders)
		return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(offenders, "\n  "))
	}
	fmt.Printf("benchjson: regression gate passed against %s (tolerance %.0f%%)\n", prevPath, 100*maxRegress)
	return nil
}

// parseParallel reads the GOMAXPROCS=file spec into the parallel section
// and computes speedups against the GOMAXPROCS=1 entry when present.
func parseParallel(spec string) (*ParallelSection, error) {
	sec := &ParallelSection{
		GOMAXPROCS: make(map[string]map[string]Measurement),
		SpeedupVs1: make(map[string]map[string]float64),
	}
	for _, pair := range strings.Split(spec, ",") {
		label, path, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad -parallel entry %q: want GOMAXPROCS=file", pair)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		ms, err := parseBench(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		if len(ms) == 0 {
			return nil, fmt.Errorf("no benchmark lines in %s", path)
		}
		sec.GOMAXPROCS[label] = ms
	}
	base, ok := sec.GOMAXPROCS["1"]
	if !ok {
		return sec, nil
	}
	for label, ms := range sec.GOMAXPROCS {
		if label == "1" {
			continue
		}
		sp := make(map[string]float64)
		for name, m := range ms {
			if b, ok := base[name]; ok && m.NsPerOp > 0 {
				sp[name] = round2(b.NsPerOp / m.NsPerOp)
			}
		}
		sec.SpeedupVs1[label] = sp
	}
	return sec, nil
}

func readFile(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// parseBench extracts benchmark result lines, e.g.
//
//	BenchmarkHashJoin-8   1794   668184 ns/op   500243 B/op   4032 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from names. A benchmark
// appearing several times (e.g. -count > 1) keeps its last measurement.
func parseBench(r io.Reader) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := Measurement{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				m.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				m.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rdffrag"
)

// siteMain runs the `rdffrag site` subcommand: a fragment-host process.
// It builds the identical deployment as the control site (same data and
// workload files, deterministic pipeline — so the dictionaries agree),
// then serves its share of the fragments over HTTP: POST /eval streams
// binding batches, GET /healthz and GET /metrics serve probes and
// counters. The control site reaches it via `rdffrag serve -site
// ID=URL`.
func siteMain(args []string) {
	fs := flag.NewFlagSet("site", flag.ExitOnError)
	var (
		dataPath = fs.String("data", "", "N-Triples data file (required; same file as the control site)")
		wlPath   = fs.String("workload", "", "workload file (required; same file as the control site)")
		strategy = fs.String("strategy", "vertical", "fragmentation strategy: vertical or horizontal")
		sites    = fs.Int("sites", 4, "number of sites (must match the control site)")
		minsup   = fs.Float64("minsup", 0.01, "pattern mining support threshold (must match the control site)")
		addr     = fs.String("addr", ":7400", "HTTP listen address (use 127.0.0.1:0 for an ephemeral port)")
		serveIDs = fs.String("serve-sites", "", "comma-separated site IDs to answer for (default: all)")

		drainTO = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: how long SIGTERM waits for in-flight evals to drain")

		chaosSeed  = fs.Int64("chaos-seed", 1, "seed for the deterministic fault injector")
		chaosDrop  = fs.Float64("chaos-drop", 0, "probability an /eval request is dropped (503)")
		chaosError = fs.Float64("chaos-error", 0, "probability an /eval request errors (500)")
		chaosCut   = fs.Float64("chaos-cut", 0, "probability a response stream is cut mid-flight")
		chaosDelay = fs.Float64("chaos-delay", 0, "probability a message is stalled by the straggler delay")
	)
	fs.Parse(args)
	if *dataPath == "" || *wlPath == "" {
		fs.Usage()
		os.Exit(2)
	}

	var ids []int
	for _, part := range strings.Split(*serveIDs, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("bad -serve-sites entry %q: %v", part, err))
		}
		ids = append(ids, n)
	}

	dep := deploy(*dataPath, *wlPath, *strategy, *sites, *minsup)
	cfg := rdffrag.SiteConfig{Sites: ids}
	if *chaosDrop > 0 || *chaosError > 0 || *chaosCut > 0 || *chaosDelay > 0 {
		cfg.Chaos = &rdffrag.ChaosConfig{
			Seed:      *chaosSeed,
			Drop:      *chaosDrop,
			Error:     *chaosError,
			Cut:       *chaosCut,
			DelayProb: *chaosDelay,
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The resolved address line is machine-readable on purpose: the
	// multi-process harness starts sites on :0 and scrapes the port.
	fmt.Printf("site listening on %s (serving sites %s)\n", ln.Addr(), siteList(ids))

	host := dep.SiteHost(cfg)
	httpSrv := &http.Server{Handler: host}
	// Graceful shutdown: SIGTERM/SIGINT flips /healthz to 503 (load
	// balancers stop routing here), stops accepting evals and drains
	// the in-flight ones (streams finish or their clients give up)
	// bounded by -drain-timeout, so the control site sees clean stream
	// ends instead of torn ones when a host is decommissioned politely.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		fmt.Printf("received %s, draining (timeout %s)\n", sig, *drainTO)
		host.MarkDraining()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		httpSrv.Shutdown(ctx)
		cancel()
		fmt.Println("shutdown complete")
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
}

func siteList(ids []int) string {
	if len(ids) == 0 {
		return "all"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

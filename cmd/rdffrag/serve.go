package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rdffrag"
	"rdffrag/internal/wal"
)

// serveMain runs the `rdffrag serve` subcommand: deploy (or recover from
// a durable data directory), then answer SPARQL over HTTP through the
// concurrent query server. With -site mappings, the listed sites are
// reached over the network through robust clients (retries, hedging,
// circuit breakers) instead of evaluating in-process. With -data-dir,
// every update batch is written ahead to a log before it is
// acknowledged, and restart recovers checkpoint + WAL tail.
func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		dataPath = fs.String("data", "", "N-Triples data file (required unless recovering from -data-dir)")
		wlPath   = fs.String("workload", "", "workload file: queries separated by '---' lines (required unless recovering from -data-dir)")
		strategy = fs.String("strategy", "vertical", "fragmentation strategy: vertical or horizontal")
		sites    = fs.Int("sites", 4, "number of sites")
		minsup   = fs.Float64("minsup", 0.01, "pattern mining support threshold (fraction of workload)")
		addr     = fs.String("addr", ":8090", "HTTP listen address")
		workers  = fs.Int("workers", 8, "concurrent query executions")
		queue    = fs.Int("queue", 128, "admission queue depth (full queue → 503)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-query execution deadline (0 disables)")
		cache    = fs.Int("cache", 256, "plan cache capacity in entries (negative disables)")
		parallel = fs.Int("parallel", 0, "intra-query worker budget, divided among in-flight queries (0 = GOMAXPROCS, negative = sequential matching)")
		joinPart = fs.Int("join-partitions", 0, "control-site join partitions per stage (0 = derived from each query's parallelism grant, negative = sequential join)")
		ttl      = fs.Duration("ttl", 0, "default time-to-live for inserted triples; the sweeper deletes them through the durable update path when it elapses (0 = permanent; per-request X-TTL overrides)")
		sweepInt = fs.Duration("sweep-interval", time.Second, "how often the TTL sweeper checks for expired triples (negative disables)")
		profile  = fs.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")

		dataDir   = fs.String("data-dir", "", "durable data directory: WAL + checkpoints; recovers from it when it holds a checkpoint (off by default)")
		walSync   = fs.String("wal-sync", "interval", "WAL fsync policy: always (fsync per batch before the ack), interval (group commit), none")
		walFlush  = fs.Duration("wal-flush-interval", 2*time.Millisecond, "group-commit flush period for -wal-sync interval")
		walSeg    = fs.Int64("wal-segment-bytes", 64<<20, "rotate WAL segments past this size")
		ckptBytes = fs.Int64("checkpoint-bytes", 8<<20, "checkpoint once the live WAL grows past this size")
		crashProb = fs.Float64("wal-crash-prob", 0, "fault injection: probability a WAL fsync simulates a machine crash (torn tail + SIGKILL); testing only")
		crashSeed = fs.Int64("wal-crash-seed", 1, "seed for the WAL crash injector")
		drainTO   = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: how long SIGTERM waits for in-flight queries to drain")

		retries   = fs.Int("site-retries", 3, "retries per remote site call after the first attempt")
		backoff   = fs.Duration("site-backoff", 50*time.Millisecond, "base exponential backoff between remote retries (jittered)")
		frameTO   = fs.Duration("site-frame-timeout", 10*time.Second, "cut a remote stream producing no frame for this long")
		hedge     = fs.Duration("hedge-after", 0, "race a second remote request after this long without a result frame (0 disables)")
		brkThresh = fs.Int("breaker-threshold", 5, "consecutive remote failures that open a site's circuit breaker")
		brkCool   = fs.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before a half-open probe")
		partial   = fs.Bool("partial-results", false, "skip unavailable remote sites and flag results partial instead of failing queries")
	)
	remoteSites := map[int]string{}
	fs.Func("site", "remote site mapping ID=URL, e.g. -site 2=http://10.0.0.7:7402 (repeatable; unmapped sites run in-process)", func(v string) error {
		id, url, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want ID=URL, got %q", v)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return fmt.Errorf("bad site ID %q: %v", id, err)
		}
		remoteSites[n] = strings.TrimRight(url, "/")
		return nil
	})
	fs.Parse(args)

	// A durable directory that already holds a checkpoint recovers
	// without the source files; everything else needs them.
	recovering := *dataDir != "" && rdffrag.HasCheckpoint(*dataDir)
	if !recovering && (*dataPath == "" || *wlPath == "") {
		fs.Usage()
		os.Exit(2)
	}

	var durable *rdffrag.Durable
	var dep *rdffrag.Deployment
	if *dataDir != "" {
		dcfg := rdffrag.DurabilityConfig{
			Dir:             *dataDir,
			Sync:            *walSync,
			FlushInterval:   *walFlush,
			SegmentBytes:    *walSeg,
			CheckpointBytes: *ckptBytes,
		}
		if *crashProb > 0 {
			// The crash harness's fault seam: fsyncs roll a simulated
			// machine crash — a random prefix of the unflushed tail
			// persists (a torn write), then the process SIGKILLs itself.
			dcfg.FS = wal.NewChaosFS(*crashSeed, *crashProb)
		}
		var err error
		durable, err = rdffrag.OpenDurable(dcfg)
		if err != nil {
			fatal(err)
		}
		if recovering {
			dep, err = durable.Recover(rdffrag.Config{})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("recovered from %s: checkpoint seq=%d, replayed=%d records, clean=%v\n",
				*dataDir, durable.CheckpointSeq(), durable.ReplayedRecords(), durable.CleanStart())
		} else {
			dep = deploy(*dataPath, *wlPath, *strategy, *sites, *minsup)
			if err := durable.Bootstrap(dep); err != nil {
				fatal(err)
			}
			fmt.Printf("bootstrapped %s: checkpoint seq=0, wal-sync=%s\n", *dataDir, *walSync)
		}
	} else {
		dep = deploy(*dataPath, *wlPath, *strategy, *sites, *minsup)
	}

	srv := dep.StartServer(rdffrag.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		Timeout:        *timeout,
		PlanCacheSize:  *cache,
		Parallelism:    *parallel,
		JoinPartitions: *joinPart,
		TTL:            *ttl,
		SweepInterval:  *sweepInt,
		Durable:        durable,
		Remote: rdffrag.RemoteConfig{
			Sites:            remoteSites,
			Retries:          *retries,
			Backoff:          *backoff,
			FrameTimeout:     *frameTO,
			HedgeAfter:       *hedge,
			BreakerThreshold: *brkThresh,
			BreakerCooldown:  *brkCool,
			PartialResults:   *partial,
		},
	})

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *profile {
		// Hot-path regressions (e.g. the matcher re-growing allocations)
		// are diagnosable in production: profile a live server with
		//   go tool pprof http://host/debug/pprof/profile
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// Listen before printing: the resolved address line is
	// machine-readable on purpose — the crash harness starts servers on
	// :0 and scrapes the port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving on %s (workers=%d queue=%d timeout=%s cache=%d parallel=%d join-partitions=%d remote-sites=%d partial=%v durable=%v ttl=%s pprof=%v)\n",
		ln.Addr(), *workers, *queue, *timeout, *cache, *parallel, *joinPart, len(remoteSites), *partial, durable != nil, *ttl, *profile)

	httpSrv := &http.Server{Handler: mux}
	// Graceful shutdown: SIGTERM/SIGINT stops accepting requests, drains
	// in-flight queries (bounded by -drain-timeout), then closes the
	// server — which, when durable, checkpoints, marks the directory
	// clean and fsyncs the log, so nothing is lost even under the
	// "interval" sync policy.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		fmt.Printf("received %s, draining (timeout %s)\n", sig, *drainTO)
		// Flip /healthz to 503 before the listener stops accepting, so a
		// load balancer probing during the drain window routes away.
		srv.MarkDraining()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		httpSrv.Shutdown(ctx)
		cancel()
		srv.Close()
		fmt.Println("shutdown complete")
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"rdffrag"
)

// serveMain runs the `rdffrag serve` subcommand: deploy, then answer
// SPARQL over HTTP through the concurrent query server.
func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		dataPath = fs.String("data", "", "N-Triples data file (required)")
		wlPath   = fs.String("workload", "", "workload file: queries separated by '---' lines (required)")
		strategy = fs.String("strategy", "vertical", "fragmentation strategy: vertical or horizontal")
		sites    = fs.Int("sites", 4, "number of simulated sites")
		minsup   = fs.Float64("minsup", 0.01, "pattern mining support threshold (fraction of workload)")
		addr     = fs.String("addr", ":8090", "HTTP listen address")
		workers  = fs.Int("workers", 8, "concurrent query executions")
		queue    = fs.Int("queue", 128, "admission queue depth (full queue → 503)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-query execution deadline (0 disables)")
		cache    = fs.Int("cache", 256, "plan cache capacity in entries (negative disables)")
		parallel = fs.Int("parallel", 0, "intra-query worker budget, divided among in-flight queries (0 = GOMAXPROCS, negative = sequential matching)")
		joinPart = fs.Int("join-partitions", 0, "control-site join partitions per stage (0 = derived from each query's parallelism grant, negative = sequential join)")
		profile  = fs.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	)
	fs.Parse(args)
	if *dataPath == "" || *wlPath == "" {
		fs.Usage()
		os.Exit(2)
	}

	dep := deploy(*dataPath, *wlPath, *strategy, *sites, *minsup)
	srv := dep.StartServer(rdffrag.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		Timeout:        *timeout,
		PlanCacheSize:  *cache,
		Parallelism:    *parallel,
		JoinPartitions: *joinPart,
	})
	defer srv.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		query, err := readQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := srv.Query(r.Context(), query)
		switch {
		case errors.Is(err, rdffrag.ErrOverloaded):
			http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
			return
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		case errors.Is(err, context.Canceled):
			// The client went away; the status is never seen.
			http.Error(w, err.Error(), http.StatusRequestTimeout)
			return
		case err != nil && strings.HasPrefix(err.Error(), "sparql:"):
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeResult(w, r, res)
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST an N-Triples document", http.StatusMethodNotAllowed)
			return
		}
		// MaxBytesReader (not LimitReader) so an oversized batch errors
		// out whole instead of silently applying a truncated prefix.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			} else {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		res, err := srv.Update(r.Context(), string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"added":         res.Added,
			"delta_triples": res.DeltaTriples,
			"compactions":   res.Compactions,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		m := srv.Metrics()
		json.NewEncoder(w).Encode(map[string]any{
			"uptime_seconds": m.Uptime.Seconds(),
			"completed":      m.Completed,
			"failed":         m.Failed,
			"rejected":       m.Rejected,
			"timed_out":      m.TimedOut,
			"queue_depth":    m.QueueDepth,
			"in_flight":      m.InFlight,
			"qps":            m.QPS,
			"p50_ms":         float64(m.P50) / float64(time.Millisecond),
			"p95_ms":         float64(m.P95) / float64(time.Millisecond),
			"p99_ms":         float64(m.P99) / float64(time.Millisecond),
			"cache_hits":     m.CacheHits,
			"cache_misses":   m.CacheMisses,
			"cache_hit_rate": m.CacheHitRate,
			// Intra-query parallelism: the configured machine-wide
			// budget and the average share queries actually ran with.
			"parallelism_budget":    m.ParallelismBudget,
			"effective_parallelism": m.EffectiveParallelism,
			// Control-site join fan-out: the configured per-stage
			// partition override (0 = derived per query) and the average
			// partition count join-bearing queries ran with.
			"join_partitions_cap":       m.JoinPartitionsCap,
			"effective_join_partitions": m.EffectiveJoinPartitions,
			// Live updates: applied batches, the new triples they
			// contributed, the global graph's current delta overlay size,
			// and how many times the delta compacted into the CSR.
			"updates":       m.Updates,
			"triples_added": m.TriplesAdded,
			"delta_triples": m.DeltaTriples,
			"compactions":   m.Compactions,
			// MVCC health: CSR generations still alive (current +
			// retired-but-pinned) and snapshot pins held by in-flight
			// queries; generations settling back to one per graph when
			// idle means retired generations are being reclaimed.
			"generations":      m.Generations,
			"pinned_snapshots": m.PinnedSnapshots,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if *profile {
		// Hot-path regressions (e.g. the matcher re-growing allocations)
		// are diagnosable in production: profile a live server with
		//   go tool pprof http://host/debug/pprof/profile
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	fmt.Printf("serving on %s (workers=%d queue=%d timeout=%s cache=%d parallel=%d join-partitions=%d pprof=%v)\n",
		*addr, *workers, *queue, *timeout, *cache, *parallel, *joinPart, *profile)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

// readQuery pulls the SPARQL text from ?q= or the request body.
func readQuery(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body == nil {
		return "", fmt.Errorf("missing query: pass ?q= or a request body")
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if len(body) == 0 {
		return "", fmt.Errorf("missing query: pass ?q= or a request body")
	}
	return string(body), nil
}

// writeResult renders the result in the format chosen by ?format= or the
// Accept header: json (default), csv or tsv.
func writeResult(w http.ResponseWriter, r *http.Request, res *rdffrag.Result) {
	format := r.URL.Query().Get("format")
	if format == "" {
		switch r.Header.Get("Accept") {
		case "text/csv":
			format = "csv"
		case "text/tab-separated-values":
			format = "tsv"
		}
	}
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		res.WriteCSV(w)
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values")
		res.WriteTSV(w)
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		res.WriteJSON(w)
	}
}

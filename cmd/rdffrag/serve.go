package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"rdffrag"
)

// serveMain runs the `rdffrag serve` subcommand: deploy, then answer
// SPARQL over HTTP through the concurrent query server. With -site
// mappings, the listed sites are reached over the network through
// robust clients (retries, hedging, circuit breakers) instead of
// evaluating in-process.
func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		dataPath = fs.String("data", "", "N-Triples data file (required)")
		wlPath   = fs.String("workload", "", "workload file: queries separated by '---' lines (required)")
		strategy = fs.String("strategy", "vertical", "fragmentation strategy: vertical or horizontal")
		sites    = fs.Int("sites", 4, "number of sites")
		minsup   = fs.Float64("minsup", 0.01, "pattern mining support threshold (fraction of workload)")
		addr     = fs.String("addr", ":8090", "HTTP listen address")
		workers  = fs.Int("workers", 8, "concurrent query executions")
		queue    = fs.Int("queue", 128, "admission queue depth (full queue → 503)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-query execution deadline (0 disables)")
		cache    = fs.Int("cache", 256, "plan cache capacity in entries (negative disables)")
		parallel = fs.Int("parallel", 0, "intra-query worker budget, divided among in-flight queries (0 = GOMAXPROCS, negative = sequential matching)")
		joinPart = fs.Int("join-partitions", 0, "control-site join partitions per stage (0 = derived from each query's parallelism grant, negative = sequential join)")
		profile  = fs.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")

		retries   = fs.Int("site-retries", 3, "retries per remote site call after the first attempt")
		backoff   = fs.Duration("site-backoff", 50*time.Millisecond, "base exponential backoff between remote retries (jittered)")
		frameTO   = fs.Duration("site-frame-timeout", 10*time.Second, "cut a remote stream producing no frame for this long")
		hedge     = fs.Duration("hedge-after", 0, "race a second remote request after this long without a result frame (0 disables)")
		brkThresh = fs.Int("breaker-threshold", 5, "consecutive remote failures that open a site's circuit breaker")
		brkCool   = fs.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before a half-open probe")
		partial   = fs.Bool("partial-results", false, "skip unavailable remote sites and flag results partial instead of failing queries")
	)
	remoteSites := map[int]string{}
	fs.Func("site", "remote site mapping ID=URL, e.g. -site 2=http://10.0.0.7:7402 (repeatable; unmapped sites run in-process)", func(v string) error {
		id, url, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want ID=URL, got %q", v)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return fmt.Errorf("bad site ID %q: %v", id, err)
		}
		remoteSites[n] = strings.TrimRight(url, "/")
		return nil
	})
	fs.Parse(args)
	if *dataPath == "" || *wlPath == "" {
		fs.Usage()
		os.Exit(2)
	}

	dep := deploy(*dataPath, *wlPath, *strategy, *sites, *minsup)
	srv := dep.StartServer(rdffrag.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		Timeout:        *timeout,
		PlanCacheSize:  *cache,
		Parallelism:    *parallel,
		JoinPartitions: *joinPart,
		Remote: rdffrag.RemoteConfig{
			Sites:            remoteSites,
			Retries:          *retries,
			Backoff:          *backoff,
			FrameTimeout:     *frameTO,
			HedgeAfter:       *hedge,
			BreakerThreshold: *brkThresh,
			BreakerCooldown:  *brkCool,
			PartialResults:   *partial,
		},
	})
	defer srv.Close()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *profile {
		// Hot-path regressions (e.g. the matcher re-growing allocations)
		// are diagnosable in production: profile a live server with
		//   go tool pprof http://host/debug/pprof/profile
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	fmt.Printf("serving on %s (workers=%d queue=%d timeout=%s cache=%d parallel=%d join-partitions=%d remote-sites=%d partial=%v pprof=%v)\n",
		*addr, *workers, *queue, *timeout, *cache, *parallel, *joinPart, len(remoteSites), *partial, *profile)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

// Command rdffrag is the CLI front end of the library: load an N-Triples
// file and a SPARQL workload, run the offline pipeline (mine → select →
// fragment → allocate), print the deployment summary, then answer queries
// from the command line or stdin.
//
// Usage:
//
//	rdffrag -data graph.nt -workload workload.rq [-strategy vertical|horizontal]
//	        [-sites 4] [-minsup 0.01] [-query 'SELECT ...']
//	rdffrag serve -data graph.nt -workload workload.rq [-addr :8090]
//	        [-workers 8] [-queue 128] [-timeout 30s] [-cache 256]
//	        [-site 2=http://host:7402] [-partial-results] [-hedge-after 50ms]
//	rdffrag site -data graph.nt -workload workload.rq [-addr :7400]
//	        [-serve-sites 2,3] [-chaos-drop 0.05]
//
// The workload file contains one SPARQL query per block, separated by
// lines holding only "---". Without -query, queries are read from stdin
// (one per line).
//
// The serve subcommand starts a concurrent HTTP query server over the
// deployment: POST /query (or GET /query?q=...) answers SPARQL in the
// W3C JSON/CSV/TSV result formats, GET /metrics reports QPS, latency
// percentiles, queue depth, plan-cache hit rate and per-remote-site
// robustness counters, GET /healthz is a liveness probe. Sites mapped
// with -site ID=URL evaluate in separate `rdffrag site` processes over
// HTTP, behind retries, optional hedging and circuit breakers; the rest
// evaluate in-process.
//
// The site subcommand hosts a deployment's fragments for a remote
// control site: it rebuilds the same deployment from the same files and
// streams subquery results over POST /eval.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"rdffrag"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "site":
			siteMain(os.Args[2:])
			return
		}
	}
	var (
		dataPath = flag.String("data", "", "N-Triples data file (required)")
		wlPath   = flag.String("workload", "", "workload file: queries separated by '---' lines (required)")
		strategy = flag.String("strategy", "vertical", "fragmentation strategy: vertical or horizontal")
		sites    = flag.Int("sites", 4, "number of simulated sites")
		minsup   = flag.Float64("minsup", 0.01, "pattern mining support threshold (fraction of workload)")
		queryStr = flag.String("query", "", "single query to run (otherwise read stdin)")
		verbose  = flag.Bool("v", false, "print per-query execution stats")
		explain  = flag.Bool("explain", false, "print the execution plan instead of running queries")
	)
	flag.Parse()
	if *dataPath == "" || *wlPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	dep := deploy(*dataPath, *wlPath, *strategy, *sites, *minsup)

	run := func(q string) {
		if *explain {
			ex, err := dep.Explain(q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "explain error: %v\n", err)
				return
			}
			fmt.Print(ex.String())
			return
		}
		res, err := dep.Query(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "query error: %v\n", err)
			return
		}
		fmt.Println(strings.Join(res.Vars, "\t"))
		for _, row := range res.Rows {
			fmt.Println(strings.Join(row, "\t"))
		}
		fmt.Printf("(%d rows", len(res.Rows))
		if *verbose {
			fmt.Printf("; %d subqueries, %d sites, %d intermediate rows",
				res.Stats.Subqueries, res.Stats.SitesTouched, res.Stats.IntermediateRows)
		}
		fmt.Println(")")
	}

	if *queryStr != "" {
		run(*queryStr)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	fmt.Println("enter queries, one per line (ctrl-D to exit):")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		run(line)
	}
}

// deploy loads the data and workload files and runs the offline pipeline,
// printing progress; shared by the interactive and serve modes.
func deploy(dataPath, wlPath, strategy string, sites int, minsup float64) *rdffrag.Deployment {
	db := rdffrag.Open(rdffrag.Config{
		Strategy:   rdffrag.Strategy(strategy),
		Sites:      sites,
		MinSupport: minsup,
	})

	f, err := os.Open(dataPath)
	if err != nil {
		fatal(err)
	}
	n, err := db.LoadNTriples(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d triples\n", n)

	queries, err := readWorkload(wlPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload: %d queries\n", len(queries))

	dep, err := db.Deploy(queries)
	if err != nil {
		fatal(err)
	}
	fmt.Println(dep.Describe())
	return dep
}

func readWorkload(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var queries []string
	for _, block := range strings.Split(string(data), "\n---") {
		q := strings.TrimSpace(strings.TrimPrefix(block, "---"))
		if q != "" {
			queries = append(queries, q)
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("workload file %s contains no queries", path)
	}
	return queries, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdffrag:", err)
	os.Exit(1)
}

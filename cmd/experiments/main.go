// Command experiments regenerates the paper's evaluation (Section 8):
// every figure and table, printed as plain-text rows. Sizes default to a
// laptop-scale shrink of the paper's setup and can be adjusted by flags.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -exp fig9       # one experiment: fig8a fig8b fig9 fig10 fig11 fig12 table1 table2
//	experiments -dbp 30000 -wd 20000 -sites 10 -clients 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rdffrag/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: all, fig8a, fig8b, fig9, fig10, fig11, fig12, table1, table2, serve")
		dbp      = flag.Int("dbp", 12000, "DBpedia-like dataset size in triples")
		dbpQ     = flag.Int("dbpq", 1500, "DBpedia-like query log length")
		wd       = flag.Int("wd", 10000, "WatDiv-like dataset size in triples")
		wdQ      = flag.Int("wdq", 600, "WatDiv-like workload length")
		sites    = flag.Int("sites", 10, "number of simulated sites")
		workers  = flag.Int("workers", 4, "workers per site")
		parallel = flag.Int("parallel", 0, "intra-query worker budget per site evaluation (0 = GOMAXPROCS, 1 = sequential matching)")
		joinPart = flag.Int("join-partitions", 0, "control-site join partitions per stage (0 = derived from the parallelism budget, 1 = sequential join)")
		clients  = flag.Int("clients", 8, "concurrent clients for throughput runs")
		sample   = flag.Float64("sample", 0.01, "workload fraction replayed by online experiments")
		seed     = flag.Uint64("seed", 20160315, "generator seed")
		validate = flag.Bool("validate", false, "cross-check every strategy against centralized evaluation instead of timing")
	)
	flag.Parse()

	suite := bench.NewSuite(bench.Config{
		DBpediaTriples: *dbp,
		DBpediaQueries: *dbpQ,
		WatDivTriples:  *wd,
		WatDivQueries:  *wdQ,
		Sites:          *sites,
		Workers:        *workers,
		Parallelism:    *parallel,
		JoinPartitions: *joinPart,
		Clients:        *clients,
		SampleFraction: *sample,
		Seed:           *seed,
	})

	if *validate {
		t, err := suite.Validate()
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		return
	}

	type runner func() (*bench.Table, error)
	byID := map[string]runner{
		"fig8a":                  suite.Fig8a,
		"fig8b":                  suite.Fig8b,
		"fig9":                   suite.Fig9,
		"fig10":                  suite.Fig10,
		"fig11":                  suite.Fig11,
		"fig12":                  suite.Fig12,
		"table1":                 suite.Table1,
		"table2":                 suite.Table2,
		"ablation-selection":     suite.AblationSelection,
		"ablation-decomposition": suite.AblationDecomposition,
		"ablation-allocation":    suite.AblationAllocation,
		"serve":                  suite.ServerThroughput,
	}

	var ids []string
	if *exp == "all" {
		ids = []string{"fig8a", "fig8b", "fig9", "fig10", "fig11", "fig12", "table1", "table2",
			"ablation-selection", "ablation-decomposition", "ablation-allocation", "serve"}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for _, id := range ids {
		run, ok := byID[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		t, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
}

package rdffrag

import (
	"fmt"
	"io"

	"rdffrag/internal/cluster"
	"rdffrag/internal/dict"
	"rdffrag/internal/exec"
	"rdffrag/internal/fragment"
	"rdffrag/internal/persist"
)

// Save serializes the deployment — term dictionary, hot/cold split,
// fragments with their generating patterns and minterms, and the
// allocation — so it can be reloaded with LoadDeployment without
// re-running the offline pipeline. Save compacts delta-carrying graphs
// first (a mutation), so while a Server is running use Server.Save,
// which takes the server's exclusive data lock.
func (dep *Deployment) Save(w io.Writer) error {
	return dep.saveState(w, 0)
}

// saveState is Save with an explicit WAL sequence stamp — the durable
// checkpoint path records which log records the snapshot already
// contains, so recovery replays only the tail past it.
func (dep *Deployment) saveState(w io.Writer, walSeq uint64) error {
	return persist.Save(w, &persist.State{
		Graph:  dep.db.graph,
		HC:     dep.hc,
		Frag:   dep.frag,
		Alloc:  dep.alloc,
		Sites:  dep.cfg.Sites,
		WALSeq: walSeq,
	})
}

// LoadDeployment reconstructs a query-ready deployment from a snapshot
// written by Save. Only runtime knobs of cfg apply (WorkersPerSite);
// structural settings (Sites, Strategy) come from the snapshot.
func LoadDeployment(r io.Reader, cfg Config) (*Deployment, error) {
	cfg = cfg.withDefaults()
	st, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	if st.Sites < 1 {
		return nil, fmt.Errorf("rdffrag: snapshot has no sites")
	}
	db := &DB{cfg: cfg, graph: st.Graph}
	db.cfg.Sites = st.Sites
	if st.Frag.Kind == fragment.HorizontalKind {
		db.cfg.Strategy = Horizontal
	} else {
		db.cfg.Strategy = Vertical
	}

	dd := dict.Build(st.Frag, st.Alloc, nil)
	cl := cluster.New(st.Sites, cfg.WorkersPerSite)
	engine, err := exec.New(cl, dd, st.Frag, st.Alloc, st.HC)
	if err != nil {
		return nil, err
	}
	return &Deployment{
		db:      db,
		cfg:     db.cfg,
		hc:      st.HC,
		frag:    st.Frag,
		alloc:   st.Alloc,
		dict:    dd,
		cluster: cl,
		engine:  engine,
		walSeq:  st.WALSeq,
	}, nil
}

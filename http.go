package rdffrag

// The server's HTTP API, exposed as an http.Handler so the `rdffrag
// serve` subcommand, embedding applications and tests all mount the
// same surface: /query (SPARQL in, SPARQL-results out), /update
// (N-Triples batches), /metrics and /healthz.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Handler returns the server's HTTP API. The handler is valid until the
// server is closed.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	query, err := readQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// r.Context() is cancelled the moment the client disconnects; it
	// flows through admission, the join pipeline and every (local or
	// remote) site evaluation, so an abandoned query stops consuming
	// cluster resources end to end.
	res, err := s.Query(r.Context(), query)
	switch {
	case errors.Is(err, ErrOverloaded):
		http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		return
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case errors.Is(err, context.Canceled):
		// The client went away; the status is never seen.
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	case err != nil && strings.HasPrefix(err.Error(), "sparql:"):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeResult(w, r, res)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	// POST applies the batch per ?op= ("insert", the default, or
	// "delete"); the DELETE method is shorthand for POST /update?op=delete.
	var del bool
	switch op := r.URL.Query().Get("op"); {
	case r.Method == http.MethodDelete:
		if op != "" && op != "delete" {
			http.Error(w, fmt.Sprintf("op=%s contradicts the DELETE method", op), http.StatusBadRequest)
			return
		}
		del = true
	case r.Method == http.MethodPost:
		switch op {
		case "", "insert":
		case "delete":
			del = true
		default:
			http.Error(w, fmt.Sprintf("unknown op %q (want insert or delete)", op), http.StatusBadRequest)
			return
		}
	default:
		http.Error(w, "POST (or DELETE) an N-Triples document", http.StatusMethodNotAllowed)
		return
	}
	// MaxBytesReader (not LimitReader) so an oversized batch errors
	// out whole instead of silently applying a truncated prefix.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	var res *UpdateResult
	if del {
		res, err = s.Delete(r.Context(), string(body))
	} else {
		res, err = s.Update(r.Context(), string(body))
	}
	// Status routing mirrors handleQuery: only the client's own mistakes
	// are 400s. Overload and shutdown are retryable 5xx — mapping them
	// to 400 (as this handler once did) told well-behaved clients their
	// batch was malformed when the server was merely busy.
	switch {
	case errors.Is(err, ErrServerClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrOverloaded):
		http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrNoUpdater):
		http.Error(w, err.Error(), http.StatusNotImplemented)
		return
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case errors.Is(err, context.Canceled):
		// The client went away; the status is never seen.
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	case errors.Is(err, ErrBadUpdate):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case err != nil:
		// Anything else is the server's problem — e.g. a poisoned WAL
		// rejecting appends. 500 tells the client to alert, not to
		// "fix" a batch that was never wrong.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// seq is the batch's write-ahead-log sequence number: by the time
	// this response is on the wire the batch is logged (and, under the
	// "always" sync policy, fsynced). 0 on a non-durable server.
	json.NewEncoder(w).Encode(map[string]any{
		"added":         res.Added,
		"deleted":       res.Deleted,
		"delta_triples": res.DeltaTriples,
		"compactions":   res.Compactions,
		"seq":           res.Seq,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	m := s.Metrics()
	sites := make([]map[string]any, 0, len(m.Sites))
	for _, sm := range m.Sites {
		sites = append(sites, map[string]any{
			"site":          sm.Site,
			"calls":         sm.Calls,
			"attempts":      sm.Attempts,
			"retries":       sm.Retries,
			"hedges":        sm.Hedges,
			"hedge_wins":    sm.HedgeWins,
			"failures":      sm.Failures,
			"fast_fails":    sm.FastFails,
			"breaker_state": sm.BreakerState,
			"breaker_opens": sm.BreakerOpens,
			"site_p99_ms":   float64(sm.P99) / float64(time.Millisecond),
		})
	}
	out := map[string]any{
		"uptime_seconds": m.Uptime.Seconds(),
		"completed":      m.Completed,
		"failed":         m.Failed,
		"rejected":       m.Rejected,
		"timed_out":      m.TimedOut,
		"queue_depth":    m.QueueDepth,
		"in_flight":      m.InFlight,
		"qps":            m.QPS,
		"p50_ms":         float64(m.P50) / float64(time.Millisecond),
		"p95_ms":         float64(m.P95) / float64(time.Millisecond),
		"p99_ms":         float64(m.P99) / float64(time.Millisecond),
		"cache_hits":     m.CacheHits,
		"cache_misses":   m.CacheMisses,
		"cache_hit_rate": m.CacheHitRate,
		// Intra-query parallelism: the configured machine-wide
		// budget and the average share queries actually ran with.
		"parallelism_budget":    m.ParallelismBudget,
		"effective_parallelism": m.EffectiveParallelism,
		// Control-site join fan-out: the configured per-stage
		// partition override (0 = derived per query) and the average
		// partition count join-bearing queries ran with.
		"join_partitions_cap":       m.JoinPartitionsCap,
		"effective_join_partitions": m.EffectiveJoinPartitions,
		// Live updates: applied batches, the new triples they
		// contributed, the global graph's current delta overlay size,
		// and how many times the delta compacted into the CSR.
		"updates":         m.Updates,
		"triples_added":   m.TriplesAdded,
		"triples_deleted": m.TriplesDeleted,
		"delta_triples":   m.DeltaTriples,
		"compactions":     m.Compactions,
		// MVCC health: CSR generations still alive (current +
		// retired-but-pinned) and snapshot pins held by in-flight
		// queries; generations settling back to one per graph when
		// idle means retired generations are being reclaimed.
		"generations":      m.Generations,
		"pinned_snapshots": m.PinnedSnapshots,
		// Degraded-mode completions and per-remote-site robustness
		// counters (retries, hedges, breaker state, p99 per site).
		"partial_results": m.PartialResults,
		"sites":           sites,
	}
	if m.WAL != nil {
		// Durability: write-ahead-log counters, checkpoint progress and
		// how much the last startup replayed.
		out["wal_sync"] = m.WAL.SyncPolicy
		out["wal_appends"] = m.WAL.Appends
		out["wal_fsyncs"] = m.WAL.Fsyncs
		out["wal_bytes"] = m.WAL.AppendedBytes
		out["wal_live_bytes"] = m.WAL.LiveBytes
		out["wal_segments"] = m.WAL.Segments
		out["wal_last_seq"] = m.WAL.LastSeq
		out["wal_checkpoint_seq"] = m.WAL.CheckpointSeq
		out["checkpoints"] = m.WAL.Checkpoints
		out["replayed_records"] = m.WAL.ReplayedRecords
		out["wal_append_p99_ms"] = float64(m.WAL.AppendP99) / float64(time.Millisecond)
		out["wal_fsync_p99_ms"] = float64(m.WAL.FsyncP99) / float64(time.Millisecond)
	}
	json.NewEncoder(w).Encode(out)
}

// readQuery pulls the SPARQL text from ?q= or the request body.
func readQuery(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body == nil {
		return "", fmt.Errorf("missing query: pass ?q= or a request body")
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if len(body) == 0 {
		return "", fmt.Errorf("missing query: pass ?q= or a request body")
	}
	return string(body), nil
}

// writeResult renders the result in the format chosen by ?format= or the
// Accept header: json (default), csv or tsv. Degraded-mode results are
// flagged in a header too, so the non-JSON formats can signal
// incompleteness.
func writeResult(w http.ResponseWriter, r *http.Request, res *Result) {
	if res.Stats.Partial {
		w.Header().Set("X-Partial-Results", "true")
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		switch r.Header.Get("Accept") {
		case "text/csv":
			format = "csv"
		case "text/tab-separated-values":
			format = "tsv"
		}
	}
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		res.WriteCSV(w)
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values")
		res.WriteTSV(w)
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		res.WriteJSON(w)
	}
}

package rdffrag

// The server's HTTP API, exposed as an http.Handler so the `rdffrag
// serve` subcommand, embedding applications and tests all mount the
// same surface: /query (SPARQL in, SPARQL-results out), /update
// (N-Triples batches: insert, delete, and atomic overwrite), /metrics
// and /healthz.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rdffrag/internal/sparql"
)

// Handler returns the server's HTTP API. The handler is valid until the
// server is closed.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Draining (SIGTERM received, Close begun) answers 503 so load
		// balancers stop routing here while in-flight work finishes.
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	query, err := readQuery(w, r)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// MaxBytesReader (not LimitReader, which this path once
			// used): an oversized query errors out whole instead of
			// silently parsing a truncated prefix.
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	// r.Context() is cancelled the moment the client disconnects; it
	// flows through admission, the join pipeline and every (local or
	// remote) site evaluation, so an abandoned query stops consuming
	// cluster resources end to end.
	res, err := s.Query(r.Context(), query)
	switch {
	case errors.Is(err, ErrOverloaded):
		http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		return
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case errors.Is(err, context.Canceled):
		// The client went away; the status is never seen.
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	case errors.Is(err, sparql.ErrParse):
		// Typed classification: any parse failure wraps the sentinel,
		// so this no longer depends on the message's spelling.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeResult(w, r, res)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	// POST applies the batch per ?op= ("insert", the default, "delete"
	// or "overwrite"); the DELETE method is shorthand for POST
	// /update?op=delete and PUT for POST /update?op=overwrite. An
	// overwrite body is two N-Triples documents — delete-set, then
	// insert-set — separated by a line holding only "---"; both sets
	// apply as one atomic batch under one WAL sequence number.
	const (
		opInsert = iota
		opDelete
		opOverwrite
	)
	var batchOp int
	switch op := r.URL.Query().Get("op"); {
	case r.Method == http.MethodDelete:
		if op != "" && op != "delete" {
			http.Error(w, fmt.Sprintf("op=%s contradicts the DELETE method", op), http.StatusBadRequest)
			return
		}
		batchOp = opDelete
	case r.Method == http.MethodPut:
		if op != "" && op != "overwrite" {
			http.Error(w, fmt.Sprintf("op=%s contradicts the PUT method", op), http.StatusBadRequest)
			return
		}
		batchOp = opOverwrite
	case r.Method == http.MethodPost:
		switch op {
		case "", "insert":
		case "delete":
			batchOp = opDelete
		case "overwrite":
			batchOp = opOverwrite
		default:
			http.Error(w, fmt.Sprintf("unknown op %q (want insert, delete or overwrite)", op), http.StatusBadRequest)
			return
		}
	default:
		http.Error(w, "POST (or DELETE, or PUT) an N-Triples document", http.StatusMethodNotAllowed)
		return
	}
	ttl, err := s.requestTTL(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// MaxBytesReader (not LimitReader) so an oversized batch errors
	// out whole instead of silently applying a truncated prefix.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	var res *UpdateResult
	switch batchOp {
	case opDelete:
		res, err = s.Delete(r.Context(), string(body))
	case opOverwrite:
		delDoc, insDoc, ok := splitOverwriteBody(string(body))
		if !ok {
			http.Error(w, `overwrite body needs a line holding only "---" between its delete-set and insert-set`, http.StatusBadRequest)
			return
		}
		res, err = s.Overwrite(r.Context(), delDoc, insDoc, ttl)
	default:
		res, err = s.UpdateTTL(r.Context(), string(body), ttl)
	}
	// Status routing mirrors handleQuery: only the client's own mistakes
	// are 400s. Overload and shutdown are retryable 5xx — mapping them
	// to 400 (as this handler once did) told well-behaved clients their
	// batch was malformed when the server was merely busy.
	switch {
	case errors.Is(err, ErrServerClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrOverloaded):
		http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrNoUpdater):
		http.Error(w, err.Error(), http.StatusNotImplemented)
		return
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case errors.Is(err, context.Canceled):
		// The client went away; the status is never seen.
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	case errors.Is(err, ErrBadUpdate):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case err != nil:
		// Anything else is the server's problem — e.g. a poisoned WAL
		// rejecting appends. 500 tells the client to alert, not to
		// "fix" a batch that was never wrong.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// seq is the batch's write-ahead-log sequence number: by the time
	// this response is on the wire the batch is logged (and, under the
	// "always" sync policy, fsynced). 0 on a non-durable server.
	s.countWriteErr(json.NewEncoder(w).Encode(map[string]any{
		"added":         res.Added,
		"deleted":       res.Deleted,
		"delta_triples": res.DeltaTriples,
		"compactions":   res.Compactions,
		"seq":           res.Seq,
	}))
}

// requestTTL resolves the batch's time-to-live: the X-TTL header (a Go
// duration; "0" explicitly disables expiry) overrides the server-wide
// default.
func (s *Server) requestTTL(r *http.Request) (time.Duration, error) {
	h := r.Header.Get("X-TTL")
	if h == "" {
		return s.ttl, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad X-TTL %q: want a non-negative Go duration like 30s", h)
	}
	return d, nil
}

// splitOverwriteBody splits an overwrite request body into its
// delete-document and insert-document at the first line holding only
// "---" (either side may be empty). ok is false when no separator line
// exists — the two sets must be framed explicitly.
func splitOverwriteBody(body string) (delDoc, insDoc string, ok bool) {
	for off := 0; ; {
		rest := body[off:]
		end := strings.IndexByte(rest, '\n')
		line := rest
		next := len(body)
		if end >= 0 {
			line = rest[:end]
			next = off + end + 1
		}
		if strings.TrimSpace(line) == "---" {
			return body[:off], body[next:], true
		}
		if end < 0 {
			return "", "", false
		}
		off = next
	}
}

// countWriteErr tallies a response-body write that failed after the
// status line was already sent (client gone, connection reset): the
// status can't change anymore, so the response_write_errors metric is
// the observable.
func (s *Server) countWriteErr(err error) {
	if err != nil {
		s.respWriteErrs.Add(1)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	m := s.Metrics()
	sites := make([]map[string]any, 0, len(m.Sites))
	for _, sm := range m.Sites {
		sites = append(sites, map[string]any{
			"site":          sm.Site,
			"calls":         sm.Calls,
			"attempts":      sm.Attempts,
			"retries":       sm.Retries,
			"hedges":        sm.Hedges,
			"hedge_wins":    sm.HedgeWins,
			"failures":      sm.Failures,
			"fast_fails":    sm.FastFails,
			"breaker_state": sm.BreakerState,
			"breaker_opens": sm.BreakerOpens,
			"site_p99_ms":   float64(sm.P99) / float64(time.Millisecond),
		})
	}
	out := map[string]any{
		"uptime_seconds": m.Uptime.Seconds(),
		"completed":      m.Completed,
		"failed":         m.Failed,
		"rejected":       m.Rejected,
		"timed_out":      m.TimedOut,
		"queue_depth":    m.QueueDepth,
		"in_flight":      m.InFlight,
		"qps":            m.QPS,
		"p50_ms":         float64(m.P50) / float64(time.Millisecond),
		"p95_ms":         float64(m.P95) / float64(time.Millisecond),
		"p99_ms":         float64(m.P99) / float64(time.Millisecond),
		"cache_hits":     m.CacheHits,
		"cache_misses":   m.CacheMisses,
		"cache_hit_rate": m.CacheHitRate,
		// Intra-query parallelism: the configured machine-wide
		// budget and the average share queries actually ran with.
		"parallelism_budget":    m.ParallelismBudget,
		"effective_parallelism": m.EffectiveParallelism,
		// Control-site join fan-out: the configured per-stage
		// partition override (0 = derived per query) and the average
		// partition count join-bearing queries ran with.
		"join_partitions_cap":       m.JoinPartitionsCap,
		"effective_join_partitions": m.EffectiveJoinPartitions,
		// Live updates: applied batches, the new triples they
		// contributed, the global graph's current delta overlay size,
		// and how many times the delta compacted into the CSR.
		"updates":         m.Updates,
		"triples_added":   m.TriplesAdded,
		"triples_deleted": m.TriplesDeleted,
		"delta_triples":   m.DeltaTriples,
		"compactions":     m.Compactions,
		// TTL expiry: sweeper passes that issued a delete batch and the
		// triples those batches removed.
		"sweep_runs":    m.SweepRuns,
		"swept_triples": m.SweptTriples,
		// Response bodies that failed to write after the status line was
		// sent (client disconnects); the status was already committed,
		// so this counter is how such failures surface.
		"response_write_errors": s.respWriteErrs.Load(),
		// MVCC health: CSR generations still alive (current +
		// retired-but-pinned) and snapshot pins held by in-flight
		// queries; generations settling back to one per graph when
		// idle means retired generations are being reclaimed.
		"generations":      m.Generations,
		"pinned_snapshots": m.PinnedSnapshots,
		// Degraded-mode completions and per-remote-site robustness
		// counters (retries, hedges, breaker state, p99 per site).
		"partial_results": m.PartialResults,
		"sites":           sites,
	}
	if m.WAL != nil {
		// Durability: write-ahead-log counters, checkpoint progress and
		// how much the last startup replayed.
		out["wal_sync"] = m.WAL.SyncPolicy
		out["wal_appends"] = m.WAL.Appends
		out["wal_fsyncs"] = m.WAL.Fsyncs
		out["wal_bytes"] = m.WAL.AppendedBytes
		out["wal_live_bytes"] = m.WAL.LiveBytes
		out["wal_segments"] = m.WAL.Segments
		out["wal_last_seq"] = m.WAL.LastSeq
		out["wal_checkpoint_seq"] = m.WAL.CheckpointSeq
		out["checkpoints"] = m.WAL.Checkpoints
		out["replayed_records"] = m.WAL.ReplayedRecords
		out["wal_append_p99_ms"] = float64(m.WAL.AppendP99) / float64(time.Millisecond)
		out["wal_fsync_p99_ms"] = float64(m.WAL.FsyncP99) / float64(time.Millisecond)
	}
	s.countWriteErr(json.NewEncoder(w).Encode(out))
}

// readQuery pulls the SPARQL text from ?q= or the request body. Bodies
// are capped at 1 MiB via MaxBytesReader: an oversized query fails
// whole (the caller maps it to 413) instead of a truncated prefix
// silently parsing as a different, valid query.
func readQuery(w http.ResponseWriter, r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body == nil {
		return "", fmt.Errorf("missing query: pass ?q= or a request body")
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if len(body) == 0 {
		return "", fmt.Errorf("missing query: pass ?q= or a request body")
	}
	return string(body), nil
}

// writeResult renders the result in the format chosen by ?format= or the
// Accept header: json (default), csv or tsv. Degraded-mode results are
// flagged in a header too, so the non-JSON formats can signal
// incompleteness. Write failures (the client disconnecting mid-body)
// land in the response_write_errors metric — the 200 status is already
// on the wire.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, res *Result) {
	if res.Stats.Partial {
		w.Header().Set("X-Partial-Results", "true")
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		switch r.Header.Get("Accept") {
		case "text/csv":
			format = "csv"
		case "text/tab-separated-values":
			format = "tsv"
		}
	}
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		s.countWriteErr(res.WriteCSV(w))
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values")
		s.countWriteErr(res.WriteTSV(w))
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		s.countWriteErr(res.WriteJSON(w))
	}
}

package rdffrag

import (
	"fmt"
	"sort"
	"strings"

	"rdffrag/internal/allocation"
	"rdffrag/internal/cluster"
	"rdffrag/internal/dict"
	"rdffrag/internal/exec"
	"rdffrag/internal/fap"
	"rdffrag/internal/fragment"
	"rdffrag/internal/match"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// Deployment is a fragmented, allocated, query-ready store.
type Deployment struct {
	db       *DB
	cfg      Config
	workload []*sparql.Graph
	hc       *fragment.HotCold
	mined    []*mining.Pattern
	sel      *fap.Selection
	frag     *fragment.Fragmentation
	alloc    *allocation.Allocation
	dict     *dict.Dictionary
	cluster  *cluster.Cluster
	engine   *exec.Engine
	// walSeq is the write-ahead-log sequence stamp the deployment was
	// loaded at (0 for freshly built deployments); Durable.Recover
	// replays WAL records past it.
	walSeq uint64
}

// Result is a decoded query answer.
type Result struct {
	Vars []string
	Rows [][]string
	// Stats carries execution metrics for the answered query.
	Stats QueryStats
}

// QueryStats summarizes one query's distributed execution.
type QueryStats struct {
	Subqueries       int
	SitesTouched     int
	IntermediateRows int
	// Partial is true when the server ran in degraded mode and skipped
	// unreachable remote sites: the rows are correct but possibly
	// incomplete. UnreachableSites lists the skipped sites, ascending.
	Partial          bool
	UnreachableSites []int
}

// Query parses, decomposes, optimizes and executes a SPARQL query.
func (dep *Deployment) Query(query string) (*Result, error) {
	q, err := sparql.NewParser(dep.db.graph.Dict).Parse(query)
	if err != nil {
		return nil, err
	}
	return dep.QueryParsed(q)
}

// QueryParsed executes an already-parsed query graph.
func (dep *Deployment) QueryParsed(q *sparql.Graph) (*Result, error) {
	b, stats, err := dep.engine.Query(q)
	if err != nil {
		return nil, err
	}
	return dep.decodeResult(q, b, stats), nil
}

// decodeResult turns engine bindings into decoded terms and applies the
// decoded-order ORDER BY / LIMIT step shared by Deployment.QueryParsed
// and the concurrent Server.
func (dep *Deployment) decodeResult(q *sparql.Graph, b *match.Bindings, stats *exec.QueryStats) *Result {
	res := &Result{
		Vars: b.Vars,
		Stats: QueryStats{
			Subqueries:       stats.Subqueries,
			SitesTouched:     stats.SitesTouched,
			IntermediateRows: stats.IntermediateRows,
			Partial:          stats.Partial,
			UnreachableSites: append([]int(nil), stats.UnreachableSites...),
		},
	}
	d := dep.db.graph.Dict
	for _, row := range b.Rows {
		out := make([]string, len(row))
		for i, id := range row {
			if id == rdf.NoID {
				out[i] = ""
				continue
			}
			out[i] = d.Decode(id).String()
		}
		res.Rows = append(res.Rows, out)
	}
	if len(q.OrderBy) > 0 {
		applyOrderBy(res, q.OrderBy)
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
	}
	return res
}

// applyOrderBy sorts decoded rows lexicographically by the given keys.
func applyOrderBy(res *Result, keys []sparql.OrderKey) {
	pos := make(map[string]int, len(res.Vars))
	for i, v := range res.Vars {
		pos[v] = i
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for _, k := range keys {
			c, ok := pos[k.Var]
			if !ok {
				continue
			}
			a, b := res.Rows[i][c], res.Rows[j][c]
			if a == b {
				continue
			}
			if k.Desc {
				return a > b
			}
			return a < b
		}
		return false
	})
}

// DeployStats summarizes the offline pipeline's outcome.
type DeployStats struct {
	Strategy         Strategy
	Sites            int
	Triples          int
	HotTriples       int
	ColdTriples      int
	MinedPatterns    int
	SelectedPatterns int
	Fragments        int
	Redundancy       float64
	WorkloadCoverage float64
	Balance          float64
}

// Stats reports the deployment's structural metrics (Figures 8, Table 1).
// Mining-related fields are zero for deployments restored with
// LoadDeployment (the snapshot stores fragments, not the mining run).
func (dep *Deployment) Stats() DeployStats {
	s := DeployStats{
		Strategy:    dep.cfg.Strategy,
		Sites:       dep.cfg.Sites,
		Triples:     dep.db.graph.NumTriples(),
		HotTriples:  dep.hc.Hot.NumTriples(),
		ColdTriples: dep.hc.Cold.NumTriples(),
		Fragments:   len(dep.frag.Fragments),
		Redundancy:  dep.frag.Redundancy(dep.db.graph),
		Balance:     dep.alloc.Balance(),
	}
	s.MinedPatterns = len(dep.mined)
	if dep.sel != nil {
		s.SelectedPatterns = len(dep.sel.Patterns)
	}
	if len(dep.workload) > 0 {
		s.WorkloadCoverage = mining.Coverage(dep.mined, dep.workload)
	}
	return s
}

// Explanation is a human-oriented description of how a query would run.
type Explanation struct {
	// Subqueries renders each subquery: its BGP text, classification and
	// the fragment/site pairs it would read.
	Subqueries []ExplainStep
	// JoinOrder lists subquery indices in execution order.
	JoinOrder []int
	// DecompositionCost and PlanCost are the optimizer estimates.
	DecompositionCost float64
	PlanCost          float64
}

// ExplainStep is one subquery of an explanation.
type ExplainStep struct {
	Text          string
	Kind          string // "pattern", "cold" or "global"
	EstimatedCard int
	Fragments     []FragmentRef
}

// FragmentRef names a fragment and its site.
type FragmentRef struct {
	ID   int
	Site int
	Size int
}

// Explain plans a query without executing it: decomposition, join order
// and fragment routing.
func (dep *Deployment) Explain(query string) (*Explanation, error) {
	q, err := sparql.NewParser(dep.db.graph.Dict).Parse(query)
	if err != nil {
		return nil, err
	}
	inner, err := dep.engine.Explain(q)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		JoinOrder:         inner.JoinOrder,
		DecompositionCost: inner.DecompositionCost,
		PlanCost:          inner.PlanCost,
	}
	for _, st := range inner.Subqueries {
		step := ExplainStep{
			Kind:          "pattern",
			EstimatedCard: st.Card,
			Text:          q.EdgeSubgraph(st.Edges).StringWithDict(dep.db.graph.Dict),
		}
		if st.Cold {
			step.Kind = "cold"
		} else if st.Global {
			step.Kind = "global"
		}
		for _, f := range st.Fragments {
			step.Fragments = append(step.Fragments, FragmentRef{ID: f.ID, Site: f.Site, Size: f.Size})
		}
		ex.Subqueries = append(ex.Subqueries, step)
	}
	return ex, nil
}

// String renders the explanation as indented text.
func (ex *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decomposition cost %.0f, plan cost %.0f, join order %v\n",
		ex.DecompositionCost, ex.PlanCost, ex.JoinOrder)
	for i, st := range ex.Subqueries {
		fmt.Fprintf(&b, "  q%d [%s, card≈%d] %s\n", i, st.Kind, st.EstimatedCard, st.Text)
		for _, f := range st.Fragments {
			fmt.Fprintf(&b, "      fragment %d @ site %d (%d edges)\n", f.ID, f.Site, f.Size)
		}
	}
	return b.String()
}

// NetworkStats returns cumulative simulated network traffic.
func (dep *Deployment) NetworkStats() (messages, bytes int64) {
	return dep.cluster.Net.Snapshot()
}

// ResetNetworkStats zeroes the traffic counters.
func (dep *Deployment) ResetNetworkStats() { dep.cluster.Net.Reset() }

// Describe renders a human-readable deployment summary.
func (dep *Deployment) Describe() string {
	s := dep.Stats()
	return fmt.Sprintf(
		"strategy=%s sites=%d triples=%d (hot %d / cold %d) mined=%d selected=%d fragments=%d redundancy=%.2f coverage=%.1f%% balance=%.2f",
		s.Strategy, s.Sites, s.Triples, s.HotTriples, s.ColdTriples,
		s.MinedPatterns, s.SelectedPatterns, s.Fragments, s.Redundancy,
		100*s.WorkloadCoverage, s.Balance)
}

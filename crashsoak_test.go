package rdffrag

// Crash-recovery soak: a real `rdffrag serve` process with a durable
// data directory is SIGKILLed at seeded points mid-update-stream — from
// the outside (plain process death) and from the inside via the WAL's
// fault-injecting filesystem (a simulated machine crash that tears the
// log tail mid-fsync) — then restarted, and the recovered state is
// checked against a client-side oracle that counts only acknowledged
// updates: no lost acks, no torn batches, no gaps. A final SIGTERM cycle
// proves graceful shutdown loses nothing even under the "interval" sync
// policy.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

// crashBatch renders update batch i: two triples under dedicated
// predicates with a unique subject, so recovery can be checked for
// prefix-exactness (no gaps, no duplicates) and batch atomicity (both
// triples or neither).
func crashBatch(i int) string {
	return fmt.Sprintf("<C%d> <urn:crash:p> <V%d> .\n<C%d> <urn:crash:q> \"mark %d\" .\n", i, i, i, i)
}

// serveProc is one `rdffrag serve` child with a durable data directory.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
	// recovered is the scraped recovery summary line ("" on bootstrap).
	recovered string
}

func (p *serveProc) url(path string) string { return "http://" + p.addr + path }

// startServeProc spawns `rdffrag serve -data-dir` and waits for the
// machine-readable listen line (scraping the recovery summary on the
// way). extra appends to the base argument list.
func startServeProc(t *testing.T, bin, dataDir string, extra ...string) *serveProc {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-data-dir", dataDir, "-workers", "2"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start serve process: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	p := &serveProc{cmd: cmd}
	got := make(chan struct{}, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "recovered from ") {
				p.recovered = line
			}
			if strings.HasPrefix(line, "serving on ") {
				p.addr = strings.Fields(line)[2]
				got <- struct{}{}
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case <-got:
		return p
	case <-time.After(60 * time.Second):
		t.Fatal("serve process did not report a listen address in time")
		return nil
	}
}

// sendBatch posts one update; ok reports whether it was acknowledged
// (2xx with a parsed body). Anything else — connection reset by a dying
// process, a refused socket — counts as unacknowledged.
func sendBatch(p *serveProc, i int) (seq uint64, ok bool) {
	resp, err := http.Post(p.url("/update"), "application/n-triples", strings.NewReader(crashBatch(i)))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	var body struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, false
	}
	return body.Seq, true
}

// recoveredBatches queries the dedicated predicates and verifies the
// recovered set is exactly the prefix 1..R with both triples of every
// batch present (batch atomicity), returning R.
func recoveredBatches(t *testing.T, p *serveProc) int {
	t.Helper()
	subjects := func(query string) map[string]bool {
		resp, err := http.Post(p.url("/query?format=tsv"), "application/sparql-query", strings.NewReader(query))
		if err != nil {
			t.Fatalf("probe query: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe query: HTTP %d: %s", resp.StatusCode, b)
		}
		set := map[string]bool{}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		for _, line := range lines[1:] { // skip header
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			x := strings.Fields(line)[0]
			if set[x] {
				t.Fatalf("duplicate subject %q in recovered state (double apply)", x)
			}
			set[x] = true
		}
		return set
	}
	ps := subjects(`SELECT ?x WHERE { ?x <urn:crash:p> ?v . }`)
	qs := subjects(`SELECT ?x WHERE { ?x <urn:crash:q> ?v . }`)
	if len(ps) != len(qs) {
		t.Fatalf("torn batches: %d <urn:crash:p> subjects vs %d <urn:crash:q>", len(ps), len(qs))
	}
	for i := 1; i <= len(ps); i++ {
		want := fmt.Sprintf("<C%d>", i)
		if !ps[want] || !qs[want] {
			t.Fatalf("recovered state is not the prefix 1..%d: batch %d missing (set: %v)", len(ps), i, ps)
		}
	}
	return len(ps)
}

// walMetricsOf scrapes the WAL keys from /metrics.
func walMetricsOf(t *testing.T, p *serveProc) map[string]float64 {
	t.Helper()
	resp, err := http.Get(p.url("/metrics"))
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	out := map[string]float64{}
	for _, k := range []string{"wal_appends", "wal_last_seq", "wal_checkpoint_seq", "replayed_records", "checkpoints"} {
		v, ok := m[k].(float64)
		if !ok {
			t.Fatalf("metrics missing %q (durable server must export it): %v", k, m[k])
		}
		out[k] = v
	}
	return out
}

// waitDeath blocks until the child exits (it SIGKILLed itself, or we
// killed it).
func waitDeath(t *testing.T, p *serveProc) {
	t.Helper()
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("child did not die in time")
	}
}

func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rdffrag")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rdffrag").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataPath := filepath.Join(tmp, "data.nt")
	wlPath := filepath.Join(tmp, "workload.rq")
	if err := os.WriteFile(dataPath, []byte(soakNT(30, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wlPath, []byte(strings.Join(soakWorkload, "\n---\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(tmp, "durable")

	// Bootstrap: first start runs the offline pipeline and writes the
	// seq-0 checkpoint. Aggressive checkpointing (tiny thresholds) makes
	// the soak cross checkpoint/rotate/retire boundaries constantly.
	base := []string{"-data", dataPath, "-workload", wlPath, "-sites", "2", "-minsup", "0.2",
		"-wal-sync", "always", "-checkpoint-bytes", "4096", "-wal-segment-bytes", "2048"}
	p := startServeProc(t, bin, dataDir, base...)

	acked := 0     // batches with a 2xx ack — recovery owes us all of them
	attempted := 0 // batches sent; in-flight ones may or may not survive
	kills := 0

	verify := func(p *serveProc, phase string) {
		R := recoveredBatches(t, p)
		if R < acked || R > attempted {
			t.Fatalf("%s: recovered %d batches, want acked %d <= R <= attempted %d", phase, R, acked, attempted)
		}
		// Metrics reconciliation: what startup replayed is exactly the
		// log tail past the checkpoint.
		m := walMetricsOf(t, p)
		if m["replayed_records"] != m["wal_last_seq"]-m["wal_checkpoint_seq"] {
			t.Fatalf("%s: replayed_records %v != wal_last_seq %v - wal_checkpoint_seq %v",
				phase, m["replayed_records"], m["wal_last_seq"], m["wal_checkpoint_seq"])
		}
		// Re-anchor the oracle: every batch <= R is now durable state
		// (it will be re-checked after every later crash), the rest were
		// torn away before their ack.
		acked, attempted = R, R
	}

	for cycle := 0; kills < 20; cycle++ {
		injected := cycle%2 == 1 // odd cycles crash inside the WAL fsync
		if cycle > 0 {
			extra := append([]string(nil), base...)
			if injected {
				extra = append(extra, "-wal-crash-prob", "0.12", "-wal-crash-seed", fmt.Sprint(1000+cycle))
			}
			p = startServeProc(t, bin, dataDir, extra...)
			if p.recovered == "" {
				t.Fatalf("cycle %d: restart did not report a recovery summary", cycle)
			}
			verify(p, fmt.Sprintf("cycle %d", cycle))
		}

		if injected {
			// Stream until the injected machine crash SIGKILLs the child
			// mid-fsync (tearing the log tail at a seeded point).
			died := false
			for i := 0; i < 80; i++ {
				attempted++
				if seq, ok := sendBatch(p, attempted); ok {
					acked++
					_ = seq
				} else {
					died = true
					break
				}
			}
			if !died {
				t.Fatalf("cycle %d: 80 batches without an injected crash; raise the probability", cycle)
			}
			waitDeath(t, p)
		} else {
			// A few acked batches, then plain SIGKILL from the outside.
			for i := 0; i < 1+cycle%4; i++ {
				attempted++
				seq, ok := sendBatch(p, attempted)
				if !ok {
					t.Fatalf("cycle %d: healthy server rejected batch %d", cycle, attempted)
				}
				if seq == 0 {
					t.Fatalf("cycle %d: durable ack carried seq 0", cycle)
				}
				acked++
			}
			p.cmd.Process.Kill()
			waitDeath(t, p)
		}
		kills++
	}

	// Final restart after the last kill: everything acked survived 20+
	// crashes worth of torn tails, checkpoints and replays.
	p = startServeProc(t, bin, dataDir, base...)
	verify(p, "final")
	t.Logf("soak: %d kills, %d batches durable", kills, acked)
}

// sendDeleteBatch issues batch i as a DELETE /update; ok reports a 2xx
// ack, exactly like sendBatch.
func sendDeleteBatch(p *serveProc, i int) (seq uint64, ok bool) {
	req, err := http.NewRequest(http.MethodDelete, p.url("/update"), strings.NewReader(crashBatch(i)))
	if err != nil {
		return 0, false
	}
	req.Header.Set("Content-Type", "application/n-triples")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	var body struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, false
	}
	return body.Seq, true
}

// liveCrashBatches reads which crash batches are live (both dedicated
// predicates present — recovery replays whole batches, so a half-present
// batch means a torn insert or delete) and returns their numbers sorted.
func liveCrashBatches(t *testing.T, p *serveProc) []int {
	t.Helper()
	subjects := func(query string) map[int]bool {
		resp, err := http.Post(p.url("/query?format=tsv"), "application/sparql-query", strings.NewReader(query))
		if err != nil {
			t.Fatalf("probe query: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe query: HTTP %d: %s", resp.StatusCode, b)
		}
		set := map[int]bool{}
		for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n")[1:] {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			var i int
			if _, err := fmt.Sscanf(strings.Fields(line)[0], "<C%d>", &i); err != nil {
				t.Fatalf("unexpected probe subject %q", line)
			}
			if set[i] {
				t.Fatalf("duplicate subject C%d in recovered state (double apply)", i)
			}
			set[i] = true
		}
		return set
	}
	ps := subjects(`SELECT ?x WHERE { ?x <urn:crash:p> ?v . }`)
	qs := subjects(`SELECT ?x WHERE { ?x <urn:crash:q> ?v . }`)
	if len(ps) != len(qs) {
		t.Fatalf("torn batches: %d <urn:crash:p> subjects vs %d <urn:crash:q>", len(ps), len(qs))
	}
	out := make([]int, 0, len(ps))
	for i := range ps {
		if !qs[i] {
			t.Fatalf("batch %d half-present (torn delete or insert)", i)
		}
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// TestCrashRecoveryDeleteSoak SIGKILLs a durable server mid-stream of
// alternating insert/delete ops — op 2k-1 inserts batch C_k, op 2k
// deletes it — from the outside and via the WAL's fault-injecting
// filesystem. Recovery must land on an exact op prefix: the live set is
// empty (even prefix) or exactly the one batch whose delete had not
// acked (odd prefix), never a resurrected batch whose delete was
// acknowledged before the kill, and never a torn half-batch. Acked
// deletes are owed durability exactly like acked inserts: the WAL
// record's kind byte is what keeps replay from re-inserting them.
func TestCrashRecoveryDeleteSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rdffrag")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rdffrag").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataPath := filepath.Join(tmp, "data.nt")
	wlPath := filepath.Join(tmp, "workload.rq")
	if err := os.WriteFile(dataPath, []byte(soakNT(30, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wlPath, []byte(strings.Join(soakWorkload, "\n---\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(tmp, "durable")
	base := []string{"-data", dataPath, "-workload", wlPath, "-sites", "2", "-minsup", "0.2",
		"-wal-sync", "always", "-checkpoint-bytes", "4096", "-wal-segment-bytes", "2048"}
	p := startServeProc(t, bin, dataDir, base...)

	// sendOp issues op j of the alternating stream.
	sendOp := func(p *serveProc, j int) bool {
		if j%2 == 1 {
			_, ok := sendBatch(p, (j+1)/2)
			return ok
		}
		_, ok := sendDeleteBatch(p, j/2)
		return ok
	}
	// liveFor is the oracle: the live set after an exact prefix of R ops.
	liveFor := func(R int) []int {
		if R%2 == 1 {
			return []int{(R + 1) / 2}
		}
		return nil
	}

	acked, attempted, kills := 0, 0, 0
	verify := func(p *serveProc, phase string) {
		live := liveCrashBatches(t, p)
		found := -1
		for R := acked; R <= attempted; R++ {
			if want := liveFor(R); fmt.Sprint(live) == fmt.Sprint(want) || (len(live) == 0 && len(want) == 0) {
				found = R
				break
			}
		}
		if found < 0 {
			t.Fatalf("%s: live set %v matches no op prefix in [%d, %d] — a lost ack or a resurrected delete",
				phase, live, acked, attempted)
		}
		m := walMetricsOf(t, p)
		if m["replayed_records"] != m["wal_last_seq"]-m["wal_checkpoint_seq"] {
			t.Fatalf("%s: replayed_records %v != wal_last_seq %v - wal_checkpoint_seq %v",
				phase, m["replayed_records"], m["wal_last_seq"], m["wal_checkpoint_seq"])
		}
		acked, attempted = found, found
	}

	for cycle := 0; kills < 12; cycle++ {
		injected := cycle%2 == 1 // odd cycles crash inside the WAL fsync
		if cycle > 0 {
			extra := append([]string(nil), base...)
			if injected {
				extra = append(extra, "-wal-crash-prob", "0.12", "-wal-crash-seed", fmt.Sprint(7000+cycle))
			}
			p = startServeProc(t, bin, dataDir, extra...)
			if p.recovered == "" {
				t.Fatalf("cycle %d: restart did not report a recovery summary", cycle)
			}
			verify(p, fmt.Sprintf("cycle %d", cycle))
		}

		if injected {
			died := false
			for i := 0; i < 120; i++ {
				attempted++
				if sendOp(p, attempted) {
					acked++
				} else {
					died = true
					break
				}
			}
			if !died {
				t.Fatalf("cycle %d: 120 ops without an injected crash; raise the probability", cycle)
			}
			waitDeath(t, p)
		} else {
			// A few acked ops — ending on a just-acked delete half the
			// time — then plain SIGKILL from the outside.
			for i := 0; i < 1+cycle%4; i++ {
				attempted++
				if !sendOp(p, attempted) {
					t.Fatalf("cycle %d: healthy server rejected op %d", cycle, attempted)
				}
				acked++
			}
			p.cmd.Process.Kill()
			waitDeath(t, p)
		}
		kills++
	}

	p = startServeProc(t, bin, dataDir, base...)
	verify(p, "final")
	t.Logf("delete soak: %d kills, %d ops durable", kills, acked)
}

// owCrashDoc renders version v of overwrite key k: two triples under
// dedicated predicates, so a recovered key holding p's version without
// q's (or two versions on one predicate) is a torn overwrite.
func owCrashDoc(k, v int) string {
	return fmt.Sprintf("<OWC%d> <urn:ow:p> \"v%d\" .\n<OWC%d> <urn:ow:q> \"v%d\" .\n", k, v, k, v)
}

// sendOverwrite issues overwrite op j of the round-robin stream: op j
// targets key k = ((j-1) mod 4)+1 and moves it to version v = (j-1)/4+1
// by deleting version v-1's two triples and inserting version v's as one
// PUT /update batch. ok reports a 2xx ack.
func sendOverwrite(p *serveProc, j int) bool {
	k, v := (j-1)%4+1, (j-1)/4+1
	del := ""
	if v > 1 {
		del = owCrashDoc(k, v-1)
	}
	req, err := http.NewRequest(http.MethodPut, p.url("/update"), strings.NewReader(del+"---\n"+owCrashDoc(k, v)))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/n-triples")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	var body struct {
		Seq uint64 `json:"seq"`
	}
	return json.NewDecoder(resp.Body).Decode(&body) == nil && body.Seq > 0
}

// overwriteVersions reads each key's recovered version and fails the
// test on any torn or mixed state: a key with two versions on one
// predicate, or whose <urn:ow:p> and <urn:ow:q> versions disagree, saw
// an overwrite applied by halves.
func overwriteVersions(t *testing.T, p *serveProc) map[int]int {
	t.Helper()
	versions := func(query string) map[int]int {
		resp, err := http.Post(p.url("/query?format=tsv"), "application/sparql-query", strings.NewReader(query))
		if err != nil {
			t.Fatalf("probe query: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe query: HTTP %d: %s", resp.StatusCode, b)
		}
		set := map[int]int{}
		for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n")[1:] {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			var k, v int
			if _, err := fmt.Sscanf(line, "<OWC%d> \"v%d\"", &k, &v); err != nil {
				t.Fatalf("unexpected probe row %q: %v", line, err)
			}
			if old, dup := set[k]; dup {
				t.Fatalf("key %d holds versions %d and %d on one predicate (mixed overwrite)", k, old, v)
			}
			set[k] = v
		}
		return set
	}
	ps := versions(`SELECT ?x ?v WHERE { ?x <urn:ow:p> ?v . }`)
	qs := versions(`SELECT ?x ?v WHERE { ?x <urn:ow:q> ?v . }`)
	if len(ps) != len(qs) {
		t.Fatalf("torn overwrites: %d keys on <urn:ow:p> vs %d on <urn:ow:q>", len(ps), len(qs))
	}
	for k, pv := range ps {
		if qv, present := qs[k]; !present || qv != pv {
			t.Fatalf("key %d torn: <urn:ow:p> v%d vs <urn:ow:q> v%v (old and new mixed)", k, pv, qs[k])
		}
	}
	return ps
}

// TestCrashRecoveryOverwriteSoak SIGKILLs a durable server mid-stream of
// round-robin overwrite batches — from the outside and via the WAL's
// fault-injecting filesystem tearing fsyncs — and requires every
// recovered key to hold exactly one complete version: the old one or the
// new one, both predicates agreeing, never a mix and never neither.
// That is the batch-framed WAL record's whole contract: an overwrite's
// delete-set and insert-set share one CRC frame, so a torn tail drops
// the swap whole instead of replaying half of it. The recovered versions
// must also be consistent with a single op prefix R in
// [acked, attempted], and replayed_records must reconcile with the log.
func TestCrashRecoveryOverwriteSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rdffrag")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rdffrag").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataPath := filepath.Join(tmp, "data.nt")
	wlPath := filepath.Join(tmp, "workload.rq")
	if err := os.WriteFile(dataPath, []byte(soakNT(30, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wlPath, []byte(strings.Join(soakWorkload, "\n---\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(tmp, "durable")
	base := []string{"-data", dataPath, "-workload", wlPath, "-sites", "2", "-minsup", "0.2",
		"-wal-sync", "always", "-checkpoint-bytes", "4096", "-wal-segment-bytes", "2048"}
	p := startServeProc(t, bin, dataDir, base...)

	// expected computes key k's version after an exact prefix of R ops
	// (0 = key absent): ops k, k+4, k+8, ... target key k.
	expected := func(R, k int) int {
		if R < k {
			return 0
		}
		return (R-k)/4 + 1
	}

	acked, attempted, kills := 0, 0, 0
	verify := func(p *serveProc, phase string) {
		vs := overwriteVersions(t, p)
		found := -1
		for R := acked; R <= attempted; R++ {
			match := true
			for k := 1; k <= 4; k++ {
				if vs[k] != expected(R, k) {
					match = false
					break
				}
			}
			if match {
				found = R
				break
			}
		}
		if found < 0 {
			t.Fatalf("%s: key versions %v match no op prefix in [%d, %d] — a lost ack or a half-applied overwrite",
				phase, vs, acked, attempted)
		}
		m := walMetricsOf(t, p)
		if m["replayed_records"] != m["wal_last_seq"]-m["wal_checkpoint_seq"] {
			t.Fatalf("%s: replayed_records %v != wal_last_seq %v - wal_checkpoint_seq %v",
				phase, m["replayed_records"], m["wal_last_seq"], m["wal_checkpoint_seq"])
		}
		acked, attempted = found, found
	}

	for cycle := 0; kills < 12; cycle++ {
		injected := cycle%2 == 1 // odd cycles crash inside the WAL fsync
		if cycle > 0 {
			extra := append([]string(nil), base...)
			if injected {
				extra = append(extra, "-wal-crash-prob", "0.12", "-wal-crash-seed", fmt.Sprint(4000+cycle))
			}
			p = startServeProc(t, bin, dataDir, extra...)
			if p.recovered == "" {
				t.Fatalf("cycle %d: restart did not report a recovery summary", cycle)
			}
			verify(p, fmt.Sprintf("cycle %d", cycle))
		}

		if injected {
			// Stream overwrites until the injected machine crash SIGKILLs
			// the child mid-fsync, tearing the log tail mid-overwrite.
			died := false
			for i := 0; i < 120; i++ {
				attempted++
				if sendOverwrite(p, attempted) {
					acked++
				} else {
					died = true
					break
				}
			}
			if !died {
				t.Fatalf("cycle %d: 120 overwrites without an injected crash; raise the probability", cycle)
			}
			waitDeath(t, p)
		} else {
			// A few acked overwrites, then plain SIGKILL from the outside.
			for i := 0; i < 1+cycle%4; i++ {
				attempted++
				if !sendOverwrite(p, attempted) {
					t.Fatalf("cycle %d: healthy server rejected overwrite %d", cycle, attempted)
				}
				acked++
			}
			p.cmd.Process.Kill()
			waitDeath(t, p)
		}
		kills++
	}

	p = startServeProc(t, bin, dataDir, base...)
	verify(p, "final")
	t.Logf("overwrite soak: %d kills, %d overwrites durable", kills, acked)
}

// TestGracefulShutdownSIGTERM: under the lossy-window "interval" sync
// policy, SIGTERM must drain, checkpoint, fsync and mark the directory
// clean — the restart replays nothing and has every acknowledged batch.
func TestGracefulShutdownSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rdffrag")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rdffrag").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataPath := filepath.Join(tmp, "data.nt")
	wlPath := filepath.Join(tmp, "workload.rq")
	if err := os.WriteFile(dataPath, []byte(soakNT(30, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wlPath, []byte(strings.Join(soakWorkload, "\n---\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(tmp, "durable")
	base := []string{"-data", dataPath, "-workload", wlPath, "-sites", "2", "-minsup", "0.2",
		"-wal-sync", "interval", "-drain-timeout", "10s"}

	p := startServeProc(t, bin, dataDir, base...)
	const batches = 10
	for i := 1; i <= batches; i++ {
		if _, ok := sendBatch(p, i); !ok {
			t.Fatalf("batch %d rejected", i)
		}
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v (want clean exit 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	p2 := startServeProc(t, bin, dataDir, base...)
	if !strings.Contains(p2.recovered, "replayed=0") || !strings.Contains(p2.recovered, "clean=true") {
		t.Fatalf("restart after SIGTERM was not clean: %q", p2.recovered)
	}
	if got := recoveredBatches(t, p2); got != batches {
		t.Fatalf("recovered %d batches after graceful shutdown, want %d (interval acks lost)", got, batches)
	}
}

// TestSiteGracefulShutdownSIGTERM: a fragment-host process drains and
// exits 0 on SIGTERM.
func TestSiteGracefulShutdownSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rdffrag")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rdffrag").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataPath := filepath.Join(tmp, "data.nt")
	wlPath := filepath.Join(tmp, "workload.rq")
	if err := os.WriteFile(dataPath, []byte(soakNT(20, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wlPath, []byte(strings.Join(soakWorkload, "\n---\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	proc, addr := startSiteProc(t, bin, dataPath, wlPath, "127.0.0.1:0")
	if resp, err := http.Get("http://" + addr + "/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	} else {
		resp.Body.Close()
	}
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("site SIGTERM exit: %v (want clean exit 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("site did not exit after SIGTERM")
	}
}

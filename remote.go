package rdffrag

// Distributed deployment over real sockets. A deployment's sites can be
// hosted by separate processes (`rdffrag site`) and fronted here by
// robust HTTP clients, or kept in-process over the simulated channel
// RPC — the executor cannot tell the difference. Fault injection
// (Chaos) drives both paths through one seam for deterministic
// robustness testing.

import (
	"net/http"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/transport"
)

// ChaosConfig configures the deterministic seeded fault injector shared
// by the channel-RPC and HTTP transports.
type ChaosConfig = cluster.ChaosConfig

// ChaosCounts reports how many faults an injector has fired.
type ChaosCounts = cluster.ChaosCounts

// SiteMetrics is one remote site client's robustness counters.
type SiteMetrics = cluster.SiteMetrics

// InjectFaults installs a fault injector on the deployment's in-process
// channel-RPC path: site evaluations randomly (but reproducibly, per
// cfg.Seed) drop, fail, stall or cut mid-stream. The in-process path
// has no retry layer, so injected faults surface as query errors — the
// point is proving they surface cleanly (no hangs, no leaks, no torn
// state), not that they are masked. Pass a zero ChaosConfig's
// probabilities to effectively disable it.
func (dep *Deployment) InjectFaults(cfg ChaosConfig) {
	dep.cluster.Faults = cluster.NewChaos(cfg)
}

// FaultCounts reports the faults the injector installed by InjectFaults
// has fired so far (zero value when none was installed).
func (dep *Deployment) FaultCounts() ChaosCounts {
	return dep.cluster.Faults.Counts()
}

// SiteConfig configures a fragment-host HTTP handler (see SiteHandler).
type SiteConfig struct {
	// Sites restricts which site IDs the handler answers for; nil
	// serves all of them.
	Sites []int
	// Chaos, when non-nil, injects deterministic faults into this
	// handler's request and stream handling.
	Chaos *ChaosConfig
}

// SiteHandler exposes this deployment's fragments over HTTP: POST /eval
// streams binding batches, GET /healthz and GET /metrics serve probes
// and counters. It is what `rdffrag site` mounts; tests mount it on
// httptest servers. The process must have built its deployment from the
// same data and workload files as the control site (the deterministic
// pipeline makes the dictionaries agree).
func (dep *Deployment) SiteHandler(cfg SiteConfig) http.Handler {
	return dep.SiteHost(cfg)
}

// SiteHost is a fragment-host HTTP handler with drain control: once
// MarkDraining is called its /healthz answers 503 so load balancers
// stop routing here, while /eval keeps draining in-flight streams.
type SiteHost struct {
	inner *transport.SiteServer
}

// ServeHTTP implements http.Handler.
func (h *SiteHost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(w, r)
}

// MarkDraining flips /healthz to 503; call it when graceful shutdown
// begins, before the HTTP listener drains.
func (h *SiteHost) MarkDraining() { h.inner.MarkDraining() }

// SiteHost is SiteHandler with the concrete type: `rdffrag site` uses
// it to flip the health probe when SIGTERM starts the drain.
func (dep *Deployment) SiteHost(cfg SiteConfig) *SiteHost {
	dep.ensureColdFragment()
	var chaos *cluster.Chaos
	if cfg.Chaos != nil {
		chaos = cluster.NewChaos(*cfg.Chaos)
	}
	return &SiteHost{inner: transport.NewSiteServer(transport.ServerConfig{
		Cluster: dep.cluster,
		Dict:    dep.db.graph.Dict,
		Sites:   cfg.Sites,
		Chaos:   chaos,
	})}
}

// RemoteConfig tunes the robust site clients a server uses to reach
// remote sites (ServerConfig.Remote).
type RemoteConfig struct {
	// Sites maps site IDs to the base URLs of their `rdffrag site`
	// servers, e.g. {2: "http://10.0.0.7:7402"}. Unmapped sites
	// evaluate in-process.
	Sites map[int]string
	// Retries bounds retry attempts per site call after the first
	// (default 3); Backoff is the base exponential backoff delay with
	// jitter (default 50ms).
	Retries int
	Backoff time.Duration
	// FrameTimeout is the per-frame progress deadline: a site stream
	// producing no frame for this long is cut and retried (default 10s).
	FrameTimeout time.Duration
	// HedgeAfter, when positive, races a second request against any
	// site call with no result frame after this long (off by default).
	HedgeAfter time.Duration
	// BreakerThreshold consecutive failed attempts open a site's
	// circuit breaker for BreakerCooldown before a half-open probe
	// (defaults 5 and 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PartialResults selects graceful degradation: queries touching a
	// site that stays unavailable return flagged partial results
	// instead of failing (default: fail the query).
	PartialResults bool
	// HTTP overrides the HTTP client shared by the site clients.
	HTTP *http.Client
}

// wireRemotes installs robust site clients on the deployment's engine
// per cfg; called by StartServer before serving begins.
func (dep *Deployment) wireRemotes(cfg RemoteConfig) {
	if len(cfg.Sites) == 0 {
		dep.engine.PartialResults = cfg.PartialResults
		return
	}
	remotes := make(map[int]cluster.SiteEval, len(cfg.Sites))
	for site, baseURL := range cfg.Sites {
		remotes[site] = transport.NewSiteClient(transport.ClientConfig{
			BaseURL:      baseURL,
			Site:         site,
			Dict:         dep.db.graph.Dict,
			HTTP:         cfg.HTTP,
			Retries:      cfg.Retries,
			Backoff:      cfg.Backoff,
			FrameTimeout: cfg.FrameTimeout,
			HedgeAfter:   cfg.HedgeAfter,
			Breaker: transport.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
			},
		})
	}
	dep.engine.Remotes = remotes
	dep.engine.PartialResults = cfg.PartialResults
}

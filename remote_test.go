package rdffrag

// Networked-deployment tests: a deployment whose sites are served over
// HTTP must answer exactly like the in-process one, degrade gracefully
// (or strictly) when sites die, propagate client disconnects into
// remote evaluations, and survive a deterministic fault-injection soak
// with results equal to the fault-free oracle.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/sparql"
)

// soakNT generates n people starting at offset: a <knows> chain plus
// <name>, <interest> and (for every 7th person) a cold <photo> triple.
// Deterministic, so a fragment-host process rebuilding from the same
// text assigns identical dictionary IDs.
func soakNT(n, offset int) string {
	var b strings.Builder
	for i := offset; i < offset+n; i++ {
		fmt.Fprintf(&b, "<P%d> <knows> <P%d> .\n", i, i+1)
		fmt.Fprintf(&b, "<P%d> <name> \"Person %d\" .\n", i, i)
		fmt.Fprintf(&b, "<P%d> <interest> <I%d> .\n", i, i%5)
		if i%7 == 0 {
			fmt.Fprintf(&b, "<P%d> <photo> <img%d> .\n", i, i)
		}
	}
	return b.String()
}

var soakWorkload = []string{
	`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <interest> ?i . }`,
	`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <interest> ?i . }`,
	`SELECT ?x ?y WHERE { ?x <knows> ?y . ?y <interest> <I2> . }`,
	`SELECT ?x ?y WHERE { ?x <knows> ?y . ?y <interest> <I2> . }`,
	`SELECT ?x ?n WHERE { ?x <knows> ?y . ?x <name> ?n . }`,
}

func deploySoak(t *testing.T, sites, people int) *Deployment {
	t.Helper()
	db := Open(Config{Sites: sites, MinSupport: 0.2})
	if _, err := db.LoadNTriples(strings.NewReader(soakNT(people, 0))); err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	dep, err := db.Deploy(soakWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return dep
}

// allRemote maps every site of the deployment to one base URL (tests
// serve all sites from a single fragment-host handler).
func allRemote(dep *Deployment, baseURL string) map[int]string {
	m := make(map[int]string, len(dep.cluster.Sites))
	for i := range dep.cluster.Sites {
		m[i] = baseURL
	}
	return m
}

func rowMultiset(rows [][]string) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[strings.Join(r, "\x1f")]++
	}
	return m
}

func sameRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	ma, mb := rowMultiset(a), rowMultiset(b)
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

// Queries answered through networked sites match the in-process answers
// exactly, clean results (not flagged partial), for every workload query.
func TestRemoteSiteEquivalence(t *testing.T) {
	dep := deploySoak(t, 3, 60)

	oracle := make([]*Result, len(soakWorkload))
	for i, q := range soakWorkload {
		res, err := dep.Query(q)
		if err != nil {
			t.Fatalf("oracle query %d: %v", i, err)
		}
		oracle[i] = res
	}

	site := httptest.NewServer(dep.SiteHandler(SiteConfig{}))
	defer site.Close()
	srv := dep.StartServer(ServerConfig{
		Workers: 4,
		Remote:  RemoteConfig{Sites: allRemote(dep, site.URL), Retries: 2, Backoff: time.Millisecond},
	})
	defer srv.Close()

	for i, q := range soakWorkload {
		res, err := srv.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("remote query %d: %v", i, err)
		}
		if res.Stats.Partial {
			t.Errorf("query %d flagged partial with all sites healthy", i)
		}
		if !sameRows(res.Rows, oracle[i].Rows) {
			t.Errorf("query %d: remote rows %v != in-process rows %v", i, res.Rows, oracle[i].Rows)
		}
	}

	// Every remote client reports, and the counters reconcile.
	for _, sm := range srv.Metrics().Sites {
		if sm.Attempts+sm.FastFails != sm.Calls+sm.Retries+sm.Hedges {
			t.Errorf("site %d metrics do not reconcile: %+v", sm.Site, sm)
		}
		if sm.Failures != 0 {
			t.Errorf("site %d reports %d failures on a healthy network", sm.Site, sm.Failures)
		}
	}
}

// A dead site either fails the query (strict mode, the default) or is
// skipped with the result flagged partial and the site listed
// (PartialResults mode); the flag reaches the JSON wire format and the
// /metrics counter.
func TestPartialResultsDegradation(t *testing.T) {
	dep := deploySoak(t, 2, 40)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // keep the URL, kill the listener

	q := soakWorkload[0]

	strict := dep.StartServer(ServerConfig{
		Remote: RemoteConfig{Sites: allRemote(dep, dead.URL), Retries: 1, Backoff: time.Millisecond, BreakerThreshold: 100},
	})
	if _, err := strict.Query(context.Background(), q); err == nil {
		t.Error("strict mode returned no error with every site dead")
	} else if !strings.Contains(err.Error(), "unavailable") {
		t.Errorf("strict mode error = %v, want a site-unavailable error", err)
	}
	strict.Close()

	srv := dep.StartServer(ServerConfig{
		Remote: RemoteConfig{
			Sites: allRemote(dep, dead.URL), Retries: 1, Backoff: time.Millisecond,
			BreakerThreshold: 100, PartialResults: true,
		},
	})
	defer srv.Close()
	res, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("partial mode query: %v", err)
	}
	if !res.Stats.Partial {
		t.Fatal("result not flagged partial with every site dead")
	}
	if len(res.Stats.UnreachableSites) == 0 {
		t.Error("no unreachable sites listed on a partial result")
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v from all-dead sites, want none", res.Rows)
	}
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"partial": true`) {
		t.Errorf("JSON result does not flag partial: %s", buf.String())
	}
	if m := srv.Metrics(); m.PartialResults == 0 {
		t.Error("PartialResults counter did not advance")
	}
}

// siteMetricsHTTP reads a fragment host's /metrics endpoint.
func siteMetricsHTTP(t *testing.T, baseURL string) (evals uint64, active int) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("site /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m struct {
		Evals       uint64 `json:"evals"`
		ActiveEvals int    `json:"active_evals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode site /metrics: %v", err)
	}
	return m.Evals, m.ActiveEvals
}

// A client disconnecting from /query cancels the in-flight remote
// EvalStreams end to end: the fragment host's in-flight gauge drains
// instead of the abandoned evaluation running on.
func TestQueryDisconnectCancelsRemoteEvals(t *testing.T) {
	dep := deploySoak(t, 2, 40)
	dep.engine.BatchSize = 4 // many small batches, each stalled below

	site := httptest.NewServer(dep.SiteHandler(SiteConfig{
		Chaos: &ChaosConfig{
			Seed: 5, DelayProb: 1,
			StragglerDelay: cluster.Delay{PerMessage: 200 * time.Millisecond},
		},
	}))
	defer site.Close()
	srv := dep.StartServer(ServerConfig{
		Workers: 2,
		Remote:  RemoteConfig{Sites: allRemote(dep, site.URL), Retries: 1, FrameTimeout: 30 * time.Second},
	})
	defer srv.Close()
	ctrl := httptest.NewServer(srv.Handler())
	defer ctrl.Close()

	// The control-site query stalls on the chaos straggler delays; the
	// client gives up after 250ms, which must tear everything down.
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ctrl.URL+"/query?q="+strings.ReplaceAll(soakWorkload[0], " ", "+"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Log("query finished before the disconnect; cancellation path not exercised")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		evals, active := siteMetricsHTTP(t, site.URL)
		if evals == 0 {
			t.Fatal("the query never reached the fragment host")
		}
		if active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fragment host still has %d active evals after client disconnect", active)
		}
		time.Sleep(20 * time.Millisecond)
	}
	deadline = time.Now().Add(10 * time.Second)
	for srv.Metrics().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("control server still has %d in-flight queries", srv.Metrics().InFlight)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The deterministic chaos soak: mixed query/update load over networked
// sites under seeded drop/error/cut/delay faults. Every query must
// succeed (retries and resume mask the faults), the post-quiesce
// answers must equal the fault-free in-process oracle, the robustness
// counters must reconcile with the injected-fault counts, and nothing
// may leak.
func TestChaosSoakRemoteSites(t *testing.T) {
	before := runtime.NumGoroutine()
	dep := deploySoak(t, 3, 80)
	dep.engine.BatchSize = 8 // force multi-batch streams so cuts land mid-stream

	site := httptest.NewServer(dep.SiteHandler(SiteConfig{
		Chaos: &ChaosConfig{
			Seed: 11, Drop: 0.04, Error: 0.04, Cut: 0.04, DelayProb: 0.05,
			StragglerDelay: cluster.Delay{PerMessage: 200 * time.Microsecond},
		},
	}))
	srv := dep.StartServer(ServerConfig{
		Workers: 8,
		Remote: RemoteConfig{
			Sites: allRemote(dep, site.URL), Retries: 12, Backoff: time.Millisecond,
			FrameTimeout: 10 * time.Second, BreakerThreshold: 1 << 20,
		},
	})

	parsed := make([]*sparql.Graph, len(soakWorkload))
	for i, q := range soakWorkload {
		parsed[i] = sparql.MustParse(dep.db.graph.Dict, q)
	}

	// Phase A: concurrent queries and live updates under fault injection.
	const clients = 4
	const iters = 20
	const updates = 8
	errs := make(chan error, clients*iters+updates)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := srv.QueryParsed(context.Background(), parsed[(c+i)%len(parsed)]); err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", c, i, err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < updates; j++ {
			if _, err := srv.Update(context.Background(), soakNT(3, 1000+10*j)); err != nil {
				errs <- fmt.Errorf("update %d: %w", j, err)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("soak failure: %v", err)
	}

	// Phase B: quiesce, then every workload query answered over the
	// faulty network must equal the in-process fault-free oracle.
	for i, q := range parsed {
		remote, err := srv.QueryParsed(context.Background(), q)
		if err != nil {
			t.Fatalf("post-soak remote query %d: %v", i, err)
		}
		if remote.Stats.Partial {
			t.Errorf("post-soak query %d flagged partial; no site was down", i)
		}
		saved := dep.engine.Remotes
		dep.engine.Remotes = nil
		local, err := dep.QueryParsed(q)
		dep.engine.Remotes = saved
		if err != nil {
			t.Fatalf("oracle query %d: %v", i, err)
		}
		if !sameRows(remote.Rows, local.Rows) {
			t.Errorf("query %d: remote rows (%d) != oracle rows (%d) after soak",
				i, len(remote.Rows), len(local.Rows))
		}
	}

	// Phase C: metrics reconciliation. Each injected disruption (drop,
	// error, cut) failed exactly one attempt, and every call eventually
	// succeeded, so client retries cover the disruptions (the transport
	// layer may add a handful of its own retries on connections the
	// chaos cuts poisoned).
	var retries, failures, fastFails uint64
	for _, sm := range srv.Metrics().Sites {
		if sm.Attempts+sm.FastFails != sm.Calls+sm.Retries+sm.Hedges {
			t.Errorf("site %d metrics do not reconcile: %+v", sm.Site, sm)
		}
		retries += sm.Retries
		failures += sm.Failures
		fastFails += sm.FastFails
	}
	if failures != 0 || fastFails != 0 {
		t.Errorf("failures %d fastFails %d after soak, want 0/0", failures, fastFails)
	}
	var counts struct {
		Drops, Errors, Cuts uint64
	}
	func() {
		resp, err := http.Get(site.URL + "/metrics")
		if err != nil {
			t.Fatalf("site /metrics: %v", err)
		}
		defer resp.Body.Close()
		var m struct {
			Drops  uint64 `json:"chaos_drops"`
			Errors uint64 `json:"chaos_errors"`
			Cuts   uint64 `json:"chaos_cuts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode site /metrics: %v", err)
		}
		counts.Drops, counts.Errors, counts.Cuts = m.Drops, m.Errors, m.Cuts
	}()
	disruptions := counts.Drops + counts.Errors + counts.Cuts
	if disruptions == 0 {
		t.Error("chaos injected no disruptions; the soak exercised nothing")
	}
	if retries < disruptions {
		t.Errorf("client retries %d < injected disruptions %d: some fault went unretried", retries, disruptions)
	}

	// Phase D: drain and check for leaks.
	srv.Close()
	site.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+8 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before soak, %d after drain", before, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Killing the fragment host's listener mid-run degrades queries to
// flagged partial results and opens the circuit breaker; restarting it
// on the same address recovers clean answers through a half-open probe.
func TestSiteKillRestartRecovery(t *testing.T) {
	dep := deploySoak(t, 2, 40)
	handler := dep.SiteHandler(SiteConfig{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)

	q := soakWorkload[0]
	oracle, err := dep.Query(q)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}

	srv := dep.StartServer(ServerConfig{
		Remote: RemoteConfig{
			Sites: allRemote(dep, "http://"+addr), Retries: 1, Backoff: time.Millisecond,
			FrameTimeout: 5 * time.Second, BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
			PartialResults: true,
		},
	})
	defer srv.Close()

	res, err := srv.Query(context.Background(), q)
	if err != nil || res.Stats.Partial {
		t.Fatalf("healthy query: err=%v partial=%v", err, res != nil && res.Stats.Partial)
	}
	if !sameRows(res.Rows, oracle.Rows) {
		t.Fatalf("healthy remote rows %v != oracle %v", res.Rows, oracle.Rows)
	}

	// Kill the site. Queries degrade to partial; repeated failures trip
	// the breaker into fail-fast.
	hs.Close()
	for i := 0; i < 3; i++ {
		res, err = srv.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("degraded query %d: %v", i, err)
		}
		if !res.Stats.Partial {
			t.Fatalf("query %d against dead site not flagged partial", i)
		}
	}
	var opens, fastFails uint64
	anyOpen := false
	for _, sm := range srv.Metrics().Sites {
		opens += sm.BreakerOpens
		fastFails += sm.FastFails
		anyOpen = anyOpen || sm.BreakerState == "open"
	}
	if opens == 0 {
		t.Error("no breaker opened against a dead site")
	}
	if fastFails == 0 {
		t.Error("no fast-fails recorded; the breaker never short-circuited")
	}
	if !anyOpen {
		t.Error("no breaker left open after repeated failures against a dead site")
	}

	// Restart on the same address; within the cooldown window the
	// half-open probe should close the circuit and answers come back
	// complete.
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	hs2 := &http.Server{Handler: handler}
	go hs2.Serve(ln2)
	defer hs2.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err = srv.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("recovery query: %v", err)
		}
		if !res.Stats.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queries still partial after site restart")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !sameRows(res.Rows, oracle.Rows) {
		t.Errorf("post-recovery rows %v != oracle %v", res.Rows, oracle.Rows)
	}
	for _, sm := range srv.Metrics().Sites {
		if sm.BreakerState != "closed" {
			t.Errorf("site %d breaker %q after recovery, want closed", sm.Site, sm.BreakerState)
		}
	}
}

package rdffrag

// Multi-process deployment test: fragment hosts run as real `rdffrag
// site` OS processes built from the actual binary, the control site
// reaches them over TCP, and a SIGKILL mid-run degrades queries to
// flagged partial results until the site process is restarted on the
// same port. This is the closest harness to production: separate
// dictionaries rebuilt from the same files, real sockets, real process
// death.

import (
	"bufio"
	"context"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startSiteProc spawns `rdffrag site` on addr and waits for its
// machine-readable listen line, returning the resolved host:port.
func startSiteProc(t *testing.T, bin, data, wl, addr string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "site",
		"-data", data, "-workload", wl,
		"-strategy", "vertical", "-sites", "2", "-minsup", "0.2",
		"-addr", addr)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start site process: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	got := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "site listening on ") {
				got <- strings.Fields(line)[3]
				break
			}
		}
		io.Copy(io.Discard, stdout) // keep draining so the child never blocks
	}()
	select {
	case resolved := <-got:
		return cmd, resolved
	case <-time.After(60 * time.Second):
		t.Fatal("site process did not report a listen address in time")
		return nil, ""
	}
}

func TestMultiProcessSites(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "rdffrag")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rdffrag").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// The fragment host rebuilds its deployment from the same files as
	// the control site; the deterministic pipeline makes the
	// dictionaries agree, which the row results below prove end to end.
	data := soakNT(40, 0)
	wl := strings.Join(soakWorkload, "\n---\n")
	dataPath := filepath.Join(tmp, "data.nt")
	wlPath := filepath.Join(tmp, "workload.rq")
	if err := os.WriteFile(dataPath, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wlPath, []byte(wl), 0o644); err != nil {
		t.Fatal(err)
	}

	db := Open(Config{Sites: 2, MinSupport: 0.2})
	if _, err := db.LoadNTriples(strings.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	dep, err := db.Deploy(soakWorkload)
	if err != nil {
		t.Fatal(err)
	}
	q := soakWorkload[0]
	oracle, err := dep.Query(q)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}

	proc, addr := startSiteProc(t, bin, dataPath, wlPath, "127.0.0.1:0")
	srv := dep.StartServer(ServerConfig{
		Remote: RemoteConfig{
			Sites: allRemote(dep, "http://"+addr), Retries: 2, Backoff: 5 * time.Millisecond,
			FrameTimeout: 10 * time.Second, BreakerThreshold: 2, BreakerCooldown: 200 * time.Millisecond,
			PartialResults: true,
		},
	})
	defer srv.Close()

	// Healthy: answers over the wire match the in-process oracle — the
	// two processes' dictionaries agree.
	res, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query via site process: %v", err)
	}
	if res.Stats.Partial {
		t.Fatal("query flagged partial with the site process healthy")
	}
	if !sameRows(res.Rows, oracle.Rows) {
		t.Fatalf("cross-process rows %v != oracle %v", res.Rows, oracle.Rows)
	}

	// SIGKILL the site process: degraded, flagged partial.
	if err := proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc.Wait()
	sawPartial := false
	for i := 0; i < 3; i++ {
		res, err = srv.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("degraded query %d: %v", i, err)
		}
		sawPartial = sawPartial || res.Stats.Partial
	}
	if !sawPartial {
		t.Fatal("no query flagged partial after the site process was killed")
	}

	// Restart on the same port: the breaker probes, closes, and answers
	// come back complete.
	if _, addr2 := startSiteProc(t, bin, dataPath, wlPath, addr); addr2 != addr {
		t.Fatalf("restarted site on %s, want %s", addr2, addr)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err = srv.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("recovery query: %v", err)
		}
		if !res.Stats.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queries still partial after site process restart")
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !sameRows(res.Rows, oracle.Rows) {
		t.Errorf("post-restart rows %v != oracle %v", res.Rows, oracle.Rows)
	}
	var opens uint64
	for _, sm := range srv.Metrics().Sites {
		opens += sm.BreakerOpens
		if sm.BreakerState == "open" {
			t.Errorf("site %d breaker still open after recovery", sm.Site)
		}
	}
	if opens == 0 {
		t.Error("no breaker opened across the kill/restart cycle")
	}
}

package rdffrag

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"rdffrag/internal/fragment"
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
)

// UpdateResult reports what one live-update batch did: triples new to
// the deployment (duplicates skipped), triples a delete batch removed,
// the global graph's delta overlay size after the batch, and its
// cumulative compaction count.
type UpdateResult = serve.UpdateStats

// ErrNoUpdater is returned by Server.Update when the server has no update
// sink (servers started by Deployment.StartServer always have one).
var ErrNoUpdater = serve.ErrNoUpdater

// ErrBadUpdate wraps every client-side update rejection — unparsable
// N-Triples, an empty batch — so the HTTP layer can map exactly these to
// 400 and route everything else (overload, durability failures) to the
// status class it belongs to.
var ErrBadUpdate = errors.New("rdffrag: bad update batch")

// Update parses an N-Triples document and applies its triples to the live
// deployment through the server's update path: triples land in the delta
// overlays of the global graph, the hot/cold split, and the relevant
// fragment graphs — no thaw, no re-fragmentation — without blocking
// in-flight queries, which keep reading the MVCC view they pinned at
// admission. Queries admitted after Update returns see the new triples.
func (s *Server) Update(ctx context.Context, ntriples string) (*UpdateResult, error) {
	return s.UpdateTTL(ctx, ntriples, s.ttl)
}

// UpdateTTL is Update with an explicit time-to-live: a positive ttl
// schedules the batch's triples for expiry — the server's sweeper
// deletes them through the normal durable update path once ttl elapses.
// Zero means no expiry (ignoring any server-wide default).
func (s *Server) UpdateTTL(ctx context.Context, ntriples string, ttl time.Duration) (*UpdateResult, error) {
	ts, err := parseUpdateBatch(s.dep.db.graph.Dict, ntriples)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadUpdate, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := s.inner.Apply(ctx, serve.Batch{Op: serve.OpInsert, Ins: ts, TTL: ttl})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Overwrite atomically replaces one triple set with another: delDoc's
// triples are removed and insDoc's inserted as one batch — one WAL
// record, one MVCC publish — so no query ever sees the deletes without
// the inserts, and crash recovery replays the whole swap or none of it.
// Either side may be empty (an empty delDoc degrades to a TTL-stamped
// insert, an empty insDoc to a delete), but not both. A positive ttl
// schedules the inserted triples for expiry.
func (s *Server) Overwrite(ctx context.Context, delDoc, insDoc string, ttl time.Duration) (*UpdateResult, error) {
	dict := s.dep.db.graph.Dict
	del, delParsed, err := parseLookupSet(dict, delDoc)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadUpdate, err)
	}
	ins, err := parseTripleSet(dict, insDoc)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadUpdate, err)
	}
	if delParsed == 0 && len(ins) == 0 {
		return nil, fmt.Errorf("%w: overwrite carried no triples", ErrBadUpdate)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(del) == 0 && len(ins) == 0 {
		// Every delete triple referenced terms the deployment has never
		// seen and there is nothing to insert: a whole-batch no-op, kept
		// off the writer path so a durable server doesn't log it.
		return &UpdateResult{
			DeltaTriples: s.dep.db.graph.DeltaLen(),
			Compactions:  s.dep.db.graph.Compactions(),
		}, nil
	}
	st, err := s.inner.Apply(ctx, serve.Batch{Op: serve.OpOverwrite, Del: del, Ins: ins, TTL: ttl})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Sweep forces one TTL sweep at the current instant, deleting every
// expired triple through the normal durable update path; it reports how
// many triples went away. The background sweeper does this on its
// interval — Sweep exists for deterministic tests and for embedders
// that disabled the background sweeper.
func (s *Server) Sweep() int { return s.inner.Sweep(time.Now()) }

// Delete parses an N-Triples document and removes its triples from the
// live deployment through the same serialized writer path as Update:
// matched triples are tombstoned in the delta overlays of the global
// graph, the hot/cold split and every fragment graph, and a fresh MVCC
// view publishes the removal atomically — in-flight queries keep the
// view they pinned. Deleting a triple the deployment never held is a
// no-op (it does not even intern the unknown terms), so Delete's stats
// report what actually went away.
func (s *Server) Delete(ctx context.Context, ntriples string) (*UpdateResult, error) {
	ts, err := parseDeleteBatch(s.dep.db.graph.Dict, ntriples)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadUpdate, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		// Every triple referenced a term the deployment has never seen,
		// so nothing can match: succeed as a whole-batch no-op without
		// touching the writer path (a durable server must not log an
		// empty batch — replay would reject it as carrying no triples).
		return &UpdateResult{
			DeltaTriples: s.dep.db.graph.DeltaLen(),
			Compactions:  s.dep.db.graph.Compactions(),
		}, nil
	}
	st, err := s.inner.Delete(ctx, ts)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// parseTripleSet parses an N-Triples document into deployment-dictionary
// triples, atomically: it parses into a scratch graph with a private
// dictionary first, so a batch rejected for syntax anywhere — even on
// its last line — leaves nothing behind, not even interned terms in the
// shared dictionary. Only a fully valid batch re-encodes into the
// deployment dictionary (concurrency-safe inserts); a valid batch that
// then fails admission (server closed) may leave its terms interned,
// which is benign — terms are content-addressed and carry no graph
// state. An empty document is a valid empty set (overwrite sides may be
// empty); callers that require triples check themselves. WAL replay
// parses recovered records through the same path, so recovery and the
// live path agree on what a batch means.
func parseTripleSet(d *rdf.Dict, ntriples string) ([]rdf.Triple, error) {
	scratch := rdf.NewGraph(nil)
	if _, err := rdf.ReadNTriples(scratch, strings.NewReader(ntriples)); err != nil {
		return nil, err
	}
	ts := make([]rdf.Triple, 0, scratch.NumTriples())
	for _, t := range scratch.Triples() {
		ts = append(ts, rdf.Triple{
			S: d.Encode(scratch.Dict.Decode(t.S)),
			P: d.Encode(scratch.Dict.Decode(t.P)),
			O: d.Encode(scratch.Dict.Decode(t.O)),
		})
	}
	return ts, nil
}

// parseUpdateBatch is parseTripleSet for paths where an empty document
// is a client error rather than an empty set.
func parseUpdateBatch(d *rdf.Dict, ntriples string) ([]rdf.Triple, error) {
	ts, err := parseTripleSet(d, ntriples)
	if err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("rdffrag: update carried no triples")
	}
	return ts, nil
}

// parseLookupSet parses a document with the same whole-batch atomicity
// as parseTripleSet, but resolves terms through the deployment
// dictionary without interning: a triple whose subject, predicate or
// object the deployment has never seen cannot possibly be present, so
// it is dropped from the set (a no-op delete, not an error) instead of
// polluting the shared dictionary with terms that exist nowhere. It
// additionally reports how many triples the document parsed to, so
// callers can tell an empty document from a fully-dropped one.
func parseLookupSet(d *rdf.Dict, ntriples string) (ts []rdf.Triple, parsed int, err error) {
	scratch := rdf.NewGraph(nil)
	if _, err := rdf.ReadNTriples(scratch, strings.NewReader(ntriples)); err != nil {
		return nil, 0, err
	}
	parsed = scratch.NumTriples()
	ts = make([]rdf.Triple, 0, parsed)
	for _, t := range scratch.Triples() {
		s, okS := d.Lookup(scratch.Dict.Decode(t.S))
		p, okP := d.Lookup(scratch.Dict.Decode(t.P))
		o, okO := d.Lookup(scratch.Dict.Decode(t.O))
		if !okS || !okP || !okO {
			continue
		}
		ts = append(ts, rdf.Triple{S: s, P: p, O: o})
	}
	return ts, parsed, nil
}

// parseDeleteBatch is parseLookupSet for paths where an empty document
// is a client error rather than an empty set.
func parseDeleteBatch(d *rdf.Dict, ntriples string) ([]rdf.Triple, error) {
	ts, parsed, err := parseLookupSet(d, ntriples)
	if err != nil {
		return nil, err
	}
	if parsed == 0 {
		return nil, fmt.Errorf("rdffrag: delete carried no triples")
	}
	return ts, nil
}

// encodeUpdateBatch renders an already-encoded batch back to N-Triples
// text — the write-ahead-log payload. Logging term text instead of raw
// IDs makes replay independent of dictionary ID assignment: IDs diverge
// across restarts (queries intern ad-hoc constants the log never sees),
// but re-encoding the text through parseUpdateBatch lands each term on
// whatever ID the recovered dictionary assigns it.
func encodeUpdateBatch(d *rdf.Dict, ts []rdf.Triple) []byte {
	var buf strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&buf, "%s %s %s .\n", d.Decode(t.S), d.Decode(t.P), d.Decode(t.O))
	}
	return []byte(buf.String())
}

// applyBatch is the serve layer's Apply sink: the batch's delete-set is
// tombstoned first (each matched triple removed everywhere it was
// routed), then its insert-set routes each new triple into every graph
// the query path might read it from. Both sets land under one caller
// (the serve layer holds the writer mutex) and one subsequent MVCC
// publish, which is what makes an overwrite atomic to readers; the
// delete-then-insert order plus latest-op-wins tombstone resolution
// means an overwrite that deletes and reinserts the same triple keeps
// it. Concurrent queries read pinned MVCC views throughout.
func (dep *Deployment) applyBatch(b serve.Batch) serve.UpdateStats {
	added, deleted := 0, 0
	for _, t := range b.Del {
		if !dep.db.graph.Delete(t) {
			continue // not present: a no-op, not a phantom
		}
		deleted++
		dep.unrouteTriple(t)
	}
	for _, t := range b.Ins {
		if !dep.db.graph.Add(t) {
			continue // duplicate
		}
		added++
		dep.routeTriple(t)
	}
	return serve.UpdateStats{
		Added:        added,
		Deleted:      deleted,
		DeltaTriples: dep.db.graph.DeltaLen(),
		Compactions:  dep.db.graph.Compactions(),
	}
}

// routeTriple places one new triple so every decomposition class finds
// it: hot-predicate triples go to the hot graph and — via incremental
// pattern maintenance — to every fragment whose generating pattern they
// complete a match of (pattern-routed subqueries read exactly those;
// fragments may overlap, and the control site dedups), everything else
// goes to the cold graph and the cold fragment (cold subqueries read it
// there; global subqueries read all fragments, cold included). Fragment
// graphs stay frozen — triples land in their delta overlays.
func (dep *Deployment) routeTriple(t rdf.Triple) {
	if dep.hc.FreqProps[t.P] {
		dep.hc.Hot.Add(t)
		// The writer matches against its own current state — a snapshot
		// taken right after the Add, so the anchored pattern search sees t.
		gsn := dep.db.graph.Snapshot()
		placed := false
		for _, f := range dep.frag.Fragments {
			if dep.maintainFragment(f, t, gsn) {
				placed = true
			}
		}
		gsn.Close()
		if placed {
			return
		}
		// A hot triple that completes no pattern match yet (selection
		// integrity makes this rare: one-edge patterns match any triple
		// of their property) stays reachable through the cold fragment,
		// the catch-all every global subquery reads. Later updates that
		// do complete a match re-discover it in the global graph.
	} else {
		dep.hc.Cold.Add(t)
	}
	dep.coldFragmentAdd(t)
}

// unrouteTriple is routeTriple's inverse for a triple just removed from
// the global graph: it tombstones t in the hot/cold split and in every
// fragment graph that may carry it. Fragment Delete is a no-op where t
// never landed, so no placement bookkeeping is needed. Partner triples
// of pattern matches t used to complete stay in their fragments — a
// fragment's contents remain a superset of its pattern's current
// matches, which keeps pattern-routed subqueries complete (the
// control-site join filters non-matches) while every graph stays a
// subset of what the deployment actually holds: t itself is gone
// everywhere.
func (dep *Deployment) unrouteTriple(t rdf.Triple) {
	if dep.hc.FreqProps[t.P] {
		dep.hc.Hot.Delete(t)
	} else {
		dep.hc.Cold.Delete(t)
	}
	for _, f := range dep.frag.Fragments {
		f.Graph.Delete(t)
	}
	if dep.frag.Cold != nil {
		dep.frag.Cold.Graph.Delete(t)
	}
}

// maintainFragment incrementally maintains one pattern fragment for a
// new triple t: for every pattern edge t can bind, the pattern is
// anchored on t (the edge's endpoints and predicate replaced by t's
// constants) and matched against the global graph, and every triple of
// every match joins the fragment. Fragment contents are MatchedGraph(P)
// — matches only, not all property-relevant triples — so this is what
// pulls in partner triples that were pruned at fragmentation time
// because they completed no match back then (e.g. a <name> edge whose
// subject only now gained the pattern's other property). It reports
// whether t completed at least one match (every anchored match contains
// t itself).
func (dep *Deployment) maintainFragment(f *fragment.Fragment, t rdf.Triple, gsn *rdf.Snapshot) bool {
	if f.Pattern == nil {
		return false
	}
	p := f.Pattern.Graph
	found := false
	for ei, e := range p.Edges {
		if !e.IsPredVar() && e.Pred != t.P {
			continue
		}
		if from := p.Verts[e.From]; !from.IsVar() && from.Term != t.S {
			continue
		}
		if to := p.Verts[e.To]; !to.IsVar() && to.Term != t.O {
			continue
		}
		if e.From == e.To && t.S != t.O {
			continue // a self-loop edge cannot bind a non-loop triple
		}
		match.ForEach(anchorPattern(p, ei, t), gsn, match.Options{}, func(m *match.Match) bool {
			found = true
			for _, tr := range m.Triples {
				f.Graph.Add(tr)
			}
			return true
		})
	}
	return found
}

// anchorPattern returns a copy of pattern p with edge ei bound to the
// data triple t: the edge's endpoint variables become the constants t.S
// and t.O everywhere they occur, and its predicate variable (if any)
// becomes t.P on every edge sharing it. Matches of the anchored pattern
// over the full graph are exactly the pattern matches t participates in
// through edge ei (a superset for patterns reusing the endpoints, which
// only adds other real matches — safe, fragments may overlap).
func anchorPattern(p *sparql.Graph, ei int, t rdf.Triple) *sparql.Graph {
	e := p.Edges[ei]
	subst := func(vi int) sparql.Vertex {
		switch vi {
		case e.From:
			return sparql.Vertex{Term: t.S}
		case e.To:
			return sparql.Vertex{Term: t.O}
		}
		return p.Verts[vi]
	}
	g := sparql.NewGraph()
	for _, pe := range p.Edges {
		pe2 := sparql.Edge{Pred: pe.Pred, PredVar: pe.PredVar}
		if e.IsPredVar() && pe.PredVar == e.PredVar {
			pe2 = sparql.Edge{Pred: t.P}
		}
		g.AddTriplePattern(subst(pe.From), pe2, subst(pe.To))
	}
	return g
}

// coldFragmentAdd appends to the cold fragment. StartServer materializes
// and places the fragment before serving begins (ensureColdFragment), so
// on the live path this is a pure delta append into an already-placed
// frozen graph — no fragmentation or allocation metadata mutates while
// lock-free queries read it.
func (dep *Deployment) coldFragmentAdd(t rdf.Triple) {
	dep.ensureColdFragment()
	dep.frag.Cold.Graph.Add(t)
}

// ensureColdFragment materializes, freezes and places the cold fragment
// if the deployment doesn't have one yet (the cold graph was empty at
// fragmentation time, so no cold site was allocated). It must run before
// queries execute concurrently: it mutates the fragmentation and
// allocation metadata the query router reads without a lock. Idempotent.
func (dep *Deployment) ensureColdFragment() {
	fr := dep.frag
	if fr.Cold == nil {
		maxID := 0
		for _, f := range fr.Fragments {
			if f.ID >= maxID {
				maxID = f.ID + 1
			}
		}
		g := rdf.NewGraph(dep.db.graph.Dict)
		// Freeze the empty graph so live updates land in its MVCC delta
		// overlay instead of mutating map-mode indexes under readers.
		g.Freeze()
		fr.Cold = &fragment.Fragment{
			ID:    maxID,
			Kind:  fragment.ColdKind,
			Graph: g,
		}
	}
	if dep.alloc.ColdSite < 0 {
		site := 0
		if err := dep.cluster.Place(site, fr.Cold.ID, fr.Cold.Graph); err != nil {
			return // site 0 always exists; unreachable
		}
		dep.alloc.Sites[site] = append(dep.alloc.Sites[site], fr.Cold)
		dep.alloc.SiteOf[fr.Cold.ID] = site
		dep.alloc.ColdSite = site
	}
}

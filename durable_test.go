package rdffrag

// Durability tests: bootstrap → update → abandon (simulated crash) →
// recover must reproduce the exact pre-crash query answers; checkpoints
// bound replay and retire covered WAL segments; a clean shutdown skips
// replay entirely; and a malformed update batch applies nothing and
// logs nothing.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func durableDeploy(t *testing.T) *Deployment {
	t.Helper()
	return deploySoak(t, 3, 40)
}

// durableUpdate generates batch i: a unique person chained into the soak
// schema, so every batch changes query answers detectably.
func durableUpdate(i int) string {
	return fmt.Sprintf("<U%d> <name> \"Update %d\" .\n<U%d> <interest> <I%d> .\n", i, i, i, i%5)
}

const durableProbe = `SELECT ?x ?n WHERE { ?x <name> ?n . ?x <interest> ?i . }`

func queryRows(t *testing.T, srv *Server, q string) []string {
	t.Helper()
	res, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	return sortedRows(res)
}

func TestDurableRecoverAfterAbandon(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "always"})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	dep := durableDeploy(t)
	if err := d.Bootstrap(dep); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	srv := dep.StartServer(ServerConfig{Workers: 2, Durable: d})

	const batches = 12
	for i := 0; i < batches; i++ {
		res, err := srv.Update(context.Background(), durableUpdate(i))
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if res.Seq != uint64(i+1) {
			t.Fatalf("update %d: seq = %d, want %d (acks must carry the WAL seq)", i, res.Seq, i+1)
		}
	}
	oracle := queryRows(t, srv, durableProbe)
	// Abandon without Close: with sync=always every acked batch is on
	// stable storage, so recovery owes us all of them.

	d2, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "always"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	dep2, err := d2.Recover(Config{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if d2.ReplayedRecords() != batches {
		t.Fatalf("replayed %d records, want %d (checkpoint was at seq 0)", d2.ReplayedRecords(), batches)
	}
	if d2.CleanStart() {
		t.Fatal("CleanStart true after an abandoned (crashed) server")
	}
	srv2 := dep2.StartServer(ServerConfig{Workers: 2, Durable: d2})
	defer srv2.Close()
	if got := queryRows(t, srv2, durableProbe); strings.Join(got, "\n") != strings.Join(oracle, "\n") {
		t.Fatalf("recovered answers diverge:\ngot  %d rows\nwant %d rows", len(got), len(oracle))
	}
	// The recovered server keeps sequencing where the log left off.
	res, err := srv2.Update(context.Background(), durableUpdate(batches))
	if err != nil {
		t.Fatalf("post-recovery update: %v", err)
	}
	if res.Seq != batches+1 {
		t.Fatalf("post-recovery seq = %d, want %d", res.Seq, batches+1)
	}
}

func TestDurableCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	// A tiny checkpoint threshold: the background checkpointer must fire
	// mid-stream, advance the checkpoint seq and retire covered segments.
	d, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "always", CheckpointBytes: 2 << 10, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	dep := durableDeploy(t)
	if err := d.Bootstrap(dep); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	srv := dep.StartServer(ServerConfig{Workers: 2, Durable: d})

	const batches = 60
	for i := 0; i < batches; i++ {
		if _, err := srv.Update(context.Background(), durableUpdate(i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	// Force one deterministic checkpoint so the assertion below doesn't
	// race the background one.
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if d.Checkpoints() == 0 || d.CheckpointSeq() == 0 {
		t.Fatalf("no checkpoint recorded (checkpoints=%d seq=%d)", d.Checkpoints(), d.CheckpointSeq())
	}
	oracle := queryRows(t, srv, durableProbe)
	ckptSeq := d.CheckpointSeq()

	d2, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "always"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	dep2, err := d2.Recover(Config{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// Replay is bounded by the checkpoint: exactly lastSeq − ckptSeq
	// records (the metrics reconciliation the crash soak also checks).
	if want := uint64(batches) - ckptSeq; d2.ReplayedRecords() != want {
		t.Fatalf("replayed %d records, want %d (checkpoint at %d of %d)", d2.ReplayedRecords(), want, ckptSeq, batches)
	}
	srv2 := dep2.StartServer(ServerConfig{Workers: 2, Durable: d2})
	defer srv2.Close()
	if got := queryRows(t, srv2, durableProbe); strings.Join(got, "\n") != strings.Join(oracle, "\n") {
		t.Fatalf("recovered answers diverge after checkpointed recovery")
	}
}

func TestDurableCleanShutdownSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	// sync=interval: acks may run ahead of the disk — the graceful-close
	// path must still lose nothing (final checkpoint + fsync + marker).
	d, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "interval"})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	dep := durableDeploy(t)
	if err := d.Bootstrap(dep); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	srv := dep.StartServer(ServerConfig{Workers: 2, Durable: d})
	for i := 0; i < 8; i++ {
		if _, err := srv.Update(context.Background(), durableUpdate(i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	oracle := queryRows(t, srv, durableProbe)
	srv.Close()

	d2, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "interval"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	dep2, err := d2.Recover(Config{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !d2.CleanStart() {
		t.Fatal("CleanStart false after a graceful Close")
	}
	if d2.ReplayedRecords() != 0 {
		t.Fatalf("replayed %d records after clean shutdown, want 0", d2.ReplayedRecords())
	}
	srv2 := dep2.StartServer(ServerConfig{Workers: 2, Durable: d2})
	defer srv2.Close()
	if got := queryRows(t, srv2, durableProbe); strings.Join(got, "\n") != strings.Join(oracle, "\n") {
		t.Fatal("clean shutdown lost acknowledged updates under sync=interval")
	}
}

// TestUpdateAtomicityOnMalformedBatch is the regression test for partial
// application: a batch whose parse fails midway must apply none of its
// triples and must not write a WAL record (a rejected batch replayed at
// recovery would resurrect the rejection as state).
func TestUpdateAtomicityOnMalformedBatch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "always"})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	dep := durableDeploy(t)
	if err := d.Bootstrap(dep); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	srv := dep.StartServer(ServerConfig{Workers: 2, Durable: d})
	defer srv.Close()

	if _, err := srv.Update(context.Background(), durableUpdate(0)); err != nil {
		t.Fatalf("valid update: %v", err)
	}
	before := queryRows(t, srv, durableProbe)
	beforeTriples := dep.db.graph.NumTriples()
	beforeSeq := d.LastSeq()

	// Two valid lines, then garbage: nothing from this batch may land.
	bad := durableUpdate(1) + "<U999> <name> not-a-term .\n"
	if _, err := srv.Update(context.Background(), bad); err == nil {
		t.Fatal("malformed batch accepted")
	}
	if got := dep.db.graph.NumTriples(); got != beforeTriples {
		t.Fatalf("malformed batch partially applied: %d -> %d triples", beforeTriples, got)
	}
	if after := queryRows(t, srv, durableProbe); strings.Join(after, "\n") != strings.Join(before, "\n") {
		t.Fatal("malformed batch changed query answers")
	}
	if d.LastSeq() != beforeSeq {
		t.Fatalf("malformed batch logged: WAL seq %d -> %d", beforeSeq, d.LastSeq())
	}
	// The server keeps accepting valid batches afterwards.
	res, err := srv.Update(context.Background(), durableUpdate(2))
	if err != nil {
		t.Fatalf("post-rejection update: %v", err)
	}
	if res.Seq != beforeSeq+1 {
		t.Fatalf("post-rejection seq = %d, want %d", res.Seq, beforeSeq+1)
	}
}

// TestServerWALMetricsExposed: a durable server's metrics carry the WAL
// section; a plain server's don't.
func TestServerWALMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "always"})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	dep := durableDeploy(t)
	if err := d.Bootstrap(dep); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	srv := dep.StartServer(ServerConfig{Workers: 2, Durable: d})
	defer srv.Close()
	if _, err := srv.Update(context.Background(), durableUpdate(0)); err != nil {
		t.Fatalf("update: %v", err)
	}
	m := srv.Metrics()
	if m.WAL == nil {
		t.Fatal("durable server metrics missing WAL section")
	}
	if m.WAL.SyncPolicy != "always" || m.WAL.Appends == 0 || m.WAL.Fsyncs == 0 || m.WAL.LastSeq != 1 {
		t.Fatalf("WAL metrics off: %+v", *m.WAL)
	}

	plain := durableDeploy(t).StartServer(ServerConfig{Workers: 2})
	defer plain.Close()
	if plain.Metrics().WAL != nil {
		t.Fatal("non-durable server grew a WAL metrics section")
	}
}

// TestDurableRejectsForeignWAL: recovering a checkpoint against a WAL
// from a different deployment must fail the dictionary fingerprint
// check, not replay garbage.
func TestDurableRejectsForeignWAL(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for i, dir := range []string{dirA, dirB} {
		d, err := OpenDurable(DurabilityConfig{Dir: dir, Sync: "always"})
		if err != nil {
			t.Fatalf("OpenDurable: %v", err)
		}
		var dep *Deployment
		if i == 0 {
			dep = durableDeploy(t)
		} else {
			// A different deployment: different data → different dict.
			db := Open(Config{Sites: 2, MinSupport: 0.2})
			if _, err := db.LoadNTriples(strings.NewReader(soakNT(25, 500))); err != nil {
				t.Fatal(err)
			}
			dep, err = db.Deploy(soakWorkload)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Bootstrap(dep); err != nil {
			t.Fatalf("Bootstrap: %v", err)
		}
		// Abandon (no Close): leave a non-empty replay tail behind.
		srv := dep.StartServer(ServerConfig{Workers: 1, Durable: d})
		if _, err := srv.Update(context.Background(), durableUpdate(i)); err != nil {
			t.Fatalf("update: %v", err)
		}
	}

	// Splice B's WAL behind A's checkpoint.
	if err := copyDir(t, dirB+"/wal", dirA+"/wal"); err != nil {
		t.Fatalf("splice: %v", err)
	}
	d, err := OpenDurable(DurabilityConfig{Dir: dirA, Sync: "always"})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if _, err := d.Recover(Config{}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("Recover accepted a foreign WAL (err=%v)", err)
	}
}

// copyDir copies every regular file of src into dst, overwriting.
func copyDir(t *testing.T, src, dst string) error {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

package rdffrag

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 3, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	ex, err := dep.Explain(`SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . ?x <imageSkyline> ?img . }`)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(ex.Subqueries) < 2 {
		t.Fatalf("subqueries = %d, want >= 2 (pattern + cold)", len(ex.Subqueries))
	}
	kinds := map[string]int{}
	for _, st := range ex.Subqueries {
		kinds[st.Kind]++
		if st.Kind != "cold" && len(st.Fragments) == 0 {
			t.Errorf("step %q has no fragments", st.Text)
		}
		if st.EstimatedCard < 1 {
			t.Errorf("step %q card = %d", st.Text, st.EstimatedCard)
		}
	}
	if kinds["cold"] != 1 {
		t.Errorf("cold steps = %d, want 1", kinds["cold"])
	}
	if len(ex.JoinOrder) != len(ex.Subqueries) {
		t.Errorf("join order %v does not cover %d subqueries", ex.JoinOrder, len(ex.Subqueries))
	}
	out := ex.String()
	if !strings.Contains(out, "cold") || !strings.Contains(out, "fragment") {
		t.Errorf("rendering = %q", out)
	}
}

func TestExplainMatchesExecution(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 3, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	query := `SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> <Ethics> . }`
	ex, err := dep.Explain(query)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	res, err := dep.Query(query)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ex.Subqueries) != res.Stats.Subqueries {
		t.Errorf("explain subqueries %d != executed %d", len(ex.Subqueries), res.Stats.Subqueries)
	}
	// The explained site set must cover the sites actually touched.
	sites := map[int]bool{}
	for _, st := range ex.Subqueries {
		for _, f := range st.Fragments {
			sites[f.Site] = true
		}
	}
	if len(sites) < res.Stats.SitesTouched {
		t.Errorf("explain sites %d < executed %d", len(sites), res.Stats.SitesTouched)
	}
}

func TestQueryLimit(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	all, err := dep.Query(`SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(all.Rows) < 3 {
		t.Fatalf("need >= 3 rows for the limit test, got %d", len(all.Rows))
	}
	limited, err := dep.Query(`SELECT ?x ?n WHERE { ?x <name> ?n . } LIMIT 2`)
	if err != nil {
		t.Fatalf("Query LIMIT: %v", err)
	}
	if len(limited.Rows) != 2 {
		t.Errorf("LIMIT 2 returned %d rows", len(limited.Rows))
	}
	if _, err := dep.Query(`SELECT ?x WHERE { ?x <name> ?n . } LIMIT abc`); err == nil {
		t.Error("bad LIMIT accepted")
	}
}

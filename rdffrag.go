// Package rdffrag is a workload-driven distributed RDF store: a Go
// implementation of "Query Workload-based RDF Graph Fragmentation and
// Allocation" (Peng, Zou, Chen, Zhao — EDBT 2016).
//
// The pipeline: load an RDF graph and a SPARQL query workload, mine
// frequent access patterns from the workload, select a pattern subset
// under a storage budget (NP-hard; greedy with approximation guarantee),
// fragment the graph vertically (throughput-oriented) or horizontally
// (latency-oriented), allocate fragments to sites by workload affinity,
// and answer queries by cost-based decomposition into pattern-shaped
// subqueries evaluated only on the relevant sites.
//
// Quick start:
//
//	db := rdffrag.Open(rdffrag.Config{Sites: 4})
//	db.LoadNTriples(file)
//	dep, err := db.Deploy(workloadQueries)
//	res, err := dep.Query(`SELECT ?x WHERE { ?x <p> ?y . }`)
package rdffrag

import (
	"fmt"
	"io"

	"rdffrag/internal/allocation"
	"rdffrag/internal/cluster"
	"rdffrag/internal/dict"
	"rdffrag/internal/exec"
	"rdffrag/internal/fap"
	"rdffrag/internal/fragment"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// Strategy selects the fragmentation flavour of Section 5.
type Strategy string

const (
	// Vertical fragmentation groups all matches of one access pattern
	// into one fragment — best throughput (Section 5.1).
	Vertical Strategy = "vertical"
	// Horizontal fragmentation splits each pattern's matches by
	// structural minterm predicates — best single-query latency
	// (Section 5.2).
	Horizontal Strategy = "horizontal"
)

// Config tunes the offline pipeline. The zero value is usable.
type Config struct {
	// Strategy picks vertical (default) or horizontal fragmentation.
	Strategy Strategy
	// Sites is the number of simulated sites (default 4).
	Sites int
	// WorkersPerSite bounds per-site evaluation concurrency (default 4,
	// mirroring the paper's 4-core machines).
	WorkersPerSite int
	// MinSupport is the pattern-mining threshold as a fraction of the
	// workload (default 0.01; the paper's DBpedia setting is 0.001).
	MinSupport float64
	// Theta is the hot/cold property threshold as a workload fraction
	// (default: same as MinSupport).
	Theta float64
	// StorageFactor sets the storage constraint SC as a multiple of the
	// hot graph size (default 3).
	StorageFactor float64
	// MaxPatternEdges caps mined pattern size (default 10).
	MaxPatternEdges int
	// MaxSimplePreds caps minterm growth per pattern for horizontal
	// fragmentation (default 3).
	MaxSimplePreds int
}

func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = Vertical
	}
	if c.Sites <= 0 {
		c.Sites = 4
	}
	if c.WorkersPerSite <= 0 {
		c.WorkersPerSite = 4
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 0.01
	}
	if c.Theta <= 0 {
		c.Theta = c.MinSupport
	}
	if c.StorageFactor <= 0 {
		c.StorageFactor = 3
	}
	return c
}

// DB is an RDF store awaiting deployment.
type DB struct {
	cfg   Config
	graph *rdf.Graph
}

// Open creates an empty store.
func Open(cfg Config) *DB {
	return &DB{cfg: cfg.withDefaults(), graph: rdf.NewGraph(nil)}
}

// LoadNTriples parses N-Triples into the store, returning the number of
// triples read.
func (db *DB) LoadNTriples(r io.Reader) (int, error) {
	return rdf.ReadNTriples(db.graph, r)
}

// LoadTurtle parses a Turtle subset (prefixes, 'a', ';'/',' lists,
// literals with language tags or datatypes) into the store.
func (db *DB) LoadTurtle(r io.Reader) (int, error) {
	return rdf.ReadTurtle(db.graph, r)
}

// AddTriple inserts one triple given as N-Triples-style terms: IRIs bare
// ("http://ex/a") and literals via Lit.
func (db *DB) AddTriple(subject, predicate, object string) {
	db.graph.AddTerms(rdf.NewIRI(subject), rdf.NewIRI(predicate), rdf.NewIRI(object))
}

// AddTripleLit inserts a triple whose object is a literal.
func (db *DB) AddTripleLit(subject, predicate, literal string) {
	db.graph.AddTerms(rdf.NewIRI(subject), rdf.NewIRI(predicate), rdf.NewLiteral(literal))
}

// NumTriples reports the loaded size.
func (db *DB) NumTriples() int { return db.graph.NumTriples() }

// Graph exposes the underlying graph for advanced integrations (the
// benchmark harness uses it); most callers never need it.
func (db *DB) Graph() *rdf.Graph { return db.graph }

// Deploy runs the offline pipeline of Sections 3–6 over the given SPARQL
// workload and starts the cluster (in-process sites by default; any
// subset can be re-homed to remote fragment-host processes via
// ServerConfig.Remote / SiteHandler).
func (db *DB) Deploy(workloadQueries []string) (*Deployment, error) {
	parser := sparql.NewParser(db.graph.Dict)
	workload := make([]*sparql.Graph, 0, len(workloadQueries))
	for i, qs := range workloadQueries {
		q, err := parser.Parse(qs)
		if err != nil {
			return nil, fmt.Errorf("rdffrag: workload query %d: %w", i, err)
		}
		workload = append(workload, q)
	}
	return db.DeployParsed(workload)
}

// DeployParsed is Deploy for already-parsed query graphs (they must share
// this store's dictionary).
func (db *DB) DeployParsed(workload []*sparql.Graph) (*Deployment, error) {
	cfg := db.cfg
	if len(workload) == 0 {
		return nil, fmt.Errorf("rdffrag: empty workload; workload-driven fragmentation needs queries")
	}
	theta := atLeast1(cfg.Theta * float64(len(workload)))
	minSup := atLeast1(cfg.MinSupport * float64(len(workload)))

	// Compile the loaded graph into its immutable CSR form before the
	// match-heavy offline pipeline; Add after deployment goes to the
	// delta overlay (Server.Update), not back to map mode.
	db.graph.Freeze()
	hc := fragment.SplitHotCold(db.graph, workload, theta)
	patterns := (&mining.Miner{MinSup: minSup, MaxEdges: cfg.MaxPatternEdges}).Mine(workload)
	sel, err := (&fap.Selector{
		StorageCapacity: int(cfg.StorageFactor * float64(hc.Hot.NumTriples())),
	}).Select(patterns, workload, hc.Hot)
	if err != nil {
		return nil, err
	}

	var fr *fragment.Fragmentation
	if cfg.Strategy == Horizontal {
		fr = fragment.Horizontal(sel, workload, hc, fragment.HorizontalOptions{
			MaxSimplePreds: cfg.MaxSimplePreds,
		})
	} else {
		fr = fragment.Vertical(sel, hc)
	}
	alloc := allocation.Allocate(fr, workload, cfg.Sites)
	dd := dict.Build(fr, alloc, workload)
	cl := cluster.New(cfg.Sites, cfg.WorkersPerSite)
	engine, err := exec.New(cl, dd, fr, alloc, hc)
	if err != nil {
		return nil, err
	}
	return &Deployment{
		db:       db,
		cfg:      cfg,
		workload: workload,
		hc:       hc,
		mined:    patterns,
		sel:      sel,
		frag:     fr,
		alloc:    alloc,
		dict:     dd,
		cluster:  cl,
		engine:   engine,
	}, nil
}

func atLeast1(x float64) int {
	n := int(x)
	if n < 1 {
		n = 1
	}
	return n
}

package rdffrag

// Durable updates: every acknowledged update batch — insert or delete,
// told apart by the WAL record's kind byte — is appended to a
// write-ahead log before it is applied, and a background checkpointer
// periodically folds the log into a persist.Save snapshot stamped with
// the last applied WAL sequence number. Restart loads the latest
// checkpoint and replays the WAL tail through the exact same
// Deployment.applyBatch path the live server uses, truncating at the
// first torn or CRC-failing record — so a crash (SIGKILL, power cut)
// loses at most updates that were never acknowledged (SyncAlways) or
// the last unflushed group-commit window (SyncInterval), and never
// yields torn, duplicated or resurrected state: replay is idempotent by
// sequence number, and re-applying a delete to a triple already gone is
// a no-op.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdffrag/internal/rdf"
	"rdffrag/internal/serve"
	"rdffrag/internal/wal"
)

const (
	checkpointFile = "checkpoint.snap"
	cleanMarker    = "CLEAN"
	walSubdir      = "wal"
)

// DurabilityConfig configures a data directory for durable updates.
type DurabilityConfig struct {
	// Dir is the data directory: WAL segments (Dir/wal), the checkpoint
	// snapshot and the clean-shutdown marker. Required.
	Dir string
	// Sync is the WAL fsync policy: "always" (fsync per batch, before
	// the ack), "interval" (group commit on a flush ticker; an ack can
	// run ahead of the disk by up to FlushInterval) or "none" (tests).
	// Default "interval".
	Sync string
	// FlushInterval is the group-commit period for Sync == "interval"
	// (default 2ms).
	FlushInterval time.Duration
	// SegmentBytes rotates WAL segments past this size (default 64 MiB).
	SegmentBytes int64
	// CheckpointBytes triggers a background checkpoint once the live
	// WAL grows past it (default 8 MiB).
	CheckpointBytes int64
	// FS overrides the WAL's filesystem — the fault-injection seam the
	// crash harness uses (wal.NewChaosFS). Nil means the real
	// filesystem. Checkpoint snapshots always use the real filesystem:
	// their tmp+fsync+rename dance is atomic against crashes by
	// construction, so the interesting fault surface is the log tail.
	FS wal.FS
}

func (c DurabilityConfig) withDefaults() (DurabilityConfig, wal.SyncPolicy, error) {
	if c.Dir == "" {
		return c, 0, fmt.Errorf("rdffrag: DurabilityConfig.Dir is required")
	}
	if c.Sync == "" {
		c.Sync = "interval"
	}
	pol, err := wal.ParseSyncPolicy(c.Sync)
	if err != nil {
		return c, 0, fmt.Errorf("rdffrag: %w", err)
	}
	if c.CheckpointBytes <= 0 {
		c.CheckpointBytes = 8 << 20
	}
	return c, pol, nil
}

// Durable is a deployment's durability engine. Open one with
// OpenDurable, then either Recover (the data directory holds a
// checkpoint from a previous run) or Bootstrap (a freshly built
// deployment), and pass it to StartServer via ServerConfig.Durable;
// Server.Close then checkpoints, writes the clean-shutdown marker and
// closes the log.
type Durable struct {
	cfg DurabilityConfig
	pol wal.SyncPolicy
	log *wal.Log
	dep *Deployment
	srv *Server // set by StartServer; checkpoints run under its data lock

	appliedSeq    atomic.Uint64 // newest WAL seq applied to the deployment
	checkpointSeq atomic.Uint64 // WAL seq the latest checkpoint covers
	checkpoints   atomic.Uint64
	compactions   atomic.Uint64 // global-graph compaction count at last checkpoint kick
	replayed      uint64        // records Recover applied; read-only afterwards
	cleanStart    bool

	kick      chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// HasCheckpoint reports whether dir holds a recoverable checkpoint —
// the Recover-vs-Bootstrap dispatch.
func HasCheckpoint(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, checkpointFile))
	return err == nil
}

// OpenDurable validates cfg and prepares the data directory. No state
// is loaded yet: follow with Recover or Bootstrap.
func OpenDurable(cfg DurabilityConfig) (*Durable, error) {
	cfg, pol, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("rdffrag: data dir: %w", err)
	}
	return &Durable{
		cfg:  cfg,
		pol:  pol,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Recover rebuilds the deployment from the data directory: it loads the
// checkpoint snapshot, opens the WAL (truncating any torn tail), and
// replays every record past the checkpoint's sequence stamp through
// Deployment.applyUpdate. Only cfg's runtime knobs apply — structure
// comes from the snapshot. After a clean shutdown the replay is empty
// and CleanStart reports true.
func (d *Durable) Recover(cfg Config) (*Deployment, error) {
	if d.dep != nil {
		return nil, fmt.Errorf("rdffrag: Durable already bound to a deployment")
	}
	// A crash mid-checkpoint can leave a stale temp file; the rename
	// never happened, so the previous checkpoint is still the truth.
	os.Remove(filepath.Join(d.cfg.Dir, checkpointFile+".tmp"))
	markerSeq, hadMarker := readCleanMarker(d.cfg.Dir)
	// The marker only certifies the state at the moment it was written;
	// any progress past this point invalidates it.
	os.Remove(filepath.Join(d.cfg.Dir, cleanMarker))

	f, err := os.Open(filepath.Join(d.cfg.Dir, checkpointFile))
	if err != nil {
		return nil, fmt.Errorf("rdffrag: no checkpoint in %s (bootstrap the deployment first): %w", d.cfg.Dir, err)
	}
	dep, err := LoadDeployment(f, cfg)
	f.Close()
	if err != nil {
		return nil, err
	}
	base := dep.walSeq
	d.appliedSeq.Store(base)
	d.checkpointSeq.Store(base)
	if err := d.openLog(dep); err != nil {
		return nil, err
	}

	// Replay the tail. Segment headers whose dictionary stamp falls
	// inside the checkpoint's dictionary are verified against it — a
	// WAL from a different deployment fails here instead of replaying
	// garbage. Stamps past the checkpoint length are unverifiable: the
	// original dictionary also interned ad-hoc query constants the log
	// never carries, so the recovered dictionary legitimately diverges
	// beyond the data prefix (which is why records log term text, not
	// IDs).
	dict := dep.db.graph.Dict
	baseLen := dict.Len()
	err = d.log.Replay(base, func(segLen int, segFP uint64) error {
		if segLen <= baseLen && dict.Fingerprint(segLen) != segFP {
			return fmt.Errorf("rdffrag: WAL segment dictionary fingerprint mismatch: log and checkpoint are from different deployments")
		}
		return nil
	}, func(rec wal.Record) error {
		b, err := decodeWALRecord(dict, rec)
		if err != nil {
			return fmt.Errorf("rdffrag: WAL replay: record %d: %w", rec.Seq, err)
		}
		dep.applyBatch(b)
		d.appliedSeq.Store(rec.Seq)
		d.replayed++
		return nil
	})
	if err != nil {
		d.log.Close()
		return nil, err
	}
	if d.replayed > 0 {
		// The engine's published MVCC view was taken at load time,
		// before the replay landed in the delta overlays; publish a
		// fresh one so the first queries see the recovered state.
		dep.engine.Views().Publish()
	}
	d.cleanStart = hadMarker && d.replayed == 0 && markerSeq == d.log.LastSeq()
	d.compactions.Store(dep.db.graph.Compactions())
	d.dep = dep
	return dep, nil
}

// Bootstrap makes a freshly built deployment durable: it writes the
// initial checkpoint (sequence 0) and opens a fresh WAL, so a crash at
// any later point recovers through Recover.
func (d *Durable) Bootstrap(dep *Deployment) error {
	if d.dep != nil {
		return fmt.Errorf("rdffrag: Durable already bound to a deployment")
	}
	os.Remove(filepath.Join(d.cfg.Dir, cleanMarker))
	d.dep = dep
	if err := d.writeCheckpoint(0); err != nil {
		d.dep = nil
		return err
	}
	if err := d.openLog(dep); err != nil {
		d.dep = nil
		return err
	}
	d.compactions.Store(dep.db.graph.Compactions())
	return nil
}

func (d *Durable) openLog(dep *Deployment) error {
	dict := dep.db.graph.Dict
	log, err := wal.Open(wal.Options{
		Dir:           filepath.Join(d.cfg.Dir, walSubdir),
		Sync:          d.pol,
		FlushInterval: d.cfg.FlushInterval,
		SegmentBytes:  d.cfg.SegmentBytes,
		DictState: func() (int, uint64) {
			n := dict.Len()
			return n, dict.Fingerprint(n)
		},
		FS: d.cfg.FS,
	})
	if err != nil {
		return err
	}
	d.log = log
	return nil
}

// decodeWALRecord inverts encodeWALPayload: it parses one recovered
// record back into the batch applyDurable logged. Deletes (and the
// delete side of overwrites) replay through Encode (interning), not
// Lookup: the batch's terms were in the dictionary when the record was
// logged, so post-checkpoint they resolve to the same triples; a term
// the recovered dictionary genuinely lacks yields a triple that was
// never present, and deleting it is a no-op.
func decodeWALRecord(dict *rdf.Dict, rec wal.Record) (serve.Batch, error) {
	switch rec.Kind {
	case wal.KindDelete:
		ts, err := parseUpdateBatch(dict, string(rec.Payload))
		if err != nil {
			return serve.Batch{}, err
		}
		return serve.Batch{Op: serve.OpDelete, Del: ts}, nil
	case wal.KindOverwrite:
		delDoc, insDoc, err := splitOverwritePayload(rec.Payload)
		if err != nil {
			return serve.Batch{}, err
		}
		del, err := parseTripleSet(dict, string(delDoc))
		if err != nil {
			return serve.Batch{}, err
		}
		ins, err := parseTripleSet(dict, string(insDoc))
		if err != nil {
			return serve.Batch{}, err
		}
		if len(del) == 0 && len(ins) == 0 {
			return serve.Batch{}, fmt.Errorf("rdffrag: overwrite record carried no triples")
		}
		return serve.Batch{Op: serve.OpOverwrite, Del: del, Ins: ins}, nil
	default:
		ts, err := parseUpdateBatch(dict, string(rec.Payload))
		if err != nil {
			return serve.Batch{}, err
		}
		return serve.Batch{Op: serve.OpInsert, Ins: ts}, nil
	}
}

// encodeWALPayload renders one batch into its WAL record: the kind byte
// carries the operation and the payload the triple text. An overwrite's
// two sides share a single record — a single CRC frame — which is the
// whole atomicity story: a crash either persists the frame (recovery
// replays delete-set and insert-set together) or tears it (recovery
// truncates the frame whole), never half.
func encodeWALPayload(dict *rdf.Dict, b serve.Batch) (wal.Kind, []byte) {
	switch b.Op {
	case serve.OpDelete:
		return wal.KindDelete, encodeUpdateBatch(dict, b.Del)
	case serve.OpOverwrite:
		return wal.KindOverwrite, encodeOverwritePayload(
			encodeUpdateBatch(dict, b.Del), encodeUpdateBatch(dict, b.Ins))
	default:
		return wal.KindInsert, encodeUpdateBatch(dict, b.Ins)
	}
}

// encodeOverwritePayload frames an overwrite record's payload:
// uint32 little-endian len(deleteDoc) | deleteDoc | insertDoc.
func encodeOverwritePayload(delDoc, insDoc []byte) []byte {
	buf := make([]byte, 4, 4+len(delDoc)+len(insDoc))
	binary.LittleEndian.PutUint32(buf, uint32(len(delDoc)))
	buf = append(buf, delDoc...)
	return append(buf, insDoc...)
}

// splitOverwritePayload inverts encodeOverwritePayload.
func splitOverwritePayload(p []byte) (delDoc, insDoc []byte, err error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("rdffrag: overwrite payload too short (%d bytes)", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n < 0 || 4+n > len(p) {
		return nil, nil, fmt.Errorf("rdffrag: overwrite payload delete-doc length %d exceeds payload", n)
	}
	return p[4 : 4+n], p[4+n:], nil
}

// applyDurable is the serve-layer Apply sink of a durable deployment:
// WAL append first (under SyncAlways the fsync happens inside, so a
// batch is on stable storage before the caller can ack it), then the
// normal in-memory apply. The record kind carries the operation, so
// replay re-applies deletes as deletes and overwrites as one atomic
// swap. The caller holds the server's writer mutex, so append order,
// sequence order and apply order all agree. A failed append rejects the
// batch before anything mutates.
func (d *Durable) applyDurable(b serve.Batch) (serve.UpdateStats, error) {
	kind, payload := encodeWALPayload(d.dep.db.graph.Dict, b)
	seq, err := d.log.Append(kind, payload)
	if err != nil {
		return serve.UpdateStats{}, fmt.Errorf("rdffrag: %w", err)
	}
	st := d.dep.applyBatch(b)
	st.Seq = seq
	d.appliedSeq.Store(seq)
	// Kick the checkpointer when the log has grown past the configured
	// bound, or when the global graph compacted (the snapshot is about
	// to be cheap to write and the delta overlay is empty anyway).
	if d.log.Size() >= d.cfg.CheckpointBytes || st.Compactions > d.compactions.Load() {
		d.compactions.Store(st.Compactions)
		select {
		case d.kick <- struct{}{}:
		default:
		}
	}
	return st, nil
}

// start binds the running server (checkpoints need its Exclusive lock)
// and launches the background checkpointer.
func (d *Durable) start(s *Server) {
	d.srv = s
	go func() {
		defer close(d.done)
		for {
			select {
			case <-d.stop:
				return
			case <-d.kick:
				d.Checkpoint() // a failed background checkpoint retries on the next kick
			}
		}
	}()
}

// Checkpoint writes a snapshot of the current state stamped with the
// last applied WAL sequence, atomically (tmp + fsync + rename), then
// rotates the log and retires the segments the snapshot covers. Runs
// under the server's exclusive data lock when one is attached, so the
// state it captures is a consistent batch boundary.
func (d *Durable) Checkpoint() error {
	var err error
	run := func() { err = d.checkpointLocked() }
	if d.srv != nil {
		d.srv.inner.Exclusive(run)
	} else {
		run()
	}
	return err
}

func (d *Durable) checkpointLocked() error {
	seq := d.appliedSeq.Load()
	if err := d.writeCheckpoint(seq); err != nil {
		return err
	}
	// The snapshot's compact-on-save bumped the graph's compaction
	// counter; re-baseline so that bump doesn't read as an
	// engine-initiated compaction and re-trigger a checkpoint.
	d.compactions.Store(d.dep.db.graph.Compactions())
	// Crash ordering: the checkpoint is durable before any log segment
	// is removed, and replay filters on the sequence stamp — a crash
	// between rename and retire just replays zero records from the
	// not-yet-retired segments.
	if err := d.log.Rotate(); err != nil {
		return err
	}
	if err := d.log.Retire(seq); err != nil {
		return err
	}
	d.checkpointSeq.Store(seq)
	d.checkpoints.Add(1)
	return nil
}

// writeCheckpoint persists the deployment snapshot atomically: written
// to a temp file, fsynced, renamed over the previous checkpoint, with
// the directory fsynced so the rename itself survives a power cut. A
// crash at any point leaves either the old or the new checkpoint
// intact, never a torn one.
func (d *Durable) writeCheckpoint(seq uint64) error {
	final := filepath.Join(d.cfg.Dir, checkpointFile)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("rdffrag: checkpoint: %w", err)
	}
	err = d.dep.saveState(f, seq)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err == nil {
		err = syncDir(d.cfg.Dir)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("rdffrag: checkpoint: %w", err)
	}
	return nil
}

// shutdown is the clean path, run by Server.Close after the last update
// has drained: final checkpoint (which empties the replayable tail —
// this is what makes SIGTERM lossless even under Sync == "interval"),
// clean-shutdown marker, log closed.
func (d *Durable) shutdown() {
	d.closeOnce.Do(func() {
		close(d.stop)
		if d.srv != nil {
			<-d.done
		}
		if err := d.Checkpoint(); err == nil {
			writeCleanMarker(d.cfg.Dir, d.log.LastSeq())
		}
		d.log.Close()
	})
}

// walMetrics feeds the serve layer's metrics snapshot.
func (d *Durable) walMetrics() serve.WALMetrics {
	m := d.log.Metrics()
	return serve.WALMetrics{
		SyncPolicy:      d.pol.String(),
		Appends:         m.Appends,
		Fsyncs:          m.Fsyncs,
		AppendedBytes:   m.AppendedBytes,
		LiveBytes:       m.LiveBytes,
		Segments:        m.Segments,
		LastSeq:         m.LastSeq,
		CheckpointSeq:   d.checkpointSeq.Load(),
		Checkpoints:     d.checkpoints.Load(),
		ReplayedRecords: d.replayed,
		AppendP99:       m.AppendP99,
		FsyncP99:        m.FsyncP99,
	}
}

// CleanStart reports whether the last Recover found a clean-shutdown
// marker and an empty replay tail (restart skipped replay entirely).
func (d *Durable) CleanStart() bool { return d.cleanStart }

// ReplayedRecords is how many WAL records the last Recover applied.
func (d *Durable) ReplayedRecords() uint64 { return d.replayed }

// LastSeq is the newest WAL sequence number.
func (d *Durable) LastSeq() uint64 { return d.log.LastSeq() }

// CheckpointSeq is the WAL sequence the latest checkpoint covers.
func (d *Durable) CheckpointSeq() uint64 { return d.checkpointSeq.Load() }

// Checkpoints counts checkpoints written since this Durable opened.
func (d *Durable) Checkpoints() uint64 { return d.checkpoints.Load() }

// writeCleanMarker records "this directory was closed cleanly at WAL
// sequence seq"; fsynced, since its whole point is surviving the power
// going out right after shutdown.
func writeCleanMarker(dir string, seq uint64) error {
	path := filepath.Join(dir, cleanMarker)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(f, "clean %d\n", seq)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = syncDir(dir)
	}
	return err
}

// readCleanMarker inverts writeCleanMarker.
func readCleanMarker(dir string) (seq uint64, ok bool) {
	b, err := os.ReadFile(filepath.Join(dir, cleanMarker))
	if err != nil {
		return 0, false
	}
	var s uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(b)), "clean %d", &s); err != nil {
		return 0, false
	}
	return s, true
}

// syncDir fsyncs a directory so a just-renamed or just-removed entry
// survives a crash.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	f.Close()
	return err
}

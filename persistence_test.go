package rdffrag

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 3, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	query := `SELECT ?x WHERE { ?x <influencedBy> <Aristotle> . ?x <name> ?n . }`
	want, err := dep.Query(query)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}

	var buf bytes.Buffer
	if err := dep.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	restored, err := LoadDeployment(&buf, Config{WorkersPerSite: 2})
	if err != nil {
		t.Fatalf("LoadDeployment: %v", err)
	}
	got, err := restored.Query(query)
	if err != nil {
		t.Fatalf("restored Query: %v", err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("restored rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Errorf("row %d col %d: %q vs %q", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	// Structural stats must survive.
	ws, gs := dep.Stats(), restored.Stats()
	if gs.Fragments != ws.Fragments || gs.HotTriples != ws.HotTriples ||
		gs.ColdTriples != ws.ColdTriples || gs.Sites != ws.Sites {
		t.Errorf("stats drifted: %+v vs %+v", gs, ws)
	}
	if gs.Strategy != Vertical {
		t.Errorf("restored strategy = %s", gs.Strategy)
	}
}

func TestSaveLoadHorizontal(t *testing.T) {
	db := loadPhilosophers(t, Config{Strategy: Horizontal, Sites: 3, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	var buf bytes.Buffer
	if err := dep.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := LoadDeployment(&buf, Config{})
	if err != nil {
		t.Fatalf("LoadDeployment: %v", err)
	}
	if restored.Stats().Strategy != Horizontal {
		t.Errorf("restored strategy = %s", restored.Stats().Strategy)
	}
	res, err := restored.Query(`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> <Ethics> . }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLoadDeploymentGarbage(t *testing.T) {
	if _, err := LoadDeployment(bytes.NewReader([]byte("not a snapshot")), Config{}); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestSaveLoadColdQueries(t *testing.T) {
	db := loadPhilosophers(t, Config{Sites: 2, MinSupport: 0.2})
	dep, err := db.Deploy(phWorkload)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	var buf bytes.Buffer
	if err := dep.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := LoadDeployment(&buf, Config{})
	if err != nil {
		t.Fatalf("LoadDeployment: %v", err)
	}
	res, err := restored.Query(`SELECT ?x WHERE { ?x <imageSkyline> ?img . }`)
	if err != nil {
		t.Fatalf("cold Query: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("cold rows = %v", res.Rows)
	}
}

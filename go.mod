module rdffrag

go 1.24

package rdffrag

import (
	"context"
	"io"
	"sync/atomic"
	"time"

	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
)

// ServerConfig tunes a concurrent query server. The zero value is usable:
// 4 workers, a 64-slot admission queue, no per-query timeout, a 128-entry
// plan cache.
type ServerConfig struct {
	// Workers is the number of queries executed concurrently.
	Workers int
	// QueueDepth bounds the admission queue; beyond it Query fails fast
	// with ErrOverloaded.
	QueueDepth int
	// Timeout is the per-query execution deadline (0 = none).
	Timeout time.Duration
	// PlanCacheSize is the LRU plan cache capacity (negative disables).
	PlanCacheSize int
	// Parallelism is the machine-wide intra-query worker budget, divided
	// among concurrently executing queries (0 = GOMAXPROCS, negative
	// forces sequential matching).
	Parallelism int
	// JoinPartitions overrides the per-stage partition count of every
	// query's control-site join pipeline (0 = derived per query from its
	// parallelism grant, negative forces the sequential join).
	JoinPartitions int
	// Remote configures networked sites: which site IDs are served by
	// external `rdffrag site` processes, and the retry / hedging /
	// circuit-breaker / degradation policy used to reach them. The zero
	// value keeps every site in-process.
	Remote RemoteConfig
	// Durable routes every update batch through a write-ahead log before
	// it is acknowledged (see OpenDurable). The Durable must be bound —
	// via Recover or Bootstrap — to the same deployment this server
	// fronts. Nil serves without durability.
	Durable *Durable
	// TTL, when positive, is the default time-to-live stamped onto every
	// inserted batch (plain inserts and the insert side of overwrites):
	// the background sweeper deletes the batch's triples through the
	// normal durable update path once TTL elapses. Per-request X-TTL
	// headers override it; zero leaves triples permanent.
	TTL time.Duration
	// SweepInterval is how often the TTL sweeper checks for expired
	// triples (0 = 1s; negative disables the background sweeper).
	SweepInterval time.Duration
}

// ErrOverloaded is returned by Server.Query when the admission queue is
// full.
var ErrOverloaded = serve.ErrOverloaded

// ErrServerClosed is returned by Server.Query after Close.
var ErrServerClosed = serve.ErrClosed

// Server answers queries concurrently over one deployment: a worker pool
// behind a bounded admission queue, with per-query cancellation and a
// plan cache keyed on canonicalized query structure.
type Server struct {
	dep     *Deployment
	inner   *serve.Server
	durable *Durable // nil when serving without durability
	ttl     time.Duration

	// draining flips once shutdown begins (MarkDraining or Close) so
	// /healthz can tell load balancers to stop routing here while
	// in-flight work finishes.
	draining atomic.Bool

	// respWriteErrs counts response bodies the HTTP layer failed to
	// write after the status line was already sent (client gone,
	// connection reset): the status can't change anymore, so the metric
	// is the observable.
	respWriteErrs atomic.Uint64
}

// StartServer starts a concurrent query server over the deployment.
// Close it when done. The server accepts live updates (Update) alongside
// queries without either blocking the other: each query pins an
// immutable MVCC read view at admission, and each update batch appends
// to the graphs' delta overlays and publishes a fresh view when it
// lands, so every query sees a consistent batch-atomic snapshot.
func (dep *Deployment) StartServer(cfg ServerConfig) *Server {
	// Materialize and place the cold fragment up front: the query router
	// reads fragmentation/allocation metadata lock-free while serving, so
	// it must be static from here on (updates only append triples).
	dep.ensureColdFragment()
	dep.wireRemotes(cfg.Remote)
	apply := func(b serve.Batch) (serve.UpdateStats, error) {
		return dep.applyBatch(b), nil
	}
	var walStats func() serve.WALMetrics
	if cfg.Durable != nil {
		if cfg.Durable.dep != dep {
			panic("rdffrag: ServerConfig.Durable is bound to a different deployment (Recover/Bootstrap it with this one)")
		}
		apply = cfg.Durable.applyDurable
		walStats = cfg.Durable.walMetrics
	}
	s := &Server{
		dep:     dep,
		durable: cfg.Durable,
		ttl:     cfg.TTL,
		inner: serve.New(dep.engine, serve.Config{
			Workers:        cfg.Workers,
			QueueDepth:     cfg.QueueDepth,
			Timeout:        cfg.Timeout,
			PlanCacheSize:  cfg.PlanCacheSize,
			Parallelism:    cfg.Parallelism,
			JoinPartitions: cfg.JoinPartitions,
			SweepInterval:  cfg.SweepInterval,
			Apply:          apply,
			WALStats:       walStats,
		}),
	}
	if cfg.Durable != nil {
		cfg.Durable.start(s)
	}
	return s
}

// Query parses and executes one query through the server, honouring ctx
// for cancellation. Safe for concurrent use by many clients.
func (s *Server) Query(ctx context.Context, query string) (*Result, error) {
	q, err := sparql.NewParser(s.dep.db.graph.Dict).Parse(query)
	if err != nil {
		return nil, err
	}
	return s.QueryParsed(ctx, q)
}

// QueryParsed executes an already-parsed query graph through the server.
func (s *Server) QueryParsed(ctx context.Context, q *sparql.Graph) (*Result, error) {
	resp, err := s.inner.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return s.dep.decodeResult(q, resp.Bindings, resp.Stats), nil
}

// Close stops accepting queries and waits for in-flight work to finish.
// On a durable server it then writes a final checkpoint, stamps the data
// directory with a clean-shutdown marker (so the next start skips WAL
// replay) and closes the log — this is what makes graceful shutdown
// lossless even under the "interval" sync policy.
func (s *Server) Close() {
	s.draining.Store(true)
	s.inner.Close()
	if s.durable != nil {
		s.durable.shutdown()
	}
}

// MarkDraining flips the server into draining mode: /healthz starts
// answering 503 so load balancers stop routing here, while queries and
// updates keep being served. Call it when graceful shutdown begins
// (SIGTERM), before the HTTP listener drains; Close flips it too.
func (s *Server) MarkDraining() { s.draining.Store(true) }

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Save snapshots the deployment under the server's writer mutex: no
// update applies while the snapshot's compact-on-save mutates the
// graphs, and a fresh read view is published afterwards (in-flight
// queries keep their pinned views). Use this instead of Deployment.Save
// while the server is live.
func (s *Server) Save(w io.Writer) error {
	var err error
	s.inner.Exclusive(func() { err = s.dep.Save(w) })
	return err
}

// ServerMetrics mirrors the serving layer's snapshot for API consumers.
type ServerMetrics = serve.Metrics

// Metrics reports QPS, latency percentiles, queue depth and cache hit
// rate since the server started.
func (s *Server) Metrics() ServerMetrics { return s.inner.Metrics() }

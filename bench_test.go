// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark drives the same harness as cmd/experiments at a reduced
// size so `go test -bench=.` stays tractable; run cmd/experiments for the
// full laptop-scale reproduction.
package rdffrag_test

import (
	"strings"
	"testing"

	"rdffrag"
	"rdffrag/internal/bench"
)

func benchSuite() *bench.Suite {
	return bench.NewSuite(bench.Config{
		DBpediaTriples: 4000,
		DBpediaQueries: 500,
		WatDivTriples:  3000,
		WatDivQueries:  300,
		Sites:          6,
		Workers:        2,
		Clients:        4,
		SampleFraction: 0.02,
		Seed:           20160315,
	})
}

// BenchmarkFig8MinSupVsFAPs regenerates Figure 8(a): minSup sweep vs
// number of mined frequent access patterns.
func BenchmarkFig8MinSupVsFAPs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Fig8a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Coverage regenerates Figure 8(b): FAP count vs workload
// hitting ratio.
func BenchmarkFig8Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Fig8b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Throughput regenerates Figure 9: queries/minute for SHAPE,
// WARP, VF and HF on both datasets.
func BenchmarkFig9Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ResponseTime regenerates Figure 10: average per-query
// response time for the four strategies.
func BenchmarkFig10ResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Scalability regenerates Figure 11: the WatDiv size sweep
// for VF and HF.
func BenchmarkFig11Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12BenchmarkQueries regenerates Figure 12: the 20 WatDiv
// benchmark queries across the four strategies.
func BenchmarkFig12BenchmarkQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Redundancy regenerates Table 1: redundancy ratios.
func BenchmarkTable1Redundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2OfflineTime regenerates Table 2: partitioning + loading
// time per strategy.
func BenchmarkTable2OfflineTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeployVertical measures the whole offline pipeline through the
// public API (mine → select → fragment → allocate → dictionary).
func BenchmarkDeployVertical(b *testing.B) {
	nt := exampleNT()
	wl := exampleWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := rdffrag.Open(rdffrag.Config{Sites: 3, MinSupport: 0.2})
		if _, err := db.LoadNTriples(strings.NewReader(nt)); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Deploy(wl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryVertical measures online query latency through the public
// API on a small deployment.
func BenchmarkQueryVertical(b *testing.B) {
	db := rdffrag.Open(rdffrag.Config{Sites: 3, MinSupport: 0.2})
	if _, err := db.LoadNTriples(strings.NewReader(exampleNT())); err != nil {
		b.Fatal(err)
	}
	dep, err := db.Deploy(exampleWorkload())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Query(`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`); err != nil {
			b.Fatal(err)
		}
	}
}

func exampleNT() string {
	var sb strings.Builder
	names := []string{"Aristotle", "Plato", "Kant", "Hume", "Hegel", "Marx", "Nietzsche", "Frege"}
	for i, n := range names {
		sb.WriteString("<" + n + "> <name> \"" + n + "\" .\n")
		sb.WriteString("<" + n + "> <mainInterest> <Topic" + string(rune('A'+i%3)) + "> .\n")
		if i > 0 {
			sb.WriteString("<" + n + "> <influencedBy> <" + names[i-1] + "> .\n")
		}
	}
	return sb.String()
}

func exampleWorkload() []string {
	return []string{
		`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`,
		`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`,
		`SELECT ?x WHERE { ?x <influencedBy> ?y . ?y <name> ?n . }`,
		`SELECT ?x WHERE { ?x <influencedBy> ?y . ?y <name> ?n . }`,
	}
}

package wal

import (
	"io"
	"os"
)

// FS is the filesystem seam the log writes through. The default
// implementation is the real filesystem; tests and the crash harness
// substitute ChaosFS, which models machine-crash durability (buffered
// writes survive only once fsynced, and an fsync can die mid-write).
type FS interface {
	MkdirAll(dir string) error
	// List returns the base names of dir's entries.
	List(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing content.
	Create(path string) (File, error)
	// OpenAppend opens an existing path for appending.
	OpenAppend(path string) (File, error)
	Remove(path string) error
	Truncate(path string, size int64) error
}

// File is one writable log segment.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

package wal

import (
	"testing"
	"time"
)

// BenchmarkWALAppend measures the append path per sync policy — the cost
// an update batch pays for durability before its ack. "always" is bound
// by fsync latency, "interval" by the in-memory frame write (group
// commit amortizes the fsync), "none" is the framing floor.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		b.Run(pol.String(), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), Sync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(KindInsert, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALGroupCommitLatency measures the worst extra latency the
// "interval" policy adds before a batch is durable: append, then wait
// for the flusher's fsync to cover it. This is the ack-to-durable window
// a machine crash can lose.
func BenchmarkWALGroupCommitLatency(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), Sync: SyncInterval, FlushInterval: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte("group-commit-latency-probe")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(KindInsert, payload); err != nil {
			b.Fatal(err)
		}
		fsyncs := l.Metrics().Fsyncs
		for l.Metrics().Fsyncs == fsyncs {
			time.Sleep(100 * time.Microsecond)
		}
	}
	if m := l.Metrics(); m.Fsyncs == 0 || m.Appends == 0 {
		b.Fatal("no work recorded")
	}
}

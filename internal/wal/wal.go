// Package wal is a write-ahead log for update batches: length-prefixed,
// CRC32C-framed records with monotonically increasing sequence numbers,
// written to size-rotated segment files. A served deployment appends
// every update batch here before acknowledging it; on restart, the
// records past the last checkpoint are replayed through the normal
// apply path, truncating at the first torn or checksum-failing record
// (a crash mid-write loses at most the unsynced tail, never yields a
// corrupt state).
//
// Durability is governed by the sync policy: SyncAlways fsyncs inside
// every Append (an ack implies the record is on stable storage),
// SyncInterval group-commits via a background flush ticker (acks can
// run ahead of the disk by up to one interval — the clean-shutdown path
// closes that window), SyncNone never syncs (tests, bulk loads). The
// filesystem behind the log is an injectable seam (FS); ChaosFS
// implements machine-crash semantics for the recovery soak.
package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrClosed fails operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy says when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append returns: an acknowledged batch
	// has reached stable storage.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: Append returns immediately and a
	// background ticker fsyncs the dirty tail every FlushInterval. A
	// machine crash can lose up to one interval of acknowledged
	// batches; a clean Close loses nothing.
	SyncInterval
	// SyncNone never fsyncs until Close.
	SyncNone
)

// String renders the policy the way the -wal-sync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy inverts SyncPolicy.String.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
}

// Options configures a Log. Dir is required; the zero value of
// everything else is usable.
type Options struct {
	// Dir holds the segment files; it is created if absent.
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// FlushInterval is the SyncInterval group-commit period (default
	// 2ms).
	FlushInterval time.Duration
	// SegmentBytes rotates the live segment once it grows past this
	// size (default 64 MiB).
	SegmentBytes int64
	// DictState, when non-nil, reports the term-dictionary state (length
	// and prefix fingerprint) stamped into each new segment's header;
	// recovery hands it back per segment so the caller can refuse to
	// replay a log against a mismatched checkpoint.
	DictState func() (n int, fp uint64)
	// FS is the filesystem seam (default: the real filesystem).
	FS FS
}

func (o Options) withDefaults() Options {
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

// Metrics is a point-in-time snapshot of the log's counters.
type Metrics struct {
	// Appends and AppendedBytes count records (and their on-disk bytes)
	// written since Open; Fsyncs counts completed fsyncs.
	Appends       uint64
	Fsyncs        uint64
	AppendedBytes uint64
	// LiveBytes and Segments describe the current on-disk footprint
	// (headers included); LastSeq is the newest sequence number.
	LiveBytes int64
	Segments  int
	LastSeq   uint64
	// TruncatedBytes is how much torn/corrupt tail Open dropped.
	TruncatedBytes int64
	// AppendP99 and FsyncP99 are recent-window latency percentiles.
	AppendP99 time.Duration
	FsyncP99  time.Duration
}

// segInfo tracks one on-disk segment. firstSeq is the first sequence
// number that can land in the segment: every record in it has
// seq >= firstSeq, and every record in earlier segments has a smaller
// sequence number.
type segInfo struct {
	name     string
	firstSeq uint64
	size     int64
}

// Log is a write-ahead log over one directory. Append/Sync/Rotate/
// Retire are safe for concurrent use; Replay must run before the first
// Append.
type Log struct {
	opts Options
	fs   FS

	mu      sync.Mutex
	segs    []segInfo
	cur     File
	lastSeq uint64
	dirty   bool
	closed  bool
	syncErr error // a failed background fsync poisons the log
	buf     []byte

	// tailVersion is the layout version of the newest recovered segment;
	// a pre-v3 tail is sealed rather than reopened for append (a v1
	// header doesn't announce the kind byte new records carry, and a v2
	// header doesn't admit overwrite records, which would truncate the
	// tail on the next replay).
	tailVersion int

	appends       uint64
	fsyncs        uint64
	appendedBytes uint64
	truncated     int64
	appendLat     latWindow
	fsyncLat      latWindow

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (or creates) the log in opts.Dir, recovering from whatever
// a crash left behind: the tail is scanned record by record and
// truncated at the first torn or CRC-failing frame, and any segments
// after a corrupt one are discarded (nothing after a tear is
// trustworthy — sequence numbers would have a hole anyway).
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	opts = opts.withDefaults()
	l := &Log{opts: opts, fs: opts.FS}
	if err := l.fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 || l.tailVersion < 3 {
		// No live segment, or the newest one uses an older frame layout:
		// appends must land in a fresh v3 segment — a kind byte written
		// into a v1 segment would be misread as the payload's first
		// byte, and an overwrite record in a v2 segment would be
		// truncated as an unknown kind on the next replay.
		if err := l.openSegmentLocked(l.lastSeq + 1); err != nil {
			return nil, err
		}
	} else {
		last := l.segs[len(l.segs)-1]
		f, err := l.fs.OpenAppend(filepath.Join(opts.Dir, last.name))
		if err != nil {
			return nil, fmt.Errorf("wal: reopen %s: %w", last.name, err)
		}
		l.cur = f
	}
	if opts.Sync == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flusher()
	}
	return l, nil
}

// recover scans the directory, validating every segment in sequence
// order and repairing the tail.
func (l *Log) recover() error {
	names, err := l.fs.List(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	type cand struct {
		name     string
		firstSeq uint64
	}
	var cands []cand
	for _, name := range names {
		if first, ok := parseSegName(name); ok {
			cands = append(cands, cand{name, first})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].firstSeq < cands[j].firstSeq })

	drop := func(from int) error {
		for _, c := range cands[from:] {
			if err := l.fs.Remove(filepath.Join(l.opts.Dir, c.name)); err != nil {
				return fmt.Errorf("wal: drop corrupt segment %s: %w", c.name, err)
			}
		}
		return nil
	}

	// Sequence numbering starts where the oldest surviving segment says
	// it does, not at zero: after a checkpoint retires every older
	// segment (or tears the newest one's header), the log may hold no
	// records at all, yet new appends must continue the global sequence
	// — reusing retired numbers would make replay's seq filter skip
	// fresh records.
	prevSeq := uint64(0)
	if len(cands) > 0 {
		prevSeq = cands[0].firstSeq - 1
		l.lastSeq = prevSeq
	}
	for i, c := range cands {
		path := filepath.Join(l.opts.Dir, c.name)
		data, err := l.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", c.name, err)
		}
		_, _, version, headerOK := decodeSegHeader(data)
		if !headerOK || (i > 0 && c.firstSeq != prevSeq+1) {
			// A crash during segment creation tears the header before
			// any record lands; a firstSeq gap means the covering
			// segment was lost. Either way nothing from here on is
			// replayable.
			l.truncated += int64(len(data))
			return drop(i)
		}
		l.tailVersion = version
		recs, valid := scanSegment(data, prevSeq, version)
		if len(recs) > 0 {
			prevSeq = recs[len(recs)-1].Seq
		}
		l.lastSeq = prevSeq
		if valid < int64(len(data)) {
			l.truncated += int64(len(data)) - valid
			if err := l.fs.Truncate(path, valid); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", c.name, err)
			}
			l.segs = append(l.segs, segInfo{name: c.name, firstSeq: c.firstSeq, size: valid})
			return drop(i + 1)
		}
		l.segs = append(l.segs, segInfo{name: c.name, firstSeq: c.firstSeq, size: int64(len(data))})
	}
	return nil
}

// openSegmentLocked creates and switches to a fresh segment whose first
// record will carry firstSeq.
func (l *Log) openSegmentLocked(firstSeq uint64) error {
	name := segName(firstSeq)
	f, err := l.fs.Create(filepath.Join(l.opts.Dir, name))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	dictLen, dictFP := 0, uint64(0)
	if l.opts.DictState != nil {
		dictLen, dictFP = l.opts.DictState()
	}
	hdr := encodeSegHeader(dictLen, dictFP)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.cur = f
	l.dirty = true
	l.segs = append(l.segs, segInfo{name: name, firstSeq: firstSeq, size: int64(len(hdr))})
	return nil
}

// Append frames payload as the next record of the given kind and writes
// it to the live segment, rotating first if the segment is over size.
// Under SyncAlways the record is fsynced before Append returns. The
// returned sequence number is what replay idempotence keys on.
func (l *Log) Append(kind Kind, payload []byte) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.syncErr != nil {
		// A failed background fsync means acknowledged records may not
		// be durable; stop acknowledging more.
		return 0, fmt.Errorf("wal: log poisoned by failed flush: %w", l.syncErr)
	}
	if l.segs[len(l.segs)-1].size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.lastSeq + 1
	l.buf = appendRecord(l.buf[:0], seq, kind, payload)
	if _, err := l.cur.Write(l.buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.lastSeq = seq
	l.segs[len(l.segs)-1].size += int64(len(l.buf))
	l.dirty = true
	l.appends++
	l.appendedBytes += uint64(len(l.buf))
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	l.appendLat.observe(time.Since(start))
	return seq, nil
}

// Sync fsyncs the dirty tail now, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.fsyncs++
	l.fsyncLat.observe(time.Since(start))
	return nil
}

// flusher is the SyncInterval group-commit ticker.
func (l *Log) flusher() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.syncErr == nil {
				l.syncErr = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Rotate seals the live segment (fsyncing it) and starts a fresh one,
// stamping the current dictionary state into its header. The
// checkpointer rotates so the segments preceding the checkpoint become
// retireable.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if l.segs[len(l.segs)-1].size <= int64(segHeaderSize) {
		return nil // the live segment is empty; nothing to seal
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	return l.openSegmentLocked(l.lastSeq + 1)
}

// Retire removes sealed segments every record of which has sequence
// number <= upTo — they are covered by a checkpoint. The live segment
// is never removed.
func (l *Log) Retire(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segs[:0]
	for i, seg := range l.segs {
		// A sealed segment's records all precede the next segment's
		// firstSeq, so it is covered iff that bound is <= upTo+1.
		if i < len(l.segs)-1 && l.segs[i+1].firstSeq <= upTo+1 {
			if err := l.fs.Remove(filepath.Join(l.opts.Dir, seg.name)); err != nil {
				return fmt.Errorf("wal: retire %s: %w", seg.name, err)
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return nil
}

// Replay streams every record with sequence number > after, in order.
// enterSegment, when non-nil, runs before the first replayed record of
// each segment with the dictionary state stamped at that segment's
// creation; an error from either callback aborts the replay. Replay
// must run before the first Append.
func (l *Log) Replay(after uint64, enterSegment func(dictLen int, dictFP uint64) error, fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	l.mu.Unlock()
	for _, seg := range segs {
		if seg.size <= int64(segHeaderSize) {
			continue // empty (header-only) segment
		}
		data, err := l.fs.ReadFile(filepath.Join(l.opts.Dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", seg.name, err)
		}
		dictLen, dictFP, version, ok := decodeSegHeader(data)
		if !ok {
			return fmt.Errorf("wal: replay %s: bad segment header", seg.name)
		}
		recs, _ := scanSegment(data, seg.firstSeq-1, version)
		entered := false
		for _, rec := range recs {
			if rec.Seq <= after {
				continue
			}
			if !entered {
				entered = true
				if enterSegment != nil {
					if err := enterSegment(dictLen, dictFP); err != nil {
						return err
					}
				}
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// LastSeq reports the newest sequence number (0 when the log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Size reports the live on-disk footprint in bytes, headers included.
// The checkpointer triggers on it.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sizeLocked()
}

func (l *Log) sizeLocked() int64 {
	var total int64
	for _, seg := range l.segs {
		total += seg.size
	}
	return total
}

// Metrics snapshots the log's counters.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Metrics{
		Appends:        l.appends,
		Fsyncs:         l.fsyncs,
		AppendedBytes:  l.appendedBytes,
		LiveBytes:      l.sizeLocked(),
		Segments:       len(l.segs),
		LastSeq:        l.lastSeq,
		TruncatedBytes: l.truncated,
		AppendP99:      l.appendLat.p99(),
		FsyncP99:       l.fsyncLat.p99(),
	}
}

// Close flushes, fsyncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop, done := l.flushStop, l.flushDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if cerr := l.cur.Close(); err == nil {
		err = cerr
	}
	return err
}

package wal

import (
	"fmt"
	"strings"
	"testing"
)

// TestChaosCrashRecoverySoak drives the log through seeded simulated
// machine crashes: under SyncAlways every acknowledged append must
// survive (the fsync happened before the ack), and the recovered log
// must be exactly the acked prefix — no lost acks, no resurrected
// unacked records, no torn state. Each crash persists a random prefix of
// the unflushed tail, so recovery exercises the torn-record truncation
// path too.
func TestChaosCrashRecoverySoak(t *testing.T) {
	dir := t.TempDir()
	acked := uint64(0)
	crashes := 0

	for round := 0; round < 30; round++ {
		cfs := NewChaosFS(int64(round)*1000+11, 0.05)
		// In-process power cut: Sync fails with errCrashed instead of
		// SIGKILLing the test binary; the log instance is dead after it.
		cfs.SetKill(func() {})
		l, err := Open(Options{Dir: dir, Sync: SyncAlways, FS: cfs})
		if err != nil {
			t.Fatalf("round %d: Open: %v", round, err)
		}
		if l.LastSeq() != acked {
			t.Fatalf("round %d: recovered LastSeq = %d, want %d acked", round, l.LastSeq(), acked)
		}
		// Every record that was ever acked must replay, intact.
		n := uint64(0)
		err = l.Replay(0, nil, func(rec Record) error {
			n++
			if rec.Seq != n {
				return fmt.Errorf("replay out of order: got seq %d at position %d", rec.Seq, n)
			}
			if want := payloadFor(rec.Seq); string(rec.Payload) != want {
				return fmt.Errorf("seq %d payload = %q, want %q", rec.Seq, rec.Payload, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if n != acked {
			t.Fatalf("round %d: replayed %d records, want %d", round, n, acked)
		}

		// Append until the machine crashes or the round's budget runs out.
		for i := 0; i < 40; i++ {
			seq, err := l.Append(KindInsert, []byte(payloadFor(acked+1)))
			if err != nil {
				// The crash struck this append's fsync: the record was
				// never acked, so recovery may or may not keep earlier
				// synced bytes of it — but must not count it.
				crashes++
				break
			}
			if seq != acked+1 {
				t.Fatalf("round %d: seq = %d, want %d", round, seq, acked+1)
			}
			acked = seq
		}
		l.Close() // no-op rounds close cleanly; crashed rounds error — both fine
	}
	if crashes == 0 {
		t.Fatal("soak never crashed; raise the probability or rounds")
	}
	t.Logf("soak: %d crashes, %d records acked and recovered", crashes, acked)
}

// TestChaosCrashTearsPending verifies the explicit Crash hook: unsynced
// writes vanish (up to the torn prefix), synced ones survive.
func TestChaosCrashTearsPending(t *testing.T) {
	dir := t.TempDir()
	cfs := NewChaosFS(1, 0)
	l, err := Open(Options{Dir: dir, Sync: SyncNone, FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(KindInsert, []byte(payloadFor(uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil { // records 1-3 reach the platter
		t.Fatal(err)
	}
	for i := 4; i <= 6; i++ {
		if _, err := l.Append(KindInsert, []byte(payloadFor(uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	cfs.Crash(5) // power cut: 5 bytes of the unsynced tail survive, torn

	l2, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()
	if l2.LastSeq() != 3 {
		t.Fatalf("LastSeq after crash = %d, want 3 (the synced prefix)", l2.LastSeq())
	}
	got := map[uint64]string{}
	l2.Replay(0, nil, func(rec Record) error {
		got[rec.Seq] = string(rec.Payload)
		return nil
	})
	if len(got) != 3 {
		t.Fatalf("recovered %d records, want 3", len(got))
	}
	for i := uint64(1); i <= 3; i++ {
		if got[i] != payloadFor(i) {
			t.Fatalf("seq %d corrupted: %q", i, got[i])
		}
	}
}

// payloadFor derives a record's payload from its seq so the soak can
// verify content without bookkeeping.
func payloadFor(seq uint64) string {
	return fmt.Sprintf("payload-%06d-%s", seq, strings.Repeat("x", int(seq%17)))
}

package wal

import (
	"sort"
	"time"
)

// latWindowSize is how many recent samples the percentile estimator
// keeps (a sliding window; old samples are overwritten).
const latWindowSize = 1024

// latWindow is a fixed ring of recent latencies. Callers hold the log
// mutex around observe and p99.
type latWindow struct {
	samples []time.Duration
	next    int
}

func (w *latWindow) observe(d time.Duration) {
	if len(w.samples) < latWindowSize {
		w.samples = append(w.samples, d)
		return
	}
	w.samples[w.next] = d
	w.next = (w.next + 1) % latWindowSize
}

// p99 reads the 99th percentile of the window (nearest-rank; zero until
// the first sample).
func (w *latWindow) p99() time.Duration {
	if len(w.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), w.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(0.99 * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testOpts(t *testing.T, pol SyncPolicy) Options {
	t.Helper()
	return Options{Dir: t.TempDir(), Sync: pol}
}

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func mustAppend(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	seq, err := l.Append(KindInsert, []byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return seq
}

// collect replays everything after `after` into a map seq→payload.
func collect(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	err := l.Replay(after, nil, func(rec Record) error {
		if _, dup := got[rec.Seq]; dup {
			t.Fatalf("replay delivered seq %d twice", rec.Seq)
		}
		got[rec.Seq] = string(rec.Payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReopenReplay(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	l := mustOpen(t, opts)
	want := map[uint64]string{}
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("batch-%03d", i)
		want[mustAppend(t, l, p)] = p
	}
	if l.LastSeq() != 50 {
		t.Fatalf("LastSeq = %d, want 50", l.LastSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, opts)
	defer l2.Close()
	if l2.LastSeq() != 50 {
		t.Fatalf("reopened LastSeq = %d, want 50", l2.LastSeq())
	}
	got := collect(t, l2, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for seq, p := range want {
		if got[seq] != p {
			t.Fatalf("seq %d: got %q, want %q", seq, got[seq], p)
		}
	}
	// Appends continue the sequence after reopen.
	if seq := mustAppend(t, l2, "post-reopen"); seq != 51 {
		t.Fatalf("post-reopen seq = %d, want 51", seq)
	}
}

func TestReplayAfterFilters(t *testing.T) {
	opts := testOpts(t, SyncNone)
	l := mustOpen(t, opts)
	defer l.Close()
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprintf("p%d", i))
	}
	got := collect(t, l, 7)
	if len(got) != 3 {
		t.Fatalf("replay after 7 delivered %d records, want 3", len(got))
	}
	for _, seq := range []uint64{8, 9, 10} {
		if _, ok := got[seq]; !ok {
			t.Fatalf("replay after 7 missing seq %d", seq)
		}
	}
	// Replay is repeatable — same records both times (idempotence at the
	// log level; the consumer's seq filter makes re-application a no-op).
	again := collect(t, l, 7)
	if len(again) != 3 {
		t.Fatalf("second replay delivered %d records, want 3", len(again))
	}
}

// segPath returns the single live segment's path (the tests below
// corrupt it).
func segPath(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		segs = append(segs, filepath.Join(dir, e.Name()))
	}
	if len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, have %d", len(segs))
	}
	return segs[0]
}

func TestTornTailTruncated(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	l := mustOpen(t, opts)
	for i := 0; i < 5; i++ {
		mustAppend(t, l, fmt.Sprintf("rec-%d", i))
	}
	l.Close()

	// Tear the last record: chop a few bytes off the file, as if the
	// machine died mid-write.
	p := segPath(t, filepath.Join(opts.Dir))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, opts)
	defer l2.Close()
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq after torn tail = %d, want 4", l2.LastSeq())
	}
	got := collect(t, l2, 0)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	if m := l2.Metrics(); m.TruncatedBytes == 0 {
		t.Fatalf("TruncatedBytes = 0, want > 0")
	}
	// The log keeps working past the truncation point.
	if seq := mustAppend(t, l2, "after-tear"); seq != 5 {
		t.Fatalf("post-tear seq = %d, want 5", seq)
	}
}

func TestCRCCorruptionTruncates(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	l := mustOpen(t, opts)
	for i := 0; i < 5; i++ {
		mustAppend(t, l, fmt.Sprintf("rec-%d", i))
	}
	l.Close()

	// Flip one byte inside the third record's payload: its CRC fails, so
	// recovery must keep records 1-2 and drop 3-5 (everything after a
	// corrupt record is unordered garbage).
	p := segPath(t, opts.Dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	off := segHeaderSize + 2*(recHeaderSize+len("rec-0")) + recHeaderSize + 2
	data[off] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, opts)
	defer l2.Close()
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq after corruption = %d, want 2", l2.LastSeq())
	}
	got := collect(t, l2, 0)
	if len(got) != 2 || got[1] != "rec-0" || got[2] != "rec-1" {
		t.Fatalf("surviving records = %v, want rec-0, rec-1", got)
	}
}

func TestSegmentRotationAndRetire(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	opts.SegmentBytes = 256 // tiny: rotate every few records
	l := mustOpen(t, opts)
	for i := 0; i < 40; i++ {
		mustAppend(t, l, fmt.Sprintf("record-payload-%03d", i))
	}
	m := l.Metrics()
	if m.Segments < 3 {
		t.Fatalf("Segments = %d, want >= 3 with 256-byte segments", m.Segments)
	}
	// All 40 records survive a reopen across the segment boundaries.
	l.Close()
	l2 := mustOpen(t, opts)
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(got))
	}

	// Retire everything up to seq 35: only segments whose successor
	// starts at or before 36 may go; later records must all survive.
	if err := l2.Retire(35); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	got := collect(t, l2, 35)
	for seq := uint64(36); seq <= 40; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("seq %d lost by Retire", seq)
		}
	}
	if after := l2.Metrics(); after.Segments >= m.Segments {
		t.Fatalf("Retire removed nothing: %d -> %d segments", m.Segments, after.Segments)
	}
}

func TestRotateEmptySegmentIsNoop(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	l := mustOpen(t, opts)
	defer l.Close()
	mustAppend(t, l, "one")
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	segs := l.Metrics().Segments
	// A second rotation with nothing appended must not create another
	// (same-named!) segment.
	if err := l.Rotate(); err != nil {
		t.Fatalf("second Rotate: %v", err)
	}
	if got := l.Metrics().Segments; got != segs {
		t.Fatalf("empty rotate changed segment count: %d -> %d", segs, got)
	}
	if seq := mustAppend(t, l, "two"); seq != 2 {
		t.Fatalf("seq after rotate = %d, want 2", seq)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l := mustOpen(t, testOpts(t, SyncAlways))
		defer l.Close()
		for i := 0; i < 5; i++ {
			mustAppend(t, l, "x")
		}
		if m := l.Metrics(); m.Fsyncs < 5 {
			t.Fatalf("SyncAlways: %d fsyncs for 5 appends, want >= 5", m.Fsyncs)
		}
	})
	t.Run("none", func(t *testing.T) {
		l := mustOpen(t, testOpts(t, SyncNone))
		for i := 0; i < 5; i++ {
			mustAppend(t, l, "x")
		}
		if m := l.Metrics(); m.Fsyncs != 0 {
			t.Fatalf("SyncNone: %d fsyncs, want 0", m.Fsyncs)
		}
		l.Close()
	})
	t.Run("interval", func(t *testing.T) {
		opts := testOpts(t, SyncInterval)
		opts.FlushInterval = time.Millisecond
		l := mustOpen(t, opts)
		defer l.Close()
		mustAppend(t, l, "x")
		deadline := time.Now().Add(2 * time.Second)
		for l.Metrics().Fsyncs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("SyncInterval: flusher never fsynced")
			}
			time.Sleep(time.Millisecond)
		}
		// The flusher only syncs dirty logs: once clean, the count
		// settles instead of climbing every tick.
		n := l.Metrics().Fsyncs
		time.Sleep(20 * time.Millisecond)
		if m := l.Metrics(); m.Fsyncs > n+1 {
			t.Fatalf("idle flusher kept fsyncing: %d -> %d", n, m.Fsyncs)
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"none", SyncNone}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() round-trip broke: %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy(bogus) succeeded")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := mustOpen(t, testOpts(t, SyncNone))
	mustAppend(t, l, "x")
	l.Close()
	if _, err := l.Append(KindInsert, []byte("y")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestDictStateStamp(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	opts.DictState = func() (int, uint64) { return 7, 0xdeadbeef }
	l := mustOpen(t, opts)
	mustAppend(t, l, "x")
	l.Close()

	l2 := mustOpen(t, opts)
	defer l2.Close()
	called := false
	err := l2.Replay(0, func(n int, fp uint64) error {
		called = true
		if n != 7 || fp != 0xdeadbeef {
			t.Fatalf("segment dict stamp = (%d, %x), want (7, deadbeef)", n, fp)
		}
		return nil
	}, func(Record) error { return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !called {
		t.Fatal("enterSegment callback never ran")
	}
}

func TestReplayEnterSegmentError(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	l := mustOpen(t, opts)
	mustAppend(t, l, "x")
	l.Close()
	l2 := mustOpen(t, opts)
	defer l2.Close()
	wantErr := fmt.Errorf("mismatch")
	err := l2.Replay(0, func(int, uint64) error { return wantErr }, func(Record) error {
		t.Fatal("record delivered despite segment rejection")
		return nil
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("mismatch")) {
		t.Fatalf("Replay error = %v, want the enterSegment error", err)
	}
}

package wal

import (
	"errors"
	"math/rand"
	"sync"
	"syscall"
)

// errCrashed fails every operation on a file the simulated machine
// crash already tore; the log instance holding it is dead and must be
// reopened against the directory to observe recovery.
var errCrashed = errors.New("wal: simulated machine crash")

// ChaosFS models machine-crash durability semantics over the real
// filesystem, which a plain SIGKILL cannot: the OS page cache survives
// process death, so killing a process never loses buffered writes.
// ChaosFS moves the "page cache" into process memory — Write only
// buffers, Sync persists the buffered tail to the real file — and with
// probability CrashProb a Sync dies mid-fsync: it persists a random
// prefix of the tail (a torn write) and invokes Kill. The default Kill
// SIGKILLs the process, which is how the crash-recovery soak produces
// torn WAL tails at seeded points; unit tests override Kill (SetKill)
// or call Crash to simulate the power cut in-process.
type ChaosFS struct {
	inner FS

	mu        sync.Mutex
	rng       *rand.Rand
	crashProb float64
	kill      func()
	files     map[string]*chaosFile
}

// NewChaosFS returns a ChaosFS over the real filesystem whose Syncs
// crash with probability crashProb, deterministically per seed.
func NewChaosFS(seed int64, crashProb float64) *ChaosFS {
	return &ChaosFS{
		inner:     osFS{},
		rng:       rand.New(rand.NewSource(seed)),
		crashProb: crashProb,
		kill:      killSelf,
		files:     make(map[string]*chaosFile),
	}
}

// SetKill replaces the crash action (default: SIGKILL the process).
// The replacement must not touch the ChaosFS — it runs with its lock
// held.
func (c *ChaosFS) SetKill(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.kill = fn
}

// Crash simulates the machine dying right now without killing the
// process: every open file keeps only a tear-byte prefix of its
// unsynced tail, the rest is dropped, and all further operations on the
// dead files fail. Reopen the directory with a fresh Log (and a fresh
// FS) to observe recovery.
func (c *ChaosFS) Crash(tear int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for path, f := range c.files {
		n := tear
		if n > len(f.pending) {
			n = len(f.pending)
		}
		f.inner.Write(f.pending[:n])
		f.inner.Sync()
		f.inner.Close()
		f.pending = nil
		f.crashed = true
		delete(c.files, path)
	}
}

func (c *ChaosFS) MkdirAll(dir string) error { return c.inner.MkdirAll(dir) }

func (c *ChaosFS) List(dir string) ([]string, error) { return c.inner.List(dir) }

func (c *ChaosFS) ReadFile(path string) ([]byte, error) { return c.inner.ReadFile(path) }

func (c *ChaosFS) Remove(path string) error { return c.inner.Remove(path) }

func (c *ChaosFS) Truncate(path string, size int64) error { return c.inner.Truncate(path, size) }

func (c *ChaosFS) Create(path string) (File, error) {
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return c.track(path, f), nil
}

func (c *ChaosFS) OpenAppend(path string) (File, error) {
	f, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return c.track(path, f), nil
}

func (c *ChaosFS) track(path string, f File) *chaosFile {
	cf := &chaosFile{fs: c, path: path, inner: f}
	c.mu.Lock()
	c.files[path] = cf
	c.mu.Unlock()
	return cf
}

// chaosFile buffers writes until Sync, like a page cache the machine
// can lose.
type chaosFile struct {
	fs      *ChaosFS
	path    string
	inner   File
	pending []byte
	crashed bool
}

func (f *chaosFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.crashed {
		return 0, errCrashed
	}
	f.pending = append(f.pending, p...)
	return len(p), nil
}

func (f *chaosFile) Sync() error {
	f.fs.mu.Lock()
	if f.crashed {
		f.fs.mu.Unlock()
		return errCrashed
	}
	if f.fs.crashProb > 0 && f.fs.rng.Float64() < f.fs.crashProb {
		// The machine dies mid-fsync: a random prefix of the unsynced
		// tail makes it to the platter (possibly tearing a record in
		// half), the rest is lost with the power.
		n := f.fs.rng.Intn(len(f.pending) + 1)
		f.inner.Write(f.pending[:n])
		f.inner.Sync()
		f.inner.Close()
		f.pending = nil
		f.crashed = true
		delete(f.fs.files, f.path)
		kill := f.fs.kill
		f.fs.mu.Unlock()
		kill() // default: SIGKILL — never returns
		return errCrashed
	}
	_, err := f.inner.Write(f.pending)
	f.pending = f.pending[:0]
	f.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close flushes and persists the buffered tail: a clean close is
// durable, matching a process that exits gracefully on a machine that
// stays up.
func (f *chaosFile) Close() error {
	f.fs.mu.Lock()
	if f.crashed {
		f.fs.mu.Unlock()
		return errCrashed
	}
	_, werr := f.inner.Write(f.pending)
	f.pending = nil
	delete(f.fs.files, f.path)
	f.fs.mu.Unlock()
	serr := f.inner.Sync()
	cerr := f.inner.Close()
	if werr != nil {
		return werr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// killSelf delivers an unmaskable SIGKILL to this process; it does not
// return.
func killSelf() {
	syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	select {} // unreachable: SIGKILL cannot be caught or delayed
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// On-disk layout. A segment file is a fixed header followed by a run of
// framed records:
//
//	header:  magic "RDFWAL1\n" | uint32 dictLen | uint64 dictFP
//	record:  uint32 frameLen | uint32 crc32c | uint64 seq | payload
//
// frameLen counts the seq field plus the payload (so a record occupies
// 8+frameLen bytes on disk) and the CRC covers exactly those frameLen
// bytes — a flipped bit in either the sequence number or the payload
// fails the checksum. All integers are little-endian. The header's
// dictLen/dictFP stamp the term-dictionary state at segment creation so
// recovery can refuse to replay a log against a foreign checkpoint.
const (
	segMagic      = "RDFWAL1\n"
	segHeaderSize = len(segMagic) + 4 + 8
	recHeaderSize = 4 + 4 + 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one WAL entry: a monotonically increasing sequence number
// and the raw update-batch payload.
type Record struct {
	Seq     uint64
	Payload []byte
}

// segName names a segment by the first sequence number that can land in
// it; lexicographic order of names is sequence order.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstSeq)
}

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeSegHeader renders a segment header.
func encodeSegHeader(dictLen int, dictFP uint64) []byte {
	buf := make([]byte, segHeaderSize)
	copy(buf, segMagic)
	binary.LittleEndian.PutUint32(buf[len(segMagic):], uint32(dictLen))
	binary.LittleEndian.PutUint64(buf[len(segMagic)+4:], dictFP)
	return buf
}

// decodeSegHeader validates and reads a segment header.
func decodeSegHeader(data []byte) (dictLen int, dictFP uint64, ok bool) {
	if len(data) < segHeaderSize || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, false
	}
	dictLen = int(binary.LittleEndian.Uint32(data[len(segMagic):]))
	dictFP = binary.LittleEndian.Uint64(data[len(segMagic)+4:])
	return dictLen, dictFP, true
}

// appendRecord frames one record onto buf.
func appendRecord(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(8+len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Checksum(hdr[8:16], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanSegment walks the records of a segment file image (header
// included), enforcing the CRC and strict sequence continuity from
// prevSeq. It returns the valid records and the byte offset of the
// first invalid frame — torn short, checksum-failed, or out of
// sequence; valid == len(data) means the segment is whole.
func scanSegment(data []byte, prevSeq uint64) (recs []Record, valid int64) {
	off := segHeaderSize
	for {
		if off+recHeaderSize > len(data) {
			return recs, int64(off)
		}
		frameLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if frameLen < 8 || off+8+frameLen > len(data) {
			return recs, int64(off)
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		body := data[off+8 : off+8+frameLen]
		if crc32.Checksum(body, castagnoli) != want {
			return recs, int64(off)
		}
		seq := binary.LittleEndian.Uint64(body[:8])
		if seq != prevSeq+1 {
			return recs, int64(off)
		}
		recs = append(recs, Record{Seq: seq, Payload: body[8:]})
		prevSeq = seq
		off += 8 + frameLen
	}
}

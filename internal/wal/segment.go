package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// On-disk layout. A segment file is a fixed header followed by a run of
// framed records:
//
//	header:  magic "RDFWAL2\n" | uint32 dictLen | uint64 dictFP
//	record:  uint32 frameLen | uint32 crc32c | uint64 seq | uint8 kind | payload
//
// frameLen counts the seq and kind fields plus the payload (so a record
// occupies 8+frameLen bytes on disk) and the CRC covers exactly those
// frameLen bytes — a flipped bit in the sequence number, the record
// kind, or the payload fails the checksum. All integers are
// little-endian. The header's dictLen/dictFP stamp the term-dictionary
// state at segment creation so recovery can refuse to replay a log
// against a foreign checkpoint.
//
// Version history. "RDFWAL1\n" segments predate record kinds: their
// frames carry no kind byte (frameLen = 8 + len(payload)) and every
// record is an insert. "RDFWAL2\n" added the kind byte with insert and
// delete kinds. "RDFWAL3\n" keeps the v2 frame layout but additionally
// admits KindOverwrite, whose payload frames a delete-set and an
// insert-set applied as one atomic batch — the magic bump exists so a
// v2 reader truncates at an overwrite record instead of misapplying it.
// Readers accept all three versions — a deployment upgraded in place
// keeps its old segments replayable — but new segments are always
// written v3, so a log directory may legitimately hold a mix.
const (
	segMagicV1    = "RDFWAL1\n"
	segMagicV2    = "RDFWAL2\n"
	segMagic      = "RDFWAL3\n"
	segHeaderSize = len(segMagic) + 4 + 8
	recHeaderSize = 4 + 4 + 8 + 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind says what an update record does to the triples in its payload.
type Kind uint8

const (
	// KindInsert adds the payload's triples. v1 records decode as inserts.
	KindInsert Kind = 0
	// KindDelete removes the payload's triples.
	KindDelete Kind = 1
	// KindOverwrite atomically removes one triple set and inserts
	// another. Its payload is uint32 little-endian len(deleteDoc) |
	// deleteDoc | insertDoc, both docs N-Triples text. Only valid in
	// v3 segments.
	KindOverwrite Kind = 2
)

// Record is one WAL entry: a monotonically increasing sequence number,
// the operation kind, and the raw update-batch payload.
type Record struct {
	Seq     uint64
	Kind    Kind
	Payload []byte
}

// segName names a segment by the first sequence number that can land in
// it; lexicographic order of names is sequence order.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstSeq)
}

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeSegHeader renders a (v3) segment header.
func encodeSegHeader(dictLen int, dictFP uint64) []byte {
	buf := make([]byte, segHeaderSize)
	copy(buf, segMagic)
	binary.LittleEndian.PutUint32(buf[len(segMagic):], uint32(dictLen))
	binary.LittleEndian.PutUint64(buf[len(segMagic)+4:], dictFP)
	return buf
}

// decodeSegHeader validates and reads a segment header, reporting which
// layout version the segment's frames use.
func decodeSegHeader(data []byte) (dictLen int, dictFP uint64, version int, ok bool) {
	if len(data) < segHeaderSize {
		return 0, 0, 0, false
	}
	switch string(data[:len(segMagic)]) {
	case segMagic:
		version = 3
	case segMagicV2:
		version = 2
	case segMagicV1:
		version = 1
	default:
		return 0, 0, 0, false
	}
	dictLen = int(binary.LittleEndian.Uint32(data[len(segMagic):]))
	dictFP = binary.LittleEndian.Uint64(data[len(segMagic)+4:])
	return dictLen, dictFP, version, true
}

// appendRecord frames one record onto buf (v2/v3 frame layout).
func appendRecord(buf []byte, seq uint64, kind Kind, payload []byte) []byte {
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(9+len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	hdr[16] = byte(kind)
	crc := crc32.Checksum(hdr[8:17], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanSegment walks the records of a segment file image (header
// included), decoding frames per the given layout version, enforcing
// the CRC and strict sequence continuity from prevSeq. It returns the
// valid records and the byte offset of the first invalid frame — torn
// short, checksum-failed, out of sequence, or carrying an unknown
// record kind; valid == len(data) means the segment is whole.
func scanSegment(data []byte, prevSeq uint64, version int) (recs []Record, valid int64) {
	minBody := 8 // v1: seq only
	if version >= 2 {
		minBody = 9 // v2: seq + kind
	}
	off := segHeaderSize
	for {
		if off+8+minBody > len(data) {
			return recs, int64(off)
		}
		frameLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if frameLen < minBody || off+8+frameLen > len(data) {
			return recs, int64(off)
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		body := data[off+8 : off+8+frameLen]
		if crc32.Checksum(body, castagnoli) != want {
			return recs, int64(off)
		}
		seq := binary.LittleEndian.Uint64(body[:8])
		if seq != prevSeq+1 {
			return recs, int64(off)
		}
		rec := Record{Seq: seq, Kind: KindInsert, Payload: body[8:]}
		if version >= 2 {
			maxKind := KindDelete // v2 predates overwrite records
			if version >= 3 {
				maxKind = KindOverwrite
			}
			rec.Kind = Kind(body[8])
			rec.Payload = body[9:]
			if rec.Kind > maxKind {
				return recs, int64(off)
			}
		}
		recs = append(recs, rec)
		prevSeq = seq
		off += 8 + frameLen
	}
}

package wal

// Record-kind framing tests: the kind byte round-trips through
// append/reopen/replay, v1 segments written before kinds existed stay
// replayable as inserts, v2 segments written before overwrite records
// existed stay replayable (and refuse kinds from their future), an
// unknown kind value truncates like corruption, and the CRC genuinely
// covers the kind byte.

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordKindRoundTrip(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	l := mustOpen(t, opts)
	kinds := []Kind{KindInsert, KindDelete, KindOverwrite, KindInsert, KindDelete, KindOverwrite}
	for i, k := range kinds {
		seq, err := l.Append(k, []byte{byte('a' + i)})
		if err != nil {
			t.Fatalf("Append kind %d: %v", k, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, opts)
	defer l2.Close()
	var got []Kind
	err := l2.Replay(0, nil, func(rec Record) error {
		got = append(got, rec.Kind)
		if want := byte('a' + len(got) - 1); len(rec.Payload) != 1 || rec.Payload[0] != want {
			t.Errorf("seq %d payload %q, want %q", rec.Seq, rec.Payload, want)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(kinds) {
		t.Fatalf("replayed %d records, want %d", len(got), len(kinds))
	}
	for i, k := range kinds {
		if got[i] != k {
			t.Errorf("record %d replayed as kind %d, want %d", i+1, got[i], k)
		}
	}
}

// appendRecordV1 frames one record the way "RDFWAL1\n" segments did:
// no kind byte, CRC over seq + payload only.
func appendRecordV1(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(8+len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Checksum(hdr[8:16], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func TestV1SegmentReadCompat(t *testing.T) {
	dir := t.TempDir()
	img := make([]byte, segHeaderSize)
	copy(img, segMagicV1)
	binary.LittleEndian.PutUint32(img[len(segMagicV1):], 7)
	binary.LittleEndian.PutUint64(img[len(segMagicV1)+4:], 0xfeed)
	img = appendRecordV1(img, 1, []byte("old-one"))
	img = appendRecordV1(img, 2, []byte("old-two"))
	if err := os.WriteFile(filepath.Join(dir, segName(1)), img, 0o644); err != nil {
		t.Fatalf("write v1 segment: %v", err)
	}

	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	defer l.Close()
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2 (both v1 records recovered)", l.LastSeq())
	}
	var recs []Record
	var dictLen int
	var dictFP uint64
	err := l.Replay(0, func(n int, fp uint64) error {
		dictLen, dictFP = n, fp
		return nil
	}, func(rec Record) error {
		recs = append(recs, Record{Seq: rec.Seq, Kind: rec.Kind, Payload: append([]byte(nil), rec.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if dictLen != 7 || dictFP != 0xfeed {
		t.Errorf("v1 header dict state = (%d, %#x), want (7, 0xfeed)", dictLen, dictFP)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	for i, rec := range recs {
		if rec.Kind != KindInsert {
			t.Errorf("v1 record %d decoded as kind %d, want KindInsert", rec.Seq, rec.Kind)
		}
		want := []string{"old-one", "old-two"}[i]
		if string(rec.Payload) != want {
			t.Errorf("v1 record %d payload %q, want %q", rec.Seq, rec.Payload, want)
		}
	}

	// Appends land in a fresh v3 segment continuing the sequence: a
	// mixed-version directory replays as one stream.
	seq, err := l.Append(KindDelete, []byte("new-three"))
	if err != nil {
		t.Fatalf("Append after v1 recovery: %v", err)
	}
	if seq != 3 {
		t.Fatalf("post-v1 append seq = %d, want 3", seq)
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	got := map[uint64]Kind{}
	if err := l.Replay(0, nil, func(rec Record) error {
		got[rec.Seq] = rec.Kind
		return nil
	}); err != nil {
		t.Fatalf("Replay after append: %v", err)
	}
	if len(got) != 3 || got[3] != KindDelete {
		t.Fatalf("mixed-version replay = %v, want 3 records with seq 3 a delete", got)
	}
}

// encodeSegHeaderV2 renders the header a "RDFWAL2\n" writer produced;
// the frame layout is identical to v3, only the magic (and the set of
// admissible kinds) differs.
func encodeSegHeaderV2(dictLen int, dictFP uint64) []byte {
	buf := encodeSegHeader(dictLen, dictFP)
	copy(buf, segMagicV2)
	return buf
}

func TestV2SegmentReadCompat(t *testing.T) {
	dir := t.TempDir()
	img := encodeSegHeaderV2(11, 0xbeef)
	img = appendRecord(img, 1, KindInsert, []byte("two-ins"))
	img = appendRecord(img, 2, KindDelete, []byte("two-del"))
	if err := os.WriteFile(filepath.Join(dir, segName(1)), img, 0o644); err != nil {
		t.Fatalf("write v2 segment: %v", err)
	}

	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	defer l.Close()
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2 (both v2 records recovered)", l.LastSeq())
	}
	var recs []Record
	var dictLen int
	var dictFP uint64
	err := l.Replay(0, func(n int, fp uint64) error {
		dictLen, dictFP = n, fp
		return nil
	}, func(rec Record) error {
		recs = append(recs, Record{Seq: rec.Seq, Kind: rec.Kind, Payload: append([]byte(nil), rec.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if dictLen != 11 || dictFP != 0xbeef {
		t.Errorf("v2 header dict state = (%d, %#x), want (11, 0xbeef)", dictLen, dictFP)
	}
	if len(recs) != 2 || recs[0].Kind != KindInsert || recs[1].Kind != KindDelete {
		t.Fatalf("v2 replay = %+v, want insert then delete", recs)
	}

	// The v2 tail is sealed: an overwrite record appended after recovery
	// must land in a fresh v3 segment, not be written into a header that
	// doesn't admit its kind.
	seq, err := l.Append(KindOverwrite, []byte("ow-three"))
	if err != nil {
		t.Fatalf("Append overwrite after v2 recovery: %v", err)
	}
	if seq != 3 {
		t.Fatalf("post-v2 append seq = %d, want 3", seq)
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	got := map[uint64]Kind{}
	if err := l.Replay(0, nil, func(rec Record) error {
		got[rec.Seq] = rec.Kind
		return nil
	}); err != nil {
		t.Fatalf("Replay after append: %v", err)
	}
	if len(got) != 3 || got[3] != KindOverwrite {
		t.Fatalf("mixed-version replay = %v, want 3 records with seq 3 an overwrite", got)
	}
}

// TestOverwriteKindInV2Truncates pins the reason for the magic bump: a
// v2 reader treats an overwrite record as an unknown kind and truncates
// there, so overwrites must never be appended into a v2 segment.
func TestOverwriteKindInV2Truncates(t *testing.T) {
	dir := t.TempDir()
	img := encodeSegHeaderV2(0, 0)
	img = appendRecord(img, 1, KindInsert, []byte("good"))
	img = appendRecord(img, 2, KindOverwrite, []byte("not-in-v2"))
	if err := os.WriteFile(filepath.Join(dir, segName(1)), img, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}
	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	defer l.Close()
	if l.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1 (overwrite kind truncates a v2 segment)", l.LastSeq())
	}
	if got := collect(t, l, 0); len(got) != 1 || got[1] != "good" {
		t.Fatalf("replay = %v, want only seq 1 %q", got, "good")
	}
}

func TestUnknownKindTruncates(t *testing.T) {
	dir := t.TempDir()
	img := encodeSegHeader(0, 0)
	img = appendRecord(img, 1, KindInsert, []byte("good"))
	img = appendRecord(img, 2, Kind(3), []byte("from-the-future"))
	img = appendRecord(img, 3, KindInsert, []byte("unreachable"))
	if err := os.WriteFile(filepath.Join(dir, segName(1)), img, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}

	l := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	defer l.Close()
	// The unknown kind is a truncation point, exactly like a CRC failure:
	// nothing at or past it survives, CRC-valid or not.
	if l.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1 (truncated at the unknown kind)", l.LastSeq())
	}
	if m := l.Metrics(); m.TruncatedBytes == 0 {
		t.Error("TruncatedBytes = 0, want the dropped frames counted")
	}
	if got := collect(t, l, 0); len(got) != 1 || got[1] != "good" {
		t.Fatalf("replay = %v, want only seq 1 %q", got, "good")
	}
	if seq := mustAppend(t, l, "resumed"); seq != 2 {
		t.Fatalf("append after truncation seq = %d, want 2", seq)
	}
}

func TestCRCCoversKindByte(t *testing.T) {
	opts := testOpts(t, SyncAlways)
	l := mustOpen(t, opts)
	mustAppend(t, l, "payload")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(opts.Dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Flip the kind byte (frame offset: 4 len + 4 crc + 8 seq) from
	// insert to delete without touching the CRC: the record must fail
	// the checksum, not silently replay as a delete.
	data[segHeaderSize+16] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}
	l2 := mustOpen(t, opts)
	defer l2.Close()
	if l2.LastSeq() != 0 {
		t.Fatalf("LastSeq = %d, want 0 (flipped kind byte must fail the CRC)", l2.LastSeq())
	}
	if got := collect(t, l2, 0); len(got) != 0 {
		t.Fatalf("replay = %v, want nothing", got)
	}
}

package mining

import (
	"testing"

	"rdffrag/internal/workload"
)

func BenchmarkMineDBpediaLog(b *testing.B) {
	db, err := workload.GenerateDBpedia(workload.DBpediaOptions{Triples: 4000, Queries: 500, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	minSup := len(db.Log) / 100
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&Miner{MinSup: minSup}).Mine(db.Log)
	}
}

func BenchmarkCanonicalCode(b *testing.B) {
	g := randomPattern(7, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CanonicalCode(g)
	}
}

func BenchmarkNormalize(b *testing.B) {
	db, err := workload.GenerateDBpedia(workload.DBpediaOptions{Triples: 4000, Queries: 500, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Normalize(db.Log)
	}
}

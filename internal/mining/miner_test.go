package mining

import (
	"fmt"
	"testing"

	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// workload builds a mixed workload: many star queries over name+interest,
// some chains, a few one-off queries with rare predicates.
func testWorkload(d *rdf.Dict) []*sparql.Graph {
	var w []*sparql.Graph
	for i := 0; i < 10; i++ {
		w = append(w, sparql.MustParse(d, fmt.Sprintf(
			`SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> <I%d> . }`, i)))
	}
	for i := 0; i < 6; i++ {
		w = append(w, sparql.MustParse(d,
			`SELECT ?x WHERE { ?x <placeOfDeath> ?p . ?p <country> ?c . }`))
	}
	w = append(w, sparql.MustParse(d, `SELECT ?x WHERE { ?x <wappen> ?w . }`))
	return w
}

func TestNormalizeGroupsTemplates(t *testing.T) {
	d := rdf.NewDict()
	w := testWorkload(d)
	graphs, weights := Normalize(w)
	// All 10 star queries normalize to the same graph.
	if len(graphs) != 3 {
		t.Fatalf("unique graphs = %d, want 3", len(graphs))
	}
	total := 0
	maxW := 0
	for _, wt := range weights {
		total += wt
		if wt > maxW {
			maxW = wt
		}
	}
	if total != 17 {
		t.Errorf("total weight = %d, want 17", total)
	}
	if maxW != 10 {
		t.Errorf("max weight = %d, want 10 (star template)", maxW)
	}
}

func TestMineFindsFrequentPatterns(t *testing.T) {
	d := rdf.NewDict()
	w := testWorkload(d)
	ps := (&Miner{MinSup: 5}).Mine(w)
	if len(ps) == 0 {
		t.Fatal("no patterns mined")
	}
	// The 2-edge star (name + mainInterest) must be frequent with support 10.
	star := sparql.MustParse(d, `SELECT * WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`).Generalize()
	starCode := CanonicalCode(star)
	var found *Pattern
	for _, p := range ps {
		if p.Code == starCode {
			found = p
		}
	}
	if found == nil {
		t.Fatalf("star pattern not mined; got %d patterns", len(ps))
	}
	if found.Support != 10 {
		t.Errorf("star support = %d, want 10", found.Support)
	}
	// The rare 'wappen' pattern (support 1) must be absent.
	rare := CanonicalCode(sparql.MustParse(d, `SELECT * WHERE { ?x <wappen> ?w . }`).Generalize())
	for _, p := range ps {
		if p.Code == rare {
			t.Error("infrequent pattern leaked into results")
		}
	}
}

func TestMineAntiMonotone(t *testing.T) {
	d := rdf.NewDict()
	w := testWorkload(d)
	ps := (&Miner{MinSup: 3}).Mine(w)
	// Every sub-pattern of a frequent pattern must have >= its support.
	bySize := map[int][]*Pattern{}
	for _, p := range ps {
		bySize[p.Size()] = append(bySize[p.Size()], p)
	}
	for _, big := range bySize[2] {
		for _, small := range bySize[1] {
			if sparql.Embeds(small.Graph, big.Graph) && small.Support < big.Support {
				t.Errorf("anti-monotonicity violated: %s sup=%d inside %s sup=%d",
					small.Code, small.Support, big.Code, big.Support)
			}
		}
	}
}

func TestMineMinSupSweep(t *testing.T) {
	d := rdf.NewDict()
	w := testWorkload(d)
	prev := -1
	for _, sup := range []int{1, 3, 6, 11} {
		n := len((&Miner{MinSup: sup}).Mine(w))
		if prev >= 0 && n > prev {
			t.Errorf("pattern count grew as minSup rose: sup=%d n=%d prev=%d", sup, n, prev)
		}
		prev = n
	}
	// With minSup above the workload size nothing is frequent.
	if n := len((&Miner{MinSup: 100}).Mine(w)); n != 0 {
		t.Errorf("minSup=100 still mined %d patterns", n)
	}
}

func TestMineMaxEdges(t *testing.T) {
	d := rdf.NewDict()
	var w []*sparql.Graph
	for i := 0; i < 5; i++ {
		w = append(w, sparql.MustParse(d,
			`SELECT * WHERE { ?a <p> ?b . ?b <q> ?c . ?c <r> ?e . }`))
	}
	ps := (&Miner{MinSup: 2, MaxEdges: 2}).Mine(w)
	for _, p := range ps {
		if p.Size() > 2 {
			t.Errorf("pattern exceeds MaxEdges: %s", p.Code)
		}
	}
}

func TestCoverage(t *testing.T) {
	d := rdf.NewDict()
	w := testWorkload(d)
	ps := (&Miner{MinSup: 5}).Mine(w)
	cov := Coverage(ps, w)
	// 16/17 queries contain a frequent pattern (only 'wappen' misses).
	want := 16.0 / 17.0
	if cov < want-1e-9 || cov > want+1e-9 {
		t.Errorf("coverage = %f, want %f", cov, want)
	}
	if Coverage(nil, w) != 0 {
		t.Error("empty pattern set should cover nothing")
	}
	if Coverage(ps, nil) != 0 {
		t.Error("empty workload coverage should be 0")
	}
}

func TestPatternContainedIn(t *testing.T) {
	d := rdf.NewDict()
	w := testWorkload(d)
	ps := (&Miner{MinSup: 5}).Mine(w)
	q := sparql.MustParse(d, `SELECT ?x WHERE { ?x <name> "Aristotle" . ?x <mainInterest> ?i . ?x <extra> ?e . }`)
	gen := q.Generalize()
	anyHit := false
	for _, p := range ps {
		if p.ContainedIn(gen) {
			anyHit = true
		}
	}
	if !anyHit {
		t.Error("no mined pattern contained in a superset query")
	}
}

package mining

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// randomPattern builds a small random connected query graph from a seed:
// up to maxEdges edges over a small vertex/predicate pool.
func randomPattern(seed int64, maxEdges int) *sparql.Graph {
	r := rand.New(rand.NewSource(seed))
	n := 1 + r.Intn(maxEdges)
	g := sparql.NewGraph()
	names := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		// Keep it connected: after the first edge, reuse a previous vertex.
		var from, to string
		if i == 0 {
			from, to = names[r.Intn(3)], names[r.Intn(3)]
		} else {
			prev := g.Verts[r.Intn(len(g.Verts))].Var
			from = prev
			to = names[r.Intn(len(names))]
			if r.Intn(2) == 0 {
				from, to = to, from
			}
		}
		g.AddTriplePattern(
			sparql.Vertex{Var: from},
			sparql.Edge{Pred: rdf.ID(r.Intn(4))},
			sparql.Vertex{Var: to},
		)
	}
	return g
}

// renameAndShuffle produces an isomorphic copy: variables renamed, edges
// reordered.
func renameAndShuffle(g *sparql.Graph, seed int64) *sparql.Graph {
	r := rand.New(rand.NewSource(seed))
	rename := map[string]string{}
	fresh := 0
	nameOf := func(v sparql.Vertex) sparql.Vertex {
		if !v.IsVar() {
			return v
		}
		n, ok := rename[v.Var]
		if !ok {
			n = string(rune('p' + fresh))
			fresh++
			rename[v.Var] = n
		}
		return sparql.Vertex{Var: n}
	}
	order := r.Perm(len(g.Edges))
	out := sparql.NewGraph()
	for _, ei := range order {
		e := g.Edges[ei]
		out.AddTriplePattern(nameOf(g.Verts[e.From]), sparql.Edge{Pred: e.Pred, PredVar: e.PredVar}, nameOf(g.Verts[e.To]))
	}
	return out
}

// TestCanonicalCodeIsomorphismInvariantProperty: isomorphic graphs (by
// construction) always share a canonical code.
func TestCanonicalCodeIsomorphismInvariantProperty(t *testing.T) {
	f := func(seed int64, shuffleSeed int64) bool {
		g := randomPattern(seed, 5)
		h := renameAndShuffle(g, shuffleSeed)
		return CanonicalCode(g) == CanonicalCode(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCanonicalCodeSeparatesNonEmbeddableProperty: if two graphs have the
// same code, they must mutually embed (isomorphism witness).
func TestCanonicalCodeSeparatesNonEmbeddableProperty(t *testing.T) {
	f := func(s1, s2 int64) bool {
		g := randomPattern(s1, 4)
		h := randomPattern(s2, 4)
		if CanonicalCode(g) != CanonicalCode(h) {
			return true // nothing to check
		}
		return sparql.Embeds(g, h) && sparql.Embeds(h, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMineSupportsAreExactProperty: every mined pattern's reported support
// equals a direct recount over the normalized workload.
func TestMineSupportsAreExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var w []*sparql.Graph
		for i := 0; i < 12; i++ {
			w = append(w, randomPattern(int64(r.Int31()), 3))
		}
		ps := (&Miner{MinSup: 3, MaxEdges: 3}).Mine(w)
		for _, p := range ps {
			recount := 0
			for _, q := range w {
				if sparql.Embeds(p.Graph, q.Generalize()) {
					recount++
				}
			}
			if recount != p.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package mining

import (
	"testing"

	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

func TestCanonicalCodeInvariance(t *testing.T) {
	d := rdf.NewDict()
	// Same shape with renamed variables and reordered triple patterns.
	a := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . }`)
	b := sparql.MustParse(d, `SELECT * WHERE { ?b <q> ?c . ?a <p> ?b . }`)
	if CanonicalCode(a) != CanonicalCode(b) {
		t.Errorf("isomorphic graphs got different codes:\n%s\n%s", CanonicalCode(a), CanonicalCode(b))
	}
}

func TestCanonicalCodeDistinguishesShape(t *testing.T) {
	d := rdf.NewDict()
	chain := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . ?y <p> ?z . }`)
	star := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . ?x <p> ?z . }`)
	sink := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?z . ?y <p> ?z . }`)
	codes := map[string]string{
		"chain": CanonicalCode(chain),
		"star":  CanonicalCode(star),
		"sink":  CanonicalCode(sink),
	}
	if codes["chain"] == codes["star"] || codes["chain"] == codes["sink"] || codes["star"] == codes["sink"] {
		t.Errorf("distinct shapes share codes: %v", codes)
	}
}

func TestCanonicalCodeDistinguishesLabels(t *testing.T) {
	d := rdf.NewDict()
	p := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	q := sparql.MustParse(d, `SELECT * WHERE { ?x <q> ?y . }`)
	if CanonicalCode(p) == CanonicalCode(q) {
		t.Error("different predicates share a code")
	}
	// Direction matters.
	fwd := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . ?x <q> ?y . }`)
	rev := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . ?y <q> ?x . }`)
	if CanonicalCode(fwd) == CanonicalCode(rev) {
		t.Error("edge direction ignored by code")
	}
}

func TestCanonicalCodeConstants(t *testing.T) {
	d := rdf.NewDict()
	c1 := sparql.MustParse(d, `SELECT * WHERE { ?x <p> <Aristotle> . }`)
	c2 := sparql.MustParse(d, `SELECT * WHERE { ?x <p> <Plato> . }`)
	v := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	if CanonicalCode(c1) == CanonicalCode(c2) {
		t.Error("different constants share a code")
	}
	if CanonicalCode(c1) == CanonicalCode(v) {
		t.Error("constant and variable share a code")
	}
}

func TestCanonicalCodeTriangleRotations(t *testing.T) {
	d := rdf.NewDict()
	t1 := sparql.MustParse(d, `SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . ?c <p> ?a . }`)
	t2 := sparql.MustParse(d, `SELECT * WHERE { ?z <p> ?x . ?x <p> ?y . ?y <p> ?z . }`)
	if CanonicalCode(t1) != CanonicalCode(t2) {
		t.Error("triangle rotations differ")
	}
}

func TestCanonicalCodeSelfLoop(t *testing.T) {
	d := rdf.NewDict()
	loop := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?x . }`)
	edge := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	if CanonicalCode(loop) == CanonicalCode(edge) {
		t.Error("self loop equals plain edge")
	}
	if CanonicalCode(loop) == "" {
		t.Error("self loop got empty code")
	}
}

func TestCanonicalCodeEmpty(t *testing.T) {
	if CanonicalCode(sparql.NewGraph()) != "" {
		t.Error("empty graph should have empty code")
	}
}

func TestCanonicalCodeVariablePredicate(t *testing.T) {
	d := rdf.NewDict()
	v1 := sparql.MustParse(d, `SELECT * WHERE { ?x ?p ?y . }`)
	v2 := sparql.MustParse(d, `SELECT * WHERE { ?a ?q ?b . }`)
	c := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	if CanonicalCode(v1) != CanonicalCode(v2) {
		t.Error("var-pred graphs with renamed vars differ")
	}
	if CanonicalCode(v1) == CanonicalCode(c) {
		t.Error("var pred equals const pred")
	}
}

package mining

import (
	"sort"

	"rdffrag/internal/sparql"
)

// Pattern is a frequent access pattern (Section 4): a normalized query
// subgraph together with its access frequency acc(p) over the workload.
type Pattern struct {
	Graph   *sparql.Graph
	Code    string // canonical code, the dictionary key
	Support int    // acc(p): number of workload queries containing the pattern
}

// Size returns |E(p)|.
func (p *Pattern) Size() int { return p.Graph.NumEdges() }

// ContainedIn reports use(Q, p) for a (normalized or raw) query graph Q.
func (p *Pattern) ContainedIn(q *sparql.Graph) bool {
	return sparql.Embeds(p.Graph, q)
}

// Miner mines frequent access patterns from a SPARQL query workload.
type Miner struct {
	// MinSup is the absolute support threshold minSup (Definition 7); a
	// pattern is frequent if at least MinSup queries contain it.
	MinSup int
	// MaxEdges caps pattern growth; 0 defaults to 10, matching the
	// paper's observation that real query graphs have ≤ 10 edges.
	MaxEdges int
}

// uniqueQuery is a distinct normalized query graph and how many workload
// queries normalize to it.
type uniqueQuery struct {
	g      *sparql.Graph
	weight int
}

// Normalize groups workload queries by the canonical code of their
// generalized graphs, returning distinct graphs with multiplicities.
// Disconnected queries contribute each connected component separately
// (the paper assumes connected Q; components are considered separately).
func Normalize(workload []*sparql.Graph) ([]*sparql.Graph, []int) {
	byCode := make(map[string]*uniqueQuery)
	var order []string
	for _, q := range workload {
		gen := q.Generalize()
		comps := gen.ConnectedComponents()
		var graphs []*sparql.Graph
		if len(comps) <= 1 {
			graphs = []*sparql.Graph{gen}
		} else {
			for _, edges := range comps {
				graphs = append(graphs, gen.EdgeSubgraph(edges))
			}
		}
		for _, g := range graphs {
			code := CanonicalCode(g)
			if u, ok := byCode[code]; ok {
				u.weight++
				continue
			}
			byCode[code] = &uniqueQuery{g: g, weight: 1}
			order = append(order, code)
		}
	}
	gs := make([]*sparql.Graph, len(order))
	ws := make([]int, len(order))
	for i, code := range order {
		gs[i] = byCode[code].g
		ws[i] = byCode[code].weight
	}
	return gs, ws
}

// Mine normalizes the workload and mines all frequent access patterns with
// acc(p) >= MinSup, using pattern growth with canonical-code deduplication.
// Patterns are returned sorted by decreasing support, then decreasing size.
func (m *Miner) Mine(workload []*sparql.Graph) []*Pattern {
	maxEdges := m.MaxEdges
	if maxEdges <= 0 {
		maxEdges = 10
	}
	minSup := m.MinSup
	if minSup < 1 {
		minSup = 1
	}
	graphs, weights := Normalize(workload)
	uniq := make([]*uniqueQuery, len(graphs))
	for i := range graphs {
		uniq[i] = &uniqueQuery{g: graphs[i], weight: weights[i]}
	}

	seen := make(map[string]*Pattern)
	var frontier []*Pattern

	// Level 1: single-edge patterns present in the workload.
	level1 := make(map[string]*sparql.Graph)
	for _, u := range uniq {
		for i := range u.g.Edges {
			sub := u.g.EdgeSubgraph([]int{i})
			code := CanonicalCode(sub)
			if _, ok := level1[code]; !ok {
				level1[code] = sub
			}
		}
	}
	for code, g := range level1 {
		sup := support(g, uniq)
		if sup >= minSup {
			p := &Pattern{Graph: g, Code: code, Support: sup}
			seen[code] = p
			frontier = append(frontier, p)
		}
	}

	// Pattern growth: extend each frequent pattern by one adjacent query
	// edge wherever it embeds, dedupe via canonical codes, keep frequent.
	for size := 1; size < maxEdges && len(frontier) > 0; size++ {
		candidates := make(map[string]*sparql.Graph)
		for _, p := range frontier {
			for _, u := range uniq {
				for _, emb := range sparql.FindEmbeddings(p.Graph, u.g, 0) {
					usedEdges := make(map[int]bool, len(emb.EdgeMap))
					for _, ei := range emb.EdgeMap {
						usedEdges[ei] = true
					}
					coveredVerts := make(map[int]bool, len(emb.VertexMap))
					for _, qv := range emb.VertexMap {
						coveredVerts[qv] = true
					}
					for ei, e := range u.g.Edges {
						if usedEdges[ei] {
							continue
						}
						if !coveredVerts[e.From] && !coveredVerts[e.To] {
							continue // extension must stay connected
						}
						edges := append(append([]int(nil), emb.EdgeMap...), ei)
						cand := u.g.EdgeSubgraph(edges)
						code := CanonicalCode(cand)
						if _, ok := seen[code]; ok {
							continue
						}
						if _, ok := candidates[code]; !ok {
							candidates[code] = cand
						}
					}
				}
			}
		}
		frontier = frontier[:0]
		for code, g := range candidates {
			sup := support(g, uniq)
			if sup >= minSup {
				p := &Pattern{Graph: g, Code: code, Support: sup}
				seen[code] = p
				frontier = append(frontier, p)
			}
		}
	}

	out := make([]*Pattern, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].Size() != out[j].Size() {
			return out[i].Size() > out[j].Size()
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// support computes acc(p) over the grouped workload.
func support(p *sparql.Graph, uniq []*uniqueQuery) int {
	total := 0
	for _, u := range uniq {
		if len(p.Edges) > len(u.g.Edges) {
			continue
		}
		if sparql.Embeds(p, u.g) {
			total += u.weight
		}
	}
	return total
}

// Coverage returns the fraction of workload queries that contain at least
// one of the given patterns (the "workload hitting ratio" of Figure 8(b)).
func Coverage(patterns []*Pattern, workload []*sparql.Graph) float64 {
	if len(workload) == 0 {
		return 0
	}
	hit := 0
	for _, q := range workload {
		gen := q.Generalize()
		for _, p := range patterns {
			if sparql.Embeds(p.Graph, gen) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(workload))
}

// Package mining implements workload analysis from Section 4 of the paper:
// query normalization, canonical codes for query graphs (the DFS coding of
// [26] used by the data dictionary), and frequent access pattern mining.
package mining

import (
	"fmt"
	"strings"

	"rdffrag/internal/sparql"
)

// codeTuple is one edge entry of a graph code: DFS ids of the edge's
// source and target, the predicate label, and the endpoint vertex labels.
// Variable vertices and variable predicates carry label -1 so that graphs
// differing only in variable names share a code.
type codeTuple struct {
	From, To int
	Pred     int64
	FromLab  int64
	ToLab    int64
}

func (t codeTuple) less(o codeTuple) bool {
	if t.From != o.From {
		return t.From < o.From
	}
	if t.To != o.To {
		return t.To < o.To
	}
	if t.Pred != o.Pred {
		return t.Pred < o.Pred
	}
	if t.FromLab != o.FromLab {
		return t.FromLab < o.FromLab
	}
	return t.ToLab < o.ToLab
}

func (t codeTuple) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d,%d)", t.From, t.To, t.Pred, t.FromLab, t.ToLab)
}

// CanonicalCode computes an isomorphism-invariant canonical code for a
// query graph: the lexicographically minimal edge code over every
// connectivity-preserving DFS enumeration. Two query graphs receive the
// same code iff they are isomorphic up to variable renaming. Intended for
// the small graphs found in SPARQL workloads (≤ ~12 edges).
func CanonicalCode(g *sparql.Graph) string {
	if len(g.Edges) == 0 {
		return ""
	}
	c := &canonizer{g: g}
	c.run()
	parts := make([]string, len(c.best))
	for i, t := range c.best {
		parts[i] = t.String()
	}
	return strings.Join(parts, ";")
}

type canonizer struct {
	g    *sparql.Graph
	best []codeTuple
	has  bool

	ids  []int // vertex -> dfs id, -1 unmapped
	used []bool
	cur  []codeTuple
}

func (c *canonizer) run() {
	n := len(c.g.Verts)
	c.ids = make([]int, n)
	c.used = make([]bool, len(c.g.Edges))
	c.cur = make([]codeTuple, 0, len(c.g.Edges))
	for i := range c.ids {
		c.ids[i] = -1
	}
	c.extend(0, 0)
}

func (c *canonizer) vertLabel(v int) int64 {
	vert := c.g.Verts[v]
	if vert.IsVar() {
		return -1
	}
	return int64(vert.Term)
}

func (c *canonizer) predLabel(e sparql.Edge) int64 {
	if e.IsPredVar() {
		return -1
	}
	return int64(e.Pred)
}

// extend tries every unused edge that keeps the traversal connected,
// assigning DFS ids to newly discovered vertices, with branch-and-bound
// pruning against the best code found so far.
func (c *canonizer) extend(depth, nextID int) {
	if depth == len(c.g.Edges) {
		if !c.has || codeLess(c.cur, c.best) {
			c.best = append(c.best[:0], c.cur...)
			c.has = true
		}
		return
	}
	for ei, e := range c.g.Edges {
		if c.used[ei] {
			continue
		}
		fromMapped := c.ids[e.From] >= 0
		toMapped := c.ids[e.To] >= 0
		if depth > 0 && !fromMapped && !toMapped {
			continue // must stay connected
		}
		// Enumerate the id assignments this edge permits.
		type assign struct{ fromID, toID, newFrom, newTo int }
		var assigns []assign
		switch {
		case fromMapped && toMapped:
			assigns = []assign{{c.ids[e.From], c.ids[e.To], -1, -1}}
		case fromMapped:
			assigns = []assign{{c.ids[e.From], nextID, -1, e.To}}
		case toMapped:
			assigns = []assign{{nextID, c.ids[e.To], e.From, -1}}
		default: // first edge: both unmapped; try both orders
			assigns = []assign{
				{0, 1, e.From, e.To},
				{1, 0, e.From, e.To},
			}
			if e.From == e.To { // self loop
				assigns = []assign{{0, 0, e.From, -1}}
			}
		}
		for _, a := range assigns {
			t := codeTuple{
				From:    a.fromID,
				To:      a.toID,
				Pred:    c.predLabel(e),
				FromLab: c.vertLabel(e.From),
				ToLab:   c.vertLabel(e.To),
			}
			// Prune: if the prefix with t already exceeds best, skip.
			if c.has && depth < len(c.best) {
				if c.best[depth].less(t) && !prefixLess(c.cur, c.best, depth) {
					continue
				}
			}
			c.used[ei] = true
			c.cur = append(c.cur, t)
			newNext := nextID
			savedFrom, savedTo := -2, -2
			if a.newFrom >= 0 {
				savedFrom = c.ids[a.newFrom]
				c.ids[a.newFrom] = a.fromID
				if a.fromID >= newNext {
					newNext = a.fromID + 1
				}
			}
			if a.newTo >= 0 {
				savedTo = c.ids[a.newTo]
				c.ids[a.newTo] = a.toID
				if a.toID >= newNext {
					newNext = a.toID + 1
				}
			}
			c.extend(depth+1, newNext)
			if a.newTo >= 0 {
				c.ids[a.newTo] = savedTo
			}
			if a.newFrom >= 0 {
				c.ids[a.newFrom] = savedFrom
			}
			c.cur = c.cur[:len(c.cur)-1]
			c.used[ei] = false
		}
	}
}

// prefixLess reports whether cur[:depth] is strictly less than best[:depth].
func prefixLess(cur, best []codeTuple, depth int) bool {
	for i := 0; i < depth && i < len(cur) && i < len(best); i++ {
		if cur[i].less(best[i]) {
			return true
		}
		if best[i].less(cur[i]) {
			return false
		}
	}
	return false
}

func codeLess(a, b []codeTuple) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].less(b[i]) {
			return true
		}
		if b[i].less(a[i]) {
			return false
		}
	}
	return len(a) < len(b)
}

package cluster

import (
	"context"
	"testing"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// TestPackKeyZeroAllocs: building and probing packed join keys is
// allocation-free — the per-probe-row cost of the hot join loop.
func TestPackKeyZeroAllocs(t *testing.T) {
	cols := []colPair{{l: 1, r: 0}, {l: 3, r: 2}}
	tab := newJoinTable(cols, 16)
	row := []rdf.ID{1, 2, 3, 4}
	tab.add(row, false, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		k := packKey(row, cols, true)
		if k[0] != 2 || k[1] != 4 {
			t.Fatalf("packKey = %v", k)
		}
		_ = tab.lookup(row, true)
	})
	if allocs != 0 {
		t.Errorf("key pack+probe allocates %.1f per run, want 0", allocs)
	}
}

// TestJoinTableWideFallback: joins sharing more than maxPackedCols
// variables fall back to string keys and still join correctly.
func TestJoinTableWideFallback(t *testing.T) {
	vars := []string{"a", "b", "c", "d", "e"}
	l := benchTable(8, vars)
	r := benchTable(8, vars) // all 5 columns shared
	out := HashJoin(l, r)
	// Every left row joins exactly its equal right rows; benchTable is
	// deterministic so row i equals row i.
	want := 0
	for i, lr := range l.Rows {
		for j, rr := range r.Rows {
			eq := true
			for k := range lr {
				if lr[k] != rr[k] {
					eq = false
					break
				}
			}
			if eq {
				want++
			}
			_ = i
			_ = j
		}
	}
	if len(out.Rows) != want {
		t.Fatalf("wide join rows = %d, want %d", len(out.Rows), want)
	}
}

// TestRowArenaRowsAreIsolated: rows carved from one arena chunk have
// capped capacity, so appending to one row cannot corrupt the next.
func TestRowArenaRowsAreIsolated(t *testing.T) {
	var a rowArena
	r1 := a.alloc(3)
	r2 := a.alloc(3)
	copy(r1, []rdf.ID{1, 2, 3})
	copy(r2, []rdf.ID{4, 5, 6})
	_ = append(r1, 99) // must reallocate, not overwrite r2[0]
	if r2[0] != 4 {
		t.Fatalf("appending to one arena row stomped its neighbour: %v", r2)
	}
	if &r1[0] == &r2[0] {
		t.Fatal("rows share storage")
	}
}

// BenchmarkJoinStreamBatches measures the pipelined symmetric join over
// many batches — the shape the streaming engine actually runs.
func BenchmarkJoinStreamBatches(b *testing.B) {
	mk := func(vars []string, rows, batch int) []*match.Bindings {
		var out []*match.Bindings
		t := benchTable(rows, vars)
		for i := 0; i < rows; i += batch {
			end := i + batch
			if end > rows {
				end = rows
			}
			out = append(out, &match.Bindings{Vars: vars, Rows: t.Rows[i:end]})
		}
		return out
	}
	lb := mk([]string{"x", "y"}, 2000, 128)
	rb := mk([]string{"y", "z"}, 2000, 128)
	lv, rv := []string{"x", "y"}, []string{"y", "z"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		left := make(chan *match.Bindings, len(lb))
		right := make(chan *match.Bindings, len(rb))
		out := make(chan *match.Bindings, 16)
		for _, x := range lb {
			left <- x
		}
		close(left)
		for _, x := range rb {
			right <- x
		}
		close(right)
		go JoinStream(context.Background(), lv, rv, left, right, out)
		n := 0
		for o := range out {
			n += len(o.Rows)
		}
		if n == 0 {
			b.Fatal("join stream produced nothing")
		}
	}
}

// Package cluster simulates the distributed substrate of the paper's
// evaluation (Section 8.1: a 10-machine cluster running gStore per site
// with MPI joins). Sites are worker-pool goroutines holding fragment
// graphs; the network layer is channel-based RPC with byte and message
// accounting, so experiments can compare the communication behaviour of
// fragmentation strategies without real sockets. See DESIGN.md §3 for the
// substitution rationale.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// Delay models network cost: every message pays PerMessage, plus PerKB
// per kilobyte shipped. Zero values mean an idealized free network (the
// default, used by unit tests); the benchmark harness configures LAN-like
// delays so that communication cost — the quantity the paper's
// fragmentation strategies optimize — actually shows up in measurements.
type Delay struct {
	PerMessage time.Duration
	PerKB      time.Duration
}

func (d Delay) wait(ctx context.Context, bytes int) error {
	if d.PerMessage == 0 && d.PerKB == 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d.PerMessage + time.Duration(bytes/1024)*d.PerKB)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NetStats accumulates simulated network traffic.
type NetStats struct {
	Messages atomic.Int64
	Bytes    atomic.Int64
}

// Snapshot returns the current counters.
func (n *NetStats) Snapshot() (messages, bytes int64) {
	return n.Messages.Load(), n.Bytes.Load()
}

// Reset zeroes the counters.
func (n *NetStats) Reset() {
	n.Messages.Store(0)
	n.Bytes.Store(0)
}

// Cluster is a set of sites plus the control site's view of the network.
type Cluster struct {
	Sites []*Site
	Net   NetStats
	// Latency simulates network transfer cost per Eval round trip. Set
	// it before issuing queries; LAN-like values are ~100–500µs per
	// message. Transfers serialize on the control site's full-duplex
	// link: a broadcast to m sites pays m request transfers on the way
	// out and m response transfers on the way back — the communication
	// cost the paper's fragmentation strategies compete on.
	Latency Delay

	outLink sync.Mutex // control site's send link
	inLink  sync.Mutex // control site's receive link

	// views publishes batch-atomic MVCC read views over every placed
	// fragment graph: the serving layer republishes after each update
	// batch, and queries pin the latest view instead of locking the data.
	views *rdf.ViewSource
}

// Views returns the cluster's view source. The serving layer publishes a
// new view after each applied update batch; query paths acquire it to
// pin a consistent snapshot of every fragment at once.
func (c *Cluster) Views() *rdf.ViewSource { return c.views }

func (c *Cluster) sendRequest(ctx context.Context, bytes int) error {
	if c.Latency.PerMessage == 0 && c.Latency.PerKB == 0 {
		return ctx.Err()
	}
	c.outLink.Lock()
	defer c.outLink.Unlock()
	return c.Latency.wait(ctx, bytes)
}

func (c *Cluster) receiveResponse(ctx context.Context, bytes int) error {
	if c.Latency.PerMessage == 0 && c.Latency.PerKB == 0 {
		return ctx.Err()
	}
	c.inLink.Lock()
	defer c.inLink.Unlock()
	return c.Latency.wait(ctx, bytes)
}

// Site is one computing node: a set of fragment graphs and a bounded
// worker pool serializing local work, which models per-machine capacity
// for the throughput experiments.
type Site struct {
	ID    int
	frags map[int]*rdf.Graph
	mu    sync.RWMutex
	sem   chan struct{} // limits concurrent local evaluations
}

// New creates a cluster of m sites with the given per-site worker count
// (the paper's machines have 4 cores; workers models that capacity).
func New(m, workersPerSite int) *Cluster {
	if m < 1 {
		m = 1
	}
	if workersPerSite < 1 {
		workersPerSite = 1
	}
	c := &Cluster{Sites: make([]*Site, m), views: rdf.NewViewSource()}
	for i := range c.Sites {
		c.Sites[i] = &Site{
			ID:    i,
			frags: make(map[int]*rdf.Graph),
			sem:   make(chan struct{}, workersPerSite),
		}
	}
	return c
}

// Place stores a fragment graph at a site and registers it with the
// cluster's view source, so subsequently published views cover it.
func (c *Cluster) Place(siteID, fragID int, g *rdf.Graph) error {
	if siteID < 0 || siteID >= len(c.Sites) {
		return fmt.Errorf("cluster: site %d out of range", siteID)
	}
	s := c.Sites[siteID]
	s.mu.Lock()
	s.frags[fragID] = g
	s.mu.Unlock()
	c.views.Register(g)
	return nil
}

// FragmentIDs lists the fragments stored at a site.
func (c *Cluster) FragmentIDs(siteID int) []int {
	s := c.Sites[siteID]
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]int, 0, len(s.frags))
	for id := range s.frags {
		ids = append(ids, id)
	}
	return ids
}

// EvalRequest asks one site to evaluate a subquery over some of its
// fragments and ship the variable bindings back.
type EvalRequest struct {
	SiteID  int
	FragIDs []int
	Query   *sparql.Graph
	// Filter optionally restricts vertex bindings (minterm push-down).
	// It is invoked concurrently (fragments evaluate in parallel and the
	// matcher itself fans out), so it must be safe for concurrent use.
	Filter func(qv int, id rdf.ID) bool
	// Parallelism is the site's intra-query worker budget: it bounds how
	// many fragments evaluate concurrently and how many morsel workers
	// the matcher uses inside each fragment (the budget is divided
	// between the two). 0 means GOMAXPROCS.
	Parallelism int
	// View is the query's pinned MVCC read view; fragments are read
	// through it so one query sees a single batch-atomic cut across every
	// site. A nil View reads each fragment's current state instead (a
	// per-graph-consistent fallback used by offline callers).
	View *rdf.ViewHandle
}

// split divides the request's parallelism budget over the site's
// fragment fan-out: at most budget fragments evaluate at once, and each
// gets budget/fanout morsel workers (≥1) so total worker demand stays
// near the budget instead of multiplying.
func (req *EvalRequest) split(fragments int) (fanout, perFragment int) {
	budget := req.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	fanout = fragments
	if fanout > budget {
		fanout = budget
	}
	if fanout < 1 {
		fanout = 1
	}
	perFragment = budget / fanout
	if perFragment < 1 {
		perFragment = 1
	}
	return fanout, perFragment
}

// Eval performs a synchronous request/response round trip to a site: one
// request message, local evaluation under the site's worker pool, one
// response message carrying the bindings. Results from multiple fragments
// are unioned and deduplicated (fragments may overlap). Cancelling ctx
// aborts the evaluation and any simulated transfer in flight.
func (c *Cluster) Eval(ctx context.Context, req EvalRequest) (*match.Bindings, error) {
	if req.SiteID < 0 || req.SiteID >= len(c.Sites) {
		return nil, fmt.Errorf("cluster: site %d out of range", req.SiteID)
	}
	s := c.Sites[req.SiteID]
	reqBytes := estimateQueryBytes(req.Query)
	c.Net.Messages.Add(1)
	c.Net.Bytes.Add(int64(reqBytes))
	if err := c.sendRequest(ctx, reqBytes); err != nil {
		return nil, err
	}

	graphs, err := s.resolve(req)
	if err != nil {
		return nil, err
	}

	// Evaluate fragments in parallel under the site's worker pool: the
	// paper's horizontal fragmentation wins latency exactly because a
	// site's (or cluster's) cores scan several small fragments at once
	// instead of one big one. The request's parallelism budget is split
	// between this fragment fan-out and the matcher's morsel workers
	// inside each fragment.
	fanout, perFragment := req.split(len(graphs))
	found := make([][]match.Match, len(graphs))
	gate := make(chan struct{}, fanout)
	var wg sync.WaitGroup
	for i, g := range graphs {
		wg.Add(1)
		go func(i int, g *rdf.Graph) {
			defer wg.Done()
			select {
			case gate <- struct{}{}: // respect the parallelism budget
			case <-ctx.Done():
				return
			}
			defer func() { <-gate }()
			select {
			case s.sem <- struct{}{}: // acquire a site worker
			case <-ctx.Done():
				return
			}
			found[i] = match.Find(req.Query, req.View.Snap(g), match.Options{VertexFilter: req.Filter, Parallelism: perFragment})
			<-s.sem
		}(i, g)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var all []match.Match
	for _, f := range found {
		all = append(all, f...)
	}

	b := match.ToBindings(req.Query, all)
	b.Dedup()
	respBytes := len(b.Rows) * len(b.Vars) * 4
	c.Net.Messages.Add(1)
	c.Net.Bytes.Add(int64(respBytes))
	if err := c.receiveResponse(ctx, respBytes); err != nil {
		return nil, err
	}
	return b, nil
}

// resolve looks up the requested fragment graphs at the site.
func (s *Site) resolve(req EvalRequest) ([]*rdf.Graph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	graphs := make([]*rdf.Graph, len(req.FragIDs))
	for i, fid := range req.FragIDs {
		g, ok := s.frags[fid]
		if !ok {
			return nil, fmt.Errorf("cluster: fragment %d not at site %d", fid, req.SiteID)
		}
		graphs[i] = g
	}
	return graphs, nil
}

func estimateQueryBytes(q *sparql.Graph) int {
	return 16*len(q.Edges) + 8*len(q.Verts)
}

// Package cluster models the distributed substrate of the paper's
// evaluation (Section 8.1: a 10-machine cluster running gStore per site
// with MPI joins). Sites are worker-pool goroutines holding fragment
// graphs; the in-process RPC path is channel-based with byte and message
// accounting, so experiments can compare the communication behaviour of
// fragmentation strategies on one machine. The same site RPC surface
// (EvalRequest/EvalStream, abstracted by SiteEval) is also served over
// real sockets by internal/transport, which lets the control site mix
// in-process sites with remote fragment-host processes; the Chaos seam
// (chaos.go) injects deterministic delay and failure on both paths.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// ErrSiteUnavailable marks a site evaluation that failed for
// availability reasons — retries exhausted, circuit breaker open,
// process down — rather than a bad request. The engine's
// partial-results mode (exec.Engine.PartialResults) degrades gracefully
// on exactly this class of error: the unreachable site's contribution
// is skipped and the result is flagged partial instead of failing the
// whole query.
var ErrSiteUnavailable = errors.New("cluster: site unavailable")

// SiteEval is the site RPC surface: evaluate a subquery at one site and
// stream binding batches back. It is implemented by the in-process
// *Cluster (channel RPC) and by transport.SiteClient (HTTP with
// retry/hedging and a circuit breaker), so the engine is
// transport-agnostic and a deployment can mix local and remote sites.
type SiteEval interface {
	EvalStream(ctx context.Context, req EvalRequest, batchSize int, sink BatchSink) error
}

// SiteMetrics is one remote site client's robustness counters, reported
// under /metrics tagged by site ID. The in-process channel path has no
// client wrapper and reports none.
type SiteMetrics struct {
	// Site is the site ID the client talks to.
	Site int
	// Calls counts EvalStream invocations; Attempts counts HTTP
	// attempts made for them (initial tries + Retries + Hedges; calls
	// rejected by an open breaker make no attempt, so
	// Attempts + FastFails == Calls + Retries + Hedges reconciles).
	Calls    uint64
	Attempts uint64
	// Retries counts re-attempts after a retryable failure; Hedges
	// counts speculative second requests launched for stragglers, and
	// HedgeWins how many of those beat the primary.
	Retries   uint64
	Hedges    uint64
	HedgeWins uint64
	// Failures counts failed attempts (transport errors, injected
	// faults, torn streams, per-frame timeouts).
	Failures uint64
	// FastFails counts calls rejected immediately by an open breaker
	// (no attempt was made).
	FastFails uint64
	// BreakerState is "closed", "open" or "half-open"; BreakerOpens
	// counts closed/half-open → open transitions.
	BreakerState string
	BreakerOpens uint64
	// P99 is the 99th-percentile latency of successful eval calls over
	// a recent window (0 until the first success).
	P99 time.Duration
}

// SiteMetricsReporter is implemented by site evaluators that track
// per-site robustness counters (transport.SiteClient).
type SiteMetricsReporter interface {
	SiteMetrics() SiteMetrics
}

// Delay models network cost: every message pays PerMessage, plus PerKB
// per kilobyte shipped. Zero values mean an idealized free network (the
// default, used by unit tests); the benchmark harness configures LAN-like
// delays so that communication cost — the quantity the paper's
// fragmentation strategies optimize — actually shows up in measurements.
type Delay struct {
	PerMessage time.Duration
	PerKB      time.Duration
}

func (d Delay) wait(ctx context.Context, bytes int) error {
	if d.PerMessage == 0 && d.PerKB == 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d.PerMessage + time.Duration(bytes/1024)*d.PerKB)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NetStats accumulates simulated network traffic.
type NetStats struct {
	Messages atomic.Int64
	Bytes    atomic.Int64
}

// Snapshot returns the current counters.
func (n *NetStats) Snapshot() (messages, bytes int64) {
	return n.Messages.Load(), n.Bytes.Load()
}

// Reset zeroes the counters.
func (n *NetStats) Reset() {
	n.Messages.Store(0)
	n.Bytes.Store(0)
}

// Cluster is a set of sites plus the control site's view of the network.
type Cluster struct {
	Sites []*Site
	Net   NetStats
	// Latency simulates network transfer cost per Eval round trip. Set
	// it before issuing queries; LAN-like values are ~100–500µs per
	// message. Transfers serialize on the control site's full-duplex
	// link: a broadcast to m sites pays m request transfers on the way
	// out and m response transfers on the way back — the communication
	// cost the paper's fragmentation strategies compete on.
	Latency Delay

	outLink sync.Mutex // control site's send link
	inLink  sync.Mutex // control site's receive link

	// Faults, when non-nil, injects deterministic seeded faults on the
	// channel-RPC path: requests can be dropped or errored and response
	// streams cut or stalled, through the same seam the HTTP transport
	// uses. Set it before issuing queries (like Latency).
	Faults *Chaos

	// views publishes batch-atomic MVCC read views over every placed
	// fragment graph: the serving layer republishes after each update
	// batch, and queries pin the latest view instead of locking the data.
	views *rdf.ViewSource
}

// Views returns the cluster's view source. The serving layer publishes a
// new view after each applied update batch; query paths acquire it to
// pin a consistent snapshot of every fragment at once.
func (c *Cluster) Views() *rdf.ViewSource { return c.views }

func (c *Cluster) sendRequest(ctx context.Context, bytes int) error {
	if c.Latency.PerMessage != 0 || c.Latency.PerKB != 0 {
		c.outLink.Lock()
		err := c.Latency.wait(ctx, bytes)
		c.outLink.Unlock()
		if err != nil {
			return err
		}
	}
	switch c.Faults.OnRequest() {
	case FaultDrop:
		return fmt.Errorf("%w: request dropped", ErrInjected)
	case FaultError:
		return fmt.Errorf("%w: request errored", ErrInjected)
	case FaultDelay:
		if err := c.Faults.StragglerWait(ctx, bytes); err != nil {
			return err
		}
	}
	return ctx.Err()
}

func (c *Cluster) receiveResponse(ctx context.Context, bytes int) error {
	if c.Latency.PerMessage != 0 || c.Latency.PerKB != 0 {
		c.inLink.Lock()
		err := c.Latency.wait(ctx, bytes)
		c.inLink.Unlock()
		if err != nil {
			return err
		}
	}
	switch c.Faults.OnBatch() {
	case FaultCut:
		return fmt.Errorf("%w: response stream cut", ErrInjected)
	case FaultDelay:
		if err := c.Faults.StragglerWait(ctx, bytes); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Site is one computing node: a set of fragment graphs and a bounded
// worker pool serializing local work, which models per-machine capacity
// for the throughput experiments.
type Site struct {
	ID    int
	frags map[int]*rdf.Graph
	mu    sync.RWMutex
	sem   chan struct{} // limits concurrent local evaluations
}

// New creates a cluster of m sites with the given per-site worker count
// (the paper's machines have 4 cores; workers models that capacity).
func New(m, workersPerSite int) *Cluster {
	if m < 1 {
		m = 1
	}
	if workersPerSite < 1 {
		workersPerSite = 1
	}
	c := &Cluster{Sites: make([]*Site, m), views: rdf.NewViewSource()}
	for i := range c.Sites {
		c.Sites[i] = &Site{
			ID:    i,
			frags: make(map[int]*rdf.Graph),
			sem:   make(chan struct{}, workersPerSite),
		}
	}
	return c
}

// Place stores a fragment graph at a site and registers it with the
// cluster's view source, so subsequently published views cover it.
func (c *Cluster) Place(siteID, fragID int, g *rdf.Graph) error {
	if siteID < 0 || siteID >= len(c.Sites) {
		return fmt.Errorf("cluster: site %d out of range", siteID)
	}
	s := c.Sites[siteID]
	s.mu.Lock()
	s.frags[fragID] = g
	s.mu.Unlock()
	c.views.Register(g)
	return nil
}

// FragmentIDs lists the fragments stored at a site.
func (c *Cluster) FragmentIDs(siteID int) []int {
	s := c.Sites[siteID]
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]int, 0, len(s.frags))
	for id := range s.frags {
		ids = append(ids, id)
	}
	return ids
}

// EvalRequest asks one site to evaluate a subquery over some of its
// fragments and ship the variable bindings back.
type EvalRequest struct {
	SiteID  int
	FragIDs []int
	Query   *sparql.Graph
	// Filter optionally restricts vertex bindings (minterm push-down).
	// It is invoked concurrently (fragments evaluate in parallel and the
	// matcher itself fans out), so it must be safe for concurrent use.
	Filter func(qv int, id rdf.ID) bool
	// Parallelism is the site's intra-query worker budget: it bounds how
	// many fragments evaluate concurrently and how many morsel workers
	// the matcher uses inside each fragment (the budget is divided
	// between the two). 0 means GOMAXPROCS.
	Parallelism int
	// View is the query's pinned MVCC read view; fragments are read
	// through it so one query sees a single batch-atomic cut across every
	// site. A nil View reads each fragment's current state instead (a
	// per-graph-consistent fallback used by offline callers and by the
	// network transport, which cannot ship a view handle across
	// processes).
	View *rdf.ViewHandle
	// Deterministic makes streamed batches arrive in the sequential
	// enumeration order (match.Options.Deterministic). The HTTP site
	// server relies on it: a deterministic batch sequence is what makes
	// a torn stream resumable from the last acknowledged batch.
	Deterministic bool
}

// split divides the request's parallelism budget over the site's
// fragment fan-out: at most budget fragments evaluate at once, and each
// gets budget/fanout morsel workers (≥1) so total worker demand stays
// near the budget instead of multiplying.
func (req *EvalRequest) split(fragments int) (fanout, perFragment int) {
	budget := req.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	fanout = fragments
	if fanout > budget {
		fanout = budget
	}
	if fanout < 1 {
		fanout = 1
	}
	perFragment = budget / fanout
	if perFragment < 1 {
		perFragment = 1
	}
	return fanout, perFragment
}

// Eval performs a synchronous request/response round trip to a site: one
// request message, local evaluation under the site's worker pool, one
// response message carrying the bindings. Results from multiple fragments
// are unioned and deduplicated (fragments may overlap). Cancelling ctx
// aborts the evaluation and any simulated transfer in flight.
func (c *Cluster) Eval(ctx context.Context, req EvalRequest) (*match.Bindings, error) {
	if req.SiteID < 0 || req.SiteID >= len(c.Sites) {
		return nil, fmt.Errorf("cluster: site %d out of range", req.SiteID)
	}
	s := c.Sites[req.SiteID]
	reqBytes := estimateQueryBytes(req.Query)
	c.Net.Messages.Add(1)
	c.Net.Bytes.Add(int64(reqBytes))
	if err := c.sendRequest(ctx, reqBytes); err != nil {
		return nil, err
	}

	graphs, err := s.resolve(req)
	if err != nil {
		return nil, err
	}

	// Evaluate fragments in parallel under the site's worker pool: the
	// paper's horizontal fragmentation wins latency exactly because a
	// site's (or cluster's) cores scan several small fragments at once
	// instead of one big one. The request's parallelism budget is split
	// between this fragment fan-out and the matcher's morsel workers
	// inside each fragment.
	fanout, perFragment := req.split(len(graphs))
	found := make([][]match.Match, len(graphs))
	gate := make(chan struct{}, fanout)
	var wg sync.WaitGroup
	for i, g := range graphs {
		wg.Add(1)
		go func(i int, g *rdf.Graph) {
			defer wg.Done()
			select {
			case gate <- struct{}{}: // respect the parallelism budget
			case <-ctx.Done():
				return
			}
			defer func() { <-gate }()
			select {
			case s.sem <- struct{}{}: // acquire a site worker
			case <-ctx.Done():
				return
			}
			found[i] = match.Find(req.Query, req.View.Snap(g), match.Options{VertexFilter: req.Filter, Parallelism: perFragment})
			<-s.sem
		}(i, g)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var all []match.Match
	for _, f := range found {
		all = append(all, f...)
	}

	b := match.ToBindings(req.Query, all)
	b.Dedup()
	respBytes := len(b.Rows) * len(b.Vars) * 4
	c.Net.Messages.Add(1)
	c.Net.Bytes.Add(int64(respBytes))
	if err := c.receiveResponse(ctx, respBytes); err != nil {
		return nil, err
	}
	return b, nil
}

// FragEpoch fingerprints the current state of the given fragments at a
// site: the sum of their graphs' mutation epochs. The HTTP site server
// stamps it on each eval stream so a resuming client can detect that
// the data moved between attempts (the deterministic batch prefix is
// then no longer comparable) and restart from scratch instead.
func (c *Cluster) FragEpoch(siteID int, fragIDs []int) (uint64, error) {
	if siteID < 0 || siteID >= len(c.Sites) {
		return 0, fmt.Errorf("cluster: site %d out of range", siteID)
	}
	graphs, err := c.Sites[siteID].resolve(EvalRequest{SiteID: siteID, FragIDs: fragIDs})
	if err != nil {
		return 0, err
	}
	var e uint64
	for _, g := range graphs {
		e += g.Epoch()
	}
	return e, nil
}

// resolve looks up the requested fragment graphs at the site.
func (s *Site) resolve(req EvalRequest) ([]*rdf.Graph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	graphs := make([]*rdf.Graph, len(req.FragIDs))
	for i, fid := range req.FragIDs {
		g, ok := s.frags[fid]
		if !ok {
			return nil, fmt.Errorf("cluster: fragment %d not at site %d", fid, req.SiteID)
		}
		graphs[i] = g
	}
	return graphs, nil
}

func estimateQueryBytes(q *sparql.Graph) int {
	return 16*len(q.Edges) + 8*len(q.Verts)
}

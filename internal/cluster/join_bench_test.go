package cluster

import (
	"testing"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

func benchTable(n int, vars []string) *match.Bindings {
	b := &match.Bindings{Vars: vars}
	for i := 0; i < n; i++ {
		row := make([]rdf.ID, len(vars))
		for j := range row {
			row[j] = rdf.ID((i*7 + j*13) % 97)
		}
		b.Rows = append(b.Rows, row)
	}
	return b
}

func BenchmarkHashJoin(b *testing.B) {
	l := benchTable(2000, []string{"x", "y"})
	r := benchTable(2000, []string{"y", "z"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashJoin(l, r)
	}
}

func BenchmarkUnionDedup(b *testing.B) {
	x := benchTable(3000, []string{"x", "y"})
	y := benchTable(3000, []string{"x", "y"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(x, y)
	}
}

package cluster

import (
	"context"
	"fmt"
	"testing"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

func benchTable(n int, vars []string) *match.Bindings {
	b := &match.Bindings{Vars: vars}
	for i := 0; i < n; i++ {
		row := make([]rdf.ID, len(vars))
		for j := range row {
			row[j] = rdf.ID((i*7 + j*13) % 97)
		}
		b.Rows = append(b.Rows, row)
	}
	return b
}

func BenchmarkHashJoin(b *testing.B) {
	l := benchTable(2000, []string{"x", "y"})
	r := benchTable(2000, []string{"y", "z"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashJoin(l, r)
	}
}

// BenchmarkJoinStreamPartitioned sweeps the partition fan-out of the
// streamed control-site join (streaming merge mode, the engine's
// configuration): P1 is the sequential symmetric join, higher counts
// fan the same batches out to shared-nothing partition workers. Run
// under different GOMAXPROCS settings (make bench-baseline's parallel
// section), the sweep records how the fan-out converts cores into join
// throughput; on one hardware thread it records the partitioning
// overhead instead.
func BenchmarkJoinStreamPartitioned(b *testing.B) {
	mk := func(vars []string, rows, batch int) []*match.Bindings {
		var out []*match.Bindings
		t := benchTable(rows, vars)
		for i := 0; i < rows; i += batch {
			end := i + batch
			if end > rows {
				end = rows
			}
			out = append(out, &match.Bindings{Vars: vars, Rows: t.Rows[i:end]})
		}
		return out
	}
	lb := mk([]string{"x", "y"}, 2000, 128)
	rb := mk([]string{"y", "z"}, 2000, 128)
	lv, rv := []string{"x", "y"}, []string{"y", "z"}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				left := make(chan *match.Bindings, len(lb))
				right := make(chan *match.Bindings, len(rb))
				out := make(chan *match.Bindings, 16)
				for _, x := range lb {
					left <- x
				}
				close(left)
				for _, x := range rb {
					right <- x
				}
				close(right)
				go JoinStreamOpts(context.Background(), lv, rv, left, right, out, JoinOptions{Partitions: p})
				n := 0
				for o := range out {
					n += len(o.Rows)
				}
				if n == 0 {
					b.Fatal("partitioned join stream produced nothing")
				}
			}
		})
	}
}

func BenchmarkUnionDedup(b *testing.B) {
	x := benchTable(3000, []string{"x", "y"})
	y := benchTable(3000, []string{"x", "y"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(x, y)
	}
}

package cluster

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// randomBindings builds a small random binding table over the given vars.
func randomBindings(seed int64, vars []string, rows int) *match.Bindings {
	r := rand.New(rand.NewSource(seed))
	b := &match.Bindings{Vars: vars}
	for i := 0; i < rows; i++ {
		row := make([]rdf.ID, len(vars))
		for j := range row {
			row[j] = rdf.ID(r.Intn(4))
		}
		b.Rows = append(b.Rows, row)
	}
	return b
}

// canonicalRows renders a binding table as a sorted multiset of
// var=value strings, so tables can be compared independent of row and
// column order.
func canonicalRows(b *match.Bindings) []string {
	out := make([]string, 0, len(b.Rows))
	order := make([]int, len(b.Vars))
	names := append([]string(nil), b.Vars...)
	sort.Strings(names)
	pos := map[string]int{}
	for i, v := range b.Vars {
		pos[v] = i
	}
	for i, v := range names {
		order[i] = pos[v]
	}
	for _, r := range b.Rows {
		s := ""
		for i, v := range names {
			s += v + "=" + string(rune('0'+int(r[order[i]]))) + ";"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func equalMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHashJoinCommutativeProperty: A ⋈ B ≡ B ⋈ A up to column order.
func TestHashJoinCommutativeProperty(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomBindings(s1, []string{"x", "y"}, 6)
		b := randomBindings(s2, []string{"y", "z"}, 6)
		ab := HashJoin(a, b)
		ba := HashJoin(b, a)
		return equalMultiset(canonicalRows(ab), canonicalRows(ba))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestHashJoinAssociativeProperty: (A ⋈ B) ⋈ C ≡ A ⋈ (B ⋈ C).
func TestHashJoinAssociativeProperty(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a := randomBindings(s1, []string{"x", "y"}, 5)
		b := randomBindings(s2, []string{"y", "z"}, 5)
		c := randomBindings(s3, []string{"z", "w"}, 5)
		l := HashJoin(HashJoin(a, b), c)
		r := HashJoin(a, HashJoin(b, c))
		return equalMultiset(canonicalRows(l), canonicalRows(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestHashJoinMatchesNestedLoopProperty: the hash join agrees with a
// naive nested-loop join oracle.
func TestHashJoinMatchesNestedLoopProperty(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomBindings(s1, []string{"x", "y"}, 6)
		b := randomBindings(s2, []string{"y", "z"}, 6)
		got := HashJoin(a, b)
		var oracle match.Bindings
		oracle.Vars = []string{"x", "y", "z"}
		for _, ra := range a.Rows {
			for _, rb := range b.Rows {
				if ra[1] == rb[0] {
					oracle.Rows = append(oracle.Rows, []rdf.ID{ra[0], ra[1], rb[1]})
				}
			}
		}
		return equalMultiset(canonicalRows(got), canonicalRows(&oracle))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestUnionIdempotentProperty: Union(A, A) has the same distinct rows as
// Union(A).
func TestUnionIdempotentProperty(t *testing.T) {
	f := func(s int64) bool {
		a := randomBindings(s, []string{"x", "y"}, 8)
		once := Union(a)
		twice := Union(a, a)
		return equalMultiset(canonicalRows(once), canonicalRows(twice))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestProjectThenProjectProperty: projecting twice equals projecting once
// onto the narrower set.
func TestProjectThenProjectProperty(t *testing.T) {
	f := func(s int64) bool {
		a := randomBindings(s, []string{"x", "y", "z"}, 8)
		p1 := Project(Project(a, []string{"x", "y"}), []string{"x"})
		p2 := Project(a, []string{"x"})
		return equalMultiset(canonicalRows(p1), canonicalRows(p2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

package cluster

// Partitioned parallel control-site join. The symmetric hash join of
// stream.go is one goroutine per join stage, so join-heavy queries
// bottleneck at the control site exactly where the paper's
// partial-evaluation-and-assembly design concentrates work. The operators
// here remove that ceiling the way the morsel fan-out (internal/match)
// scaled the sites: each incoming row's packed join key hashes into one of
// P disjoint partitions, one shared-nothing worker per partition runs the
// symmetric join with its own pair of hash tables and rowArena (no locks
// on the probe/build path), and partition outputs merge either
//
//   - deterministically: every partition buffers its inputs, joins them
//     probing left rows in global arrival order, and the per-partition
//     outputs — sorted by (left index, right index), with left indexes
//     disjoint across partitions — k-way merge into exactly the row order
//     the sequential HashJoin produces, byte for byte; or
//   - streaming: workers emit merged rows into the shared output channel
//     as each pair's later row arrives (the channel is the serialized
//     sink), mirroring match.Options.Deterministic's streaming mode.
//
// Rows are only ever routed, never copied: a partition batch is a slice
// of the same row slices the producer shipped.
//
// Join-key semantics under partitioning: two rows can only match when
// every shared column compares equal, so rows agreeing on all shared
// columns hash to the same partition and no match is lost. A Cartesian
// join (no shared variables) has nothing to hash by — every pair matches
// — so it always takes the single-partition path. A ragged row too short
// to cover every shared column has no defined join key and matches
// nothing, in every mode and partition count (the sequential join
// formerly panicked on such rows).

import (
	"context"
	"sync"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// MaxJoinPartitions caps the partition fan-out of one join stage; beyond
// it per-partition hash tables are too sparse to pay for their workers.
// Exported so budget planners (exec) can clamp before reserving workers.
const MaxJoinPartitions = 64

// JoinOptions tunes the control-site join operators.
type JoinOptions struct {
	// Partitions is the number of shared-nothing join partitions run in
	// parallel; 0 or 1 selects the single-partition (sequential) path.
	// Cartesian joins ignore it (nothing to partition by).
	Partitions int
	// Deterministic makes JoinStreamOpts emit rows in exactly the
	// sequential HashJoin order regardless of partition count or input
	// interleaving, at the cost of materializing before emitting —
	// mirroring match.Options.Deterministic. When false, workers stream
	// merged rows as they are found; the row multiset is identical but
	// the order is not reproducible.
	Deterministic bool
}

// Partitionable reports whether a join of two streams with these
// variable sets can fan out over multiple partitions — the same
// shared-variable rule JoinOptions applies internally. Budget planners
// (exec) use it to avoid charging worker budget to stages that will run
// single-partition regardless.
func Partitionable(leftVars, rightVars []string) bool {
	shared, _ := alignVars(leftVars, rightVars)
	return len(shared) > 0
}

// partitions resolves the effective partition count for a join with the
// given number of shared columns.
func (o JoinOptions) partitions(shared int) int {
	p := o.Partitions
	if p <= 1 || shared == 0 {
		return 1
	}
	if p > MaxJoinPartitions {
		p = MaxJoinPartitions
	}
	return p
}

// joinGeom is one join's resolved column geometry, shared read-only by
// routers, partition workers and the merger. lNeed/rNeed/maxRO are
// precomputed so the per-row ragged-row guards cost one integer compare,
// not a loop over the columns.
type joinGeom struct {
	shared    []colPair
	rightOnly []int
	lw        int // left row width (len(leftVars))
	width     int // output row width
	lNeed     int // min left row length covering every shared column
	rNeed     int // min right row length covering every shared column
	maxRO     int // max right-only column index (-1 when none)
	outVars   []string
}

func newJoinGeom(leftVars, rightVars []string) *joinGeom {
	shared, rightOnly := alignVars(leftVars, rightVars)
	j := &joinGeom{
		shared:    shared,
		rightOnly: rightOnly,
		lw:        len(leftVars),
		width:     len(leftVars) + len(rightOnly),
		maxRO:     -1,
		outVars:   append(append([]string(nil), leftVars...), names(rightVars, rightOnly)...),
	}
	for _, c := range shared {
		if c.l+1 > j.lNeed {
			j.lNeed = c.l + 1
		}
		if c.r+1 > j.rNeed {
			j.rNeed = c.r + 1
		}
	}
	for _, idx := range rightOnly {
		if idx > j.maxRO {
			j.maxRO = idx
		}
	}
	return j
}

// lKeyable/rKeyable report whether a row covers every shared column on
// its side — the precondition for building its join key.
func (j *joinGeom) lKeyable(row []rdf.ID) bool { return len(row) >= j.lNeed }
func (j *joinGeom) rKeyable(row []rdf.ID) bool { return len(row) >= j.rNeed }

func (j *joinGeom) keyableSide(row []rdf.ID, left bool) bool {
	if left {
		return j.lKeyable(row)
	}
	return j.rKeyable(row)
}

// FNV-1a parameters for partition routing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// partitionFor routes one keyable row: FNV-1a over its shared-column
// values, in shared-column order, so matching rows from either side and
// at any key width land in the same partition. It never allocates — the
// per-routed-row cost of the partitioned join (wide string-fallback keys
// included: the hash reads the columns directly, no key materialization).
func partitionFor(row []rdf.ID, cols []colPair, left bool, p int) int {
	h := uint64(fnvOffset64)
	for _, c := range cols {
		i := c.r
		if left {
			i = c.l
		}
		h ^= uint64(row[i])
		h *= fnvPrime64
	}
	return int((h ^ h>>32) % uint64(p))
}

// partIn is one partition's buffered input side: the routed rows plus
// each row's global arrival index (the deterministic merge order).
type partIn struct {
	rows [][]rdf.ID
	idx  []int32
}

// partOut is one partition's deterministic join output: merged rows
// sorted by (left arrival index, right arrival index), plus the left
// index per row when a cross-partition merge needs it.
type partOut struct {
	rows [][]rdf.ID
	li   []int32
}

// joinOrdered is the ordered batch-join core shared by HashJoin and the
// deterministic stream merge: hash rrows, probe lrows in order, emit
// matches in (left index, right index) order. lidx maps local left rows
// to their global arrival indexes (nil means the identity); needLi
// records the global left index per output row for mergeOrdered. With no
// shared columns it degrades to the nested-loop Cartesian product in the
// same order. Rows missing a shared column are skipped (no defined key).
func joinOrdered(j *joinGeom, lrows [][]rdf.ID, lidx []int32, rrows [][]rdf.ID, needLi bool) partOut {
	var res partOut
	if len(lrows) == 0 || len(rrows) == 0 {
		return res
	}
	liOf := func(i int) int32 {
		if lidx != nil {
			return lidx[i]
		}
		return int32(i)
	}
	if len(j.shared) == 0 {
		total := len(lrows) * len(rrows)
		arena := presizedArena(total, j.width)
		res.rows = make([][]rdf.ID, 0, total)
		if needLi {
			res.li = make([]int32, 0, total)
		}
		for i, lr := range lrows {
			for _, rr := range rrows {
				res.rows = append(res.rows, mergeRows(arena, j, lr, rr))
				if needLi {
					res.li = append(res.li, liOf(i))
				}
			}
		}
		return res
	}
	tab := newJoinTable(j.shared, len(rrows))
	for i, rr := range rrows {
		if j.rKeyable(rr) {
			tab.add(rr, false, int32(i))
		}
	}
	// Counting pass: probing twice is far cheaper than growing the output
	// slice and row storage through repeated reallocation.
	total := 0
	for _, lr := range lrows {
		if j.lKeyable(lr) {
			total += len(tab.lookup(lr, true))
		}
	}
	if total == 0 {
		return res
	}
	arena := presizedArena(total, j.width)
	res.rows = make([][]rdf.ID, 0, total)
	if needLi {
		res.li = make([]int32, 0, total)
	}
	for i, lr := range lrows {
		if !j.lKeyable(lr) {
			continue
		}
		for _, ri := range tab.lookup(lr, true) {
			res.rows = append(res.rows, mergeRows(arena, j, lr, rrows[ri]))
			if needLi {
				res.li = append(res.li, liOf(i))
			}
		}
	}
	return res
}

// mergeOrdered k-way merges per-partition ordered outputs into the global
// (left index, right index) order. All outputs of one left row live in
// exactly one partition (one row, one key, one partition) and each
// partition's list is sorted by left index, so repeatedly taking the run
// of smallest head left index reproduces the sequential order.
func mergeOrdered(results []partOut) [][]rdf.ID {
	total := 0
	for _, r := range results {
		total += len(r.rows)
	}
	if total == 0 {
		return nil
	}
	out := make([][]rdf.ID, 0, total)
	cur := make([]int, len(results))
	for len(out) < total {
		best := -1
		var bestLi int32
		for i := range results {
			c := cur[i]
			if c < len(results[i].rows) && (best < 0 || results[i].li[c] < bestLi) {
				best, bestLi = i, results[i].li[c]
			}
		}
		r := &results[best]
		c := cur[best]
		for c < len(r.rows) && r.li[c] == bestLi {
			out = append(out, r.rows[c])
			c++
		}
		cur[best] = c
	}
	return out
}

// HashJoinOpts is HashJoin with a configurable partition fan-out: rows
// partition by join key, the partitions join in parallel (shared-nothing),
// and the ordered merge makes the output byte-identical to HashJoin at
// every partition count.
func HashJoinOpts(left, right *match.Bindings, opts JoinOptions) *match.Bindings {
	j := newJoinGeom(left.Vars, right.Vars)
	out := &match.Bindings{Vars: j.outVars}
	if len(left.Rows) == 0 || len(right.Rows) == 0 {
		return out
	}
	p := opts.partitions(len(j.shared))
	if p == 1 {
		out.Rows = joinOrdered(j, left.Rows, nil, right.Rows, false).rows
		return out
	}
	lparts := make([]partIn, p)
	rparts := make([]partIn, p)
	routeRows(j, p, left.Rows, true, lparts)
	routeRows(j, p, right.Rows, false, rparts)
	out.Rows = mergeOrdered(joinPartitions(j, lparts, rparts))
	return out
}

// routeRows partitions one side's rows by join key, recording global
// arrival indexes for the ordered merge.
func routeRows(j *joinGeom, p int, rows [][]rdf.ID, left bool, parts []partIn) {
	for i, row := range rows {
		if !j.keyableSide(row, left) {
			continue
		}
		pt := partitionFor(row, j.shared, left, p)
		parts[pt].rows = append(parts[pt].rows, row)
		parts[pt].idx = append(parts[pt].idx, int32(i))
	}
}

// joinPartitions joins each partition pair in parallel, one shared-nothing
// worker per partition.
func joinPartitions(j *joinGeom, lparts, rparts []partIn) []partOut {
	results := make([]partOut, len(lparts))
	var wg sync.WaitGroup
	for i := range results {
		if len(lparts[i].rows) == 0 || len(rparts[i].rows) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = joinOrdered(j, lparts[i].rows, lparts[i].idx, rparts[i].rows, true)
		}(i)
	}
	wg.Wait()
	return results
}

// JoinStreamOpts runs the control-site join between two batch streams
// with a configurable partition fan-out and merge mode, closing out when
// done. See JoinStream for the single-partition streaming semantics and
// the package comment above for partitioning. Cancelling ctx stops the
// routers and every partition worker promptly (the shared kill switch);
// the inputs are then left undrained (producers must also watch ctx).
func JoinStreamOpts(ctx context.Context, leftVars, rightVars []string, left, right <-chan *match.Bindings, out chan<- *match.Bindings, opts JoinOptions) {
	defer close(out)
	j := newJoinGeom(leftVars, rightVars)
	p := opts.partitions(len(j.shared))
	if opts.Deterministic {
		joinStreamDet(ctx, j, p, left, right, out)
		return
	}
	if p == 1 {
		// Single-partition streaming — the default under server load and
		// every legacy JoinStream call — joins inline off the input
		// channels: no routers, no partition channels, no extra hop.
		joinStreamSeq(ctx, j, left, right, out)
		return
	}
	lch := makePartChans(p)
	rch := makePartChans(p)
	go routeStream(ctx, j, left, lch, true)
	go routeStream(ctx, j, right, rch, false)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			joinStreamWorker(ctx, j, lch[i], rch[i], out)
		}(i)
	}
	wg.Wait()
}

// partChanBuf is the per-partition channel depth: enough to decouple the
// router from a worker mid-probe without hoarding batches.
const partChanBuf = 2

func makePartChans(p int) []chan [][]rdf.ID {
	chs := make([]chan [][]rdf.ID, p)
	for i := range chs {
		chs[i] = make(chan [][]rdf.ID, partChanBuf)
	}
	return chs
}

// routeStream reads one input side and scatters each batch's rows to the
// per-partition channels (always ≥2 of them; P=1 joins inline without a
// router) by join key, preserving per-partition arrival order. It closes
// the partition channels when the input closes or ctx is cancelled.
func routeStream(ctx context.Context, j *joinGeom, in <-chan *match.Bindings, chs []chan [][]rdf.ID, left bool) {
	defer func() {
		for _, ch := range chs {
			close(ch)
		}
	}()
	p := len(chs)
	pending := make([][][]rdf.ID, p)
	for {
		var b *match.Bindings
		select {
		case bb, ok := <-in:
			if !ok {
				return
			}
			b = bb
		case <-ctx.Done():
			return
		}
		for _, row := range b.Rows {
			if !j.keyableSide(row, left) {
				continue
			}
			pt := partitionFor(row, j.shared, left, p)
			pending[pt] = append(pending[pt], row)
		}
		for i, rows := range pending {
			if len(rows) == 0 {
				continue
			}
			select {
			case chs[i] <- rows:
			case <-ctx.Done():
				return
			}
			pending[i] = nil
		}
	}
}

// symJoiner is the symmetric (pipelined) hash-join core shared by the
// single-partition path and the per-partition workers: each arriving row
// is inserted into its side's table and probed against the other side's
// rows seen so far, so every matching pair is produced exactly once, as
// soon as its later row arrives. Rows must be pre-filtered keyable. The
// arena lives for the whole stream: merged rows are carved from chunks
// that survive across batches, so emitting N rows costs ~N/chunk
// allocations instead of N.
type symJoiner struct {
	j                   *joinGeom
	leftTab, rightTab   *joinTable
	leftRows, rightRows [][]rdf.ID
	arena               rowArena
}

func newSymJoiner(j *joinGeom) *symJoiner {
	return &symJoiner{j: j, leftTab: newJoinTable(j.shared, 0), rightTab: newJoinTable(j.shared, 0)}
}

// probeLeft inserts a batch of left rows and returns their merged matches
// against the right rows seen so far; probeRight is its mirror image.
func (s *symJoiner) probeLeft(batch [][]rdf.ID) [][]rdf.ID {
	var found [][]rdf.ID
	for _, lr := range batch {
		s.leftTab.add(lr, true, int32(len(s.leftRows)))
		s.leftRows = append(s.leftRows, lr)
		for _, ri := range s.rightTab.lookup(lr, true) {
			found = append(found, mergeRows(&s.arena, s.j, lr, s.rightRows[ri]))
		}
	}
	return found
}

func (s *symJoiner) probeRight(batch [][]rdf.ID) [][]rdf.ID {
	var found [][]rdf.ID
	for _, rr := range batch {
		s.rightTab.add(rr, false, int32(len(s.rightRows)))
		s.rightRows = append(s.rightRows, rr)
		for _, li := range s.leftTab.lookup(rr, false) {
			found = append(found, mergeRows(&s.arena, s.j, s.leftRows[li], rr))
		}
	}
	return found
}

// emitRows sends one non-empty output batch, reporting false when ctx is
// done. The out channel may be shared by several workers — the send is
// the serialized sink.
func emitRows(ctx context.Context, out chan<- *match.Bindings, vars []string, rows [][]rdf.ID) bool {
	if len(rows) == 0 {
		return true
	}
	select {
	case out <- &match.Bindings{Vars: vars, Rows: rows}:
		return true
	case <-ctx.Done():
		return false
	}
}

// filterKeyable drops rows missing a shared column. Well-formed batches
// (the overwhelmingly common case) pass through without copying.
func filterKeyable(rows [][]rdf.ID, j *joinGeom, left bool) [][]rdf.ID {
	for i, r := range rows {
		if !j.keyableSide(r, left) {
			kept := append([][]rdf.ID(nil), rows[:i]...)
			for _, r := range rows[i+1:] {
				if j.keyableSide(r, left) {
					kept = append(kept, r)
				}
			}
			return kept
		}
	}
	return rows
}

// runSymLoop drives one symJoiner over a pair of batch streams until
// both close, ctx is done, or an emit fails; rows extracts a batch's
// pre-filtered rows for its side. Both streaming paths share this loop,
// so the two cannot diverge.
func runSymLoop[B any](ctx context.Context, j *joinGeom, left, right <-chan B, out chan<- *match.Bindings, rows func(B, bool) [][]rdf.ID) {
	s := newSymJoiner(j)
	for left != nil || right != nil {
		select {
		case b, ok := <-left:
			if !ok {
				left = nil
				continue
			}
			if !emitRows(ctx, out, j.outVars, s.probeLeft(rows(b, true))) {
				return
			}
		case b, ok := <-right:
			if !ok {
				right = nil
				continue
			}
			if !emitRows(ctx, out, j.outVars, s.probeRight(rows(b, false))) {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// joinStreamSeq is the single-partition streaming join — the default
// under server load and every legacy JoinStream call — running the
// symmetric core directly over the input batch streams: no routers, no
// partition channels, no extra hop.
func joinStreamSeq(ctx context.Context, j *joinGeom, left, right <-chan *match.Bindings, out chan<- *match.Bindings) {
	runSymLoop(ctx, j, left, right, out, func(b *match.Bindings, left bool) [][]rdf.ID {
		return filterKeyable(b.Rows, j, left)
	})
}

// joinStreamWorker is one partition's streaming join: the symmetric core
// over the router's pre-filtered per-partition batches, with
// worker-private tables, row storage and arena.
func joinStreamWorker(ctx context.Context, j *joinGeom, left, right <-chan [][]rdf.ID, out chan<- *match.Bindings) {
	runSymLoop(ctx, j, left, right, out, func(b [][]rdf.ID, _ bool) [][]rdf.ID { return b })
}

// joinStreamDet is the deterministic mode: both sides buffer into
// per-partition inputs while streaming (route work still overlaps the
// producers), the partitions join in parallel once the inputs close, and
// the ordered merge emits exactly the sequential HashJoin row sequence in
// DefaultBatchSize chunks.
func joinStreamDet(ctx context.Context, j *joinGeom, p int, left, right <-chan *match.Bindings, out chan<- *match.Bindings) {
	lparts := make([]partIn, p)
	rparts := make([]partIn, p)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		routeBuffer(ctx, j, p, left, true, lparts)
	}()
	go func() {
		defer wg.Done()
		routeBuffer(ctx, j, p, right, false, rparts)
	}()
	wg.Wait()
	if ctx.Err() != nil {
		return
	}
	var rows [][]rdf.ID
	if p == 1 {
		rows = joinOrdered(j, lparts[0].rows, lparts[0].idx, rparts[0].rows, false).rows
	} else {
		rows = mergeOrdered(joinPartitions(j, lparts, rparts))
	}
	for i := 0; i < len(rows); i += DefaultBatchSize {
		end := i + DefaultBatchSize
		if end > len(rows) {
			end = len(rows)
		}
		select {
		case out <- &match.Bindings{Vars: j.outVars, Rows: rows[i:end]}:
		case <-ctx.Done():
			return
		}
	}
}

// routeBuffer is routeStream's buffering twin for the deterministic mode:
// rows scatter into per-partition input buffers with their global arrival
// index instead of onto channels.
func routeBuffer(ctx context.Context, j *joinGeom, p int, in <-chan *match.Bindings, left bool, parts []partIn) {
	var n int32
	for {
		select {
		case b, ok := <-in:
			if !ok {
				return
			}
			for _, row := range b.Rows {
				i := n
				n++
				if !j.keyableSide(row, left) {
					continue
				}
				pt := 0
				if p > 1 {
					pt = partitionFor(row, j.shared, left, p)
				}
				parts[pt].rows = append(parts[pt].rows, row)
				parts[pt].idx = append(parts[pt].idx, i)
			}
		case <-ctx.Done():
			return
		}
	}
}

package cluster

// Property harness for the partitioned parallel control-site join. One
// randomized corpus of binding-table pairs — spanning shared-variable
// layouts (one shared, reordered multi-shared, all shared, Cartesian,
// >4-column string-fallback keys), key distributions (uniform, heavily
// skewed, near-unique), empty sides and ragged rows — drives every join
// operator against a nested-loop oracle:
//
//   - HashJoin and HashJoinOpts at every partition count are
//     byte-identical to the oracle (exact rows, exact order);
//   - JoinStreamOpts in deterministic mode is byte-identical to the
//     oracle at every partition count, batch size and input interleaving;
//   - JoinStreamOpts in streaming mode (and the legacy JoinStream) emit
//     exactly the oracle's row multiset.
//
// Run under -race in CI, this is the correctness gate for the
// shared-nothing partition workers and both merge modes.

import (
	"context"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// nestedLoopOracle joins two tables the slow, obviously-correct way, in
// exactly the order the ordered operators must reproduce: for each left
// row in arrival order, its matching right rows in arrival order. It
// mirrors the documented semantics: rows missing a shared column have no
// join key and match nothing; missing output columns pad with NoID.
func nestedLoopOracle(left, right *match.Bindings) *match.Bindings {
	g := newJoinGeom(left.Vars, right.Vars)
	shared, rightOnly := g.shared, g.rightOnly
	out := &match.Bindings{Vars: JoinVars(left.Vars, right.Vars)}
	lw := len(left.Vars)
	for _, lr := range left.Rows {
		if !g.lKeyable(lr) {
			continue
		}
		for _, rr := range right.Rows {
			if !g.rKeyable(rr) {
				continue
			}
			eq := true
			for _, c := range shared {
				if lr[c.l] != rr[c.r] {
					eq = false
					break
				}
			}
			if !eq {
				continue
			}
			row := make([]rdf.ID, lw+len(rightOnly))
			n := copy(row[:lw], lr)
			for i := n; i < lw; i++ {
				row[i] = rdf.NoID
			}
			for i, j := range rightOnly {
				if j < len(rr) {
					row[lw+i] = rr[j]
				} else {
					row[lw+i] = rdf.NoID
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// genJoinCase draws one randomized join instance: a variable layout, two
// tables with a chosen key distribution, optionally an empty side and
// optionally ragged rows.
func genJoinCase(rng *rand.Rand) (left, right *match.Bindings) {
	var lv, rv []string
	switch rng.Intn(5) {
	case 0:
		lv, rv = []string{"x", "y"}, []string{"y", "z"}
	case 1:
		lv, rv = []string{"a", "b", "c"}, []string{"c", "a", "d"}
	case 2:
		lv, rv = []string{"x", "y"}, []string{"x", "y"}
	case 3:
		lv, rv = []string{"x", "y"}, []string{"z", "w"} // Cartesian
	case 4:
		// Five shared columns: wider than maxPackedCols, exercising the
		// string-fallback keys and their partition routing.
		lv = []string{"a", "b", "c", "d", "e", "l0"}
		rv = []string{"e", "d", "c", "b", "a", "r0"}
	}
	draw := func(vars []string) *match.Bindings {
		b := &match.Bindings{Vars: vars}
		n := rng.Intn(50)
		if rng.Intn(8) == 0 {
			n = 0 // empty side
		}
		skew := rng.Intn(3)
		ragged := rng.Intn(4) == 0
		for i := 0; i < n; i++ {
			row := make([]rdf.ID, len(vars))
			for j := range row {
				switch skew {
				case 0:
					row[j] = rdf.ID(rng.Intn(6))
				case 1:
					// Heavy skew: ~80% of values collapse onto one key.
					if rng.Intn(5) > 0 {
						row[j] = 1
					} else {
						row[j] = rdf.ID(rng.Intn(8))
					}
				default:
					row[j] = rdf.ID(rng.Intn(512)) // near-unique
				}
			}
			if ragged && rng.Intn(8) == 0 {
				row = row[:rng.Intn(len(row))]
			}
			b.Rows = append(b.Rows, row)
		}
		return b
	}
	return draw(lv), draw(rv)
}

func rowsExactEqual(a, b [][]rdf.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !slices.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// runJoinStream feeds both tables through JoinStreamOpts in randomized
// batch sizes and collects the emitted rows in emission order.
func runJoinStream(t *testing.T, rng *rand.Rand, left, right *match.Bindings, opts JoinOptions) *match.Bindings {
	t.Helper()
	lch := make(chan *match.Bindings, 2)
	rch := make(chan *match.Bindings, 2)
	out := make(chan *match.Bindings, 4)
	go sendBatches(lch, left.Vars, left.Rows, 1+rng.Intn(16))
	go sendBatches(rch, right.Vars, right.Rows, 1+rng.Intn(16))
	go JoinStreamOpts(context.Background(), left.Vars, right.Vars, lch, rch, out, opts)
	got := collect(out)
	if got == nil {
		got = &match.Bindings{Vars: JoinVars(left.Vars, right.Vars)}
	}
	return got
}

// TestPartitionedJoinEquivalenceProperty is the PR's correctness gate:
// partitioned ≡ sequential ≡ HashJoin ≡ nested-loop oracle across the
// generated corpus, exact row order for the ordered operators and
// multiset equality for the streaming ones.
func TestPartitionedJoinEquivalenceProperty(t *testing.T) {
	partitionCounts := []int{1, 2, 3, 8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		left, right := genJoinCase(rng)
		want := nestedLoopOracle(left, right)

		// Batch operators: byte-identical to the oracle at every P.
		if got := HashJoin(left, right); !slices.Equal(got.Vars, want.Vars) || !rowsExactEqual(got.Rows, want.Rows) {
			t.Logf("seed %d: HashJoin diverged from oracle (%d rows vs %d)", seed, len(got.Rows), len(want.Rows))
			return false
		}
		for _, p := range partitionCounts[1:] {
			if got := HashJoinOpts(left, right, JoinOptions{Partitions: p}); !rowsExactEqual(got.Rows, want.Rows) {
				t.Logf("seed %d: HashJoinOpts(P=%d) diverged from oracle", seed, p)
				return false
			}
		}

		// Deterministic stream: byte-identical at every P regardless of
		// batch boundaries and input interleaving.
		for _, p := range partitionCounts {
			got := runJoinStream(t, rng, left, right, JoinOptions{Partitions: p, Deterministic: true})
			if !slices.Equal(got.Vars, want.Vars) || !rowsExactEqual(got.Rows, want.Rows) {
				t.Logf("seed %d: deterministic JoinStreamOpts(P=%d) diverged from oracle", seed, p)
				return false
			}
		}

		// Streaming mode (and the legacy sequential JoinStream): same
		// row multiset, order unconstrained.
		wm := multiset(want)
		for _, p := range partitionCounts {
			got := runJoinStream(t, rng, left, right, JoinOptions{Partitions: p})
			gm := multiset(got)
			if len(gm) != len(wm) {
				t.Logf("seed %d: streaming JoinStreamOpts(P=%d): %d distinct rows, want %d", seed, p, len(gm), len(wm))
				return false
			}
			for k, v := range wm {
				if gm[k] != v {
					t.Logf("seed %d: streaming JoinStreamOpts(P=%d): row %s count %d, want %d", seed, p, k, gm[k], v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPartitionRoutingIsConsistent pins the partition-routing invariant
// the shared-nothing design rests on: rows equal on every shared column
// route to the same partition, from either side, at any partition count.
func TestPartitionRoutingIsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := []colPair{{l: 0, r: 1}, {l: 2, r: 0}}
		lrow := []rdf.ID{rdf.ID(rng.Intn(16)), rdf.ID(rng.Intn(16)), rdf.ID(rng.Intn(16))}
		rrow := []rdf.ID{lrow[2], lrow[0], rdf.ID(rng.Intn(16))}
		for _, p := range []int{2, 3, 8, 64} {
			lp := partitionFor(lrow, cols, true, p)
			rp := partitionFor(rrow, cols, false, p)
			if lp != rp {
				t.Logf("seed %d: matching rows routed to partitions %d and %d of %d", seed, lp, rp, p)
				return false
			}
			if lp < 0 || lp >= p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestJoinStreamPartitionedCancel: cancelling the context mid-stream
// stops every router and partition worker and closes the output — the
// shared kill switch that lets LIMIT terminate a partitioned join early.
func TestJoinStreamPartitionedCancel(t *testing.T) {
	for _, det := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		lv, rv := []string{"x", "y"}, []string{"y", "z"}
		left := make(chan *match.Bindings)
		right := make(chan *match.Bindings)
		out := make(chan *match.Bindings)
		done := make(chan struct{})
		go func() {
			JoinStreamOpts(ctx, lv, rv, left, right, out, JoinOptions{Partitions: 4, Deterministic: det})
			close(done)
		}()
		// Feed one batch so workers are mid-join, then cancel without
		// closing the inputs: only the kill switch can stop the join.
		left <- &match.Bindings{Vars: lv, Rows: [][]rdf.ID{{1, 2}, {3, 4}}}
		cancel()
		for range out {
		}
		<-done
	}
}

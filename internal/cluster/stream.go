package cluster

// Streaming site RPC and the pipelined control-site join. Instead of the
// materialize-then-ship round trip of Eval, EvalStream lets a site push
// binding batches to the control site as the local matcher finds them, and
// JoinStream consumes such batch streams with a symmetric (pipelined) hash
// join: whichever input is ready first builds its hash table incrementally
// while probing the other side's table, so join work overlaps with
// subquery evaluation and shipping. Query latency becomes the longest
// chain through the pipeline rather than the sum of barrier-separated
// phases.

import (
	"context"
	"fmt"
	"sync"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// DefaultBatchSize is the number of binding rows shipped per streamed
// batch when the caller does not choose one. Large enough to amortize the
// per-message network cost, small enough that the first batch arrives
// quickly.
const DefaultBatchSize = 256

// BatchSink receives one shipped batch of bindings. Fragments evaluate in
// parallel, so the sink must be safe for concurrent use. Returning an
// error stops the stream.
type BatchSink func(*match.Bindings) error

// EvalStream evaluates a subquery at a site like Eval, but ships binding
// batches of up to batchSize rows as soon as they are produced instead of
// materializing the full result first. Each batch pays one response
// message of simulated network cost. Batches are deduplicated within
// themselves only; cross-batch duplicates (overlapping fragments) are the
// consumer's concern, exactly as cross-site duplicates already were.
// Fragments evaluate concurrently, bounded by req.Parallelism (and the
// site's worker pool); the remaining budget drives the matcher's morsel
// workers inside each fragment.
func (c *Cluster) EvalStream(ctx context.Context, req EvalRequest, batchSize int, sink BatchSink) error {
	if req.SiteID < 0 || req.SiteID >= len(c.Sites) {
		return fmt.Errorf("cluster: site %d out of range", req.SiteID)
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	s := c.Sites[req.SiteID]
	reqBytes := estimateQueryBytes(req.Query)
	c.Net.Messages.Add(1)
	c.Net.Bytes.Add(int64(reqBytes))
	if err := c.sendRequest(ctx, reqBytes); err != nil {
		return err
	}

	graphs, err := s.resolve(req)
	if err != nil {
		return err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	fanout, perFragment := req.split(len(graphs))
	gate := make(chan struct{}, fanout)
	for _, g := range graphs {
		wg.Add(1)
		go func(g *rdf.Graph) {
			defer wg.Done()
			select {
			case gate <- struct{}{}: // respect the parallelism budget
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
			defer func() { <-gate }()
			select {
			case s.sem <- struct{}{}: // acquire a site worker
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
			defer func() { <-s.sem }()
			match.FindBatches(req.Query, req.View.Snap(g), match.Options{VertexFilter: req.Filter, Parallelism: perFragment, Deterministic: req.Deterministic}, batchSize, func(ms []match.Match) bool {
				if err := ctx.Err(); err != nil {
					fail(err)
					return false
				}
				b := match.ToBindings(req.Query, ms)
				b.Dedup()
				respBytes := len(b.Rows) * len(b.Vars) * 4
				c.Net.Messages.Add(1)
				c.Net.Bytes.Add(int64(respBytes))
				if err := c.receiveResponse(ctx, respBytes); err != nil {
					fail(err)
					return false
				}
				if err := sink(b); err != nil {
					fail(err)
					return false
				}
				return true
			})
		}(g)
	}
	wg.Wait()
	return firstErr
}

// JoinVars returns the output column layout of a join of two binding
// streams: left's variables followed by right's non-shared variables,
// matching HashJoin.
func JoinVars(leftVars, rightVars []string) []string {
	_, rightOnly := alignVars(leftVars, rightVars)
	return append(append([]string(nil), leftVars...), names(rightVars, rightOnly)...)
}

// JoinStream runs a symmetric (pipelined) hash join between two batch
// streams and closes out when done. Both inputs build a hash table
// incrementally: each arriving row is inserted into its side's table and
// probed against the other side's rows seen so far, so every matching
// pair is emitted exactly once, as soon as its later row arrives. With no
// shared variables it degrades to a streamed Cartesian product. Output
// columns follow JoinVars(leftVars, rightVars). Cancelling ctx stops the
// join promptly; the inputs are then left undrained (producers must also
// watch ctx). It is the single-partition streaming case of
// JoinStreamOpts (see partition.go).
func JoinStream(ctx context.Context, leftVars, rightVars []string, left, right <-chan *match.Bindings, out chan<- *match.Bindings) {
	JoinStreamOpts(ctx, leftVars, rightVars, left, right, out, JoinOptions{})
}

package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

func TestFaultKindString(t *testing.T) {
	want := map[FaultKind]string{
		FaultNone:     "none",
		FaultDrop:     "drop",
		FaultError:    "error",
		FaultCut:      "cut",
		FaultDelay:    "delay",
		FaultKind(99): "FaultKind(99)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), got, s)
		}
	}
}

func TestNilChaosInjectsNothing(t *testing.T) {
	var c *Chaos
	if k := c.OnRequest(); k != FaultNone {
		t.Errorf("nil OnRequest = %v", k)
	}
	if k := c.OnBatch(); k != FaultNone {
		t.Errorf("nil OnBatch = %v", k)
	}
	if err := c.StragglerWait(context.Background(), 0); err != nil {
		t.Errorf("nil StragglerWait = %v", err)
	}
	if got := c.Counts(); got != (ChaosCounts{}) {
		t.Errorf("nil Counts = %+v", got)
	}
}

// TestChaosSeedDeterminism is the reproducibility contract: equal seeds
// and equal per-call-site message sequences inject identical fault
// sequences, and the counters reconcile exactly with the verdicts
// handed out.
func TestChaosSeedDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 17, Drop: 0.2, Error: 0.2, Cut: 0.3, DelayProb: 0.2}
	a, b := NewChaos(cfg), NewChaos(cfg)
	var counts ChaosCounts
	for i := 0; i < 500; i++ {
		ka, kb := a.OnRequest(), b.OnRequest()
		if ka != kb {
			t.Fatalf("request %d: %v != %v", i, ka, kb)
		}
		switch ka {
		case FaultDrop:
			counts.Drops++
		case FaultError:
			counts.Errors++
		case FaultDelay:
			counts.Delays++
		}
		ka, kb = a.OnBatch(), b.OnBatch()
		if ka != kb {
			t.Fatalf("batch %d: %v != %v", i, ka, kb)
		}
		switch ka {
		case FaultCut:
			counts.Cuts++
		case FaultDelay:
			counts.Delays++
		}
	}
	if got := a.Counts(); got != counts {
		t.Errorf("Counts() = %+v, observed %+v", got, counts)
	}
	if counts.Drops == 0 || counts.Errors == 0 || counts.Cuts == 0 || counts.Delays == 0 {
		t.Errorf("seeded run injected no faults of some kind: %+v", counts)
	}
	if got, want := counts.Disruptions(), counts.Drops+counts.Errors+counts.Cuts; got != want {
		t.Errorf("Disruptions() = %d, want %d", got, want)
	}
}

func TestStragglerWaitHonorsContext(t *testing.T) {
	c := NewChaos(ChaosConfig{StragglerDelay: Delay{PerMessage: time.Minute}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.StragglerWait(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled StragglerWait = %v, want context.Canceled", err)
	}
	// Zero-cost delay returns immediately (the idealized-network branch).
	free := NewChaos(ChaosConfig{})
	if err := free.StragglerWait(context.Background(), 4096); err != nil {
		t.Errorf("free StragglerWait = %v", err)
	}
}

// chaosCluster builds a one-site cluster holding one two-row fragment.
func chaosCluster(t *testing.T) (*Cluster, *sparql.Graph, *rdf.Graph) {
	t.Helper()
	c := New(1, 2)
	g := rdf.NewGraph(nil)
	g.AddTerms(rdf.NewIRI("a"), rdf.NewIRI("p"), rdf.NewIRI("b"))
	g.AddTerms(rdf.NewIRI("c"), rdf.NewIRI("p"), rdf.NewIRI("d"))
	if err := c.Place(0, 1, g); err != nil {
		t.Fatalf("Place: %v", err)
	}
	return c, sparql.MustParse(g.Dict, `SELECT ?x WHERE { ?x <p> ?y . }`), g
}

// TestChannelRPCFaultInjection drives every fault kind through the
// channel-RPC path — the same seam the HTTP transport consults — and
// reconciles the injected counts.
func TestChannelRPCFaultInjection(t *testing.T) {
	ctx := context.Background()
	req := func(c *Cluster) EvalRequest {
		return EvalRequest{SiteID: 0, FragIDs: []int{1}, Query: sparql.MustParse(c.Sites[0].frags[1].Dict, `SELECT ?x WHERE { ?x <p> ?y . }`)}
	}

	t.Run("drop", func(t *testing.T) {
		c, q, _ := chaosCluster(t)
		c.Faults = NewChaos(ChaosConfig{Drop: 1})
		if _, err := c.Eval(ctx, EvalRequest{SiteID: 0, FragIDs: []int{1}, Query: q}); !errors.Is(err, ErrInjected) {
			t.Fatalf("Eval under Drop=1 = %v, want ErrInjected", err)
		}
		if got := c.Faults.Counts(); got.Drops != 1 || got.Disruptions() != 1 {
			t.Errorf("counts = %+v, want 1 drop", got)
		}
	})

	t.Run("error", func(t *testing.T) {
		c, _, _ := chaosCluster(t)
		c.Faults = NewChaos(ChaosConfig{Error: 1})
		if err := c.EvalStream(ctx, req(c), 1, func(*match.Bindings) error { return nil }); !errors.Is(err, ErrInjected) {
			t.Fatalf("EvalStream under Error=1 = %v, want ErrInjected", err)
		}
		if got := c.Faults.Counts(); got.Errors != 1 {
			t.Errorf("counts = %+v, want 1 error", got)
		}
	})

	t.Run("cut", func(t *testing.T) {
		c, _, _ := chaosCluster(t)
		c.Faults = NewChaos(ChaosConfig{Cut: 1})
		delivered := 0
		err := c.EvalStream(ctx, req(c), 1, func(b *match.Bindings) error { delivered += len(b.Rows); return nil })
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("EvalStream under Cut=1 = %v, want ErrInjected", err)
		}
		if delivered != 0 {
			t.Errorf("cut batch still delivered %d rows", delivered)
		}
		if got := c.Faults.Counts(); got.Cuts == 0 {
			t.Errorf("counts = %+v, want cuts > 0", got)
		}
	})

	t.Run("delay", func(t *testing.T) {
		c, q, _ := chaosCluster(t)
		c.Latency = Delay{PerMessage: time.Microsecond}
		c.Faults = NewChaos(ChaosConfig{DelayProb: 1, StragglerDelay: Delay{PerMessage: time.Millisecond}})
		b, err := c.Eval(ctx, EvalRequest{SiteID: 0, FragIDs: []int{1}, Query: q})
		if err != nil {
			t.Fatalf("Eval under DelayProb=1: %v", err)
		}
		if len(b.Rows) != 2 {
			t.Fatalf("rows = %d, want 2 (delays slow but do not fail)", len(b.Rows))
		}
		if got := c.Faults.Counts(); got.Delays < 2 || got.Disruptions() != 0 {
			t.Errorf("counts = %+v, want ≥2 delays and no disruptions", got)
		}
	})

	t.Run("sink error stops stream", func(t *testing.T) {
		c, _, _ := chaosCluster(t)
		sinkErr := errors.New("consumer rejected batch")
		if err := c.EvalStream(ctx, req(c), 1, func(*match.Bindings) error { return sinkErr }); !errors.Is(err, sinkErr) {
			t.Fatalf("EvalStream sink error = %v, want %v", err, sinkErr)
		}
	})

	t.Run("stream errors", func(t *testing.T) {
		c, _, _ := chaosCluster(t)
		q := sparql.MustParse(rdf.NewDict(), `SELECT ?x WHERE { ?x <p> ?y . }`)
		sink := func(*match.Bindings) error { return nil }
		if err := c.EvalStream(ctx, EvalRequest{SiteID: 5, Query: q}, 1, sink); err == nil {
			t.Error("out-of-range site accepted")
		}
		if err := c.EvalStream(ctx, EvalRequest{SiteID: 0, FragIDs: []int{9}, Query: q}, 1, sink); err == nil {
			t.Error("missing fragment accepted")
		}
	})
}

func TestNetStatsReset(t *testing.T) {
	c, q, _ := chaosCluster(t)
	if _, err := c.Eval(context.Background(), EvalRequest{SiteID: 0, FragIDs: []int{1}, Query: q}); err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if msgs, _ := c.Net.Snapshot(); msgs == 0 {
		t.Fatal("Eval recorded no traffic")
	}
	c.Net.Reset()
	if msgs, bytes := c.Net.Snapshot(); msgs != 0 || bytes != 0 {
		t.Errorf("after Reset: messages=%d bytes=%d, want 0/0", msgs, bytes)
	}
}

func TestViewsAndFragmentIDs(t *testing.T) {
	c, _, _ := chaosCluster(t)
	if c.Views() == nil {
		t.Error("Views() = nil")
	}
	ids := c.FragmentIDs(0)
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("FragmentIDs(0) = %v, want [1]", ids)
	}
}

// TestFragEpoch checks the resume fingerprint: it must move when the
// fragment data moves (so a resuming client restarts instead of stitching
// incomparable batch prefixes) and hold still otherwise.
func TestFragEpoch(t *testing.T) {
	c, _, g := chaosCluster(t)
	e1, err := c.FragEpoch(0, []int{1})
	if err != nil {
		t.Fatalf("FragEpoch: %v", err)
	}
	e2, err := c.FragEpoch(0, []int{1})
	if err != nil || e2 != e1 {
		t.Fatalf("stable FragEpoch moved: %d -> %d (err %v)", e1, e2, err)
	}
	g.AddTerms(rdf.NewIRI("e"), rdf.NewIRI("p"), rdf.NewIRI("f"))
	e3, err := c.FragEpoch(0, []int{1})
	if err != nil {
		t.Fatalf("FragEpoch after add: %v", err)
	}
	if e3 == e1 {
		t.Errorf("FragEpoch unchanged after mutation (%d)", e3)
	}
	if _, err := c.FragEpoch(7, nil); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, err := c.FragEpoch(0, []int{42}); err == nil {
		t.Error("missing fragment accepted")
	}
}

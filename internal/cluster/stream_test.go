package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// sendBatches splits rows into batches of n and streams them.
func sendBatches(ch chan *match.Bindings, vars []string, rows [][]rdf.ID, n int) {
	defer close(ch)
	for i := 0; i < len(rows); i += n {
		j := i + n
		if j > len(rows) {
			j = len(rows)
		}
		ch <- &match.Bindings{Vars: vars, Rows: rows[i:j]}
	}
}

func collect(ch <-chan *match.Bindings) *match.Bindings {
	var out *match.Bindings
	for b := range ch {
		if out == nil {
			out = &match.Bindings{Vars: b.Vars}
		}
		out.Rows = append(out.Rows, b.Rows...)
	}
	return out
}

func multiset(b *match.Bindings) map[string]int {
	m := map[string]int{}
	if b == nil {
		return m
	}
	for _, r := range b.Rows {
		m[fmt.Sprint(r)]++
	}
	return m
}

// TestJoinStreamMatchesHashJoin cross-checks the pipelined join against
// the blocking HashJoin on randomized inputs, across shared-variable
// layouts including the Cartesian case.
func TestJoinStreamMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		lv, rv []string
	}{
		{[]string{"x", "y"}, []string{"y", "z"}},           // one shared
		{[]string{"x", "y"}, []string{"x", "y"}},           // all shared
		{[]string{"x"}, []string{"z"}},                     // Cartesian
		{[]string{"a", "b", "c"}, []string{"c", "a", "d"}}, // two shared, reordered
	}
	for _, tc := range cases {
		for trial := 0; trial < 5; trial++ {
			nl, nr := rng.Intn(40), rng.Intn(40)
			lrows := randomRows(rng, nl, len(tc.lv))
			rrows := randomRows(rng, nr, len(tc.rv))

			want := HashJoin(
				&match.Bindings{Vars: tc.lv, Rows: lrows},
				&match.Bindings{Vars: tc.rv, Rows: rrows},
			)

			left := make(chan *match.Bindings, 2)
			right := make(chan *match.Bindings, 2)
			out := make(chan *match.Bindings, 2)
			go sendBatches(left, tc.lv, lrows, 3)
			go sendBatches(right, tc.rv, rrows, 5)
			go JoinStream(context.Background(), tc.lv, tc.rv, left, right, out)
			got := collect(out)

			wm, gm := multiset(want), multiset(got)
			if len(wm) != len(gm) {
				t.Fatalf("vars %v⋈%v trial %d: %d distinct rows, want %d", tc.lv, tc.rv, trial, len(gm), len(wm))
			}
			for k, v := range wm {
				if gm[k] != v {
					t.Fatalf("vars %v⋈%v trial %d: row %s count %d, want %d", tc.lv, tc.rv, trial, k, gm[k], v)
				}
			}
			if got != nil {
				wantVars := JoinVars(tc.lv, tc.rv)
				for i, v := range wantVars {
					if got.Vars[i] != v {
						t.Fatalf("output vars %v, want %v", got.Vars, wantVars)
					}
				}
			}
		}
	}
}

func randomRows(rng *rand.Rand, n, width int) [][]rdf.ID {
	rows := make([][]rdf.ID, n)
	for i := range rows {
		r := make([]rdf.ID, width)
		for j := range r {
			r[j] = rdf.ID(rng.Intn(6)) // small domain → plenty of join hits
		}
		rows[i] = r
	}
	return rows
}

// TestJoinStreamCancel verifies a cancelled context stops the join and
// closes its output.
func TestJoinStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	left := make(chan *match.Bindings)
	right := make(chan *match.Bindings)
	out := make(chan *match.Bindings)
	done := make(chan struct{})
	go func() {
		JoinStream(ctx, []string{"x"}, []string{"x"}, left, right, out)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("JoinStream did not exit after cancel")
	}
	if _, ok := <-out; ok {
		t.Fatal("out not closed after cancel")
	}
}

// TestEvalStreamMatchesEval verifies the streamed batches union to
// exactly the Eval result.
func TestEvalStreamMatchesEval(t *testing.T) {
	c := New(2, 2)
	g := rdf.NewGraph(nil)
	for i := 0; i < 50; i++ {
		g.AddTerms(rdf.NewIRI(fmt.Sprintf("s%d", i)), rdf.NewIRI("p"), rdf.NewIRI(fmt.Sprintf("o%d", i%7)))
	}
	if err := c.Place(0, 1, g); err != nil {
		t.Fatalf("Place: %v", err)
	}
	q := sparql.MustParse(g.Dict, `SELECT ?x ?y WHERE { ?x <p> ?y . }`)
	req := EvalRequest{SiteID: 0, FragIDs: []int{1}, Query: q}

	want, err := c.Eval(context.Background(), req)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}

	var mu sync.Mutex
	got := &match.Bindings{}
	batches := 0
	err = c.EvalStream(context.Background(), req, 8, func(b *match.Bindings) error {
		mu.Lock()
		defer mu.Unlock()
		got.Vars = b.Vars
		got.Rows = append(got.Rows, b.Rows...)
		batches++
		return nil
	})
	if err != nil {
		t.Fatalf("EvalStream: %v", err)
	}
	if batches < 2 {
		t.Errorf("50 rows at batch size 8 arrived in %d batches; want several", batches)
	}
	got.Dedup()
	wm, gm := multiset(want), multiset(got)
	if len(wm) != len(gm) {
		t.Fatalf("EvalStream rows %d distinct, Eval %d", len(gm), len(wm))
	}
	for k := range wm {
		if gm[k] != wm[k] {
			t.Fatalf("row %s: stream count %d, eval count %d", k, gm[k], wm[k])
		}
	}
}

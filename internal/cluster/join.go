package cluster

import (
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// HashJoin joins two binding tables on their shared variables, the
// control-site join of Section 7.3. With no shared variables it degrades
// to a Cartesian product. Output columns are left's variables followed by
// right's non-shared variables.
func HashJoin(left, right *match.Bindings) *match.Bindings {
	shared, rightOnly := alignVars(left.Vars, right.Vars)

	out := &match.Bindings{Vars: append(append([]string(nil), left.Vars...), names(right.Vars, rightOnly)...)}
	if len(left.Rows) == 0 || len(right.Rows) == 0 {
		return out
	}

	if len(shared) == 0 {
		for _, lr := range left.Rows {
			for _, rr := range right.Rows {
				out.Rows = append(out.Rows, mergeRows(lr, rr, rightOnly))
			}
		}
		return out
	}

	// Hash the right side on the shared columns, probe with the left.
	table := make(map[string][]int, len(right.Rows))
	for i, rr := range right.Rows {
		k := joinKey(rr, shared, false)
		table[k] = append(table[k], i)
	}
	for _, lr := range left.Rows {
		for _, ri := range table[joinKey(lr, shared, true)] {
			out.Rows = append(out.Rows, mergeRows(lr, right.Rows[ri], rightOnly))
		}
	}
	return out
}

// colPair pairs the positions of one shared variable in both tables.
type colPair struct{ l, r int }

// alignVars returns (shared pairs of column indices, right-only columns).
func alignVars(lv, rv []string) (shared []colPair, rightOnly []int) {
	pos := make(map[string]int, len(lv))
	for i, v := range lv {
		pos[v] = i
	}
	for j, v := range rv {
		if i, ok := pos[v]; ok {
			shared = append(shared, colPair{i, j})
		} else {
			rightOnly = append(rightOnly, j)
		}
	}
	return
}

func names(vars []string, idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = vars[j]
	}
	return out
}

func joinKey(row []rdf.ID, keys []colPair, left bool) string {
	b := make([]byte, 0, len(keys)*4)
	for _, k := range keys {
		var v rdf.ID
		if left {
			v = row[k.l]
		} else {
			v = row[k.r]
		}
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func mergeRows(lr, rr []rdf.ID, rightOnly []int) []rdf.ID {
	out := make([]rdf.ID, 0, len(lr)+len(rightOnly))
	out = append(out, lr...)
	for _, j := range rightOnly {
		out = append(out, rr[j])
	}
	return out
}

// Union merges binding tables with identical variable sets, deduplicating
// rows; used when a subquery is evaluated on several fragments or sites.
func Union(bs ...*match.Bindings) *match.Bindings {
	var out *match.Bindings
	for _, b := range bs {
		if b == nil {
			continue
		}
		if out == nil {
			out = &match.Bindings{Vars: b.Vars}
		}
		out.Rows = append(out.Rows, b.Rows...)
	}
	if out == nil {
		return &match.Bindings{}
	}
	out.Dedup()
	return out
}

// Project keeps only the named columns, deduplicating rows. Variables not
// present in the table are ignored.
func Project(b *match.Bindings, vars []string) *match.Bindings {
	if len(vars) == 0 {
		return b
	}
	var idx []int
	var kept []string
	pos := make(map[string]int, len(b.Vars))
	for i, v := range b.Vars {
		pos[v] = i
	}
	for _, v := range vars {
		if i, ok := pos[v]; ok {
			idx = append(idx, i)
			kept = append(kept, v)
		}
	}
	out := &match.Bindings{Vars: kept}
	for _, r := range b.Rows {
		row := make([]rdf.ID, len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		out.Rows = append(out.Rows, row)
	}
	out.Dedup()
	return out
}

package cluster

import (
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// HashJoin joins two binding tables on their shared variables, the
// control-site join of Section 7.3. With no shared variables it degrades
// to a Cartesian product. Output columns are left's variables followed by
// right's non-shared variables. It is the single-partition case of
// HashJoinOpts (see partition.go), sharing the same ordered join core.
func HashJoin(left, right *match.Bindings) *match.Bindings {
	return HashJoinOpts(left, right, JoinOptions{})
}

// colPair pairs the positions of one shared variable in both tables.
type colPair struct{ l, r int }

// alignVars returns (shared pairs of column indices, right-only columns).
func alignVars(lv, rv []string) (shared []colPair, rightOnly []int) {
	pos := make(map[string]int, len(lv))
	for i, v := range lv {
		pos[v] = i
	}
	for j, v := range rv {
		if i, ok := pos[v]; ok {
			shared = append(shared, colPair{i, j})
		} else {
			rightOnly = append(rightOnly, j)
		}
	}
	return
}

func names(vars []string, idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = vars[j]
	}
	return out
}

// maxPackedCols is how many shared join columns fit the fixed-size packed
// key. SPARQL joins share one or two variables in practice; wider joins
// fall back to string keys.
const maxPackedCols = 4

// packedKey is a comparable join key: the shared column values, unused
// slots zero. All keys of one join have the same column count, so uniform
// padding cannot introduce false matches.
type packedKey [maxPackedCols]rdf.ID

// joinTable indexes row numbers by their shared-column join key. Keys are
// packed value arrays — no per-row string materialization — unless the
// join is wider than maxPackedCols columns.
type joinTable struct {
	cols   []colPair
	packed map[packedKey][]int32
	str    map[string][]int32
}

func newJoinTable(cols []colPair, sizeHint int) *joinTable {
	t := &joinTable{cols: cols}
	if len(cols) <= maxPackedCols {
		t.packed = make(map[packedKey][]int32, sizeHint)
	} else {
		t.str = make(map[string][]int32, sizeHint)
	}
	return t
}

// packKey builds the packed key of row; left selects which side of the
// column pairs row belongs to. It never allocates.
func packKey(row []rdf.ID, cols []colPair, left bool) packedKey {
	var k packedKey
	for i, c := range cols {
		if left {
			k[i] = row[c.l]
		} else {
			k[i] = row[c.r]
		}
	}
	return k
}

// stringKey is the fallback key for joins wider than maxPackedCols.
func stringKey(row []rdf.ID, cols []colPair, left bool) string {
	b := make([]byte, 0, len(cols)*4)
	for _, c := range cols {
		var v rdf.ID
		if left {
			v = row[c.l]
		} else {
			v = row[c.r]
		}
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// add records row idx under its join key; left names row's side.
func (t *joinTable) add(row []rdf.ID, left bool, idx int32) {
	if t.packed != nil {
		k := packKey(row, t.cols, left)
		t.packed[k] = append(t.packed[k], idx)
	} else {
		k := stringKey(row, t.cols, left)
		t.str[k] = append(t.str[k], idx)
	}
}

// lookup returns the row indexes whose key matches row (from the side
// named by left).
func (t *joinTable) lookup(row []rdf.ID, left bool) []int32 {
	if t.packed != nil {
		return t.packed[packKey(row, t.cols, left)]
	}
	return t.str[stringKey(row, t.cols, left)]
}

// rowArena carves fixed-width binding rows out of chunked backing arrays,
// cutting the join's one-allocation-per-output-row cost to one allocation
// per chunk. Carved rows are capped (three-index slices), so a consumer
// appending to one cannot stomp its neighbour. Rows are handed off to
// consumers and the arena only ever starts fresh chunks — it is never
// reset — so handed-off rows stay valid for as long as the consumer keeps
// them.
type rowArena struct {
	buf []rdf.ID
}

// rowArenaChunk is the chunk size in IDs (16 KiB chunks).
const rowArenaChunk = 4096

// presizedArena returns an arena whose first chunk holds exactly rows
// fixed-width rows, so a join with a known output size allocates row
// storage once.
func presizedArena(rows, width int) *rowArena {
	return &rowArena{buf: make([]rdf.ID, 0, rows*width)}
}

func (a *rowArena) alloc(n int) []rdf.ID {
	if n == 0 {
		return nil
	}
	if len(a.buf)+n > cap(a.buf) {
		size := rowArenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]rdf.ID, 0, size)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	return a.buf[off : off+n : off+n]
}

// mergeRows concatenates a left row with the right-only columns of a
// right row, carving the output from the arena. Every output row is
// exactly j.width wide: well-formed rows take the branch-light fast
// path (small enough to inline into the per-output-row emit loops),
// ragged rows (shorter or longer than their table's width) divert to
// mergeRowsRagged, which pads missing columns with NoID instead of
// corrupting or panicking.
func mergeRows(a *rowArena, j *joinGeom, lr, rr []rdf.ID) []rdf.ID {
	if len(lr) < j.lw || len(rr) <= j.maxRO {
		return mergeRowsRagged(a, j, lr, rr)
	}
	out := a.alloc(j.width)
	copy(out, lr[:j.lw])
	for i, idx := range j.rightOnly {
		out[j.lw+i] = rr[idx]
	}
	return out
}

func mergeRowsRagged(a *rowArena, j *joinGeom, lr, rr []rdf.ID) []rdf.ID {
	out := a.alloc(j.width)
	n := copy(out[:j.lw], lr)
	for i := n; i < j.lw; i++ {
		out[i] = rdf.NoID
	}
	for i, idx := range j.rightOnly {
		if idx < len(rr) {
			out[j.lw+i] = rr[idx]
		} else {
			out[j.lw+i] = rdf.NoID
		}
	}
	return out
}

// Union merges binding tables with identical variable sets, deduplicating
// rows; used when a subquery is evaluated on several fragments or sites.
func Union(bs ...*match.Bindings) *match.Bindings {
	var out *match.Bindings
	for _, b := range bs {
		if b == nil {
			continue
		}
		if out == nil {
			out = &match.Bindings{Vars: b.Vars}
		}
		out.Rows = append(out.Rows, b.Rows...)
	}
	if out == nil {
		return &match.Bindings{}
	}
	out.Dedup()
	return out
}

// Project keeps only the named columns, deduplicating rows. Variables not
// present in the table are ignored.
func Project(b *match.Bindings, vars []string) *match.Bindings {
	if len(vars) == 0 {
		return b
	}
	var idx []int
	var kept []string
	pos := make(map[string]int, len(b.Vars))
	for i, v := range b.Vars {
		pos[v] = i
	}
	for _, v := range vars {
		if i, ok := pos[v]; ok {
			idx = append(idx, i)
			kept = append(kept, v)
		}
	}
	out := &match.Bindings{Vars: kept}
	var arena rowArena
	for _, r := range b.Rows {
		row := arena.alloc(len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		out.Rows = append(out.Rows, row)
	}
	out.Dedup()
	return out
}

package cluster

import (
	"context"
	"sync"
	"testing"

	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

func TestPlaceAndEval(t *testing.T) {
	c := New(2, 2)
	g := rdf.NewGraph(nil)
	g.AddTerms(rdf.NewIRI("a"), rdf.NewIRI("p"), rdf.NewIRI("b"))
	g.AddTerms(rdf.NewIRI("c"), rdf.NewIRI("p"), rdf.NewIRI("d"))
	if err := c.Place(1, 7, g); err != nil {
		t.Fatalf("Place: %v", err)
	}
	q := sparql.MustParse(g.Dict, `SELECT ?x WHERE { ?x <p> ?y . }`)
	b, err := c.Eval(context.Background(), EvalRequest{SiteID: 1, FragIDs: []int{7}, Query: q})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(b.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(b.Rows))
	}
	msgs, bytes := c.Net.Snapshot()
	if msgs != 2 {
		t.Errorf("messages = %d, want 2 (request+response)", msgs)
	}
	if bytes <= 0 {
		t.Errorf("bytes = %d", bytes)
	}
}

func TestEvalErrors(t *testing.T) {
	c := New(1, 1)
	d := rdf.NewDict()
	q := sparql.MustParse(d, `SELECT ?x WHERE { ?x <p> ?y . }`)
	if _, err := c.Eval(context.Background(), EvalRequest{SiteID: 5, Query: q}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, err := c.Eval(context.Background(), EvalRequest{SiteID: 0, FragIDs: []int{1}, Query: q}); err == nil {
		t.Error("missing fragment accepted")
	}
	if err := c.Place(9, 0, rdf.NewGraph(d)); err == nil {
		t.Error("Place out of range accepted")
	}
}

func TestEvalDedupAcrossFragments(t *testing.T) {
	c := New(1, 1)
	d := rdf.NewDict()
	g1 := rdf.NewGraph(d)
	g1.AddTerms(rdf.NewIRI("a"), rdf.NewIRI("p"), rdf.NewIRI("b"))
	g2 := rdf.NewGraph(d)
	g2.AddTerms(rdf.NewIRI("a"), rdf.NewIRI("p"), rdf.NewIRI("b")) // overlap
	g2.AddTerms(rdf.NewIRI("x"), rdf.NewIRI("p"), rdf.NewIRI("y"))
	c.Place(0, 1, g1)
	c.Place(0, 2, g2)
	q := sparql.MustParse(d, `SELECT * WHERE { ?s <p> ?o . }`)
	b, err := c.Eval(context.Background(), EvalRequest{SiteID: 0, FragIDs: []int{1, 2}, Query: q})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(b.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 after dedup", len(b.Rows))
	}
}

func TestEvalConcurrentSafety(t *testing.T) {
	c := New(4, 2)
	d := rdf.NewDict()
	g := rdf.NewGraph(d)
	for i := 0; i < 50; i++ {
		g.AddTerms(rdf.NewIRI(string(rune('a'+i%26))), rdf.NewIRI("p"), rdf.NewIRI("o"))
	}
	for s := 0; s < 4; s++ {
		c.Place(s, s, g)
	}
	q := sparql.MustParse(d, `SELECT ?x WHERE { ?x <p> ?o . }`)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Eval(context.Background(), EvalRequest{SiteID: i % 4, FragIDs: []int{i % 4}, Query: q}); err != nil {
				t.Errorf("Eval: %v", err)
			}
		}(i)
	}
	wg.Wait()
}

func mkBindings(vars []string, rows ...[]rdf.ID) *match.Bindings {
	return &match.Bindings{Vars: vars, Rows: rows}
}

func TestHashJoinShared(t *testing.T) {
	l := mkBindings([]string{"x", "y"}, []rdf.ID{1, 2}, []rdf.ID{3, 4})
	r := mkBindings([]string{"y", "z"}, []rdf.ID{2, 9}, []rdf.ID{2, 8}, []rdf.ID{5, 7})
	j := HashJoin(l, r)
	if len(j.Vars) != 3 || j.Vars[2] != "z" {
		t.Fatalf("vars = %v", j.Vars)
	}
	if len(j.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(j.Rows))
	}
	for _, row := range j.Rows {
		if row[0] != 1 || row[1] != 2 {
			t.Errorf("unexpected row %v", row)
		}
	}
}

func TestHashJoinCartesian(t *testing.T) {
	l := mkBindings([]string{"a"}, []rdf.ID{1}, []rdf.ID{2})
	r := mkBindings([]string{"b"}, []rdf.ID{3}, []rdf.ID{4})
	j := HashJoin(l, r)
	if len(j.Rows) != 4 {
		t.Fatalf("cartesian rows = %d, want 4", len(j.Rows))
	}
}

func TestHashJoinEmpty(t *testing.T) {
	l := mkBindings([]string{"a"})
	r := mkBindings([]string{"a"}, []rdf.ID{1})
	if j := HashJoin(l, r); len(j.Rows) != 0 {
		t.Errorf("join with empty side produced %d rows", len(j.Rows))
	}
}

func TestUnionDedups(t *testing.T) {
	a := mkBindings([]string{"x"}, []rdf.ID{1}, []rdf.ID{2})
	b := mkBindings([]string{"x"}, []rdf.ID{2}, []rdf.ID{3})
	u := Union(a, b, nil)
	if len(u.Rows) != 3 {
		t.Fatalf("union rows = %d, want 3", len(u.Rows))
	}
}

func TestProject(t *testing.T) {
	b := mkBindings([]string{"x", "y"}, []rdf.ID{1, 9}, []rdf.ID{1, 8}, []rdf.ID{2, 7})
	p := Project(b, []string{"x"})
	if len(p.Vars) != 1 || p.Vars[0] != "x" {
		t.Fatalf("vars = %v", p.Vars)
	}
	if len(p.Rows) != 2 {
		t.Fatalf("projected rows = %d, want 2 (dedup)", len(p.Rows))
	}
	// Projecting onto an unknown var keeps known ones only.
	p2 := Project(b, []string{"z", "y"})
	if len(p2.Vars) != 1 || p2.Vars[0] != "y" {
		t.Errorf("vars = %v", p2.Vars)
	}
}

package cluster

import (
	"testing"

	"rdffrag/internal/rdf"
)

// TestPartitionRouteProbeZeroAllocs: the per-probed-row hot path of a
// partition worker — keyability check, packed-key build, partition
// routing, table lookup — is allocation-free, extending the PR 2/PR 3
// allocation discipline to the partitioned join.
func TestPartitionRouteProbeZeroAllocs(t *testing.T) {
	cols := []colPair{{l: 1, r: 0}, {l: 3, r: 2}}
	tab := newJoinTable(cols, 64)
	for i := 0; i < 64; i++ {
		tab.add([]rdf.ID{rdf.ID(i), 2, rdf.ID(i), 4}, false, int32(i))
	}
	g := &joinGeom{shared: cols, lNeed: 4, rNeed: 3}
	probe := []rdf.ID{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(1000, func() {
		if !g.lKeyable(probe) {
			t.Fatal("probe row not keyable")
		}
		if p := partitionFor(probe, cols, true, 8); p < 0 || p >= 8 {
			t.Fatalf("partition out of range: %d", p)
		}
		_ = tab.lookup(probe, true)
	})
	if allocs != 0 {
		t.Errorf("route+probe allocates %.1f per row, want 0", allocs)
	}
}

// TestPartitionedJoinSteadyStateAllocs guards the amortized whole-join
// cost: with the counting pass presizing the output and rows carved from
// chunked arenas, a partitioned batch join stays far below one allocation
// per probed row — the budget is per-partition setup (tables, arenas,
// presized slices), not per-row work.
func TestPartitionedJoinSteadyStateAllocs(t *testing.T) {
	l := benchTable(4000, []string{"x", "y"})
	r := benchTable(4000, []string{"y", "z"})
	// Warm-up run so lazily initialized runtime state is excluded.
	HashJoinOpts(l, r, JoinOptions{Partitions: 4})
	allocs := testing.AllocsPerRun(5, func() {
		out := HashJoinOpts(l, r, JoinOptions{Partitions: 4})
		if len(out.Rows) == 0 {
			t.Fatal("partitioned join produced nothing")
		}
	})
	perRow := allocs / float64(len(l.Rows))
	if perRow > 0.25 {
		t.Errorf("partitioned join allocates %.2f per probed row (%.0f total), want < 0.25", perRow, allocs)
	}
}

package cluster

// Deterministic fault injection at the simulated-network seam. Chaos is
// the single configuration point for both network shaping (Delay) and
// failures (drops, injected errors, mid-stream cuts, straggler delays):
// the channel-RPC path consults the Cluster's Chaos in
// sendRequest/receiveResponse, and the HTTP transport
// (internal/transport) consults the same type around its request and
// batch writes — one seam, one timer implementation (Delay.wait), so
// benchmarks and fault-injection tests configure the simulated network
// in one place and cannot drift apart.
//
// Faults are drawn from a seeded PRNG, so a soak run with a fixed seed
// injects a reproducible fault sequence (per call site; interleaving
// across concurrent requests follows the scheduler). Every injected
// fault is counted, letting harnesses reconcile client-side
// retry/failure counters against the number of faults actually
// injected.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrInjected marks an error produced by fault injection rather than a
// real failure. Transports treat it like any transport error (it is
// retryable); tests unwrap it to tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// FaultKind classifies one injected fault.
type FaultKind int

const (
	// FaultNone means the message passes unharmed.
	FaultNone FaultKind = iota
	// FaultDrop loses a request before evaluation starts (the site
	// never sees it; the caller gets an error in place of a response).
	FaultDrop
	// FaultError fails a request after evaluation may have started
	// (an explicit error response).
	FaultError
	// FaultCut tears a response stream mid-way: some batches are
	// delivered, then the connection dies without a terminal frame.
	FaultCut
	// FaultDelay stalls a message by the configured straggler delay
	// without failing it.
	FaultDelay
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultError:
		return "error"
	case FaultCut:
		return "cut"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// ChaosConfig tunes deterministic fault injection. The zero value
// injects nothing. Probabilities are in [0,1] and are evaluated
// independently per message: Drop and Error on each request, Cut and
// Delay on each streamed batch (Delay also on requests).
type ChaosConfig struct {
	// Seed seeds the fault PRNG; runs with equal seeds and equal
	// per-call-site message sequences inject identical fault sequences.
	Seed int64
	// Drop is the probability a request is lost before evaluation.
	Drop float64
	// Error is the probability a request fails with an explicit error.
	Error float64
	// Cut is the probability, per streamed batch, that the stream is
	// torn after that batch (delivered batches stand; no terminal
	// frame follows).
	Cut float64
	// DelayProb is the probability, per message, of an extra straggler
	// delay of StragglerDelay.
	DelayProb float64
	// StragglerDelay is the extra shaping paid when DelayProb fires,
	// expressed with the same Delay type the cluster's baseline
	// latency uses (one timer implementation for both).
	StragglerDelay Delay
}

// ChaosCounts is a snapshot of the faults injected so far, by kind.
type ChaosCounts struct {
	Drops, Errors, Cuts, Delays uint64
}

// Disruptions is the number of injected faults that failed a call
// (drops, errors and cuts; straggler delays slow but do not fail).
func (c ChaosCounts) Disruptions() uint64 { return c.Drops + c.Errors + c.Cuts }

// Chaos injects seeded faults. Safe for concurrent use; the PRNG is
// mutex-protected so concurrent rolls serialize (determinism of the
// fault sequence then depends only on message arrival order).
type Chaos struct {
	cfg ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	drops  atomic.Uint64
	errs   atomic.Uint64
	cuts   atomic.Uint64
	delays atomic.Uint64
}

// NewChaos builds an injector from cfg. A nil *Chaos is valid and
// injects nothing, so callers hold an optional Chaos without nil checks.
func NewChaos(cfg ChaosConfig) *Chaos {
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (c *Chaos) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	ok := c.rng.Float64() < p
	c.mu.Unlock()
	return ok
}

// OnRequest rolls the fault for one incoming request: FaultDrop,
// FaultError, FaultDelay or FaultNone. The caller applies the verdict
// (and, for FaultDelay, waits StragglerWait before proceeding).
func (c *Chaos) OnRequest() FaultKind {
	if c == nil {
		return FaultNone
	}
	switch {
	case c.roll(c.cfg.Drop):
		c.drops.Add(1)
		return FaultDrop
	case c.roll(c.cfg.Error):
		c.errs.Add(1)
		return FaultError
	case c.roll(c.cfg.DelayProb):
		c.delays.Add(1)
		return FaultDelay
	}
	return FaultNone
}

// OnBatch rolls the fault for one streamed response batch: FaultCut,
// FaultDelay or FaultNone.
func (c *Chaos) OnBatch() FaultKind {
	if c == nil {
		return FaultNone
	}
	switch {
	case c.roll(c.cfg.Cut):
		c.cuts.Add(1)
		return FaultCut
	case c.roll(c.cfg.DelayProb):
		c.delays.Add(1)
		return FaultDelay
	}
	return FaultNone
}

// StragglerWait pays the straggler delay for a FaultDelay verdict,
// honouring ctx. It reuses the cluster's Delay timer implementation —
// the shared seam that keeps benchmark shaping and fault-test stalls on
// one code path.
func (c *Chaos) StragglerWait(ctx context.Context, bytes int) error {
	if c == nil {
		return nil
	}
	return c.cfg.StragglerDelay.wait(ctx, bytes)
}

// Counts snapshots the injected-fault counters.
func (c *Chaos) Counts() ChaosCounts {
	if c == nil {
		return ChaosCounts{}
	}
	return ChaosCounts{
		Drops:  c.drops.Load(),
		Errors: c.errs.Load(),
		Cuts:   c.cuts.Load(),
		Delays: c.delays.Load(),
	}
}

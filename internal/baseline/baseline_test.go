package baseline_test

import (
	"testing"

	"rdffrag/internal/baseline"
	"rdffrag/internal/cluster"
	"rdffrag/internal/match"
	"rdffrag/internal/mining"
	"rdffrag/internal/sparql"
	"rdffrag/internal/testenv"
)

func TestSHAPECoversGraph(t *testing.T) {
	g := testenv.Graph(30)
	p := baseline.BuildSHAPE(g, 4)
	if len(p.SiteGraphs) != 4 {
		t.Fatalf("sites = %d", len(p.SiteGraphs))
	}
	// Every triple must be stored somewhere (actually at 1-2 sites).
	for _, tr := range g.Triples() {
		found := 0
		for _, sg := range p.SiteGraphs {
			if sg.Has(tr) {
				found++
			}
		}
		if found < 1 || found > 2 {
			t.Fatalf("triple stored at %d sites", found)
		}
	}
	r := p.Redundancy(g)
	if r < 1.0 || r > 2.0 {
		t.Errorf("SHAPE redundancy = %f, want in (1,2]", r)
	}
}

func TestWARPCoversGraph(t *testing.T) {
	g := testenv.Graph(30)
	w := testenv.Workload(g.Dict)
	pats := (&mining.Miner{MinSup: 3}).Mine(w)
	p := baseline.BuildWARP(g, pats, 4)
	for _, tr := range g.Triples() {
		found := false
		for _, sg := range p.SiteGraphs {
			if sg.Has(tr) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("triple %s lost by WARP", g.TripleString(tr))
		}
	}
	r := p.Redundancy(g)
	if r < 1.0 {
		t.Errorf("WARP redundancy = %f < 1", r)
	}
}

func TestWARPLessRedundantThanSHAPE(t *testing.T) {
	// On a sparse graph WARP's min-cut keeps redundancy near 1 while
	// SHAPE duplicates every subject-object edge (Table 1's shape).
	g := testenv.Graph(60)
	w := testenv.Workload(g.Dict)
	pats := (&mining.Miner{MinSup: 5}).Mine(w)
	shape := baseline.BuildSHAPE(g, 4)
	warp := baseline.BuildWARP(g, pats, 4)
	if warp.Redundancy(g) >= shape.Redundancy(g) {
		t.Errorf("WARP redundancy %f >= SHAPE %f", warp.Redundancy(g), shape.Redundancy(g))
	}
}

func centralized(q *sparql.Graph, env *testenv.Env) *match.Bindings {
	ms := match.Find(q, env.G.Snapshot(), match.Options{})
	b := match.ToBindings(q, ms)
	if len(q.Select) > 0 {
		b = cluster.Project(b, q.Select)
	} else {
		b.Dedup()
	}
	return b
}

var queries = []string{
	`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`,
	`SELECT ?x WHERE { ?x <placeOfDeath> ?c . ?c <country> ?k . }`,
	`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person3> . }`,
	`SELECT ?x ?v WHERE { ?x <viaf> ?v . }`,
}

func TestSHAPEEngineCorrect(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := cluster.New(4, 2)
	p := baseline.BuildSHAPE(env.G, 4)
	e, err := baseline.NewEngine(c, p, nil, env.G)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for _, qs := range queries {
		q := sparql.MustParse(env.G.Dict, qs)
		got, stats, err := e.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", qs, err)
		}
		want := centralized(q, env)
		if len(got.Rows) != len(want.Rows) {
			t.Errorf("query %q: got %d rows, want %d", qs, len(got.Rows), len(want.Rows))
		}
		if stats.SitesTouched != 4 {
			t.Errorf("SHAPE must touch all sites, got %d", stats.SitesTouched)
		}
	}
}

func TestWARPEngineCorrect(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pats := (&mining.Miner{MinSup: 3}).Mine(env.Workload)
	c := cluster.New(4, 2)
	p := baseline.BuildWARP(env.G, pats, 4)
	e, err := baseline.NewEngine(c, p, pats, env.G)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for _, qs := range queries {
		q := sparql.MustParse(env.G.Dict, qs)
		got, _, err := e.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", qs, err)
		}
		want := centralized(q, env)
		if len(got.Rows) != len(want.Rows) {
			t.Errorf("query %q: got %d rows, want %d", qs, len(got.Rows), len(want.Rows))
		}
	}
}

func TestEngineSiteMismatch(t *testing.T) {
	g := testenv.Graph(10)
	p := baseline.BuildSHAPE(g, 3)
	c := cluster.New(4, 1)
	if _, err := baseline.NewEngine(c, p, nil, g); err == nil {
		t.Error("site-count mismatch accepted")
	}
}

package baseline

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"rdffrag/internal/cluster"
	"rdffrag/internal/decompose"
	"rdffrag/internal/match"
	"rdffrag/internal/mining"
	"rdffrag/internal/plan"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// Engine executes queries over a baseline placement. Unlike the paper's
// VF/HF engine it cannot prune sites: every subquery is broadcast to all
// of them (SHAPE and WARP both hash/partition data so any site may hold
// matches), then results are unioned and joined at the control site.
type Engine struct {
	Cluster   *cluster.Cluster
	Placement *Placement
	// Patterns drive WARP's pattern-first decomposition; empty for SHAPE.
	Patterns []*mining.Pattern

	predCount map[rdf.ID]int
	triples   int
}

// NewEngine deploys a placement to the cluster, one fragment per site
// (fragment ID = site ID).
func NewEngine(c *cluster.Cluster, p *Placement, patterns []*mining.Pattern, original *rdf.Graph) (*Engine, error) {
	if len(p.SiteGraphs) != len(c.Sites) {
		return nil, fmt.Errorf("baseline: placement has %d sites, cluster %d", len(p.SiteGraphs), len(c.Sites))
	}
	for i, g := range p.SiteGraphs {
		if err := c.Place(i, i, g); err != nil {
			return nil, err
		}
	}
	e := &Engine{Cluster: c, Placement: p, Patterns: patterns, predCount: make(map[rdf.ID]int)}
	osn := original.Snapshot()
	for _, pr := range osn.Predicates() {
		e.predCount[pr] = osn.PredicateCount(pr)
	}
	osn.Close()
	e.triples = original.NumTriples()
	return e, nil
}

// QueryStats mirrors exec.QueryStats for cross-strategy reporting.
type QueryStats struct {
	Subqueries   int
	SitesTouched int
}

// Query decomposes, broadcasts, unions and joins.
func (e *Engine) Query(q *sparql.Graph) (*match.Bindings, *QueryStats, error) {
	subs := e.decompose(q)
	stats := &QueryStats{Subqueries: len(subs), SitesTouched: len(e.Cluster.Sites)}

	results := make([]*match.Bindings, len(subs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, sq := range subs {
		wg.Add(1)
		go func(i int, sq *decompose.Subquery) {
			defer wg.Done()
			parts := make([]*match.Bindings, len(e.Cluster.Sites))
			var iwg sync.WaitGroup
			for s := range e.Cluster.Sites {
				iwg.Add(1)
				go func(s int) {
					defer iwg.Done()
					b, err := e.Cluster.Eval(context.Background(), cluster.EvalRequest{SiteID: s, FragIDs: []int{s}, Query: sq.Graph})
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					parts[s] = b
					mu.Unlock()
				}(s)
			}
			iwg.Wait()
			mu.Lock()
			results[i] = cluster.Union(parts...)
			mu.Unlock()
		}(i, sq)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	dcp := &decompose.Decomposition{Subqueries: subs}
	pl, err := plan.Optimize(dcp)
	if err != nil {
		return nil, nil, err
	}
	joined := results[pl.Order[0]]
	for _, idx := range pl.Order[1:] {
		joined = cluster.HashJoin(joined, results[idx])
	}
	if len(q.Select) > 0 {
		joined = cluster.Project(joined, q.Select)
	} else {
		joined.Dedup()
	}
	return joined, stats, nil
}

// decompose builds the baseline's subqueries. WARP first greedily covers
// the query with its replicated patterns (largest first); the remainder —
// and everything, for SHAPE — is grouped into subject-rooted stars, which
// both placements answer locally per site.
func (e *Engine) decompose(q *sparql.Graph) []*decompose.Subquery {
	covered := make([]bool, len(q.Edges))
	var subs []*decompose.Subquery

	if len(e.Patterns) > 0 {
		pats := append([]*mining.Pattern(nil), e.Patterns...)
		sort.Slice(pats, func(i, j int) bool { return pats[i].Size() > pats[j].Size() })
		for _, pat := range pats {
			if pat.Size() <= 1 {
				continue
			}
			for _, es := range sparql.CoveredEdgeSets(pat.Graph, q) {
				free := true
				for _, ei := range es {
					if covered[ei] {
						free = false
						break
					}
				}
				if !free {
					continue
				}
				for _, ei := range es {
					covered[ei] = true
				}
				sub := q.EdgeSubgraph(es)
				subs = append(subs, &decompose.Subquery{
					Graph:       sub,
					EdgeIdx:     append([]int(nil), es...),
					PatternCode: pat.Code,
					Card:        e.estimate(sub),
				})
			}
		}
	}

	// Remaining edges: subject-rooted stars.
	byRoot := make(map[int][]int)
	var roots []int
	for ei, edge := range q.Edges {
		if covered[ei] {
			continue
		}
		if _, ok := byRoot[edge.From]; !ok {
			roots = append(roots, edge.From)
		}
		byRoot[edge.From] = append(byRoot[edge.From], ei)
	}
	sort.Ints(roots)
	for _, r := range roots {
		es := byRoot[r]
		sub := q.EdgeSubgraph(es)
		subs = append(subs, &decompose.Subquery{
			Graph:   sub,
			EdgeIdx: append([]int(nil), es...),
			Card:    e.estimate(sub),
		})
	}
	return subs
}

// estimate is a coarse cardinality estimate: the minimum predicate count
// over the subquery's edges, halved per constant vertex.
func (e *Engine) estimate(sub *sparql.Graph) int {
	est := -1
	for _, edge := range sub.Edges {
		c := e.triples
		if !edge.IsPredVar() {
			c = e.predCount[edge.Pred]
		}
		if est == -1 || c < est {
			est = c
		}
	}
	for _, v := range sub.Verts {
		if !v.IsVar() {
			est /= 10
		}
	}
	if est < 1 {
		est = 1
	}
	return est
}

// Package baseline re-implements the two distributed RDF fragmentation
// strategies the paper compares against (Section 8.1):
//
//   - SHAPE [14]: semantic hash partitioning with subject-object-based
//     triple groups — every vertex's incident triples are stored at the
//     site its ID hashes to, so star queries run locally but every query
//     consults every site.
//   - WARP [8]: a METIS partition of the RDF graph (our internal/partition
//     stands in for METIS) extended by replicating the matches of workload
//     access patterns so pattern-shaped queries avoid cross-fragment joins.
//
// Both baselines always involve all sites in query processing, which is
// what separates them from the paper's VF/HF strategies in the
// throughput/latency experiments.
package baseline

import (
	"hash/fnv"

	"rdffrag/internal/match"
	"rdffrag/internal/mining"
	"rdffrag/internal/partition"
	"rdffrag/internal/rdf"
)

// Strategy names a baseline.
type Strategy string

const (
	// SHAPE is semantic hash partitioning with subject-object triple groups.
	SHAPE Strategy = "SHAPE"
	// WARP is min-cut partitioning plus workload pattern replication.
	WARP Strategy = "WARP"
)

// Placement is the per-site fragment assignment a baseline produces.
type Placement struct {
	Strategy Strategy
	// SiteGraphs[i] holds the triples stored at site i.
	SiteGraphs []*rdf.Graph
}

// Redundancy is the ratio of stored edges to original edges (Table 1).
func (p *Placement) Redundancy(original *rdf.Graph) float64 {
	total := 0
	for _, g := range p.SiteGraphs {
		total += g.NumTriples()
	}
	if original.NumTriples() == 0 {
		return 0
	}
	return float64(total) / float64(original.NumTriples())
}

// BuildSHAPE hashes every vertex to a site and stores its subject-object
// triple group there: all triples where the vertex is subject or object.
// Each triple lands on up to two sites (its subject's and its object's).
func BuildSHAPE(g *rdf.Graph, m int) *Placement {
	if m < 1 {
		m = 1
	}
	p := &Placement{Strategy: SHAPE, SiteGraphs: make([]*rdf.Graph, m)}
	for i := range p.SiteGraphs {
		p.SiteGraphs[i] = rdf.NewGraph(g.Dict)
	}
	site := func(v rdf.ID) int {
		h := fnv.New32a()
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:])
		return int(h.Sum32() % uint32(m))
	}
	for _, t := range g.Triples() {
		p.SiteGraphs[site(t.S)].Add(t)
		p.SiteGraphs[site(t.O)].Add(t)
	}
	for _, sg := range p.SiteGraphs {
		sg.Freeze()
	}
	return p
}

// BuildWARP partitions the RDF graph's vertices with the multilevel
// partitioner, assigns each triple to its subject's part, then replicates
// every match of each workload pattern into the part of the match's first
// bound vertex so pattern queries are answered without cross-site joins.
func BuildWARP(g *rdf.Graph, patterns []*mining.Pattern, m int) *Placement {
	if m < 1 {
		m = 1
	}
	g.Freeze() // pattern replication matches every pattern against g
	gsn := g.Snapshot()
	defer gsn.Close()
	p := &Placement{Strategy: WARP, SiteGraphs: make([]*rdf.Graph, m)}
	for i := range p.SiteGraphs {
		p.SiteGraphs[i] = rdf.NewGraph(g.Dict)
	}

	// Compact vertex numbering for the partitioner.
	verts := gsn.Vertices()
	idx := make(map[rdf.ID]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	pg := partition.NewGraph(len(verts))
	for _, t := range g.Triples() {
		pg.AddEdge(idx[t.S], idx[t.O], 1)
	}
	part := pg.Partition(m, partition.Options{Seed: 1})

	partOf := func(v rdf.ID) int { return part[idx[v]] }

	// Base assignment: triple to its subject's part.
	for _, t := range g.Triples() {
		p.SiteGraphs[partOf(t.S)].Add(t)
	}

	// Pattern replication: each match fully resident at one site.
	for _, pat := range patterns {
		match.ForEach(pat.Graph, gsn, match.Options{}, func(mt *match.Match) bool {
			home := partOf(mt.Vertex[0])
			for _, t := range mt.Triples {
				p.SiteGraphs[home].Add(t)
			}
			return true
		})
	}
	for _, sg := range p.SiteGraphs {
		sg.Freeze()
	}
	return p
}

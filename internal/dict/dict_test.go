package dict_test

import (
	"fmt"
	"testing"

	"rdffrag/internal/dict"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
	"rdffrag/internal/testenv"
)

func TestBuildEntries(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	d := env.Dict
	if len(d.Entries()) != len(env.Frag.Fragments) {
		t.Fatalf("entries = %d, fragments = %d", len(d.Entries()), len(env.Frag.Fragments))
	}
	for _, e := range d.Entries() {
		if e.Site < 0 {
			t.Errorf("fragment %d unallocated in dictionary", e.Fragment.ID)
		}
		if e.Size != e.Fragment.Graph.NumTriples() {
			t.Errorf("size mismatch for fragment %d", e.Fragment.ID)
		}
		if e.Cardinality < 0 {
			t.Errorf("negative cardinality for fragment %d", e.Fragment.ID)
		}
	}
}

func TestLookupByPatternCode(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, p := range env.Dict.Patterns() {
		if len(env.Dict.Lookup(p.Code)) == 0 {
			t.Errorf("pattern %q has no dictionary entries", p.Code)
		}
	}
	if len(env.Dict.Lookup("no-such-code")) != 0 {
		t.Error("bogus code returned entries")
	}
}

func TestLookupGraphGeneralizes(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// A subquery with constants must still find its pattern's entries.
	sub := sparql.MustParse(env.G.Dict,
		`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person0> . }`)
	if !env.Dict.HasPattern(sub) {
		t.Skip("2-edge name+influencedBy pattern not selected in this configuration")
	}
	if len(env.Dict.LookupGraph(sub)) == 0 {
		t.Error("constant-bearing subquery found no entries")
	}
}

func TestEstimateCardPositive(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sub := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <name> ?n . }`)
	card, ok := env.Dict.EstimateCard(sub)
	if !ok {
		t.Fatal("one-edge subquery not mapped")
	}
	if card != 40 {
		t.Errorf("card = %d, want 40 (one name per person)", card)
	}
	// Constants shrink the estimate.
	cSub := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <influencedBy> <Person3> . }`)
	cCard, ok := env.Dict.EstimateCard(cSub)
	if !ok {
		t.Fatal("constant subquery not mapped")
	}
	plain := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <influencedBy> ?y . }`)
	pCard, _ := env.Dict.EstimateCard(plain)
	if cCard >= pCard {
		t.Errorf("constant did not shrink estimate: %d >= %d", cCard, pCard)
	}
}

func TestEstimateCardUnknownPattern(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// viaf is cold: no pattern.
	sub := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <viaf> ?v . }`)
	if _, ok := env.Dict.EstimateCard(sub); ok {
		t.Error("cold subquery mapped to a pattern")
	}
	if env.Dict.EstimateColdCard(sub) < 1 {
		t.Error("cold estimate below 1")
	}
}

func TestRelevantEntriesHorizontalPruning(t *testing.T) {
	env, err := testenv.Build(testenv.Options{Horizontal: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// influencedBy with a constant that exists in the data (Person1 is an
	// influencedBy target in the fixture): relevant horizontal fragments
	// must be a subset of all fragments for the pattern.
	withConst := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person1> . }`)
	all := env.Dict.LookupGraph(withConst)
	if len(all) == 0 {
		t.Skip("pattern not selected")
	}
	rel := env.Dict.RelevantEntries(withConst)
	if len(rel) == 0 {
		t.Fatal("no relevant entries for constant query")
	}
	if len(rel) > len(all) {
		t.Errorf("relevant (%d) exceeds total (%d)", len(rel), len(all))
	}
	// A constant absent from the data prunes every fragment: empty result
	// can be answered without touching any site.
	ghost := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person0> . }`)
	if got := env.Dict.RelevantEntries(ghost); len(got) != 0 {
		// Person0 is a workload constant but never an influencedBy target,
		// so its equality fragment is empty and was dropped.
		for _, e := range got {
			if e.Fragment.Minterm != nil && !compatibleWithGhost(e) {
				t.Errorf("incompatible fragment %d deemed relevant", e.Fragment.ID)
			}
		}
	}
}

// compatibleWithGhost is a loose check used above: entries surviving for
// the ghost query must at least not carry an equality on another constant.
func compatibleWithGhost(e *dict.Entry) bool {
	return e.Fragment.Minterm == nil || len(e.Fragment.Minterm.Constraints) > 0
}

// TestEstimatesTrackLiveUpdates pins the stale-cardinality fix: the
// dictionary's Build-time statistics are rescaled by each graph's
// live/build triple ratio, so a large insert batch raises the estimates
// the planner compares and a delete batch lowers them again — without
// the fix the planner kept seeing fragmentation-time cardinalities
// forever, however many update batches had landed.
func TestEstimatesTrackLiveUpdates(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sub := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <name> ?n . }`)
	base, ok := env.Dict.EstimateCard(sub)
	if !ok {
		t.Fatal("name subquery not mapped")
	}

	// A large insert batch: double every relevant fragment graph.
	name := env.G.Dict.MustIRI("name")
	var added []rdf.Triple
	for _, e := range env.Dict.LookupGraph(sub) {
		for i := 0; i < e.Size; i++ {
			tr := rdf.Triple{
				S: env.G.Dict.MustIRI(fmt.Sprintf("Grown%d_%d", e.Fragment.ID, i)),
				P: name,
				O: env.G.Dict.MustLiteral(fmt.Sprintf("Grown %d %d", e.Fragment.ID, i)),
			}
			if e.Fragment.Graph.Add(tr) {
				added = append(added, tr)
			}
		}
	}
	grown, _ := env.Dict.EstimateCard(sub)
	if grown <= base {
		t.Fatalf("estimate did not rise after doubling the fragments: %d -> %d", base, grown)
	}

	// Deleting the batch brings the estimate back down.
	for _, tr := range added {
		for _, e := range env.Dict.LookupGraph(sub) {
			e.Fragment.Graph.Delete(tr)
		}
	}
	shrunk, _ := env.Dict.EstimateCard(sub)
	if shrunk >= grown {
		t.Fatalf("estimate did not fall after deleting the batch: %d -> %d", grown, shrunk)
	}
	if shrunk != base {
		t.Errorf("estimate after add+delete round trip = %d, want the baseline %d", shrunk, base)
	}

	// Cold estimates rescale too: tombstoning half the cold graph's viaf
	// triples must lower the cold bound.
	coldSub := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <viaf> ?v . }`)
	coldBase := env.Dict.EstimateColdCard(coldSub)
	cold := env.Frag.Cold.Graph
	viaf := env.G.Dict.MustIRI("viaf")
	removed := 0
	for _, tr := range cold.Triples() {
		if tr.P == viaf && removed*2 < coldBase {
			cold.Delete(tr)
			removed++
		}
	}
	if removed == 0 {
		t.Skip("fixture holds no cold viaf triples to delete")
	}
	if coldAfter := env.Dict.EstimateColdCard(coldSub); coldAfter >= coldBase {
		t.Errorf("cold estimate did not fall after deleting %d viaf triples: %d -> %d",
			removed, coldBase, coldAfter)
	}
}

func TestAccessFrequencies(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	anyAccessed := false
	for _, e := range env.Dict.Entries() {
		if e.AccessFreq > len(env.Workload) {
			t.Errorf("access freq %d exceeds workload size", e.AccessFreq)
		}
		if e.AccessFreq > 0 {
			anyAccessed = true
		}
	}
	if !anyAccessed {
		t.Error("no fragment is accessed by any workload query")
	}
}

// Package dict implements the data dictionary of Section 7.1: the global
// statistics file produced at fragmentation/allocation time. Each fragment
// is represented by its generating frequent access pattern (with or
// without minterm constraints), keyed by the pattern's canonical code —
// the DFS-coding hash table of the paper — and associated with fragment
// definitions, sizes, site mappings, access frequencies and cardinalities.
package dict

import (
	"sort"

	"rdffrag/internal/allocation"
	"rdffrag/internal/fragment"
	"rdffrag/internal/match"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// Entry is the dictionary record for one fragment.
type Entry struct {
	Fragment *fragment.Fragment
	// Site is the site index holding the fragment (-1 if unallocated).
	Site int
	// Size is |E(F)|.
	Size int
	// Cardinality is the number of matches of the generating pattern
	// within the fragment — the card() statistic behind Algorithm 3's
	// cost model.
	Cardinality int
	// AccessFreq is the number of workload queries that touch the
	// fragment (acc of the pattern or minterm).
	AccessFreq int
}

// Dictionary indexes fragments by the canonical code of their generating
// pattern. Several horizontal fragments share one pattern code.
type Dictionary struct {
	entries []*Entry
	byCode  map[string][]*Entry
	// patterns holds the distinct selected patterns by code.
	patterns map[string]*mining.Pattern
	// coldStats holds per-predicate triple counts of the cold graph for
	// cold subquery estimation, frozen at Build time; coldGraph and
	// coldBuildTriples let estimation rescale them to the graph's current
	// live size (see liveRatio).
	coldPredCount    map[rdf.ID]int
	coldTriples      int
	coldGraph        *rdf.Graph
	coldBuildTriples int
	// selectivity divisor applied per constant vertex during cardinality
	// estimation (see EstimateCard).
	constSelectivity int
	// hotStats provides per-predicate distinct counts for precise
	// single-edge estimates.
	hotStats *rdf.Stats
}

// Build scans a fragmentation + allocation and materializes the
// dictionary. The workload is used for fragment access frequencies; pass
// nil to skip that statistic.
func Build(fr *fragment.Fragmentation, alloc *allocation.Allocation, workload []*sparql.Graph) *Dictionary {
	d := &Dictionary{
		byCode:           make(map[string][]*Entry),
		patterns:         make(map[string]*mining.Pattern),
		coldPredCount:    make(map[rdf.ID]int),
		constSelectivity: 10,
	}
	if fr.Hot != nil {
		d.hotStats = rdf.NewStats(fr.Hot)
	}
	for _, f := range fr.Fragments {
		fsn := f.Graph.Snapshot()
		e := &Entry{
			Fragment:    f,
			Site:        -1,
			Size:        f.Graph.NumTriples(),
			Cardinality: match.Count(f.Pattern.Graph, fsn, match.Options{}),
		}
		fsn.Close()
		if alloc != nil {
			if s, ok := alloc.SiteOf[f.ID]; ok {
				e.Site = s
			}
		}
		for _, q := range workload {
			if f.RelevantTo(q) {
				e.AccessFreq++
			}
		}
		d.entries = append(d.entries, e)
		d.byCode[f.Pattern.Code] = append(d.byCode[f.Pattern.Code], e)
		d.patterns[f.Pattern.Code] = f.Pattern
	}
	if fr.Cold != nil {
		csn := fr.Cold.Graph.Snapshot()
		d.coldTriples = csn.NumTriples()
		for _, p := range csn.Predicates() {
			d.coldPredCount[p] = csn.PredicateCount(p)
		}
		csn.Close()
		d.coldGraph = fr.Cold.Graph
		d.coldBuildTriples = d.coldTriples
	}
	return d
}

// liveRatio rescales a Build-time statistic to a graph's current live
// size: counting exact per-pattern cardinalities on every estimate would
// put a match enumeration on the planning path, but the live/build
// triple ratio (read from an atomic, safe against the concurrent writer)
// tracks growth from delta inserts and shrinkage from tombstones well
// enough for cost comparison — without it the planner keeps seeing the
// frozen fragmentation-time cardinalities forever, however many update
// batches have landed since.
func liveRatio(g *rdf.Graph, buildSize int) float64 {
	if g == nil || buildSize <= 0 {
		return 1
	}
	return float64(g.LiveTriples()) / float64(buildSize)
}

// Entries returns all dictionary entries.
func (d *Dictionary) Entries() []*Entry { return d.entries }

// Patterns returns the distinct selected patterns sorted by code.
func (d *Dictionary) Patterns() []*mining.Pattern {
	codes := make([]string, 0, len(d.patterns))
	for c := range d.patterns {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	ps := make([]*mining.Pattern, len(codes))
	for i, c := range codes {
		ps[i] = d.patterns[c]
	}
	return ps
}

// Lookup retrieves the entries for a pattern code (the DFS-code hash-table
// probe of Section 7.1).
func (d *Dictionary) Lookup(code string) []*Entry { return d.byCode[code] }

// LookupGraph canonicalizes a query subgraph and retrieves its entries.
func (d *Dictionary) LookupGraph(g *sparql.Graph) []*Entry {
	return d.byCode[mining.CanonicalCode(g.Generalize())]
}

// HasPattern reports whether a subquery maps to some selected pattern.
func (d *Dictionary) HasPattern(g *sparql.Graph) bool {
	return len(d.LookupGraph(g)) > 0
}

// RelevantEntries returns the entries for the subquery's pattern whose
// fragments are relevant to the (constant-bearing) subquery — the
// fragment-pruning step of Sections 5.1/5.2.
func (d *Dictionary) RelevantEntries(sub *sparql.Graph) []*Entry {
	var out []*Entry
	for _, e := range d.LookupGraph(sub) {
		if e.Fragment.RelevantTo(sub) {
			out = append(out, e)
		}
	}
	return out
}

// EstimateCard estimates card(q) for a subquery that maps to a selected
// pattern: the sum of pattern cardinalities over relevant fragments,
// shrunk by a per-constant selectivity divisor (constants restrict matches
// beyond what vertical fragments record). Returns at least 1 so the
// multiplicative cost model of Algorithm 3 stays meaningful, and a false
// flag if the subquery maps to no pattern.
func (d *Dictionary) EstimateCard(sub *sparql.Graph) (int, bool) {
	entries := d.LookupGraph(sub)
	if len(entries) == 0 {
		return 0, false
	}
	// Single triple pattern with a constant endpoint: use per-predicate
	// distinct counts for a sharper estimate than the generic divisor.
	if d.hotStats != nil && len(sub.Edges) == 1 && !sub.Edges[0].IsPredVar() {
		e := sub.Edges[0]
		sBound := !sub.Verts[e.From].IsVar()
		oBound := !sub.Verts[e.To].IsVar()
		if sBound || oBound {
			if est := d.hotStats.EstimateTriplePattern(e.Pred, sBound, oBound); est > 0 {
				return est, true
			}
			return 1, true
		}
	}
	total := 0
	constrained := false
	for _, e := range entries {
		if e.Fragment.RelevantTo(sub) {
			// Scale the Build-time cardinality by the fragment's live
			// growth (or shrinkage) so estimates follow live updates.
			total += int(float64(e.Cardinality) * liveRatio(e.Fragment.Graph, e.Size))
			if e.Fragment.Minterm != nil {
				constrained = true
			}
		}
	}
	// Horizontal relevance already accounts for minterm constants; apply
	// the generic constant selectivity only when it did not.
	nConst := 0
	for _, v := range sub.Verts {
		if !v.IsVar() {
			nConst++
		}
	}
	if nConst > 0 && !constrained {
		div := 1
		for i := 0; i < nConst; i++ {
			div *= d.constSelectivity
		}
		total /= div
	}
	if total < 1 {
		total = 1
	}
	return total, true
}

// EstimateColdCard estimates card(q) for an all-cold subquery from the
// cold graph's per-predicate counts: the minimum predicate count bounds
// the matches of a connected pattern from above far better than the
// product, and stays monotone for the cost comparison.
func (d *Dictionary) EstimateColdCard(sub *sparql.Graph) int {
	ratio := liveRatio(d.coldGraph, d.coldBuildTriples)
	est := -1
	for _, e := range sub.Edges {
		var c int
		if e.IsPredVar() {
			c = d.coldTriples
		} else {
			c = d.coldPredCount[e.Pred]
		}
		// The per-predicate counts are Build-time; rescale to the cold
		// graph's current live size so deltas and tombstones move the
		// estimate.
		c = int(float64(c) * ratio)
		if est == -1 || c < est {
			est = c
		}
	}
	if est < 1 {
		est = 1
	}
	return est
}

package decompose_test

import (
	"testing"

	"rdffrag/internal/decompose"
	"rdffrag/internal/sparql"
)

func TestNaiveDecomposition(t *testing.T) {
	d, env := newDecomposer(t, false)
	d.Naive = true
	q := sparql.MustParse(env.G.Dict,
		`SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . ?x <viaf> ?v . }`)
	dcp, err := d.Decompose(q)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	// 2 hot single-edge subqueries + 1 cold.
	if len(dcp.Subqueries) != 3 {
		t.Fatalf("subqueries = %d, want 3", len(dcp.Subqueries))
	}
	for _, sq := range dcp.Subqueries {
		if len(sq.EdgeIdx) != 1 {
			t.Errorf("naive subquery covers %d edges", len(sq.EdgeIdx))
		}
	}
}

func TestNaiveNeverCheaperThanOptimal(t *testing.T) {
	opt, env := newDecomposer(t, false)
	naive := &decompose.Decomposer{Dict: env.Dict, HC: env.HC, Naive: true}
	queries := []string{
		`SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`,
		`SELECT ?x WHERE { ?x <placeOfDeath> ?c . ?c <country> ?k . ?c <postalCode> ?z . }`,
		`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person1> . }`,
	}
	for _, qs := range queries {
		q := sparql.MustParse(env.G.Dict, qs)
		od, err := opt.Decompose(q)
		if err != nil {
			t.Fatalf("optimal Decompose(%s): %v", qs, err)
		}
		nd, err := naive.Decompose(q)
		if err != nil {
			t.Fatalf("naive Decompose(%s): %v", qs, err)
		}
		if od.Cost > nd.Cost {
			t.Errorf("query %q: optimal cost %f exceeds naive %f", qs, od.Cost, nd.Cost)
		}
		if len(od.Subqueries) > len(nd.Subqueries) {
			t.Errorf("query %q: optimal produced more subqueries (%d) than naive (%d)",
				qs, len(od.Subqueries), len(nd.Subqueries))
		}
	}
}

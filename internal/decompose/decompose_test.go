package decompose_test

import (
	"testing"

	"rdffrag/internal/decompose"
	"rdffrag/internal/fragment"
	"rdffrag/internal/sparql"
	"rdffrag/internal/testenv"
)

func newDecomposer(t *testing.T, horizontal bool) (*decompose.Decomposer, *testenv.Env) {
	t.Helper()
	env, err := testenv.Build(testenv.Options{Horizontal: horizontal})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return &decompose.Decomposer{Dict: env.Dict, HC: env.HC}, env
}

func TestDecomposeCoversAllEdges(t *testing.T) {
	d, env := newDecomposer(t, false)
	q := sparql.MustParse(env.G.Dict,
		`SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . ?x <placeOfDeath> ?c . ?c <country> ?k . }`)
	dcp, err := d.Decompose(q)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	covered := make(map[int]bool)
	for _, sq := range dcp.Subqueries {
		for _, e := range sq.EdgeIdx {
			if covered[e] {
				t.Errorf("edge %d covered twice", e)
			}
			covered[e] = true
		}
	}
	if len(covered) != q.NumEdges() {
		t.Errorf("covered %d of %d edges", len(covered), q.NumEdges())
	}
}

func TestDecomposePrefersLargerPatterns(t *testing.T) {
	d, env := newDecomposer(t, false)
	// name+mainInterest is a mined 2-edge pattern: the decomposition
	// should use it as one subquery rather than two single edges.
	q := sparql.MustParse(env.G.Dict,
		`SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`)
	dcp, err := d.Decompose(q)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(dcp.Subqueries) != 1 {
		t.Fatalf("subqueries = %d, want 1 (whole query is a FAP)", len(dcp.Subqueries))
	}
	if dcp.Subqueries[0].PatternCode == "" {
		t.Error("subquery not mapped to a pattern")
	}
}

func TestDecomposeColdEdges(t *testing.T) {
	d, env := newDecomposer(t, false)
	q := sparql.MustParse(env.G.Dict,
		`SELECT ?x WHERE { ?x <name> ?n . ?x <viaf> ?v . }`)
	dcp, err := d.Decompose(q)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	var coldCount, hotCount int
	for _, sq := range dcp.Subqueries {
		if sq.Cold {
			coldCount++
			for _, ei := range sq.EdgeIdx {
				e := q.Edges[ei]
				if env.HC.FreqProps[e.Pred] {
					t.Error("hot edge inside cold subquery")
				}
			}
		} else {
			hotCount++
		}
	}
	if coldCount != 1 || hotCount != 1 {
		t.Errorf("cold=%d hot=%d, want 1/1", coldCount, hotCount)
	}
}

func TestDecomposeConnectedColdComponents(t *testing.T) {
	d, env := newDecomposer(t, false)
	// Two disconnected cold parts must become two cold subqueries.
	q := sparql.MustParse(env.G.Dict,
		`SELECT * WHERE { ?x <viaf> ?v . ?y <wappen> ?w . ?x <name> ?n . ?y <postalCode> ?z . }`)
	dcp, err := d.Decompose(q)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	cold := 0
	for _, sq := range dcp.Subqueries {
		if sq.Cold {
			cold++
			if !sq.Graph.Connected() {
				t.Error("cold subquery not connected")
			}
		}
	}
	if cold != 2 {
		t.Errorf("cold subqueries = %d, want 2", cold)
	}
}

func TestDecomposeVariablePredicateGlobal(t *testing.T) {
	d, env := newDecomposer(t, false)
	q := sparql.MustParse(env.G.Dict, `SELECT * WHERE { ?x ?p ?y . ?x <name> ?n . }`)
	dcp, err := d.Decompose(q)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	global := 0
	for _, sq := range dcp.Subqueries {
		if sq.Global {
			global++
		}
	}
	if global != 1 {
		t.Errorf("global subqueries = %d, want 1", global)
	}
}

func TestDecomposeCostMinimal(t *testing.T) {
	d, env := newDecomposer(t, false)
	q := sparql.MustParse(env.G.Dict,
		`SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . ?x <influencedBy> ?y . }`)
	dcp, err := d.Decompose(q)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	// Cost must equal the product of subquery cards.
	prod := 1.0
	for _, sq := range dcp.Subqueries {
		prod *= float64(sq.Card)
	}
	if dcp.Cost != prod {
		t.Errorf("cost %f != product %f", dcp.Cost, prod)
	}
	// And the single-edge decomposition must never be cheaper.
	singleProd := 1.0
	for i := range q.Edges {
		sub := q.EdgeSubgraph([]int{i})
		c, ok := env.Dict.EstimateCard(sub)
		if !ok {
			t.Fatalf("edge %d unmapped", i)
		}
		singleProd *= float64(c)
	}
	if dcp.Cost > singleProd {
		t.Errorf("chosen cost %f worse than naive single-edge cost %f", dcp.Cost, singleProd)
	}
}

func TestDecomposeEmptyQuery(t *testing.T) {
	d, _ := newDecomposer(t, false)
	if _, err := d.Decompose(sparql.NewGraph()); err == nil {
		t.Error("empty query accepted")
	}
}

func TestDecomposeHorizontal(t *testing.T) {
	d, env := newDecomposer(t, true)
	q := sparql.MustParse(env.G.Dict,
		`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person0> . }`)
	dcp, err := d.Decompose(q)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(dcp.Subqueries) == 0 {
		t.Fatal("no subqueries")
	}
	_ = fragment.HorizontalKind
}

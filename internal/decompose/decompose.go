// Package decompose implements query decomposition (Section 7.2,
// Algorithm 3): a SPARQL query is split into subqueries that each map to a
// selected frequent access pattern, or — for infrequent properties — into
// connected cold subqueries. Among all valid decompositions (Definition
// 15) the one minimizing the worst-case join cost Π card(qi) is chosen.
package decompose

import (
	"fmt"
	"math"
	"sort"

	"rdffrag/internal/dict"
	"rdffrag/internal/fragment"
	"rdffrag/internal/mining"
	"rdffrag/internal/sparql"
)

// Subquery is one piece of a decomposition.
type Subquery struct {
	// Graph is the subquery itself (with the original constants).
	Graph *sparql.Graph
	// EdgeIdx lists the covered edge indices of the original query.
	EdgeIdx []int
	// PatternCode is the canonical code of the matching selected pattern
	// ("" for cold or global subqueries).
	PatternCode string
	// Cold marks an all-infrequent-property subquery evaluated on the
	// cold fragment.
	Cold bool
	// Global marks a subquery that must consult every fragment (variable
	// predicates may match hot and cold edges alike).
	Global bool
	// Card is the estimated result cardinality from the data dictionary.
	Card int
}

// Decomposition is a valid decomposition with its estimated cost.
type Decomposition struct {
	Subqueries []*Subquery
	// Cost is Π card(qi), the worst-case join cost of Section 7.2.
	Cost float64
}

// Decomposer holds the inputs shared across queries.
type Decomposer struct {
	Dict *dict.Dictionary
	HC   *fragment.HotCold
	// Naive disables the cost-based search: every hot edge becomes its
	// own single-edge subquery (the always-valid decomposition the paper
	// mentions). Exists for the decomposition ablation.
	Naive bool
}

// Decompose enumerates the valid decompositions of q and returns the one
// with the smallest cost. Queries are expected to be small (≤ ~12 edges);
// enumeration is exact per the paper's brute-force argument.
func (d *Decomposer) Decompose(q *sparql.Graph) (*Decomposition, error) {
	if len(q.Edges) == 0 {
		return nil, fmt.Errorf("decompose: empty query")
	}

	// Partition edges: hot (frequent property), cold (infrequent), and
	// global (variable predicate).
	var hotIdx, coldIdx, globalIdx []int
	for i, e := range q.Edges {
		switch {
		case e.IsPredVar():
			globalIdx = append(globalIdx, i)
		case d.HC.FreqProps[e.Pred]:
			hotIdx = append(hotIdx, i)
		default:
			coldIdx = append(coldIdx, i)
		}
	}

	// Fixed part: cold edges form subqueries per connected component of
	// the cold-only subgraph; likewise global edges.
	fixed := d.fixedSubqueries(q, coldIdx, false)
	fixed = append(fixed, d.fixedSubqueries(q, globalIdx, true)...)

	if d.Naive {
		return d.naive(q, hotIdx, fixed)
	}

	// Candidate blocks over hot edges: for every selected pattern, every
	// edge set of q it covers (restricted to hot edges).
	hotSet := make(map[int]bool, len(hotIdx))
	for _, i := range hotIdx {
		hotSet[i] = true
	}
	blockAt := make(map[int][]blockT)
	for _, p := range d.Dict.Patterns() {
		for _, es := range sparql.CoveredEdgeSets(p.Graph, q) {
			ok := true
			for _, ei := range es {
				if !hotSet[ei] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			sub := q.EdgeSubgraph(es)
			card, mapped := d.Dict.EstimateCard(sub)
			if !mapped {
				continue
			}
			b := blockT{edges: es, code: p.Code, card: card}
			blockAt[es[0]] = append(blockAt[es[0]], b)
		}
	}

	// Verify every hot edge has at least one block (one-edge patterns
	// guarantee this when selection ran with integrity).
	cover := make(map[int]bool)
	for _, bs := range blockAt {
		for _, b := range bs {
			for _, e := range b.edges {
				cover[e] = true
			}
		}
	}
	for _, ei := range hotIdx {
		if !cover[ei] {
			return nil, fmt.Errorf("decompose: hot edge %d (property %v) has no covering pattern", ei, q.Edges[ei].Pred)
		}
	}

	// Exact-cover search over hot edges minimizing Π card.
	sort.Ints(hotIdx)
	var best *Decomposition
	used := make(map[int]bool, len(hotIdx))
	var chosen []blockT

	fixedCost := 1.0
	for _, s := range fixed {
		fixedCost *= float64(s.Card)
	}

	var rec func(costSoFar float64)
	rec = func(costSoFar float64) {
		if best != nil && costSoFar >= best.Cost {
			return // branch and bound: cards are >= 1 so cost only grows
		}
		// Find the lowest uncovered hot edge.
		next := -1
		for _, ei := range hotIdx {
			if !used[ei] {
				next = ei
				break
			}
		}
		if next == -1 {
			dcp := &Decomposition{Cost: costSoFar}
			dcp.Subqueries = append(dcp.Subqueries, fixed...)
			for _, b := range chosen {
				dcp.Subqueries = append(dcp.Subqueries, &Subquery{
					Graph:       q.EdgeSubgraph(b.edges),
					EdgeIdx:     append([]int(nil), b.edges...),
					PatternCode: b.code,
					Card:        b.card,
				})
			}
			if best == nil || dcp.Cost < best.Cost {
				best = dcp
			}
			return
		}
		for _, b := range blocksContaining(blockAt, next) {
			overlap := false
			for _, e := range b.edges {
				if used[e] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			for _, e := range b.edges {
				used[e] = true
			}
			chosen = append(chosen, b)
			rec(costSoFar * float64(b.card))
			chosen = chosen[:len(chosen)-1]
			for _, e := range b.edges {
				used[e] = false
			}
		}
	}

	// blocksContaining needs every block that includes edge `next`, not
	// only those whose smallest edge is `next`.
	rec(fixedCost)
	if best == nil {
		return nil, fmt.Errorf("decompose: no valid decomposition found")
	}
	if math.IsInf(best.Cost, 1) {
		return nil, fmt.Errorf("decompose: cost overflow")
	}
	return best, nil
}

// blockT is a candidate subquery: an edge set of the query covered by one
// selected pattern, with its estimated cardinality.
type blockT struct {
	edges []int
	code  string
	card  int
}

func blocksContaining(blockAt map[int][]blockT, edge int) []blockT {
	var out []blockT
	for _, bs := range blockAt {
		for _, b := range bs {
			for _, e := range b.edges {
				if e == edge {
					out = append(out, b)
					break
				}
			}
		}
	}
	// Prefer larger blocks first: they shrink the cost fastest under the
	// branch-and-bound, and match the paper's larger-pattern preference.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].edges) != len(out[j].edges) {
			return len(out[i].edges) > len(out[j].edges)
		}
		return less(out[i].edges, out[j].edges)
	})
	return out
}

func less(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// naive builds the decomposition of all single-edge subqueries.
func (d *Decomposer) naive(q *sparql.Graph, hotIdx []int, fixed []*Subquery) (*Decomposition, error) {
	dcp := &Decomposition{Cost: 1}
	dcp.Subqueries = append(dcp.Subqueries, fixed...)
	for _, s := range fixed {
		dcp.Cost *= float64(s.Card)
	}
	for _, ei := range hotIdx {
		sub := q.EdgeSubgraph([]int{ei})
		card, ok := d.Dict.EstimateCard(sub)
		if !ok {
			return nil, fmt.Errorf("decompose: hot edge %d has no one-edge pattern", ei)
		}
		code := mining.CanonicalCode(sub.Generalize())
		dcp.Subqueries = append(dcp.Subqueries, &Subquery{
			Graph:       sub,
			EdgeIdx:     []int{ei},
			PatternCode: code,
			Card:        card,
		})
		dcp.Cost *= float64(card)
	}
	if len(dcp.Subqueries) == 0 {
		return nil, fmt.Errorf("decompose: empty decomposition")
	}
	return dcp, nil
}

// fixedSubqueries groups the given edges into connected components, each
// becoming one cold/global subquery.
func (d *Decomposer) fixedSubqueries(q *sparql.Graph, idx []int, global bool) []*Subquery {
	if len(idx) == 0 {
		return nil
	}
	sub := q.EdgeSubgraph(idx)
	comps := sub.ConnectedComponents()
	out := make([]*Subquery, 0, len(comps))
	for _, compEdges := range comps {
		orig := make([]int, len(compEdges))
		for i, ce := range compEdges {
			orig[i] = idx[ce]
		}
		sg := q.EdgeSubgraph(orig)
		s := &Subquery{Graph: sg, EdgeIdx: orig, Cold: !global, Global: global}
		if global {
			s.Card = d.Dict.EstimateColdCard(sg) // coarse: variable predicates
		} else {
			s.Card = d.Dict.EstimateColdCard(sg)
		}
		out = append(out, s)
	}
	return out
}

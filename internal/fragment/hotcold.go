package fragment

import (
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// HotCold is the result of dividing an RDF graph by property access
// frequency (Definitions 5–6).
type HotCold struct {
	Hot  *rdf.Graph
	Cold *rdf.Graph
	// FreqProps holds the frequent properties (appearing in >= Theta
	// workload queries).
	FreqProps map[rdf.ID]bool
	// PropQueries counts, per property, the number of workload queries
	// mentioning it.
	PropQueries map[rdf.ID]int
}

// SplitHotCold divides g into hot and cold graphs: an edge is hot iff its
// property occurs in at least theta workload queries. Variable-predicate
// query edges do not contribute to any property's count.
func SplitHotCold(g *rdf.Graph, workload []*sparql.Graph, theta int) *HotCold {
	if theta < 1 {
		theta = 1
	}
	counts := make(map[rdf.ID]int)
	for _, q := range workload {
		seen := make(map[rdf.ID]bool)
		for _, e := range q.Edges {
			if e.IsPredVar() || seen[e.Pred] {
				continue
			}
			seen[e.Pred] = true
			counts[e.Pred]++
		}
	}
	freq := make(map[rdf.ID]bool)
	for p, c := range counts {
		if c >= theta {
			freq[p] = true
		}
	}
	hc := &HotCold{
		Hot:         rdf.NewGraph(g.Dict),
		Cold:        rdf.NewGraph(g.Dict),
		FreqProps:   freq,
		PropQueries: counts,
	}
	for _, t := range g.Triples() {
		if freq[t.P] {
			hc.Hot.Add(t)
		} else {
			hc.Cold.Add(t)
		}
	}
	// Freeze both halves: pattern selection and fragment construction
	// match against Hot heavily, and Cold is served to sites as-is.
	hc.Hot.Freeze()
	hc.Cold.Freeze()
	return hc
}

// IsHotQueryEdge reports whether a query edge touches only frequent
// properties (variable predicates count as cold: they may bind anywhere).
func (hc *HotCold) IsHotQueryEdge(e sparql.Edge) bool {
	return !e.IsPredVar() && hc.FreqProps[e.Pred]
}

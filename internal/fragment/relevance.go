package fragment

import (
	"rdffrag/internal/sparql"
)

// RelevantTo reports whether evaluating query q may need this fragment:
// the fragment's generating pattern embeds in q, and — for horizontal
// fragments — some embedding's constant assignments are compatible with
// the minterm (a query variable is compatible with any constraint; a query
// constant must not contradict it). This is the use(Q, p) / use(Q, mp)
// notion driving both allocation affinity and fragment pruning during
// query processing.
func (f *Fragment) RelevantTo(q *sparql.Graph) bool {
	if f.Kind == ColdKind {
		return true // cold relevance is decided by the decomposer
	}
	if f.Minterm == nil {
		return sparql.Embeds(f.Pattern.Graph, q)
	}
	for _, emb := range sparql.FindEmbeddings(f.Pattern.Graph, q, 0) {
		if f.mintermCompatible(q, emb) {
			return true
		}
	}
	return false
}

func (f *Fragment) mintermCompatible(q *sparql.Graph, emb sparql.Embedding) bool {
	for _, c := range f.Minterm.Constraints {
		qv := emb.VertexMap[c.Vertex]
		vert := q.Verts[qv]
		if vert.IsVar() {
			continue // unbound: every fragment of the split may hold matches
		}
		if c.Equal && vert.Term != c.Value {
			return false
		}
		if !c.Equal && vert.Term == c.Value {
			return false
		}
	}
	return true
}

package fragment

import (
	"sort"

	"rdffrag/internal/fap"
	"rdffrag/internal/match"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// HorizontalOptions tunes minterm enumeration. Enumerating all minterm
// predicates is exponential, so the paper prunes by access frequency; the
// same idea appears here as a per-pattern cap on simple predicates plus a
// minimum access frequency for a constant to spawn a simple predicate.
type HorizontalOptions struct {
	// MaxSimplePreds caps the simple predicates kept per pattern (the
	// 2^y minterm blow-up). 0 means 3.
	MaxSimplePreds int
	// MinPredSupport is the minimum number of workload queries that must
	// bind a pattern variable to a constant before the constant yields a
	// simple predicate. 0 means 1.
	MinPredSupport int
}

type simplePred struct {
	vertex int // pattern vertex index
	value  rdf.ID
	count  int
}

// Horizontal builds the horizontal fragmentation (Definition 12): for each
// selected pattern, structural simple predicates are harvested from the
// workload's constants, combined into minterm predicates, and each
// non-empty minterm selection over the hot graph becomes a fragment.
// Patterns without any simple predicate yield a single unsplit fragment,
// so the union of horizontal fragments still covers the hot graph.
func Horizontal(sel *fap.Selection, workload []*sparql.Graph, hc *HotCold, opts HorizontalOptions) *Fragmentation {
	maxPreds := opts.MaxSimplePreds
	if maxPreds <= 0 {
		maxPreds = 3
	}
	minSupport := opts.MinPredSupport
	if minSupport <= 0 {
		minSupport = 1
	}

	fr := &Fragmentation{Kind: HorizontalKind, Hot: hc.Hot}
	hsn := hc.Hot.Snapshot()
	defer hsn.Close()
	id := 0
	for _, p := range sel.Patterns {
		preds := harvestSimplePreds(p, workload, maxPreds, minSupport)
		minterms := enumerateMinterms(p, preds)
		if len(minterms) == 0 {
			// No constants in the workload for this pattern: one fragment.
			g := match.MatchedGraph(p.Graph, hsn, match.Options{})
			if g.NumTriples() == 0 && p.Size() > 1 {
				continue
			}
			g.Freeze()
			fr.Fragments = append(fr.Fragments, &Fragment{
				ID: id, Kind: HorizontalKind, Pattern: p, Graph: g,
			})
			id++
			continue
		}
		for _, mt := range minterms {
			g := match.MatchedGraph(p.Graph, hsn, match.Options{VertexFilter: mt.VertexFilter()})
			if g.NumTriples() == 0 {
				continue
			}
			g.Freeze()
			fr.Fragments = append(fr.Fragments, &Fragment{
				ID: id, Kind: HorizontalKind, Pattern: p, Minterm: mt, Graph: g,
			})
			id++
		}
	}
	fr.Cold = &Fragment{ID: id, Kind: ColdKind, Graph: coldGraph(hc)}
	return fr
}

// harvestSimplePreds finds (pattern vertex, constant) pairs from workload
// queries containing the pattern: each embedding that binds a pattern
// variable to a query constant is evidence for a simple predicate
// p(var) = constant (Example 2).
func harvestSimplePreds(p *mining.Pattern, workload []*sparql.Graph, maxPreds, minSupport int) []simplePred {
	type key struct {
		vertex int
		value  rdf.ID
	}
	counts := make(map[key]int)
	for _, q := range workload {
		seen := make(map[key]bool)
		for _, emb := range sparql.FindEmbeddings(p.Graph, q, 0) {
			for pv, qv := range emb.VertexMap {
				if p.Graph.Verts[pv].IsVar() && !q.Verts[qv].IsVar() {
					k := key{vertex: pv, value: q.Verts[qv].Term}
					if !seen[k] {
						seen[k] = true
						counts[k]++
					}
				}
			}
		}
	}
	preds := make([]simplePred, 0, len(counts))
	for k, c := range counts {
		if c >= minSupport {
			preds = append(preds, simplePred{vertex: k.vertex, value: k.value, count: c})
		}
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].count != preds[j].count {
			return preds[i].count > preds[j].count
		}
		if preds[i].vertex != preds[j].vertex {
			return preds[i].vertex < preds[j].vertex
		}
		return preds[i].value < preds[j].value
	})
	if len(preds) > maxPreds {
		preds = preds[:maxPreds]
	}
	return preds
}

// enumerateMinterms produces all 2^y conjunctions of the simple predicates
// in natural or negated form (Section 5.2.1), skipping internally
// contradictory combinations (v=a ∧ v=b with a≠b).
func enumerateMinterms(p *mining.Pattern, preds []simplePred) []*Minterm {
	if len(preds) == 0 {
		return nil
	}
	n := len(preds)
	var out []*Minterm
	for mask := 0; mask < 1<<n; mask++ {
		cs := make([]Constraint, n)
		for i, sp := range preds {
			cs[i] = Constraint{
				Vertex: sp.vertex,
				Equal:  mask&(1<<i) != 0,
				Value:  sp.value,
			}
		}
		if contradictory(cs) {
			continue
		}
		out = append(out, &Minterm{Pattern: p, Constraints: cs})
	}
	return out
}

func contradictory(cs []Constraint) bool {
	eq := make(map[int]rdf.ID)
	for _, c := range cs {
		if !c.Equal {
			continue
		}
		if prev, ok := eq[c.Vertex]; ok && prev != c.Value {
			return true
		}
		eq[c.Vertex] = c.Value
	}
	// v = a together with v ≠ a is contradictory too.
	for _, c := range cs {
		if c.Equal {
			continue
		}
		if prev, ok := eq[c.Vertex]; ok && prev == c.Value {
			return true
		}
	}
	return false
}

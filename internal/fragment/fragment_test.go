package fragment

import (
	"testing"

	"rdffrag/internal/fap"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// figure1Graph approximates the paper's running example: philosophers with
// name/mainInterest/influencedBy/placeOfDeath plus rarely-queried
// properties (wappen, viaf, imageSkyline).
func figure1Graph() *rdf.Graph {
	g := rdf.NewGraph(nil)
	add := func(s, p, o string) { g.AddTerms(rdf.NewIRI(s), rdf.NewIRI(p), rdf.NewIRI(o)) }
	lit := func(s, p, o string) { g.AddTerms(rdf.NewIRI(s), rdf.NewIRI(p), rdf.NewLiteral(o)) }
	add("Aristotle", "influencedBy", "Plato")
	add("Aristotle", "mainInterest", "Ethics")
	lit("Aristotle", "name", "Aristotle")
	add("Aristotle", "placeOfDeath", "Chalcis")
	add("Friedrich_Nietzsche", "influencedBy", "Aristotle")
	add("Friedrich_Nietzsche", "mainInterest", "Ethics")
	lit("Friedrich_Nietzsche", "name", "Friedrich Nietzsche")
	add("Friedrich_Nietzsche", "placeOfDeath", "Weimar")
	add("Max_Horkheimer", "influencedBy", "Karl_Marx")
	add("Max_Horkheimer", "mainInterest", "Social_theory")
	lit("Max_Horkheimer", "name", "Max Horkheimer")
	add("Boethius", "mainInterest", "Religion")
	lit("Boethius", "name", "Boethius")
	add("Boethius", "placeOfDeath", "Pavia")
	add("Pavia", "country", "Italy")
	lit("Pavia", "postalCode", "27100")
	add("Chalcis", "country", "Greece")
	lit("Chalcis", "postalCode", "341 00")
	// Cold properties: never queried.
	add("Weimar", "wappen", "WappenWeimar.svg")
	lit("Max_Horkheimer", "viaf", "100218964")
	add("Chalcis", "imageSkyline", "Chalkida.JPG")
	return g
}

func figure2Workload(d *rdf.Dict) []*sparql.Graph {
	var w []*sparql.Graph
	// p1-like: country + postalCode star.
	for i := 0; i < 8; i++ {
		w = append(w, sparql.MustParse(d,
			`SELECT ?x WHERE { ?x <country> ?c . ?x <postalCode> ?z . }`))
	}
	// p2-like: name + placeOfDeath.
	for i := 0; i < 7; i++ {
		w = append(w, sparql.MustParse(d,
			`SELECT ?x WHERE { ?x <name> ?n . ?x <placeOfDeath> ?p . }`))
	}
	// p3-like: name + influencedBy constant + mainInterest constant.
	for i := 0; i < 6; i++ {
		w = append(w, sparql.MustParse(d,
			`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Aristotle> . ?x <mainInterest> <Ethics> . }`))
	}
	for i := 0; i < 4; i++ {
		w = append(w, sparql.MustParse(d,
			`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Karl_Marx> . ?x <mainInterest> ?m . }`))
	}
	return w
}

func buildSelection(t *testing.T, g *rdf.Graph, w []*sparql.Graph, hc *HotCold) *fap.Selection {
	t.Helper()
	ps := (&mining.Miner{MinSup: 3}).Mine(w)
	sel, err := (&fap.Selector{StorageCapacity: 10 * hc.Hot.NumTriples()}).Select(ps, w, hc.Hot)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	return sel
}

func TestSplitHotCold(t *testing.T) {
	g := figure1Graph()
	w := figure2Workload(g.Dict)
	hc := SplitHotCold(g, w, 2)
	if hc.Hot.NumTriples()+hc.Cold.NumTriples() != g.NumTriples() {
		t.Fatalf("hot+cold = %d+%d != %d", hc.Hot.NumTriples(), hc.Cold.NumTriples(), g.NumTriples())
	}
	wappen, _ := g.Dict.Lookup(rdf.NewIRI("wappen"))
	if hc.FreqProps[wappen] {
		t.Error("wappen should be infrequent")
	}
	name, _ := g.Dict.Lookup(rdf.NewIRI("name"))
	if !hc.FreqProps[name] {
		t.Error("name should be frequent")
	}
	// All cold triples have infrequent properties.
	for _, tr := range hc.Cold.Triples() {
		if hc.FreqProps[tr.P] {
			t.Errorf("hot property %v in cold graph", g.Dict.Decode(tr.P))
		}
	}
}

func TestVerticalCoversHotGraph(t *testing.T) {
	g := figure1Graph()
	w := figure2Workload(g.Dict)
	hc := SplitHotCold(g, w, 2)
	sel := buildSelection(t, g, w, hc)
	fr := Vertical(sel, hc)
	if missing := fr.CoversHotGraph(); len(missing) != 0 {
		t.Fatalf("vertical fragmentation misses %d hot edges", len(missing))
	}
	if fr.Cold == nil || fr.Cold.Graph.NumTriples() != hc.Cold.NumTriples() {
		t.Error("cold fragment wrong")
	}
	// Redundancy must be >= 1 (overlap allowed) and bounded.
	r := fr.Redundancy(g)
	if r < 1.0 {
		t.Errorf("redundancy %f < 1", r)
	}
}

func TestVerticalFragmentContents(t *testing.T) {
	g := figure1Graph()
	w := figure2Workload(g.Dict)
	hc := SplitHotCold(g, w, 2)
	sel := buildSelection(t, g, w, hc)
	fr := Vertical(sel, hc)

	// Find a multi-edge fragment for the country+postalCode pattern; its
	// graph must contain Pavia and Chalcis edges but no philosopher names.
	var target *Fragment
	for _, f := range fr.Fragments {
		if f.Pattern.Size() == 2 {
			preds := f.Pattern.Graph.Predicates()
			names := map[string]bool{}
			for _, p := range preds {
				names[g.Dict.Decode(p).Value] = true
			}
			if names["country"] && names["postalCode"] {
				target = f
			}
		}
	}
	if target == nil {
		t.Skip("country+postalCode pattern not selected at this storage setting")
	}
	if target.Graph.NumTriples() != 4 {
		t.Errorf("fragment has %d triples, want 4 (2 cities × 2 props)", target.Graph.NumTriples())
	}
}

func TestHorizontalCoversHotGraph(t *testing.T) {
	g := figure1Graph()
	w := figure2Workload(g.Dict)
	hc := SplitHotCold(g, w, 2)
	sel := buildSelection(t, g, w, hc)
	fr := Horizontal(sel, w, hc, HorizontalOptions{})
	if missing := fr.CoversHotGraph(); len(missing) != 0 {
		for _, m := range missing {
			t.Logf("missing: %s", g.TripleString(m))
		}
		t.Fatalf("horizontal fragmentation misses %d hot edges", len(missing))
	}
}

func TestHorizontalSplitsByConstant(t *testing.T) {
	g := figure1Graph()
	w := figure2Workload(g.Dict)
	hc := SplitHotCold(g, w, 2)
	sel := buildSelection(t, g, w, hc)
	fr := Horizontal(sel, w, hc, HorizontalOptions{MaxSimplePreds: 2})

	// Some fragment must carry a minterm with an equality constraint on
	// Aristotle or Karl_Marx (harvested from the workload constants).
	aristotle, _ := g.Dict.Lookup(rdf.NewIRI("Aristotle"))
	karl, _ := g.Dict.Lookup(rdf.NewIRI("Karl_Marx"))
	foundEq := false
	for _, f := range fr.Fragments {
		if f.Minterm == nil {
			continue
		}
		for _, c := range f.Minterm.Constraints {
			if c.Equal && (c.Value == aristotle || c.Value == karl) {
				foundEq = true
			}
		}
	}
	if !foundEq {
		t.Error("no equality minterm harvested from workload constants")
	}
	// Horizontal fragments of one pattern with equality vs negation must
	// not share matched triples for the constrained vertex... weaker but
	// checkable: fragments are non-empty.
	for _, f := range fr.Fragments {
		if f.Graph.NumTriples() == 0 {
			t.Errorf("empty fragment %d survived", f.ID)
		}
	}
}

func TestMintermSatisfiesAndFilter(t *testing.T) {
	d := rdf.NewDict()
	pg := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	p := &mining.Pattern{Graph: pg, Code: mining.CanonicalCode(pg)}
	v1 := d.MustIRI("v1")
	v2 := d.MustIRI("v2")
	mt := &Minterm{Pattern: p, Constraints: []Constraint{
		{Vertex: 0, Equal: true, Value: v1},
		{Vertex: 1, Equal: false, Value: v2},
	}}
	if !mt.Satisfies([]rdf.ID{v1, v1}) {
		t.Error("binding satisfying minterm rejected")
	}
	if mt.Satisfies([]rdf.ID{v2, v1}) {
		t.Error("binding violating equality accepted")
	}
	if mt.Satisfies([]rdf.ID{v1, v2}) {
		t.Error("binding violating inequality accepted")
	}
	f := mt.VertexFilter()
	if !f(0, v1) || f(0, v2) || f(1, v2) || !f(1, v1) {
		t.Error("VertexFilter inconsistent with Satisfies")
	}
}

func TestMintermKeyCanonical(t *testing.T) {
	d := rdf.NewDict()
	pg := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	p := &mining.Pattern{Graph: pg, Code: mining.CanonicalCode(pg)}
	a := Constraint{Vertex: 0, Equal: true, Value: 1}
	b := Constraint{Vertex: 1, Equal: false, Value: 2}
	m1 := &Minterm{Pattern: p, Constraints: []Constraint{a, b}}
	m2 := &Minterm{Pattern: p, Constraints: []Constraint{b, a}}
	if m1.Key() != m2.Key() {
		t.Errorf("keys differ for reordered constraints:\n%s\n%s", m1.Key(), m2.Key())
	}
}

func TestEnumerateMintermsSkipsContradictions(t *testing.T) {
	d := rdf.NewDict()
	pg := sparql.MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	p := &mining.Pattern{Graph: pg, Code: mining.CanonicalCode(pg)}
	preds := []simplePred{
		{vertex: 0, value: 10, count: 5},
		{vertex: 0, value: 11, count: 4},
	}
	ms := enumerateMinterms(p, preds)
	// 4 combinations minus the (v0=10 ∧ v0=11) contradiction = 3.
	if len(ms) != 3 {
		t.Fatalf("minterms = %d, want 3", len(ms))
	}
}

func TestHorizontalMoreFragmentsThanVertical(t *testing.T) {
	g := figure1Graph()
	w := figure2Workload(g.Dict)
	hc := SplitHotCold(g, w, 2)
	sel := buildSelection(t, g, w, hc)
	vf := Vertical(sel, hc)
	hf := Horizontal(sel, w, hc, HorizontalOptions{})
	if len(hf.Fragments) < len(vf.Fragments) {
		t.Errorf("horizontal fragments (%d) fewer than vertical (%d)",
			len(hf.Fragments), len(vf.Fragments))
	}
}

func TestRedundancyMetric(t *testing.T) {
	g := figure1Graph()
	w := figure2Workload(g.Dict)
	hc := SplitHotCold(g, w, 2)
	sel := buildSelection(t, g, w, hc)
	vf := Vertical(sel, hc)
	hf := Horizontal(sel, w, hc, HorizontalOptions{})
	rv, rh := vf.Redundancy(g), hf.Redundancy(g)
	if rv < 1 || rh < 1 {
		t.Errorf("redundancy below 1: VF=%f HF=%f", rv, rh)
	}
	if rv > 5 || rh > 5 {
		t.Errorf("implausible redundancy: VF=%f HF=%f", rv, rh)
	}
}

func TestHotColdThetaSweep(t *testing.T) {
	g := figure1Graph()
	w := figure2Workload(g.Dict)
	prevHot := g.NumTriples() + 1
	for _, theta := range []int{1, 3, 7, 100} {
		hc := SplitHotCold(g, w, theta)
		if hc.Hot.NumTriples() > prevHot {
			t.Errorf("hot graph grew as theta rose (theta=%d)", theta)
		}
		prevHot = hc.Hot.NumTriples()
	}
}

// Package fragment implements Sections 3 and 5 of the paper: the hot/cold
// graph split, vertical fragmentation from frequent access patterns
// (Definition 10), and horizontal fragmentation from structural minterm
// predicates (Definitions 11–12).
package fragment

import (
	"fmt"
	"sort"
	"strings"

	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
)

// Kind distinguishes how a fragment was generated.
type Kind uint8

const (
	// VerticalKind fragments hold all matches of one access pattern.
	VerticalKind Kind = iota
	// HorizontalKind fragments hold the matches of one access pattern
	// restricted by a structural minterm predicate.
	HorizontalKind
	// ColdKind is the single fragment holding the cold graph.
	ColdKind
)

func (k Kind) String() string {
	switch k {
	case VerticalKind:
		return "vertical"
	case HorizontalKind:
		return "horizontal"
	case ColdKind:
		return "cold"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fragment is one fragment of the RDF graph (Definition 3 allows overlap).
type Fragment struct {
	ID      int
	Kind    Kind
	Pattern *mining.Pattern // generating FAP; nil for the cold fragment
	Minterm *Minterm        // non-nil only for horizontal fragments
	Graph   *rdf.Graph      // the fragment's triples
}

// Key identifies the fragment's generating pattern (with constraints) in
// the data dictionary.
func (f *Fragment) Key() string {
	switch {
	case f.Kind == ColdKind:
		return "cold"
	case f.Minterm != nil:
		return f.Minterm.Key()
	default:
		return f.Pattern.Code
	}
}

// Fragmentation is a complete fragmentation F of the RDF graph.
type Fragmentation struct {
	Kind      Kind
	Fragments []*Fragment
	Hot       *rdf.Graph
	Cold      *Fragment // cold graph as a single black-box fragment
}

// All returns hot fragments plus the cold fragment (if non-empty).
func (fr *Fragmentation) All() []*Fragment {
	out := append([]*Fragment(nil), fr.Fragments...)
	if fr.Cold != nil && fr.Cold.Graph.NumTriples() > 0 {
		out = append(out, fr.Cold)
	}
	return out
}

// Redundancy returns the ratio of the total number of edges over all
// fragments (hot + cold) to the number of edges in the original graph
// (Table 1's metric).
func (fr *Fragmentation) Redundancy(original *rdf.Graph) float64 {
	total := 0
	for _, f := range fr.All() {
		total += f.Graph.NumTriples()
	}
	if original.NumTriples() == 0 {
		return 0
	}
	return float64(total) / float64(original.NumTriples())
}

// CoversHotGraph verifies data integrity: every hot edge appears in at
// least one hot fragment. It returns the missing triples (nil when
// complete).
func (fr *Fragmentation) CoversHotGraph() []rdf.Triple {
	var missing []rdf.Triple
	for _, t := range fr.Hot.Triples() {
		found := false
		for _, f := range fr.Fragments {
			if f.Graph.Has(t) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, t)
		}
	}
	return missing
}

// Constraint is one structural simple predicate p(var) θ Value bound to a
// pattern vertex (Section 5.2.1), in positive (Equal) or negated form.
type Constraint struct {
	Vertex int // pattern vertex index
	Equal  bool
	Value  rdf.ID
}

// Minterm is a structural minterm predicate: a conjunction of simple
// predicates over one access pattern.
type Minterm struct {
	Pattern     *mining.Pattern
	Constraints []Constraint
}

// Key renders a canonical dictionary key: pattern code plus sorted
// constraint terms.
func (m *Minterm) Key() string {
	parts := make([]string, len(m.Constraints))
	for i, c := range m.Constraints {
		op := "!="
		if c.Equal {
			op = "="
		}
		parts[i] = fmt.Sprintf("v%d%s%d", c.Vertex, op, c.Value)
	}
	sort.Strings(parts)
	return m.Pattern.Code + "|" + strings.Join(parts, "&")
}

// Satisfies reports whether a full vertex binding of the pattern satisfies
// the minterm.
func (m *Minterm) Satisfies(binding []rdf.ID) bool {
	for _, c := range m.Constraints {
		got := binding[c.Vertex]
		if c.Equal && got != c.Value {
			return false
		}
		if !c.Equal && got == c.Value {
			return false
		}
	}
	return true
}

// VertexFilter adapts the minterm to match.Options.VertexFilter.
func (m *Minterm) VertexFilter() func(qv int, id rdf.ID) bool {
	byVertex := make(map[int][]Constraint)
	for _, c := range m.Constraints {
		byVertex[c.Vertex] = append(byVertex[c.Vertex], c)
	}
	return func(qv int, id rdf.ID) bool {
		for _, c := range byVertex[qv] {
			if c.Equal && id != c.Value {
				return false
			}
			if !c.Equal && id == c.Value {
				return false
			}
		}
		return true
	}
}

// String renders the minterm with decoded constants for debugging.
func (m *Minterm) String() string {
	parts := make([]string, len(m.Constraints))
	for i, c := range m.Constraints {
		op := "≠"
		if c.Equal {
			op = "="
		}
		parts[i] = fmt.Sprintf("p(v%d)%s%d", c.Vertex, op, c.Value)
	}
	return strings.Join(parts, " ∧ ")
}

package fragment

import (
	"rdffrag/internal/fap"
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// Vertical builds the vertical fragmentation (Definition 10): one fragment
// per selected frequent access pattern, containing the subgraph of the hot
// graph induced by all matches of the pattern. The cold graph becomes one
// black-box fragment.
func Vertical(sel *fap.Selection, hc *HotCold) *Fragmentation {
	fr := &Fragmentation{Kind: VerticalKind, Hot: hc.Hot}
	hsn := hc.Hot.Snapshot()
	defer hsn.Close()
	id := 0
	for _, p := range sel.Patterns {
		g := match.MatchedGraph(p.Graph, hsn, match.Options{})
		if g.NumTriples() == 0 && p.Size() > 1 {
			continue // multi-edge pattern with no matches adds nothing
		}
		g.Freeze() // fragments are immutable once placed at a site
		fr.Fragments = append(fr.Fragments, &Fragment{
			ID:      id,
			Kind:    VerticalKind,
			Pattern: p,
			Graph:   g,
		})
		id++
	}
	fr.Cold = &Fragment{ID: id, Kind: ColdKind, Graph: coldGraph(hc)}
	return fr
}

func coldGraph(hc *HotCold) *rdf.Graph {
	if hc.Cold != nil {
		hc.Cold.Freeze()
		return hc.Cold
	}
	return rdf.NewGraph(hc.Hot.Dict)
}

package serve_test

// Reader/writer soak for the live-update path: concurrent clients replay
// join-heavy queries while one writer streams Add batches through
// Server.Update, pushing the frozen graphs' delta overlays through
// several compactions. Run under -race in CI. The invariants are the
// ones a torn read or a lost lock would break: every successful query
// sees a consistent snapshot (row counts over an insert-only stream are
// monotonically non-decreasing), the final state serves exactly the
// initial+added rows, update metrics add up, no goroutines leak, and the
// queue/in-flight gauges return to idle after Close.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/fragment"
	"rdffrag/internal/rdf"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
	"rdffrag/internal/testenv"
)

// testApply mirrors the deployment layer's update routing over a testenv
// fixture: the global graph always takes an inserted triple;
// hot-predicate triples additionally go to the hot graph and every
// fragment whose generating pattern uses the predicate, everything else
// to the cold graph and cold fragment. Deletes tombstone the triple
// everywhere it may have landed. A batch's delete-set applies before its
// insert-set, matching the deployment's overwrite semantics.
func testApply(env *testenv.Env) func(b serve.Batch) (serve.UpdateStats, error) {
	usesPred := func(f *fragment.Fragment, p rdf.ID) bool {
		if f.Pattern == nil {
			return false
		}
		for _, e := range f.Pattern.Graph.Edges {
			if e.IsPredVar() || e.Pred == p {
				return true
			}
		}
		return false
	}
	return func(b serve.Batch) (serve.UpdateStats, error) {
		added, deleted := 0, 0
		for _, t := range b.Del {
			if !env.G.Delete(t) {
				continue
			}
			deleted++
			if env.HC.FreqProps[t.P] {
				env.HC.Hot.Delete(t)
			} else {
				env.HC.Cold.Delete(t)
			}
			for _, f := range env.Frag.Fragments {
				f.Graph.Delete(t)
			}
			env.Frag.Cold.Graph.Delete(t)
		}
		for _, t := range b.Ins {
			if !env.G.Add(t) {
				continue
			}
			added++
			placed := false
			if env.HC.FreqProps[t.P] {
				env.HC.Hot.Add(t)
				for _, f := range env.Frag.Fragments {
					if usesPred(f, t.P) {
						f.Graph.Add(t)
						placed = true
					}
				}
			} else {
				env.HC.Cold.Add(t)
			}
			if !placed {
				env.Frag.Cold.Graph.Add(t)
			}
		}
		return serve.UpdateStats{
			Added:        added,
			Deleted:      deleted,
			DeltaTriples: env.G.DeltaLen(),
			Compactions:  env.G.Compactions(),
		}, nil
	}
}

func TestServerUpdateSoak(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze() // updates must ride the delta overlay, not map mode

	before := runtime.NumGoroutine()
	srv := serve.New(engine, serve.Config{
		Workers:     6,
		QueueDepth:  256,
		Parallelism: 4,
		Apply:       testApply(env),
	})

	countQ := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`)
	baseRows := 0
	{
		resp, err := srv.Query(context.Background(), countQ)
		if err != nil {
			t.Fatalf("baseline query: %v", err)
		}
		baseRows = len(resp.Bindings.Rows)
	}

	const (
		clients = 8
		iters   = 25
		batches = 30
		perB    = 8 // triples per update batch: 4 new persons × (name + mainInterest)
	)

	var wg sync.WaitGroup
	errCh := make(chan error, clients+1)
	var stopReaders atomic.Bool

	// Writer: stream batches of new persons through the update path. Each
	// person contributes one row to countQ, so visibility is countable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stopReaders.Store(true)
		person := 10000
		for b := 0; b < batches; b++ {
			ts := make([]rdf.Triple, 0, perB)
			for i := 0; i < perB/2; i++ {
				s := env.G.Dict.MustIRI(fmt.Sprintf("Upd%d", person))
				ts = append(ts,
					rdf.Triple{S: s, P: env.G.Dict.MustIRI("name"), O: env.G.Dict.MustLiteral(fmt.Sprintf("Upd %d", person))},
					rdf.Triple{S: s, P: env.G.Dict.MustIRI("mainInterest"), O: env.G.Dict.MustIRI(fmt.Sprintf("Interest%d", person%5))},
				)
				person++
			}
			st, err := srv.Update(context.Background(), ts)
			if err != nil {
				errCh <- fmt.Errorf("writer batch %d: %w", b, err)
				return
			}
			if st.Added != len(ts) {
				errCh <- fmt.Errorf("writer batch %d: added %d of %d", b, st.Added, len(ts))
				return
			}
		}
	}()

	// Readers: row counts over an insert-only stream must never go
	// backwards — a torn snapshot (query observing a half-applied batch
	// or a mid-compaction index) is exactly what would break this.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(77 + c)))
			lastRows := -1
			for i := 0; i < iters || !stopReaders.Load(); i++ {
				q := countQ
				if rng.Intn(3) == 0 {
					q = parsedSoak(t, env, rng)
				}
				resp, err := srv.Query(context.Background(), q)
				switch {
				case errors.Is(err, serve.ErrOverloaded):
					time.Sleep(time.Millisecond)
					continue
				case err != nil:
					errCh <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				if q == countQ {
					rows := len(resp.Bindings.Rows)
					if rows < lastRows {
						errCh <- fmt.Errorf("client %d: rows went backwards: %d after %d (torn read?)", c, rows, lastRows)
						return
					}
					lastRows = rows
				}
				if i > 10*iters {
					return // safety valve if the writer stalls
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final state: exactly initial + added persons visible.
	resp, err := srv.Query(context.Background(), countQ)
	if err != nil {
		t.Fatalf("final query: %v", err)
	}
	wantRows := baseRows + batches*perB/2
	if got := len(resp.Bindings.Rows); got != wantRows {
		t.Errorf("final rows = %d, want %d (updates lost or duplicated)", got, wantRows)
	}

	m := srv.Metrics()
	if m.Updates != batches {
		t.Errorf("Updates = %d, want %d", m.Updates, batches)
	}
	if m.TriplesAdded != batches*perB {
		t.Errorf("TriplesAdded = %d, want %d", m.TriplesAdded, batches*perB)
	}
	// 240 global adds against a ~300-triple base must have crossed the
	// compaction threshold at least once; the gauge then reflects the
	// post-compaction delta.
	if m.Compactions == 0 {
		t.Errorf("Compactions = 0 after %d adds (threshold never crossed?)", batches*perB)
	}
	if m.DeltaTriples != env.G.DeltaLen() {
		t.Errorf("DeltaTriples gauge %d != graph delta %d", m.DeltaTriples, env.G.DeltaLen())
	}

	srv.Close()
	m = srv.Metrics()
	if m.QueueDepth != 0 || m.InFlight != 0 {
		t.Errorf("queue=%d in-flight=%d after Close, want 0/0", m.QueueDepth, m.InFlight)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+8 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before soak, %d after drain", before, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// parsedSoak picks a random background query to keep mixed traffic
// flowing alongside the counted one.
func parsedSoak(t *testing.T, env *testenv.Env, rng *rand.Rand) *sparql.Graph {
	t.Helper()
	return sparql.MustParse(env.G.Dict, soakQueries[rng.Intn(len(soakQueries))])
}

// TestServerDeleteRoutesThroughApply: Server.Delete shares the update
// path — serialized with inserts, counted in Deleted stats and the
// TriplesDeleted metric, and visible to the next query; deleting a
// never-inserted triple is a no-op, not a phantom.
func TestServerDeleteRoutesThroughApply(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze()
	srv := serve.New(engine, serve.Config{Apply: testApply(env)})
	defer srv.Close()

	q := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	base, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	s := env.G.Dict.MustIRI("del-target")
	ts := []rdf.Triple{{S: s, P: env.G.Dict.MustIRI("name"), O: env.G.Dict.MustLiteral("Del Target")}}
	if st, err := srv.Update(context.Background(), ts); err != nil || st.Added != 1 {
		t.Fatalf("insert: stats %+v, err %v", st, err)
	}

	st, err := srv.Delete(context.Background(), ts)
	if err != nil || st.Deleted != 1 {
		t.Fatalf("delete: stats %+v, err %v", st, err)
	}
	after, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Bindings.Rows) != len(base.Bindings.Rows) {
		t.Fatalf("delete not visible: %d rows, want %d", len(after.Bindings.Rows), len(base.Bindings.Rows))
	}

	// Deleting it again (now absent) must count zero.
	st, err = srv.Delete(context.Background(), ts)
	if err != nil || st.Deleted != 0 {
		t.Fatalf("re-delete of absent triple: stats %+v, err %v", st, err)
	}

	m := srv.Metrics()
	if m.TriplesDeleted != 1 {
		t.Fatalf("TriplesDeleted = %d, want 1", m.TriplesDeleted)
	}
	if m.TriplesAdded != 1 || m.Updates != 3 {
		t.Fatalf("gauges after insert+2 deletes: %+v", m)
	}
}

// TestUpdateNoSink: a server without an Apply sink rejects updates.
func TestUpdateNoSink(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	srv := serve.New(engine, serve.Config{})
	defer srv.Close()
	_, err := srv.Update(context.Background(), []rdf.Triple{{S: 1, P: 2, O: 3}})
	if !errors.Is(err, serve.ErrNoUpdater) {
		t.Fatalf("Update without sink: err = %v, want ErrNoUpdater", err)
	}
	_ = env
}

// TestUpdateAfterClose: updates after Close fail with ErrClosed.
func TestUpdateAfterClose(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	srv := serve.New(engine, serve.Config{Apply: testApply(env)})
	srv.Close()
	if _, err := srv.Update(context.Background(), []rdf.Triple{{S: 1, P: 2, O: 3}}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Update after Close: err = %v, want ErrClosed", err)
	}
}

package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rdffrag/internal/cluster"
)

// latencyWindow is how many recent per-query latencies the percentile
// estimator keeps (a sliding window; old samples are overwritten).
const latencyWindow = 4096

// Metrics is a point-in-time snapshot of the server's behaviour.
type Metrics struct {
	// Uptime since the server started.
	Uptime time.Duration
	// Completed, Failed, Rejected and TimedOut count finished queries;
	// TimedOut is the subset of Failed that hit the per-query deadline.
	Completed uint64
	Failed    uint64
	Rejected  uint64
	TimedOut  uint64
	// QueueDepth and InFlight are instantaneous gauges.
	QueueDepth int
	InFlight   int
	// QPS is completed queries per second of uptime.
	QPS float64
	// P50, P95 and P99 are latency percentiles over the recent window
	// (zero until the first completion).
	P50, P95, P99 time.Duration
	// CacheHits/CacheMisses count plan-cache lookups; CacheHitRate is
	// hits over lookups (zero when no lookups happened).
	CacheHits    uint64
	CacheMisses  uint64
	CacheHitRate float64
	// ParallelismBudget is the configured machine-wide intra-query
	// worker budget; EffectiveParallelism is the average per-query
	// parallelism actually granted (budget divided by concurrent load),
	// zero until the first execution.
	ParallelismBudget    int
	EffectiveParallelism float64
	// JoinPartitionsCap is the configured per-stage join partition
	// override (0 = derived per query from its parallelism grant);
	// EffectiveJoinPartitions is the average per-stage partition count
	// completed join-bearing queries actually ran with, zero until the
	// first such completion.
	JoinPartitionsCap       int
	EffectiveJoinPartitions float64
	// Updates counts applied live-update batches (inserts and deletes);
	// TriplesAdded is the total of new triples insert batches contributed
	// (duplicates excluded) and TriplesDeleted the total delete batches
	// removed (absent triples excluded).
	Updates        uint64
	TriplesAdded   uint64
	TriplesDeleted uint64
	// DeltaTriples is the global graph's delta overlay size after the
	// most recent update (0 right after a compaction); Compactions is
	// its cumulative compaction count. Both are zero until the first
	// update.
	DeltaTriples int
	Compactions  uint64
	// SweepRuns counts TTL sweeper passes that issued a delete batch for
	// expired triples (idle passes with nothing due are not counted);
	// SweptTriples totals the triples those batches actually removed.
	SweepRuns    uint64
	SweptTriples uint64
	// PartialResults counts completed queries that returned flagged
	// partial results because one or more remote sites stayed
	// unavailable through their retry budget (degraded mode only;
	// strict mode fails such queries instead).
	PartialResults uint64
	// Sites reports per-remote-site robustness counters (calls,
	// retries, hedges, breaker state, p99), ordered by site ID; empty
	// when every site is in-process.
	Sites []cluster.SiteMetrics
	// Generations counts CSR generations still alive across the
	// deployment's graphs (current plus retired-but-pinned);
	// PinnedSnapshots counts snapshot pins currently held by in-flight
	// queries. Together they are the MVCC health gauges: Generations
	// settling back to the graph count after updates shows old
	// generations being reclaimed once their last reader drains.
	Generations     int
	PinnedSnapshots int
	// WAL reports the durability layer's counters; nil when the server
	// fronts a non-durable deployment (Config.WALStats unset).
	WAL *WALMetrics
}

// WALMetrics is the durability layer's snapshot: write-ahead-log
// counters plus checkpoint/recovery progress.
type WALMetrics struct {
	// SyncPolicy is the configured fsync policy ("always", "interval",
	// "none").
	SyncPolicy string
	// Appends, Fsyncs and AppendedBytes count WAL records written,
	// completed fsyncs and on-disk bytes appended since startup.
	Appends       uint64
	Fsyncs        uint64
	AppendedBytes uint64
	// LiveBytes and Segments describe the log's current footprint;
	// LastSeq is the newest record's sequence number.
	LiveBytes int64
	Segments  int
	LastSeq   uint64
	// CheckpointSeq is the WAL sequence the latest checkpoint covers;
	// Checkpoints counts checkpoints written since startup.
	CheckpointSeq uint64
	Checkpoints   uint64
	// ReplayedRecords is how many WAL records startup recovery applied
	// (0 after a clean shutdown).
	ReplayedRecords uint64
	// AppendP99 and FsyncP99 are recent-window latency percentiles.
	AppendP99 time.Duration
	FsyncP99  time.Duration
}

// collector accumulates metrics from concurrent workers.
type collector struct {
	start        time.Time
	completed    atomic.Uint64
	failed       atomic.Uint64
	rejected     atomic.Uint64
	timedOut     atomic.Uint64
	queued       atomic.Int64
	inflight     atomic.Int64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	parSum       atomic.Int64  // sum of granted per-query parallelism
	parCount     atomic.Int64  // executions the sum covers
	joinSum      atomic.Int64  // sum of per-stage join partitions ran with
	joinCount    atomic.Int64  // join-bearing completions the sum covers
	partials     atomic.Uint64 // completions flagged partial (sites skipped)
	updates      atomic.Uint64 // applied live-update batches
	triplesAdd   atomic.Uint64 // new triples insert batches contributed
	triplesDel   atomic.Uint64 // triples delete batches removed
	deltaGauge   atomic.Int64  // global delta size after the last update
	compactions  atomic.Uint64 // global graph's cumulative compactions
	sweepRuns    atomic.Uint64 // TTL sweeps that issued a delete batch
	sweptTriples atomic.Uint64 // triples TTL sweeps removed

	mu   sync.Mutex
	lats []time.Duration // ring buffer of recent latencies
	next int
}

func newCollector() *collector {
	return &collector{start: time.Now(), lats: make([]time.Duration, 0, latencyWindow)}
}

// parallelism records the intra-query worker budget granted to one
// execution.
func (m *collector) parallelism(eff int) {
	m.parSum.Add(int64(eff))
	m.parCount.Add(1)
}

// joinPartitions records the per-stage join partition count one completed
// execution ran with; plans without join stages report 0 and are not
// counted.
func (m *collector) joinPartitions(p int) {
	if p <= 0 {
		return
	}
	m.joinSum.Add(int64(p))
	m.joinCount.Add(1)
}

// update records one applied live-update batch.
func (m *collector) update(st UpdateStats) {
	m.updates.Add(1)
	m.triplesAdd.Add(uint64(st.Added))
	m.triplesDel.Add(uint64(st.Deleted))
	m.deltaGauge.Store(int64(st.DeltaTriples))
	m.compactions.Store(st.Compactions)
}

func (m *collector) complete(lat time.Duration) {
	m.completed.Add(1)
	m.mu.Lock()
	if len(m.lats) < latencyWindow {
		m.lats = append(m.lats, lat)
	} else {
		m.lats[m.next] = lat
		m.next = (m.next + 1) % latencyWindow
	}
	m.mu.Unlock()
}

func (m *collector) snapshot() Metrics {
	s := Metrics{
		Uptime:         time.Since(m.start),
		Completed:      m.completed.Load(),
		Failed:         m.failed.Load(),
		Rejected:       m.rejected.Load(),
		TimedOut:       m.timedOut.Load(),
		QueueDepth:     int(m.queued.Load()),
		InFlight:       int(m.inflight.Load()),
		CacheHits:      m.cacheHits.Load(),
		CacheMisses:    m.cacheMisses.Load(),
		PartialResults: m.partials.Load(),
		Updates:        m.updates.Load(),
		TriplesAdded:   m.triplesAdd.Load(),
		TriplesDeleted: m.triplesDel.Load(),
		DeltaTriples:   int(m.deltaGauge.Load()),
		Compactions:    m.compactions.Load(),
		SweepRuns:      m.sweepRuns.Load(),
		SweptTriples:   m.sweptTriples.Load(),
	}
	if sec := s.Uptime.Seconds(); sec > 0 {
		s.QPS = float64(s.Completed) / sec
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	if n := m.parCount.Load(); n > 0 {
		s.EffectiveParallelism = float64(m.parSum.Load()) / float64(n)
	}
	if n := m.joinCount.Load(); n > 0 {
		s.EffectiveJoinPartitions = float64(m.joinSum.Load()) / float64(n)
	}
	m.mu.Lock()
	lats := append([]time.Duration(nil), m.lats...)
	m.mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		s.P50 = percentile(lats, 0.50)
		s.P95 = percentile(lats, 0.95)
		s.P99 = percentile(lats, 0.99)
	}
	return s
}

// percentile reads the p-th percentile from a sorted sample (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

package serve_test

// MVCC soak for the lock-free query path: slow join queries (simulated
// network latency on every cluster message) run continuously while a
// writer streams update batches through several compactions. Run under
// -race in CI. The invariants are exactly what the Snapshot redesign
// promises over the old data lock: writers never wait behind a
// long-running query (every update completes in a fraction of one query's
// latency), queries observe whole batches only (the published view cut),
// and when the load drains the generation and pinned-snapshot gauges
// settle back to their idle baseline — no retired CSR build outlives its
// last reader.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/rdf"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
)

func TestServerMVCCWritersNeverBlockedByReaders(t *testing.T) {
	// Every cluster message costs 3ms, so each two-pattern join query
	// spends >=10ms in flight — an eternity next to an update batch.
	engine, env := newEngine(t, cluster.Delay{PerMessage: 3 * time.Millisecond})
	env.G.Freeze()
	env.G.SetAutoCompact(0.05) // force >=2 global compactions during the soak

	srv := serve.New(engine, serve.Config{
		Workers:     8,
		QueueDepth:  64,
		Parallelism: 2,
		Apply:       testApply(env),
	})
	defer srv.Close()

	countQ := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`)
	baseResp, err := srv.Query(context.Background(), countQ)
	if err != nil {
		t.Fatalf("baseline query: %v", err)
	}
	baseRows := len(baseResp.Bindings.Rows)
	idleGens := srv.Metrics().Generations // one live generation per graph

	const (
		readers = 4
		queries = 12 // slow queries per reader
		minB    = 30 // writer floor; it keeps going while readers run
		perB    = 8  // 4 persons x (name + mainInterest) per batch
	)

	var (
		readerWG    sync.WaitGroup
		writerWG    sync.WaitGroup
		errCh       = make(chan error, readers+1)
		readersDone atomic.Bool
		qmu         sync.Mutex
		queryDurs   []time.Duration
		maxUpdate   time.Duration // written only by the writer goroutine
	)

	// Readers: continuously run the slow join and check batch atomicity —
	// each update batch contributes exactly 4 rows, so any row count not
	// a multiple of 4 above the base means a query saw a half-applied
	// batch (a torn view cut). Monotonicity guards against reading a
	// stale pre-pinned state after a newer one was observed.
	for c := 0; c < readers; c++ {
		readerWG.Add(1)
		go func(c int) {
			defer readerWG.Done()
			lastRows := -1
			for i := 0; i < queries; i++ {
				begin := time.Now()
				resp, err := srv.Query(context.Background(), countQ)
				if errors.Is(err, serve.ErrOverloaded) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", c, err)
					return
				}
				dur := time.Since(begin)
				rows := len(resp.Bindings.Rows)
				if (rows-baseRows)%4 != 0 {
					errCh <- fmt.Errorf("reader %d: rows = %d (base %d): query saw a torn update batch", c, rows, baseRows)
					return
				}
				if rows < lastRows {
					errCh <- fmt.Errorf("reader %d: rows went backwards: %d after %d", c, rows, lastRows)
					return
				}
				lastRows = rows
				qmu.Lock()
				queryDurs = append(queryDurs, dur)
				qmu.Unlock()
			}
		}(c)
	}

	// Writer: keep streaming batches for as long as the readers are
	// querying, timing each Update end to end. Under the old data lock
	// every one of these would park behind whatever query held the read
	// lock; under MVCC none of them should ever come close to a query's
	// latency.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		person := 50000
		for b := 0; b < minB || !readersDone.Load(); b++ {
			ts := make([]rdf.Triple, 0, perB)
			for i := 0; i < perB/2; i++ {
				s := env.G.Dict.MustIRI(fmt.Sprintf("Mvcc%d", person))
				ts = append(ts,
					rdf.Triple{S: s, P: env.G.Dict.MustIRI("name"), O: env.G.Dict.MustLiteral(fmt.Sprintf("Mvcc %d", person))},
					rdf.Triple{S: s, P: env.G.Dict.MustIRI("mainInterest"), O: env.G.Dict.MustIRI(fmt.Sprintf("Interest%d", person%5))},
				)
				person++
			}
			begin := time.Now()
			if _, err := srv.Update(context.Background(), ts); err != nil {
				errCh <- fmt.Errorf("writer batch %d: %w", b, err)
				return
			}
			if dur := time.Since(begin); dur > maxUpdate {
				maxUpdate = dur
			}
			time.Sleep(time.Millisecond)
			if b > 100*minB {
				errCh <- fmt.Errorf("writer: readers never finished after %d batches", b)
				return
			}
		}
	}()

	readerWG.Wait()
	readersDone.Store(true)
	writerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The headline acceptance property: the slowest update must still be
	// far quicker than an average query. A lock-based writer would have
	// waited out at least one full query latency.
	var total time.Duration
	for _, d := range queryDurs {
		total += d
	}
	meanQuery := total / time.Duration(len(queryDurs))
	if meanQuery < 5*time.Millisecond {
		t.Fatalf("mean query latency %v too low to prove non-blocking; raise the cluster delay", meanQuery)
	}
	if maxUpdate >= meanQuery {
		t.Errorf("slowest update took %v against a %v mean query latency: writer blocked behind readers", maxUpdate, meanQuery)
	}

	if m := srv.Metrics(); m.Compactions < 2 {
		t.Errorf("Compactions = %d during the soak, want >= 2 (the generation swap never exercised)", m.Compactions)
	}

	// Gauge drain: with no query in flight, every view handle has been
	// closed, so pins fall to zero and retired generations get pruned back
	// to exactly one live generation per graph. Poll briefly — the last
	// response is delivered concurrently with its handle's deferred Close.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m := srv.Metrics()
		if m.PinnedSnapshots == 0 && m.Generations == idleGens {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("MVCC gauges never drained: generations=%d (idle %d) pinned=%d",
				m.Generations, idleGens, m.PinnedSnapshots)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

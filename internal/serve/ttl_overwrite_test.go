package serve_test

// TTL expiry and atomic overwrite visibility at the serving layer. The
// sweeper's contract: a batch applied with a positive TTL is deleted —
// through the ordinary Apply path, so the deletion is WAL-logged and
// MVCC-published wherever the sink is durable — once its deadline
// passes, and never before; a failed sweep requeues instead of dropping
// expiries. The overwrite contract: a reader either sees a version's
// triples completely or not at all — the delete-set and insert-set land
// under one Publish, so no query observes the swap half done.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/rdf"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
)

// TestSweepExpiresTTLBatches: deterministic expiry via explicit Sweep
// calls (background sweeper disabled). Triples with a TTL vanish once
// the deadline passes; triples without one stay.
func TestSweepExpiresTTLBatches(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze()
	srv := serve.New(engine, serve.Config{Apply: testApply(env), SweepInterval: -1})
	defer srv.Close()

	mk := func(s, n string) []rdf.Triple {
		return []rdf.Triple{{
			S: env.G.Dict.MustIRI(s),
			P: env.G.Dict.MustIRI("name"),
			O: env.G.Dict.MustLiteral(n),
		}}
	}
	q := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	base, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	baseRows := len(base.Bindings.Rows)

	if _, err := srv.Apply(context.Background(), serve.Batch{Op: serve.OpInsert, Ins: mk("ttl-perm", "Permanent"), TTL: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(context.Background(), serve.Batch{Op: serve.OpInsert, Ins: mk("ttl-tmp", "Temporary"), TTL: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if n := srv.PendingExpiries(); n != 1 {
		t.Fatalf("PendingExpiries = %d, want 1 (only the TTL batch)", n)
	}

	// A sweep before the deadline removes nothing and keeps the entry.
	now := time.Now()
	if n := srv.Sweep(now); n != 0 {
		t.Fatalf("premature sweep removed %d triples", n)
	}
	if n := srv.PendingExpiries(); n != 1 {
		t.Fatalf("premature sweep dropped the expiry (pending = %d)", n)
	}

	// Past the deadline the batch goes away; the permanent one survives.
	if n := srv.Sweep(now.Add(time.Second)); n != 1 {
		t.Fatalf("sweep removed %d triples, want 1", n)
	}
	if n := srv.PendingExpiries(); n != 0 {
		t.Fatalf("pending expiries after sweep = %d, want 0", n)
	}
	after, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(after.Bindings.Rows), baseRows+1; got != want {
		t.Fatalf("rows after sweep = %d, want %d (permanent insert only)", got, want)
	}

	m := srv.Metrics()
	if m.SweepRuns != 1 || m.SweptTriples != 1 {
		t.Fatalf("sweep metrics: runs=%d swept=%d, want 1/1", m.SweepRuns, m.SweptTriples)
	}
}

// TestSweepRequeuesFailedBatches: when the Apply sink rejects the
// sweep's delete batch (a poisoned WAL would), the expiry is requeued
// and a later sweep retries it — expiries are never silently dropped.
func TestSweepRequeuesFailedBatches(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze()

	poisoned := errors.New("sink poisoned")
	var failDeletes atomic.Bool
	srv := serve.New(engine, serve.Config{
		SweepInterval: -1,
		Apply: func(b serve.Batch) (serve.UpdateStats, error) {
			if b.Op == serve.OpDelete && failDeletes.Load() {
				return serve.UpdateStats{}, poisoned
			}
			return testApply(env)(b)
		},
	})
	defer srv.Close()

	ins := []rdf.Triple{{
		S: env.G.Dict.MustIRI("ttl-requeue"),
		P: env.G.Dict.MustIRI("name"),
		O: env.G.Dict.MustLiteral("Requeue"),
	}}
	if _, err := srv.Apply(context.Background(), serve.Batch{Op: serve.OpInsert, Ins: ins, TTL: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	failDeletes.Store(true)
	due := time.Now().Add(time.Second)
	if n := srv.Sweep(due); n != 0 {
		t.Fatalf("failed sweep reported %d deletions", n)
	}
	if n := srv.PendingExpiries(); n != 1 {
		t.Fatalf("failed sweep lost the expiry (pending = %d)", n)
	}
	if m := srv.Metrics(); m.SweepRuns != 0 {
		t.Fatalf("failed sweep counted as a run (SweepRuns = %d)", m.SweepRuns)
	}

	failDeletes.Store(false)
	if n := srv.Sweep(due); n != 1 {
		t.Fatalf("retried sweep removed %d triples, want 1", n)
	}
	if n := srv.PendingExpiries(); n != 0 {
		t.Fatalf("pending expiries after retried sweep = %d, want 0", n)
	}
}

// TestBackgroundSweeperExpires: the background sweeper (no explicit
// Sweep calls) removes a TTL batch on its own within a few intervals.
func TestBackgroundSweeperExpires(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze()
	srv := serve.New(engine, serve.Config{Apply: testApply(env), SweepInterval: 5 * time.Millisecond})
	defer srv.Close()

	ins := []rdf.Triple{{
		S: env.G.Dict.MustIRI("ttl-bg"),
		P: env.G.Dict.MustIRI("name"),
		O: env.G.Dict.MustLiteral("Background"),
	}}
	if _, err := srv.Apply(context.Background(), serve.Batch{Op: serve.OpInsert, Ins: ins, TTL: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := srv.Metrics(); m.SweptTriples >= 1 {
			if m.SweepRuns == 0 {
				t.Fatalf("swept %d triples in 0 runs", m.SweptTriples)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("background sweeper never expired the batch: %+v", srv.Metrics())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOverwriteAtomicVisibilitySoak: a writer cycles a subject through
// versions via Overwrite (delete version v-1's two triples, insert
// version v's) while readers query both triples together. Every reader
// must see exactly one complete version — one row whose name and
// interest agree — never a half-swapped state (zero rows, or the two
// predicates disagreeing on the version). Run under -race in CI.
func TestOverwriteAtomicVisibilitySoak(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze()
	srv := serve.New(engine, serve.Config{Workers: 6, Apply: testApply(env), SweepInterval: -1})
	defer srv.Close()

	const versions = 60
	subj := env.G.Dict.MustIRI("OWSoak")
	name := env.G.Dict.MustIRI("name")
	interest := env.G.Dict.MustIRI("mainInterest")
	// Pre-intern every version's terms so readers can map row IDs back
	// to version numbers without touching the dictionary concurrently.
	nameOf := make(map[rdf.ID]int, versions+1)
	interestOf := make(map[rdf.ID]int, versions+1)
	verTriples := make([][]rdf.Triple, versions+1)
	for v := 0; v <= versions; v++ {
		n := env.G.Dict.MustLiteral(fmt.Sprintf("ow version %d", v))
		i := env.G.Dict.MustIRI(fmt.Sprintf("OWInterest%d", v))
		nameOf[n], interestOf[i] = v, v
		verTriples[v] = []rdf.Triple{
			{S: subj, P: name, O: n},
			{S: subj, P: interest, O: i},
		}
	}
	if _, err := srv.Update(context.Background(), verTriples[0]); err != nil {
		t.Fatal(err)
	}

	q := sparql.MustParse(env.G.Dict, `SELECT ?n ?i WHERE { <OWSoak> <name> ?n . <OWSoak> <mainInterest> ?i . }`)
	varIdx := func(vars []string, want string) int {
		for i, v := range vars {
			if v == want {
				return i
			}
		}
		return -1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 9)
	var stop atomic.Bool

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for v := 1; v <= versions; v++ {
			st, err := srv.Overwrite(context.Background(), verTriples[v-1], verTriples[v], 0)
			if err != nil {
				errCh <- fmt.Errorf("overwrite to v%d: %w", v, err)
				return
			}
			if st.Added != 2 || st.Deleted != 2 {
				errCh <- fmt.Errorf("overwrite to v%d: added=%d deleted=%d, want 2/2", v, st.Added, st.Deleted)
				return
			}
		}
	}()
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			last := -1
			for !stop.Load() {
				resp, err := srv.Query(context.Background(), q)
				if errors.Is(err, serve.ErrOverloaded) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", c, err)
					return
				}
				rows := resp.Bindings.Rows
				if len(rows) != 1 {
					errCh <- fmt.Errorf("reader %d: %d rows, want exactly 1 (torn overwrite)", c, len(rows))
					return
				}
				ni, ii := varIdx(resp.Bindings.Vars, "n"), varIdx(resp.Bindings.Vars, "i")
				if ni < 0 || ii < 0 {
					errCh <- fmt.Errorf("reader %d: vars %v missing n/i", c, resp.Bindings.Vars)
					return
				}
				nv, okN := nameOf[rows[0][ni]]
				iv, okI := interestOf[rows[0][ii]]
				if !okN || !okI || nv != iv {
					errCh <- fmt.Errorf("reader %d: name v%d (known=%v) vs interest v%d (known=%v): mixed versions", c, nv, okN, iv, okI)
					return
				}
				if nv < last {
					errCh <- fmt.Errorf("reader %d: version went backwards: v%d after v%d", c, nv, last)
					return
				}
				last = nv
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final state: exactly the last version.
	resp, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ni := varIdx(resp.Bindings.Vars, "n")
	if len(resp.Bindings.Rows) != 1 || ni < 0 || nameOf[resp.Bindings.Rows[0][ni]] != versions {
		t.Fatalf("final state: rows=%v, want single v%d row", resp.Bindings.Rows, versions)
	}
}

package serve_test

// BenchmarkUpdateLatencyUnderLoad measures what the MVCC redesign buys
// the writer: per-update latency while long-running queries (simulated
// network latency on every cluster message) are continuously in flight.
//
//   - /mvcc is the shipping architecture: queries pin a view at
//     admission and the writer appends + publishes without ever waiting
//     for them.
//   - /rwlock replays the pre-MVCC architecture on the same server: each
//     query holds a reader lock for its full duration and the writer
//     takes the write lock per batch — so every update waits out
//     whatever query currently holds the data lock.
//
// The ns/op gap (and the reported p99-ns metric) between the two is the
// headline number of the redesign: updates drop from
// query-latency-bound to microseconds.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/exec"
	"rdffrag/internal/rdf"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
	"rdffrag/internal/testenv"
)

func BenchmarkUpdateLatencyUnderLoad(b *testing.B) {
	b.Run("mvcc", func(b *testing.B) { benchUpdateUnderLoad(b, false) })
	b.Run("rwlock", func(b *testing.B) { benchUpdateUnderLoad(b, true) })
}

func benchUpdateUnderLoad(b *testing.B, lockBased bool) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	c := cluster.New(4, 2)
	c.Latency = cluster.Delay{PerMessage: 2 * time.Millisecond}
	engine, err := exec.New(c, env.Dict, env.Frag, env.Alloc, env.HC)
	if err != nil {
		b.Fatalf("exec.New: %v", err)
	}
	env.G.Freeze()
	srv := serve.New(engine, serve.Config{
		Workers:     4,
		QueueDepth:  64,
		Parallelism: 2,
		Apply:       testApply(env),
	})
	defer srv.Close()

	// dataMu simulates the retired architecture: under /rwlock every
	// query holds the read half for its full flight time and each update
	// takes the write half. Under /mvcc it is never touched.
	var dataMu sync.RWMutex
	slowQ := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`)
	stop := make(chan struct{})
	inFlight := make(chan struct{}) // closed once the first query is running
	var once sync.Once
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if lockBased {
					dataMu.RLock()
				}
				once.Do(func() { close(inFlight) })
				_, _ = srv.Query(context.Background(), slowQ)
				if lockBased {
					dataMu.RUnlock()
				}
			}
		}()
	}
	// Don't start the clock until a long query is genuinely in flight
	// (and, under /rwlock, holding the read lock): the whole point is to
	// measure update latency against live read traffic.
	<-inFlight

	// Pre-build the update batches so the timed loop is lock-wait +
	// apply + publish only. The triples use a predicate the benchmark
	// query never touches, so query latency (and with it the rwlock wait)
	// stays constant no matter how far b.N escalates.
	prop := env.G.Dict.MustIRI("benchProp")
	batches := make([][]rdf.Triple, b.N)
	for i := range batches {
		s := env.G.Dict.MustIRI(fmt.Sprintf("Bench%d", i))
		batches[i] = []rdf.Triple{
			{S: s, P: prop, O: env.G.Dict.MustIRI(fmt.Sprintf("Val%d", i%64))},
			{S: s, P: prop, O: env.G.Dict.MustIRI(fmt.Sprintf("Val%d", (i+1)%64))},
		}
	}
	lats := make([]time.Duration, 0, b.N)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		begin := time.Now()
		if lockBased {
			dataMu.Lock()
		}
		_, err := srv.Update(context.Background(), batches[i])
		if lockBased {
			dataMu.Unlock()
		}
		if err != nil {
			b.Fatalf("Update: %v", err)
		}
		lats = append(lats, time.Since(begin))
	}
	b.StopTimer()
	close(stop)
	readers.Wait()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	if len(lats)*99/100 >= len(lats) {
		p99 = lats[len(lats)-1]
	}
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
}

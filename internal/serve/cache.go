package serve

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rdffrag/internal/exec"
	"rdffrag/internal/sparql"
)

// canonKey canonicalizes a query's WHERE structure into a cache key: the
// edge list rendered with variable names and constant term IDs, sorted so
// that textual reorderings of the same pattern share a key. Variable
// names are kept verbatim — a prepared plan embeds the subquery graphs,
// so alpha-renamed queries must not share an entry. Projection, ORDER BY
// and LIMIT are deliberately excluded: a Prepared covers only
// decomposition and join order, which depend on the pattern alone.
func canonKey(q *sparql.Graph) string {
	edges := make([]string, 0, len(q.Edges))
	var b strings.Builder
	for _, e := range q.Edges {
		b.Reset()
		writeVert(&b, q, e.From)
		b.WriteByte('-')
		if e.IsPredVar() {
			b.WriteByte('?')
			b.WriteString(e.PredVar)
		} else {
			b.WriteString(strconv.FormatInt(int64(e.Pred), 10))
		}
		b.WriteByte('-')
		writeVert(&b, q, e.To)
		edges = append(edges, b.String())
	}
	sort.Strings(edges)
	return strings.Join(edges, "|")
}

func writeVert(b *strings.Builder, q *sparql.Graph, i int) {
	v := q.Verts[i]
	if v.IsVar() {
		b.WriteByte('?')
		b.WriteString(v.Var)
		return
	}
	b.WriteString(strconv.FormatInt(int64(v.Term), 10))
}

// planCache is a small mutex-guarded LRU of prepared plans. Entries are
// immutable (exec.Prepared is read-only after Prepare), so hits can be
// shared across concurrent workers without copying.
type planCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	idx map[string]*list.Element
}

type cacheEntry struct {
	key  string
	prep *exec.Prepared
}

// newPlanCache returns nil when capacity < 0 (caching disabled).
func newPlanCache(capacity int) *planCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = 128
	}
	return &planCache{cap: capacity, ll: list.New(), idx: make(map[string]*list.Element)}
}

func (c *planCache) get(key string) (*exec.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).prep, true
}

func (c *planCache) put(key string, prep *exec.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).prep = prep
		c.ll.MoveToFront(el)
		return
	}
	c.idx[key] = c.ll.PushFront(&cacheEntry{key: key, prep: prep})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.idx, last.Value.(*cacheEntry).key)
	}
}

package serve_test

// End-to-end server soak for the partitioned join pipeline: many
// concurrent clients replay join-heavy queries against rdffrag's serving
// layer while a share of the requests is cancelled mid-flight or given
// deadlines too tight to meet. The partitioned join spawns routers and
// partition workers per stage, so the invariants here are exactly the
// ones early termination could break: no goroutine leaks once the server
// closes, the admission queue and in-flight gauges return to zero, and
// the effective parallelism/join-partition grants never exceed the
// configured budget.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
)

// soakQueries is the join-heavy share of the workload: every query has
// at least two triple patterns, so every execution runs the control-site
// join pipeline (and, with parallelism granted, its partition fan-out).
var soakQueries = []string{
	`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`,
	`SELECT ?x WHERE { ?x <placeOfDeath> ?c . ?c <country> ?k . ?c <postalCode> ?z . }`,
	`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person3> . }`,
	`SELECT ?x WHERE { ?x <name> ?n . ?x <viaf> ?v . }`,
	`SELECT ?x WHERE { ?x <mainInterest> <Interest2> . ?x <influencedBy> ?y . ?y <mainInterest> ?j . }`,
	`SELECT ?x ?k WHERE { ?x <placeOfDeath> ?c . ?c <country> ?k . }`,
}

func TestServerSoakCancellationAndLeaks(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{PerMessage: 200 * time.Microsecond})
	parsed := make([]*sparql.Graph, len(soakQueries))
	for i, qs := range soakQueries {
		parsed[i] = sparql.MustParse(env.G.Dict, qs)
	}

	before := runtime.NumGoroutine()
	const budget = 4
	srv := serve.New(engine, serve.Config{
		Workers:     8,
		QueueDepth:  128,
		Timeout:     250 * time.Millisecond,
		Parallelism: budget,
	})

	const clients = 12
	const iters = 30
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < iters; i++ {
				q := parsed[rng.Intn(len(parsed))]
				err := func() error {
					ctx := context.Background()
					var cancel context.CancelFunc
					switch rng.Intn(4) {
					case 0:
						// Deadline often too tight to meet: expires in
						// the queue, mid-pipeline, or not at all.
						ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2000))*time.Microsecond)
					case 1:
						// Asynchronous mid-flight cancellation.
						ctx, cancel = context.WithCancel(ctx)
						go func(cancel context.CancelFunc, d time.Duration) {
							time.Sleep(d)
							cancel()
						}(cancel, time.Duration(rng.Intn(1500))*time.Microsecond)
					}
					if cancel != nil {
						defer cancel()
					}
					resp, err := srv.Query(ctx, q)
					switch {
					case err == nil:
						if resp.Stats.Parallelism > budget {
							return fmt.Errorf("client %d: granted parallelism %d exceeds budget %d", c, resp.Stats.Parallelism, budget)
						}
						if resp.Stats.JoinPartitions > budget {
							return fmt.Errorf("client %d: join partitions %d exceed budget %d", c, resp.Stats.JoinPartitions, budget)
						}
					case errors.Is(err, context.Canceled),
						errors.Is(err, context.DeadlineExceeded),
						errors.Is(err, serve.ErrOverloaded):
						// Expected under soak.
					default:
						return fmt.Errorf("client %d: unexpected error: %w", c, err)
					}
					return nil
				}()
				if err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if m.Completed == 0 {
		t.Fatal("soak completed no queries")
	}
	if m.EffectiveParallelism > budget {
		t.Errorf("effective parallelism %.2f exceeds budget %d", m.EffectiveParallelism, budget)
	}
	if m.EffectiveJoinPartitions > budget {
		t.Errorf("effective join partitions %.2f exceed budget %d", m.EffectiveJoinPartitions, budget)
	}

	srv.Close()
	m = srv.Metrics()
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after Close, want 0", m.QueueDepth)
	}
	if m.InFlight != 0 {
		t.Errorf("in-flight %d after Close, want 0", m.InFlight)
	}

	// Goroutine-leak bound: abandoned executions (the server keeps
	// running a query its client cancelled) and partition workers must
	// all unwind once the server has drained. Allow brief settling and a
	// small slack for runtime/test goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+8 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before soak, %d after drain", before, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package serve_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/exec"
	"rdffrag/internal/match"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
	"rdffrag/internal/testenv"
)

var testQueries = []string{
	`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`,
	`SELECT ?x WHERE { ?x <placeOfDeath> ?c . ?c <country> ?k . ?c <postalCode> ?z . }`,
	`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person3> . }`,
	`SELECT ?x ?v WHERE { ?x <viaf> ?v . }`,
	`SELECT ?x WHERE { ?x <name> ?n . ?x <viaf> ?v . }`,
	`SELECT ?x ?c WHERE { ?x <placeOfDeath> ?c . }`,
	`SELECT ?x WHERE { ?x <mainInterest> <Interest2> . ?x <influencedBy> ?y . ?y <mainInterest> ?j . }`,
}

func newEngine(t *testing.T, latency cluster.Delay) (*exec.Engine, *testenv.Env) {
	t.Helper()
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := cluster.New(4, 2)
	c.Latency = latency
	e, err := exec.New(c, env.Dict, env.Frag, env.Alloc, env.HC)
	if err != nil {
		t.Fatalf("exec.New: %v", err)
	}
	return e, env
}

func rowSet(b *match.Bindings) map[string]int {
	m := make(map[string]int)
	for _, r := range b.Rows {
		m[fmt.Sprint(r)]++
	}
	return m
}

func sameBindings(a, b *match.Bindings) bool {
	if len(a.Vars) != len(b.Vars) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return false
		}
	}
	as, bs := rowSet(a), rowSet(b)
	for k, v := range as {
		if bs[k] != v {
			return false
		}
	}
	return true
}

// TestConcurrentClientsMatchSequential drives the server with many
// concurrent clients issuing a mixed workload and asserts every response
// is identical to the single-threaded engine's answer. Run under -race
// in CI, this is the concurrency gate for the streaming pipeline and the
// shared plan cache.
func TestConcurrentClientsMatchSequential(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})

	// Sequential ground truth, computed before the server touches the
	// engine.
	parsed := make([]*sparql.Graph, len(testQueries))
	want := make([]*match.Bindings, len(testQueries))
	for i, qs := range testQueries {
		q := sparql.MustParse(env.G.Dict, qs)
		b, _, err := engine.Query(q)
		if err != nil {
			t.Fatalf("sequential Query(%s): %v", qs, err)
		}
		parsed[i], want[i] = q, b
	}

	srv := serve.New(engine, serve.Config{Workers: 6, QueueDepth: 256})
	defer srv.Close()

	const clients = 8
	const reps = 5
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				// Each client walks the workload at a different offset so
				// distinct queries overlap in time.
				for i := range parsed {
					j := (i + c) % len(parsed)
					resp, err := srv.Query(context.Background(), parsed[j])
					if err != nil {
						errCh <- fmt.Errorf("client %d query %d: %w", c, j, err)
						return
					}
					if !sameBindings(resp.Bindings, want[j]) {
						errCh <- fmt.Errorf("client %d query %d: concurrent result diverged (%d rows vs %d)",
							c, j, len(resp.Bindings.Rows), len(want[j].Rows))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if got, wantN := m.Completed, uint64(clients*reps*len(parsed)); got != wantN {
		t.Errorf("Completed = %d, want %d", got, wantN)
	}
	if m.CacheHits == 0 {
		t.Errorf("expected plan cache hits across repeated queries, got 0 (misses %d)", m.CacheMisses)
	}
	if m.P95 < m.P50 || m.P99 < m.P95 {
		t.Errorf("percentiles not monotone: p50=%v p95=%v p99=%v", m.P50, m.P95, m.P99)
	}
}

// TestTimeout checks that a per-query deadline aborts a slow distributed
// execution instead of letting it run to completion.
func TestTimeout(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{PerMessage: 50 * time.Millisecond})
	srv := serve.New(engine, serve.Config{Workers: 2, Timeout: time.Millisecond})
	defer srv.Close()

	q := sparql.MustParse(env.G.Dict, testQueries[0])
	_, err := srv.Query(context.Background(), q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Query with 1ms timeout on a 50ms/message cluster: err = %v, want DeadlineExceeded", err)
	}
	if m := srv.Metrics(); m.TimedOut == 0 {
		t.Errorf("TimedOut = 0 after a deadline failure")
	}
}

// TestCancellation checks that cancelling the caller's context abandons
// the query.
func TestCancellation(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{PerMessage: 50 * time.Millisecond})
	srv := serve.New(engine, serve.Config{Workers: 1})
	defer srv.Close()

	q := sparql.MustParse(env.G.Dict, testQueries[1])
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := srv.Query(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Query after cancel: err = %v, want Canceled", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("cancellation took %v; expected prompt return", el)
	}
}

// TestOverload fills a tiny admission queue and expects fail-fast
// rejections rather than unbounded queueing.
func TestOverload(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{PerMessage: 20 * time.Millisecond})
	srv := serve.New(engine, serve.Config{Workers: 1, QueueDepth: 1})
	defer srv.Close()

	q := sparql.MustParse(env.G.Dict, testQueries[0])
	const burst = 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	var rejected, completed int
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.Query(context.Background(), q)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				rejected++
			case err == nil:
				completed++
			}
		}()
	}
	wg.Wait()
	if rejected == 0 {
		t.Errorf("burst of %d on a depth-1 queue with 1 worker: no rejections", burst)
	}
	if completed == 0 {
		t.Errorf("burst of %d: nothing completed", burst)
	}
	if m := srv.Metrics(); m.Rejected != uint64(rejected) {
		t.Errorf("Metrics.Rejected = %d, counted %d", m.Rejected, rejected)
	}
}

// TestPlanCache checks that repeated and reordered-but-identical patterns
// hit the cache while structurally new ones miss.
func TestPlanCache(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	srv := serve.New(engine, serve.Config{Workers: 1})
	defer srv.Close()

	a := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`)
	// Same pattern, triple order swapped: must share a plan.
	b := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <mainInterest> ?i . ?x <name> ?n . }`)
	// Alpha-renamed: must NOT share a plan (output vars differ).
	c := sparql.MustParse(env.G.Dict, `SELECT ?a WHERE { ?a <name> ?m . ?a <mainInterest> ?j . }`)

	for _, q := range []*sparql.Graph{a, a, b, c} {
		if _, err := srv.Query(context.Background(), q); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	m := srv.Metrics()
	if m.CacheHits != 2 { // second a, and b
		t.Errorf("CacheHits = %d, want 2", m.CacheHits)
	}
	if m.CacheMisses != 2 { // first a, and c
		t.Errorf("CacheMisses = %d, want 2", m.CacheMisses)
	}

	// The cached plan for a must still answer c correctly (no
	// cross-contamination).
	respC, err := srv.Query(context.Background(), c)
	if err != nil {
		t.Fatalf("Query(c): %v", err)
	}
	wantC, _, err := engine.Query(c)
	if err != nil {
		t.Fatalf("engine.Query(c): %v", err)
	}
	if !sameBindings(respC.Bindings, wantC) {
		t.Errorf("alpha-renamed query served wrong rows")
	}
	if respC.Bindings.Vars[0] != "a" {
		t.Errorf("projection vars = %v, want [a]", respC.Bindings.Vars)
	}
}

// TestClosedServer checks post-Close submissions fail with ErrClosed.
func TestClosedServer(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	srv := serve.New(engine, serve.Config{})
	srv.Close()
	q := sparql.MustParse(env.G.Dict, testQueries[0])
	if _, err := srv.Query(context.Background(), q); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Query after Close: err = %v, want ErrClosed", err)
	}
	srv.Close() // second Close must not panic
}

// TestLRUEviction exercises the cache bound: more distinct shapes than
// capacity must not grow the cache past its limit, and the server keeps
// answering correctly.
func TestLRUEviction(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	srv := serve.New(engine, serve.Config{Workers: 2, PlanCacheSize: 2})
	defer srv.Close()

	// Rotate through 4 distinct constants so each is its own plan entry.
	for r := 0; r < 3; r++ {
		for i := 0; i < 4; i++ {
			qs := fmt.Sprintf(`SELECT ?x WHERE { ?x <mainInterest> <Interest%d> . }`, i)
			q := sparql.MustParse(env.G.Dict, qs)
			resp, err := srv.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("Query(%s): %v", qs, err)
			}
			want, _, err := engine.Query(q)
			if err != nil {
				t.Fatalf("engine.Query(%s): %v", qs, err)
			}
			if !sameBindings(resp.Bindings, want) {
				t.Errorf("round %d query %d: wrong rows after eviction churn", r, i)
			}
		}
	}
	m := srv.Metrics()
	if m.CacheHits+m.CacheMisses != 12 {
		t.Errorf("lookups = %d, want 12", m.CacheHits+m.CacheMisses)
	}
	// With capacity 2 and a 4-shape round-robin, every lookup misses.
	if m.CacheMisses != 12 {
		t.Errorf("CacheMisses = %d, want 12 (capacity 2 thrashing)", m.CacheMisses)
	}
}

// TestMetricsOrderedLatencies sanity-checks the percentile estimator.
func TestMetricsOrderedLatencies(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	srv := serve.New(engine, serve.Config{Workers: 4})
	defer srv.Close()

	q := sparql.MustParse(env.G.Dict, testQueries[5])
	for i := 0; i < 20; i++ {
		if _, err := srv.Query(context.Background(), q); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	m := srv.Metrics()
	if m.Completed != 20 || m.QPS <= 0 || m.P50 <= 0 {
		t.Errorf("metrics after 20 queries: completed=%d qps=%f p50=%v", m.Completed, m.QPS, m.P50)
	}
	lats := []time.Duration{m.P50, m.P95, m.P99}
	if !sort.SliceIsSorted(lats, func(i, j int) bool { return lats[i] < lats[j] }) {
		t.Errorf("percentiles not monotone: %v", lats)
	}
}

// TestParallelismBudget: the server grants each query a slice of the
// configured intra-query budget, answers stay correct when queries fan
// out, and the grant shows up in the metrics snapshot.
func TestParallelismBudget(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	srv := serve.New(engine, serve.Config{Workers: 2, Parallelism: 8})
	defer srv.Close()

	for i, qs := range testQueries {
		q := sparql.MustParse(env.G.Dict, qs)
		resp, err := srv.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("Query(%s): %v", qs, err)
		}
		want, _, err := engine.Query(q)
		if err != nil {
			t.Fatalf("engine.Query: %v", err)
		}
		if !sameBindings(resp.Bindings, want) {
			t.Errorf("query %d: parallel server answer diverges from engine", i)
		}
		if resp.Stats.Parallelism < 1 || resp.Stats.Parallelism > 8 {
			t.Errorf("query %d: effective parallelism %d outside [1, 8]", i, resp.Stats.Parallelism)
		}
	}
	m := srv.Metrics()
	if m.ParallelismBudget != 8 {
		t.Errorf("ParallelismBudget = %d, want 8", m.ParallelismBudget)
	}
	if m.EffectiveParallelism < 1 || m.EffectiveParallelism > 8 {
		t.Errorf("EffectiveParallelism = %f, want within [1, 8]", m.EffectiveParallelism)
	}
}

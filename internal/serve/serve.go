// Package serve is the concurrent query-serving layer over the
// distributed engine: a bounded admission queue feeding a worker pool
// that executes many queries at once against the shared deployed cluster,
// with per-query timeouts/cancellation, an LRU plan cache keyed on
// canonicalized query structure (the workload-aware complement of the
// paper's FAP mining — hot query shapes skip Algorithms 3 and 4
// entirely), and server-side metrics (QPS, latency percentiles, queue
// depth, cache hit rate).
//
// Reads and writes never block each other: each query pins an immutable
// MVCC read view (rdf.ViewSource) at admission and executes lock-free
// against it, while Update appends to delta overlays and compacts under
// a writer-only mutex, publishing a new view per batch. The old
// design's RWMutex — where one long query stalled every update and a
// burst of updates starved queries — is gone from the query path
// entirely.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rdffrag/internal/exec"
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// ErrOverloaded is returned when the admission queue is full; callers
// should back off and retry.
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrClosed is returned for queries submitted after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrNoUpdater is returned by Update when the server was configured
// without an Apply sink.
var ErrNoUpdater = errors.New("serve: no update sink configured")

// Config tunes the server. The zero value is usable.
type Config struct {
	// Workers is the number of queries executed concurrently (default 4).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it fail
	// fast with ErrOverloaded (default 64).
	QueueDepth int
	// Timeout is the per-query execution deadline; 0 disables it. A
	// caller context with an earlier deadline still wins.
	Timeout time.Duration
	// PlanCacheSize is the LRU plan cache capacity in entries (default
	// 128; negative disables caching).
	PlanCacheSize int
	// Parallelism is the machine-wide intra-query worker budget (default
	// GOMAXPROCS; negative forces sequential matching). Each query's
	// effective parallelism is the budget divided by the number of
	// queries in flight: a lone query fans its morsels across the whole
	// budget, while under heavy concurrent traffic queries run near
	// sequentially and throughput comes from the worker pool instead —
	// the intra- vs inter-query trade the budget exists to make.
	Parallelism int
	// JoinPartitions overrides the per-stage partition count of every
	// query's control-site join pipeline (default 0: each query derives
	// it from its parallelism grant; negative forces the sequential
	// symmetric join).
	JoinPartitions int
	// Apply, when non-nil, is the live-update sink: Update, Delete and
	// Overwrite route batches through it under the server's writer mutex
	// (updates are serialized with each other, never with queries) and
	// publish a new MVCC read view when the batch lands. In-flight
	// queries keep reading the view they pinned at admission; queries
	// admitted afterwards see the whole batch — for an overwrite, the
	// delete-set and insert-set land under one Publish, so no reader
	// ever sees the old triples gone but the new ones absent. The
	// callback reports what the batch did; an error rejects the batch
	// whole — the sink's contract is that it fails only before mutating
	// anything (e.g. the write-ahead-log append failed), so no view is
	// published and nothing was torn.
	Apply func(b Batch) (UpdateStats, error)
	// SweepInterval is how often the background TTL sweeper checks for
	// expired triples (default 1s; negative disables the sweeper —
	// expiries then only fire through an explicit Sweep call). The
	// sweeper issues delete batches through the normal Apply path, so
	// swept triples are WAL-logged and MVCC-published like any delete.
	SweepInterval time.Duration
	// WALStats, when non-nil, snapshots the durability layer's counters
	// for Metrics (a server fronting a write-ahead-logged deployment).
	WALStats func() WALMetrics
}

// Batch is one atomic update: Del's triples are removed and Ins's
// triples added under a single writer-mutex hold, a single sink call
// and a single MVCC publish. Op names the operation for logging and
// stats; the sets drive what actually happens (an insert carries only
// Ins, a delete only Del, an overwrite both).
type Batch struct {
	Op  Op
	Ins []rdf.Triple
	Del []rdf.Triple
	// TTL, when positive, schedules Ins's triples for expiry: once TTL
	// elapses the sweeper deletes them through the normal update path.
	// The expiry schedule is process-local (not persisted) — the sweep
	// deletes themselves are durable, but triples inserted moments
	// before a crash outlive their TTL until something re-stamps them.
	TTL time.Duration
}

// Op says what an update batch does with its triples.
type Op uint8

const (
	// OpInsert adds the batch's triples (duplicates are skipped).
	OpInsert Op = iota
	// OpDelete removes the batch's triples (absent triples are no-ops).
	OpDelete
	// OpOverwrite removes the batch's Del triples and adds its Ins
	// triples as one atomic swap.
	OpOverwrite
)

// String renders the op the way the HTTP API spells it.
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpOverwrite:
		return "overwrite"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// UpdateStats reports the effect of one applied update batch.
type UpdateStats struct {
	// Added counts triples that were new to the global graph (duplicates
	// are skipped).
	Added int
	// Deleted counts triples a delete batch actually removed from the
	// global graph (tombstoning a triple that was never inserted is a
	// no-op, not an error).
	Deleted int
	// DeltaTriples is the global graph's delta overlay size after the
	// batch (0 right after a compaction).
	DeltaTriples int
	// Compactions is the global graph's cumulative compaction count.
	Compactions uint64
	// Seq is the batch's write-ahead-log sequence number; 0 when the
	// deployment is not durable. The batch is recoverable iff a record
	// with this sequence number survives a crash.
	Seq uint64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 128
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	} else if c.Parallelism < 0 {
		c.Parallelism = 1
	}
	if c.JoinPartitions < 0 {
		c.JoinPartitions = 1
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Second
	}
	return c
}

// Response is one answered query.
type Response struct {
	Bindings *match.Bindings
	Stats    *exec.QueryStats
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool
	// Latency is the server-side execution time (queue wait included).
	Latency time.Duration
}

type request struct {
	ctx      context.Context
	q        *sparql.Graph
	enqueued time.Time
	done     chan outcome
}

type outcome struct {
	resp *Response
	err  error
}

// Server executes queries concurrently against one deployed engine.
type Server struct {
	engine *exec.Engine
	cfg    Config
	queue  chan *request
	cache  *planCache
	met    *collector

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	wg     sync.WaitGroup

	// dataMu is the writer-side mutex: it serializes Update batches,
	// Exclusive maintenance and the Close barrier with each other.
	// Queries never touch it — they pin an immutable MVCC read view at
	// admission (engine.Views().Acquire) and execute lock-free against
	// it, so a long-running query neither blocks nor is blocked by
	// updates.
	dataMu sync.Mutex

	// expMu guards the TTL expiry queue: batches applied with a positive
	// TTL enqueue their insert-set here, and the sweeper drains entries
	// whose deadline has passed into delete batches.
	expMu     sync.Mutex
	expQ      []expiry
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// expiry is one pending TTL deadline: the triples of a single batch and
// the instant they fall due.
type expiry struct {
	at time.Time
	ts []rdf.Triple
}

// New starts a server over a deployed engine: cfg.Workers goroutines
// begin draining the admission queue immediately. Call Close to stop.
func New(engine *exec.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		engine: engine,
		cfg:    cfg,
		queue:  make(chan *request, cfg.QueueDepth),
		cache:  newPlanCache(cfg.PlanCacheSize),
		met:    newCollector(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.Apply != nil && cfg.SweepInterval > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweeper(cfg.SweepInterval)
	}
	return s
}

// Close stops accepting queries, waits for in-flight and queued work to
// drain, and returns. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
	}
	// Barrier for in-flight updates: an Update that passed the closed
	// check before it flipped either finishes before this lock is granted
	// or re-checks closed under dataMu and backs out — after Close
	// returns, nothing mutates the deployment's graphs.
	s.dataMu.Lock()
	s.dataMu.Unlock() //nolint:staticcheck // empty critical section is the point
}

// Query executes an already-parsed query graph. Admission is
// non-blocking: a full queue fails fast with ErrOverloaded so overload
// surfaces as back-pressure instead of unbounded latency. The caller's
// ctx covers queue wait and execution; cancelling it abandons the query
// (a worker that already picked it up stops at the next pipeline step).
func (s *Server) Query(ctx context.Context, q *sparql.Graph) (*Response, error) {
	req := &request{ctx: ctx, q: q, enqueued: time.Now(), done: make(chan outcome, 1)}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- req:
		s.met.queued.Add(1)
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.met.rejected.Add(1)
		return nil, ErrOverloaded
	}

	select {
	case o := <-req.done:
		return o.resp, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for req := range s.queue {
		s.met.queued.Add(-1)
		s.met.inflight.Add(1)
		o := s.execute(req)
		s.met.inflight.Add(-1)
		req.done <- o
	}
}

func (s *Server) execute(req *request) outcome {
	if err := req.ctx.Err(); err != nil {
		// The client gave up while the request sat in the queue.
		s.met.failed.Add(1)
		return outcome{err: err}
	}
	ctx := req.ctx
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	// Pin the latest published read view for the whole execution: every
	// site evaluation of this query reads the same immutable
	// (generation, delta length) cut of every graph, so the query sees a
	// consistent snapshot without taking any lock — concurrent updates
	// append and compact freely and become visible to queries admitted
	// after their Publish.
	view := s.engine.Views().Acquire()
	defer view.Close()

	prep, hit, err := s.plan(req.q)
	if err != nil {
		s.met.failed.Add(1)
		return outcome{err: err}
	}
	// Stamp a per-execution copy of the (possibly cached, shared)
	// Prepared with this query's slice of the parallelism budget and the
	// server's join-partition override (0 lets the engine derive the
	// partition count from the grant).
	run := *prep
	run.Parallelism = s.effectiveParallelism()
	run.JoinPartitions = s.cfg.JoinPartitions
	run.View = view
	s.met.parallelism(run.Parallelism)
	b, stats, err := s.engine.QueryPrepared(ctx, req.q, &run)
	lat := time.Since(req.enqueued)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.timedOut.Add(1)
		}
		s.met.failed.Add(1)
		return outcome{err: err}
	}
	s.met.joinPartitions(stats.JoinPartitions)
	if stats.Partial {
		s.met.partials.Add(1)
	}
	s.met.complete(lat)
	return outcome{resp: &Response{Bindings: b, Stats: stats, CacheHit: hit, Latency: lat}}
}

// Update applies an insert batch to the deployment through the
// configured Apply sink. It takes the writer mutex — updates serialize
// with each other and with Exclusive, but never wait for queries: the
// graphs' delta appends and compactions are MVCC-safe against readers
// pinned to older views, and a new view is published once the batch has
// fully landed, so no query ever observes a torn batch. Returns
// ErrNoUpdater when the server has no sink and ErrClosed after Close. A
// cancelled ctx is honoured before the mutex is taken; once applying,
// the batch always completes (partial updates would be torn).
func (s *Server) Update(ctx context.Context, ts []rdf.Triple) (UpdateStats, error) {
	return s.Apply(ctx, Batch{Op: OpInsert, Ins: ts})
}

// Delete applies a delete batch through the same serialized writer path
// as Update: matched triples are tombstoned in the deployment's graphs
// and a new read view publishes the removal atomically. Deleting a
// triple that is not present is a no-op, not an error.
func (s *Server) Delete(ctx context.Context, ts []rdf.Triple) (UpdateStats, error) {
	return s.Apply(ctx, Batch{Op: OpDelete, Del: ts})
}

// Overwrite removes del and adds ins as one atomic batch: both sets go
// through the sink in a single call and become visible under a single
// MVCC publish, so no query ever observes the deletes without the
// inserts. A positive ttl schedules the inserted triples for expiry.
func (s *Server) Overwrite(ctx context.Context, del, ins []rdf.Triple, ttl time.Duration) (UpdateStats, error) {
	return s.Apply(ctx, Batch{Op: OpOverwrite, Del: del, Ins: ins, TTL: ttl})
}

// Apply applies one batch through the configured sink under the writer
// mutex; Update, Delete and Overwrite are wrappers over it.
func (s *Server) Apply(ctx context.Context, b Batch) (UpdateStats, error) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return UpdateStats{}, ErrClosed
	}
	if s.cfg.Apply == nil {
		return UpdateStats{}, ErrNoUpdater
	}
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	// Re-check under the data lock: Close does not wait on dataMu, so an
	// update that raced past the first check must not mutate graphs the
	// owner may already be tearing down or snapshotting post-Close.
	s.mu.RLock()
	closed = s.closed
	s.mu.RUnlock()
	if closed {
		return UpdateStats{}, ErrClosed
	}
	// The mutex wait is short (only other updates hold it — queries
	// never do); nothing has been applied yet, so a caller that gave up
	// while we waited still backs out cleanly.
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	st, err := s.cfg.Apply(b)
	if err != nil {
		// The sink rejected the batch before mutating anything (its
		// contract): no new view, no gauge movement, nothing applied.
		return UpdateStats{}, err
	}
	// Make the batch visible: capture a consistent cut of every graph as
	// the new read view. Queries admitted from here on see the whole
	// batch; queries already running keep their pinned older view.
	s.engine.Views().Publish()
	// Publish the gauges before releasing the mutex so concurrent updates
	// cannot interleave apply order and publish order (the gauge must
	// reflect the last-applied batch).
	s.met.update(st)
	if b.TTL > 0 && len(b.Ins) > 0 {
		s.expMu.Lock()
		s.expQ = append(s.expQ, expiry{at: time.Now().Add(b.TTL), ts: append([]rdf.Triple(nil), b.Ins...)})
		s.expMu.Unlock()
	}
	return st, nil
}

// sweeper periodically expires TTL-stamped triples. It runs until Close.
func (s *Server) sweeper(interval time.Duration) {
	defer close(s.sweepDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case now := <-t.C:
			s.Sweep(now)
		}
	}
}

// Sweep deletes every TTL-stamped triple whose deadline is at or before
// now, issuing the deletions as ordinary delete batches through the
// Apply sink — WAL-logged and MVCC-published like any client delete. It
// reports how many triples the sweep removed. Entries whose batch could
// not be applied (the server closing, a poisoned WAL) are requeued for a
// later sweep. The background sweeper calls this on its interval; tests
// and embedders may call it directly for deterministic expiry.
func (s *Server) Sweep(now time.Time) int {
	s.expMu.Lock()
	var due []rdf.Triple
	rest := s.expQ[:0]
	for _, e := range s.expQ {
		if e.at.After(now) {
			rest = append(rest, e)
		} else {
			due = append(due, e.ts...)
		}
	}
	s.expQ = rest
	s.expMu.Unlock()
	if len(due) == 0 {
		return 0
	}
	st, err := s.Apply(context.Background(), Batch{Op: OpDelete, Del: due})
	if err != nil {
		s.expMu.Lock()
		s.expQ = append(s.expQ, expiry{at: now, ts: due})
		s.expMu.Unlock()
		return 0
	}
	s.met.sweepRuns.Add(1)
	s.met.sweptTriples.Add(uint64(st.Deleted))
	return st.Deleted
}

// PendingExpiries reports how many TTL batches await their deadline.
func (s *Server) PendingExpiries() int {
	s.expMu.Lock()
	defer s.expMu.Unlock()
	return len(s.expQ)
}

// Exclusive runs fn while holding the writer mutex: no update applies
// until fn returns, and a fresh read view is published afterwards.
// Maintenance that mutates the deployment's graphs outside the Apply
// sink (snapshotting with compact-on-save, manual compaction) must run
// through it so its mutations serialize with updates and become visible
// to queries as one atomic cut. Queries keep running throughout — graph
// mutations are MVCC-safe against pinned readers.
func (s *Server) Exclusive(fn func()) {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	fn()
	s.engine.Views().Publish()
}

// effectiveParallelism divides the machine-wide intra-query budget by
// the number of queries currently executing (this one included), floored
// at 1: alone on the server a query fans out fully, under load queries
// degrade toward sequential and concurrency comes from the worker pool.
func (s *Server) effectiveParallelism() int {
	inflight := int(s.met.inflight.Load())
	if inflight < 1 {
		inflight = 1
	}
	eff := s.cfg.Parallelism / inflight
	if eff < 1 {
		eff = 1
	}
	return eff
}

// plan resolves a query's execution plan through the LRU cache.
func (s *Server) plan(q *sparql.Graph) (*exec.Prepared, bool, error) {
	if s.cache == nil {
		prep, err := s.engine.Prepare(q)
		return prep, false, err
	}
	key := canonKey(q)
	if prep, ok := s.cache.get(key); ok {
		s.met.cacheHits.Add(1)
		return prep, true, nil
	}
	s.met.cacheMisses.Add(1)
	prep, err := s.engine.Prepare(q)
	if err != nil {
		return nil, false, err
	}
	s.cache.put(key, prep)
	return prep, false, nil
}

// Metrics returns a snapshot of the server's counters and latency
// percentiles, including the MVCC generation and pinned-snapshot
// gauges.
func (s *Server) Metrics() Metrics {
	m := s.met.snapshot()
	m.ParallelismBudget = s.cfg.Parallelism
	m.JoinPartitionsCap = s.cfg.JoinPartitions
	m.Sites = s.engine.SiteMetrics()
	views := s.engine.Views()
	m.Generations = views.Generations()
	m.PinnedSnapshots = views.PinnedSnapshots()
	if s.cfg.WALStats != nil {
		w := s.cfg.WALStats()
		m.WAL = &w
	}
	return m
}

package serve_test

// The durability hooks on the serving layer: an Apply sink that rejects
// a batch must leave the server untouched (no published view, no gauge
// movement — the WAL layer relies on this to keep rejected batches out
// of the log's accounting), Exclusive must serialize with updates and
// publish a fresh view (the checkpointer runs under it), and a
// configured WALStats callback must surface in Metrics.

import (
	"context"
	"errors"
	"testing"

	"rdffrag/internal/cluster"
	"rdffrag/internal/rdf"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
)

func TestUpdateApplyErrorLeavesServerUntouched(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze()

	rejected := errors.New("sink rejected the batch")
	calls := 0
	srv := serve.New(engine, serve.Config{
		Apply: func(b serve.Batch) (serve.UpdateStats, error) {
			calls++
			if calls%2 == 1 {
				return serve.UpdateStats{}, rejected
			}
			return testApply(env)(b)
		},
	})
	defer srv.Close()

	ts := []rdf.Triple{{
		S: env.G.Dict.MustIRI("apply-err-s"),
		P: env.G.Dict.MustIRI("name"),
		O: env.G.Dict.MustLiteral("Apply Err"),
	}}
	if _, err := srv.Update(context.Background(), ts); !errors.Is(err, rejected) {
		t.Fatalf("Update returned %v, want the sink's error", err)
	}
	if m := srv.Metrics(); m.Updates != 0 || m.TriplesAdded != 0 {
		t.Fatalf("rejected batch moved the update gauges: %+v", m)
	}
	// The sink's contract is reject-before-mutate; the next attempt must
	// go through cleanly and count exactly once.
	st, err := srv.Update(context.Background(), ts)
	if err != nil || st.Added != 1 {
		t.Fatalf("retry after rejection: stats %+v, err %v", st, err)
	}
	if m := srv.Metrics(); m.Updates != 1 || m.TriplesAdded != 1 {
		t.Fatalf("gauges after one good batch: %+v", m)
	}
}

func TestExclusivePublishesMaintenanceMutations(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze()
	srv := serve.New(engine, serve.Config{Apply: testApply(env)})
	defer srv.Close()

	q := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	base, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the graphs outside the Apply sink, the way the checkpointer
	// and compact-on-save do. Without the Publish inside Exclusive the
	// next query would still be admitted against the stale view.
	srv.Exclusive(func() {
		testApply(env)(serve.Batch{Op: serve.OpInsert, Ins: []rdf.Triple{{
			S: env.G.Dict.MustIRI("exclusive-s"),
			P: env.G.Dict.MustIRI("name"),
			O: env.G.Dict.MustLiteral("Exclusive Row"),
		}}})
	})
	after, err := srv.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Bindings.Rows) != len(base.Bindings.Rows)+1 {
		t.Fatalf("maintenance mutation not visible: %d rows before, %d after",
			len(base.Bindings.Rows), len(after.Bindings.Rows))
	}
}

func TestMetricsSurfaceWALStats(t *testing.T) {
	engine, env := newEngine(t, cluster.Delay{})
	env.G.Freeze()

	want := serve.WALMetrics{SyncPolicy: "always", Appends: 7, Fsyncs: 7, LastSeq: 7}
	srv := serve.New(engine, serve.Config{
		Apply:    testApply(env),
		WALStats: func() serve.WALMetrics { return want },
	})
	defer srv.Close()

	m := srv.Metrics()
	if m.WAL == nil {
		t.Fatal("WALStats configured but Metrics().WAL is nil")
	}
	if *m.WAL != want {
		t.Fatalf("Metrics().WAL = %+v, want %+v", *m.WAL, want)
	}

	plain := serve.New(engine, serve.Config{})
	defer plain.Close()
	if plain.Metrics().WAL != nil {
		t.Fatal("non-durable server must not report WAL metrics")
	}
}

package persist

import (
	"bytes"
	"encoding/gob"
	"testing"

	"rdffrag/internal/allocation"
	"rdffrag/internal/fragment"
	"rdffrag/internal/rdf"
	"rdffrag/internal/testenv"
)

func buildState(t *testing.T, horizontal bool) *State {
	t.Helper()
	env, err := testenv.Build(testenv.Options{Horizontal: horizontal})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return &State{
		Graph: env.G,
		HC:    env.HC,
		Frag:  env.Frag,
		Alloc: env.Alloc,
		Sites: len(env.Alloc.Sites),
	}
}

func TestRoundTripStructure(t *testing.T) {
	for _, horizontal := range []bool{false, true} {
		st := buildState(t, horizontal)
		var buf bytes.Buffer
		if err := Save(&buf, st); err != nil {
			t.Fatalf("Save: %v", err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if got.Graph.NumTriples() != st.Graph.NumTriples() {
			t.Errorf("graph triples %d vs %d", got.Graph.NumTriples(), st.Graph.NumTriples())
		}
		if got.HC.Hot.NumTriples() != st.HC.Hot.NumTriples() {
			t.Errorf("hot triples %d vs %d", got.HC.Hot.NumTriples(), st.HC.Hot.NumTriples())
		}
		if len(got.Frag.Fragments) != len(st.Frag.Fragments) {
			t.Fatalf("fragments %d vs %d", len(got.Frag.Fragments), len(st.Frag.Fragments))
		}
		if got.Frag.Kind != st.Frag.Kind {
			t.Errorf("kind %v vs %v", got.Frag.Kind, st.Frag.Kind)
		}
		for i, f := range st.Frag.Fragments {
			g := got.Frag.Fragments[i]
			if g.ID != f.ID || g.Graph.NumTriples() != f.Graph.NumTriples() {
				t.Errorf("fragment %d drifted", f.ID)
			}
			if (g.Minterm == nil) != (f.Minterm == nil) {
				t.Errorf("fragment %d minterm presence drifted", f.ID)
			}
			if f.Pattern != nil && g.Pattern.Code != f.Pattern.Code {
				t.Errorf("fragment %d pattern code drifted", f.ID)
			}
			if got.Alloc.SiteOf[g.ID] != st.Alloc.SiteOf[f.ID] {
				t.Errorf("fragment %d site drifted", f.ID)
			}
		}
		// Term dictionary must round trip ID-for-ID.
		for i := 0; i < st.Graph.Dict.Len(); i++ {
			if got.Graph.Dict.Decode(rdf.ID(i)) != st.Graph.Dict.Decode(rdf.ID(i)) {
				t.Fatalf("term %d drifted", i)
			}
		}
	}
}

// TestRoundTripDeltaCarryingGraphs: a deployment that has taken live
// updates into its delta overlays snapshots completely — Save compacts
// the deltas first (the frozen survivors keep serving pure-CSR reads)
// and Load reproduces every delta triple.
func TestRoundTripDeltaCarryingGraphs(t *testing.T) {
	st := buildState(t, false)
	st.Graph.Freeze()
	st.Graph.SetAutoCompact(-1)
	frag0 := st.Frag.Fragments[0]
	cold := st.Frag.Cold

	// Stream post-freeze updates: one into the global graph + a hot
	// fragment, one into the global graph + the cold fragment.
	d := st.Graph.Dict
	hot := rdf.Triple{S: d.MustIRI("UpdP"), P: d.MustIRI("name"), O: d.MustLiteral("Upd")}
	coldT := rdf.Triple{S: d.MustIRI("UpdP"), P: d.MustIRI("viaf"), O: d.MustLiteral("42")}
	st.Graph.Add(hot)
	st.Graph.Add(coldT)
	frag0.Graph.Add(hot)
	cold.Graph.Add(coldT)
	if st.Graph.DeltaLen() != 2 || frag0.Graph.DeltaLen() == 0 || cold.Graph.DeltaLen() == 0 {
		t.Fatalf("setup: deltas global=%d frag=%d cold=%d",
			st.Graph.DeltaLen(), frag0.Graph.DeltaLen(), cold.Graph.DeltaLen())
	}

	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Compact-on-save: the saved deployment's graphs carry no deltas now.
	if st.Graph.DeltaLen() != 0 || frag0.Graph.DeltaLen() != 0 || cold.Graph.DeltaLen() != 0 {
		t.Errorf("Save left deltas behind: global=%d frag=%d cold=%d",
			st.Graph.DeltaLen(), frag0.Graph.DeltaLen(), cold.Graph.DeltaLen())
	}
	if !st.Graph.Frozen() {
		t.Error("Save thawed the global graph")
	}

	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Graph.NumTriples() != st.Graph.NumTriples() {
		t.Fatalf("graph triples %d vs %d", got.Graph.NumTriples(), st.Graph.NumTriples())
	}
	gd := got.Graph.Dict
	reHot := rdf.Triple{S: mustLookup(t, gd, "UpdP"), P: mustLookup(t, gd, "name"), O: gd.MustLiteral("Upd")}
	if !got.Graph.Has(reHot) {
		t.Error("delta triple lost across the round trip")
	}
	if !got.Frag.Fragments[0].Graph.Has(reHot) {
		t.Error("fragment delta triple lost across the round trip")
	}
}

func mustLookup(t *testing.T, d *rdf.Dict, iri string) rdf.ID {
	t.Helper()
	id, ok := d.Lookup(rdf.NewIRI(iri))
	if !ok {
		t.Fatalf("%s not in reloaded dictionary", iri)
	}
	return id
}

func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Snapshot{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("future version accepted")
	}
}

func TestInvalidSiteRejected(t *testing.T) {
	st := buildState(t, false)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Fragments[0].Site = 99
	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2); err == nil {
		t.Error("invalid site accepted")
	}
}

func TestLoadedMintermStillFilters(t *testing.T) {
	st := buildState(t, true)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var withMinterm *fragment.Fragment
	for _, f := range got.Frag.Fragments {
		if f.Minterm != nil {
			withMinterm = f
			break
		}
	}
	if withMinterm == nil {
		t.Skip("no minterm fragments in this configuration")
	}
	filter := withMinterm.Minterm.VertexFilter()
	c := withMinterm.Minterm.Constraints[0]
	if c.Equal {
		if !filter(c.Vertex, c.Value) {
			t.Error("equality constraint rejects its own value after reload")
		}
	} else {
		if filter(c.Vertex, c.Value) {
			t.Error("negation constraint accepts its excluded value after reload")
		}
	}
	_ = allocation.Allocation{}
}

// TestDictFingerprintGuardsTampering: a snapshot whose Terms list was
// altered after Save (bit rot, wrong file, a different deployment's
// snapshot spliced in) must be refused at Load — silently decoding
// triples against the wrong dictionary would scramble every term.
func TestDictFingerprintGuardsTampering(t *testing.T) {
	st := buildState(t, false)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatalf("Save: %v", err)
	}

	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.DictFP == 0 {
		t.Fatal("Save left DictFP unstamped")
	}
	snap.Terms[len(snap.Terms)/2].Value += "-tampered"
	var evil bytes.Buffer
	if err := gob.NewEncoder(&evil).Encode(&snap); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if _, err := Load(&evil); err == nil {
		t.Fatal("Load accepted a snapshot with a tampered dictionary")
	}
}

// TestWALSeqRoundTrips: the checkpoint's WAL sequence stamp survives the
// round trip — recovery replays only records past it.
func TestWALSeqRoundTrips(t *testing.T) {
	st := buildState(t, false)
	st.WALSeq = 12345
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.WALSeq != 12345 {
		t.Fatalf("WALSeq = %d, want 12345", got.WALSeq)
	}
}

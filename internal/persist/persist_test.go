package persist

import (
	"bytes"
	"encoding/gob"
	"testing"

	"rdffrag/internal/allocation"
	"rdffrag/internal/fragment"
	"rdffrag/internal/rdf"
	"rdffrag/internal/testenv"
)

func buildState(t *testing.T, horizontal bool) *State {
	t.Helper()
	env, err := testenv.Build(testenv.Options{Horizontal: horizontal})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return &State{
		Graph: env.G,
		HC:    env.HC,
		Frag:  env.Frag,
		Alloc: env.Alloc,
		Sites: len(env.Alloc.Sites),
	}
}

func TestRoundTripStructure(t *testing.T) {
	for _, horizontal := range []bool{false, true} {
		st := buildState(t, horizontal)
		var buf bytes.Buffer
		if err := Save(&buf, st); err != nil {
			t.Fatalf("Save: %v", err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if got.Graph.NumTriples() != st.Graph.NumTriples() {
			t.Errorf("graph triples %d vs %d", got.Graph.NumTriples(), st.Graph.NumTriples())
		}
		if got.HC.Hot.NumTriples() != st.HC.Hot.NumTriples() {
			t.Errorf("hot triples %d vs %d", got.HC.Hot.NumTriples(), st.HC.Hot.NumTriples())
		}
		if len(got.Frag.Fragments) != len(st.Frag.Fragments) {
			t.Fatalf("fragments %d vs %d", len(got.Frag.Fragments), len(st.Frag.Fragments))
		}
		if got.Frag.Kind != st.Frag.Kind {
			t.Errorf("kind %v vs %v", got.Frag.Kind, st.Frag.Kind)
		}
		for i, f := range st.Frag.Fragments {
			g := got.Frag.Fragments[i]
			if g.ID != f.ID || g.Graph.NumTriples() != f.Graph.NumTriples() {
				t.Errorf("fragment %d drifted", f.ID)
			}
			if (g.Minterm == nil) != (f.Minterm == nil) {
				t.Errorf("fragment %d minterm presence drifted", f.ID)
			}
			if f.Pattern != nil && g.Pattern.Code != f.Pattern.Code {
				t.Errorf("fragment %d pattern code drifted", f.ID)
			}
			if got.Alloc.SiteOf[g.ID] != st.Alloc.SiteOf[f.ID] {
				t.Errorf("fragment %d site drifted", f.ID)
			}
		}
		// Term dictionary must round trip ID-for-ID.
		for i := 0; i < st.Graph.Dict.Len(); i++ {
			if got.Graph.Dict.Decode(rdf.ID(i)) != st.Graph.Dict.Decode(rdf.ID(i)) {
				t.Fatalf("term %d drifted", i)
			}
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Snapshot{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("future version accepted")
	}
}

func TestInvalidSiteRejected(t *testing.T) {
	st := buildState(t, false)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Fragments[0].Site = 99
	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2); err == nil {
		t.Error("invalid site accepted")
	}
}

func TestLoadedMintermStillFilters(t *testing.T) {
	st := buildState(t, true)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var withMinterm *fragment.Fragment
	for _, f := range got.Frag.Fragments {
		if f.Minterm != nil {
			withMinterm = f
			break
		}
	}
	if withMinterm == nil {
		t.Skip("no minterm fragments in this configuration")
	}
	filter := withMinterm.Minterm.VertexFilter()
	c := withMinterm.Minterm.Constraints[0]
	if c.Equal {
		if !filter(c.Vertex, c.Value) {
			t.Error("equality constraint rejects its own value after reload")
		}
	} else {
		if filter(c.Vertex, c.Value) {
			t.Error("negation constraint accepts its excluded value after reload")
		}
	}
	_ = allocation.Allocation{}
}

// Package persist serializes the outcome of the offline pipeline — term
// dictionary, hot/cold split, selected patterns, fragments with their
// minterm constraints, and the allocation — so a deployment can be
// reloaded without re-running mining, selection and fragmentation
// (Section 7.1's "global statistics file generated at fragmentation and
// allocation time"). The format is gob over DTO structs; it is internal
// and versioned, not a public interchange format.
package persist

import (
	"encoding/gob"
	"fmt"
	"io"

	"rdffrag/internal/allocation"
	"rdffrag/internal/fragment"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// Version guards against decoding snapshots from incompatible builds.
// Version 2 added the WAL checkpoint stamp (WALSeq) and the dictionary
// fingerprint header.
const Version = 2

// Snapshot is the serialized deployment state.
type Snapshot struct {
	Version int
	Sites   int
	Kind    uint8 // fragment.Kind of the fragmentation

	// WALSeq is the last write-ahead-log sequence number applied to
	// this snapshot; recovery replays only records past it. Zero for
	// snapshots of non-durable deployments.
	WALSeq uint64
	// DictFP fingerprints the Terms list (rdf.Dict.Fingerprint over all
	// of them); Load refuses a snapshot whose rebuilt dictionary hashes
	// differently, so a checkpoint can never be replayed against a
	// mismatched dictionary.
	DictFP uint64

	Terms        []TermDTO
	GraphTriples [][3]uint32
	FreqProps    []uint32

	Patterns  []PatternDTO
	Fragments []FragmentDTO
	Cold      ColdDTO
}

// TermDTO mirrors rdf.Term.
type TermDTO struct {
	Kind  uint8
	Value string
}

// VertexDTO mirrors sparql.Vertex (IsVar encoded by Var != "").
type VertexDTO struct {
	Var  string
	Term uint32
}

// EdgeDTO mirrors sparql.Edge.
type EdgeDTO struct {
	From, To int
	Pred     uint32
	PredVar  string
}

// PatternDTO mirrors mining.Pattern.
type PatternDTO struct {
	Code    string
	Support int
	Verts   []VertexDTO
	Edges   []EdgeDTO
}

// ConstraintDTO mirrors fragment.Constraint.
type ConstraintDTO struct {
	Vertex int
	Equal  bool
	Value  uint32
}

// FragmentDTO mirrors fragment.Fragment plus its site.
type FragmentDTO struct {
	ID          int
	Kind        uint8
	PatternIdx  int // index into Snapshot.Patterns; -1 for none
	Constraints []ConstraintDTO
	Triples     [][3]uint32
	Site        int
}

// ColdDTO holds the cold fragment.
type ColdDTO struct {
	ID      int
	Triples [][3]uint32
	Site    int
}

// State bundles what Save needs and what Load returns.
type State struct {
	Graph *rdf.Graph
	HC    *fragment.HotCold
	Frag  *fragment.Fragmentation
	Alloc *allocation.Allocation
	Sites int
	// WALSeq stamps (Save) / reports (Load) the last applied WAL
	// sequence number; see Snapshot.WALSeq.
	WALSeq uint64
}

// Save encodes the state to w. Delta-carrying frozen graphs (a live
// deployment that has taken updates since its last compaction) are
// compacted first: the snapshot's triple lists already contain the delta
// triples either way, but compact-on-save means the surviving in-memory
// deployment keeps serving pure-CSR reads and the snapshot marks a clean
// LSM generation.
func Save(w io.Writer, st *State) error {
	st.Graph.Compact()
	if st.HC != nil {
		st.HC.Hot.Compact()
		st.HC.Cold.Compact()
	}
	for _, f := range st.Frag.All() {
		f.Graph.Compact()
	}
	snap := &Snapshot{Version: Version, Sites: st.Sites, Kind: uint8(st.Frag.Kind), WALSeq: st.WALSeq}

	d := st.Graph.Dict
	snap.Terms = make([]TermDTO, d.Len())
	for i := 0; i < d.Len(); i++ {
		t := d.Decode(rdf.ID(i))
		snap.Terms[i] = TermDTO{Kind: uint8(t.Kind), Value: t.Value}
	}
	snap.DictFP = d.Fingerprint(len(snap.Terms))
	snap.GraphTriples = encodeTriples(st.Graph.Triples())
	for p := range st.HC.FreqProps {
		snap.FreqProps = append(snap.FreqProps, uint32(p))
	}

	patIdx := make(map[string]int)
	addPattern := func(p *mining.Pattern) int {
		if p == nil {
			return -1
		}
		if i, ok := patIdx[p.Code]; ok {
			return i
		}
		dto := PatternDTO{Code: p.Code, Support: p.Support}
		for _, v := range p.Graph.Verts {
			dto.Verts = append(dto.Verts, VertexDTO{Var: v.Var, Term: uint32(v.Term)})
		}
		for _, e := range p.Graph.Edges {
			dto.Edges = append(dto.Edges, EdgeDTO{From: e.From, To: e.To, Pred: uint32(e.Pred), PredVar: e.PredVar})
		}
		patIdx[p.Code] = len(snap.Patterns)
		snap.Patterns = append(snap.Patterns, dto)
		return patIdx[p.Code]
	}

	for _, f := range st.Frag.Fragments {
		dto := FragmentDTO{
			ID:         f.ID,
			Kind:       uint8(f.Kind),
			PatternIdx: addPattern(f.Pattern),
			Triples:    encodeTriples(f.Graph.Triples()),
			Site:       st.Alloc.SiteOf[f.ID],
		}
		if f.Minterm != nil {
			for _, c := range f.Minterm.Constraints {
				dto.Constraints = append(dto.Constraints, ConstraintDTO{
					Vertex: c.Vertex, Equal: c.Equal, Value: uint32(c.Value),
				})
			}
		}
		snap.Fragments = append(snap.Fragments, dto)
	}
	if st.Frag.Cold != nil {
		snap.Cold = ColdDTO{
			ID:      st.Frag.Cold.ID,
			Triples: encodeTriples(st.Frag.Cold.Graph.Triples()),
			Site:    st.Alloc.ColdSite,
		}
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load decodes a snapshot and rebuilds the in-memory structures.
func Load(r io.Reader) (*State, error) {
	var snap Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decode: %w", err)
	}
	if snap.Version != Version {
		return nil, fmt.Errorf("persist: snapshot version %d, want %d", snap.Version, Version)
	}

	dict := rdf.NewDict()
	for i, t := range snap.Terms {
		id := dict.Encode(rdf.Term{Kind: rdf.TermKind(t.Kind), Value: t.Value})
		if id != rdf.ID(i) {
			return nil, fmt.Errorf("persist: dictionary IDs diverged at %d", i)
		}
	}
	if fp := dict.Fingerprint(len(snap.Terms)); fp != snap.DictFP {
		return nil, fmt.Errorf("persist: dictionary fingerprint mismatch (snapshot %016x, rebuilt %016x): snapshot is corrupt or from a different deployment", snap.DictFP, fp)
	}

	graph := rdf.NewGraph(dict)
	decodeTriples(graph, snap.GraphTriples)

	freq := make(map[rdf.ID]bool, len(snap.FreqProps))
	for _, p := range snap.FreqProps {
		freq[rdf.ID(p)] = true
	}
	hc := &fragment.HotCold{
		Hot:       rdf.NewGraph(dict),
		Cold:      rdf.NewGraph(dict),
		FreqProps: freq,
	}
	for _, t := range graph.Triples() {
		if freq[t.P] {
			hc.Hot.Add(t)
		} else {
			hc.Cold.Add(t)
		}
	}
	graph.Freeze()
	hc.Hot.Freeze()
	hc.Cold.Freeze()

	patterns := make([]*mining.Pattern, len(snap.Patterns))
	for i, pd := range snap.Patterns {
		g := sparql.NewGraph()
		for _, e := range pd.Edges {
			vf := pd.Verts[e.From]
			vt := pd.Verts[e.To]
			g.AddTriplePattern(
				sparql.Vertex{Var: vf.Var, Term: rdf.ID(vf.Term)},
				sparql.Edge{Pred: rdf.ID(e.Pred), PredVar: e.PredVar},
				sparql.Vertex{Var: vt.Var, Term: rdf.ID(vt.Term)},
			)
		}
		patterns[i] = &mining.Pattern{Graph: g, Code: pd.Code, Support: pd.Support}
	}

	fr := &fragment.Fragmentation{Hot: hc.Hot, Kind: fragment.Kind(snap.Kind)}
	alloc := &allocation.Allocation{
		Sites:    make([][]*fragment.Fragment, snap.Sites),
		SiteOf:   make(map[int]int),
		ColdSite: -1,
	}
	for _, fd := range snap.Fragments {
		g := rdf.NewGraph(dict)
		decodeTriples(g, fd.Triples)
		g.Freeze()
		f := &fragment.Fragment{
			ID:    fd.ID,
			Kind:  fragment.Kind(fd.Kind),
			Graph: g,
		}
		if fd.PatternIdx >= 0 {
			f.Pattern = patterns[fd.PatternIdx]
		}
		if len(fd.Constraints) > 0 {
			mt := &fragment.Minterm{Pattern: f.Pattern}
			for _, c := range fd.Constraints {
				mt.Constraints = append(mt.Constraints, fragment.Constraint{
					Vertex: c.Vertex, Equal: c.Equal, Value: rdf.ID(c.Value),
				})
			}
			f.Minterm = mt
		}
		fr.Fragments = append(fr.Fragments, f)
		if fd.Site < 0 || fd.Site >= snap.Sites {
			return nil, fmt.Errorf("persist: fragment %d has invalid site %d", fd.ID, fd.Site)
		}
		alloc.Sites[fd.Site] = append(alloc.Sites[fd.Site], f)
		alloc.SiteOf[fd.ID] = fd.Site
	}
	if len(snap.Cold.Triples) > 0 || snap.Cold.ID != 0 {
		g := rdf.NewGraph(dict)
		decodeTriples(g, snap.Cold.Triples)
		g.Freeze()
		fr.Cold = &fragment.Fragment{ID: snap.Cold.ID, Kind: fragment.ColdKind, Graph: g}
		if g.NumTriples() > 0 {
			if snap.Cold.Site < 0 || snap.Cold.Site >= snap.Sites {
				return nil, fmt.Errorf("persist: cold fragment has invalid site %d", snap.Cold.Site)
			}
			alloc.Sites[snap.Cold.Site] = append(alloc.Sites[snap.Cold.Site], fr.Cold)
			alloc.SiteOf[fr.Cold.ID] = snap.Cold.Site
			alloc.ColdSite = snap.Cold.Site
		}
	}

	return &State{Graph: graph, HC: hc, Frag: fr, Alloc: alloc, Sites: snap.Sites, WALSeq: snap.WALSeq}, nil
}

func encodeTriples(ts []rdf.Triple) [][3]uint32 {
	out := make([][3]uint32, len(ts))
	for i, t := range ts {
		out[i] = [3]uint32{uint32(t.S), uint32(t.P), uint32(t.O)}
	}
	return out
}

func decodeTriples(g *rdf.Graph, ts [][3]uint32) {
	for _, t := range ts {
		g.Add(rdf.Triple{S: rdf.ID(t[0]), P: rdf.ID(t[1]), O: rdf.ID(t[2])})
	}
}

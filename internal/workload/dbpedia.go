// Package workload generates the DBpedia-like dataset and query log used
// by the experiments. The real evaluation uses DBpedia (163M triples) and
// the DBPSB query log (8.15M queries over 14 days); neither ships with
// this repository, so the generator reproduces their two load-bearing
// properties at laptop scale (see DESIGN.md §3):
//
//  1. a heavy-tailed property distribution — a few properties carry most
//     queries (the 80/20 rule of Section 3) while many properties are
//     never queried (cold);
//  2. a template-dominated query log — a small set of frequent query
//     shapes covers ~97% of queries (Section 1.1), with a tail of one-off
//     shapes.
package workload

import (
	"fmt"
	"strings"

	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

type rng struct{ x uint64 }

func newRNG(seed uint64) *rng { return &rng{x: seed*6364136223846793005 + 1442695040888963407} }

func (r *rng) next() uint64 {
	r.x ^= r.x << 13
	r.x ^= r.x >> 7
	r.x ^= r.x << 17
	return r.x
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// DBpediaOptions sizes the synthetic DBpedia-like corpus.
type DBpediaOptions struct {
	// Triples is the approximate dataset size (min ~1000).
	Triples int
	// Queries is the query log length.
	Queries int
	// Seed fixes both generators.
	Seed uint64
}

// DBpedia bundles the generated graph, its entity pools and the log.
type DBpedia struct {
	Graph   *rdf.Graph
	Log     []*sparql.Graph
	Persons []string
	Places  []string
	Topics  []string
}

// GenerateDBpedia builds the dataset and the query log.
func GenerateDBpedia(o DBpediaOptions) (*DBpedia, error) {
	if o.Triples < 1000 {
		o.Triples = 1000
	}
	if o.Queries < 1 {
		o.Queries = 100
	}
	r := newRNG(o.Seed | 1)
	g := rdf.NewGraph(nil)
	db := &DBpedia{Graph: g}
	iri := rdf.NewIRI
	lit := rdf.NewLiteral

	// Each person yields ≈4.5 triples and drags ≈0.6 place triples along,
	// so persons ≈ triples/5 lands close to the requested size.
	nPersons := o.Triples / 5
	nPlaces := max(10, nPersons/4)
	nTopics := max(8, nPersons/20)

	for i := 0; i < nTopics; i++ {
		db.Topics = append(db.Topics, fmt.Sprintf("dbr:Topic%d", i))
	}
	for i := 0; i < nPlaces; i++ {
		pl := fmt.Sprintf("dbr:Place%d", i)
		db.Places = append(db.Places, pl)
		g.AddTerms(iri(pl), iri("dbo:country"), iri(fmt.Sprintf("dbr:Country%d", i%12)))
		g.AddTerms(iri(pl), iri("dbo:postalCode"), lit(fmt.Sprintf("%05d", i)))
		// Cold tail: rarely queried descriptive properties.
		if i%3 == 0 {
			g.AddTerms(iri(pl), iri("dbo:wappen"), iri(fmt.Sprintf("dbr:Wappen%d.svg", i)))
		}
		if i%4 == 0 {
			g.AddTerms(iri(pl), iri("dbo:imageSkyline"), iri(fmt.Sprintf("dbr:Skyline%d.jpg", i)))
		}
	}
	for i := 0; i < nPersons; i++ {
		p := fmt.Sprintf("dbr:Person%d", i)
		db.Persons = append(db.Persons, p)
		g.AddTerms(iri(p), iri("foaf:name"), lit(fmt.Sprintf("Person %d", i)))
		g.AddTerms(iri(p), iri("dbo:mainInterest"), iri(db.Topics[r.intn(nTopics)]))
		g.AddTerms(iri(p), iri("dbo:placeOfDeath"), iri(db.Places[r.intn(nPlaces)]))
		if i > 0 && r.intn(10) < 7 {
			g.AddTerms(iri(p), iri("dbo:influencedBy"), iri(db.Persons[r.intn(i)]))
		}
		if r.intn(10) < 4 {
			g.AddTerms(iri(p), iri("dbo:birthPlace"), iri(db.Places[r.intn(nPlaces)]))
		}
		// Cold tail on persons.
		if i%5 == 0 {
			g.AddTerms(iri(p), iri("dbo:viaf"), lit(fmt.Sprintf("%09d", i)))
		}
		if i%6 == 0 {
			g.AddTerms(iri(p), iri("dbo:wikiPageUsesTemplate"), iri(fmt.Sprintf("dbt:Template%d", i%7)))
		}
	}

	log, err := db.generateLog(o.Queries, r)
	if err != nil {
		return nil, err
	}
	db.Log = log
	g.Freeze() // benchmark datasets are read-only once generated
	return db, nil
}

// logTemplate is one query shape with placeholders and a relative weight.
type logTemplate struct {
	text   string
	weight int
}

// dbpediaTemplates mirrors the DBPSB observation: a handful of shapes
// dominate (97% coverage for the frequent set), plus rare cold-property
// shapes.
var dbpediaTemplates = []logTemplate{
	{`SELECT ?x ?n WHERE { ?x <foaf:name> ?n . ?x <dbo:mainInterest> %topic% . }`, 84},
	{`SELECT ?x WHERE { ?x <foaf:name> ?n . ?x <dbo:influencedBy> %person% . }`, 54},
	{`SELECT ?x ?c WHERE { ?x <dbo:placeOfDeath> ?p . ?p <dbo:country> ?c . }`, 42},
	{`SELECT ?p WHERE { ?p <dbo:country> %country% . ?p <dbo:postalCode> ?z . }`, 36},
	{`SELECT ?x WHERE { ?x <foaf:name> ?n . ?x <dbo:placeOfDeath> %place% . }`, 27},
	{`SELECT ?x ?y WHERE { ?x <dbo:influencedBy> ?y . ?y <dbo:mainInterest> %topic% . }`, 21},
	{`SELECT ?x WHERE { ?x <dbo:birthPlace> %place% . }`, 15},
	{`SELECT ?x ?n WHERE { ?x <foaf:name> ?n . ?x <dbo:influencedBy> ?y . ?y <foaf:name> ?m . }`, 12},
	// Rare shapes over cold properties: ~1% of the log combined, so a 1%
	// minimum-support threshold keeps these properties cold.
	{`SELECT ?x WHERE { ?x <dbo:viaf> ?v . }`, 1},
	{`SELECT ?x WHERE { ?x <dbo:wappen> ?w . }`, 1},
	{`SELECT ?x WHERE { ?x <dbo:wikiPageUsesTemplate> %template% . }`, 1},
}

func (db *DBpedia) generateLog(n int, r *rng) ([]*sparql.Graph, error) {
	total := 0
	for _, t := range dbpediaTemplates {
		total += t.weight
	}
	parser := sparql.NewParser(db.Graph.Dict)
	out := make([]*sparql.Graph, 0, n)
	for i := 0; i < n; i++ {
		roll := r.intn(total)
		var tpl logTemplate
		for _, t := range dbpediaTemplates {
			if roll < t.weight {
				tpl = t
				break
			}
			roll -= t.weight
		}
		text := db.fill(tpl.text, r)
		q, err := parser.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("workload: template %q: %w", tpl.text, err)
		}
		out = append(out, q)
	}
	return out, nil
}

func (db *DBpedia) fill(text string, r *rng) string {
	pick := func(pool []string) string {
		if len(pool) == 0 {
			return "dbr:missing"
		}
		return pool[r.intn(len(pool))]
	}
	repl := strings.NewReplacer(
		"%topic%", "<"+pick(db.Topics)+">",
		"%person%", "<"+pick(db.Persons)+">",
		"%place%", "<"+pick(db.Places)+">",
		"%country%", fmt.Sprintf("<dbr:Country%d>", r.intn(12)),
		"%template%", fmt.Sprintf("<dbt:Template%d>", r.intn(7)),
	)
	return repl.Replace(text)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

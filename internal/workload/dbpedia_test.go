package workload

import (
	"testing"

	"rdffrag/internal/fragment"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
)

func TestGenerateDBpediaSizes(t *testing.T) {
	db, err := GenerateDBpedia(DBpediaOptions{Triples: 5000, Queries: 200, Seed: 3})
	if err != nil {
		t.Fatalf("GenerateDBpedia: %v", err)
	}
	n := db.Graph.NumTriples()
	if n < 2500 || n > 10000 {
		t.Errorf("triples = %d, want near 5000", n)
	}
	if len(db.Log) != 200 {
		t.Errorf("log = %d queries", len(db.Log))
	}
}

func TestGenerateDBpediaDeterministic(t *testing.T) {
	a, _ := GenerateDBpedia(DBpediaOptions{Triples: 2000, Queries: 50, Seed: 9})
	b, _ := GenerateDBpedia(DBpediaOptions{Triples: 2000, Queries: 50, Seed: 9})
	if a.Graph.NumTriples() != b.Graph.NumTriples() || len(a.Log) != len(b.Log) {
		t.Fatal("same seed produced different corpora")
	}
}

func TestLogIsTemplateDominated(t *testing.T) {
	db, err := GenerateDBpedia(DBpediaOptions{Triples: 5000, Queries: 500, Seed: 1})
	if err != nil {
		t.Fatalf("GenerateDBpedia: %v", err)
	}
	// Mining at 1% of the log must find a handful of frequent patterns
	// that cover the overwhelming majority of queries (the 97% story).
	minSup := len(db.Log) / 100
	ps := (&mining.Miner{MinSup: minSup}).Mine(db.Log)
	if len(ps) == 0 {
		t.Fatal("no frequent patterns in template-dominated log")
	}
	cov := mining.Coverage(ps, db.Log)
	if cov < 0.9 {
		t.Errorf("coverage = %f, want >= 0.9", cov)
	}
}

func TestHotColdSplitOnDBpedia(t *testing.T) {
	db, err := GenerateDBpedia(DBpediaOptions{Triples: 5000, Queries: 300, Seed: 2})
	if err != nil {
		t.Fatalf("GenerateDBpedia: %v", err)
	}
	theta := len(db.Log) / 100
	hc := fragment.SplitHotCold(db.Graph, db.Log, theta)
	if hc.Cold.NumTriples() == 0 {
		t.Error("no cold edges: the cold tail is missing")
	}
	if hc.Hot.NumTriples() == 0 {
		t.Fatal("no hot edges")
	}
	// wappen must be cold, foaf:name hot.
	if wappen, ok := db.Graph.Dict.Lookup(rdf.NewIRI("dbo:wappen")); ok && hc.FreqProps[wappen] {
		t.Error("dbo:wappen should be cold")
	}
	name, _ := db.Graph.Dict.Lookup(rdf.NewIRI("foaf:name"))
	if !hc.FreqProps[name] {
		t.Error("foaf:name should be hot")
	}
}

func TestLogQueriesHaveConstants(t *testing.T) {
	db, err := GenerateDBpedia(DBpediaOptions{Triples: 3000, Queries: 100, Seed: 4})
	if err != nil {
		t.Fatalf("GenerateDBpedia: %v", err)
	}
	withConst := 0
	for _, q := range db.Log {
		for _, v := range q.Verts {
			if !v.IsVar() {
				withConst++
				break
			}
		}
	}
	if withConst == 0 {
		t.Error("no query carries constants; minterm harvesting would be pointless")
	}
}

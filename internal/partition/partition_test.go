package partition

import (
	"testing"
)

// ring builds a cycle of n vertices.
func ring(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	return g
}

// twoClusters builds two dense cliques joined by a single edge.
func twoClusters(size int) *Graph {
	g := NewGraph(2 * size)
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddEdge(base+i, base+j, 1)
			}
		}
	}
	g.AddEdge(0, size, 1) // bridge
	return g
}

func TestPartitionAssignsAllVertices(t *testing.T) {
	g := ring(100)
	part := g.Partition(4, Options{Seed: 1})
	if len(part) != 100 {
		t.Fatalf("part length = %d", len(part))
	}
	counts := map[int]int{}
	for _, p := range part {
		if p < 0 || p >= 4 {
			t.Fatalf("part id %d out of range", p)
		}
		counts[p]++
	}
	if len(counts) != 4 {
		t.Errorf("only %d parts used", len(counts))
	}
}

func TestPartitionBalance(t *testing.T) {
	g := ring(200)
	part := g.Partition(4, Options{Seed: 7, Imbalance: 0.15})
	counts := make([]int, 4)
	for _, p := range part {
		counts[p]++
	}
	for p, c := range counts {
		if c < 20 || c > 90 {
			t.Errorf("part %d has %d vertices: badly unbalanced %v", p, c, counts)
		}
	}
}

func TestPartitionFindsNaturalCut(t *testing.T) {
	g := twoClusters(20)
	part := g.Partition(2, Options{Seed: 3})
	cut := g.EdgeCut(part)
	// The natural cut is 1 (the bridge); allow a little slack but it must
	// be far below a random split (~ size²/2 for cliques).
	if cut > 10 {
		t.Errorf("cut = %d, want near 1", cut)
	}
	// Cluster members should be co-located.
	same := 0
	for i := 1; i < 20; i++ {
		if part[i] == part[0] {
			same++
		}
	}
	if same < 15 {
		t.Errorf("first clique split: only %d/19 with vertex 0", same)
	}
}

func TestPartitionK1(t *testing.T) {
	g := ring(10)
	part := g.Partition(1, Options{})
	for _, p := range part {
		if p != 0 {
			t.Fatalf("k=1 produced part %d", p)
		}
	}
	if g.EdgeCut(part) != 0 {
		t.Error("k=1 cut non-zero")
	}
}

func TestPartitionDisconnected(t *testing.T) {
	g := NewGraph(30) // 15 isolated pairs
	for i := 0; i < 30; i += 2 {
		g.AddEdge(i, i+1, 1)
	}
	part := g.Partition(3, Options{Seed: 11})
	counts := map[int]int{}
	for _, p := range part {
		counts[p]++
	}
	if len(counts) != 3 {
		t.Errorf("parts used = %d, want 3", len(counts))
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := twoClusters(15)
	p1 := g.Partition(3, Options{Seed: 42})
	p2 := g.Partition(3, Options{Seed: 42})
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestAddEdgeMergesWeights(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 1, 4)
	if len(g.Adj[0]) != 1 || g.Adj[0][0].W != 7 {
		t.Errorf("adjacency = %+v", g.Adj[0])
	}
	g.AddEdge(1, 1, 9) // self loop ignored
	if len(g.Adj[1]) != 1 {
		t.Errorf("self loop stored: %+v", g.Adj[1])
	}
}

func TestEdgeCutZeroWhenTogether(t *testing.T) {
	g := ring(8)
	part := make([]int, 8)
	if g.EdgeCut(part) != 0 {
		t.Error("cut of single-part assignment non-zero")
	}
	part[0] = 1
	if g.EdgeCut(part) != 2 {
		t.Errorf("cut = %d, want 2", g.EdgeCut(part))
	}
}

func TestCoarsenPreservesWeight(t *testing.T) {
	g := ring(64)
	cg, mapping := coarsen(g, 5)
	if cg.NumVertices() >= g.NumVertices() {
		t.Fatalf("coarsening did not shrink: %d -> %d", g.NumVertices(), cg.NumVertices())
	}
	if cg.totalVWeight() != g.totalVWeight() {
		t.Errorf("vertex weight not preserved: %d vs %d", cg.totalVWeight(), g.totalVWeight())
	}
	for v, cv := range mapping {
		if cv < 0 || cv >= cg.NumVertices() {
			t.Fatalf("vertex %d mapped to %d", v, cv)
		}
	}
}

package partition

import "testing"

func BenchmarkPartitionRing(b *testing.B) {
	g := ring(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Partition(8, Options{Seed: uint64(i + 1)})
	}
}

func BenchmarkPartitionClusters(b *testing.B) {
	g := twoClusters(40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Partition(2, Options{Seed: uint64(i + 1)})
	}
}

// Package partition is a self-contained substitute for METIS [12], used by
// the WARP baseline: a multilevel graph partitioner with heavy-edge
// matching coarsening, greedy region-growing initial partitioning and
// boundary Kernighan–Lin/Fiduccia–Mattheyses refinement. It minimizes edge
// cut under a vertex-weight balance constraint — the same objective family
// as METIS, which is all the baseline comparison needs (see DESIGN.md §3).
package partition

import (
	"sort"
)

// Graph is an undirected weighted graph in adjacency form. Parallel edges
// should be pre-merged into weights.
type Graph struct {
	// Adj[v] lists the neighbors of v.
	Adj [][]Neighbor
	// VWeight[v] is the vertex weight (1 for plain vertices; coarsened
	// vertices accumulate weight).
	VWeight []int
}

// Neighbor is one incident edge.
type Neighbor struct {
	V int // the other endpoint
	W int // edge weight
}

// NewGraph allocates an empty graph with n vertices of unit weight.
func NewGraph(n int) *Graph {
	g := &Graph{Adj: make([][]Neighbor, n), VWeight: make([]int, n)}
	for i := range g.VWeight {
		g.VWeight[i] = 1
	}
	return g
}

// AddEdge inserts an undirected edge, merging weight into an existing
// edge if present.
func (g *Graph) AddEdge(u, v, w int) {
	if u == v {
		return
	}
	g.addHalf(u, v, w)
	g.addHalf(v, u, w)
}

func (g *Graph) addHalf(u, v, w int) {
	for i := range g.Adj[u] {
		if g.Adj[u][i].V == v {
			g.Adj[u][i].W += w
			return
		}
	}
	g.Adj[u] = append(g.Adj[u], Neighbor{V: v, W: w})
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.Adj) }

// totalVWeight sums vertex weights.
func (g *Graph) totalVWeight() int {
	t := 0
	for _, w := range g.VWeight {
		t += w
	}
	return t
}

// Options tunes Partition.
type Options struct {
	// Imbalance is the allowed part weight slack, e.g. 0.05 lets a part
	// grow 5% beyond the average. 0 means 0.1.
	Imbalance float64
	// CoarsenTo stops coarsening when the graph is this small. 0 means
	// max(64, 8·k).
	CoarsenTo int
	// RefinePasses caps KL/FM sweeps per level. 0 means 4.
	RefinePasses int
	// Seed drives the deterministic pseudo-random vertex visit order.
	Seed uint64
}

// Partition splits the graph into k parts, returning part[v] ∈ [0,k).
func (g *Graph) Partition(k int, opts Options) []int {
	n := g.NumVertices()
	if k < 1 {
		k = 1
	}
	part := make([]int, n)
	if k == 1 || n == 0 {
		return part
	}
	if opts.Imbalance == 0 {
		opts.Imbalance = 0.1
	}
	if opts.CoarsenTo == 0 {
		opts.CoarsenTo = 8 * k
		if opts.CoarsenTo < 64 {
			opts.CoarsenTo = 64
		}
	}
	if opts.RefinePasses == 0 {
		opts.RefinePasses = 4
	}

	// Multilevel descent.
	levels := []*level{{g: g}}
	cur := g
	for cur.NumVertices() > opts.CoarsenTo {
		nxt, mapping := coarsen(cur, opts.Seed+uint64(len(levels)))
		if nxt.NumVertices() >= cur.NumVertices() {
			break // no further reduction possible
		}
		levels[len(levels)-1].mapping = mapping
		levels = append(levels, &level{g: nxt})
		cur = nxt
	}

	// Initial partition on the coarsest graph.
	coarse := levels[len(levels)-1].g
	cpart := initialPartition(coarse, k, opts)
	refine(coarse, cpart, k, opts)

	// Project back up, refining at each level.
	for li := len(levels) - 2; li >= 0; li-- {
		lvl := levels[li]
		fine := lvl.g
		fpart := make([]int, fine.NumVertices())
		for v := range fpart {
			fpart[v] = cpart[lvl.mapping[v]]
		}
		refine(fine, fpart, k, opts)
		cpart = fpart
	}
	copy(part, cpart)
	return part
}

type level struct {
	g       *Graph
	mapping []int // fine vertex -> coarse vertex (set on all but coarsest)
}

// coarsen contracts a heavy-edge matching.
func coarsen(g *Graph, seed uint64) (*Graph, []int) {
	n := g.NumVertices()
	matchOf := make([]int, n)
	for i := range matchOf {
		matchOf[i] = -1
	}
	order := permute(n, seed)
	for _, v := range order {
		if matchOf[v] != -1 {
			continue
		}
		best, bestW := -1, -1
		for _, nb := range g.Adj[v] {
			if matchOf[nb.V] == -1 && nb.V != v && nb.W > bestW {
				best, bestW = nb.V, nb.W
			}
		}
		if best == -1 {
			matchOf[v] = v // unmatched: survives alone
		} else {
			matchOf[v] = best
			matchOf[best] = v
		}
	}
	// Assign coarse IDs.
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if mapping[v] != -1 {
			continue
		}
		mapping[v] = next
		if m := matchOf[v]; m != v && m != -1 {
			mapping[m] = next
		}
		next++
	}
	cg := &Graph{Adj: make([][]Neighbor, next), VWeight: make([]int, next)}
	for v := 0; v < n; v++ {
		cg.VWeight[mapping[v]] += g.VWeight[v]
	}
	for v := 0; v < n; v++ {
		cv := mapping[v]
		for _, nb := range g.Adj[v] {
			cu := mapping[nb.V]
			if cu != cv && v < nb.V { // each undirected edge contracted once
				cg.AddEdge(cv, cu, nb.W)
			}
		}
	}
	return cg, mapping
}

// initialPartition grows k regions greedily from spread-out seeds,
// balancing vertex weight.
func initialPartition(g *Graph, k int, opts Options) []int {
	n := g.NumVertices()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	target := (g.totalVWeight() + k - 1) / k
	order := permute(n, opts.Seed+12345)

	// Seeds: pick k vertices far apart by simply striding the permutation.
	weights := make([]int, k)
	var frontiers [][]int
	for p := 0; p < k; p++ {
		seedV := order[(p*n)/k]
		if part[seedV] != -1 { // already taken; find any free vertex
			for _, v := range order {
				if part[v] == -1 {
					seedV = v
					break
				}
			}
		}
		part[seedV] = p
		weights[p] += g.VWeight[seedV]
		frontiers = append(frontiers, []int{seedV})
	}
	// BFS region growing, always expanding the lightest part.
	for {
		p := -1
		for i := 0; i < k; i++ {
			if len(frontiers[i]) > 0 && (p == -1 || weights[i] < weights[p]) {
				p = i
			}
		}
		if p == -1 {
			break
		}
		var next []int
		grew := false
		for _, v := range frontiers[p] {
			for _, nb := range g.Adj[v] {
				if part[nb.V] == -1 && weights[p] < target+target/4 {
					part[nb.V] = p
					weights[p] += g.VWeight[nb.V]
					next = append(next, nb.V)
					grew = true
				}
			}
		}
		frontiers[p] = next
		if !grew && len(next) == 0 {
			frontiers[p] = nil
		}
	}
	// Unreached vertices (disconnected): assign to the lightest part.
	for _, v := range order {
		if part[v] == -1 {
			p := 0
			for i := 1; i < k; i++ {
				if weights[i] < weights[p] {
					p = i
				}
			}
			part[v] = p
			weights[p] += g.VWeight[v]
		}
	}
	return part
}

// refine runs boundary FM passes: move vertices to the neighboring part
// with the largest cut gain while keeping balance.
func refine(g *Graph, part []int, k int, opts Options) {
	n := g.NumVertices()
	weights := make([]int, k)
	for v := 0; v < n; v++ {
		weights[part[v]] += g.VWeight[v]
	}
	maxW := int(float64(g.totalVWeight()) / float64(k) * (1 + opts.Imbalance))
	if maxW < 1 {
		maxW = 1
	}
	order := permute(n, opts.Seed+999)
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := 0
		for _, v := range order {
			home := part[v]
			// Gain per candidate part.
			gain := map[int]int{}
			internal := 0
			for _, nb := range g.Adj[v] {
				if part[nb.V] == home {
					internal += nb.W
				} else {
					gain[part[nb.V]] += nb.W
				}
			}
			bestP, bestGain := -1, 0
			// Deterministic candidate order.
			cands := make([]int, 0, len(gain))
			for p := range gain {
				cands = append(cands, p)
			}
			sort.Ints(cands)
			for _, p := range cands {
				gn := gain[p] - internal
				if gn > bestGain && weights[p]+g.VWeight[v] <= maxW {
					bestP, bestGain = p, gn
				}
			}
			if bestP >= 0 {
				weights[home] -= g.VWeight[v]
				weights[bestP] += g.VWeight[v]
				part[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// EdgeCut computes the total weight of edges crossing parts.
func (g *Graph) EdgeCut(part []int) int {
	cut := 0
	for v := range g.Adj {
		for _, nb := range g.Adj[v] {
			if v < nb.V && part[v] != part[nb.V] {
				cut += nb.W
			}
		}
	}
	return cut
}

// permute returns a deterministic pseudo-random permutation of [0,n)
// using an xorshift generator (no math/rand to keep runs reproducible
// across Go versions).
func permute(n int, seed uint64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	x := seed | 1
	for i := n - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

package allocation

import (
	"testing"
)

func TestRoundRobinCompleteAndDisjoint(t *testing.T) {
	fr, _, _ := buildFragmentation(t)
	alloc := RoundRobin(fr, 3)
	if len(alloc.Sites) != 3 {
		t.Fatalf("sites = %d", len(alloc.Sites))
	}
	seen := map[int]bool{}
	for _, site := range alloc.Sites {
		for _, f := range site {
			if seen[f.ID] {
				t.Errorf("fragment %d allocated twice", f.ID)
			}
			seen[f.ID] = true
		}
	}
	want := len(fr.Fragments)
	if fr.Cold != nil && fr.Cold.Graph.NumTriples() > 0 {
		want++
	}
	if len(seen) != want {
		t.Errorf("allocated %d, want %d", len(seen), want)
	}
	// Round-robin spreads counts evenly (±1, plus possibly the cold one).
	counts := make([]int, 3)
	for s, site := range alloc.Sites {
		counts[s] = len(site)
	}
	max, min := counts[0], counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max-min > 2 {
		t.Errorf("round robin uneven: %v", counts)
	}
}

func TestRoundRobinSingleSite(t *testing.T) {
	fr, _, _ := buildFragmentation(t)
	alloc := RoundRobin(fr, 1)
	if len(alloc.Sites) != 1 {
		t.Fatalf("sites = %d", len(alloc.Sites))
	}
	for id, s := range alloc.SiteOf {
		if s != 0 {
			t.Errorf("fragment %d on site %d", id, s)
		}
	}
}

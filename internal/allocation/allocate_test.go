package allocation

import (
	"testing"

	"rdffrag/internal/fap"
	"rdffrag/internal/fragment"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

func buildFragmentation(t *testing.T) (*fragment.Fragmentation, []*sparql.Graph, *rdf.Graph) {
	t.Helper()
	g := rdf.NewGraph(nil)
	add := func(s, p, o string) { g.AddTerms(rdf.NewIRI(s), rdf.NewIRI(p), rdf.NewIRI(o)) }
	for i := 0; i < 30; i++ {
		s := string(rune('A' + i%26))
		add("p"+s, "name", "n"+s)
		add("p"+s, "mainInterest", "i"+s)
		add("p"+s, "placeOfDeath", "c"+s)
		add("c"+s, "country", "Italy")
		add("c"+s, "postalCode", "z"+s)
	}
	d := g.Dict
	var w []*sparql.Graph
	// Queries that co-access name+mainInterest, and separately
	// placeOfDeath+country+postalCode.
	for i := 0; i < 10; i++ {
		w = append(w, sparql.MustParse(d, `SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`))
	}
	for i := 0; i < 8; i++ {
		w = append(w, sparql.MustParse(d, `SELECT ?x WHERE { ?x <placeOfDeath> ?p . ?p <country> ?c . ?p <postalCode> ?z . }`))
	}
	hc := fragment.SplitHotCold(g, w, 2)
	ps := (&mining.Miner{MinSup: 3}).Mine(w)
	sel, err := (&fap.Selector{StorageCapacity: 10 * hc.Hot.NumTriples()}).Select(ps, w, hc.Hot)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	return fragment.Vertical(sel, hc), w, g
}

func TestAffinityCoAccess(t *testing.T) {
	fr, w, _ := buildFragmentation(t)
	aff := Affinity(fr.Fragments, w)
	if len(aff) == 0 {
		t.Fatal("no affinity computed")
	}
	// Every affinity must be positive and bounded by the workload size.
	for k, v := range aff {
		if v <= 0 || v > len(w) {
			t.Errorf("affinity %v = %d out of range", k, v)
		}
	}
}

func TestAllocatePartitionsAllFragments(t *testing.T) {
	fr, w, _ := buildFragmentation(t)
	const m = 4
	alloc := Allocate(fr, w, m)
	if len(alloc.Sites) != m {
		t.Fatalf("sites = %d, want %d", len(alloc.Sites), m)
	}
	// Disjoint and complete: every hot fragment on exactly one site.
	seen := make(map[int]int)
	for s, site := range alloc.Sites {
		for _, f := range site {
			if prev, ok := seen[f.ID]; ok {
				t.Errorf("fragment %d on sites %d and %d", f.ID, prev, s)
			}
			seen[f.ID] = s
		}
	}
	want := len(fr.Fragments)
	if fr.Cold != nil && fr.Cold.Graph.NumTriples() > 0 {
		want++
	}
	if len(seen) != want {
		t.Errorf("allocated %d fragments, want %d", len(seen), want)
	}
	// SiteOf agrees with Sites.
	for id, s := range alloc.SiteOf {
		if seen[id] != s {
			t.Errorf("SiteOf[%d]=%d but found on %d", id, s, seen[id])
		}
	}
}

func TestAllocateAffineFragmentsColocated(t *testing.T) {
	fr, w, g := buildFragmentation(t)
	alloc := Allocate(fr, w, 2)
	// The one-edge fragments for country and postalCode are co-accessed by
	// 8 queries; with only 2 sites they should land together.
	country, _ := g.Dict.Lookup(rdf.NewIRI("country"))
	postal, _ := g.Dict.Lookup(rdf.NewIRI("postalCode"))
	siteOfPred := func(p rdf.ID) int {
		for _, f := range fr.Fragments {
			if f.Pattern.Size() == 1 && len(f.Pattern.Graph.Predicates()) == 1 && f.Pattern.Graph.Predicates()[0] == p {
				return alloc.SiteOf[f.ID]
			}
		}
		t.Fatalf("one-edge fragment for predicate %d not found", p)
		return -1
	}
	if siteOfPred(country) != siteOfPred(postal) {
		t.Error("strongly affine fragments placed on different sites")
	}
}

func TestAllocateSingleSite(t *testing.T) {
	fr, w, _ := buildFragmentation(t)
	alloc := Allocate(fr, w, 1)
	if len(alloc.Sites) != 1 {
		t.Fatalf("sites = %d", len(alloc.Sites))
	}
	if alloc.Balance() != 1.0 {
		t.Errorf("single-site balance = %f", alloc.Balance())
	}
}

func TestAllocateMoreSitesThanFragments(t *testing.T) {
	fr, w, _ := buildFragmentation(t)
	m := len(fr.Fragments) + 5
	alloc := Allocate(fr, w, m)
	if len(alloc.Sites) != m {
		t.Fatalf("sites = %d, want %d", len(alloc.Sites), m)
	}
	nonEmpty := 0
	for _, s := range alloc.Sites {
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Error("all sites empty")
	}
}

func TestBalanceMetric(t *testing.T) {
	fr, w, _ := buildFragmentation(t)
	alloc := Allocate(fr, w, 3)
	b := alloc.Balance()
	if b < 1.0 {
		t.Errorf("balance %f < 1", b)
	}
	if b > float64(len(alloc.Sites)) {
		t.Errorf("balance %f exceeds site count", b)
	}
}

func TestColdFragmentPlaced(t *testing.T) {
	fr, w, _ := buildFragmentation(t)
	if fr.Cold == nil || fr.Cold.Graph.NumTriples() == 0 {
		t.Skip("no cold data in this setup")
	}
	alloc := Allocate(fr, w, 3)
	if alloc.ColdSite < 0 || alloc.ColdSite >= 3 {
		t.Errorf("cold site = %d", alloc.ColdSite)
	}
}

// Package allocation distributes fragments among sites (Section 6 of the
// paper): the fragment affinity metric (Definition 13) measures how often
// two fragments are accessed by the same workload query, an allocation
// graph (Definition 14) is built over it, and a PNN-style agglomerative
// clustering (Algorithm 2) merges fragments into m clusters, one per site.
package allocation

import (
	"sort"

	"rdffrag/internal/fragment"
	"rdffrag/internal/sparql"
)

// Allocation maps fragments to sites. Sites are numbered 0..m-1.
type Allocation struct {
	// Sites lists the fragments placed at each site.
	Sites [][]*fragment.Fragment
	// SiteOf maps fragment ID -> site index.
	SiteOf map[int]int
	// ColdSite is the site storing the cold fragment (-1 if none).
	ColdSite int
}

// Affinity computes the fragment affinity metric between all pairs of hot
// fragments: aff(F,F') = Σ_k use(Qk,F) × use(Qk,F').
func Affinity(frags []*fragment.Fragment, workload []*sparql.Graph) map[[2]int]int {
	aff := make(map[[2]int]int)
	for _, q := range workload {
		var touched []int
		for i, f := range frags {
			if f.Kind == fragment.ColdKind {
				continue
			}
			if f.RelevantTo(q) {
				touched = append(touched, i)
			}
		}
		for a := 0; a < len(touched); a++ {
			for b := a + 1; b < len(touched); b++ {
				key := [2]int{touched[a], touched[b]}
				aff[key]++
			}
		}
	}
	return aff
}

// Allocate clusters the fragmentation's hot fragments into m sites by
// iteratively merging the cluster pair with the highest inter-cluster
// affinity density, then assigns the cold fragment to the least-loaded
// site. m must be >= 1; when m exceeds the fragment count the extra sites
// stay empty.
func Allocate(fr *fragment.Fragmentation, workload []*sparql.Graph, m int) *Allocation {
	if m < 1 {
		m = 1
	}
	frags := fr.Fragments
	aff := Affinity(frags, workload)

	// Horizontal fragmentation deliberately distributes one pattern's
	// fragments among different sites to maximize intra-query parallelism
	// (Section 5.2), so sibling fragments repel each other during
	// clustering.
	spreadSiblings := fr.Kind == fragment.HorizontalKind
	patternOf := make([]string, len(frags))
	for i, f := range frags {
		if f.Pattern != nil {
			patternOf[i] = f.Pattern.Code
		}
	}

	// Union-find clusters over fragment positions.
	n := len(frags)
	parent := make([]int, n)
	size := make([]int, n) // cluster cardinality
	load := make([]int, n) // cluster edge load, for tie-breaking
	for i := range parent {
		parent[i] = i
		size[i] = 1
		load[i] = frags[i].Graph.NumTriples()
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Inter-cluster total affinity, keyed by root pair (lo,hi).
	inter := make(map[[2]int]int, len(aff))
	for k, w := range aff {
		inter[k] = w
	}

	clusters := n
	for clusters > m {
		// Pick the pair with the highest density: affinity / (|A|·|B|),
		// breaking ties toward the smaller combined load to keep sites
		// balanced; merge pairs with zero affinity only when necessary.
		bestA, bestB := -1, -1
		var bestDensity float64
		bestLoad := 0
		for k, w := range inter {
			a, b := find(k[0]), find(k[1])
			if a == b {
				continue
			}
			d := float64(w) / float64(size[a]*size[b])
			if spreadSiblings {
				if col := siblingCollisions(parent, find, a, b, patternOf); col > 0 {
					d /= float64(1 + 4*col)
				}
			}
			l := load[a] + load[b]
			if bestA == -1 || d > bestDensity || (d == bestDensity && l < bestLoad) {
				bestA, bestB, bestDensity, bestLoad = a, b, d, l
			}
		}
		if bestA == -1 {
			// No affinity edges remain across clusters: merge the two
			// lightest clusters.
			roots := clusterRoots(parent, find)
			sort.Slice(roots, func(i, j int) bool { return load[roots[i]] < load[roots[j]] })
			bestA, bestB = roots[0], roots[1]
		}
		// Merge bestB into bestA.
		parent[bestB] = bestA
		size[bestA] += size[bestB]
		load[bestA] += load[bestB]
		// Compact the inter map lazily: re-key entries touching bestB.
		for k, w := range inter {
			a, b := find(k[0]), find(k[1])
			if a == b {
				delete(inter, k)
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			nk := [2]int{lo, hi}
			if nk != k {
				inter[nk] += w
				delete(inter, k)
			}
		}
		clusters--
	}

	// Materialize sites deterministically: order clusters by smallest
	// member fragment ID.
	roots := clusterRoots(parent, find)
	sort.Slice(roots, func(i, j int) bool {
		return minMember(parent, find, roots[i], frags) < minMember(parent, find, roots[j], frags)
	})
	siteIdx := make(map[int]int, len(roots))
	for i, r := range roots {
		siteIdx[r] = i
	}
	alloc := &Allocation{
		Sites:    make([][]*fragment.Fragment, m),
		SiteOf:   make(map[int]int, n),
		ColdSite: -1,
	}
	for i, f := range frags {
		s := siteIdx[find(i)]
		alloc.Sites[s] = append(alloc.Sites[s], f)
		alloc.SiteOf[f.ID] = s
	}
	// Cold fragment to the least-loaded site.
	if fr.Cold != nil && fr.Cold.Graph.NumTriples() > 0 {
		best, bestLoad := 0, -1
		for s := range alloc.Sites {
			l := 0
			for _, f := range alloc.Sites[s] {
				l += f.Graph.NumTriples()
			}
			if bestLoad == -1 || l < bestLoad {
				best, bestLoad = s, l
			}
		}
		alloc.Sites[best] = append(alloc.Sites[best], fr.Cold)
		alloc.SiteOf[fr.Cold.ID] = best
		alloc.ColdSite = best
	}
	return alloc
}

// siblingCollisions counts pattern codes present in both clusters: merging
// them would co-locate fragments the horizontal strategy wants spread.
func siblingCollisions(parent []int, find func(int) int, a, b int, patternOf []string) int {
	inA := make(map[string]bool)
	for i := range parent {
		if find(i) == a && patternOf[i] != "" {
			inA[patternOf[i]] = true
		}
	}
	col := 0
	for i := range parent {
		if find(i) == b && inA[patternOf[i]] {
			col++
		}
	}
	return col
}

func clusterRoots(parent []int, find func(int) int) []int {
	seen := make(map[int]bool)
	var roots []int
	for i := range parent {
		r := find(i)
		if !seen[r] {
			seen[r] = true
			roots = append(roots, r)
		}
	}
	return roots
}

func minMember(parent []int, find func(int) int, root int, frags []*fragment.Fragment) int {
	best := 1 << 30
	for i := range parent {
		if find(i) == root && frags[i].ID < best {
			best = frags[i].ID
		}
	}
	return best
}

// RoundRobin is the ablation baseline for Allocate: fragments are dealt
// to sites in ID order with no affinity awareness.
func RoundRobin(fr *fragment.Fragmentation, m int) *Allocation {
	if m < 1 {
		m = 1
	}
	alloc := &Allocation{
		Sites:    make([][]*fragment.Fragment, m),
		SiteOf:   make(map[int]int),
		ColdSite: -1,
	}
	for i, f := range fr.Fragments {
		s := i % m
		alloc.Sites[s] = append(alloc.Sites[s], f)
		alloc.SiteOf[f.ID] = s
	}
	if fr.Cold != nil && fr.Cold.Graph.NumTriples() > 0 {
		s := len(fr.Fragments) % m
		alloc.Sites[s] = append(alloc.Sites[s], fr.Cold)
		alloc.SiteOf[fr.Cold.ID] = s
		alloc.ColdSite = s
	}
	return alloc
}

// Balance returns the ratio of the heaviest site's edge load to the
// average load — 1.0 is perfectly balanced. Used by the offline-time and
// throughput experiments to characterize allocations.
func (a *Allocation) Balance() float64 {
	if len(a.Sites) == 0 {
		return 1
	}
	total, max := 0, 0
	for _, site := range a.Sites {
		l := 0
		for _, f := range site {
			l += f.Graph.NumTriples()
		}
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	avg := float64(total) / float64(len(a.Sites))
	return float64(max) / avg
}

package transport

// Wire format of the site RPC. A request is one JSON document; the
// response is a stream of newline-delimited JSON frames
// (application/x-ndjson): a header frame carrying the data epoch, zero
// or more batch frames carrying binding rows, and a terminal done frame.
// The terminal frame is what makes torn streams detectable: EOF before
// it means the stream was cut (network fault, site death) and the
// delivered prefix is incomplete — the client retries and resumes
// instead of silently accepting a truncated result.
//
// Queries travel structurally (vertices and edges with constants as
// N-Triples term keys), not as SPARQL text: Term.Key/TermFromKey
// round-trip exactly, so the encoding has no parser quirks to survive.
// Binding rows travel as raw dictionary IDs. That requires the client
// and server dictionaries to agree, which they do by construction: a
// fragment-host process builds its deployment from the same data and
// workload files with the same deterministic pipeline as the control
// site, and data-term IDs are assigned in file order. Terms a query
// interns ad hoc (constants absent from the data) never appear in
// binding rows — rows only reference matched data vertices — so
// post-load interning divergence is harmless.

import (
	"fmt"

	"rdffrag/internal/cluster"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// wireVert is one query vertex: a variable or a constant term key.
type wireVert struct {
	Var  string `json:"var,omitempty"`
	Term string `json:"term,omitempty"`
}

// wireEdge is one query edge between vertex indices.
type wireEdge struct {
	From    int    `json:"from"`
	To      int    `json:"to"`
	Pred    string `json:"pred,omitempty"`
	PredVar string `json:"predVar,omitempty"`
}

// wireQuery is the structural encoding of a basic graph pattern.
type wireQuery struct {
	Verts []wireVert `json:"verts"`
	Edges []wireEdge `json:"edges"`
}

// evalWire is the /eval request body.
type evalWire struct {
	Site        int       `json:"site"`
	Frags       []int     `json:"frags"`
	Query       wireQuery `json:"query"`
	Parallelism int       `json:"parallelism,omitempty"`
	Batch       int       `json:"batch,omitempty"`
	// Resume asks the server to skip the first Resume batches of the
	// deterministic batch sequence (they were already delivered and
	// acknowledged before a previous attempt's stream tore). Only valid
	// together with Epoch.
	Resume int `json:"resume,omitempty"`
	// Epoch is the data fingerprint the resumed prefix was produced
	// under; the server ignores Resume (and streams from scratch) when
	// its current epoch differs.
	Epoch uint64 `json:"epoch,omitempty"`
	// DictLen/DictFP fingerprint the client dictionary's first DictLen
	// terms (rdf.Dict.Fingerprint). Binding rows travel as raw IDs, so a
	// client and server whose data dictionaries diverged would silently
	// decode each other's rows to the wrong terms; both sides verify the
	// shared prefix min(client, server length) instead — full lengths
	// legitimately differ, because each side interns ad-hoc query
	// constants the other never sees. Zero means an old client; the
	// check is skipped.
	DictLen int    `json:"dictLen,omitempty"`
	DictFP  uint64 `json:"dictFp,omitempty"`
}

// frame is one NDJSON response frame, discriminated by K: "hdr" opens
// the stream, "b" carries a batch, "done" closes it, "err" reports a
// server-side failure (Retry says whether it is worth retrying).
type frame struct {
	K       string     `json:"k"`
	Epoch   uint64     `json:"epoch,omitempty"`   // hdr
	Skip    int        `json:"skip,omitempty"`    // hdr: batches skipped for resume
	DictLen int        `json:"dictLen,omitempty"` // hdr: shared dictionary prefix length
	DictFP  uint64     `json:"dictFp,omitempty"`  // hdr: server fingerprint of that prefix
	Seq     int        `json:"seq"`               // b
	Vars    []string   `json:"vars,omitempty"`    // b
	Rows    [][]rdf.ID `json:"rows,omitempty"`    // b
	Count   int        `json:"count,omitempty"`   // done: total batches in sequence
	Msg     string     `json:"msg,omitempty"`     // err
	Retry   bool       `json:"retry,omitempty"`   // err
}

// encodeQuery flattens a parsed query graph for the wire, decoding
// constant IDs to stable term keys through the control site's dict.
func encodeQuery(q *sparql.Graph, d *rdf.Dict) wireQuery {
	wq := wireQuery{Verts: make([]wireVert, len(q.Verts)), Edges: make([]wireEdge, len(q.Edges))}
	for i, v := range q.Verts {
		if v.IsVar() {
			wq.Verts[i] = wireVert{Var: v.Var}
		} else {
			wq.Verts[i] = wireVert{Term: d.Decode(v.Term).Key()}
		}
	}
	for i, e := range q.Edges {
		we := wireEdge{From: e.From, To: e.To}
		if e.IsPredVar() {
			we.PredVar = e.PredVar
		} else {
			we.Pred = d.Decode(e.Pred).Key()
		}
		wq.Edges[i] = we
	}
	return wq
}

// decodeQuery rebuilds a query graph from the wire, interning constant
// term keys through the site's dict (content-addressed; concurrent-safe).
func decodeQuery(wq wireQuery, d *rdf.Dict) (*sparql.Graph, error) {
	q := sparql.NewGraph()
	for i, wv := range wq.Verts {
		switch {
		case wv.Var != "":
			q.AddVertex(sparql.Vertex{Var: wv.Var})
		case wv.Term != "":
			t, err := rdf.TermFromKey(wv.Term)
			if err != nil {
				return nil, fmt.Errorf("transport: vertex %d: %w", i, err)
			}
			q.AddVertex(sparql.Vertex{Term: d.Encode(t)})
		default:
			return nil, fmt.Errorf("transport: vertex %d is neither var nor term", i)
		}
	}
	for i, we := range wq.Edges {
		if we.From < 0 || we.From >= len(q.Verts) || we.To < 0 || we.To >= len(q.Verts) {
			return nil, fmt.Errorf("transport: edge %d endpoints out of range", i)
		}
		e := sparql.Edge{From: we.From, To: we.To}
		switch {
		case we.PredVar != "":
			e.PredVar = we.PredVar
		case we.Pred != "":
			t, err := rdf.TermFromKey(we.Pred)
			if err != nil {
				return nil, fmt.Errorf("transport: edge %d: %w", i, err)
			}
			e.Pred = d.Encode(t)
		default:
			return nil, fmt.Errorf("transport: edge %d has neither pred nor predVar", i)
		}
		q.AddEdge(e)
	}
	return q, nil
}

// encodeRequest builds the wire form of an EvalRequest. Vertex filters
// are function values and cannot travel; the engine's streaming path
// never sets one, so this is a programming-error guard, not a runtime
// path.
func encodeRequest(req cluster.EvalRequest, d *rdf.Dict, batchSize int) (*evalWire, error) {
	if req.Filter != nil {
		return nil, fmt.Errorf("transport: vertex filters cannot be serialized to remote sites")
	}
	// Stamp the client dictionary state. Prefix fingerprints are
	// immutable (the dictionary is append-only), so the stamp stays
	// valid across every retry and hedge of this request.
	dictLen := d.Len()
	return &evalWire{
		Site:        req.SiteID,
		Frags:       append([]int(nil), req.FragIDs...),
		Query:       encodeQuery(req.Query, d),
		Parallelism: req.Parallelism,
		Batch:       batchSize,
		DictLen:     dictLen,
		DictFP:      d.Fingerprint(dictLen),
	}, nil
}

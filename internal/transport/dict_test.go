package transport

// Dictionary-agreement tests: rows cross the wire as raw dictionary
// IDs, so client and server must share the append-only dictionary
// prefix. A diverged deployment must be rejected deterministically and
// without retries — on the server (409) when the client's stamp covers
// a prefix the server holds, on the client when the server's header
// fingerprint fails to verify. A genuine prefix (client behind an
// append-only server) must keep working.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// prefixCopy clones the first n terms of d into a fresh dictionary,
// reproducing the exact ID assignment of the shared prefix.
func prefixCopy(d *rdf.Dict, n int) *rdf.Dict {
	out := rdf.NewDict()
	for i := 0; i < n; i++ {
		out.Encode(d.Decode(rdf.ID(i)))
	}
	return out
}

func TestDictMismatchServerRejectsWithoutRetry(t *testing.T) {
	c, d, _ := newTestCluster(t, 10)
	_, hs := newSite(t, c, d, nil)

	// A rogue deployment: shorter than the server's dictionary but
	// diverged from ID 0, so the server can (and must) refuse before
	// evaluating anything.
	rogue := rdf.NewDict()
	for i := 0; i < 5; i++ {
		rogue.MustIRI(fmt.Sprintf("rogue%d", i))
	}
	q := sparql.MustParse(rogue, `SELECT ?x ?y WHERE { ?x <p> ?y . }`)
	if rogue.Len() >= d.Len() {
		t.Fatalf("test setup: rogue dict (%d terms) must be shorter than the server's (%d)", rogue.Len(), d.Len())
	}

	cl := NewSiteClient(ClientConfig{BaseURL: hs.URL, Site: 0, Dict: rogue})
	got := newCollector()
	err := cl.EvalStream(context.Background(), testRequest(q), 8, got.sink)
	if err == nil {
		t.Fatal("diverged dictionary accepted by the server")
	}
	if !strings.Contains(err.Error(), "409") || !strings.Contains(err.Error(), "dictionary") {
		t.Fatalf("want an HTTP 409 dictionary error, got: %v", err)
	}
	if got.n != 0 {
		t.Fatalf("%d rows leaked past a dictionary mismatch", got.n)
	}
	m := cl.SiteMetrics()
	if m.Retries != 0 || m.Attempts != 1 {
		t.Fatalf("mismatch must not be retried: %+v", m)
	}
}

func TestDictMismatchClientRejectsWithoutRetry(t *testing.T) {
	c, d, _ := newTestCluster(t, 10)
	_, hs := newSite(t, c, d, nil)

	// A rogue deployment longer than the server's dictionary: the
	// server's prefix check cannot fire (our stamp covers terms it does
	// not hold), so the client must catch the mismatch from the header
	// fingerprint the server echoes back.
	rogue := rdf.NewDict()
	for i := 0; i < d.Len()+10; i++ {
		rogue.MustIRI(fmt.Sprintf("rogue%d", i))
	}
	q := sparql.MustParse(rogue, `SELECT ?x ?y WHERE { ?x <p> ?y . }`)

	cl := NewSiteClient(ClientConfig{BaseURL: hs.URL, Site: 0, Dict: rogue})
	got := newCollector()
	err := cl.EvalStream(context.Background(), testRequest(q), 8, got.sink)
	if err == nil {
		t.Fatal("diverged dictionary accepted by the client")
	}
	if !strings.Contains(err.Error(), "dictionary mismatch") {
		t.Fatalf("want the client-side dictionary mismatch error, got: %v", err)
	}
	if got.n != 0 {
		t.Fatalf("%d rows leaked past a dictionary mismatch", got.n)
	}
	m := cl.SiteMetrics()
	if m.Retries != 0 || m.Attempts != 1 {
		t.Fatalf("mismatch must not be retried: %+v", m)
	}
}

// TestDictPrefixClientStillWorks pins the compatibility direction: a
// client whose dictionary is a strict prefix of the server's (the
// server interned new terms after an update; the dictionary is
// append-only) evaluates normally — agreement is on the shared prefix,
// not on equal lengths.
func TestDictPrefixClientStillWorks(t *testing.T) {
	c, d, q := newTestCluster(t, 10)
	req := testRequest(q)
	want := oracle(t, c, req, 8)

	client := prefixCopy(d, d.Len())
	// The server side grows past the client's view.
	for i := 0; i < 25; i++ {
		d.MustIRI(fmt.Sprintf("later%d", i))
	}
	_, hs := newSite(t, c, d, nil)

	cq := sparql.MustParse(client, `SELECT ?x ?y WHERE { ?x <p> ?y . }`)
	cl := NewSiteClient(ClientConfig{BaseURL: hs.URL, Site: 0, Dict: client})
	got := newCollector()
	if err := cl.EvalStream(context.Background(), testRequest(cq), 8, got.sink); err != nil {
		t.Fatalf("prefix client rejected: %v", err)
	}
	if !equalMultisets(got.multiset(), want) {
		t.Errorf("prefix client rows %v != direct rows %v", got.multiset(), want)
	}
	m := cl.SiteMetrics()
	if m.Retries != 0 || m.Failures != 0 {
		t.Fatalf("prefix client should be one clean call: %+v", m)
	}
}

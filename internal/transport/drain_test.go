package transport

// Fragment-host drain and response-write-error accounting: /healthz must
// flip to 503 the moment MarkDraining is called (load balancers route
// away while in-flight evals finish), and a response body that fails to
// write after the status line must land in the response_write_errors
// metric instead of vanishing.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestSiteHealthzDraining(t *testing.T) {
	c, d, _ := newTestCluster(t, 20)
	ss, hs := newSite(t, c, d, nil)

	probe := func() (int, string) {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := probe(); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthy host: /healthz %d %q, want 200 ok", code, body)
	}
	ss.MarkDraining()
	if code, _ := probe(); code != http.StatusServiceUnavailable {
		t.Fatalf("draining host: /healthz %d, want 503", code)
	}
	// Draining does not stop /metrics — operators watch the drain there.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics while draining: %v (status %v)", err, resp)
	}
	resp.Body.Close()
}

// brokenWriter fails every body write, like a probe that disconnected
// right after the status line.
type brokenWriter struct{ h http.Header }

func (w *brokenWriter) Header() http.Header        { return w.h }
func (w *brokenWriter) Write([]byte) (int, error)  { return 0, errors.New("client gone") }
func (w *brokenWriter) WriteHeader(statusCode int) {}

func TestSiteResponseWriteErrorsCounted(t *testing.T) {
	c, d, _ := newTestCluster(t, 20)
	ss := NewSiteServer(ServerConfig{Cluster: c, Dict: d})

	ss.ServeHTTP(&brokenWriter{h: make(http.Header)}, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if got := ss.Metrics().ResponseWriteErrors; got != 1 {
		t.Fatalf("ResponseWriteErrors = %d after a failed metrics body, want 1", got)
	}

	// The counter itself is on the wire format too.
	rec := httptest.NewRecorder()
	ss.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var m struct {
		ResponseWriteErrors uint64 `json:"response_write_errors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil || m.ResponseWriteErrors != 1 {
		t.Fatalf("metrics body %.200s (err %v), want response_write_errors=1", rec.Body, err)
	}
}

package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Breaker's injectable clock deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func wantState(t *testing.T, b *Breaker, want string) {
	t.Helper()
	if got, _ := b.State(); got != want {
		t.Fatalf("breaker state = %q, want %q", got, want)
	}
}

// The full closed → open → half-open → closed cycle, plus the re-open
// branch when the half-open probe fails.
func TestBreakerLifecycle(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})

	// Closed: failures below the threshold keep admitting calls.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow #%d: %v", i, err)
		}
		b.Failure()
	}
	wantState(t, b, "closed")

	// Third consecutive failure trips the circuit.
	if err := b.Allow(); err != nil {
		t.Fatalf("closed Allow #3: %v", err)
	}
	b.Failure()
	wantState(t, b, "open")
	if _, opens := b.State(); opens != 1 {
		t.Fatalf("opens = %d, want 1", opens)
	}

	// Open: fail fast until the cooldown elapses.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Allow = %v, want ErrBreakerOpen", err)
	}
	clk.advance(999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow just before cooldown = %v, want ErrBreakerOpen", err)
	}

	// Cooldown elapsed: exactly one half-open probe gets through.
	clk.advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe Allow: %v", err)
	}
	wantState(t, b, "half-open")
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe = %v, want ErrBreakerOpen", err)
	}

	// Probe fails → re-open, and the cooldown restarts from now.
	b.Failure()
	wantState(t, b, "open")
	if _, opens := b.State(); opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow right after re-open = %v, want ErrBreakerOpen", err)
	}

	// Next probe succeeds → closed, streak reset.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe Allow: %v", err)
	}
	b.Success()
	wantState(t, b, "closed")

	// The reset streak needs a full threshold of new failures to trip.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("post-close Allow #%d: %v", i, err)
		}
		b.Failure()
	}
	wantState(t, b, "closed")
}

// A success while closed resets the consecutive-failure streak: faults
// must be consecutive to open the circuit.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second})
	b.Allow()
	b.Failure()
	b.Allow()
	b.Success()
	b.Allow()
	b.Failure()
	wantState(t, b, "closed")
	b.Allow()
	b.Failure()
	wantState(t, b, "open")
}

// Cancel releases the half-open probe slot without a health verdict:
// the circuit stays half-open and the next call may probe again.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Failure()
	wantState(t, b, "open")

	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	// The probing call was cancelled by its caller — no verdict.
	b.Cancel()
	wantState(t, b, "half-open")
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after Cancel should admit a new probe: %v", err)
	}
	b.Success()
	wantState(t, b, "closed")
}

// Under concurrent load, an open breaker past its cooldown admits
// exactly one probe; everyone else fails fast. Run with -race.
func TestBreakerConcurrentProbes(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond})
	b.Allow()
	b.Failure()
	wantState(t, b, "open")
	clk.advance(2 * time.Millisecond)

	const callers = 64
	var wg sync.WaitGroup
	admitted := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() == nil {
				admitted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for range admitted {
		n++
	}
	if n != 1 {
		t.Fatalf("admitted %d concurrent probes, want exactly 1", n)
	}
	b.Success()
	wantState(t, b, "closed")
}

// Hammer the breaker from many goroutines with mixed verdicts; the test
// is that -race stays quiet and the state stays one of the three names.
func TestBreakerConcurrentHammer(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Microsecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if err := b.Allow(); err != nil {
					continue
				}
				switch (i + j) % 3 {
				case 0:
					b.Success()
				case 1:
					b.Failure()
				default:
					b.Cancel()
				}
			}
		}()
	}
	wg.Wait()
	switch got, _ := b.State(); got {
	case "closed", "open", "half-open":
	default:
		t.Fatalf("breaker in unknown state %q", got)
	}
}

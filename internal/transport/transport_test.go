package transport

// Client/server tests over real sockets (httptest): fault-free
// equivalence with the in-process channel path, retry/resume under
// seeded chaos with exact metrics reconciliation, the frame-progress
// watchdog, hedged requests, cancellation draining the server, and the
// breaker failing fast against a dead site then recovering.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// newTestCluster builds one site holding two fragments of a simple
// <a_i> <p> <b_i> graph, split so multi-fragment streams have a
// deterministic cross-fragment batch sequence to resume into.
func newTestCluster(t *testing.T, triples int) (*cluster.Cluster, *rdf.Dict, *sparql.Graph) {
	t.Helper()
	d := rdf.NewDict()
	c := cluster.New(1, 2)
	g1, g2 := rdf.NewGraph(d), rdf.NewGraph(d)
	for i := 0; i < triples; i++ {
		g := g1
		if i%2 == 1 {
			g = g2
		}
		g.AddTerms(rdf.NewIRI(fmt.Sprintf("a%d", i)), rdf.NewIRI("p"), rdf.NewIRI(fmt.Sprintf("b%d", i)))
	}
	if err := c.Place(0, 1, g1); err != nil {
		t.Fatal(err)
	}
	if err := c.Place(0, 2, g2); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(d, `SELECT ?x ?y WHERE { ?x <p> ?y . }`)
	return c, d, q
}

func testRequest(q *sparql.Graph) cluster.EvalRequest {
	return cluster.EvalRequest{SiteID: 0, FragIDs: []int{1, 2}, Query: q}
}

// collector is a concurrency-safe sink accumulating a row multiset.
type collector struct {
	mu   sync.Mutex
	rows map[string]int
	n    int
}

func newCollector() *collector { return &collector{rows: map[string]int{}} }

func (rc *collector) sink(b *match.Bindings) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, r := range b.Rows {
		rc.rows[fmt.Sprint(r)]++
		rc.n++
	}
	return nil
}

func (rc *collector) multiset() map[string]int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make(map[string]int, len(rc.rows))
	for k, v := range rc.rows {
		out[k] = v
	}
	return out
}

// oracle evaluates the request in-process (deterministic order, like
// the server does) and returns the expected row multiset.
func oracle(t *testing.T, c *cluster.Cluster, req cluster.EvalRequest, batch int) map[string]int {
	t.Helper()
	want := newCollector()
	for _, fid := range req.FragIDs {
		r := req
		r.FragIDs = []int{fid}
		r.Deterministic = true
		if err := c.EvalStream(context.Background(), r, batch, want.sink); err != nil {
			t.Fatalf("oracle EvalStream: %v", err)
		}
	}
	return want.multiset()
}

func equalMultisets(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// checkInvariant asserts the metrics reconciliation documented on
// SiteMetrics: Attempts + FastFails == Calls + Retries + Hedges.
func checkInvariant(t *testing.T, m cluster.SiteMetrics) {
	t.Helper()
	if m.Attempts+m.FastFails != m.Calls+m.Retries+m.Hedges {
		t.Errorf("metrics do not reconcile: attempts %d + fastFails %d != calls %d + retries %d + hedges %d",
			m.Attempts, m.FastFails, m.Calls, m.Retries, m.Hedges)
	}
}

func newSite(t *testing.T, c *cluster.Cluster, d *rdf.Dict, chaos *cluster.Chaos) (*SiteServer, *httptest.Server) {
	t.Helper()
	ss := NewSiteServer(ServerConfig{Cluster: c, Dict: d, Chaos: chaos})
	hs := httptest.NewServer(ss)
	t.Cleanup(hs.Close)
	return ss, hs
}

func TestEvalOverHTTPMatchesDirect(t *testing.T) {
	c, d, q := newTestCluster(t, 40)
	req := testRequest(q)
	want := oracle(t, c, req, 8)

	ss, hs := newSite(t, c, d, nil)
	cl := NewSiteClient(ClientConfig{BaseURL: hs.URL, Site: 0, Dict: d})
	got := newCollector()
	if err := cl.EvalStream(context.Background(), req, 8, got.sink); err != nil {
		t.Fatalf("EvalStream over HTTP: %v", err)
	}
	if !equalMultisets(got.multiset(), want) {
		t.Errorf("HTTP rows %v != direct rows %v", got.multiset(), want)
	}

	sm := ss.Metrics()
	if sm.Evals != 1 || sm.Batches == 0 || sm.Rows != 40 {
		t.Errorf("server metrics = %+v, want 1 eval, >0 batches, 40 rows", sm)
	}
	cm := cl.SiteMetrics()
	if cm.Calls != 1 || cm.Attempts != 1 || cm.Retries != 0 || cm.Failures != 0 {
		t.Errorf("client metrics = %+v, want one clean call", cm)
	}
	checkInvariant(t, cm)
}

// Constants survive the structural wire encoding: the term keys
// round-trip through the server's dictionary.
func TestQueryConstantRoundTrip(t *testing.T) {
	c, d, _ := newTestCluster(t, 10)
	q := sparql.MustParse(d, `SELECT ?x WHERE { ?x <p> <b3> . }`)
	req := testRequest(q)
	want := oracle(t, c, req, 4)

	_, hs := newSite(t, c, d, nil)
	cl := NewSiteClient(ClientConfig{BaseURL: hs.URL, Site: 0, Dict: d})
	got := newCollector()
	if err := cl.EvalStream(context.Background(), req, 4, got.sink); err != nil {
		t.Fatalf("EvalStream: %v", err)
	}
	if got.n != 1 || !equalMultisets(got.multiset(), want) {
		t.Errorf("rows = %v, want exactly %v", got.multiset(), want)
	}
}

func TestEncodeRequestRejectsFilter(t *testing.T) {
	_, d, q := newTestCluster(t, 2)
	req := testRequest(q)
	req.Filter = func(int, rdf.ID) bool { return true }
	if _, err := encodeRequest(req, d, 4); err == nil {
		t.Fatal("encodeRequest accepted a vertex filter")
	}
}

// Dropped and errored requests are retried until the call succeeds, and
// the client's retry counter reconciles exactly with the number of
// faults the server injected.
func TestRetriesUnderChaos(t *testing.T) {
	c, d, q := newTestCluster(t, 40)
	req := testRequest(q)
	want := oracle(t, c, req, 8)

	chaos := cluster.NewChaos(cluster.ChaosConfig{Seed: 42, Drop: 0.25, Error: 0.15})
	_, hs := newSite(t, c, d, chaos)
	cl := NewSiteClient(ClientConfig{
		BaseURL: hs.URL, Site: 0, Dict: d,
		Retries: 16, Backoff: time.Millisecond,
		Breaker: BreakerConfig{Threshold: 1 << 20},
	})

	const calls = 15
	for i := 0; i < calls; i++ {
		got := newCollector()
		if err := cl.EvalStream(context.Background(), req, 8, got.sink); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !equalMultisets(got.multiset(), want) {
			t.Fatalf("call %d delivered %v, want %v", i, got.multiset(), want)
		}
	}

	cm := cl.SiteMetrics()
	checkInvariant(t, cm)
	counts := chaos.Counts()
	if cm.Retries != counts.Drops+counts.Errors {
		t.Errorf("client retries %d != injected drops %d + errors %d", cm.Retries, counts.Drops, counts.Errors)
	}
	if counts.Drops+counts.Errors == 0 {
		t.Error("chaos injected nothing; the test exercised no retries")
	}
	if cm.Failures != 0 || cm.FastFails != 0 {
		t.Errorf("failures %d fastFails %d, want 0/0 (retries should mask every fault)", cm.Failures, cm.FastFails)
	}
}

// Mid-stream cuts tear the connection without a terminal frame; the
// retry resumes from the last acknowledged batch and the sink sees the
// exact fault-free multiset — no lost rows, no duplicates.
func TestResumeAfterCutExactDelivery(t *testing.T) {
	c, d, q := newTestCluster(t, 48)
	req := testRequest(q)
	want := oracle(t, c, req, 4)

	chaos := cluster.NewChaos(cluster.ChaosConfig{Seed: 7, Cut: 0.15})
	ss, hs := newSite(t, c, d, chaos)
	cl := NewSiteClient(ClientConfig{
		BaseURL: hs.URL, Site: 0, Dict: d,
		Retries: 50, Backoff: 500 * time.Microsecond,
		Breaker: BreakerConfig{Threshold: 1 << 20},
	})

	for i := 0; i < 8; i++ {
		got := newCollector()
		if err := cl.EvalStream(context.Background(), req, 4, got.sink); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !equalMultisets(got.multiset(), want) {
			t.Fatalf("call %d delivered %d rows %v, want %v (torn-stream resume must not lose or duplicate)",
				i, got.n, got.multiset(), want)
		}
	}

	cm := cl.SiteMetrics()
	checkInvariant(t, cm)
	counts := chaos.Counts()
	if counts.Cuts == 0 {
		t.Fatal("chaos cut nothing; resume was not exercised")
	}
	if cm.Retries != counts.Cuts {
		t.Errorf("client retries %d != injected cuts %d", cm.Retries, counts.Cuts)
	}
	if ss.Metrics().Resumes == 0 {
		t.Error("server accepted no resumes; every retry restarted from scratch")
	}
}

// A stream that stops producing frames is cut by the client-side
// progress watchdog and retried, well before any connection-level
// timeout.
func TestFrameTimeoutWatchdog(t *testing.T) {
	c, d, q := newTestCluster(t, 20)
	req := testRequest(q)
	want := oracle(t, c, req, 8)

	ss := NewSiteServer(ServerConfig{Cluster: c, Dict: d})
	var evals atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/eval") && evals.Add(1) == 1 {
			// First attempt: open the stream, then produce nothing.
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			w.(http.Flusher).Flush()
			<-r.Context().Done()
			return
		}
		ss.ServeHTTP(w, r)
	}))
	defer hs.Close()

	cl := NewSiteClient(ClientConfig{
		BaseURL: hs.URL, Site: 0, Dict: d,
		Retries: 2, Backoff: time.Millisecond, FrameTimeout: 100 * time.Millisecond,
	})
	got := newCollector()
	start := time.Now()
	if err := cl.EvalStream(context.Background(), req, 8, got.sink); err != nil {
		t.Fatalf("EvalStream: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("call took %v; the watchdog should have cut the stalled stream at ~100ms", elapsed)
	}
	if !equalMultisets(got.multiset(), want) {
		t.Errorf("rows %v != %v", got.multiset(), want)
	}
	cm := cl.SiteMetrics()
	if cm.Retries == 0 {
		t.Error("no retry recorded; the stalled first attempt was not cut")
	}
	checkInvariant(t, cm)
}

// With hedging on, a straggling first request is raced by a second one
// and the hedge wins without waiting out the straggler.
func TestHedgeWinsOnStraggler(t *testing.T) {
	c, d, q := newTestCluster(t, 20)
	req := testRequest(q)
	want := oracle(t, c, req, 8)

	ss := NewSiteServer(ServerConfig{Cluster: c, Dict: d})
	var evals atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/eval") && evals.Add(1) == 1 {
			// Straggler: hold the first request until it is abandoned
			// (or a generous deadline, so the test can't hang). The body
			// must be drained first or the server never notices the
			// abandonment (net/http only watches the connection once the
			// request body has been consumed).
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-time.After(10 * time.Second):
			}
			return
		}
		ss.ServeHTTP(w, r)
	}))
	defer hs.Close()

	cl := NewSiteClient(ClientConfig{
		BaseURL: hs.URL, Site: 0, Dict: d,
		Retries: 1, Backoff: time.Millisecond, HedgeAfter: 50 * time.Millisecond,
	})
	got := newCollector()
	start := time.Now()
	if err := cl.EvalStream(context.Background(), req, 8, got.sink); err != nil {
		t.Fatalf("EvalStream: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedged call took %v; the hedge should have finished long before the straggler", elapsed)
	}
	if !equalMultisets(got.multiset(), want) {
		t.Errorf("rows %v != %v", got.multiset(), want)
	}
	cm := cl.SiteMetrics()
	if cm.Hedges != 1 || cm.HedgeWins != 1 {
		t.Errorf("hedges %d hedgeWins %d, want 1/1", cm.Hedges, cm.HedgeWins)
	}
	if cm.Failures != 0 || cm.Retries != 0 {
		t.Errorf("failures %d retries %d, want 0/0 (the hedge, not a retry, should have won)", cm.Failures, cm.Retries)
	}
	checkInvariant(t, cm)
}

// Cancelling the caller's context mid-stream aborts the HTTP request,
// and the server's in-flight gauge drains: cancellation propagates end
// to end instead of leaking an abandoned evaluation.
func TestCancelMidStreamDrainsServer(t *testing.T) {
	c, d, q := newTestCluster(t, 48)
	req := testRequest(q)

	// Every batch stalls, so the stream is reliably in flight when the
	// caller gives up.
	chaos := cluster.NewChaos(cluster.ChaosConfig{
		Seed: 3, DelayProb: 1,
		StragglerDelay: cluster.Delay{PerMessage: 30 * time.Millisecond},
	})
	ss, hs := newSite(t, c, d, chaos)
	cl := NewSiteClient(ClientConfig{BaseURL: hs.URL, Site: 0, Dict: d, Retries: 1})

	ctx, cancel := context.WithCancel(context.Background())
	firstBatch := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		done <- cl.EvalStream(ctx, req, 2, func(b *match.Bindings) error {
			once.Do(func() { close(firstBatch) })
			return nil
		})
	}()

	select {
	case <-firstBatch:
	case <-time.After(10 * time.Second):
		t.Fatal("no batch arrived before the cancel")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("EvalStream after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("EvalStream did not return after cancel")
	}

	deadline := time.Now().Add(5 * time.Second)
	for ss.Metrics().ActiveEvals != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still has %d active evals after client cancel", ss.Metrics().ActiveEvals)
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkInvariant(t, cl.SiteMetrics())
}

// A dead site exhausts the retry budget once, then the breaker opens
// and subsequent calls fail fast without touching the network; after
// the site recovers and the cooldown passes, a half-open probe closes
// the circuit again.
func TestBreakerFailFastAndRecovery(t *testing.T) {
	c, d, q := newTestCluster(t, 20)
	req := testRequest(q)
	want := oracle(t, c, req, 8)

	ss := NewSiteServer(ServerConfig{Cluster: c, Dict: d})
	var healthy atomic.Bool
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "site down", http.StatusServiceUnavailable)
			return
		}
		ss.ServeHTTP(w, r)
	}))
	defer hs.Close()

	cl := NewSiteClient(ClientConfig{
		BaseURL: hs.URL, Site: 0, Dict: d,
		Retries: 3, Backoff: time.Millisecond,
		Breaker: BreakerConfig{Threshold: 4, Cooldown: 50 * time.Millisecond},
	})

	// Call 1: four failed attempts burn the breaker threshold.
	err := cl.EvalStream(context.Background(), req, 8, newCollector().sink)
	if !errors.Is(err, cluster.ErrSiteUnavailable) {
		t.Fatalf("call against dead site = %v, want ErrSiteUnavailable", err)
	}
	if state, _ := cl.breaker.State(); state != "open" {
		t.Fatalf("breaker = %q after exhausted retries, want open", state)
	}

	// Call 2: fail fast — no HTTP traffic.
	before := hits.Load()
	err = cl.EvalStream(context.Background(), req, 8, newCollector().sink)
	if !errors.Is(err, cluster.ErrSiteUnavailable) {
		t.Fatalf("fast-fail call = %v, want ErrSiteUnavailable", err)
	}
	if hits.Load() != before {
		t.Errorf("open breaker still sent %d requests", hits.Load()-before)
	}
	cm := cl.SiteMetrics()
	if cm.FastFails != 1 {
		t.Errorf("fastFails = %d, want 1", cm.FastFails)
	}
	checkInvariant(t, cm)

	// Recovery: site back up, cooldown over, the probe closes the circuit.
	healthy.Store(true)
	time.Sleep(80 * time.Millisecond)
	got := newCollector()
	if err := cl.EvalStream(context.Background(), req, 8, got.sink); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
	if !equalMultisets(got.multiset(), want) {
		t.Errorf("post-recovery rows %v != %v", got.multiset(), want)
	}
	cm = cl.SiteMetrics()
	if cm.BreakerState != "closed" || cm.BreakerOpens != 1 {
		t.Errorf("breaker %q opens %d, want closed/1", cm.BreakerState, cm.BreakerOpens)
	}
	checkInvariant(t, cm)
}

// A site that never listens is unavailable: the error carries the
// sentinel the engine's partial-results mode keys on.
func TestUnreachableSiteSentinel(t *testing.T) {
	_, d, q := newTestCluster(t, 4)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	cl := NewSiteClient(ClientConfig{BaseURL: dead.URL, Site: 0, Dict: d, Retries: 1, Backoff: time.Millisecond})
	err := cl.EvalStream(context.Background(), testRequest(q), 8, newCollector().sink)
	if !errors.Is(err, cluster.ErrSiteUnavailable) {
		t.Fatalf("err = %v, want cluster.ErrSiteUnavailable", err)
	}
}

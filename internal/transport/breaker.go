package transport

// A per-site circuit breaker. Repeated transport failures open the
// circuit; while open, calls fail fast (no connection attempt, no
// retry budget burned) so a dead site costs queries microseconds
// instead of timeouts. After a cooldown the breaker lets exactly one
// probe through (half-open); the probe's outcome closes the circuit or
// re-opens it.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (wrapped in cluster.ErrSiteUnavailable by
// the client) when a call is rejected by an open circuit.
var ErrBreakerOpen = errors.New("transport: circuit breaker open")

// BreakerConfig tunes a circuit breaker. The zero value gets defaults:
// 5 consecutive failures to open, 1s cooldown before the first probe.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// circuit.
	Threshold int
	// Cooldown is how long the circuit stays open before allowing a
	// half-open probe.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// Breaker is a three-state circuit breaker, safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
	opens    uint64    // cumulative transitions to open
}

// NewBreaker builds a breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a call may proceed. Open circuit: fails fast
// with ErrBreakerOpen until the cooldown elapses, then admits exactly
// one concurrent probe (half-open); further calls keep failing fast
// until the probe reports. The caller must follow every successful
// Allow with exactly one Success or Failure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return ErrBreakerOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Success reports a completed call: the circuit closes and the failure
// streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// Failure reports a failed call: a half-open probe re-opens the
// circuit immediately; while closed, the streak advances and opens the
// circuit at the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	}
	// Already open: a late failure report from a call admitted before
	// the trip changes nothing.
}

// Cancel reports that an admitted call ended without a verdict on the
// site's health (the caller cancelled, its sink failed, or the request
// was rejected as malformed): the probe slot is released so a future
// call can probe, but the circuit's state and streak are untouched.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// trip opens the circuit; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.opens++
}

// State returns the current state name and the cumulative open count.
func (b *Breaker) State() (string, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens
}

// Package transport puts the site RPC surface behind a real network:
// an HTTP fragment-host server (SiteServer, mounted by `rdffrag site`)
// streams binding batches as NDJSON frames, and SiteClient implements
// the same cluster.SiteEval interface as the in-process channel path,
// wrapped in a robustness layer — bounded retries with exponential
// backoff and jitter (resumable from the last acknowledged batch),
// optional hedged requests for stragglers, per-frame progress
// deadlines, and a per-site circuit breaker — so the control site can
// mix local and remote sites and queries survive a lossy network.
//
// Remote evaluations read each fragment's current state (a per-graph
// consistent snapshot), not the control site's pinned MVCC view: a
// view handle pins in-process generation pointers and cannot travel
// across processes. Single-site batch atomicity still holds; the
// cross-site batch-atomic cut is an in-process-only guarantee, which
// the serving layer preserves for all graphs it hosts locally.
package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"

	"rdffrag/internal/cluster"
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// errCutInjected aborts a stream mid-flight for an injected cut fault.
// It travels from the batch sink back through EvalStream to the handler
// goroutine, which then kills the connection abruptly (no terminal
// frame) — the client sees exactly what a network partition looks like.
var errCutInjected = errors.New("transport: injected stream cut")

// ServerConfig configures a SiteServer.
type ServerConfig struct {
	// Cluster holds the fragment graphs this process serves.
	Cluster *cluster.Cluster
	// Dict is the deployment dictionary queries are decoded through.
	Dict *rdf.Dict
	// Sites restricts which site IDs this server answers for; nil
	// serves every site of the cluster. A fragment-host process
	// typically serves one site; tests serve several from one process.
	Sites []int
	// Chaos, when non-nil, injects deterministic seeded faults on this
	// server's request and batch handling — the same seam the
	// channel-RPC path uses (cluster.Chaos).
	Chaos *cluster.Chaos
	// MaxBodyBytes bounds the /eval request body (default 8 MiB).
	MaxBodyBytes int64
}

// ServerMetrics is a snapshot of a site server's counters.
type ServerMetrics struct {
	// Evals counts /eval requests accepted; ActiveEvals is the
	// in-flight gauge (it draining to zero after a client disconnect
	// is the regression check for end-to-end cancellation).
	Evals       uint64
	ActiveEvals int
	// Batches and Rows count streamed result frames and the binding
	// rows they carried (resume-skipped frames excluded).
	Batches uint64
	Rows    uint64
	// Resumes counts streams that skipped an acknowledged prefix for a
	// resuming client.
	Resumes uint64
	// ResponseWriteErrors counts response bodies that failed to write
	// after the status line was sent (client gone mid-response); the
	// status can't change anymore, so the metric is the observable.
	ResponseWriteErrors uint64
	// Chaos reports faults injected by this server's injector.
	Chaos cluster.ChaosCounts
}

// SiteServer serves a cluster's fragments over HTTP: POST /eval streams
// NDJSON binding batches, GET /healthz is a liveness probe, GET
// /metrics reports the counters above. Evaluation is deterministic
// (fragments in sorted order, batches in sequential enumeration order)
// so a torn stream is resumable from the last acknowledged batch.
type SiteServer struct {
	cfg ServerConfig
	mux *http.ServeMux

	evals         atomic.Uint64
	active        atomic.Int64
	batches       atomic.Uint64
	rows          atomic.Uint64
	resumes       atomic.Uint64
	respWriteErrs atomic.Uint64

	// draining flips once graceful shutdown begins; /healthz then
	// answers 503 so load balancers stop routing to this host while
	// in-flight evals finish.
	draining atomic.Bool
}

// NewSiteServer builds the handler; mount it on any http.Server.
func NewSiteServer(cfg ServerConfig) *SiteServer {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &SiteServer{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/eval", s.handleEval)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *SiteServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// MarkDraining flips the server into draining mode: /healthz starts
// answering 503 while /eval keeps serving in-flight (and new) work.
// Call it when graceful shutdown begins, before the listener drains.
func (s *SiteServer) MarkDraining() { s.draining.Store(true) }

// Metrics snapshots the server's counters.
func (s *SiteServer) Metrics() ServerMetrics {
	return ServerMetrics{
		Evals:               s.evals.Load(),
		ActiveEvals:         int(s.active.Load()),
		Batches:             s.batches.Load(),
		Rows:                s.rows.Load(),
		Resumes:             s.resumes.Load(),
		ResponseWriteErrors: s.respWriteErrs.Load(),
		Chaos:               s.cfg.Chaos.Counts(),
	}
}

func (s *SiteServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{
		"evals":                 m.Evals,
		"active_evals":          m.ActiveEvals,
		"batches":               m.Batches,
		"rows":                  m.Rows,
		"resumes":               m.Resumes,
		"response_write_errors": m.ResponseWriteErrors,
		"chaos_drops":           m.Chaos.Drops,
		"chaos_errors":          m.Chaos.Errors,
		"chaos_cuts":            m.Chaos.Cuts,
		"chaos_delays":          m.Chaos.Delays,
	}); err != nil {
		s.respWriteErrs.Add(1)
	}
}

// serves reports whether this server answers for site id.
func (s *SiteServer) serves(id int) bool {
	if len(s.cfg.Sites) == 0 {
		return true
	}
	for _, have := range s.cfg.Sites {
		if have == id {
			return true
		}
	}
	return false
}

func (s *SiteServer) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an eval request", http.StatusMethodNotAllowed)
		return
	}
	// The body is consumed before any fault rolls: net/http only watches
	// for client disconnects once the request body has been read, so a
	// straggler stall taken earlier would not notice the caller leaving.
	var wire evalWire
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&wire); err != nil {
		http.Error(w, "bad eval request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Injected request faults fire before the site does any work, like
	// a message lost or mangled on the wire.
	switch s.cfg.Chaos.OnRequest() {
	case cluster.FaultDrop:
		http.Error(w, "chaos: injected drop", http.StatusServiceUnavailable)
		return
	case cluster.FaultError:
		http.Error(w, "chaos: injected error", http.StatusInternalServerError)
		return
	case cluster.FaultDelay:
		if err := s.cfg.Chaos.StragglerWait(r.Context(), 0); err != nil {
			return // client gone while stalled
		}
	}
	if !s.serves(wire.Site) {
		http.Error(w, fmt.Sprintf("site %d not served here", wire.Site), http.StatusNotFound)
		return
	}
	// Dictionary agreement check, client side first: rows travel as raw
	// IDs, so a diverged data dictionary would decode them to the wrong
	// terms. Verify the shared prefix before decodeQuery interns
	// anything (full lengths legitimately differ — each side interns
	// ad-hoc query constants the other never sees). 409 is deliberate:
	// the client treats only 5xx as retryable, and a dictionary mismatch
	// never heals by retrying.
	sLen := s.cfg.Dict.Len()
	if wire.DictLen > 0 && wire.DictLen <= sLen && s.cfg.Dict.Fingerprint(wire.DictLen) != wire.DictFP {
		http.Error(w, fmt.Sprintf("site %d: dictionary mismatch: client prefix %d does not match this site's dictionary (deployments differ)", wire.Site, wire.DictLen), http.StatusConflict)
		return
	}
	hdrLen := sLen
	if wire.DictLen > 0 && wire.DictLen < sLen {
		hdrLen = wire.DictLen
	}
	q, err := decodeQuery(wire.Query, s.cfg.Dict)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	epoch, err := s.cfg.Cluster.FragEpoch(wire.Site, wire.Frags)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// Resume only holds when the data hasn't moved since the torn
	// attempt: the deterministic batch sequence is a function of
	// (query, fragments, epoch, batch size). On mismatch, stream from
	// scratch — the client resets its ack count from the header.
	skip := 0
	if wire.Resume > 0 && wire.Epoch == epoch {
		skip = wire.Resume
	}

	s.evals.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	write := func(f *frame) error {
		if err := enc.Encode(f); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	// The header carries the server's fingerprint of the shared prefix
	// (min of both lengths) so the client can verify the other
	// direction — whichever dictionary is longer checks the shorter one.
	if err := write(&frame{K: "hdr", Epoch: epoch, Skip: skip, DictLen: hdrLen, DictFP: s.cfg.Dict.Fingerprint(hdrLen)}); err != nil {
		return
	}
	if skip > 0 {
		s.resumes.Add(1)
	}

	batch := wire.Batch
	if batch <= 0 {
		batch = cluster.DefaultBatchSize
	}
	frags := append([]int(nil), wire.Frags...)
	sort.Ints(frags)

	// Fragments evaluate one at a time in sorted order with the
	// deterministic matcher: the batch sequence is then reproducible
	// across attempts, which is what makes `skip` sound. (The
	// parallelism budget still fans out morsel workers inside each
	// fragment — determinism costs ordering, not parallel matching.)
	seq := 0
	var streamErr error
	for _, fid := range frags {
		req := cluster.EvalRequest{
			SiteID:        wire.Site,
			FragIDs:       []int{fid},
			Query:         q,
			Parallelism:   wire.Parallelism,
			Deterministic: true,
		}
		err := s.cfg.Cluster.EvalStream(r.Context(), req, batch, func(b *match.Bindings) error {
			if seq < skip {
				seq++
				return nil
			}
			switch s.cfg.Chaos.OnBatch() {
			case cluster.FaultCut:
				return errCutInjected
			case cluster.FaultDelay:
				if err := s.cfg.Chaos.StragglerWait(r.Context(), len(b.Rows)*len(b.Vars)*4); err != nil {
					return err
				}
			}
			if err := write(&frame{K: "b", Seq: seq, Vars: b.Vars, Rows: b.Rows}); err != nil {
				return err
			}
			seq++
			s.batches.Add(1)
			s.rows.Add(uint64(len(b.Rows)))
			return nil
		})
		if err != nil {
			streamErr = err
			break
		}
	}

	switch {
	case streamErr == nil:
		write(&frame{K: "done", Count: seq})
	case errors.Is(streamErr, errCutInjected):
		// Abort the connection without a terminal frame: the client
		// must see a torn stream, not a clean close. ErrAbortHandler
		// panics are recovered silently by net/http on this goroutine.
		panic(http.ErrAbortHandler)
	case r.Context().Err() != nil:
		// Client disconnected or cancelled; nothing left to tell it.
	default:
		write(&frame{K: "err", Msg: streamErr.Error(), Retry: errors.Is(streamErr, cluster.ErrInjected)})
	}
}

package transport

// SiteClient: the control site's view of a remote fragment host. It
// implements cluster.SiteEval — the same interface the in-process
// channel path satisfies — so the executor is transport-agnostic. The
// robustness layer lives here, on the read path only (queries are
// idempotent; redelivered rows are deduplicated downstream, so
// at-least-once attempts compose into exactly-once results):
//
//   - per-frame progress deadline: a stream that stops producing frames
//     for FrameTimeout is cut locally and retried;
//   - bounded retries with exponential backoff and jitter, resuming
//     from the last acknowledged batch of the deterministic sequence
//     (the server restarts from scratch if the data epoch moved);
//   - optional hedging: if no result frame arrives within HedgeAfter, a
//     second request races the first and the first to produce a result
//     frame wins — only the winner touches the sink;
//   - a circuit breaker per client: a dead site fails fast instead of
//     burning the full retry budget on every query.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
)

// ClientConfig configures a SiteClient.
type ClientConfig struct {
	// BaseURL is the site server's root, e.g. "http://10.0.0.7:7402".
	BaseURL string
	// Site is the site ID this client fronts (for errors and metrics).
	Site int
	// Dict is the control site's dictionary, used to encode queries.
	Dict *rdf.Dict
	// HTTP overrides the HTTP client (default: a plain http.Client).
	HTTP *http.Client
	// Retries is how many times a retryable attempt is repeated after
	// the first (default 3).
	Retries int
	// Backoff is the base retry delay (default 50ms); attempt n waits
	// Backoff·2ⁿ⁻¹ capped at 16·Backoff, jittered to 50–100%.
	Backoff time.Duration
	// FrameTimeout cuts a stream that produces no frame for this long
	// (default 10s). This is a progress deadline, not a total deadline:
	// a large result streaming steadily never trips it.
	FrameTimeout time.Duration
	// HedgeAfter, when positive, launches a second racing request if
	// the first has produced no result frame after this long. Off by
	// zero.
	HedgeAfter time.Duration
	// Breaker tunes the circuit breaker (zero value: defaults).
	Breaker BreakerConfig
}

// SiteClient evaluates subqueries against one remote site server with
// retries, resume, hedging, and a circuit breaker. Safe for concurrent
// use by many queries. It implements cluster.SiteEval and
// cluster.SiteMetricsReporter.
type SiteClient struct {
	cfg     ClientConfig
	breaker *Breaker

	calls     atomic.Uint64
	attempts  atomic.Uint64
	retriesC  atomic.Uint64
	hedgesC   atomic.Uint64
	hedgeWins atomic.Uint64
	failures  atomic.Uint64
	fastFails atomic.Uint64

	latMu  sync.Mutex
	lats   [512]time.Duration // ring of recent successful-call latencies
	latIdx int
	latN   int
}

// NewSiteClient builds a client for one remote site.
func NewSiteClient(cfg ClientConfig) *SiteClient {
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.FrameTimeout <= 0 {
		cfg.FrameTimeout = 10 * time.Second
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	return &SiteClient{cfg: cfg, breaker: NewBreaker(cfg.Breaker)}
}

// streamState is the resume cursor shared across a call's attempts:
// how many batches of the deterministic sequence the sink has seen,
// and under which data epoch. Only a winning attempt mutates it.
type streamState struct {
	mu    sync.Mutex
	acked int
	epoch uint64
}

// outcome is one attempt's verdict.
type outcome struct {
	err       error
	retryable bool
	lost      bool // hedge loser: the other request won; discard
	id        int32
	claimed   bool
}

// hedgeGate elects the attempt that owns the sink: first to produce a
// result frame claims it with a CAS.
type hedgeGate struct{ won atomic.Int32 }

func (g *hedgeGate) claim(id int32) bool {
	return g.won.CompareAndSwap(0, id) || g.won.Load() == id
}
func (g *hedgeGate) claimed() bool { return g.won.Load() != 0 }

// EvalStream implements cluster.SiteEval over HTTP. Batches are pushed
// to sink in the server's deterministic sequence order; on a retry
// after a torn stream only unacknowledged batches are redelivered
// (unless the site's data moved, in which case the full sequence is
// redelivered and downstream dedup absorbs it).
func (c *SiteClient) EvalStream(ctx context.Context, req cluster.EvalRequest, batchSize int, sink cluster.BatchSink) error {
	c.calls.Add(1)
	wire, err := encodeRequest(req, c.cfg.Dict, batchSize)
	if err != nil {
		return err
	}
	if err := c.breaker.Allow(); err != nil {
		c.fastFails.Add(1)
		c.failures.Add(1)
		return fmt.Errorf("%w: site %d: %v", cluster.ErrSiteUnavailable, c.cfg.Site, err)
	}

	st := &streamState{}
	start := time.Now()
	var last outcome
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.retriesC.Add(1)
			if err := c.backoffWait(ctx, attempt); err != nil {
				c.breaker.Cancel()
				c.failures.Add(1)
				return err
			}
		}
		var o outcome
		if c.cfg.HedgeAfter > 0 {
			o = c.hedgedAttempt(ctx, wire, st, sink)
		} else {
			o = c.runAttempt(ctx, wire, st, sink, nil, 1)
		}
		if o.err == nil {
			c.breaker.Success()
			c.observe(time.Since(start))
			return nil
		}
		// The caller gave up (or its sink did): not the site's fault —
		// release the breaker without a verdict.
		if ctx.Err() != nil {
			c.breaker.Cancel()
			c.failures.Add(1)
			return ctx.Err()
		}
		if !o.retryable {
			c.breaker.Cancel()
			c.failures.Add(1)
			return o.err
		}
		c.breaker.Failure()
		last = o
	}
	c.failures.Add(1)
	return fmt.Errorf("%w: site %d: retries exhausted: %v", cluster.ErrSiteUnavailable, c.cfg.Site, last.err)
}

// hedgedAttempt races up to two requests for one retry-loop attempt.
// The second launches only if the first has claimed no result frame
// after HedgeAfter. Losers are cancelled and their outcomes discarded.
func (c *SiteClient) hedgedAttempt(ctx context.Context, wire *evalWire, st *streamState, sink cluster.BatchSink) outcome {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	gate := &hedgeGate{}
	ch := make(chan outcome, 2) // buffered: attempts never block exiting
	launch := func(id int32) {
		go func() { ch <- c.runAttempt(actx, wire, st, sink, gate, id) }()
	}
	launch(1)
	launched := 1
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	var first *outcome
	for {
		select {
		case <-timer.C:
			if launched == 1 && !gate.claimed() && actx.Err() == nil {
				c.hedgesC.Add(1)
				launch(2)
				launched = 2
			}
		case o := <-ch:
			if o.lost {
				continue // the other request won; wait for its outcome
			}
			if o.claimed {
				cancel()
				if o.id == 2 {
					c.hedgeWins.Add(1)
				}
				return o
			}
			if launched == 2 && first == nil {
				first = &o
				continue // one unclaimed failure; the race may still win
			}
			cancel()
			if first != nil && first.retryable && !o.retryable {
				return *first
			}
			return o
		}
	}
}

// runAttempt performs one HTTP round trip and streams frames to the
// sink. With a gate, the attempt must claim it on its first result
// frame before touching the sink or the shared resume state.
func (c *SiteClient) runAttempt(ctx context.Context, wire *evalWire, st *streamState, sink cluster.BatchSink, gate *hedgeGate, id int32) outcome {
	c.attempts.Add(1)
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	st.mu.Lock()
	req := *wire
	req.Resume = st.acked
	req.Epoch = st.epoch
	st.mu.Unlock()
	body, err := json.Marshal(&req)
	if err != nil {
		return outcome{err: err, id: id}
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, c.cfg.BaseURL+"/eval", bytes.NewReader(body))
	if err != nil {
		return outcome{err: err, id: id}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTP.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return outcome{err: ctx.Err(), id: id}
		}
		return outcome{err: fmt.Errorf("transport: site %d: %w", c.cfg.Site, err), retryable: true, id: id}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("transport: site %d: HTTP %d: %s", c.cfg.Site, resp.StatusCode, bytes.TrimSpace(msg))
		return outcome{err: err, retryable: resp.StatusCode >= 500, id: id}
	}

	// Progress watchdog: cut the stream if no frame lands in time.
	watchdog := time.AfterFunc(c.cfg.FrameTimeout, cancel)
	defer watchdog.Stop()

	dec := json.NewDecoder(resp.Body)
	claimed := gate == nil
	acked, epoch := 0, uint64(0)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			switch {
			case ctx.Err() != nil:
				if gate != nil && gate.claimed() && !claimed {
					return outcome{lost: true, id: id}
				}
				return outcome{err: ctx.Err(), id: id}
			case actx.Err() != nil: // watchdog fired
				return outcome{err: fmt.Errorf("transport: site %d: no frame for %v", c.cfg.Site, c.cfg.FrameTimeout), retryable: true, id: id, claimed: claimed && gate != nil}
			default: // EOF or read error before the done frame: torn stream
				return outcome{err: fmt.Errorf("transport: site %d: stream cut: %w", c.cfg.Site, err), retryable: true, id: id, claimed: claimed && gate != nil}
			}
		}
		watchdog.Reset(c.cfg.FrameTimeout)
		switch f.K {
		case "hdr":
			// Dictionary agreement, server side: the header fingerprints
			// the shared dictionary prefix (the server already verified
			// our stamp covers its side). Rows are raw IDs, so a mismatch
			// means every row would decode to the wrong terms — fail the
			// call outright; a retry cannot heal a diverged deployment.
			if f.DictLen > 0 && f.DictLen <= c.cfg.Dict.Len() && c.cfg.Dict.Fingerprint(f.DictLen) != f.DictFP {
				return outcome{err: fmt.Errorf("transport: site %d: dictionary mismatch: server prefix %d does not match this deployment's dictionary", c.cfg.Site, f.DictLen), id: id, claimed: claimed}
			}
			// The server echoes the resume it accepted: Skip==Resume when
			// honored, 0 when the epoch moved and the stream restarts.
			acked, epoch = f.Skip, f.Epoch
		case "b":
			if !claimed {
				if !gate.claim(id) {
					return outcome{lost: true, id: id}
				}
				claimed = true
			}
			if f.Seq < acked {
				continue // defensive: duplicate of an acknowledged batch
			}
			if f.Seq != acked {
				return outcome{err: fmt.Errorf("transport: site %d: batch %d out of order (want %d)", c.cfg.Site, f.Seq, acked), retryable: true, id: id, claimed: true}
			}
			if err := sink(&match.Bindings{Vars: f.Vars, Rows: f.Rows}); err != nil {
				return outcome{err: err, id: id, claimed: true}
			}
			acked++
			st.mu.Lock()
			st.acked, st.epoch = acked, epoch
			st.mu.Unlock()
		case "done":
			if !claimed {
				if !gate.claim(id) {
					return outcome{lost: true, id: id}
				}
				claimed = true
			}
			return outcome{id: id, claimed: true}
		case "err":
			return outcome{err: fmt.Errorf("transport: site %d: remote: %s", c.cfg.Site, f.Msg), retryable: f.Retry, id: id, claimed: claimed}
		default:
			return outcome{err: fmt.Errorf("transport: site %d: unknown frame %q", c.cfg.Site, f.K), retryable: true, id: id, claimed: claimed}
		}
	}
}

// backoffWait sleeps before retry n (1-based): Backoff·2ⁿ⁻¹ capped at
// 16·Backoff, jittered down to 50–100% so synchronized clients spread.
func (c *SiteClient) backoffWait(ctx context.Context, attempt int) error {
	d := c.cfg.Backoff
	for i := 1; i < attempt && d < 16*c.cfg.Backoff; i++ {
		d *= 2
	}
	if max := 16 * c.cfg.Backoff; d > max {
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// observe records a successful call's latency in the ring.
func (c *SiteClient) observe(d time.Duration) {
	c.latMu.Lock()
	c.lats[c.latIdx] = d
	c.latIdx = (c.latIdx + 1) % len(c.lats)
	if c.latN < len(c.lats) {
		c.latN++
	}
	c.latMu.Unlock()
}

// p99 computes the 99th-percentile latency over the ring.
func (c *SiteClient) p99() time.Duration {
	c.latMu.Lock()
	n := c.latN
	sample := append([]time.Duration(nil), c.lats[:n]...)
	c.latMu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	idx := (n*99 + 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return sample[idx]
}

// SiteMetrics implements cluster.SiteMetricsReporter. The counters
// reconcile: Attempts + FastFails == Calls + Retries + Hedges.
func (c *SiteClient) SiteMetrics() cluster.SiteMetrics {
	state, opens := c.breaker.State()
	return cluster.SiteMetrics{
		Site:         c.cfg.Site,
		Calls:        c.calls.Load(),
		Attempts:     c.attempts.Load(),
		Retries:      c.retriesC.Load(),
		Hedges:       c.hedgesC.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		Failures:     c.failures.Load(),
		FastFails:    c.fastFails.Load(),
		BreakerState: state,
		BreakerOpens: opens,
		P99:          c.p99(),
	}
}

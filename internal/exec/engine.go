// Package exec is the distributed SPARQL engine of Section 7: it deploys
// a fragmentation + allocation onto a cluster (in-process sites, remote
// site processes, or a mix — the transports share one SiteEval surface),
// decomposes each incoming query (Algorithm 3), optimizes the join order
// (Algorithm 4), evaluates subqueries on the relevant sites in parallel,
// and joins the shipped bindings at the control site.
package exec

import (
	"context"
	"fmt"
	"sort"

	"rdffrag/internal/allocation"
	"rdffrag/internal/cluster"
	"rdffrag/internal/decompose"
	"rdffrag/internal/dict"
	"rdffrag/internal/fragment"
	"rdffrag/internal/match"
	"rdffrag/internal/plan"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// Engine executes SPARQL queries over a deployed fragmentation.
type Engine struct {
	Cluster *cluster.Cluster
	Dict    *dict.Dictionary
	Frag    *fragment.Fragmentation
	Alloc   *allocation.Allocation

	// BatchSize is the number of binding rows per streamed batch between
	// sites and the control-site join pipeline (default
	// cluster.DefaultBatchSize).
	BatchSize int

	// Parallelism is the default intra-query worker budget handed to
	// every site evaluation: it bounds concurrent fragment evaluations
	// and the matcher's morsel workers per fragment. 0 means GOMAXPROCS.
	// A Prepared with its own Parallelism overrides it per execution —
	// the serving layer uses that to trade intra-query parallelism
	// against inter-query worker count under load.
	Parallelism int

	// JoinPartitions overrides the per-stage partition count of the
	// control-site join pipeline. 0 derives it from the query's
	// parallelism budget (half the budget, split across the join
	// stages); 1 forces the sequential symmetric join. A Prepared with
	// its own JoinPartitions overrides this per execution.
	JoinPartitions int

	// Remotes maps site IDs to remote evaluators (transport site
	// clients). Subqueries routed to a mapped site go over the network;
	// unmapped sites evaluate in-process over the cluster's channel
	// RPC. The engine is transport-agnostic: both satisfy
	// cluster.SiteEval.
	Remotes map[int]cluster.SiteEval

	// PartialResults selects the degradation mode when a site stays
	// unavailable after its client's retry budget and circuit breaker
	// have spoken (cluster.ErrSiteUnavailable): true skips the site and
	// flags the result partial (listing the unreachable sites in
	// QueryStats); false fails the query with the site's error.
	PartialResults bool

	dec *decompose.Decomposer
}

// evaluatorFor resolves the evaluator serving a site: its remote
// client when one is configured, the in-process cluster otherwise.
func (e *Engine) evaluatorFor(site int) cluster.SiteEval {
	if ev, ok := e.Remotes[site]; ok {
		return ev
	}
	return e.Cluster
}

// SiteMetrics reports the robustness counters of every remote site
// client that exposes them, ordered by site ID. In-process sites have
// no retry/breaker machinery and are absent.
func (e *Engine) SiteMetrics() []cluster.SiteMetrics {
	out := make([]cluster.SiteMetrics, 0, len(e.Remotes))
	for _, ev := range e.Remotes {
		if r, ok := ev.(cluster.SiteMetricsReporter); ok {
			out = append(out, r.SiteMetrics())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// QueryStats reports per-query execution metrics.
type QueryStats struct {
	Subqueries   int
	SitesTouched int
	// DecompositionCost is Algorithm 3's Π card estimate.
	DecompositionCost float64
	// PlanCost is Algorithm 4's estimated intermediate size total.
	PlanCost float64
	// IntermediateRows counts actual binding rows shipped to the control
	// site before joining.
	IntermediateRows int
	// Parallelism is the effective intra-query worker budget the
	// execution ran with (after resolving Prepared and engine defaults).
	Parallelism int
	// JoinPartitions is the per-stage partition count the control-site
	// join pipeline ran with (0 when the plan had no join stages).
	JoinPartitions int
	// Partial is true when PartialResults mode skipped unreachable
	// sites: the rows returned are correct but possibly incomplete.
	// UnreachableSites lists the skipped sites, ascending.
	Partial          bool
	UnreachableSites []int
}

// New wires an engine and deploys every fragment to its allocated site.
func New(c *cluster.Cluster, d *dict.Dictionary, fr *fragment.Fragmentation, alloc *allocation.Allocation, hc *fragment.HotCold) (*Engine, error) {
	e := &Engine{
		Cluster: c,
		Dict:    d,
		Frag:    fr,
		Alloc:   alloc,
		dec:     &decompose.Decomposer{Dict: d, HC: hc},
	}
	for _, f := range fr.All() {
		site, ok := alloc.SiteOf[f.ID]
		if !ok {
			return nil, fmt.Errorf("exec: fragment %d has no site", f.ID)
		}
		if err := c.Place(site, f.ID, f.Graph); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// SetNaiveDecomposition switches the engine to single-edge decompositions
// (the decomposition ablation); pass false to restore Algorithm 3.
func (e *Engine) SetNaiveDecomposition(naive bool) { e.dec.Naive = naive }

// Views exposes the cluster's view source: the serving layer publishes a
// new cut there after each update batch and pins one per query.
func (e *Engine) Views() *rdf.ViewSource { return e.Cluster.Views() }

// Prepared is a query's cached execution plan: the chosen decomposition
// (Algorithm 3) and join order (Algorithm 4). A Prepared is immutable
// after Prepare and may be reused concurrently for any query whose graph
// is structurally identical (same edges, constants and variable names) —
// the plan cache in internal/serve relies on this.
type Prepared struct {
	Dcp  *decompose.Decomposition
	Plan *plan.Plan
	// Parallelism, when non-zero, overrides the engine's intra-query
	// worker budget for executions of this Prepared. Cached Prepareds
	// leave it 0; the server stamps a per-execution copy so one cached
	// plan can run at different budgets under different load.
	Parallelism int
	// JoinPartitions, when non-zero, overrides the engine's per-stage
	// join partition count for executions of this Prepared, the same way
	// Parallelism overrides the worker budget.
	JoinPartitions int
	// View, when non-nil, is the pinned read view every site evaluation
	// of this execution reads from — the MVCC replacement for the old
	// per-query data lock. Cached Prepareds leave it nil; the server
	// stamps a per-execution copy with the view acquired at admission.
	// A nil View makes each site evaluation fall back to a
	// per-graph-consistent snapshot of the current state (fine for
	// offline callers with no concurrent writer).
	View *rdf.ViewHandle
}

// Prepare decomposes and optimizes q without executing it.
func (e *Engine) Prepare(q *sparql.Graph) (*Prepared, error) {
	dcp, err := e.dec.Decompose(q)
	if err != nil {
		return nil, err
	}
	pl, err := plan.Optimize(dcp)
	if err != nil {
		return nil, err
	}
	return &Prepared{Dcp: dcp, Plan: pl}, nil
}

// Query evaluates q and returns the projected bindings.
func (e *Engine) Query(q *sparql.Graph) (*match.Bindings, *QueryStats, error) {
	return e.QueryCtx(context.Background(), q)
}

// QueryCtx evaluates q under ctx: cancellation or deadline expiry aborts
// the distributed evaluation and returns the context's error.
func (e *Engine) QueryCtx(ctx context.Context, q *sparql.Graph) (*match.Bindings, *QueryStats, error) {
	prep, err := e.Prepare(q)
	if err != nil {
		return nil, nil, err
	}
	return e.QueryPrepared(ctx, q, prep)
}

// Explain reports how a query would execute without running it: the
// chosen decomposition (Algorithm 3), the join order (Algorithm 4), and
// the fragments/sites each subquery would touch.
func (e *Engine) Explain(q *sparql.Graph) (*Explanation, error) {
	dcp, err := e.dec.Decompose(q)
	if err != nil {
		return nil, err
	}
	pl, err := plan.Optimize(dcp)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		DecompositionCost: dcp.Cost,
		PlanCost:          pl.Cost,
		JoinOrder:         pl.Order,
	}
	for _, sq := range dcp.Subqueries {
		step := ExplainStep{
			PatternCode: sq.PatternCode,
			Cold:        sq.Cold,
			Global:      sq.Global,
			Card:        sq.Card,
			Edges:       append([]int(nil), sq.EdgeIdx...),
		}
		switch {
		case sq.Cold:
			if e.Alloc.ColdSite >= 0 {
				step.Fragments = []ExplainFragment{{
					ID:   e.Frag.Cold.ID,
					Site: e.Alloc.ColdSite,
					Size: e.Frag.Cold.Graph.NumTriples(),
				}}
			}
		case sq.Global:
			for _, f := range e.Frag.All() {
				step.Fragments = append(step.Fragments, ExplainFragment{
					ID:   f.ID,
					Site: e.Alloc.SiteOf[f.ID],
					Size: f.Graph.NumTriples(),
				})
			}
		default:
			for _, entry := range e.Dict.RelevantEntries(sq.Graph) {
				step.Fragments = append(step.Fragments, ExplainFragment{
					ID:   entry.Fragment.ID,
					Site: entry.Site,
					Size: entry.Size,
				})
			}
		}
		ex.Subqueries = append(ex.Subqueries, step)
	}
	return ex, nil
}

// Explanation describes a query's distributed execution plan.
type Explanation struct {
	Subqueries        []ExplainStep
	JoinOrder         []int
	DecompositionCost float64
	PlanCost          float64
}

// ExplainStep is one subquery of the plan.
type ExplainStep struct {
	PatternCode string
	Cold        bool
	Global      bool
	Card        int
	Edges       []int
	Fragments   []ExplainFragment
}

// ExplainFragment identifies a fragment the step would read.
type ExplainFragment struct {
	ID   int
	Site int
	Size int
}

// routeSubquery maps a subquery to the fragment IDs it must read at each
// site (site -> fragment IDs). An empty map means the subquery has no
// relevant fragments and yields no rows.
func (e *Engine) routeSubquery(sq *decompose.Subquery) (map[int][]int, error) {
	bySite := make(map[int][]int)
	switch {
	case sq.Cold:
		if e.Frag.Cold == nil || e.Alloc.ColdSite < 0 {
			return bySite, nil
		}
		bySite[e.Alloc.ColdSite] = []int{e.Frag.Cold.ID}
	case sq.Global:
		for _, f := range e.Frag.All() {
			s := e.Alloc.SiteOf[f.ID]
			bySite[s] = append(bySite[s], f.ID)
		}
	default:
		for _, entry := range e.Dict.RelevantEntries(sq.Graph) {
			s := entry.Site
			if s < 0 {
				return nil, fmt.Errorf("exec: fragment %d unallocated", entry.Fragment.ID)
			}
			bySite[s] = append(bySite[s], entry.Fragment.ID)
		}
	}
	return bySite, nil
}

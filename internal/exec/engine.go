// Package exec is the distributed SPARQL engine of Section 7: it deploys
// a fragmentation + allocation onto a simulated cluster, decomposes each
// incoming query (Algorithm 3), optimizes the join order (Algorithm 4),
// evaluates subqueries on the relevant sites in parallel, and joins the
// shipped bindings at the control site.
package exec

import (
	"fmt"
	"sort"
	"sync"

	"rdffrag/internal/allocation"
	"rdffrag/internal/cluster"
	"rdffrag/internal/decompose"
	"rdffrag/internal/dict"
	"rdffrag/internal/fragment"
	"rdffrag/internal/match"
	"rdffrag/internal/plan"
	"rdffrag/internal/sparql"
)

// Engine executes SPARQL queries over a deployed fragmentation.
type Engine struct {
	Cluster *cluster.Cluster
	Dict    *dict.Dictionary
	Frag    *fragment.Fragmentation
	Alloc   *allocation.Allocation

	dec *decompose.Decomposer
}

// QueryStats reports per-query execution metrics.
type QueryStats struct {
	Subqueries   int
	SitesTouched int
	// DecompositionCost is Algorithm 3's Π card estimate.
	DecompositionCost float64
	// PlanCost is Algorithm 4's estimated intermediate size total.
	PlanCost float64
	// IntermediateRows counts actual binding rows shipped to the control
	// site before joining.
	IntermediateRows int
}

// New wires an engine and deploys every fragment to its allocated site.
func New(c *cluster.Cluster, d *dict.Dictionary, fr *fragment.Fragmentation, alloc *allocation.Allocation, hc *fragment.HotCold) (*Engine, error) {
	e := &Engine{
		Cluster: c,
		Dict:    d,
		Frag:    fr,
		Alloc:   alloc,
		dec:     &decompose.Decomposer{Dict: d, HC: hc},
	}
	for _, f := range fr.All() {
		site, ok := alloc.SiteOf[f.ID]
		if !ok {
			return nil, fmt.Errorf("exec: fragment %d has no site", f.ID)
		}
		if err := c.Place(site, f.ID, f.Graph); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// SetNaiveDecomposition switches the engine to single-edge decompositions
// (the decomposition ablation); pass false to restore Algorithm 3.
func (e *Engine) SetNaiveDecomposition(naive bool) { e.dec.Naive = naive }

// Query evaluates q and returns the projected bindings.
func (e *Engine) Query(q *sparql.Graph) (*match.Bindings, *QueryStats, error) {
	dcp, err := e.dec.Decompose(q)
	if err != nil {
		return nil, nil, err
	}
	pl, err := plan.Optimize(dcp)
	if err != nil {
		return nil, nil, err
	}
	stats := &QueryStats{
		Subqueries:        len(dcp.Subqueries),
		DecompositionCost: dcp.Cost,
		PlanCost:          pl.Cost,
	}

	// Evaluate all subqueries in parallel across their sites.
	results := make([]*match.Bindings, len(dcp.Subqueries))
	sitesTouched := make(map[int]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for i, sq := range dcp.Subqueries {
		wg.Add(1)
		go func(i int, sq *decompose.Subquery) {
			defer wg.Done()
			b, sites, err := e.evalSubquery(sq)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			results[i] = b
			for _, s := range sites {
				sitesTouched[s] = true
			}
		}(i, sq)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	stats.SitesTouched = len(sitesTouched)
	for _, b := range results {
		stats.IntermediateRows += len(b.Rows)
	}

	// Join at the control site in optimizer order.
	joined := results[pl.Order[0]]
	for _, idx := range pl.Order[1:] {
		joined = cluster.HashJoin(joined, results[idx])
	}
	if len(q.Select) > 0 {
		joined = cluster.Project(joined, q.Select)
	} else {
		joined.Dedup()
	}
	// ORDER BY is applied by the caller on decoded terms; truncating
	// here would change which rows survive, so only limit unordered
	// queries.
	if q.Limit > 0 && len(q.OrderBy) == 0 && len(joined.Rows) > q.Limit {
		joined.Rows = joined.Rows[:q.Limit]
	}
	return joined, stats, nil
}

// Explain reports how a query would execute without running it: the
// chosen decomposition (Algorithm 3), the join order (Algorithm 4), and
// the fragments/sites each subquery would touch.
func (e *Engine) Explain(q *sparql.Graph) (*Explanation, error) {
	dcp, err := e.dec.Decompose(q)
	if err != nil {
		return nil, err
	}
	pl, err := plan.Optimize(dcp)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		DecompositionCost: dcp.Cost,
		PlanCost:          pl.Cost,
		JoinOrder:         pl.Order,
	}
	for _, sq := range dcp.Subqueries {
		step := ExplainStep{
			PatternCode: sq.PatternCode,
			Cold:        sq.Cold,
			Global:      sq.Global,
			Card:        sq.Card,
			Edges:       append([]int(nil), sq.EdgeIdx...),
		}
		switch {
		case sq.Cold:
			if e.Alloc.ColdSite >= 0 {
				step.Fragments = []ExplainFragment{{
					ID:   e.Frag.Cold.ID,
					Site: e.Alloc.ColdSite,
					Size: e.Frag.Cold.Graph.NumTriples(),
				}}
			}
		case sq.Global:
			for _, f := range e.Frag.All() {
				step.Fragments = append(step.Fragments, ExplainFragment{
					ID:   f.ID,
					Site: e.Alloc.SiteOf[f.ID],
					Size: f.Graph.NumTriples(),
				})
			}
		default:
			for _, entry := range e.Dict.RelevantEntries(sq.Graph) {
				step.Fragments = append(step.Fragments, ExplainFragment{
					ID:   entry.Fragment.ID,
					Site: entry.Site,
					Size: entry.Size,
				})
			}
		}
		ex.Subqueries = append(ex.Subqueries, step)
	}
	return ex, nil
}

// Explanation describes a query's distributed execution plan.
type Explanation struct {
	Subqueries        []ExplainStep
	JoinOrder         []int
	DecompositionCost float64
	PlanCost          float64
}

// ExplainStep is one subquery of the plan.
type ExplainStep struct {
	PatternCode string
	Cold        bool
	Global      bool
	Card        int
	Edges       []int
	Fragments   []ExplainFragment
}

// ExplainFragment identifies a fragment the step would read.
type ExplainFragment struct {
	ID   int
	Site int
	Size int
}

// evalSubquery routes one subquery to the sites holding its relevant
// fragments, evaluating per site in parallel.
func (e *Engine) evalSubquery(sq *decompose.Subquery) (*match.Bindings, []int, error) {
	bySite := make(map[int][]int) // site -> fragment IDs
	switch {
	case sq.Cold:
		if e.Frag.Cold == nil || e.Alloc.ColdSite < 0 {
			return match.ToBindings(sq.Graph, nil), nil, nil
		}
		bySite[e.Alloc.ColdSite] = []int{e.Frag.Cold.ID}
	case sq.Global:
		for _, f := range e.Frag.All() {
			s := e.Alloc.SiteOf[f.ID]
			bySite[s] = append(bySite[s], f.ID)
		}
	default:
		for _, entry := range e.Dict.RelevantEntries(sq.Graph) {
			s := entry.Site
			if s < 0 {
				return nil, nil, fmt.Errorf("exec: fragment %d unallocated", entry.Fragment.ID)
			}
			bySite[s] = append(bySite[s], entry.Fragment.ID)
		}
	}

	sites := make([]int, 0, len(bySite))
	for s := range bySite {
		sites = append(sites, s)
	}
	sort.Ints(sites)

	parts := make([]*match.Bindings, len(sites))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, s := range sites {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			b, err := e.Cluster.Eval(cluster.EvalRequest{
				SiteID:  s,
				FragIDs: bySite[s],
				Query:   sq.Graph,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			parts[i] = b
		}(i, s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	union := cluster.Union(parts...)
	if len(union.Vars) == 0 {
		union = match.ToBindings(sq.Graph, nil)
	}
	return union, sites, nil
}

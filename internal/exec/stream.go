package exec

// Streaming query execution. The materialization barrier of the original
// engine (evaluate every subquery fully, then join sequentially) is
// replaced by a pipeline: each subquery's sites push binding batches over
// a channel as the local matcher finds them, and a chain of symmetric
// hash-join operators (cluster.JoinStream) consumes those streams in the
// optimizer's order. Join work overlaps with evaluation and shipping, so
// query latency tracks the slowest chain through the pipeline rather than
// the sum of barrier-separated phases — and LIMIT queries cancel the
// whole pipeline as soon as enough rows survive projection.

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rdffrag/internal/cluster"
	"rdffrag/internal/decompose"
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
)

// streamBuf is the per-stage channel depth: enough to decouple producer
// and consumer bursts without hoarding batches.
const streamBuf = 4

// runStats collects execution metrics from concurrently running pipeline
// stages.
type runStats struct {
	rows  atomic.Int64
	mu    sync.Mutex
	sites map[int]bool
	// unreachable collects sites skipped in PartialResults mode; any
	// entry flags the whole result partial.
	unreachable map[int]bool
}

func (st *runStats) touch(sites []int) {
	st.mu.Lock()
	for _, s := range sites {
		st.sites[s] = true
	}
	st.mu.Unlock()
}

func (st *runStats) skip(site int) {
	st.mu.Lock()
	st.unreachable[site] = true
	st.mu.Unlock()
}

// unreachableSites returns the skipped sites in ascending order.
func (st *runStats) unreachableSites() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int, 0, len(st.unreachable))
	for s := range st.unreachable {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// siteCount reads the touched-site tally; producers may still be running
// when the pipeline is cancelled early, so the read must take the lock.
func (st *runStats) siteCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sites)
}

// QueryPrepared executes q with a previously prepared plan. The plan must
// come from this engine and a structurally identical query graph.
func (e *Engine) QueryPrepared(ctx context.Context, q *sparql.Graph, prep *Prepared) (*match.Bindings, *QueryStats, error) {
	dcp, pl := prep.Dcp, prep.Plan
	stats := &QueryStats{
		Subqueries:        len(dcp.Subqueries),
		DecompositionCost: dcp.Cost,
		PlanCost:          pl.Cost,
	}
	par := prep.Parallelism
	if par == 0 {
		par = e.Parallelism
	}
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	stats.Parallelism = par

	vars := make([][]string, len(dcp.Subqueries))
	for i, sq := range dcp.Subqueries {
		vars[i] = sq.Graph.Vars()
	}

	// Split the worker grant between the subquery producers and the
	// control-site join pipeline: when the plan has partitionable join
	// stages and a budget worth splitting, half the budget funds join
	// partitions (divided across those stages) and the producers divide
	// the rest — so total worker demand stays near the budget instead of
	// multiplying. Only stages whose inputs share a variable count:
	// Cartesian stages always run single-partition in cluster, so
	// charging the budget for them would starve the producers for
	// workers the join never uses. An explicit Prepared/engine
	// JoinPartitions override replaces the derived count (clamped to
	// cluster's cap). joinPar of 1 keeps the sequential symmetric join
	// and leaves the whole budget with the producers.
	joinStages := len(pl.Order) - 1
	joinPar := 0
	sqBudget := par
	if joinStages > 0 {
		partStages := countPartitionableStages(pl.Order, vars)
		if partStages > 0 {
			switch {
			case prep.JoinPartitions > 0:
				joinPar = prep.JoinPartitions
			case e.JoinPartitions > 0:
				joinPar = e.JoinPartitions
			case par > 1:
				joinPar = par / 2 / partStages
			}
			if joinPar > cluster.MaxJoinPartitions {
				joinPar = cluster.MaxJoinPartitions
			}
		}
		if joinPar < 1 {
			joinPar = 1
		}
		if joinPar > 1 {
			sqBudget = par - joinPar*partStages
			if sqBudget < 1 {
				sqBudget = 1
			}
		}
	}
	stats.JoinPartitions = joinPar
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &runStats{sites: make(map[int]bool), unreachable: make(map[int]bool)}
	errCh := make(chan error, len(dcp.Subqueries))

	// One producer per subquery, streaming batches from its sites. The
	// producers' share of the worker budget is divided across the
	// concurrent subquery producers here, across each subquery's sites
	// below, and across a site's fragments in cluster — so total
	// morsel-worker demand stays near the budget instead of multiplying
	// with the fan-out.
	sqPar := sqBudget / len(dcp.Subqueries)
	if sqPar < 1 {
		sqPar = 1
	}
	streams := make([]chan *match.Bindings, len(dcp.Subqueries))
	for i, sq := range dcp.Subqueries {
		streams[i] = make(chan *match.Bindings, streamBuf)
		go func(sq *decompose.Subquery, out chan *match.Bindings) {
			defer close(out)
			if err := e.evalSubqueryStream(ctx, sq, prep.View, sqPar, out, st); err != nil {
				errCh <- err
				cancel()
			}
		}(sq, streams[i])
	}

	// Chain pipelined joins in optimizer order: stage k joins the running
	// result stream with subquery Order[k]'s stream, fanned out over
	// joinPar shared-nothing partitions. Streaming merge mode: consume
	// dedups and sorts the final rows, so the deterministic
	// (materialize-then-emit) merge would only add latency here.
	cur, curVars := (<-chan *match.Bindings)(streams[pl.Order[0]]), vars[pl.Order[0]]
	for _, idx := range pl.Order[1:] {
		next := make(chan *match.Bindings, streamBuf)
		go cluster.JoinStreamOpts(ctx, curVars, vars[idx], cur, streams[idx], next, cluster.JoinOptions{Partitions: joinPar})
		cur, curVars = next, cluster.JoinVars(curVars, vars[idx])
	}

	out := e.consume(ctx, cancel, q, cur, curVars)
	stats.SitesTouched = st.siteCount()
	stats.IntermediateRows = int(st.rows.Load())
	stats.UnreachableSites = st.unreachableSites()
	stats.Partial = len(stats.UnreachableSites) > 0

	if err := parent.Err(); err != nil {
		return nil, nil, err
	}
	select {
	case err := <-errCh:
		// context.Canceled here can only be the pipeline's own
		// early-termination cancel (LIMIT satisfied); a caller cancel was
		// caught via parent above.
		if !errors.Is(err, context.Canceled) {
			return nil, nil, err
		}
	default:
	}
	return out, stats, nil
}

// consume drains the final join stream, applying projection, incremental
// deduplication and LIMIT push-down: once Limit distinct rows survive
// projection the whole pipeline is cancelled instead of materializing the
// rest. Rows are returned sorted (Dedup order), matching the engine's
// historical deterministic output.
func (e *Engine) consume(ctx context.Context, cancel context.CancelFunc, q *sparql.Graph, in <-chan *match.Bindings, inVars []string) *match.Bindings {
	// Resolve the projection once, against the full joined layout.
	proj := make([]int, 0, len(q.Select))
	keptVars := inVars
	if len(q.Select) > 0 {
		pos := make(map[string]int, len(inVars))
		for i, v := range inVars {
			pos[v] = i
		}
		kept := make([]string, 0, len(q.Select))
		for _, v := range q.Select {
			if i, ok := pos[v]; ok {
				proj = append(proj, i)
				kept = append(kept, v)
			}
		}
		keptVars = kept
	}
	// ORDER BY is applied by the caller on decoded terms; stopping early
	// would change which rows survive, so only push the limit down for
	// unordered queries.
	limit := 0
	if q.Limit > 0 && len(q.OrderBy) == 0 {
		limit = q.Limit
	}

	out := &match.Bindings{Vars: keptVars}
	seen := newRowSet(len(keptVars))
	for b := range in {
		for _, row := range b.Rows {
			r := row
			if len(q.Select) > 0 {
				r = make([]rdf.ID, len(proj))
				for i, j := range proj {
					r[i] = row[j]
				}
			}
			if !seen.insert(r) {
				continue
			}
			out.Rows = append(out.Rows, r)
			if limit > 0 && len(out.Rows) >= limit {
				cancel() // stop producers and join stages
				sortRows(out)
				return out
			}
		}
	}
	sortRows(out)
	return out
}

// countPartitionableStages walks the join order and counts the stages a
// partition grant can actually fan out, per cluster's own
// shared-variable rule (Cartesian stages run single-partition
// regardless).
func countPartitionableStages(order []int, vars [][]string) int {
	n := 0
	cv := vars[order[0]]
	for _, idx := range order[1:] {
		if cluster.Partitionable(cv, vars[idx]) {
			n++
		}
		cv = cluster.JoinVars(cv, vars[idx])
	}
	return n
}

// maxPackedCols is how many columns fit the fixed-size packed dedup key;
// it mirrors cluster's join-table keys. Almost every projection is ≤4
// columns wide; wider rows fall back to string keys.
const maxPackedCols = 4

// rowSet dedups binding rows without materializing a string per row: rows
// up to maxPackedCols wide key a map by packed [4]rdf.ID value arrays
// (all rows of one result set share a width, so zero padding cannot
// collide). It removes the last per-row string materialization in the
// query path.
type rowSet struct {
	packed map[[maxPackedCols]rdf.ID]struct{}
	str    map[string]struct{}
}

func newRowSet(width int) *rowSet {
	if width <= maxPackedCols {
		return &rowSet{packed: make(map[[maxPackedCols]rdf.ID]struct{})}
	}
	return &rowSet{str: make(map[string]struct{})}
}

// insert adds the row, reporting whether it was new.
func (s *rowSet) insert(r []rdf.ID) bool {
	if s.packed != nil {
		var k [maxPackedCols]rdf.ID
		copy(k[:], r)
		if _, ok := s.packed[k]; ok {
			return false
		}
		s.packed[k] = struct{}{}
		return true
	}
	b := make([]byte, 0, len(r)*4)
	for _, id := range r {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	k := string(b)
	if _, ok := s.str[k]; ok {
		return false
	}
	s.str[k] = struct{}{}
	return true
}

// sortRows orders rows lexicographically, the order Dedup historically
// produced; rows are already distinct.
func sortRows(b *match.Bindings) {
	sort.Slice(b.Rows, func(i, j int) bool {
		ri, rj := b.Rows[i], b.Rows[j]
		for k := range ri {
			if ri[k] != rj[k] {
				return ri[k] < rj[k]
			}
		}
		return false
	})
}

// evalSubqueryStream routes one subquery to the sites holding its
// relevant fragments and streams their binding batches into out,
// dividing the subquery's worker budget across its concurrent sites. It
// returns once every site's stream is exhausted (or ctx is cancelled).
// Every site evaluation reads from view, the execution's pinned cut.
func (e *Engine) evalSubqueryStream(ctx context.Context, sq *decompose.Subquery, view *rdf.ViewHandle, par int, out chan<- *match.Bindings, st *runStats) error {
	bySite, err := e.routeSubquery(sq)
	if err != nil {
		return err
	}
	sites := make([]int, 0, len(bySite))
	for s := range bySite {
		sites = append(sites, s)
	}
	sort.Ints(sites)
	st.touch(sites)
	sitePar := 1
	if len(sites) > 0 {
		sitePar = par / len(sites)
		if sitePar < 1 {
			sitePar = 1
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, s := range sites {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Remote sites get their own evaluator (retries, breaker);
			// they read current fragment state rather than the pinned
			// view — a view handle cannot travel across processes.
			err := e.evaluatorFor(s).EvalStream(ctx, cluster.EvalRequest{
				SiteID:      s,
				FragIDs:     bySite[s],
				Query:       sq.Graph,
				View:        view,
				Parallelism: sitePar,
			}, e.BatchSize, func(b *match.Bindings) error {
				st.rows.Add(int64(len(b.Rows)))
				select {
				case out <- b:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			})
			if err != nil {
				// Degrade gracefully if configured: an unavailable site
				// (retries exhausted or breaker open) is skipped and the
				// result flagged partial instead of failing the query.
				if e.PartialResults && errors.Is(err, cluster.ErrSiteUnavailable) && ctx.Err() == nil {
					st.skip(s)
					return
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return firstErr
}

package exec_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rdffrag/internal/cluster"
	"rdffrag/internal/exec"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
	"rdffrag/internal/testenv"
)

// TestQueryCancellation verifies ctx cancellation aborts a distributed
// query promptly, even with simulated network latency in flight.
func TestQueryCancellation(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := cluster.New(4, 2)
	c.Latency = cluster.Delay{PerMessage: 50 * time.Millisecond}
	e, err := exec.New(c, env.Dict, env.Frag, env.Alloc, env.HC)
	if err != nil {
		t.Fatalf("exec.New: %v", err)
	}

	q := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <placeOfDeath> ?c . ?c <country> ?k . ?c <postalCode> ?z . }`)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = e.QueryCtx(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryCtx after cancel: err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("cancellation returned after %v; want prompt abort", el)
	}
}

// TestQueryDeadline verifies a context deadline surfaces as
// DeadlineExceeded.
func TestQueryDeadline(t *testing.T) {
	env, err := testenv.Build(testenv.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := cluster.New(4, 2)
	c.Latency = cluster.Delay{PerMessage: 50 * time.Millisecond}
	e, err := exec.New(c, env.Dict, env.Frag, env.Alloc, env.HC)
	if err != nil {
		t.Fatalf("exec.New: %v", err)
	}
	q := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, _, err := e.QueryCtx(ctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("QueryCtx past deadline: err = %v, want DeadlineExceeded", err)
	}
}

// TestLimitPushdown verifies the streaming pipeline stops early for
// unordered LIMIT queries and still returns correct (distinct, subset)
// rows.
func TestLimitPushdown(t *testing.T) {
	e, env := newEngine(t, false)

	full := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	fullRes, _, err := e.Query(full)
	if err != nil {
		t.Fatalf("Query(full): %v", err)
	}
	if len(fullRes.Rows) < 5 {
		t.Fatalf("need ≥5 base rows, got %d", len(fullRes.Rows))
	}
	fullSet := map[string]bool{}
	for _, r := range fullRes.Rows {
		fullSet[rowString(r)] = true
	}

	limited := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	limited.Limit = 3
	got, _, err := e.Query(limited)
	if err != nil {
		t.Fatalf("Query(limit 3): %v", err)
	}
	if len(got.Rows) != 3 {
		t.Fatalf("limit 3 returned %d rows", len(got.Rows))
	}
	seen := map[string]bool{}
	for _, r := range got.Rows {
		k := rowString(r)
		if seen[k] {
			t.Errorf("duplicate row %v under LIMIT", r)
		}
		seen[k] = true
		if !fullSet[k] {
			t.Errorf("row %v not in the unlimited result", r)
		}
	}

	// A limit larger than the result set returns everything.
	limited2 := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	limited2.Limit = len(fullRes.Rows) + 100
	got2, _, err := e.Query(limited2)
	if err != nil {
		t.Fatalf("Query(big limit): %v", err)
	}
	if len(got2.Rows) != len(fullRes.Rows) {
		t.Errorf("limit > |result| returned %d rows, want %d", len(got2.Rows), len(fullRes.Rows))
	}
}

// TestLimitPreservesOrderBy verifies ordered queries are NOT truncated by
// the pipeline (the caller sorts decoded terms first).
func TestLimitPreservesOrderBy(t *testing.T) {
	e, env := newEngine(t, false)
	q := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	full, _, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}

	ordered := sparql.MustParse(env.G.Dict, `SELECT ?x ?n WHERE { ?x <name> ?n . }`)
	ordered.OrderBy = []sparql.OrderKey{{Var: "n"}}
	ordered.Limit = 2
	got, _, err := e.Query(ordered)
	if err != nil {
		t.Fatalf("Query(ordered): %v", err)
	}
	if len(got.Rows) != len(full.Rows) {
		t.Errorf("ORDER BY + LIMIT pipeline returned %d rows, want all %d (caller truncates after sorting)",
			len(got.Rows), len(full.Rows))
	}
}

// TestPreparedReuse verifies a cached plan answers repeated executions
// identically to fresh ones, including concurrently.
func TestPreparedReuse(t *testing.T) {
	e, env := newEngine(t, false)
	q := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <placeOfDeath> ?c . ?c <country> ?k . ?c <postalCode> ?z . }`)
	prep, err := e.Prepare(q)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	want, _, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i := 0; i < 3; i++ {
		got, _, err := e.QueryPrepared(context.Background(), q, prep)
		if err != nil {
			t.Fatalf("QueryPrepared run %d: %v", i, err)
		}
		if !bindingsEqual(got, want) {
			t.Errorf("run %d: prepared result diverged (%d rows vs %d)", i, len(got.Rows), len(want.Rows))
		}
	}
}

func rowString(r []rdf.ID) string {
	s := ""
	for _, id := range r {
		s += fmt.Sprintf("%d|", id)
	}
	return s
}

package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"rdffrag/internal/rdf"
)

// TestRowSetMatchesStringKeys: the packed-key row set must accept and
// reject exactly the rows a string-keyed set would, across the packed
// width boundary (≤4 columns packed, >4 string fallback).
func TestRowSetMatchesStringKeys(t *testing.T) {
	for _, width := range []int{1, 2, 4, 5, 7} {
		t.Run(fmt.Sprintf("width%d", width), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(width)))
			set := newRowSet(width)
			oracle := make(map[string]bool)
			for i := 0; i < 2000; i++ {
				row := make([]rdf.ID, width)
				for j := range row {
					row[j] = rdf.ID(r.Intn(5)) // small domain: plenty of duplicates
				}
				key := fmt.Sprint(row)
				want := !oracle[key]
				oracle[key] = true
				if got := set.insert(row); got != want {
					t.Fatalf("insert(%v) = %v, want %v", row, got, want)
				}
			}
		})
	}
}

// TestRowSetAllocs: packed insertion of an already-seen row must not
// allocate — the point of replacing the per-row string keys.
func TestRowSetAllocs(t *testing.T) {
	set := newRowSet(3)
	row := []rdf.ID{1, 2, 3}
	set.insert(row)
	allocs := testing.AllocsPerRun(1000, func() {
		set.insert(row)
	})
	if allocs != 0 {
		t.Errorf("duplicate packed insert allocates %.1f per run, want 0", allocs)
	}
}

package exec_test

import (
	"fmt"
	"sort"
	"testing"

	"rdffrag/internal/cluster"
	"rdffrag/internal/exec"
	"rdffrag/internal/match"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
	"rdffrag/internal/testenv"
)

func newEngine(t *testing.T, horizontal bool) (*exec.Engine, *testenv.Env) {
	t.Helper()
	env, err := testenv.Build(testenv.Options{Horizontal: horizontal})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := cluster.New(4, 2)
	e, err := exec.New(c, env.Dict, env.Frag, env.Alloc, env.HC)
	if err != nil {
		t.Fatalf("exec.New: %v", err)
	}
	return e, env
}

// centralizedAnswer evaluates q over the whole graph with the local
// matcher, the ground truth for distributed results.
func centralizedAnswer(q *sparql.Graph, g *rdf.Graph) *match.Bindings {
	ms := match.Find(q, g.Snapshot(), match.Options{})
	b := match.ToBindings(q, ms)
	if len(q.Select) > 0 {
		b = cluster.Project(b, q.Select)
	} else {
		b.Dedup()
	}
	return b
}

func bindingsEqual(a, b *match.Bindings) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Vars) != len(b.Vars) {
		return false
	}
	key := func(bind *match.Bindings, i int) string {
		idx := make([]int, len(bind.Vars))
		order := append([]string(nil), bind.Vars...)
		sort.Strings(order)
		pos := map[string]int{}
		for j, v := range bind.Vars {
			pos[v] = j
		}
		s := ""
		for _, v := range order {
			idx = idx[:0]
			s += fmt.Sprintf("%d|", bind.Rows[i][pos[v]])
		}
		return s
	}
	am := map[string]int{}
	for i := range a.Rows {
		am[key(a, i)]++
	}
	for i := range b.Rows {
		am[key(b, i)]--
	}
	for _, v := range am {
		if v != 0 {
			return false
		}
	}
	return true
}

var correctnessQueries = []string{
	`SELECT ?x ?n WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`,
	`SELECT ?x WHERE { ?x <placeOfDeath> ?c . ?c <country> ?k . ?c <postalCode> ?z . }`,
	`SELECT ?x WHERE { ?x <name> ?n . ?x <influencedBy> <Person3> . }`,
	`SELECT ?x ?v WHERE { ?x <viaf> ?v . }`,
	`SELECT ?x WHERE { ?x <name> ?n . ?x <viaf> ?v . }`,
	`SELECT ?x ?c WHERE { ?x <placeOfDeath> ?c . }`,
	`SELECT ?x WHERE { ?x <mainInterest> <Interest2> . ?x <influencedBy> ?y . ?y <mainInterest> ?j . }`,
}

func TestQueryMatchesCentralizedVertical(t *testing.T) {
	e, env := newEngine(t, false)
	for _, qs := range correctnessQueries {
		q := sparql.MustParse(env.G.Dict, qs)
		got, stats, err := e.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", qs, err)
		}
		want := centralizedAnswer(q, env.G)
		if !bindingsEqual(got, want) {
			t.Errorf("query %q: distributed %d rows, centralized %d rows", qs, len(got.Rows), len(want.Rows))
		}
		if stats.Subqueries < 1 {
			t.Errorf("query %q: no subqueries", qs)
		}
	}
}

func TestQueryMatchesCentralizedHorizontal(t *testing.T) {
	e, env := newEngine(t, true)
	for _, qs := range correctnessQueries {
		q := sparql.MustParse(env.G.Dict, qs)
		got, _, err := e.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", qs, err)
		}
		want := centralizedAnswer(q, env.G)
		if !bindingsEqual(got, want) {
			t.Errorf("query %q: distributed %d rows, centralized %d rows", qs, len(got.Rows), len(want.Rows))
		}
	}
}

func TestQueryTouchesOnlyRelevantSites(t *testing.T) {
	e, env := newEngine(t, false)
	// A query matching a single 2-edge FAP should touch few sites — the
	// vertical fragmentation's locality claim.
	q := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`)
	_, stats, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if stats.SitesTouched > 2 {
		t.Errorf("sites touched = %d, want <= 2 for a single-FAP query", stats.SitesTouched)
	}
}

func TestQueryNetworkAccounting(t *testing.T) {
	e, env := newEngine(t, false)
	e.Cluster.Net.Reset()
	q := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <name> ?n . }`)
	if _, _, err := e.Query(q); err != nil {
		t.Fatalf("Query: %v", err)
	}
	msgs, bytes := e.Cluster.Net.Snapshot()
	if msgs < 2 || bytes <= 0 {
		t.Errorf("net stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestQueryEmptyResult(t *testing.T) {
	e, env := newEngine(t, false)
	q := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <influencedBy> <NoSuchPerson> . }`)
	got, _, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(got.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(got.Rows))
	}
}

func TestQueryVariablePredicate(t *testing.T) {
	e, env := newEngine(t, false)
	q := sparql.MustParse(env.G.Dict, `SELECT ?p WHERE { <Person0> ?p ?y . }`)
	got, _, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := centralizedAnswer(q, env.G)
	if !bindingsEqual(got, want) {
		t.Errorf("var-pred query: got %d rows, want %d", len(got.Rows), len(want.Rows))
	}
}

func TestQueryConcurrent(t *testing.T) {
	e, env := newEngine(t, false)
	q := sparql.MustParse(env.G.Dict, `SELECT ?x WHERE { ?x <name> ?n . ?x <mainInterest> ?i . }`)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, _, err := e.Query(q)
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent Query: %v", err)
		}
	}
}

package bench

import (
	"fmt"
	"sync"
	"time"

	"rdffrag/internal/mining"
	"rdffrag/internal/sparql"
)

// Fig8a sweeps minSup and reports the number of frequent access patterns
// (Figure 8(a): 0.1% → 163 FAPs, 1% → 44 for real DBpedia; shapes here,
// not absolute counts).
func (s *Suite) Fig8a() (*Table, error) {
	ds, err := s.DBpedia()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig8a",
		Title:  "minSup vs number of frequent access patterns (DBpedia-like)",
		Header: []string{"minSup", "FAPs"},
	}
	for _, frac := range []float64{0.001, 0.005, 0.01} {
		minSup := int(frac * float64(len(ds.Log)))
		if minSup < 1 {
			minSup = 1
		}
		ps := (&mining.Miner{MinSup: minSup}).Mine(ds.Log)
		t.AddRow(fmt.Sprintf("%.1f%%", frac*100), fmt.Sprintf("%d", len(ps)))
	}
	t.Notes = "paper: 0.1%→163, 1%→44 FAPs; count must fall as minSup rises"
	return t, nil
}

// Fig8b reports workload coverage as a function of the number of FAPs
// kept (Figure 8(b)): patterns sorted by support, prefix coverage.
func (s *Suite) Fig8b() (*Table, error) {
	ds, err := s.DBpedia()
	if err != nil {
		return nil, err
	}
	minSup := minSupOf(len(ds.Log))
	ps := (&mining.Miner{MinSup: minSup}).Mine(ds.Log)
	t := &Table{
		ID:     "fig8b",
		Title:  "number of FAPs vs workload hitting ratio (DBpedia-like)",
		Header: []string{"FAPs", "coverage"},
	}
	steps := []int{1, 2, 4, 8, len(ps)}
	for _, n := range steps {
		if n > len(ps) {
			n = len(ps)
		}
		cov := mining.Coverage(ps[:n], ds.Log)
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", cov*100))
	}
	t.Notes = "paper: coverage rises with FAP count, ~97% at full set"
	return t, nil
}

// runSequential measures the average per-query latency.
func runSequential(r Runner, qs []*sparql.Graph) (avg time.Duration, err error) {
	if len(qs) == 0 {
		return 0, fmt.Errorf("bench: empty query sample")
	}
	t0 := time.Now()
	for _, q := range qs {
		if _, err := r.Run(q); err != nil {
			return 0, fmt.Errorf("%s: %w", r.Name(), err)
		}
	}
	return time.Since(t0) / time.Duration(len(qs)), nil
}

// runThroughput replays the sample with concurrent clients and reports
// queries per minute.
func runThroughput(r Runner, qs []*sparql.Graph, clients int) (float64, error) {
	if len(qs) == 0 {
		return 0, fmt.Errorf("bench: empty query sample")
	}
	// Replay the sample a few times so short runs aren't dominated by a
	// single slow query landing on one client.
	const reps = 3
	jobs := make(chan *sparql.Graph, reps*len(qs))
	for r := 0; r < reps; r++ {
		for _, q := range qs {
			jobs <- q
		}
	}
	close(jobs)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range jobs {
				if _, err := r.Run(q); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	mins := time.Since(t0).Minutes()
	if mins <= 0 {
		mins = 1e-9
	}
	return float64(reps*len(qs)) / mins, nil
}

// Fig9 compares throughput (queries per minute) across the four
// strategies on both datasets (Figure 9).
func (s *Suite) Fig9() (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "throughput, queries/minute (higher is better)",
		Header: []string{"dataset", "SHAPE", "WARP", "VF", "HF"},
		Notes:  "paper: VF > HF > WARP > SHAPE on both datasets",
	}
	for _, get := range []func() (*Dataset, error){s.DBpedia, s.WatDiv} {
		ds, err := get()
		if err != nil {
			return nil, err
		}
		sample := Sample(ds.Log, s.Cfg.SampleFraction)
		row := []string{ds.Name}
		for _, name := range StrategyNames {
			r, _, err := s.BuildStrategy(ds, name)
			if err != nil {
				return nil, err
			}
			qpm, err := runThroughput(r, sample, s.Cfg.Clients)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", qpm))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig10 compares average query response time (Figure 10).
func (s *Suite) Fig10() (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "average response time per query (lower is better)",
		Header: []string{"dataset", "SHAPE", "WARP", "VF", "HF"},
		Notes:  "paper: HF < VF < WARP < SHAPE on both datasets",
	}
	for _, get := range []func() (*Dataset, error){s.DBpedia, s.WatDiv} {
		ds, err := get()
		if err != nil {
			return nil, err
		}
		sample := Sample(ds.Log, s.Cfg.SampleFraction)
		row := []string{ds.Name}
		for _, name := range StrategyNames {
			r, _, err := s.BuildStrategy(ds, name)
			if err != nil {
				return nil, err
			}
			avg, err := runSequential(r, sample)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(float64(avg.Microseconds())/1000))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11 sweeps the WatDiv dataset size for VF and HF (Figure 11):
// response time and throughput vs triples.
func (s *Suite) Fig11() (*Table, error) {
	base := s.Cfg.WatDivTriples
	sizes := []int{base / 2, base, base * 3 / 2, base * 2, base * 5 / 2}
	t := &Table{
		ID:     "fig11",
		Title:  "scalability on WatDiv-like data (≙ paper's 50M–250M sweep)",
		Header: []string{"triples", "VF avg", "HF avg", "VF qpm", "HF qpm"},
		Notes:  "paper: slow degradation with size; HF faster, VF higher throughput",
	}
	for _, size := range sizes {
		ds, err := s.watDivAt(size)
		if err != nil {
			return nil, err
		}
		sample := Sample(ds.Log, s.Cfg.SampleFraction)
		row := []string{fmt.Sprintf("%d", ds.Graph.NumTriples())}
		var avgs []string
		var qpms []string
		for _, name := range []string{"VF", "HF"} {
			r, _, err := s.BuildStrategy(ds, name)
			if err != nil {
				return nil, err
			}
			avg, err := runSequential(r, sample)
			if err != nil {
				return nil, err
			}
			avgs = append(avgs, ms(float64(avg.Microseconds())/1000))
			qpm, err := runThroughput(r, sample, s.Cfg.Clients)
			if err != nil {
				return nil, err
			}
			qpms = append(qpms, fmt.Sprintf("%.0f", qpm))
		}
		row = append(row, avgs...)
		row = append(row, qpms...)
		t.AddRow(row...)
	}
	return t, nil
}

// Fig12 runs the 20 WatDiv benchmark queries per strategy (Figure 12).
func (s *Suite) Fig12() (*Table, error) {
	ds, err := s.WatDiv()
	if err != nil {
		return nil, err
	}
	qs, names, err := ds.WatDiv.BenchmarkQueries(s.Cfg.Seed + 7)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig12",
		Title:  "WatDiv benchmark queries: per-query response time",
		Header: []string{"query", "SHAPE", "WARP", "VF", "HF"},
		Notes:  "paper: VF/HF win on most queries; stars close, complex queries far apart",
	}
	runners := make([]Runner, len(StrategyNames))
	for i, name := range StrategyNames {
		r, _, err := s.BuildStrategy(ds, name)
		if err != nil {
			return nil, err
		}
		runners[i] = r
	}
	const reps = 3
	for qi, q := range qs {
		row := []string{names[qi]}
		for _, r := range runners {
			t0 := time.Now()
			for rep := 0; rep < reps; rep++ {
				if _, err := r.Run(q); err != nil {
					return nil, fmt.Errorf("%s on %s: %w", r.Name(), names[qi], err)
				}
			}
			row = append(row, ms(float64(time.Since(t0).Microseconds())/1000/reps))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table1 reports redundancy ratios (Table 1).
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "redundancy: edges stored / edges in original graph",
		Header: []string{"strategy", "DBpedia", "WatDiv"},
		Notes:  "paper: SHAPE 2.99/1.74, WARP 1.01/1.54, VF 1.38/1.04, HF 1.42/1.06",
	}
	dbp, err := s.DBpedia()
	if err != nil {
		return nil, err
	}
	wat, err := s.WatDiv()
	if err != nil {
		return nil, err
	}
	for _, name := range StrategyNames {
		_, st1, err := s.BuildStrategy(dbp, name)
		if err != nil {
			return nil, err
		}
		_, st2, err := s.BuildStrategy(wat, name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, f2(st1.Redundancy), f2(st2.Redundancy))
	}
	return t, nil
}

// Table2 reports partitioning and loading times (Table 2).
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "offline partitioning and loading time",
		Header: []string{"strategy", "DBp part", "DBp load", "DBp total", "WD part", "WD load", "WD total"},
		Notes:  "paper reports minutes at 10⁴× scale; shapes (VF/HF loading dominates on DBpedia) carry over",
	}
	dbp, err := s.DBpedia()
	if err != nil {
		return nil, err
	}
	wat, err := s.WatDiv()
	if err != nil {
		return nil, err
	}
	for _, name := range StrategyNames {
		_, st1, err := s.BuildStrategy(dbp, name)
		if err != nil {
			return nil, err
		}
		_, st2, err := s.BuildStrategy(wat, name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			ms(float64(st1.Partitioning.Microseconds())/1000),
			ms(float64(st1.Loading.Microseconds())/1000),
			ms(float64((st1.Partitioning+st1.Loading).Microseconds())/1000),
			ms(float64(st2.Partitioning.Microseconds())/1000),
			ms(float64(st2.Loading.Microseconds())/1000),
			ms(float64((st2.Partitioning+st2.Loading).Microseconds())/1000),
		)
	}
	return t, nil
}

// All runs every experiment in paper order.
func (s *Suite) All() ([]*Table, error) {
	type exp func() (*Table, error)
	var out []*Table
	for _, e := range []exp{s.Fig8a, s.Fig8b, s.Fig9, s.Fig10, s.Fig11, s.Fig12, s.Table1, s.Table2, s.ServerThroughput} {
		t, err := e()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rdffrag/internal/exec"
	"rdffrag/internal/serve"
	"rdffrag/internal/sparql"
)

// ServerThroughput is the multi-client serving experiment: it drives the
// concurrent query server (internal/serve) over VF and HF deployments of
// the DBpedia-like corpus with an increasing number of clients, reporting
// sustained QPS, tail latency and plan-cache hit rate. This extends the
// paper's throughput comparison (Figure 9) from "replay the log N-wide
// against a single-query engine" to a real serving stack with admission
// control and a streaming join pipeline.
func (s *Suite) ServerThroughput() (*Table, error) {
	ds, err := s.DBpedia()
	if err != nil {
		return nil, err
	}
	sample := Sample(ds.Log, s.Cfg.SampleFraction)

	t := &Table{
		ID:     "serve",
		Title:  "concurrent query server: clients vs QPS and tail latency (DBpedia-like)",
		Header: []string{"strategy", "clients", "QPS", "p50", "p95", "p99", "cache"},
	}
	maxClients := s.Cfg.Clients
	if maxClients < 4 {
		maxClients = 4
	}
	for _, strategy := range []string{"VF", "HF"} {
		runner, _, err := s.BuildStrategy(ds, strategy)
		if err != nil {
			return nil, err
		}
		vr, ok := runner.(*vfhfRunner)
		if !ok {
			return nil, fmt.Errorf("bench: %s runner does not expose an engine", strategy)
		}
		for clients := 1; clients <= maxClients; clients *= 2 {
			qps, m, err := serveRun(vr.engine, sample, clients)
			if err != nil {
				return nil, err
			}
			t.AddRow(strategy, fmt.Sprintf("%d", clients),
				fmt.Sprintf("%.0f", qps),
				m.P50.Round(10*time.Microsecond).String(),
				m.P95.Round(10*time.Microsecond).String(),
				m.P99.Round(10*time.Microsecond).String(),
				fmt.Sprintf("%.0f%%", 100*m.CacheHitRate))
		}
	}
	t.Notes = "QPS should rise with clients until site worker pools saturate; p95/p99 grow with queueing"
	return t, nil
}

// serveRun replays the sample with the given client count through a
// fresh server and returns overall QPS plus the server's metrics.
func serveRun(engine *exec.Engine, sample []*sparql.Graph, clients int) (float64, serve.Metrics, error) {
	srv := serve.New(engine, serve.Config{
		Workers:     clients,
		QueueDepth:  4*clients + len(sample),
		Timeout:     time.Minute,
		Parallelism: engine.Parallelism,
	})
	defer srv.Close()

	const reps = 3
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				for i := range sample {
					q := sample[(i+c)%len(sample)]
					if _, err := srv.Query(context.Background(), q); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("client %d: %w", c, err)
						}
						mu.Unlock()
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, serve.Metrics{}, firstErr
	}
	sec := time.Since(t0).Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	return float64(clients*reps*len(sample)) / sec, srv.Metrics(), nil
}

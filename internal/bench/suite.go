package bench

import (
	"fmt"
	"time"

	"rdffrag/internal/allocation"
	"rdffrag/internal/baseline"
	"rdffrag/internal/cluster"
	"rdffrag/internal/dict"
	"rdffrag/internal/exec"
	"rdffrag/internal/fap"
	"rdffrag/internal/fragment"
	"rdffrag/internal/match"
	"rdffrag/internal/mining"
	"rdffrag/internal/rdf"
	"rdffrag/internal/sparql"
	"rdffrag/internal/watdiv"
	"rdffrag/internal/workload"
)

// Config sizes the experiments. The paper's DBpedia has 163M triples and
// 8.15M queries; WatDiv runs 50M–250M. Defaults here shrink both by ~10⁴
// while preserving the relative shapes (DESIGN.md §3).
type Config struct {
	DBpediaTriples int // default 12000
	DBpediaQueries int // default 1500
	WatDivTriples  int // default 10000
	WatDivQueries  int // default 600
	Sites          int // default 10, matching the paper's cluster
	Workers        int // default 4, the paper's cores per machine
	Clients        int // concurrent clients for throughput, default 8
	// Parallelism is the intra-query worker budget handed to each
	// engine (fragment fan-out × matcher morsel workers). 0 means
	// GOMAXPROCS; 1 forces sequential matching for apples-to-apples
	// comparisons against single-core figures.
	Parallelism int
	// JoinPartitions overrides the per-stage partition count of the
	// control-site join pipeline (0 = derived from the parallelism
	// budget; 1 forces the sequential symmetric join).
	JoinPartitions int
	SampleFraction float64
	Seed           uint64
	// StorageFactor sets SC as a multiple of the hot graph size for
	// VF/HF (default 1.5: enough for the highest-benefit multi-edge
	// patterns while keeping redundancy in the paper's 1.0–1.5 band).
	StorageFactor float64
	// NetPerMessage and NetPerKB simulate LAN transfer costs per
	// request/response; communication cost is what the paper's
	// strategies compete on. Defaults: 250µs per message, 50µs per KB.
	// Set negative to disable.
	NetPerMessage time.Duration
	NetPerKB      time.Duration
}

func (c Config) withDefaults() Config {
	if c.DBpediaTriples == 0 {
		c.DBpediaTriples = 12000
	}
	if c.DBpediaQueries == 0 {
		c.DBpediaQueries = 1500
	}
	if c.WatDivTriples == 0 {
		c.WatDivTriples = 10000
	}
	if c.WatDivQueries == 0 {
		c.WatDivQueries = 600
	}
	if c.Sites == 0 {
		c.Sites = 10
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.SampleFraction == 0 {
		c.SampleFraction = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 20160315 // EDBT 2016
	}
	if c.StorageFactor == 0 {
		c.StorageFactor = 1.5
	}
	if c.NetPerMessage == 0 {
		c.NetPerMessage = 250 * time.Microsecond
	} else if c.NetPerMessage < 0 {
		c.NetPerMessage = 0
	}
	if c.NetPerKB == 0 {
		c.NetPerKB = 50 * time.Microsecond
	} else if c.NetPerKB < 0 {
		c.NetPerKB = 0
	}
	return c
}

func (c Config) delay() cluster.Delay {
	return cluster.Delay{PerMessage: c.NetPerMessage, PerKB: c.NetPerKB}
}

// Dataset is one corpus plus its workload.
type Dataset struct {
	Name  string
	Graph *rdf.Graph
	Log   []*sparql.Graph
	// WatDiv keeps the generator handle for template instantiation.
	WatDiv *watdiv.Dataset
}

// Suite caches datasets and deployments across experiments.
type Suite struct {
	Cfg Config

	dbp *Dataset
	wat *Dataset
}

// NewSuite prepares a suite (datasets are built lazily).
func NewSuite(cfg Config) *Suite {
	return &Suite{Cfg: cfg.withDefaults()}
}

// DBpedia returns the synthetic DBpedia-like corpus.
func (s *Suite) DBpedia() (*Dataset, error) {
	if s.dbp != nil {
		return s.dbp, nil
	}
	db, err := workload.GenerateDBpedia(workload.DBpediaOptions{
		Triples: s.Cfg.DBpediaTriples,
		Queries: s.Cfg.DBpediaQueries,
		Seed:    s.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	db.Graph.Freeze()
	s.dbp = &Dataset{Name: "DBpedia", Graph: db.Graph, Log: db.Log}
	return s.dbp, nil
}

// WatDiv returns the WatDiv-like corpus at the configured default size.
func (s *Suite) WatDiv() (*Dataset, error) {
	if s.wat != nil {
		return s.wat, nil
	}
	ds, err := s.watDivAt(s.Cfg.WatDivTriples)
	if err != nil {
		return nil, err
	}
	s.wat = ds
	return s.wat, nil
}

// watDivAt builds a WatDiv corpus of the given size (no caching).
func (s *Suite) watDivAt(triples int) (*Dataset, error) {
	wd := watdiv.Generate(watdiv.Options{Triples: triples, Seed: s.Cfg.Seed})
	log, err := wd.GenerateWorkload(s.Cfg.WatDivQueries, s.Cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	wd.Graph.Freeze()
	return &Dataset{Name: "WatDiv", Graph: wd.Graph, Log: log, WatDiv: wd}, nil
}

// Runner abstracts a deployed strategy for the online experiments.
type Runner interface {
	Name() string
	Run(q *sparql.Graph) (rows int, err error)
}

// BuildStats captures the offline costs (Table 2) and redundancy (Table 1).
type BuildStats struct {
	Strategy     string
	Partitioning time.Duration // fragment/partition computation
	Loading      time.Duration // materializing site graphs + dictionary
	Redundancy   float64
}

// StrategyName enumerates the four compared systems.
var StrategyNames = []string{"SHAPE", "WARP", "VF", "HF"}

type vfhfRunner struct {
	name   string
	engine *exec.Engine
}

func (r *vfhfRunner) Name() string { return r.name }

func (r *vfhfRunner) Run(q *sparql.Graph) (int, error) {
	b, _, err := r.engine.Query(q)
	if err != nil {
		return 0, err
	}
	return len(b.Rows), nil
}

type baselineRunner struct {
	name   string
	engine *baseline.Engine
}

func (r *baselineRunner) Name() string { return r.name }

func (r *baselineRunner) Run(q *sparql.Graph) (int, error) {
	b, _, err := r.engine.Query(q)
	if err != nil {
		return 0, err
	}
	return len(b.Rows), nil
}

// BuildStrategy deploys one strategy over a dataset, reporting offline
// stats. Strategy must be one of StrategyNames.
func (s *Suite) BuildStrategy(ds *Dataset, strategy string) (Runner, *BuildStats, error) {
	cfg := s.Cfg
	stats := &BuildStats{Strategy: strategy}
	switch strategy {
	case "SHAPE":
		t0 := time.Now()
		p := baseline.BuildSHAPE(ds.Graph, cfg.Sites)
		stats.Partitioning = time.Since(t0)
		t1 := time.Now()
		c := cluster.New(cfg.Sites, cfg.Workers)
		c.Latency = cfg.delay()
		eng, err := baseline.NewEngine(c, p, nil, ds.Graph)
		if err != nil {
			return nil, nil, err
		}
		stats.Loading = time.Since(t1)
		stats.Redundancy = p.Redundancy(ds.Graph)
		return &baselineRunner{name: strategy, engine: eng}, stats, nil

	case "WARP":
		minSup := minSupOf(len(ds.Log))
		pats := (&mining.Miner{MinSup: minSup}).Mine(ds.Log)
		t0 := time.Now()
		p := baseline.BuildWARP(ds.Graph, multiEdge(pats), cfg.Sites)
		stats.Partitioning = time.Since(t0)
		t1 := time.Now()
		c := cluster.New(cfg.Sites, cfg.Workers)
		c.Latency = cfg.delay()
		eng, err := baseline.NewEngine(c, p, multiEdge(pats), ds.Graph)
		if err != nil {
			return nil, nil, err
		}
		stats.Loading = time.Since(t1)
		stats.Redundancy = p.Redundancy(ds.Graph)
		return &baselineRunner{name: strategy, engine: eng}, stats, nil

	case "VF", "HF":
		minSup := minSupOf(len(ds.Log))
		t0 := time.Now()
		hc := fragment.SplitHotCold(ds.Graph, ds.Log, minSup)
		pats := (&mining.Miner{MinSup: minSup}).Mine(ds.Log)
		sel, err := (&fap.Selector{StorageCapacity: int(cfg.StorageFactor * float64(hc.Hot.NumTriples()))}).
			Select(pats, ds.Log, hc.Hot)
		if err != nil {
			return nil, nil, err
		}
		stats.Partitioning = time.Since(t0)
		t1 := time.Now()
		var fr *fragment.Fragmentation
		if strategy == "HF" {
			fr = fragment.Horizontal(sel, ds.Log, hc, fragment.HorizontalOptions{})
		} else {
			fr = fragment.Vertical(sel, hc)
		}
		alloc := allocation.Allocate(fr, ds.Log, cfg.Sites)
		dd := dict.Build(fr, alloc, nil)
		c := cluster.New(cfg.Sites, cfg.Workers)
		c.Latency = cfg.delay()
		eng, err := exec.New(c, dd, fr, alloc, hc)
		if err != nil {
			return nil, nil, err
		}
		eng.Parallelism = cfg.Parallelism
		eng.JoinPartitions = cfg.JoinPartitions
		stats.Loading = time.Since(t1)
		stats.Redundancy = fr.Redundancy(ds.Graph)
		return &vfhfRunner{name: strategy, engine: eng}, stats, nil
	}
	return nil, nil, fmt.Errorf("bench: unknown strategy %q", strategy)
}

// minSupOf mirrors the paper's default: 0.1% of the workload, at least 2.
func minSupOf(workloadLen int) int {
	m := workloadLen / 1000
	if m < 2 {
		m = 2
	}
	return m
}

// multiEdge keeps the patterns WARP replicates (1-edge patterns add
// nothing beyond the base partition).
func multiEdge(pats []*mining.Pattern) []*mining.Pattern {
	var out []*mining.Pattern
	for _, p := range pats {
		if p.Size() > 1 {
			out = append(out, p)
		}
	}
	return out
}

// Sample picks every k-th query for a fraction of the workload.
func Sample(log []*sparql.Graph, fraction float64) []*sparql.Graph {
	if fraction >= 1 {
		return log
	}
	n := int(float64(len(log)) * fraction)
	if n < 30 {
		n = 30
	}
	if n > len(log) {
		n = len(log)
	}
	step := len(log) / n
	if step < 1 {
		step = 1
	}
	var out []*sparql.Graph
	for i := 0; i < len(log) && len(out) < n; i += step {
		out = append(out, log[i])
	}
	return out
}

// CentralAnswerSize answers q over the full graph with the same projection
// semantics as the distributed engines (distinct projected rows); used by
// tests and the validation mode of cmd/experiments.
func CentralAnswerSize(q *sparql.Graph, g *rdf.Graph) int {
	sn := g.Snapshot()
	defer sn.Close()
	ms := match.Find(q, sn, match.Options{})
	b := match.ToBindings(q, ms)
	if len(q.Select) > 0 {
		b = cluster.Project(b, q.Select)
	} else {
		b.Dedup()
	}
	return len(b.Rows)
}

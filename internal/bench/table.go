// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 8) on the synthetic DBpedia-
// like and WatDiv-like corpora. Each experiment returns a Table whose rows
// mirror what the paper reports; cmd/experiments prints them and
// EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string // e.g. "fig9", "table1"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func ms(x float64) string { return fmt.Sprintf("%.2fms", x) }

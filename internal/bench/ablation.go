package bench

import (
	"fmt"
	"time"

	"rdffrag/internal/allocation"
	"rdffrag/internal/cluster"
	"rdffrag/internal/dict"
	"rdffrag/internal/exec"
	"rdffrag/internal/fap"
	"rdffrag/internal/fragment"
	"rdffrag/internal/mining"
	"rdffrag/internal/sparql"
)

// Ablations isolate the design choices DESIGN.md §5 calls out: pattern
// selection (Algorithm 1), cost-model-driven decomposition (Algorithm 3)
// and affinity-based allocation (Algorithm 2). Each compares the paper's
// mechanism against a stripped variant on the DBpedia-like corpus.

// vfPipeline builds VF deployments with injectable selection/allocation/
// decomposition variants.
type vfPipeline struct {
	hc  *fragment.HotCold
	sel *fap.Selection
	fr  *fragment.Fragmentation
}

func (s *Suite) vfFor(ds *Dataset, storageMul float64, oneEdgeOnly bool) (*vfPipeline, error) {
	minSup := minSupOf(len(ds.Log))
	hc := fragment.SplitHotCold(ds.Graph, ds.Log, minSup)
	var pats []*mining.Pattern
	if !oneEdgeOnly {
		pats = (&mining.Miner{MinSup: minSup}).Mine(ds.Log)
	}
	sel, err := (&fap.Selector{
		StorageCapacity: int(storageMul * float64(hc.Hot.NumTriples())),
	}).Select(pats, ds.Log, hc.Hot)
	if err != nil {
		return nil, err
	}
	return &vfPipeline{hc: hc, sel: sel, fr: fragment.Vertical(sel, hc)}, nil
}

func (s *Suite) engineFor(p *vfPipeline, ds *Dataset, alloc *allocation.Allocation, naive bool) (*exec.Engine, error) {
	dd := dict.Build(p.fr, alloc, nil)
	c := cluster.New(s.Cfg.Sites, s.Cfg.Workers)
	c.Latency = s.Cfg.delay()
	eng, err := exec.New(c, dd, p.fr, alloc, p.hc)
	if err != nil {
		return nil, err
	}
	eng.Parallelism = s.Cfg.Parallelism
	eng.SetNaiveDecomposition(naive)
	return eng, nil
}

func avgLatency(eng *exec.Engine, qs []*sparql.Graph) (time.Duration, float64, error) {
	t0 := time.Now()
	totalSites := 0
	for _, q := range qs {
		_, st, err := eng.Query(q)
		if err != nil {
			return 0, 0, err
		}
		totalSites += st.SitesTouched
	}
	return time.Since(t0) / time.Duration(len(qs)), float64(totalSites) / float64(len(qs)), nil
}

// AblationSelection compares Algorithm 1 against one-edge-only selection
// and an effectively unbounded greedy ("select-all"), reporting the
// benefit/storage trade-off and query latency.
func (s *Suite) AblationSelection() (*Table, error) {
	ds, err := s.DBpedia()
	if err != nil {
		return nil, err
	}
	sample := Sample(ds.Log, s.Cfg.SampleFraction)
	t := &Table{
		ID:     "ablation-selection",
		Title:  "pattern selection: Algorithm 1 vs one-edge-only vs unbounded greedy",
		Header: []string{"variant", "patterns", "benefit", "stored edges", "redundancy", "avg latency"},
		Notes:  "Algorithm 1 should approach unbounded benefit at a fraction of the storage",
	}
	type variant struct {
		name       string
		storageMul float64
		oneEdge    bool
	}
	for _, v := range []variant{
		{"one-edge-only", 1.0, true},
		{"algorithm-1 (SC=1.5×)", 1.5, false},
		{"unbounded greedy", 100, false},
	} {
		p, err := s.vfFor(ds, v.storageMul, v.oneEdge)
		if err != nil {
			return nil, err
		}
		alloc := allocation.Allocate(p.fr, ds.Log, s.Cfg.Sites)
		eng, err := s.engineFor(p, ds, alloc, false)
		if err != nil {
			return nil, err
		}
		lat, _, err := avgLatency(eng, sample)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name,
			fmt.Sprintf("%d", len(p.sel.Patterns)),
			fmt.Sprintf("%d", p.sel.Benefit),
			fmt.Sprintf("%d", p.sel.TotalSize),
			f2(p.fr.Redundancy(ds.Graph)),
			ms(float64(lat.Microseconds())/1000),
		)
	}
	return t, nil
}

// AblationDecomposition compares Algorithm 3's cost-driven decomposition
// against the naive single-edge decomposition.
func (s *Suite) AblationDecomposition() (*Table, error) {
	ds, err := s.DBpedia()
	if err != nil {
		return nil, err
	}
	sample := Sample(ds.Log, s.Cfg.SampleFraction)
	t := &Table{
		ID:     "ablation-decomposition",
		Title:  "query decomposition: Algorithm 3 vs single-edge subqueries",
		Header: []string{"variant", "avg latency", "avg sites/query"},
		Notes:  "cost-driven decomposition needs fewer distributed joins",
	}
	p, err := s.vfFor(ds, 1.5, false)
	if err != nil {
		return nil, err
	}
	alloc := allocation.Allocate(p.fr, ds.Log, s.Cfg.Sites)
	for _, naive := range []bool{false, true} {
		eng, err := s.engineFor(p, ds, alloc, naive)
		if err != nil {
			return nil, err
		}
		lat, sites, err := avgLatency(eng, sample)
		if err != nil {
			return nil, err
		}
		name := "algorithm-3"
		if naive {
			name = "single-edge"
		}
		t.AddRow(name, ms(float64(lat.Microseconds())/1000), f2(sites))
	}
	return t, nil
}

// Validate cross-checks all four strategies against centralized ground
// truth on a sample of both workloads, reporting mismatch counts. It is
// the correctness gate behind every timing experiment.
func (s *Suite) Validate() (*Table, error) {
	t := &Table{
		ID:     "validate",
		Title:  "distributed vs centralized result counts",
		Header: []string{"dataset", "strategy", "queries", "mismatches"},
		Notes:  "every cell in the mismatches column must be 0",
	}
	for _, get := range []func() (*Dataset, error){s.DBpedia, s.WatDiv} {
		ds, err := get()
		if err != nil {
			return nil, err
		}
		sample := Sample(ds.Log, s.Cfg.SampleFraction*2)
		for _, name := range StrategyNames {
			r, _, err := s.BuildStrategy(ds, name)
			if err != nil {
				return nil, err
			}
			mismatches := 0
			for _, q := range sample {
				got, err := r.Run(q)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", name, ds.Name, err)
				}
				if got != CentralAnswerSize(q, ds.Graph) {
					mismatches++
				}
			}
			t.AddRow(ds.Name, name, fmt.Sprintf("%d", len(sample)), fmt.Sprintf("%d", mismatches))
		}
	}
	return t, nil
}

// AblationAllocation compares PNN affinity clustering against round-robin
// placement.
func (s *Suite) AblationAllocation() (*Table, error) {
	ds, err := s.DBpedia()
	if err != nil {
		return nil, err
	}
	sample := Sample(ds.Log, s.Cfg.SampleFraction)
	t := &Table{
		ID:     "ablation-allocation",
		Title:  "allocation: PNN affinity clustering (Algorithm 2) vs round-robin",
		Header: []string{"variant", "avg latency", "avg sites/query", "balance"},
		Notes:  "affinity clustering keeps co-accessed fragments on one site",
	}
	p, err := s.vfFor(ds, 1.5, false)
	if err != nil {
		return nil, err
	}
	for _, rr := range []bool{false, true} {
		var alloc *allocation.Allocation
		name := "pnn-affinity"
		if rr {
			alloc = allocation.RoundRobin(p.fr, s.Cfg.Sites)
			name = "round-robin"
		} else {
			alloc = allocation.Allocate(p.fr, ds.Log, s.Cfg.Sites)
		}
		eng, err := s.engineFor(p, ds, alloc, false)
		if err != nil {
			return nil, err
		}
		lat, sites, err := avgLatency(eng, sample)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, ms(float64(lat.Microseconds())/1000), f2(sites), f2(alloc.Balance()))
	}
	return t, nil
}

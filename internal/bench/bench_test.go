package bench

import (
	"fmt"
	"strings"
	"testing"

	"rdffrag/internal/sparql"
)

// smallCfg keeps unit-test runtime low; the cmd/experiments binary and the
// root benchmarks use the full defaults.
func smallCfg() Config {
	return Config{
		DBpediaTriples: 3000,
		DBpediaQueries: 400,
		WatDivTriples:  2500,
		WatDivQueries:  200,
		Sites:          4,
		Workers:        2,
		Clients:        4,
		SampleFraction: 0.05,
		Seed:           77,
	}
}

func TestFig8a(t *testing.T) {
	s := NewSuite(smallCfg())
	tab, err := s.Fig8a()
	if err != nil {
		t.Fatalf("Fig8a: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// FAP count must be non-increasing with minSup.
	prev := 1 << 30
	for _, row := range tab.Rows {
		var n int
		if _, err := fscan(row[1], &n); err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if n > prev {
			t.Errorf("FAP count rose with minSup: %v", tab.Rows)
		}
		prev = n
	}
}

func TestFig8b(t *testing.T) {
	s := NewSuite(smallCfg())
	tab, err := s.Fig8b()
	if err != nil {
		t.Fatalf("Fig8b: %v", err)
	}
	// Coverage must be non-decreasing and end high.
	last := tab.Rows[len(tab.Rows)-1][1]
	if !strings.HasSuffix(last, "%") {
		t.Fatalf("bad coverage cell %q", last)
	}
	var cov float64
	if _, err := fscan(strings.TrimSuffix(last, "%"), &cov); err != nil {
		t.Fatalf("parse %q: %v", last, err)
	}
	if cov < 90 {
		t.Errorf("final coverage %.1f%% < 90%%", cov)
	}
}

func TestBuildStrategyAllCorrect(t *testing.T) {
	s := NewSuite(smallCfg())
	ds, err := s.DBpedia()
	if err != nil {
		t.Fatalf("DBpedia: %v", err)
	}
	sample := Sample(ds.Log, 0.03)
	// Every strategy must agree with centralized evaluation on result
	// counts for a sample of the log.
	for _, name := range StrategyNames {
		r, st, err := s.BuildStrategy(ds, name)
		if err != nil {
			t.Fatalf("BuildStrategy(%s): %v", name, err)
		}
		if st.Redundancy < 1.0 {
			t.Errorf("%s redundancy %f < 1", name, st.Redundancy)
		}
		for qi, q := range sample {
			got, err := r.Run(q)
			if err != nil {
				t.Fatalf("%s query %d: %v", name, qi, err)
			}
			want := distinctProjected(q, ds)
			if got != want {
				t.Errorf("%s query %d: got %d rows, want %d", name, qi, got, want)
			}
		}
	}
}

// distinctProjected computes the centralized answer size under the same
// projection semantics as the engines (distinct projected rows).
func distinctProjected(q *sparql.Graph, ds *Dataset) int {
	return CentralAnswerSize(q, ds.Graph)
}

func TestFig12QueriesCorrectAllStrategies(t *testing.T) {
	s := NewSuite(smallCfg())
	ds, err := s.WatDiv()
	if err != nil {
		t.Fatalf("WatDiv: %v", err)
	}
	qs, names, err := ds.WatDiv.BenchmarkQueries(99)
	if err != nil {
		t.Fatalf("BenchmarkQueries: %v", err)
	}
	for _, name := range StrategyNames {
		r, _, err := s.BuildStrategy(ds, name)
		if err != nil {
			t.Fatalf("BuildStrategy(%s): %v", name, err)
		}
		for i, q := range qs {
			got, err := r.Run(q)
			if err != nil {
				t.Fatalf("%s %s: %v", name, names[i], err)
			}
			want := CentralAnswerSize(q, ds.Graph)
			if got != want {
				t.Errorf("%s %s: got %d rows, want %d", name, names[i], got, want)
			}
		}
	}
}

func TestSample(t *testing.T) {
	s := NewSuite(smallCfg())
	ds, err := s.DBpedia()
	if err != nil {
		t.Fatalf("DBpedia: %v", err)
	}
	sm := Sample(ds.Log, 0.01)
	if len(sm) < 10 || len(sm) > len(ds.Log) {
		t.Errorf("sample size = %d", len(sm))
	}
	all := Sample(ds.Log, 1.0)
	if len(all) != len(ds.Log) {
		t.Errorf("full sample = %d, want %d", len(all), len(ds.Log))
	}
}

func TestTable1Shapes(t *testing.T) {
	s := NewSuite(smallCfg())
	tab, err := s.Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	red := map[string]float64{}
	for _, row := range tab.Rows {
		var v float64
		if _, err := fscan(row[1], &v); err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		red[row[0]] = v
	}
	// Shape check on the DBpedia-like corpus: SHAPE is the most
	// redundant; WARP is near 1 on sparse graphs.
	if red["SHAPE"] <= red["WARP"] {
		t.Errorf("SHAPE (%.2f) should exceed WARP (%.2f)", red["SHAPE"], red["WARP"])
	}
	if red["VF"] > 3 || red["HF"] > 3 {
		t.Errorf("VF/HF redundancy implausible: %v", red)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1") {
		t.Errorf("render = %q", out)
	}
}

func fscan(s string, dst interface{}) (int, error) {
	return fmt.Sscan(s, dst)
}

func TestServerThroughputShapes(t *testing.T) {
	cfg := smallCfg()
	cfg.NetPerMessage = -1 // idealized network keeps this test fast
	cfg.NetPerKB = -1
	s := NewSuite(cfg)
	tab, err := s.ServerThroughput()
	if err != nil {
		t.Fatalf("ServerThroughput: %v", err)
	}
	// VF and HF each swept over 1..Clients doubling: 3 rows apiece at
	// Clients=4.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var qps float64
		if _, err := fscan(row[2], &qps); err != nil || qps <= 0 {
			t.Errorf("row %v: bad QPS cell", row)
		}
		if !strings.HasSuffix(row[4], "s") { // p95 is a duration
			t.Errorf("row %v: bad p95 cell", row)
		}
	}
}

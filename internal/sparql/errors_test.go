package sparql

import (
	"errors"
	"strings"
	"testing"

	"rdffrag/internal/rdf"
)

// Every way the parser can fail — lexer errors, structural errors,
// unsupported features — must classify as ErrParse so callers can route
// on errors.Is instead of matching message text.
func TestParseErrorsWrapSentinel(t *testing.T) {
	d := rdf.NewDict()
	bad := []string{
		"garbage",
		"SELECT ?x WHERE { ?x <urn:p> }",
		"SELECT ?x WHERE { ?x <urn:p",
		"SELECT ?x WHERE { OPTIONAL { ?x <urn:p> ?y } }",
		"SELECT ?x WHERE { ?x <urn:p> ?y } LIMIT -1",
		"SELECT ?x WHERE { ?x foo:bar ?y }",
	}
	for _, q := range bad {
		_, err := NewParser(d).Parse(q)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
			continue
		}
		if !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) error %v does not wrap ErrParse", q, err)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error %v is not a *ParseError", q, err)
		}
		if !strings.HasPrefix(err.Error(), "sparql: ") {
			t.Errorf("Parse(%q) error %q lost its message prefix", q, err)
		}
	}

	ok := "SELECT ?x WHERE { ?x <urn:p> ?y }"
	if _, err := NewParser(d).Parse(ok); err != nil {
		t.Fatalf("Parse(%q): %v", ok, err)
	}
}

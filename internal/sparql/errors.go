package sparql

import (
	"errors"
	"fmt"
)

// ErrParse is the sentinel every query-parse failure wraps: callers
// classify malformed queries with errors.Is(err, sparql.ErrParse)
// instead of matching the message text, so error routing (e.g. HTTP
// 400 vs 500) survives message rewording.
var ErrParse = errors.New("sparql: parse error")

// ParseError is a malformed-query error with its position-bearing
// message; it unwraps to ErrParse.
type ParseError struct {
	msg string
}

func (e *ParseError) Error() string { return "sparql: " + e.msg }

// Unwrap ties every ParseError to the ErrParse sentinel.
func (e *ParseError) Unwrap() error { return ErrParse }

// parseErrf builds a ParseError; the "sparql: " prefix is added by
// Error, not the format string.
func parseErrf(format string, args ...any) error {
	return &ParseError{msg: fmt.Sprintf(format, args...)}
}

// Package sparql implements the SPARQL subset used by the paper: basic
// graph patterns parsed into query graphs (Definition 2). The same Graph
// type doubles as the representation of frequent access patterns, so the
// miner, selector, fragmenter and decomposer all share it.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"rdffrag/internal/rdf"
)

// Vertex is a query-graph vertex: either a variable (Var != "") or a
// constant term identified by its dictionary ID.
type Vertex struct {
	Var  string
	Term rdf.ID
}

// IsVar reports whether the vertex is a variable.
func (v Vertex) IsVar() bool { return v.Var != "" }

// Edge is a directed labelled query edge between vertex indices. The label
// is either a constant property (PredVar == "") or a variable.
type Edge struct {
	From, To int
	Pred     rdf.ID
	PredVar  string
}

// IsPredVar reports whether the edge label is a variable.
func (e Edge) IsPredVar() bool { return e.PredVar != "" }

// Graph is a SPARQL query graph / access pattern.
type Graph struct {
	Verts []Vertex
	Edges []Edge

	// Select lists projected variable names; empty means SELECT *.
	Select []string
	// Limit caps the number of result rows; 0 means unlimited.
	Limit int
	// OrderBy lists result ordering keys, applied before Limit.
	OrderBy []OrderKey

	vertIdx map[string]int // vertex key -> index
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Var  string
	Desc bool
}

// NewGraph returns an empty query graph.
func NewGraph() *Graph {
	return &Graph{vertIdx: make(map[string]int)}
}

func vertKey(v Vertex) string {
	if v.IsVar() {
		return "?" + v.Var
	}
	return fmt.Sprintf("#%d", v.Term)
}

// AddVertex interns a vertex, returning its index. Vertices with the same
// variable name or the same constant ID share an index.
func (g *Graph) AddVertex(v Vertex) int {
	if g.vertIdx == nil {
		g.vertIdx = make(map[string]int)
		for i, u := range g.Verts {
			g.vertIdx[vertKey(u)] = i
		}
	}
	k := vertKey(v)
	if i, ok := g.vertIdx[k]; ok {
		return i
	}
	i := len(g.Verts)
	g.Verts = append(g.Verts, v)
	g.vertIdx[k] = i
	return i
}

// AddEdge appends a directed labelled edge between existing vertex indices.
func (g *Graph) AddEdge(e Edge) {
	g.Edges = append(g.Edges, e)
}

// AddTriplePattern is a convenience that interns both endpoints and adds
// the edge.
func (g *Graph) AddTriplePattern(s Vertex, p Edge, o Vertex) {
	from := g.AddVertex(s)
	to := g.AddVertex(o)
	p.From, p.To = from, to
	g.AddEdge(p)
}

// NumEdges returns |E(Q)|.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// NumVerts returns |V(Q)|.
func (g *Graph) NumVerts() int { return len(g.Verts) }

// Vars returns the sorted distinct variable names appearing in vertices
// and edge labels.
func (g *Graph) Vars() []string {
	set := make(map[string]struct{})
	for _, v := range g.Verts {
		if v.IsVar() {
			set[v.Var] = struct{}{}
		}
	}
	for _, e := range g.Edges {
		if e.IsPredVar() {
			set[e.PredVar] = struct{}{}
		}
	}
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// Predicates returns the distinct constant properties used by edges.
func (g *Graph) Predicates() []rdf.ID {
	set := make(map[rdf.ID]struct{})
	for _, e := range g.Edges {
		if !e.IsPredVar() {
			set[e.Pred] = struct{}{}
		}
	}
	ps := make([]rdf.ID, 0, len(set))
	for p := range set {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// EdgeSubgraph returns the query graph induced by the given edge indices.
// Vertex identity (variable names, constants) is preserved; isolated
// vertices are dropped.
func (g *Graph) EdgeSubgraph(edgeIdx []int) *Graph {
	sub := NewGraph()
	for _, ei := range edgeIdx {
		e := g.Edges[ei]
		sub.AddTriplePattern(g.Verts[e.From], Edge{Pred: e.Pred, PredVar: e.PredVar}, g.Verts[e.To])
	}
	return sub
}

// Connected reports whether the query graph is connected, treating edges
// as undirected. The empty graph counts as connected.
func (g *Graph) Connected() bool {
	if len(g.Verts) <= 1 {
		return true
	}
	adj := make([][]int, len(g.Verts))
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, len(g.Verts))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == len(g.Verts)
}

// ConnectedComponents splits the edge set into connected components and
// returns the edge-index groups.
func (g *Graph) ConnectedComponents() [][]int {
	parent := make([]int, len(g.Verts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range g.Edges {
		union(e.From, e.To)
	}
	groups := make(map[int][]int)
	for i, e := range g.Edges {
		r := find(e.From)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// String renders the graph as a basic graph pattern using raw IDs for
// constants; see StringWithDict for decoded output.
func (g *Graph) String() string {
	var b strings.Builder
	for i, e := range g.Edges {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(g.vertString(e.From))
		b.WriteByte(' ')
		if e.IsPredVar() {
			b.WriteString("?" + e.PredVar)
		} else {
			fmt.Fprintf(&b, "#%d", e.Pred)
		}
		b.WriteByte(' ')
		b.WriteString(g.vertString(e.To))
	}
	return b.String()
}

// StringWithDict renders the graph with decoded constant terms.
func (g *Graph) StringWithDict(d *rdf.Dict) string {
	var b strings.Builder
	for i, e := range g.Edges {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(g.vertStringDict(e.From, d))
		b.WriteByte(' ')
		if e.IsPredVar() {
			b.WriteString("?" + e.PredVar)
		} else {
			b.WriteString(d.Decode(e.Pred).String())
		}
		b.WriteByte(' ')
		b.WriteString(g.vertStringDict(e.To, d))
	}
	return b.String()
}

func (g *Graph) vertString(i int) string {
	v := g.Verts[i]
	if v.IsVar() {
		return "?" + v.Var
	}
	return fmt.Sprintf("#%d", v.Term)
}

func (g *Graph) vertStringDict(i int, d *rdf.Dict) string {
	v := g.Verts[i]
	if v.IsVar() {
		return "?" + v.Var
	}
	return d.Decode(v.Term).String()
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.Verts = append([]Vertex(nil), g.Verts...)
	c.Edges = append([]Edge(nil), g.Edges...)
	c.Select = append([]string(nil), g.Select...)
	c.Limit = g.Limit
	c.OrderBy = append([]OrderKey(nil), g.OrderBy...)
	for i, v := range c.Verts {
		c.vertIdx[vertKey(v)] = i
	}
	return c
}

// Generalize returns a copy of the graph with every constant vertex
// replaced by a fresh variable (Section 4: workload normalization). Edge
// labels are kept: the paper removes constants at subjects and objects
// only.
func (g *Graph) Generalize() *Graph {
	c := NewGraph()
	names := make(map[int]string)
	fresh := 0
	vertOf := func(i int) Vertex {
		v := g.Verts[i]
		if v.IsVar() {
			return v
		}
		n, ok := names[i]
		if !ok {
			n = fmt.Sprintf("g%d", fresh)
			fresh++
			names[i] = n
		}
		return Vertex{Var: n}
	}
	for _, e := range g.Edges {
		c.AddTriplePattern(vertOf(e.From), Edge{Pred: e.Pred, PredVar: e.PredVar}, vertOf(e.To))
	}
	return c
}

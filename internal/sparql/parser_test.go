package sparql

import (
	"strings"
	"testing"

	"rdffrag/internal/rdf"
)

func TestParseBasicSelect(t *testing.T) {
	d := rdf.NewDict()
	q, err := NewParser(d).Parse(`
		SELECT ?x ?n WHERE {
			?x <http://ex/name> ?n .
			?x <http://ex/influencedBy> <http://ex/Aristotle> .
		}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", q.NumEdges())
	}
	if q.NumVerts() != 3 {
		t.Fatalf("verts = %d, want 3 (?x ?n Aristotle)", q.NumVerts())
	}
	if len(q.Select) != 2 || q.Select[0] != "x" || q.Select[1] != "n" {
		t.Errorf("Select = %v", q.Select)
	}
	// ?x must be shared between the two patterns.
	if q.Edges[0].From != q.Edges[1].From {
		t.Errorf("shared variable not merged: %+v", q.Edges)
	}
	// Constant object must be a non-var vertex.
	obj := q.Verts[q.Edges[1].To]
	if obj.IsVar() || d.Decode(obj.Term).Value != "http://ex/Aristotle" {
		t.Errorf("object vertex = %+v", obj)
	}
}

func TestParsePrefixes(t *testing.T) {
	d := rdf.NewDict()
	q, err := NewParser(d).Parse(`
		PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x ex:name "Aristotle" . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	e := q.Edges[0]
	if d.Decode(e.Pred).Value != "http://ex/name" {
		t.Errorf("pred = %v", d.Decode(e.Pred))
	}
	o := q.Verts[e.To]
	if o.IsVar() || d.Decode(o.Term) != rdf.NewLiteral("Aristotle") {
		t.Errorf("object = %+v", o)
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT ?x WHERE { ?x <p> ?a ; <q> ?b , ?c . }`)
	if q.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", q.NumEdges())
	}
	for _, e := range q.Edges[1:] {
		if e.From != q.Edges[0].From {
			t.Errorf("subject not shared across ';' list")
		}
	}
}

func TestParseFilterSkipped(t *testing.T) {
	d := rdf.NewDict()
	q, err := NewParser(d).Parse(`
		SELECT ?x WHERE {
			?x <p> ?y .
			FILTER(?y > 3 && (?y < 10))
			?y <q> ?z .
		}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (FILTER ignored)", q.NumEdges())
	}
}

func TestParseVariablePredicate(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT ?p WHERE { <a> ?p <b> . }`)
	if !q.Edges[0].IsPredVar() || q.Edges[0].PredVar != "p" {
		t.Errorf("edge = %+v", q.Edges[0])
	}
}

func TestParseAKeyword(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT ?x WHERE { ?x a <http://ex/Person> . }`)
	if !strings.Contains(d.Decode(q.Edges[0].Pred).Value, "rdf-syntax-ns#type") {
		t.Errorf("pred = %v", d.Decode(q.Edges[0].Pred))
	}
}

func TestParseTypedAndTaggedLiterals(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT ?x WHERE { ?x <p> "42"^^<http://www.w3.org/2001/XMLSchema#int> . ?x <q> "hi"@en . ?x <r> 7 . }`)
	if q.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", q.NumEdges())
	}
}

func TestParseErrors(t *testing.T) {
	d := rdf.NewDict()
	for _, bad := range []string{
		`SELECT ?x WHERE { ?x <p> ?y`,                // unterminated BGP
		`SELECT ?x WHERE { ?x <p ?y . }`,             // unterminated IRI
		`SELECT ?x WHERE { OPTIONAL { ?x <p> ?y } }`, // unsupported
		`ASK { ?x <p> ?y }`,                          // not SELECT
		`SELECT ?x WHERE { ?x ex:name ?y . }`,        // undeclared prefix
	} {
		if _, err := NewParser(d).Parse(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestGeneralize(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT ?x WHERE { ?x <name> "Aristotle" . ?x <mainInterest> <Ethics> . }`)
	g := q.Generalize()
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	for _, v := range g.Verts {
		if !v.IsVar() {
			t.Errorf("constant survived generalization: %+v", v)
		}
	}
	// Predicates must be preserved.
	if len(g.Predicates()) != 2 {
		t.Errorf("predicates = %v", g.Predicates())
	}
}

func TestConnectedComponents(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT * WHERE { ?x <p> ?y . ?a <q> ?b . ?y <r> ?z . }`)
	if q.Connected() {
		t.Error("graph with two components reported connected")
	}
	comps := q.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != 3 {
		t.Errorf("component edges sum = %d, want 3", total)
	}
}

func TestEdgeSubgraph(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . ?z <r> ?x . }`)
	sub := q.EdgeSubgraph([]int{0, 1})
	if sub.NumEdges() != 2 || sub.NumVerts() != 3 {
		t.Fatalf("sub = %d edges %d verts", sub.NumEdges(), sub.NumVerts())
	}
	if !sub.Connected() {
		t.Error("subgraph should be connected")
	}
}

package sparql

import (
	"testing"

	"rdffrag/internal/rdf"
)

func TestEmbedsSimple(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT * WHERE { ?x <name> ?n . ?x <country> ?c . ?x <postal> ?p . }`)
	pat := MustParse(d, `SELECT * WHERE { ?a <country> ?b . ?a <postal> ?z . }`)
	if !Embeds(pat, q) {
		t.Fatal("pattern should embed in query")
	}
	miss := MustParse(d, `SELECT * WHERE { ?a <country> ?b . ?a <missing> ?z . }`)
	if Embeds(miss, q) {
		t.Fatal("pattern with unused predicate embedded")
	}
}

func TestEmbedsDirection(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	rev := MustParse(d, `SELECT * WHERE { ?y <p> ?x . }`)
	// Same shape up to renaming: must embed.
	if !Embeds(rev, q) {
		t.Fatal("renamed pattern should embed")
	}
	// A 2-edge chain cannot embed into a single edge.
	chain := MustParse(d, `SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . }`)
	if Embeds(chain, q) {
		t.Fatal("chain embedded into single edge")
	}
}

func TestEmbedsConstants(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT * WHERE { ?x <influencedBy> <Aristotle> . ?x <name> ?n . }`)
	pat := MustParse(d, `SELECT * WHERE { ?a <influencedBy> <Aristotle> . }`)
	if !Embeds(pat, q) {
		t.Fatal("constant-anchored pattern should embed")
	}
	wrong := MustParse(d, `SELECT * WHERE { ?a <influencedBy> <Plato> . }`)
	if Embeds(wrong, q) {
		t.Fatal("pattern with different constant embedded")
	}
	// Pattern variable can bind to the constant vertex.
	gen := MustParse(d, `SELECT * WHERE { ?a <influencedBy> ?who . }`)
	if !Embeds(gen, q) {
		t.Fatal("generalized pattern should embed")
	}
}

func TestEmbedsVariablePredicate(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT * WHERE { ?x ?p <b> . }`)
	pat := MustParse(d, `SELECT * WHERE { ?x ?q ?y . }`)
	if !Embeds(pat, q) {
		t.Fatal("var-pred pattern should embed anywhere")
	}
	constPat := MustParse(d, `SELECT * WHERE { ?x <k> ?y . }`)
	if Embeds(constPat, q) {
		t.Fatal("const-pred pattern must not match var-pred query edge")
	}
}

func TestEmbedsInjectivity(t *testing.T) {
	d := rdf.NewDict()
	// Query has a single edge; a pattern needing two distinct edges with
	// the same label must not fold onto one query edge.
	q := MustParse(d, `SELECT * WHERE { ?x <p> ?y . }`)
	pat := MustParse(d, `SELECT * WHERE { ?a <p> ?b . ?c <p> ?d . }`)
	if Embeds(pat, q) {
		t.Fatal("edge-injectivity violated")
	}
}

func TestFindEmbeddingsCount(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT * WHERE { ?x <p> ?a . ?x <p> ?b . }`)
	pat := MustParse(d, `SELECT * WHERE { ?s <p> ?o . }`)
	embs := FindEmbeddings(pat, q, 0)
	if len(embs) != 2 {
		t.Fatalf("embeddings = %d, want 2", len(embs))
	}
	limited := FindEmbeddings(pat, q, 1)
	if len(limited) != 1 {
		t.Fatalf("limited embeddings = %d, want 1", len(limited))
	}
}

func TestCoveredEdgeSets(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT * WHERE { ?x <name> ?n . ?x <country> ?c . ?y <name> ?m . }`)
	pat := MustParse(d, `SELECT * WHERE { ?s <name> ?o . }`)
	sets := CoveredEdgeSets(pat, q)
	if len(sets) != 2 {
		t.Fatalf("edge sets = %v, want 2 singletons", sets)
	}
	two := MustParse(d, `SELECT * WHERE { ?s <name> ?o . ?s <country> ?c . }`)
	sets = CoveredEdgeSets(two, q)
	if len(sets) != 1 || len(sets[0]) != 2 {
		t.Fatalf("edge sets = %v, want one pair", sets)
	}
}

func TestEmbedsTriangleSelfLoopSafety(t *testing.T) {
	d := rdf.NewDict()
	tri := MustParse(d, `SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . ?c <p> ?a . }`)
	if !Embeds(tri, tri) {
		t.Fatal("triangle should embed in itself")
	}
	chain := MustParse(d, `SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . }`)
	if !Embeds(chain, tri) {
		t.Fatal("chain should embed in triangle")
	}
	if Embeds(tri, chain) {
		t.Fatal("triangle embedded in chain")
	}
}

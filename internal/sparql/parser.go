package sparql

import (
	"fmt"
	"strings"

	"rdffrag/internal/rdf"
)

// Parser turns SPARQL SELECT queries into query graphs. FILTER clauses are
// skipped per the paper ("we ignore FILTER statements"); OPTIONAL, UNION
// and property paths are rejected.
type Parser struct {
	dict *rdf.Dict
}

// NewParser returns a parser interning constants into d.
func NewParser(d *rdf.Dict) *Parser { return &Parser{dict: d} }

// Parse parses one SELECT query.
func (p *Parser) Parse(query string) (*Graph, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	st := &parseState{toks: toks, dict: p.dict, prefixes: map[string]string{}}
	return st.parseQuery()
}

type tokKind uint8

const (
	tokEOF      tokKind = iota
	tokIRI              // <...>
	tokPrefixed         // foo:bar
	tokVar              // ?x or $x
	tokLiteral          // "..."
	tokKeyword          // SELECT WHERE PREFIX DISTINCT FILTER a ...
	tokPunct            // { } . ; , ( )
	tokNumber           // 42, 3.14
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '<':
			j := strings.IndexByte(src[i:], '>')
			if j < 0 {
				return nil, parseErrf("unterminated IRI at %d", i)
			}
			toks = append(toks, token{tokIRI, src[i+1 : i+j], i})
			i += j + 1
		case c == '?' || c == '$':
			j := i + 1
			for j < n && (isNameChar(src[j])) {
				j++
			}
			if j == i+1 {
				return nil, parseErrf("bare '%c' at %d", c, i)
			}
			toks = append(toks, token{tokVar, src[i+1 : j], i})
			i = j
		case c == '"':
			j := i + 1
			for j < n {
				if src[j] == '\\' {
					j += 2
					continue
				}
				if src[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				return nil, parseErrf("unterminated literal at %d", i)
			}
			lex := src[i+1 : j]
			j++
			// Skip language tag / datatype.
			if j < n && src[j] == '@' {
				for j < n && (isNameChar(src[j]) || src[j] == '@' || src[j] == '-') {
					j++
				}
			} else if j+1 < n && src[j] == '^' && src[j+1] == '^' {
				j += 2
				if j < n && src[j] == '<' {
					k := strings.IndexByte(src[j:], '>')
					if k < 0 {
						return nil, parseErrf("unterminated datatype at %d", j)
					}
					j += k + 1
				} else {
					for j < n && (isNameChar(src[j]) || src[j] == ':') {
						j++
					}
				}
			}
			toks = append(toks, token{tokLiteral, lex, i})
			i = j
		case strings.ContainsRune("{}.;,()*", rune(c)):
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			// A trailing '.' is the triple terminator, not part of the number.
			if j > i && src[j-1] == '.' {
				j--
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isNameStart(c):
			j := i
			for j < n && (isNameChar(src[j]) || src[j] == ':') {
				j++
			}
			word := src[i:j]
			if strings.EqualFold(word, "FILTER") {
				// FILTER expressions are ignored per the paper; skip the
				// balanced parenthesis group textually so operator
				// characters inside never reach the token stream.
				k := j
				for k < n && src[k] != '(' {
					if src[k] != ' ' && src[k] != '\t' && src[k] != '\n' && src[k] != '\r' {
						return nil, parseErrf("FILTER without '(' at %d", k)
					}
					k++
				}
				if k >= n {
					return nil, parseErrf("FILTER without '(' at %d", j)
				}
				depth := 0
				for ; k < n; k++ {
					if src[k] == '(' {
						depth++
					} else if src[k] == ')' {
						depth--
						if depth == 0 {
							k++
							break
						}
					}
				}
				if depth != 0 {
					return nil, parseErrf("unterminated FILTER at %d", i)
				}
				i = k
				continue
			}
			if strings.Contains(word, ":") {
				toks = append(toks, token{tokPrefixed, word, i})
			} else {
				toks = append(toks, token{tokKeyword, word, i})
			}
			i = j
		default:
			return nil, parseErrf("unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.'
}

type parseState struct {
	toks     []token
	pos      int
	dict     *rdf.Dict
	prefixes map[string]string
}

func (s *parseState) peek() token { return s.toks[s.pos] }

func (s *parseState) next() token {
	t := s.toks[s.pos]
	if t.kind != tokEOF {
		s.pos++
	}
	return t
}

func (s *parseState) expectKeyword(kw string) error {
	t := s.next()
	if t.kind != tokKeyword || !strings.EqualFold(t.text, kw) {
		return parseErrf("expected %q, got %q at %d", kw, t.text, t.pos)
	}
	return nil
}

func (s *parseState) expectPunct(p string) error {
	t := s.next()
	if t.kind != tokPunct || t.text != p {
		return parseErrf("expected %q, got %q at %d", p, t.text, t.pos)
	}
	return nil
}

func (s *parseState) parseQuery() (*Graph, error) {
	g := NewGraph()
	// Prologue: PREFIX declarations.
	for s.peek().kind == tokKeyword && strings.EqualFold(s.peek().text, "PREFIX") {
		s.next()
		name := s.next()
		if name.kind != tokPrefixed && !(name.kind == tokKeyword && name.text == ":") {
			// A bare "foo:" lexes as prefixed with empty local part.
			if name.kind != tokPrefixed {
				return nil, parseErrf("malformed PREFIX at %d", name.pos)
			}
		}
		iri := s.next()
		if iri.kind != tokIRI {
			return nil, parseErrf("PREFIX needs IRI at %d", iri.pos)
		}
		pfx := strings.TrimSuffix(name.text, ":")
		if idx := strings.IndexByte(name.text, ':'); idx >= 0 {
			pfx = name.text[:idx]
		}
		s.prefixes[pfx] = iri.text
	}
	if err := s.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Projection.
	for {
		t := s.peek()
		if t.kind == tokVar {
			s.next()
			g.Select = append(g.Select, t.text)
			continue
		}
		if t.kind == tokKeyword && strings.EqualFold(t.text, "DISTINCT") {
			s.next()
			continue
		}
		if t.kind == tokPunct && t.text == "*" {
			s.next()
			continue
		}
		break
	}
	if s.peek().kind == tokKeyword && strings.EqualFold(s.peek().text, "WHERE") {
		s.next()
	}
	if err := s.expectPunct("{"); err != nil {
		return nil, err
	}
	if err := s.parseBGP(g); err != nil {
		return nil, err
	}
	// Solution modifiers: ORDER BY then LIMIT.
	if t := s.peek(); t.kind == tokKeyword && strings.EqualFold(t.text, "ORDER") {
		s.next()
		if err := s.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := s.peek()
			switch {
			case t.kind == tokVar:
				s.next()
				g.OrderBy = append(g.OrderBy, OrderKey{Var: t.text})
			case t.kind == tokKeyword && (strings.EqualFold(t.text, "ASC") || strings.EqualFold(t.text, "DESC")):
				desc := strings.EqualFold(t.text, "DESC")
				s.next()
				if err := s.expectPunct("("); err != nil {
					return nil, err
				}
				v := s.next()
				if v.kind != tokVar {
					return nil, parseErrf("ORDER BY %s needs a variable at %d", t.text, v.pos)
				}
				if err := s.expectPunct(")"); err != nil {
					return nil, err
				}
				g.OrderBy = append(g.OrderBy, OrderKey{Var: v.text, Desc: desc})
			default:
				if len(g.OrderBy) == 0 {
					return nil, parseErrf("empty ORDER BY at %d", t.pos)
				}
				goto doneOrder
			}
		}
	doneOrder:
	}
	if t := s.peek(); t.kind == tokKeyword && strings.EqualFold(t.text, "LIMIT") {
		s.next()
		n := s.next()
		if n.kind != tokNumber {
			return nil, parseErrf("LIMIT needs a number at %d", n.pos)
		}
		var limit int
		if _, err := fmt.Sscan(n.text, &limit); err != nil || limit < 0 {
			return nil, parseErrf("bad LIMIT %q", n.text)
		}
		g.Limit = limit
	}
	if t := s.peek(); t.kind != tokEOF {
		return nil, parseErrf("unexpected trailing %q at %d", t.text, t.pos)
	}
	return g, nil
}

// parseBGP parses triple patterns until the closing brace, supporting
// ';' predicate-object lists and ',' object lists, skipping FILTER.
func (s *parseState) parseBGP(g *Graph) error {
	for {
		t := s.peek()
		switch {
		case t.kind == tokPunct && t.text == "}":
			s.next()
			return nil
		case t.kind == tokEOF:
			return parseErrf("unexpected end of query")
		case t.kind == tokKeyword && (strings.EqualFold(t.text, "OPTIONAL") || strings.EqualFold(t.text, "UNION") || strings.EqualFold(t.text, "GRAPH")):
			return parseErrf("%s is not supported", strings.ToUpper(t.text))
		case t.kind == tokPunct && t.text == ".":
			s.next()
		default:
			if err := s.parseTriples(g); err != nil {
				return err
			}
		}
	}
}

func (s *parseState) parseTriples(g *Graph) error {
	subj, err := s.parseVertex()
	if err != nil {
		return err
	}
	for {
		pred, err := s.parsePredicate()
		if err != nil {
			return err
		}
		for {
			obj, err := s.parseVertex()
			if err != nil {
				return err
			}
			g.AddTriplePattern(subj, pred, obj)
			if s.peek().kind == tokPunct && s.peek().text == "," {
				s.next()
				continue
			}
			break
		}
		if s.peek().kind == tokPunct && s.peek().text == ";" {
			s.next()
			// Allow trailing ';' before '.' or '}'.
			if s.peek().kind == tokPunct && (s.peek().text == "." || s.peek().text == "}") {
				break
			}
			continue
		}
		break
	}
	return nil
}

func (s *parseState) parseVertex() (Vertex, error) {
	t := s.next()
	switch t.kind {
	case tokVar:
		return Vertex{Var: t.text}, nil
	case tokIRI:
		return Vertex{Term: s.dict.MustIRI(t.text)}, nil
	case tokPrefixed:
		iri, err := s.expand(t)
		if err != nil {
			return Vertex{}, err
		}
		return Vertex{Term: s.dict.MustIRI(iri)}, nil
	case tokLiteral:
		return Vertex{Term: s.dict.MustLiteral(unescapeQueryLiteral(t.text))}, nil
	case tokNumber:
		return Vertex{Term: s.dict.MustLiteral(t.text)}, nil
	}
	return Vertex{}, parseErrf("expected term, got %q at %d", t.text, t.pos)
}

func (s *parseState) parsePredicate() (Edge, error) {
	t := s.next()
	switch t.kind {
	case tokVar:
		return Edge{PredVar: t.text}, nil
	case tokIRI:
		return Edge{Pred: s.dict.MustIRI(t.text)}, nil
	case tokPrefixed:
		iri, err := s.expand(t)
		if err != nil {
			return Edge{}, err
		}
		return Edge{Pred: s.dict.MustIRI(iri)}, nil
	case tokKeyword:
		if t.text == "a" {
			return Edge{Pred: s.dict.MustIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")}, nil
		}
	}
	return Edge{}, parseErrf("expected predicate, got %q at %d", t.text, t.pos)
}

func (s *parseState) expand(t token) (string, error) {
	idx := strings.IndexByte(t.text, ':')
	pfx, local := t.text[:idx], t.text[idx+1:]
	base, ok := s.prefixes[pfx]
	if !ok {
		return "", parseErrf("undeclared prefix %q at %d", pfx, t.pos)
	}
	return base + local, nil
}

func unescapeQueryLiteral(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// MustParse parses and panics on error; for tests and examples.
func MustParse(d *rdf.Dict, query string) *Graph {
	g, err := NewParser(d).Parse(query)
	if err != nil {
		panic(err)
	}
	return g
}

package sparql

import (
	"testing"

	"rdffrag/internal/rdf"
)

func TestParseLimit(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT ?x WHERE { ?x <p> ?y . } LIMIT 5`)
	if q.Limit != 5 {
		t.Errorf("Limit = %d, want 5", q.Limit)
	}
	q2 := MustParse(d, `SELECT ?x WHERE { ?x <p> ?y . }`)
	if q2.Limit != 0 {
		t.Errorf("default Limit = %d, want 0", q2.Limit)
	}
}

func TestParseLimitErrors(t *testing.T) {
	d := rdf.NewDict()
	for _, bad := range []string{
		`SELECT ?x WHERE { ?x <p> ?y . } LIMIT`,
		`SELECT ?x WHERE { ?x <p> ?y . } LIMIT ?x`,
		`SELECT ?x WHERE { ?x <p> ?y . } LIMIT 5 garbage`,
		`SELECT ?x WHERE { ?x <p> ?y . } GROUP BY ?x`,
	} {
		if _, err := NewParser(d).Parse(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestCloneKeepsLimit(t *testing.T) {
	d := rdf.NewDict()
	q := MustParse(d, `SELECT ?x WHERE { ?x <p> ?y . } LIMIT 3`)
	if got := q.Clone().Limit; got != 3 {
		t.Errorf("cloned Limit = %d", got)
	}
}

package sparql

import "sort"

// Embedding is one occurrence of a pattern inside a query graph: a
// vertex-injective mapping of pattern vertices to query vertices together
// with the distinct query edge indices covered, in pattern edge order.
type Embedding struct {
	VertexMap []int // pattern vertex index -> query vertex index
	EdgeMap   []int // pattern edge index -> query edge index
}

// Embeds reports whether pattern occurs as a subgraph of q (Definition 7's
// "pattern p is a subgraph of Q"). Matching is vertex- and edge-injective,
// preserves edge direction, requires constant vertices and constant edge
// labels to coincide, and lets pattern variables bind to any query vertex
// (variable or constant). A pattern variable predicate matches any query
// edge label.
func Embeds(pattern, q *Graph) bool {
	return len(FindEmbeddings(pattern, q, 1)) > 0
}

// FindEmbeddings enumerates embeddings of pattern in q, up to limit
// (limit <= 0 means all). Symmetric duplicates (same edge set, different
// automorphism) are all returned; callers that only care about covered
// edges can dedupe on EdgeMap.
func FindEmbeddings(pattern, q *Graph, limit int) []Embedding {
	if len(pattern.Edges) == 0 || len(pattern.Edges) > len(q.Edges) {
		return nil
	}
	order := connectedEdgeOrder(pattern)
	st := embedState{
		p:        pattern,
		q:        q,
		order:    order,
		vmap:     make([]int, len(pattern.Verts)),
		vused:    make(map[int]bool, len(pattern.Verts)),
		emap:     make([]int, len(pattern.Edges)),
		eused:    make([]bool, len(q.Edges)),
		limit:    limit,
		qOutAdj:  buildVertexEdgeIndex(q),
		unmapped: -1,
	}
	for i := range st.vmap {
		st.vmap[i] = st.unmapped
	}
	st.search(0)
	return st.found
}

type embedState struct {
	p, q     *Graph
	order    []int
	vmap     []int
	vused    map[int]bool
	emap     []int
	eused    []bool
	limit    int
	found    []Embedding
	qOutAdj  map[int][]int // query vertex -> incident edge indices
	unmapped int
}

func buildVertexEdgeIndex(q *Graph) map[int][]int {
	idx := make(map[int][]int)
	for i, e := range q.Edges {
		idx[e.From] = append(idx[e.From], i)
		if e.To != e.From {
			idx[e.To] = append(idx[e.To], i)
		}
	}
	return idx
}

// connectedEdgeOrder orders pattern edges so each edge after the first
// shares a vertex with an earlier edge when the pattern is connected,
// which keeps the candidate sets small.
func connectedEdgeOrder(p *Graph) []int {
	n := len(p.Edges)
	order := make([]int, 0, n)
	used := make([]bool, n)
	covered := make(map[int]bool)
	for len(order) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			e := p.Edges[i]
			if len(order) == 0 || covered[e.From] || covered[e.To] {
				pick = i
				break
			}
		}
		if pick == -1 { // disconnected pattern: start a new component
			for i := 0; i < n; i++ {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		order = append(order, pick)
		covered[p.Edges[pick].From] = true
		covered[p.Edges[pick].To] = true
	}
	return order
}

func (s *embedState) search(depth int) bool {
	if depth == len(s.order) {
		emb := Embedding{
			VertexMap: append([]int(nil), s.vmap...),
			EdgeMap:   append([]int(nil), s.emap...),
		}
		s.found = append(s.found, emb)
		return s.limit > 0 && len(s.found) >= s.limit
	}
	pe := s.p.Edges[s.order[depth]]
	for _, qi := range s.candidates(pe) {
		if s.eused[qi] {
			continue
		}
		qe := s.q.Edges[qi]
		if !s.edgeLabelOK(pe, qe) {
			continue
		}
		okFrom, undoFrom := s.tryBind(pe.From, qe.From)
		if !okFrom {
			continue
		}
		okTo, undoTo := s.tryBind(pe.To, qe.To)
		if !okTo {
			undoFrom()
			continue
		}
		s.eused[qi] = true
		s.emap[s.order[depth]] = qi
		if s.search(depth + 1) {
			return true
		}
		s.eused[qi] = false
		undoTo()
		undoFrom()
	}
	return false
}

// candidates returns the query edge indices worth trying for pattern edge
// pe, using already-bound endpoints to restrict the set.
func (s *embedState) candidates(pe Edge) []int {
	fromBound := s.vmap[pe.From] != s.unmapped
	toBound := s.vmap[pe.To] != s.unmapped
	switch {
	case fromBound:
		return s.qOutAdj[s.vmap[pe.From]]
	case toBound:
		return s.qOutAdj[s.vmap[pe.To]]
	default:
		all := make([]int, len(s.q.Edges))
		for i := range all {
			all[i] = i
		}
		return all
	}
}

func (s *embedState) edgeLabelOK(pe, qe Edge) bool {
	if pe.IsPredVar() {
		return true
	}
	return !qe.IsPredVar() && qe.Pred == pe.Pred
}

// tryBind attempts to map pattern vertex pv to query vertex qv, enforcing
// injectivity and constant compatibility. It returns success and an undo
// closure.
func (s *embedState) tryBind(pv, qv int) (bool, func()) {
	cur := s.vmap[pv]
	if cur != s.unmapped {
		if cur != qv {
			return false, nil
		}
		return true, func() {}
	}
	pvert := s.p.Verts[pv]
	qvert := s.q.Verts[qv]
	if !pvert.IsVar() {
		if qvert.IsVar() || qvert.Term != pvert.Term {
			return false, nil
		}
	}
	if s.vused[qv] {
		return false, nil
	}
	s.vmap[pv] = qv
	s.vused[qv] = true
	return true, func() {
		s.vmap[pv] = s.unmapped
		delete(s.vused, qv)
	}
}

// CoveredEdgeSets returns the distinct sorted query-edge index sets covered
// by embeddings of pattern in q. Decomposition uses these as candidate
// subqueries.
func CoveredEdgeSets(pattern, q *Graph) [][]int {
	embs := FindEmbeddings(pattern, q, 0)
	seen := make(map[string][]int)
	for _, e := range embs {
		es := append([]int(nil), e.EdgeMap...)
		sort.Ints(es)
		key := intsKey(es)
		if _, ok := seen[key]; !ok {
			seen[key] = es
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

func intsKey(xs []int) string {
	b := make([]byte, 0, len(xs)*3)
	for _, x := range xs {
		b = append(b, byte(x), byte(x>>8), byte(x>>16))
	}
	return string(b)
}

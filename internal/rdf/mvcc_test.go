package rdf

// Generation-lifecycle tests for the MVCC layer: a pinned snapshot must
// enumerate byte-identically to a CSR rebuilt from its own triple prefix
// while a concurrent writer appends and compacts underneath it, retired
// generations must be forgotten once their last pinned snapshot drains,
// and a published multi-graph view must never expose a torn update
// batch. All of these run under -race in CI.

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// rebuiltSnapshot replays the snapshot's visible triples into a fresh
// frozen graph — the ground-truth enumeration for the pinned epoch.
func rebuiltSnapshot(ts []Triple) *Snapshot {
	rb := NewGraph(nil)
	for _, tr := range ts {
		rb.Add(tr)
	}
	rb.Freeze()
	return rb.Snapshot()
}

// equalRun compares two runs element-wise, treating nil and empty as
// the same: an absent vertex yields a nil run while a present vertex
// with no edges yields an empty arena subslice, and the API contract is
// about the enumerated elements, not the nil-ness of a zero-length run.
func equalRun[T any](a, b []T) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// sameEnumeration compares the full read API of two snapshots:
// insertion order, vertex and predicate sets, per-vertex adjacency in
// both directions and per-predicate runs must be byte-identical.
func sameEnumeration(t *testing.T, got, want *Snapshot) bool {
	t.Helper()
	if got.NumTriples() != want.NumTriples() {
		t.Logf("NumTriples: got %d, want %d", got.NumTriples(), want.NumTriples())
		return false
	}
	if !equalRun(got.Triples(), want.Triples()) {
		t.Log("Triples() order diverged")
		return false
	}
	verts := want.Vertices()
	if !equalRun(got.Vertices(), verts) {
		t.Log("Vertices() diverged")
		return false
	}
	preds := want.Predicates()
	if !equalRun(got.Predicates(), preds) {
		t.Log("Predicates() diverged")
		return false
	}
	for _, v := range verts {
		if !equalRun(got.OutEdges(v), want.OutEdges(v)) {
			t.Logf("OutEdges(%d) diverged", v)
			return false
		}
		if !equalRun(got.InEdges(v), want.InEdges(v)) {
			t.Logf("InEdges(%d) diverged", v)
			return false
		}
	}
	for _, p := range preds {
		if !equalRun(got.ByPredicate(p), want.ByPredicate(p)) {
			t.Logf("ByPredicate(%d) diverged", p)
			return false
		}
	}
	return true
}

// TestSnapshotIsolationUnderConcurrentWriter pins a snapshot, then lets
// a writer append and compact through multiple generations while a
// reader repeatedly re-enumerates the pinned view. Every enumeration
// must be byte-identical to a CSR rebuilt from the pinned prefix — the
// "query results match a rebuilt-CSR oracle at the pinned epoch"
// acceptance property — and once the snapshot closes, the old
// generations it kept alive must be forgotten.
func TestSnapshotIsolationUnderConcurrentWriter(t *testing.T) {
	const nv, np = 40, 6
	g := graphOf(randomTriples(17, 300, nv, np))
	g.Freeze()
	g.SetAutoCompact(0.05) // compact early and often

	sn := g.Snapshot()
	oracle := rebuiltSnapshot(append([]Triple(nil), sn.Triples()...))
	pinnedGen := sn.Generation()

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: raw-ID adds so the shared Dict stays untouched
		defer wg.Done()
		defer done.Store(true)
		for _, tr := range randomTriples(99, 2000, nv, np) {
			g.Add(tr)
		}
	}()
	go func() { // reader: the pinned view must never move
		defer wg.Done()
		for !done.Load() {
			if !sameEnumeration(t, sn, oracle) {
				t.Error("pinned snapshot drifted from its rebuilt-CSR oracle")
				return
			}
		}
	}()
	wg.Wait()

	if t.Failed() {
		return
	}
	if g.Compactions() < 2 {
		t.Fatalf("writer triggered %d compactions, want >= 2 (tighten AutoCompact)", g.Compactions())
	}
	if cur := g.Snapshot(); cur.Generation() == pinnedGen {
		t.Error("generation never advanced despite compactions")
	} else {
		cur.Close()
	}
	// One last check after the dust settles, then drain the pin.
	if !sameEnumeration(t, sn, oracle) {
		t.Error("pinned snapshot drifted after writer finished")
	}
	if live := g.LiveGenerations(); live < 2 {
		t.Errorf("LiveGenerations = %d while an old-generation snapshot is pinned, want >= 2", live)
	}
	sn.Close()
	sn.Close() // idempotent
	if live := g.LiveGenerations(); live != 1 {
		t.Errorf("LiveGenerations = %d after the last snapshot closed, want 1", live)
	}
	if pinned := g.PinnedSnapshots(); pinned != 0 {
		t.Errorf("PinnedSnapshots = %d after close, want 0", pinned)
	}
}

// TestGenerationDrainSoak hammers the lifecycle: a writer streams 1k
// raw-ID updates through aggressive auto-compaction while reader
// goroutines continuously open short-lived snapshots, enumerate a
// little, and close them. When everything drains the graph must be back
// to exactly one live generation and zero pinned snapshots — no retired
// generation may leak past its last reader.
func TestGenerationDrainSoak(t *testing.T) {
	const nv, np = 30, 5
	g := graphOf(randomTriples(5, 200, nv, np))
	g.Freeze()
	g.SetAutoCompact(0.02)

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for _, tr := range randomTriples(7, 1000, nv, np) {
			g.Add(tr)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				sn := g.Snapshot()
				n := sn.NumTriples()
				if got := len(sn.Triples()); got != n {
					t.Errorf("reader %d: NumTriples %d != len(Triples) %d", r, n, got)
				}
				_ = sn.OutEdges(ID(i % nv))
				sn.Close()
			}
		}(r)
	}
	wg.Wait()

	if g.Compactions() < 2 {
		t.Fatalf("soak triggered %d compactions, want >= 2", g.Compactions())
	}
	// A final open/close forces a prune pass after the last racy close.
	last := g.Snapshot()
	last.Close()
	if live := g.LiveGenerations(); live != 1 {
		t.Errorf("LiveGenerations = %d after soak drained, want 1 (retired generations leaked)", live)
	}
	if pinned := g.PinnedSnapshots(); pinned != 0 {
		t.Errorf("PinnedSnapshots = %d after soak drained, want 0", pinned)
	}
}

// TestViewBatchAtomicity drives a ViewSource over two graphs the way
// serve drives the deployment: the writer applies a batch to both
// graphs, then Publishes; readers Acquire and must always observe the
// two graphs at the same batch boundary (never a torn batch), with each
// graph's snapshot byte-identical to its rebuilt-CSR oracle.
func TestViewBatchAtomicity(t *testing.T) {
	const nv, np = 20, 4
	g1 := graphOf(randomTriples(1, 100, nv, np))
	g2 := graphOf(randomTriples(2, 100, nv, np))
	g1.Freeze()
	g2.Freeze()
	g1.SetAutoCompact(0.05)
	g2.SetAutoCompact(0.05)
	base1, base2 := g1.NumTriples(), g2.NumTriples()

	vs := NewViewSource()
	vs.Register(g1)
	vs.Register(g2)

	// Each batch adds a brand-new (never duplicate) triple to each graph,
	// so visible-count difference is exactly the batch skew.
	const batches = 400
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < batches; i++ {
			p := ID(nv + i%np)
			g1.Add(Triple{S: ID(1000 + i), P: p, O: ID(i % nv)})
			g2.Add(Triple{S: ID(1000 + i), P: p, O: ID(i % nv)})
			vs.Publish()
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				h := vs.Acquire()
				s1, s2 := h.Snap(g1), h.Snap(g2)
				if d1, d2 := s1.NumTriples()-base1, s2.NumTriples()-base2; d1 != d2 {
					t.Errorf("reader %d: torn batch — view shows %d batches on g1 but %d on g2", r, d1, d2)
					h.Close()
					return
				}
				if i%32 == 0 { // full oracle check, occasionally (it rebuilds a CSR)
					or := rebuiltSnapshot(append([]Triple(nil), s1.Triples()...))
					if !sameEnumeration(t, s1, or) {
						t.Errorf("reader %d: view snapshot diverged from rebuilt-CSR oracle", r)
						h.Close()
						return
					}
				}
				h.Close()
			}
		}(r)
	}
	wg.Wait()

	if t.Failed() {
		return
	}
	if g1.Compactions() < 2 || g2.Compactions() < 2 {
		t.Fatalf("compactions = %d/%d, want >= 2 on both graphs", g1.Compactions(), g2.Compactions())
	}
	vs.Publish() // final cut; old views are unreferenced now
	h := vs.Acquire()
	if n := h.Snap(g1).NumTriples(); n != base1+batches {
		t.Errorf("final g1 view has %d triples, want %d", n, base1+batches)
	}
	h.Close()
	if gens := vs.Generations(); gens != 2 {
		t.Errorf("Generations = %d after drain, want 2 (one per graph)", gens)
	}
	if pinned := vs.PinnedSnapshots(); pinned != 0 {
		t.Errorf("PinnedSnapshots = %d after drain, want 0", pinned)
	}
}

package rdf

import (
	"strings"
	"testing"
)

func TestReadTurtleBasics(t *testing.T) {
	src := `
@prefix ex: <http://ex/> .
@prefix : <http://default/> .

ex:Aristotle ex:influencedBy ex:Plato .
ex:Aristotle a ex:Philosopher ;
    ex:name "Aristotle" ;
    ex:mainInterest ex:Ethics , ex:Logic .
:thing ex:rel _:b1 .
`
	g := NewGraph(nil)
	n, err := ReadTurtle(g, strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if n != 6 {
		t.Fatalf("parsed %d triples, want 6", n)
	}
	arist, ok := g.Dict.Lookup(NewIRI("http://ex/Aristotle"))
	if !ok {
		t.Fatal("prefixed subject not expanded")
	}
	sn := g.Snapshot()
	defer sn.Close()
	if len(sn.OutEdges(arist)) != 5 {
		t.Errorf("Aristotle out-degree = %d, want 5", len(sn.OutEdges(arist)))
	}
	// 'a' expands to rdf:type.
	typeID, ok := g.Dict.Lookup(NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
	if !ok || sn.PredicateCount(typeID) != 1 {
		t.Error("'a' keyword not handled")
	}
	// Default prefix ':'.
	if _, ok := g.Dict.Lookup(NewIRI("http://default/thing")); !ok {
		t.Error("default prefix not expanded")
	}
	// Blank node object.
	if _, ok := g.Dict.Lookup(NewBlank("b1")); !ok {
		t.Error("blank node lost")
	}
}

func TestReadTurtleLiterals(t *testing.T) {
	src := `
@prefix ex: <http://ex/> .
ex:a ex:name "plain" .
ex:a ex:label "tagged"@en .
ex:a ex:age "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
ex:a ex:rank 7 .
ex:a ex:score 3.14 .
ex:a ex:bio """a long
multi line""" .
ex:a ex:quote "he said \"hi\"" .
`
	g := NewGraph(nil)
	n, err := ReadTurtle(g, strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if n != 7 {
		t.Fatalf("parsed %d triples, want 7", n)
	}
	for _, want := range []string{"plain", "tagged", "42", "7", "3.14", "a long\nmulti line", `he said "hi"`} {
		if _, ok := g.Dict.Lookup(NewLiteral(want)); !ok {
			t.Errorf("literal %q not found", want)
		}
	}
}

func TestReadTurtleSparqlStylePrefix(t *testing.T) {
	src := `
PREFIX ex: <http://ex/>
ex:a ex:p ex:b .
`
	g := NewGraph(nil)
	if _, err := ReadTurtle(g, strings.NewReader(src)); err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if g.NumTriples() != 1 {
		t.Fatalf("triples = %d", g.NumTriples())
	}
}

func TestReadTurtleBase(t *testing.T) {
	src := `
@base <http://base/> .
@prefix ex: <http://ex/> .
<rel> ex:p <other> .
`
	g := NewGraph(nil)
	if _, err := ReadTurtle(g, strings.NewReader(src)); err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if _, ok := g.Dict.Lookup(NewIRI("http://base/rel")); !ok {
		t.Error("relative IRI not resolved against base")
	}
}

func TestReadTurtleComments(t *testing.T) {
	src := `
# leading comment
@prefix ex: <http://ex/> . # trailing
ex:a ex:p ex:b . # done
`
	g := NewGraph(nil)
	n, err := ReadTurtle(g, strings.NewReader(src))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestReadTurtleErrors(t *testing.T) {
	for _, bad := range []string{
		`@prefix ex <http://ex/> .`,           // missing ':'
		`@prefix ex: <http://ex/>`,            // missing '.'
		`ex:a ex:p ex:b .`,                    // undeclared prefix
		`<http://a> <http://p> "unterminated`, // literal
		`<http://a> <http://p> <http://b>`,    // missing '.'
		`<http://a> "lit" <http://b> .`,       // literal predicate
	} {
		g := NewGraph(nil)
		if _, err := ReadTurtle(g, strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestWriteTurtleRoundTrip(t *testing.T) {
	g := NewGraph(nil)
	g.AddTerms(NewIRI("http://ex/a"), NewIRI("http://ex/p"), NewIRI("http://ex/b"))
	g.AddTerms(NewIRI("http://ex/a"), NewIRI("http://ex/q"), NewLiteral("hello world"))
	g.AddTerms(NewIRI("http://ex/c"), NewIRI("http://ex/p"), NewBlank("n1"))
	var buf strings.Builder
	if err := WriteTurtle(g, &stringsWriter{&buf}); err != nil {
		t.Fatalf("WriteTurtle: %v", err)
	}
	g2 := NewGraph(nil)
	n, err := ReadTurtle(g2, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-read: %v\noutput:\n%s", err, buf.String())
	}
	if n != g.NumTriples() {
		t.Fatalf("round trip %d != %d\noutput:\n%s", n, g.NumTriples(), buf.String())
	}
	for _, tr := range g.Triples() {
		want := g.TripleString(tr)
		found := false
		for _, tr2 := range g2.Triples() {
			if g2.TripleString(tr2) == want {
				found = true
			}
		}
		if !found {
			t.Errorf("triple %s lost in round trip", want)
		}
	}
}

// stringsWriter adapts strings.Builder to io.Writer (Builder already
// implements it; kept for clarity at the call site).
type stringsWriter struct{ b *strings.Builder }

func (w *stringsWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

func TestReadTurtleEquivalentToNTriples(t *testing.T) {
	ttl := `
@prefix ex: <http://ex/> .
ex:a ex:p ex:b ; ex:q "v" .
`
	nt := `
<http://ex/a> <http://ex/p> <http://ex/b> .
<http://ex/a> <http://ex/q> "v" .
`
	g1 := NewGraph(nil)
	if _, err := ReadTurtle(g1, strings.NewReader(ttl)); err != nil {
		t.Fatal(err)
	}
	g2 := NewGraph(nil)
	if _, err := ReadNTriples(g2, strings.NewReader(nt)); err != nil {
		t.Fatal(err)
	}
	if g1.NumTriples() != g2.NumTriples() {
		t.Fatalf("triple counts differ: %d vs %d", g1.NumTriples(), g2.NumTriples())
	}
	for _, tr := range g1.Triples() {
		s := g1.TripleString(tr)
		found := false
		for _, tr2 := range g2.Triples() {
			if g2.TripleString(tr2) == s {
				found = true
			}
		}
		if !found {
			t.Errorf("triple %s missing from N-Triples parse", s)
		}
	}
}

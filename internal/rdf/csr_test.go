package rdf

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// randomTriples builds a reproducible random triple set over a small ID
// space: subjects/objects in [0,nv), predicates in [nv, nv+np).
func randomTriples(seed int64, n, nv, np int) []Triple {
	r := rand.New(rand.NewSource(seed))
	ts := make([]Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triple{
			S: ID(r.Intn(nv)),
			P: ID(nv + r.Intn(np)),
			O: ID(r.Intn(nv)),
		})
	}
	return ts
}

func graphOf(ts []Triple) *Graph {
	g := NewGraph(nil)
	for _, t := range ts {
		g.Add(t)
	}
	return g
}

func sortedEdges(hs []HalfEdge) []HalfEdge {
	out := append([]HalfEdge(nil), hs...)
	slices.SortFunc(out, func(a, b HalfEdge) int {
		if a.P != b.P {
			return int(a.P) - int(b.P)
		}
		return int(a.Other) - int(b.Other)
	})
	return out
}

// TestFreezeEquivalenceProperty: every snapshot accessor answers
// identically over a map-mode and a frozen graph holding the same
// triples (up to ordering, which Freeze is allowed to change to sorted).
func TestFreezeEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		ts := randomTriples(seed, 60, 8, 4)
		thawed := graphOf(ts)
		frozen := graphOf(ts)
		frozen.Freeze()
		if !frozen.Frozen() || thawed.Frozen() {
			return false
		}
		th := thawed.Snapshot()
		fz := frozen.Snapshot()
		defer th.Close()
		defer fz.Close()
		if th.NumTriples() != fz.NumTriples() {
			return false
		}
		if !slices.Equal(th.Vertices(), fz.Vertices()) {
			return false
		}
		if !slices.Equal(th.Predicates(), fz.Predicates()) {
			return false
		}
		for _, v := range th.Vertices() {
			if !slices.Equal(sortedEdges(th.OutEdges(v)), sortedEdges(fz.OutEdges(v))) {
				return false
			}
			if !slices.Equal(sortedEdges(th.InEdges(v)), sortedEdges(fz.InEdges(v))) {
				return false
			}
			if th.Degree(v) != fz.Degree(v) {
				return false
			}
			for _, p := range th.Predicates() {
				if th.OutDegreeP(v, p) != fz.OutDegreeP(v, p) {
					return false
				}
				if th.InDegreeP(v, p) != fz.InDegreeP(v, p) {
					return false
				}
			}
		}
		for _, p := range th.Predicates() {
			if th.PredicateCount(p) != fz.PredicateCount(p) {
				return false
			}
		}
		for _, tr := range ts {
			if !fz.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFrozenRunsSortedAndExact: frozen adjacency runs are sorted by
// (P, Other), and OutRun/InRun return exactly the predicate-filtered
// adjacency as a contiguous subslice.
func TestFrozenRunsSortedAndExact(t *testing.T) {
	ts := randomTriples(7, 120, 10, 5)
	g := graphOf(ts)
	g.Freeze()
	sn := g.Snapshot()
	defer sn.Close()
	for _, v := range sn.Vertices() {
		hs := sn.OutEdges(v)
		if !slices.Equal(hs, sortedEdges(hs)) {
			t.Fatalf("out adjacency of %d not sorted: %v", v, hs)
		}
		for _, p := range sn.Predicates() {
			run, exact := sn.OutRun(v, p)
			if !exact {
				t.Fatalf("OutRun on frozen graph not exact")
			}
			var want []HalfEdge
			for _, h := range hs {
				if h.P == p {
					want = append(want, h)
				}
			}
			if !slices.Equal(run, want) {
				t.Fatalf("OutRun(%d,%d) = %v, want %v", v, p, run, want)
			}
		}
		in := sn.InEdges(v)
		if !slices.Equal(in, sortedEdges(in)) {
			t.Fatalf("in adjacency of %d not sorted: %v", v, in)
		}
	}
	// The per-predicate arena partitions the triple set.
	total := 0
	for _, p := range sn.Predicates() {
		total += len(sn.ByPredicate(p))
	}
	if total != sn.NumTriples() {
		t.Fatalf("predicate arena covers %d of %d triples", total, sn.NumTriples())
	}
}

// TestDeltaOnAdd: adding to a frozen graph keeps it frozen — the triple
// lands in the delta overlay, snapshots taken afterwards see it
// immediately, and Freeze (or Compact) folds it into the CSR.
func TestDeltaOnAdd(t *testing.T) {
	ts := randomTriples(11, 40, 6, 3)
	g := graphOf(ts)
	g.Freeze()
	pre := g.Snapshot()
	nv := pre.NumVertices()
	pre.Close()
	if !g.Frozen() {
		t.Fatal("not frozen")
	}
	// A duplicate Add must not grow the delta.
	if g.Add(ts[0]) {
		t.Fatal("duplicate add reported new")
	}
	if !g.Frozen() || g.DeltaLen() != 0 {
		t.Fatalf("duplicate add mutated the graph (frozen=%v delta=%d)", g.Frozen(), g.DeltaLen())
	}
	extra := Triple{S: 100, P: 101, O: 102}
	if !g.Add(extra) {
		t.Fatal("add reported duplicate")
	}
	if !g.Frozen() {
		t.Fatal("mutating Add thawed the graph; it must stay frozen with a delta overlay")
	}
	if g.DeltaLen() != 1 {
		t.Fatalf("DeltaLen = %d, want 1", g.DeltaLen())
	}
	sn := g.Snapshot()
	if !sn.Has(extra) || sn.NumTriples() != len(sn.Triples()) {
		t.Fatal("triple lost in the delta")
	}
	if sn.NumVertices() != nv+2 {
		t.Fatalf("NumVertices = %d, want %d (delta vertices missing?)", sn.NumVertices(), nv+2)
	}
	// Overlaid reads serve the delta triple before any compaction.
	if got := sn.OutEdges(100); len(got) != 1 || got[0] != (HalfEdge{P: 101, Other: 102}) {
		t.Fatalf("OutEdges(100) = %v with delta", got)
	}
	if sn.OutDegreeP(100, 101) != 1 || sn.InDegreeP(102, 101) != 1 || sn.PredicateCount(101) != 1 {
		t.Fatal("degree/count accessors missed the delta triple")
	}
	sn.Close()
	g.Freeze() // on a delta-carrying graph this compacts
	if g.DeltaLen() != 0 || g.Compactions() == 0 {
		t.Fatalf("Freeze left delta=%d compactions=%d", g.DeltaLen(), g.Compactions())
	}
	post := g.Snapshot()
	defer post.Close()
	if got := post.OutEdges(100); len(got) != 1 || got[0] != (HalfEdge{P: 101, Other: 102}) {
		t.Fatalf("OutEdges(100) = %v after compaction", got)
	}
}

// TestFrozenReadZeroAllocs: the hot-path accessors on a delta-free
// snapshot do not allocate.
func TestFrozenReadZeroAllocs(t *testing.T) {
	ts := randomTriples(13, 200, 12, 6)
	g := graphOf(ts)
	g.Freeze()
	sn := g.Snapshot()
	defer sn.Close()
	v := sn.Vertices()[0]
	p := sn.Predicates()[0]
	allocs := testing.AllocsPerRun(200, func() {
		_ = sn.OutEdges(v)
		_ = sn.InEdges(v)
		_, _ = sn.OutRun(v, p)
		_, _ = sn.InRun(v, p)
		_ = sn.ByPredicate(p)
		_ = sn.OutDegreeP(v, p)
		_ = sn.Degree(v)
	})
	if allocs != 0 {
		t.Fatalf("frozen accessors allocate %.1f per run, want 0", allocs)
	}
}

func TestFreezeEmptyGraph(t *testing.T) {
	g := NewGraph(nil)
	g.Freeze()
	sn := g.Snapshot()
	if sn.NumVertices() != 0 || sn.NumTriples() != 0 {
		t.Fatal("empty frozen graph not empty")
	}
	if got := sn.OutEdges(0); len(got) != 0 {
		t.Fatalf("OutEdges on empty graph = %v", got)
	}
	sn.Close()
	if g.Add(Triple{S: 1, P: 2, O: 3}); g.NumTriples() != 1 {
		t.Fatal("add after empty freeze lost the triple")
	}
}

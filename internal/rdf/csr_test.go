package rdf

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// randomTriples builds a reproducible random triple set over a small ID
// space: subjects/objects in [0,nv), predicates in [nv, nv+np).
func randomTriples(seed int64, n, nv, np int) []Triple {
	r := rand.New(rand.NewSource(seed))
	ts := make([]Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triple{
			S: ID(r.Intn(nv)),
			P: ID(nv + r.Intn(np)),
			O: ID(r.Intn(nv)),
		})
	}
	return ts
}

func graphOf(ts []Triple) *Graph {
	g := NewGraph(nil)
	for _, t := range ts {
		g.Add(t)
	}
	return g
}

func sortedEdges(hs []HalfEdge) []HalfEdge {
	out := append([]HalfEdge(nil), hs...)
	slices.SortFunc(out, func(a, b HalfEdge) int {
		if a.P != b.P {
			return int(a.P) - int(b.P)
		}
		return int(a.Other) - int(b.Other)
	})
	return out
}

// TestFreezeEquivalenceProperty: every read accessor answers identically
// before and after Freeze (up to ordering, which Freeze is allowed to
// change to sorted).
func TestFreezeEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		ts := randomTriples(seed, 60, 8, 4)
		thawed := graphOf(ts)
		frozen := graphOf(ts)
		frozen.Freeze()
		if !frozen.Frozen() || thawed.Frozen() {
			return false
		}
		if thawed.NumTriples() != frozen.NumTriples() {
			return false
		}
		if !slices.Equal(thawed.Vertices(), frozen.Vertices()) {
			return false
		}
		if !slices.Equal(thawed.Predicates(), frozen.Predicates()) {
			return false
		}
		for _, v := range thawed.Vertices() {
			if !slices.Equal(sortedEdges(thawed.OutEdges(v)), sortedEdges(frozen.OutEdges(v))) {
				return false
			}
			if !slices.Equal(sortedEdges(thawed.InEdges(v)), sortedEdges(frozen.InEdges(v))) {
				return false
			}
			if thawed.Degree(v) != frozen.Degree(v) {
				return false
			}
			for _, p := range thawed.Predicates() {
				if thawed.OutDegreeP(v, p) != frozen.OutDegreeP(v, p) {
					return false
				}
				if thawed.InDegreeP(v, p) != frozen.InDegreeP(v, p) {
					return false
				}
			}
		}
		for _, p := range thawed.Predicates() {
			if thawed.PredicateCount(p) != frozen.PredicateCount(p) {
				return false
			}
		}
		for _, tr := range ts {
			if !frozen.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFrozenRunsSortedAndExact: frozen adjacency runs are sorted by
// (P, Other), and OutRun/InRun return exactly the predicate-filtered
// adjacency as a contiguous subslice.
func TestFrozenRunsSortedAndExact(t *testing.T) {
	ts := randomTriples(7, 120, 10, 5)
	g := graphOf(ts)
	g.Freeze()
	for _, v := range g.Vertices() {
		hs := g.OutEdges(v)
		if !slices.Equal(hs, sortedEdges(hs)) {
			t.Fatalf("out adjacency of %d not sorted: %v", v, hs)
		}
		for _, p := range g.Predicates() {
			run, exact := g.OutRun(v, p)
			if !exact {
				t.Fatalf("OutRun on frozen graph not exact")
			}
			var want []HalfEdge
			for _, h := range hs {
				if h.P == p {
					want = append(want, h)
				}
			}
			if !slices.Equal(run, want) {
				t.Fatalf("OutRun(%d,%d) = %v, want %v", v, p, run, want)
			}
		}
		in := g.InEdges(v)
		if !slices.Equal(in, sortedEdges(in)) {
			t.Fatalf("in adjacency of %d not sorted: %v", v, in)
		}
	}
	// The per-predicate arena partitions the triple set.
	total := 0
	for _, p := range g.Predicates() {
		total += len(g.ByPredicate(p))
	}
	if total != g.NumTriples() {
		t.Fatalf("predicate arena covers %d of %d triples", total, g.NumTriples())
	}
}

// TestDeltaOnAdd: adding to a frozen graph keeps it frozen — the triple
// lands in the delta overlay, reads see it immediately, and Freeze (or
// Compact) folds it into the CSR.
func TestDeltaOnAdd(t *testing.T) {
	ts := randomTriples(11, 40, 6, 3)
	g := graphOf(ts)
	g.Freeze()
	nv := g.NumVertices()
	if !g.Frozen() {
		t.Fatal("not frozen")
	}
	// A duplicate Add must not grow the delta.
	if g.Add(ts[0]) {
		t.Fatal("duplicate add reported new")
	}
	if !g.Frozen() || g.DeltaLen() != 0 {
		t.Fatalf("duplicate add mutated the graph (frozen=%v delta=%d)", g.Frozen(), g.DeltaLen())
	}
	extra := Triple{S: 100, P: 101, O: 102}
	if !g.Add(extra) {
		t.Fatal("add reported duplicate")
	}
	if !g.Frozen() {
		t.Fatal("mutating Add thawed the graph; it must stay frozen with a delta overlay")
	}
	if g.DeltaLen() != 1 {
		t.Fatalf("DeltaLen = %d, want 1", g.DeltaLen())
	}
	if !g.Has(extra) || g.NumTriples() != len(g.Triples()) {
		t.Fatal("triple lost in the delta")
	}
	if g.NumVertices() != nv+2 {
		t.Fatalf("NumVertices = %d, want %d (vertex cache stale?)", g.NumVertices(), nv+2)
	}
	// Overlaid reads serve the delta triple before any compaction.
	if got := g.OutEdges(100); len(got) != 1 || got[0] != (HalfEdge{P: 101, Other: 102}) {
		t.Fatalf("OutEdges(100) = %v with delta", got)
	}
	if g.OutDegreeP(100, 101) != 1 || g.InDegreeP(102, 101) != 1 || g.PredicateCount(101) != 1 {
		t.Fatal("degree/count accessors missed the delta triple")
	}
	g.Freeze() // on a delta-carrying graph this compacts
	if g.DeltaLen() != 0 || g.Compactions() == 0 {
		t.Fatalf("Freeze left delta=%d compactions=%d", g.DeltaLen(), g.Compactions())
	}
	if got := g.OutEdges(100); len(got) != 1 || got[0] != (HalfEdge{P: 101, Other: 102}) {
		t.Fatalf("OutEdges(100) = %v after compaction", got)
	}
}

// TestFrozenReadZeroAllocs: the hot-path accessors on a frozen graph do
// not allocate.
func TestFrozenReadZeroAllocs(t *testing.T) {
	ts := randomTriples(13, 200, 12, 6)
	g := graphOf(ts)
	g.Freeze()
	v := g.Vertices()[0]
	p := g.Predicates()[0]
	allocs := testing.AllocsPerRun(200, func() {
		_ = g.OutEdges(v)
		_ = g.InEdges(v)
		_, _ = g.OutRun(v, p)
		_, _ = g.InRun(v, p)
		_ = g.ByPredicate(p)
		_ = g.OutDegreeP(v, p)
		_ = g.Degree(v)
	})
	if allocs != 0 {
		t.Fatalf("frozen accessors allocate %.1f per run, want 0", allocs)
	}
}

func TestFreezeEmptyGraph(t *testing.T) {
	g := NewGraph(nil)
	g.Freeze()
	if g.NumVertices() != 0 || g.NumTriples() != 0 {
		t.Fatal("empty frozen graph not empty")
	}
	if got := g.OutEdges(0); len(got) != 0 {
		t.Fatalf("OutEdges on empty graph = %v", got)
	}
	if g.Add(Triple{S: 1, P: 2, O: 3}); g.NumTriples() != 1 {
		t.Fatal("add after empty freeze lost the triple")
	}
}

package rdf

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// rebuiltFrozen builds a fresh graph from the same triple sequence and
// freezes it: the ground truth an overlaid graph must be byte-identical
// to.
func rebuiltFrozen(ts []Triple) *Graph {
	g := graphOf(ts)
	g.Freeze()
	return g
}

// checkEquivalent asserts the full read API agrees across the overlaid
// graph, the map-mode oracle and a rebuilt-frozen graph: byte-identical
// runs against the rebuild (both are sorted), set-equal adjacency against
// the oracle, and exact degrees/counts everywhere.
func checkEquivalent(t *testing.T, overlay, oracle *Graph) bool {
	t.Helper()
	rebuilt := rebuiltFrozen(overlay.Triples())
	if overlay.NumTriples() != oracle.NumTriples() || overlay.NumTriples() != rebuilt.NumTriples() {
		t.Logf("NumTriples: overlay %d oracle %d rebuilt %d",
			overlay.NumTriples(), oracle.NumTriples(), rebuilt.NumTriples())
		return false
	}
	if !slices.Equal(overlay.Vertices(), rebuilt.Vertices()) || !slices.Equal(overlay.Vertices(), oracle.Vertices()) {
		t.Logf("Vertices diverged: overlay %v rebuilt %v oracle %v",
			overlay.Vertices(), rebuilt.Vertices(), oracle.Vertices())
		return false
	}
	if !slices.Equal(overlay.Predicates(), rebuilt.Predicates()) || !slices.Equal(overlay.Predicates(), oracle.Predicates()) {
		t.Logf("Predicates diverged")
		return false
	}
	for _, v := range rebuilt.Vertices() {
		// Frozen overlays must serve byte-identical merged runs vs the
		// rebuild; in map mode runs are insertion-ordered, so compare
		// sorted.
		outA, outB := overlay.OutEdges(v), rebuilt.OutEdges(v)
		inA, inB := overlay.InEdges(v), rebuilt.InEdges(v)
		if !overlay.Frozen() {
			outA, inA = sortedEdges(outA), sortedEdges(inA)
		}
		if !slices.Equal(outA, outB) {
			t.Logf("OutEdges(%d): overlay %v rebuilt %v", v, outA, outB)
			return false
		}
		if !slices.Equal(inA, inB) {
			t.Logf("InEdges(%d): overlay %v rebuilt %v", v, inA, inB)
			return false
		}
		// Set-equal adjacency vs the map-mode oracle.
		if !slices.Equal(sortedEdges(overlay.OutEdges(v)), sortedEdges(oracle.OutEdges(v))) {
			t.Logf("OutEdges(%d) vs oracle diverged", v)
			return false
		}
		if overlay.Degree(v) != oracle.Degree(v) || overlay.OutDegree(v) != oracle.OutDegree(v) || overlay.InDegree(v) != oracle.InDegree(v) {
			t.Logf("degrees of %d diverged", v)
			return false
		}
		for _, p := range rebuilt.Predicates() {
			if overlay.OutDegreeP(v, p) != oracle.OutDegreeP(v, p) || overlay.InDegreeP(v, p) != oracle.InDegreeP(v, p) {
				t.Logf("OutDegreeP/InDegreeP(%d, %d) diverged", v, p)
				return false
			}
			if overlay.Frozen() { // map mode serves inexact runs by contract
				run, exact := overlay.OutRun(v, p)
				wantRun, _ := rebuilt.OutRun(v, p)
				if !exact || !slices.Equal(run, wantRun) {
					t.Logf("OutRun(%d,%d): overlay %v (exact=%v) rebuilt %v", v, p, run, exact, wantRun)
					return false
				}
			}
		}
	}
	for _, p := range rebuilt.Predicates() {
		if overlay.PredicateCount(p) != oracle.PredicateCount(p) {
			t.Logf("PredicateCount(%d) diverged", p)
			return false
		}
		if overlay.Frozen() && !slices.Equal(overlay.ByPredicate(p), rebuilt.ByPredicate(p)) {
			t.Logf("ByPredicate(%d): overlay %v rebuilt %v", p, overlay.ByPredicate(p), rebuilt.ByPredicate(p))
			return false
		}
	}
	for _, tr := range overlay.Triples() {
		if !overlay.Has(tr) || !oracle.Has(tr) {
			t.Logf("Has(%v) lost a triple", tr)
			return false
		}
	}
	return true
}

// TestDeltaOverlayDifferentialProperty is the storage half of the
// differential mutation harness: a random interleaving of
// Add/Freeze/Compact ops runs against an overlaid graph and a map-mode
// oracle, and after every mutation the whole read API must agree with
// both the oracle (as sets) and a freshly rebuilt frozen graph (byte for
// byte) — before and after every compaction.
func TestDeltaOverlayDifferentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		overlay := NewGraph(nil)
		oracle := NewGraph(overlay.Dict)
		// A third of the runs auto-compact aggressively (every delta
		// triple crosses the threshold), a third never, a third default.
		switch seed % 3 {
		case 0:
			overlay.SetAutoCompact(-1)
		case 1:
			overlay.SetAutoCompact(0.0001)
		}
		const nv, np = 8, 4
		randomTriple := func() Triple {
			return Triple{
				S: ID(r.Intn(nv)),
				P: ID(nv + r.Intn(np)),
				O: ID(r.Intn(nv)),
			}
		}
		for step := 0; step < 60; step++ {
			switch op := r.Intn(10); {
			case op < 7: // Add
				tr := randomTriple()
				if overlay.Add(tr) != oracle.Add(tr) {
					t.Logf("Add(%v) novelty diverged", tr)
					return false
				}
			case op < 9: // Freeze (compacts when already frozen)
				overlay.Freeze()
			default: // Compact
				overlay.Compact()
			}
			if !checkEquivalent(t, overlay, oracle) {
				t.Logf("seed %d diverged at step %d (frozen=%v delta=%d compactions=%d)",
					seed, step, overlay.Frozen(), overlay.DeltaLen(), overlay.Compactions())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAutoCompaction: the delta folds into the CSR once it crosses the
// configured fraction of the base, and never does when disabled.
func TestAutoCompaction(t *testing.T) {
	ts := randomTriples(3, 400, 24, 6)
	g := graphOf(ts)
	g.Freeze()
	base := g.NumTriples()
	g.SetAutoCompact(0.1)
	// minCompactDelta floors the threshold; push well past both bounds.
	want := int(0.1 * float64(base))
	if want < minCompactDelta {
		want = minCompactDelta
	}
	added := 0
	for i := 0; added < 2*want; i++ {
		if g.Add(Triple{S: ID(1000 + i), P: ID(2000), O: ID(3000 + i)}) {
			added++
		}
	}
	if g.Compactions() == 0 {
		t.Fatalf("no auto-compaction after %d delta adds (threshold %d)", added, want)
	}
	if g.DeltaLen() >= want {
		t.Fatalf("delta %d still at/above threshold %d after compaction", g.DeltaLen(), want)
	}
	if !g.Frozen() {
		t.Fatal("auto-compaction left the graph unfrozen")
	}

	g2 := graphOf(ts)
	g2.Freeze()
	g2.SetAutoCompact(-1)
	for i := 0; i < 3*minCompactDelta; i++ {
		g2.Add(Triple{S: ID(1000 + i), P: ID(2000), O: ID(3000 + i)})
	}
	if g2.Compactions() != 0 {
		t.Fatalf("disabled auto-compaction still compacted %d times", g2.Compactions())
	}
	if g2.DeltaLen() != 3*minCompactDelta {
		t.Fatalf("delta = %d, want %d", g2.DeltaLen(), 3*minCompactDelta)
	}
}

// TestDeltaVertexCacheInvalidation is the stale-cache regression test:
// Vertices/NumVertices are cached on frozen graphs, and a delta Add must
// invalidate the cache even though the graph stays frozen.
func TestDeltaVertexCacheInvalidation(t *testing.T) {
	g := graphOf(randomTriples(5, 50, 6, 3))
	g.Freeze()
	_ = g.Vertices() // warm the cache
	nv := g.NumVertices()
	g.Add(Triple{S: 500, P: 501, O: 502})
	if g.NumVertices() != nv+2 {
		t.Fatalf("NumVertices = %d after delta add, want %d (stale cache)", g.NumVertices(), nv+2)
	}
	vs := g.Vertices()
	if !slices.Contains(vs, ID(500)) || !slices.Contains(vs, ID(502)) {
		t.Fatalf("Vertices() = %v missing delta vertices", vs)
	}
	if !slices.IsSorted(vs) {
		t.Fatalf("Vertices() not sorted with delta: %v", vs)
	}
	// New predicate must surface too.
	if !slices.Contains(g.Predicates(), ID(501)) {
		t.Fatalf("Predicates() = %v missing delta predicate", g.Predicates())
	}
}

// TestDeltaReadZeroAllocs: the two-run accessors on a delta-carrying
// frozen graph stay allocation-free — the matcher's hot path does not
// regress when live updates are pending.
func TestDeltaReadZeroAllocs(t *testing.T) {
	ts := randomTriples(13, 200, 12, 6)
	g := graphOf(ts)
	g.Freeze()
	g.SetAutoCompact(-1)
	for i := 0; i < 40; i++ {
		g.Add(Triple{S: ID(i % 12), P: ID(12 + i%6), O: ID((i + 5) % 12)})
	}
	if g.DeltaLen() == 0 {
		t.Fatal("setup produced no delta")
	}
	v := g.Vertices()[0]
	p := g.Predicates()[0]
	allocs := testing.AllocsPerRun(200, func() {
		_, _ = g.OutEdges2(v)
		_, _ = g.InEdges2(v)
		_, _, _ = g.OutRun2(v, p)
		_, _, _ = g.InRun2(v, p)
		_, _ = g.ByPredicate2(p)
		_ = g.OutDegreeP(v, p)
		_ = g.PredicateCount(p)
		_ = g.Degree(v)
	})
	if allocs != 0 {
		t.Fatalf("two-run accessors allocate %.1f per run with a delta, want 0", allocs)
	}
}

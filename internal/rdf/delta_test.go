package rdf

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// rebuiltFrozen builds a fresh graph from the same triple sequence and
// freezes it: the ground truth an overlaid graph must be byte-identical
// to.
func rebuiltFrozen(ts []Triple) *Graph {
	g := graphOf(ts)
	g.Freeze()
	return g
}

// checkEquivalent asserts the full snapshot read API agrees across the
// overlaid graph, the map-mode oracle and a rebuilt-frozen graph:
// byte-identical runs against the rebuild (both are sorted), set-equal
// adjacency against the oracle, and exact degrees/counts everywhere.
func checkEquivalent(t *testing.T, overlay, oracle *Graph) bool {
	t.Helper()
	// Writer-side enumeration must agree exactly, deletes included: both
	// keep live triples in insertion order, with a delete-then-reinsert
	// moving the triple to its latest insertion point.
	if !slices.Equal(overlay.Triples(), oracle.Triples()) {
		t.Logf("Triples(): overlay %v oracle %v", overlay.Triples(), oracle.Triples())
		return false
	}
	rg := rebuiltFrozen(overlay.Triples())
	ov, or, rb := overlay.Snapshot(), oracle.Snapshot(), rg.Snapshot()
	defer ov.Close()
	defer or.Close()
	defer rb.Close()
	if ov.NumTriples() != or.NumTriples() || ov.NumTriples() != rb.NumTriples() {
		t.Logf("NumTriples: overlay %d oracle %d rebuilt %d",
			ov.NumTriples(), or.NumTriples(), rb.NumTriples())
		return false
	}
	if !slices.Equal(ov.Vertices(), rb.Vertices()) || !slices.Equal(ov.Vertices(), or.Vertices()) {
		t.Logf("Vertices diverged: overlay %v rebuilt %v oracle %v",
			ov.Vertices(), rb.Vertices(), or.Vertices())
		return false
	}
	if !slices.Equal(ov.Predicates(), rb.Predicates()) || !slices.Equal(ov.Predicates(), or.Predicates()) {
		t.Logf("Predicates diverged")
		return false
	}
	for _, v := range rb.Vertices() {
		// Frozen overlays must serve byte-identical merged runs vs the
		// rebuild; in map mode runs are insertion-ordered, so compare
		// sorted.
		outA, outB := ov.OutEdges(v), rb.OutEdges(v)
		inA, inB := ov.InEdges(v), rb.InEdges(v)
		if !overlay.Frozen() {
			outA, inA = sortedEdges(outA), sortedEdges(inA)
		}
		if !slices.Equal(outA, outB) {
			t.Logf("OutEdges(%d): overlay %v rebuilt %v", v, outA, outB)
			return false
		}
		if !slices.Equal(inA, inB) {
			t.Logf("InEdges(%d): overlay %v rebuilt %v", v, inA, inB)
			return false
		}
		// Set-equal adjacency vs the map-mode oracle.
		if !slices.Equal(sortedEdges(ov.OutEdges(v)), sortedEdges(or.OutEdges(v))) {
			t.Logf("OutEdges(%d) vs oracle diverged", v)
			return false
		}
		if ov.Degree(v) != or.Degree(v) || ov.OutDegree(v) != or.OutDegree(v) || ov.InDegree(v) != or.InDegree(v) {
			t.Logf("degrees of %d diverged", v)
			return false
		}
		for _, p := range rb.Predicates() {
			if ov.OutDegreeP(v, p) != or.OutDegreeP(v, p) || ov.InDegreeP(v, p) != or.InDegreeP(v, p) {
				t.Logf("OutDegreeP/InDegreeP(%d, %d) diverged", v, p)
				return false
			}
			if overlay.Frozen() { // map mode serves inexact runs by contract
				run, exact := ov.OutRun(v, p)
				wantRun, _ := rb.OutRun(v, p)
				if !exact || !slices.Equal(run, wantRun) {
					t.Logf("OutRun(%d,%d): overlay %v (exact=%v) rebuilt %v", v, p, run, exact, wantRun)
					return false
				}
			}
		}
	}
	for _, p := range rb.Predicates() {
		if ov.PredicateCount(p) != or.PredicateCount(p) {
			t.Logf("PredicateCount(%d) diverged", p)
			return false
		}
		if overlay.Frozen() && !slices.Equal(ov.ByPredicate(p), rb.ByPredicate(p)) {
			t.Logf("ByPredicate(%d): overlay %v rebuilt %v", p, ov.ByPredicate(p), rb.ByPredicate(p))
			return false
		}
	}
	for _, tr := range overlay.Triples() {
		if !ov.Has(tr) || !or.Has(tr) {
			t.Logf("Has(%v) lost a triple", tr)
			return false
		}
	}
	return true
}

// TestDeltaOverlayDifferentialProperty is the storage half of the
// differential mutation harness: a random interleaving of
// Add/Delete/Freeze/Compact ops runs against an overlaid graph and a
// map-mode oracle, and after every mutation the whole read API must
// agree with both the oracle (as sets) and a freshly rebuilt frozen
// graph (byte for byte) — before and after every compaction. The small
// vocabulary makes delete-then-reinsert and duplicate-add collisions
// common, and random deletes regularly target never-inserted triples
// (both sides must report them as no-ops, not phantoms).
func TestDeltaOverlayDifferentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		overlay := NewGraph(nil)
		oracle := NewGraph(overlay.Dict)
		// A third of the runs auto-compact aggressively (every delta
		// triple crosses the threshold), a third never, a third default.
		switch seed % 3 {
		case 0:
			overlay.SetAutoCompact(-1)
		case 1:
			overlay.SetAutoCompact(0.0001)
		}
		const nv, np = 8, 4
		randomTriple := func() Triple {
			return Triple{
				S: ID(r.Intn(nv)),
				P: ID(nv + r.Intn(np)),
				O: ID(r.Intn(nv)),
			}
		}
		for step := 0; step < 60; step++ {
			switch op := r.Intn(10); {
			case op < 5: // Add
				tr := randomTriple()
				if overlay.Add(tr) != oracle.Add(tr) {
					t.Logf("Add(%v) novelty diverged", tr)
					return false
				}
			case op < 8: // Delete (live triple, or a random possibly-absent one)
				var tr Triple
				if live := overlay.Triples(); len(live) > 0 && r.Intn(2) == 0 {
					tr = live[r.Intn(len(live))]
				} else {
					tr = randomTriple()
				}
				if overlay.Delete(tr) != oracle.Delete(tr) {
					t.Logf("Delete(%v) presence diverged", tr)
					return false
				}
			case op < 9: // Freeze (compacts when already frozen)
				overlay.Freeze()
			default: // Compact
				overlay.Compact()
			}
			if !checkEquivalent(t, overlay, oracle) {
				t.Logf("seed %d diverged at step %d (frozen=%v delta=%d tombs=%d compactions=%d)",
					seed, step, overlay.Frozen(), overlay.DeltaLen(), overlay.DeltaTombstones(), overlay.Compactions())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAutoCompaction: the delta folds into the CSR once it crosses the
// configured fraction of the base, and never does when disabled.
func TestAutoCompaction(t *testing.T) {
	ts := randomTriples(3, 400, 24, 6)
	g := graphOf(ts)
	g.Freeze()
	base := g.NumTriples()
	g.SetAutoCompact(0.1)
	// minCompactDelta floors the threshold; push well past both bounds.
	want := int(0.1 * float64(base))
	if want < minCompactDelta {
		want = minCompactDelta
	}
	added := 0
	for i := 0; added < 2*want; i++ {
		if g.Add(Triple{S: ID(1000 + i), P: ID(2000), O: ID(3000 + i)}) {
			added++
		}
	}
	if g.Compactions() == 0 {
		t.Fatalf("no auto-compaction after %d delta adds (threshold %d)", added, want)
	}
	if g.DeltaLen() >= want {
		t.Fatalf("delta %d still at/above threshold %d after compaction", g.DeltaLen(), want)
	}
	if !g.Frozen() {
		t.Fatal("auto-compaction left the graph unfrozen")
	}

	g2 := graphOf(ts)
	g2.Freeze()
	g2.SetAutoCompact(-1)
	for i := 0; i < 3*minCompactDelta; i++ {
		g2.Add(Triple{S: ID(1000 + i), P: ID(2000), O: ID(3000 + i)})
	}
	if g2.Compactions() != 0 {
		t.Fatalf("disabled auto-compaction still compacted %d times", g2.Compactions())
	}
	if g2.DeltaLen() != 3*minCompactDelta {
		t.Fatalf("delta = %d, want %d", g2.DeltaLen(), 3*minCompactDelta)
	}
}

// TestDeltaVertexVisibility: a snapshot taken after a delta Add sees the
// new vertices and predicate immediately, while a snapshot taken before
// does not — the MVCC replacement of the old stale-cache regression
// test.
func TestDeltaVertexVisibility(t *testing.T) {
	g := graphOf(randomTriples(5, 50, 6, 3))
	g.Freeze()
	before := g.Snapshot()
	defer before.Close()
	nv := before.NumVertices()
	g.Add(Triple{S: 500, P: 501, O: 502})
	after := g.Snapshot()
	defer after.Close()
	if after.NumVertices() != nv+2 {
		t.Fatalf("NumVertices = %d after delta add, want %d", after.NumVertices(), nv+2)
	}
	if before.NumVertices() != nv {
		t.Fatalf("pinned snapshot grew: NumVertices = %d, want %d", before.NumVertices(), nv)
	}
	vs := after.Vertices()
	if !slices.Contains(vs, ID(500)) || !slices.Contains(vs, ID(502)) {
		t.Fatalf("Vertices() = %v missing delta vertices", vs)
	}
	if !slices.IsSorted(vs) {
		t.Fatalf("Vertices() not sorted with delta: %v", vs)
	}
	// New predicate must surface too — but not in the older snapshot.
	if !slices.Contains(after.Predicates(), ID(501)) {
		t.Fatalf("Predicates() = %v missing delta predicate", after.Predicates())
	}
	if slices.Contains(before.Predicates(), ID(501)) {
		t.Fatal("pinned snapshot sees a predicate added after it")
	}
}

// TestDeltaReadZeroAllocs: the two-run accessors on a delta-carrying
// snapshot stay allocation-free — the matcher's hot path does not
// regress when live updates are pending.
func TestDeltaReadZeroAllocs(t *testing.T) {
	ts := randomTriples(13, 200, 12, 6)
	g := graphOf(ts)
	g.Freeze()
	g.SetAutoCompact(-1)
	for i := 0; i < 40; i++ {
		g.Add(Triple{S: ID(i % 12), P: ID(12 + i%6), O: ID((i + 5) % 12)})
	}
	if g.DeltaLen() == 0 {
		t.Fatal("setup produced no delta")
	}
	sn := g.Snapshot()
	defer sn.Close()
	v := sn.Vertices()[0]
	p := sn.Predicates()[0]
	allocs := testing.AllocsPerRun(200, func() {
		_, _, _ = sn.OutEdges2(v)
		_, _, _ = sn.InEdges2(v)
		_, _, _, _ = sn.OutRun2(v, p)
		_, _, _, _ = sn.InRun2(v, p)
		_, _, _ = sn.ByPredicate2(p)
		_ = sn.OutDegreeP(v, p)
		_ = sn.PredicateCount(p)
		_ = sn.Degree(v)
	})
	if allocs != 0 {
		t.Fatalf("two-run accessors allocate %.1f per run with a delta, want 0", allocs)
	}
}

package rdf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDeleteNeverInserted: tombstoning a triple the graph never held is
// a no-op in both modes — it reports absent, mutates nothing, and leaves
// no phantom behind for snapshots or a later re-insert to trip over.
func TestDeleteNeverInserted(t *testing.T) {
	g := graphOf(randomTriples(11, 40, 8, 4))
	phantom := Triple{S: 900, P: 901, O: 902}
	if g.Delete(phantom) {
		t.Fatal("map mode: Delete of a never-inserted triple reported present")
	}
	n := g.NumTriples()
	g.Freeze()
	if g.Delete(phantom) {
		t.Fatal("frozen: Delete of a never-inserted triple reported present")
	}
	if g.DeltaLen() != 0 || g.DeltaTombstones() != 0 {
		t.Fatalf("no-op delete left delta state behind: len=%d tombs=%d", g.DeltaLen(), g.DeltaTombstones())
	}
	sn := g.Snapshot()
	defer sn.Close()
	if sn.NumTriples() != n || sn.Has(phantom) {
		t.Fatalf("no-op delete changed visibility: NumTriples=%d (want %d), Has=%v", sn.NumTriples(), n, sn.Has(phantom))
	}
	// The phantom's terms must not have leaked into the vertex set.
	for _, v := range sn.Vertices() {
		if v == 900 || v == 902 {
			t.Fatalf("no-op delete interned phantom vertex %d", v)
		}
	}
}

// TestDeleteMVCCVisibility: a snapshot pinned before a delete keeps
// seeing the triple (the tombstone's Seq is at or past its bound), a
// snapshot taken after does not, and a re-insert after the delete is
// visible only to snapshots taken after it — the insert-tombstone-insert
// chain resolves by latest visible op at every bound.
func TestDeleteMVCCVisibility(t *testing.T) {
	g := graphOf(randomTriples(17, 60, 8, 4))
	g.Freeze()
	g.SetAutoCompact(-1)
	victim := g.Triples()[7]

	before := g.Snapshot()
	defer before.Close()
	if !g.Delete(victim) {
		t.Fatal("setup: victim not present")
	}
	afterDel := g.Snapshot()
	defer afterDel.Close()
	if !g.Add(victim) {
		t.Fatal("re-insert after delete reported duplicate")
	}
	afterRe := g.Snapshot()
	defer afterRe.Close()

	if !before.Has(victim) {
		t.Fatal("pinned snapshot lost the triple to a later delete")
	}
	if afterDel.Has(victim) {
		t.Fatal("snapshot taken after the delete still sees the triple")
	}
	if !afterRe.Has(victim) {
		t.Fatal("snapshot taken after the re-insert misses it")
	}
	if got, want := afterDel.NumTriples(), before.NumTriples()-1; got != want {
		t.Fatalf("NumTriples after delete = %d, want %d", got, want)
	}
	if got, want := afterRe.NumTriples(), before.NumTriples(); got != want {
		t.Fatalf("NumTriples after re-insert = %d, want %d", got, want)
	}
	// Degrees must shrink and recover with the visibility, not globally.
	if before.OutDegree(victim.S) != afterRe.OutDegree(victim.S) {
		t.Fatal("re-insert did not restore the out-degree")
	}
	if afterDel.OutDegree(victim.S) != before.OutDegree(victim.S)-1 {
		t.Fatal("delete did not shrink the out-degree for later snapshots")
	}
}

// TestCompactFoldsTombstones: Compact rebuilds the CSR without the
// deleted triples and resets both delta gauges; the compacted graph is
// byte-identical to one built fresh from the surviving triples.
func TestCompactFoldsTombstones(t *testing.T) {
	ts := randomTriples(23, 80, 10, 5)
	g := graphOf(ts)
	g.Freeze()
	g.SetAutoCompact(-1)
	live := g.Triples()
	for i := 0; i < 10; i++ {
		if !g.Delete(live[i*3]) {
			t.Fatal("setup: delete of a live triple failed")
		}
	}
	g.Add(Triple{S: 700, P: 701, O: 702})
	if g.DeltaTombstones() != 10 {
		t.Fatalf("DeltaTombstones = %d, want 10", g.DeltaTombstones())
	}
	g.Compact()
	if g.DeltaLen() != 0 || g.DeltaTombstones() != 0 {
		t.Fatalf("compaction left delta state: len=%d tombs=%d", g.DeltaLen(), g.DeltaTombstones())
	}
	want := rebuiltFrozen(g.Triples())
	sn, wn := g.Snapshot(), want.Snapshot()
	defer sn.Close()
	defer wn.Close()
	if sn.NumTriples() != wn.NumTriples() {
		t.Fatalf("NumTriples = %d, want %d", sn.NumTriples(), wn.NumTriples())
	}
	for _, v := range wn.Vertices() {
		if got, wantD := sn.OutDegree(v), wn.OutDegree(v); got != wantD {
			t.Fatalf("OutDegree(%d) = %d, want %d after compaction", v, got, wantD)
		}
	}
}

// TestDeleteHeavyDifferential is a delete-heavy variant of the
// differential property: half the ops are deletes, so visible windows
// routinely carry more tombstones than inserts and whole vertices and
// predicates disappear and reappear.
func TestDeleteHeavyDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		overlay := NewGraph(nil)
		oracle := NewGraph(overlay.Dict)
		if seed%2 == 0 {
			overlay.SetAutoCompact(-1)
		}
		const nv, np = 6, 3
		randomTriple := func() Triple {
			return Triple{S: ID(r.Intn(nv)), P: ID(nv + r.Intn(np)), O: ID(r.Intn(nv))}
		}
		for step := 0; step < 50; step++ {
			switch op := r.Intn(10); {
			case op < 4: // Add
				tr := randomTriple()
				if overlay.Add(tr) != oracle.Add(tr) {
					return false
				}
			case op < 9: // Delete, biased toward live triples
				var tr Triple
				if live := overlay.Triples(); len(live) > 0 && r.Intn(3) != 0 {
					tr = live[r.Intn(len(live))]
				} else {
					tr = randomTriple()
				}
				if overlay.Delete(tr) != oracle.Delete(tr) {
					return false
				}
			default:
				overlay.Freeze()
			}
			if !checkEquivalent(t, overlay, oracle) {
				t.Logf("seed %d diverged at step %d (delta=%d tombs=%d)",
					seed, step, overlay.DeltaLen(), overlay.DeltaTombstones())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTombstoneReadZeroAllocs: the three-run accessors stay
// allocation-free when the visible window carries tombstones — deletes
// must not push the matcher's hot path onto the heap.
func TestTombstoneReadZeroAllocs(t *testing.T) {
	ts := randomTriples(29, 200, 12, 6)
	g := graphOf(ts)
	g.Freeze()
	g.SetAutoCompact(-1)
	live := g.Triples()
	for i := 0; i < 30; i++ {
		g.Delete(live[i*5])
	}
	for i := 0; i < 20; i++ {
		g.Add(Triple{S: ID(i % 12), P: ID(12 + i%6), O: ID((i + 7) % 12)})
	}
	if g.DeltaTombstones() == 0 {
		t.Fatal("setup produced no tombstones")
	}
	sn := g.Snapshot()
	defer sn.Close()
	v := sn.Vertices()[0]
	p := sn.Predicates()[0]
	allocs := testing.AllocsPerRun(200, func() {
		_, _, _ = sn.OutEdges2(v)
		_, _, _ = sn.InEdges2(v)
		_, _, _, _ = sn.OutRun2(v, p)
		_, _, _, _ = sn.InRun2(v, p)
		_, _, _ = sn.ByPredicate2(p)
		_ = sn.OutDegreeP(v, p)
		_ = sn.PredicateCount(p)
		_ = sn.Degree(v)
	})
	if allocs != 0 {
		t.Fatalf("three-run accessors allocate %.1f per run with tombstones, want 0", allocs)
	}
}

package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadTurtle parses a Turtle subset into the graph and returns the number
// of triples read. Supported: @prefix / PREFIX declarations, @base /
// BASE (resolved by plain concatenation), prefixed names, the 'a'
// keyword, ';' predicate-object lists, ',' object lists, blank node
// labels (_:x), string literals with optional language tag or datatype
// (folded into the lexical form, as in ReadNTriples), integer/decimal
// shorthand literals, and '#' comments. Collections and anonymous blank
// nodes ([...]) are not supported.
func ReadTurtle(g *Graph, r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	data, err := io.ReadAll(br)
	if err != nil {
		return 0, err
	}
	p := &turtleParser{src: string(data), g: g, prefixes: map[string]string{}}
	return p.run()
}

type turtleParser struct {
	src      string
	pos      int
	g        *Graph
	prefixes map[string]string
	base     string
	count    int
}

func (p *turtleParser) run() (int, error) {
	for {
		p.skipWS()
		if p.eof() {
			return p.count, nil
		}
		if err := p.statement(); err != nil {
			return p.count, fmt.Errorf("rdf: turtle at offset %d: %w", p.pos, err)
		}
	}
}

func (p *turtleParser) eof() bool { return p.pos >= len(p.src) }

func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		case c == '#':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) statement() error {
	if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
		return p.prefixDecl()
	}
	if p.hasKeyword("@base") || p.hasKeyword("BASE") {
		return p.baseDecl()
	}
	return p.triples()
}

// hasKeyword checks (case-sensitively for @-forms, insensitively for
// SPARQL-style forms) without consuming.
func (p *turtleParser) hasKeyword(kw string) bool {
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	seg := p.src[p.pos : p.pos+len(kw)]
	if kw[0] == '@' {
		return seg == kw
	}
	return strings.EqualFold(seg, kw)
}

func (p *turtleParser) consume(n int) { p.pos += n }

func (p *turtleParser) prefixDecl() error {
	atForm := p.src[p.pos] == '@'
	if atForm {
		p.consume(len("@prefix"))
	} else {
		p.consume(len("PREFIX"))
	}
	p.skipWS()
	// prefix name up to ':'
	start := p.pos
	for !p.eof() && p.src[p.pos] != ':' {
		p.pos++
	}
	if p.eof() {
		return fmt.Errorf("prefix declaration missing ':'")
	}
	name := strings.TrimSpace(p.src[start:p.pos])
	p.pos++ // ':'
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	p.skipWS()
	if atForm {
		if p.eof() || p.src[p.pos] != '.' {
			return fmt.Errorf("@prefix must end with '.'")
		}
		p.pos++
	} else if !p.eof() && p.src[p.pos] == '.' {
		p.pos++ // tolerate a trailing dot on SPARQL-style PREFIX
	}
	return nil
}

func (p *turtleParser) baseDecl() error {
	atForm := p.src[p.pos] == '@'
	if atForm {
		p.consume(len("@base"))
	} else {
		p.consume(len("BASE"))
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	p.skipWS()
	if atForm {
		if p.eof() || p.src[p.pos] != '.' {
			return fmt.Errorf("@base must end with '.'")
		}
		p.pos++
	} else if !p.eof() && p.src[p.pos] == '.' {
		p.pos++
	}
	return nil
}

func (p *turtleParser) triples() error {
	subj, err := p.term(false)
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.term(true)
			if err != nil {
				return err
			}
			p.g.AddTerms(subj, pred, obj)
			p.count++
			p.skipWS()
			if !p.eof() && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if !p.eof() && p.src[p.pos] == ';' {
			p.pos++
			p.skipWS()
			// Tolerate trailing ';' before '.'.
			if !p.eof() && p.src[p.pos] == '.' {
				break
			}
			continue
		}
		break
	}
	p.skipWS()
	if p.eof() || p.src[p.pos] != '.' {
		return fmt.Errorf("triple statement missing terminating '.'")
	}
	p.pos++
	return nil
}

func (p *turtleParser) predicate() (Term, error) {
	if !p.eof() && p.src[p.pos] == 'a' {
		// 'a' must be followed by whitespace or a term opener.
		if p.pos+1 < len(p.src) {
			c := p.src[p.pos+1]
			if c == ' ' || c == '\t' || c == '<' || c == '"' || c == '_' {
				p.pos++
				return NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), nil
			}
		}
	}
	return p.term(false)
}

func (p *turtleParser) term(allowLiteral bool) (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, fmt.Errorf("unexpected end of input")
	}
	switch c := p.src[p.pos]; {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '_':
		if p.pos+1 >= len(p.src) || p.src[p.pos+1] != ':' {
			return Term{}, fmt.Errorf("malformed blank node")
		}
		p.pos += 2
		start := p.pos
		for !p.eof() && isTurtleNameChar(p.src[p.pos]) {
			p.pos++
		}
		return NewBlank(p.src[start:p.pos]), nil
	case c == '"':
		if !allowLiteral {
			return Term{}, fmt.Errorf("literal not allowed here")
		}
		return p.literal()
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		if !allowLiteral {
			return Term{}, fmt.Errorf("numeric literal not allowed here")
		}
		start := p.pos
		p.pos++
		for !p.eof() && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			// A '.' followed by non-digit terminates the statement.
			if p.src[p.pos] == '.' && (p.pos+1 >= len(p.src) || p.src[p.pos+1] < '0' || p.src[p.pos+1] > '9') {
				break
			}
			p.pos++
		}
		return NewLiteral(p.src[start:p.pos]), nil
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) iriRef() (string, error) {
	if p.eof() || p.src[p.pos] != '<' {
		return "", fmt.Errorf("expected '<'")
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return "", fmt.Errorf("unterminated IRI")
	}
	iri := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		iri = p.base + iri
	}
	return iri, nil
}

func (p *turtleParser) literal() (Term, error) {
	// Triple-quoted long strings.
	if strings.HasPrefix(p.src[p.pos:], `"""`) {
		end := strings.Index(p.src[p.pos+3:], `"""`)
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated long literal")
		}
		lex := p.src[p.pos+3 : p.pos+3+end]
		p.pos += end + 6
		p.skipLiteralSuffix()
		return NewLiteral(lex), nil
	}
	i := p.pos + 1
	for i < len(p.src) {
		if p.src[i] == '\\' {
			i += 2
			continue
		}
		if p.src[i] == '"' {
			break
		}
		i++
	}
	if i >= len(p.src) {
		return Term{}, fmt.Errorf("unterminated literal")
	}
	lex := unescapeLiteral(p.src[p.pos+1 : i])
	p.pos = i + 1
	p.skipLiteralSuffix()
	return NewLiteral(lex), nil
}

// skipLiteralSuffix consumes an optional @lang or ^^<datatype> / ^^pfx:l.
func (p *turtleParser) skipLiteralSuffix() {
	if p.eof() {
		return
	}
	if p.src[p.pos] == '@' {
		p.pos++
		for !p.eof() && (isTurtleNameChar(p.src[p.pos]) || p.src[p.pos] == '-') {
			p.pos++
		}
		return
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		if !p.eof() && p.src[p.pos] == '<' {
			if end := strings.IndexByte(p.src[p.pos:], '>'); end >= 0 {
				p.pos += end + 1
			}
			return
		}
		for !p.eof() && (isTurtleNameChar(p.src[p.pos]) || p.src[p.pos] == ':') {
			p.pos++
		}
	}
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.pos
	for !p.eof() && (isTurtleNameChar(p.src[p.pos]) || p.src[p.pos] == ':') {
		p.pos++
	}
	word := p.src[start:p.pos]
	idx := strings.IndexByte(word, ':')
	if idx < 0 {
		return Term{}, fmt.Errorf("expected term, got %q", word)
	}
	pfx, local := word[:idx], word[idx+1:]
	baseIRI, ok := p.prefixes[pfx]
	if !ok {
		return Term{}, fmt.Errorf("undeclared prefix %q", pfx)
	}
	return NewIRI(baseIRI + local), nil
}

// WriteTurtle serializes the graph as Turtle, grouping triples by subject
// with ';' predicate lists. Terms are written in N-Triples syntax (no
// prefix compression), so any Turtle parser can read the output.
func WriteTurtle(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	bySubject := make(map[ID][]Triple)
	var order []ID
	for _, t := range g.Triples() {
		if _, ok := bySubject[t.S]; !ok {
			order = append(order, t.S)
		}
		bySubject[t.S] = append(bySubject[t.S], t)
	}
	for _, s := range order {
		ts := bySubject[s]
		if _, err := fmt.Fprintf(bw, "%s ", g.Dict.Decode(s)); err != nil {
			return err
		}
		for i, t := range ts {
			sep := " ;\n    "
			if i == len(ts)-1 {
				sep = " .\n"
			}
			if _, err := fmt.Fprintf(bw, "%s %s%s", g.Dict.Decode(t.P), g.Dict.Decode(t.O), sep); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func isTurtleNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c >= 0x80
}

package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []Term{
		NewIRI("http://ex/a"),
		NewLiteral("Aristotle"),
		NewBlank("b0"),
		NewIRI("Aristotle"), // must not collide with the literal
	}
	ids := make([]ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
	}
	if ids[1] == ids[3] {
		t.Fatalf("literal and IRI with same lexical form collided: %v", ids)
	}
	for i, tm := range terms {
		if got := d.Decode(ids[i]); got != tm {
			t.Errorf("Decode(%d) = %v, want %v", ids[i], got, tm)
		}
	}
	if d.Len() != 4 {
		t.Errorf("Len = %d, want 4", d.Len())
	}
	// Re-encoding is idempotent.
	if id := d.Encode(terms[0]); id != ids[0] {
		t.Errorf("re-Encode changed ID: %d vs %d", id, ids[0])
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup(NewIRI("x")); ok {
		t.Fatal("Lookup on empty dict returned ok")
	}
	id := d.MustIRI("x")
	got, ok := d.Lookup(NewIRI("x"))
	if !ok || got != id {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
}

func TestTermKeyRoundTrip(t *testing.T) {
	for _, tm := range []Term{NewIRI("http://a"), NewLiteral(`he said "hi"`), NewBlank("n1")} {
		back, err := TermFromKey(tm.Key())
		if err != nil {
			t.Fatalf("TermFromKey(%q): %v", tm.Key(), err)
		}
		if back != tm {
			t.Errorf("round trip %v -> %v", tm, back)
		}
	}
	if _, err := TermFromKey(""); err == nil {
		t.Error("TermFromKey(\"\") should fail")
	}
}

func TestGraphAddAndIndexes(t *testing.T) {
	g := NewGraph(nil)
	a := g.Dict.MustIRI("a")
	b := g.Dict.MustIRI("b")
	c := g.Dict.MustIRI("c")
	p := g.Dict.MustIRI("p")
	q := g.Dict.MustIRI("q")

	if !g.Add(Triple{a, p, b}) {
		t.Fatal("first Add returned false")
	}
	if g.Add(Triple{a, p, b}) {
		t.Fatal("duplicate Add returned true")
	}
	g.Add(Triple{b, q, c})
	g.Add(Triple{a, q, c})

	if g.NumTriples() != 3 {
		t.Errorf("NumTriples = %d, want 3", g.NumTriples())
	}
	sn := g.Snapshot()
	defer sn.Close()
	if sn.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", sn.NumVertices())
	}
	if got := len(sn.OutEdges(a)); got != 2 {
		t.Errorf("OutEdges(a) = %d edges, want 2", got)
	}
	if got := len(sn.InEdges(c)); got != 2 {
		t.Errorf("InEdges(c) = %d edges, want 2", got)
	}
	if got := sn.PredicateCount(p); got != 1 {
		t.Errorf("PredicateCount(p) = %d, want 1", got)
	}
	if got := sn.PredicateCount(q); got != 2 {
		t.Errorf("PredicateCount(q) = %d, want 2", got)
	}
	if got := sn.Degree(a); got != 2 {
		t.Errorf("Degree(a) = %d, want 2", got)
	}
	if !g.Has(Triple{a, p, b}) || g.Has(Triple{c, p, b}) {
		t.Error("Has gave wrong answers")
	}
	preds := sn.Predicates()
	if len(preds) != 2 {
		t.Errorf("Predicates = %v, want 2 entries", preds)
	}
}

func TestGraphCloneAndMerge(t *testing.T) {
	g := NewGraph(nil)
	a, p, b := g.Dict.MustIRI("a"), g.Dict.MustIRI("p"), g.Dict.MustIRI("b")
	g.Add(Triple{a, p, b})

	c := g.Clone()
	c.Add(Triple{b, p, a})
	if g.NumTriples() != 1 || c.NumTriples() != 2 {
		t.Fatalf("clone mutated original: g=%d c=%d", g.NumTriples(), c.NumTriples())
	}

	g.Merge(c)
	if g.NumTriples() != 2 {
		t.Errorf("after Merge NumTriples = %d, want 2", g.NumTriples())
	}
}

func TestSubgraphByPredicates(t *testing.T) {
	g := NewGraph(nil)
	a, b := g.Dict.MustIRI("a"), g.Dict.MustIRI("b")
	p, q := g.Dict.MustIRI("p"), g.Dict.MustIRI("q")
	g.Add(Triple{a, p, b})
	g.Add(Triple{a, q, b})
	sub := g.SubgraphByPredicates(map[ID]bool{p: true})
	if sub.NumTriples() != 1 || !sub.Has(Triple{a, p, b}) {
		t.Errorf("subgraph wrong: %v", sub.Triples())
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	src := strings.Join([]string{
		`<http://ex/Aristotle> <http://ex/name> "Aristotle" .`,
		`# a comment`,
		``,
		`<http://ex/Aristotle> <http://ex/influencedBy> <http://ex/Plato> .`,
		`_:b1 <http://ex/p> "line\nbreak" .`,
		`<http://ex/x> <http://ex/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`<http://ex/x> <http://ex/label> "hi"@en .`,
	}, "\n")
	g := NewGraph(nil)
	n, err := ReadNTriples(g, strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if n != 5 {
		t.Fatalf("parsed %d triples, want 5", n)
	}
	var buf bytes.Buffer
	if err := WriteNTriples(g, &buf); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	g2 := NewGraph(nil)
	if _, err := ReadNTriples(g2, &buf); err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if g2.NumTriples() != g.NumTriples() {
		t.Errorf("round trip triple count %d != %d", g2.NumTriples(), g.NumTriples())
	}
}

func TestNTriplesErrors(t *testing.T) {
	for _, bad := range []string{
		`<http://ex/a <http://ex/p> <http://ex/b> .`,
		`<http://ex/a> "lit" .`,
		`<a> <p> "unterminated .`,
		`<a> <p> <b> extra .`,
	} {
		g := NewGraph(nil)
		if _, err := ReadNTriples(g, strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestEscapeLiteralProperty(t *testing.T) {
	f := func(s string) bool {
		return unescapeLiteral(escapeLiteral(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDictEncodeDecodeProperty(t *testing.T) {
	d := NewDict()
	f := func(v string, kind uint8) bool {
		tm := Term{Kind: TermKind(kind % 3), Value: v}
		return d.Decode(d.Encode(tm)) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphAddIdempotentProperty(t *testing.T) {
	g := NewGraph(nil)
	f := func(s, p, o uint16) bool {
		tr := Triple{ID(s % 64), ID(p % 8), ID(o % 64)}
		before := g.NumTriples()
		first := g.Add(tr)
		second := g.Add(tr)
		after := g.NumTriples()
		if second {
			return false
		}
		if first {
			return after == before+1
		}
		return after == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadNTriples parses a (simplified) N-Triples document into the graph.
// Supported term forms: <iri>, _:blank, "literal" with optional
// ^^<datatype> or @lang suffix (folded into the literal's lexical form).
// Lines starting with '#' and blank lines are skipped.
func ReadNTriples(g *Graph, r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, err := parseNTLine(line)
		if err != nil {
			return n, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		g.AddTerms(s, p, o)
		n++
	}
	return n, sc.Err()
}

func parseNTLine(line string) (s, p, o Term, err error) {
	rest := line
	if s, rest, err = parseNTTerm(rest); err != nil {
		return
	}
	if p, rest, err = parseNTTerm(rest); err != nil {
		return
	}
	if o, rest, err = parseNTTerm(rest); err != nil {
		return
	}
	rest = strings.TrimSpace(rest)
	if rest != "" && rest != "." {
		err = fmt.Errorf("trailing content %q", rest)
	}
	return
}

func parseNTTerm(s string) (Term, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of line")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return NewIRI(s[1:end]), s[end+1:], nil
	case '_':
		if len(s) < 2 || s[1] != ':' {
			return Term{}, "", fmt.Errorf("malformed blank node")
		}
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			end = len(s)
		}
		return NewBlank(s[2:end]), s[end:], nil
	case '"':
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return Term{}, "", fmt.Errorf("unterminated literal")
		}
		lex := unescapeLiteral(s[1:i])
		rest := s[i+1:]
		// Fold datatype / language tag into the lexical form so round
		// trips stay lossless enough for matching purposes.
		if strings.HasPrefix(rest, "^^<") {
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype IRI")
			}
			rest = rest[end+1:]
		} else if strings.HasPrefix(rest, "@") {
			end := strings.IndexAny(rest, " \t")
			if end < 0 {
				end = len(rest)
			}
			rest = rest[end:]
		}
		return NewLiteral(lex), rest, nil
	}
	return Term{}, "", fmt.Errorf("unexpected character %q", s[0])
}

// WriteNTriples serializes the graph in insertion order.
func WriteNTriples(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n",
			g.Dict.Decode(t.S), g.Dict.Decode(t.P), g.Dict.Decode(t.O)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

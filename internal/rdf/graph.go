package rdf

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Triple is a dictionary-encoded RDF triple 〈subject, property, object〉.
type Triple struct {
	S, P, O ID
}

// String renders the triple with raw IDs; use Graph.TripleString for terms.
func (t Triple) String() string {
	return fmt.Sprintf("(%d %d %d)", t.S, t.P, t.O)
}

// Edge is one directed labelled edge as seen from one endpoint.
type Edge struct {
	P     ID   // property (edge label)
	Other ID   // the vertex on the far end
	Out   bool // true if the edge leaves the vertex owning this adjacency entry
}

// HalfEdge is one adjacency entry: the edge label and the far endpoint.
// The direction is implied by which index (out or in) it came from.
type HalfEdge struct {
	P     ID
	Other ID
}

// DefaultCompactFraction is the auto-compaction threshold: a frozen
// graph folds its delta into the CSR once the delta exceeds this
// fraction of the CSR's triples (see SetAutoCompact).
const DefaultCompactFraction = 0.25

// minCompactDelta is the smallest delta worth compacting automatically;
// below it a rebuild costs more than the merged reads save.
const minCompactDelta = 64

// maxCompactDelta caps the auto-compact threshold in absolute terms.
// Delta inserts are copy-on-write, O(run length) each, so on a huge
// graph a fraction-of-|E| threshold alone would let a skewed update
// stream (every triple sharing one predicate) grow a single sorted run
// to millions of entries and turn the stream quadratic. The cap bounds
// any run — and the per-read merge work — regardless of graph size.
const maxCompactDelta = 1 << 16

// Graph is an in-memory RDF graph (Definition 1): vertices are all subjects
// and objects, directed edges are triples labelled by property.
//
// The graph has two storage modes. While loading it keeps map-of-slices
// indexes (adjacency and per-property), cheap to append to. Freeze
// compiles those into an immutable CSR index — flat adjacency arenas with
// per-vertex offset tables, runs sorted by (P, Other) — and from then on
// the graph is MVCC: each CSR build is a generation, Add appends to the
// current generation's delta overlay (LSM-style), and Compact builds the
// next generation off to the side and swaps it in atomically.
//
// All reads go through Snapshot, an immutable view pinning a
// (generation, delta length) pair: a frozen graph supports one writer
// concurrent with any number of snapshot readers, with no lock on the
// read path. Writer-side methods (Add, Freeze, Compact, Merge, Triples)
// are single-writer: they must not be called concurrently with each
// other, but they never invalidate a live Snapshot. Map-mode graphs keep
// the old contract — no mutation concurrent with reads.
type Graph struct {
	Dict *Dict

	triples map[Triple]struct{}
	order   []Triple // insertion order, for deterministic iteration (writer-owned)

	// staleOrder counts occurrences in order that are no longer live
	// (deleted, or superseded by a later re-insert). Frozen-mode deletes
	// only tombstone, so order grows append-only within a generation;
	// Compact rebuilds it without the stale occurrences.
	staleOrder int

	// liveOrder caches the materialized live triple list when order
	// carries stale occurrences; valid while liveOrderAt == epoch.
	liveOrder   []Triple
	liveOrderAt uint64

	// liveCount mirrors len(triples) through an atomic so concurrent
	// readers (planner cardinality scaling) can read the live size while
	// the writer mutates.
	liveCount atomic.Int64

	// Map-mode indexes; nil while frozen.
	out    map[ID][]HalfEdge // subject -> (P,O)
	in     map[ID][]HalfEdge // object  -> (P,S)
	byPred map[ID][]Triple   // property -> triples

	// gen is the current CSR generation; nil in map mode. Swapped
	// atomically by Freeze/Compact; snapshot readers load it lock-free.
	gen atomic.Pointer[generation]

	// genMu guards the retired-generation registry and generation
	// installation; snapshot reads never take it.
	genMu     sync.Mutex
	retired   []*generation // superseded generations still pinned by snapshots
	nextGenID uint64

	// autoCompact is the delta/CSR size ratio that triggers Compact from
	// Add; 0 means DefaultCompactFraction, negative disables.
	autoCompact float64
	compactions atomic.Uint64

	// epoch increments on every successful Add. Derived caches (Stats)
	// compare epochs to decide whether they are stale.
	epoch atomic.Uint64
}

// NewGraph returns an empty graph sharing the given dictionary. A nil dict
// allocates a fresh one.
func NewGraph(d *Dict) *Graph {
	if d == nil {
		d = NewDict()
	}
	return &Graph{
		Dict:    d,
		triples: make(map[Triple]struct{}),
		out:     make(map[ID][]HalfEdge),
		in:      make(map[ID][]HalfEdge),
		byPred:  make(map[ID][]Triple),
	}
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new. On a frozen graph the triple goes to the current
// generation's delta overlay (possibly triggering an auto-compaction)
// and becomes visible to snapshots taken after Add returns; snapshots
// already pinned never see it.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.triples[t]; ok {
		return false
	}
	g.triples[t] = struct{}{}
	g.order = append(g.order, t)
	g.liveCount.Add(1)
	if gen := g.gen.Load(); gen != nil {
		// Publish order: order header first, then the op log, then the
		// delta runs, then the delta length (the readers' acquire
		// point). A snapshot that observes delta length n is guaranteed
		// to find all n ops in the order prefix, the log and the runs.
		ord := g.order
		gen.ord.Store(&ord)
		seq := uint32(gen.delta.n.Load())
		gen.delta.appendOp(t, false)
		gen.delta.add(t, seq)
		gen.delta.n.Add(1)
		g.epoch.Add(1)
		if g.shouldCompact(gen) {
			g.Compact()
		}
		return true
	}
	g.out[t.S] = append(g.out[t.S], HalfEdge{P: t.P, Other: t.O})
	g.in[t.O] = append(g.in[t.O], HalfEdge{P: t.P, Other: t.S})
	g.byPred[t.P] = append(g.byPred[t.P], t)
	g.epoch.Add(1)
	return true
}

// Delete removes a triple; deleting an absent (or never-inserted) triple
// is a no-op, not a phantom — it reports whether the triple was present.
// On a frozen graph the delete lands as a tombstone in the current
// generation's delta overlay: snapshots taken after Delete returns no
// longer see the triple, snapshots already pinned keep seeing it, and
// Compact folds the tombstone away when it rebuilds the CSR. Writer-side,
// like Add.
func (g *Graph) Delete(t Triple) bool {
	if _, ok := g.triples[t]; !ok {
		return false
	}
	delete(g.triples, t)
	g.liveCount.Add(-1)
	if gen := g.gen.Load(); gen != nil {
		g.staleOrder++
		seq := uint32(gen.delta.n.Load())
		gen.delta.appendOp(t, true)
		gen.delta.addTomb(t, seq)
		gen.delta.dels.Add(1)
		gen.delta.n.Add(1)
		g.epoch.Add(1)
		if g.shouldCompact(gen) {
			g.Compact()
		}
		return true
	}
	// Map mode: splice the triple out of every index (old contract — no
	// readers concurrent with mutation).
	g.order = spliceTriple(g.order, t)
	if run := spliceHalf(g.out[t.S], HalfEdge{P: t.P, Other: t.O}); len(run) > 0 {
		g.out[t.S] = run
	} else {
		delete(g.out, t.S)
	}
	if run := spliceHalf(g.in[t.O], HalfEdge{P: t.P, Other: t.S}); len(run) > 0 {
		g.in[t.O] = run
	} else {
		delete(g.in, t.O)
	}
	if run := spliceTriple(g.byPred[t.P], t); len(run) > 0 {
		g.byPred[t.P] = run
	} else {
		delete(g.byPred, t.P)
	}
	g.epoch.Add(1)
	return true
}

// spliceTriple removes the first occurrence of t, preserving order.
func spliceTriple(run []Triple, t Triple) []Triple {
	for i, x := range run {
		if x == t {
			return append(run[:i], run[i+1:]...)
		}
	}
	return run
}

// spliceHalf removes the first occurrence of h, preserving order.
func spliceHalf(run []HalfEdge, h HalfEdge) []HalfEdge {
	for i, x := range run {
		if x == h {
			return append(run[:i], run[i+1:]...)
		}
	}
	return run
}

// AddTerms interns the three terms and inserts the resulting triple.
func (g *Graph) AddTerms(s, p, o Term) Triple {
	t := Triple{S: g.Dict.Encode(s), P: g.Dict.Encode(p), O: g.Dict.Encode(o)}
	g.Add(t)
	return t
}

// Freeze compiles the graph into its immutable CSR form (the first
// generation) and releases the map indexes. Idempotent; call after bulk
// loading and before issuing queries. On an already-frozen graph
// carrying a delta it compacts, so Freeze always leaves a pure CSR
// behind.
func (g *Graph) Freeze() {
	if g.gen.Load() != nil {
		g.Compact()
		return
	}
	g.installGeneration(buildCSR(g.order))
	g.out, g.in, g.byPred = nil, nil, nil
}

// installGeneration publishes a freshly built CSR as the new current
// generation, retiring the previous one into the registry until its
// pinned snapshots drain.
func (g *Graph) installGeneration(csr *csrIndex) {
	g.genMu.Lock()
	defer g.genMu.Unlock()
	g.nextGenID++
	gen := &generation{id: g.nextGenID, csr: csr, base: len(g.order), delta: &genDelta{}}
	ord := g.order
	gen.ord.Store(&ord)
	if old := g.gen.Load(); old != nil {
		g.retired = append(g.retired, old)
	}
	g.gen.Store(gen)
	g.pruneLocked()
}

// pruneRetired forgets retired generations whose last pinned snapshot
// has drained. Memory reclamation itself is the garbage collector's job
// (arenas die with their last snapshot); the registry exists so the
// LiveGenerations/PinnedSnapshots gauges reflect reality.
func (g *Graph) pruneRetired() {
	g.genMu.Lock()
	g.pruneLocked()
	g.genMu.Unlock()
}

func (g *Graph) pruneLocked() {
	kept := g.retired[:0]
	for _, gen := range g.retired {
		if gen.pins.Load() > 0 {
			kept = append(kept, gen)
		}
	}
	for i := len(kept); i < len(g.retired); i++ {
		g.retired[i] = nil
	}
	g.retired = kept
}

// LiveGenerations reports how many CSR generations are currently alive:
// the serving generation plus retired ones still pinned by snapshots.
// Zero in map mode.
func (g *Graph) LiveGenerations() int {
	if g.gen.Load() == nil {
		return 0
	}
	g.genMu.Lock()
	defer g.genMu.Unlock()
	g.pruneLocked()
	return 1 + len(g.retired)
}

// PinnedSnapshots reports how many pinned (unclosed) snapshots exist
// across all generations of this graph.
func (g *Graph) PinnedSnapshots() int {
	n := int64(0)
	if gen := g.gen.Load(); gen != nil {
		n += gen.pins.Load()
	}
	g.genMu.Lock()
	for _, gen := range g.retired {
		n += gen.pins.Load()
	}
	g.genMu.Unlock()
	return int(n)
}

// Frozen reports whether the graph is in CSR mode (possibly carrying a
// delta overlay; see DeltaLen).
func (g *Graph) Frozen() bool { return g.gen.Load() != nil }

// DeltaLen returns the number of post-freeze mutations (inserts and
// tombstones) waiting in the current generation's delta overlay (0 in
// map mode or right after a compaction).
func (g *Graph) DeltaLen() int {
	gen := g.gen.Load()
	if gen == nil {
		return 0
	}
	return int(gen.delta.n.Load())
}

// DeltaTombstones returns how many of the current generation's delta
// mutations are tombstones.
func (g *Graph) DeltaTombstones() int {
	gen := g.gen.Load()
	if gen == nil {
		return 0
	}
	return int(gen.delta.dels.Load())
}

// Compactions returns how many times the delta has been folded into a
// new CSR generation, by Compact directly or by the auto-compaction
// threshold.
func (g *Graph) Compactions() uint64 { return g.compactions.Load() }

// Epoch returns the graph's mutation counter: it increments on every
// successful Add or Delete. Derived caches use it to detect staleness.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// SetAutoCompact sets the delta/CSR ratio beyond which Add compacts
// automatically. 0 restores DefaultCompactFraction; a negative fraction
// disables auto-compaction (Compact/Freeze still work explicitly).
func (g *Graph) SetAutoCompact(fraction float64) { g.autoCompact = fraction }

func (g *Graph) shouldCompact(gen *generation) bool {
	if g.autoCompact < 0 {
		return false
	}
	frac := g.autoCompact
	if frac == 0 {
		frac = DefaultCompactFraction
	}
	threshold := int(frac * float64(gen.base))
	if threshold < minCompactDelta {
		threshold = minCompactDelta
	}
	if threshold > maxCompactDelta {
		threshold = maxCompactDelta
	}
	return int(gen.delta.n.Load()) >= threshold
}

// Compact folds the current generation's delta into a freshly rebuilt
// CSR (one pass over the triple list) and swaps the new generation in
// atomically. In-flight snapshots keep reading the generation they
// pinned; the old generation is retired and forgotten once its last
// snapshot drains. No-op in map mode or when the delta is empty.
func (g *Graph) Compact() {
	gen := g.gen.Load()
	if gen == nil || gen.delta.n.Load() == 0 {
		return
	}
	g.compactOrder()
	g.installGeneration(buildCSR(g.order))
	g.compactions.Add(1)
}

// compactOrder rebuilds the insertion-order list without stale
// occurrences (this is where tombstones get folded away). The rebuild is
// a fresh slice — retired generations' published order headers keep
// pointing at the old array, so pinned snapshots are unaffected.
func (g *Graph) compactOrder() {
	if g.staleOrder == 0 {
		return
	}
	g.order = g.Triples()
	g.liveOrder = nil
	g.staleOrder = 0
}

// Has reports whether the triple is present. Writer-side: it reads the
// live triple set, so it must not race Add; concurrent readers use
// Snapshot.Has.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.triples[t]
	return ok
}

// NumTriples returns |E(G)| as the writer sees it: live triples only
// (adds included, deletes excluded).
func (g *Graph) NumTriples() int { return len(g.triples) }

// LiveTriples returns the live triple count through an atomic counter,
// safe to read concurrently with the writer (unlike NumTriples, which
// reads the writer-owned map). Planner-side cardinality scaling reads it
// while updates land.
func (g *Graph) LiveTriples() int { return int(g.liveCount.Load()) }

// Triples returns the live triples in insertion order (delta triples
// included — they are the newest suffix; a triple re-inserted after a
// delete counts from its latest insertion). Writer-side; the returned
// slice is owned by the graph and must not be mutated. Concurrent
// readers use Snapshot.Triples.
func (g *Graph) Triples() []Triple {
	if g.staleOrder == 0 {
		return g.order
	}
	if g.liveOrder != nil && g.liveOrderAt == g.epoch.Load() {
		return g.liveOrder
	}
	out := make([]Triple, 0, len(g.triples))
	emitted := make(map[Triple]struct{}, g.staleOrder)
	for i := len(g.order) - 1; i >= 0; i-- {
		t := g.order[i]
		if _, live := g.triples[t]; !live {
			continue
		}
		if _, dup := emitted[t]; dup {
			continue
		}
		emitted[t] = struct{}{}
		out = append(out, t)
	}
	slices.Reverse(out)
	g.liveOrder = out
	g.liveOrderAt = g.epoch.Load()
	return out
}

// mergeIDs merges two sorted, disjoint ID slices. With an empty extra it
// returns base unchanged (zero-copy).
func mergeIDs(base, extra []ID) []ID {
	if len(extra) == 0 {
		return base
	}
	return mergeSorted(base, extra, func(a, b ID) int {
		if a < b {
			return -1
		} else if a > b {
			return 1
		}
		return 0
	})
}

// TripleString renders a triple with decoded terms.
func (g *Graph) TripleString(t Triple) string {
	return fmt.Sprintf("%s %s %s .", g.Dict.Decode(t.S), g.Dict.Decode(t.P), g.Dict.Decode(t.O))
}

// Clone returns a deep copy of the graph structure sharing the dictionary.
// The copy is in map mode regardless of the receiver's mode.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Dict)
	for _, t := range g.Triples() {
		c.Add(t)
	}
	return c
}

// Merge inserts all triples of other into g (dictionaries must be shared).
func (g *Graph) Merge(other *Graph) {
	if other == nil {
		return
	}
	if other.Dict != g.Dict {
		panic("rdf: Merge requires a shared dictionary")
	}
	for _, t := range other.Triples() {
		g.Add(t)
	}
}

// SubgraphByPredicates returns a new graph (sharing the dictionary)
// containing exactly the triples whose property is in keep.
func (g *Graph) SubgraphByPredicates(keep map[ID]bool) *Graph {
	sub := NewGraph(g.Dict)
	for _, t := range g.Triples() {
		if keep[t.P] {
			sub.Add(t)
		}
	}
	return sub
}

package rdf

import (
	"fmt"
	"sort"
	"sync"
)

// Triple is a dictionary-encoded RDF triple 〈subject, property, object〉.
type Triple struct {
	S, P, O ID
}

// String renders the triple with raw IDs; use Graph.TripleString for terms.
func (t Triple) String() string {
	return fmt.Sprintf("(%d %d %d)", t.S, t.P, t.O)
}

// Edge is one directed labelled edge as seen from one endpoint.
type Edge struct {
	P     ID   // property (edge label)
	Other ID   // the vertex on the far end
	Out   bool // true if the edge leaves the vertex owning this adjacency entry
}

// HalfEdge is one adjacency entry: the edge label and the far endpoint.
// The direction is implied by which index (out or in) it came from.
type HalfEdge struct {
	P     ID
	Other ID
}

// Graph is an in-memory RDF graph (Definition 1): vertices are all subjects
// and objects, directed edges are triples labelled by property.
//
// The graph has two storage modes. While loading it keeps map-of-slices
// indexes (adjacency and per-property), cheap to append to. Freeze
// compiles those into an immutable CSR index — flat adjacency arenas with
// per-vertex offset tables, runs sorted by (P, Other) — which the matcher
// iterates without allocating; the maps are released. Add on a frozen
// graph transparently thaws back to map mode (O(|E|)), so freezing is
// always safe; re-freeze after bulk updates.
//
// Graph is not safe for concurrent mutation; concurrent reads are fine
// once loading (and freezing, if used) has finished.
type Graph struct {
	Dict *Dict

	triples map[Triple]struct{}
	order   []Triple // insertion order, for deterministic iteration

	// Map-mode indexes; nil while frozen.
	out    map[ID][]HalfEdge // subject -> (P,O)
	in     map[ID][]HalfEdge // object  -> (P,S)
	byPred map[ID][]Triple   // property -> triples

	// frozen is the CSR index; non-nil once Freeze has run.
	frozen *csrIndex

	// vertCache memoizes the sorted vertex set; Add invalidates it.
	// Guarded by vertMu so lazy computation is safe under the concurrent
	// readers the matcher runs.
	vertMu    sync.Mutex
	vertCache []ID
}

// NewGraph returns an empty graph sharing the given dictionary. A nil dict
// allocates a fresh one.
func NewGraph(d *Dict) *Graph {
	if d == nil {
		d = NewDict()
	}
	return &Graph{
		Dict:    d,
		triples: make(map[Triple]struct{}),
		out:     make(map[ID][]HalfEdge),
		in:      make(map[ID][]HalfEdge),
		byPred:  make(map[ID][]Triple),
	}
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new. Adding to a frozen graph thaws it first.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.triples[t]; ok {
		return false
	}
	if g.frozen != nil {
		g.thaw()
	}
	g.triples[t] = struct{}{}
	g.order = append(g.order, t)
	g.out[t.S] = append(g.out[t.S], HalfEdge{P: t.P, Other: t.O})
	g.in[t.O] = append(g.in[t.O], HalfEdge{P: t.P, Other: t.S})
	g.byPred[t.P] = append(g.byPred[t.P], t)
	g.invalidateVertCache()
	return true
}

// AddTerms interns the three terms and inserts the resulting triple.
func (g *Graph) AddTerms(s, p, o Term) Triple {
	t := Triple{S: g.Dict.Encode(s), P: g.Dict.Encode(p), O: g.Dict.Encode(o)}
	g.Add(t)
	return t
}

// Freeze compiles the graph into its immutable CSR form and releases the
// map indexes. Idempotent; call after bulk loading and before issuing
// queries. A frozen graph answers the same read API, plus the zero-copy
// run accessors the matcher uses, several times faster.
func (g *Graph) Freeze() {
	if g.frozen != nil {
		return
	}
	g.frozen = buildCSR(g.order)
	g.out, g.in, g.byPred = nil, nil, nil
	g.vertMu.Lock()
	g.vertCache = g.frozen.verts
	g.vertMu.Unlock()
}

// Frozen reports whether the graph is in CSR mode.
func (g *Graph) Frozen() bool { return g.frozen != nil }

// thaw rebuilds the map indexes from the triple list and drops the CSR.
func (g *Graph) thaw() {
	g.out = make(map[ID][]HalfEdge, len(g.frozen.verts))
	g.in = make(map[ID][]HalfEdge, len(g.frozen.verts))
	g.byPred = make(map[ID][]Triple, len(g.frozen.preds))
	for _, t := range g.order {
		g.out[t.S] = append(g.out[t.S], HalfEdge{P: t.P, Other: t.O})
		g.in[t.O] = append(g.in[t.O], HalfEdge{P: t.P, Other: t.S})
		g.byPred[t.P] = append(g.byPred[t.P], t)
	}
	g.frozen = nil
}

func (g *Graph) invalidateVertCache() {
	g.vertMu.Lock()
	g.vertCache = nil
	g.vertMu.Unlock()
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.triples[t]
	return ok
}

// NumTriples returns |E(G)|.
func (g *Graph) NumTriples() int { return len(g.order) }

// NumVertices returns |V(G)| (distinct subjects and objects).
func (g *Graph) NumVertices() int { return len(g.Vertices()) }

// Triples returns the triples in insertion order. The returned slice is
// owned by the graph and must not be mutated.
func (g *Graph) Triples() []Triple { return g.order }

// OutEdges returns the outgoing (P, Other) adjacency of vertex s. The
// slice is owned by the graph: zero-copy, do not mutate. When the graph is
// frozen the run is sorted by (P, Other); in map mode it is in insertion
// order.
func (g *Graph) OutEdges(s ID) []HalfEdge {
	if c := g.frozen; c != nil {
		return c.out(s)
	}
	return g.out[s]
}

// InEdges returns the incoming (P, Other) adjacency of vertex o, with the
// same ownership and ordering contract as OutEdges.
func (g *Graph) InEdges(o ID) []HalfEdge {
	if c := g.frozen; c != nil {
		return c.in(o)
	}
	return g.in[o]
}

// OutRun returns s's outgoing edges labelled p. On a frozen graph this is
// the contiguous (binary-searched) sub-run and exact is true; in map mode
// it returns the full adjacency with exact false and the caller must
// filter by P. Zero-copy either way.
func (g *Graph) OutRun(s, p ID) (run []HalfEdge, exact bool) {
	if c := g.frozen; c != nil {
		return predRange(c.out(s), p), true
	}
	return g.out[s], false
}

// InRun is OutRun for incoming edges of o.
func (g *Graph) InRun(o, p ID) (run []HalfEdge, exact bool) {
	if c := g.frozen; c != nil {
		return predRange(c.in(o), p), true
	}
	return g.in[o], false
}

// Out returns the outgoing (P, O) pairs of vertex s as Edge values. It
// allocates; the matcher uses OutEdges/OutRun instead.
func (g *Graph) Out(s ID) []Edge {
	hs := g.OutEdges(s)
	es := make([]Edge, len(hs))
	for i, h := range hs {
		es[i] = Edge{P: h.P, Other: h.Other, Out: true}
	}
	return es
}

// In returns the incoming (P, S) pairs of vertex o as Edge values. It
// allocates; the matcher uses InEdges/InRun instead.
func (g *Graph) In(o ID) []Edge {
	hs := g.InEdges(o)
	es := make([]Edge, len(hs))
	for i, h := range hs {
		es[i] = Edge{P: h.P, Other: h.Other, Out: false}
	}
	return es
}

// Degree returns the total degree (in+out) of v.
func (g *Graph) Degree(v ID) int {
	return len(g.OutEdges(v)) + len(g.InEdges(v))
}

// OutDegreeP returns the number of outgoing edges of v labelled p: an
// exact (vertex, predicate) selectivity. O(log deg) frozen, O(deg) in map
// mode.
func (g *Graph) OutDegreeP(v, p ID) int {
	run, exact := g.OutRun(v, p)
	if exact {
		return len(run)
	}
	n := 0
	for _, h := range run {
		if h.P == p {
			n++
		}
	}
	return n
}

// InDegreeP is OutDegreeP for incoming edges.
func (g *Graph) InDegreeP(v, p ID) int {
	run, exact := g.InRun(v, p)
	if exact {
		return len(run)
	}
	n := 0
	for _, h := range run {
		if h.P == p {
			n++
		}
	}
	return n
}

// ByPredicate returns all triples whose property is p. The slice is owned
// by the graph. On a frozen graph the run comes from the sorted triple
// arena (ordered by S then O); in map mode it is in insertion order.
func (g *Graph) ByPredicate(p ID) []Triple {
	if c := g.frozen; c != nil {
		return c.pred(p)
	}
	return g.byPred[p]
}

// PredicateCount returns the number of triples labelled p.
func (g *Graph) PredicateCount(p ID) int { return len(g.ByPredicate(p)) }

// Predicates returns the distinct properties in ascending ID order.
func (g *Graph) Predicates() []ID {
	if c := g.frozen; c != nil {
		return c.preds
	}
	ps := make([]ID, 0, len(g.byPred))
	for p := range g.byPred {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// Vertices returns the distinct vertices in ascending ID order. The slice
// is cached (Add invalidates it) and owned by the graph; do not mutate.
func (g *Graph) Vertices() []ID {
	g.vertMu.Lock()
	defer g.vertMu.Unlock()
	if g.vertCache != nil {
		return g.vertCache
	}
	if c := g.frozen; c != nil {
		g.vertCache = c.verts
		return g.vertCache
	}
	seen := make(map[ID]struct{}, len(g.out)+len(g.in))
	for v := range g.out {
		seen[v] = struct{}{}
	}
	for v := range g.in {
		seen[v] = struct{}{}
	}
	vs := make([]ID, 0, len(seen))
	for v := range seen {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	if vs == nil {
		vs = []ID{} // cache the empty result too
	}
	g.vertCache = vs
	return g.vertCache
}

// TripleString renders a triple with decoded terms.
func (g *Graph) TripleString(t Triple) string {
	return fmt.Sprintf("%s %s %s .", g.Dict.Decode(t.S), g.Dict.Decode(t.P), g.Dict.Decode(t.O))
}

// Clone returns a deep copy of the graph structure sharing the dictionary.
// The copy is in map mode regardless of the receiver's mode.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Dict)
	for _, t := range g.order {
		c.Add(t)
	}
	return c
}

// Merge inserts all triples of other into g (dictionaries must be shared).
func (g *Graph) Merge(other *Graph) {
	if other == nil {
		return
	}
	if other.Dict != g.Dict {
		panic("rdf: Merge requires a shared dictionary")
	}
	for _, t := range other.order {
		g.Add(t)
	}
}

// SubgraphByPredicates returns a new graph (sharing the dictionary)
// containing exactly the triples whose property is in keep.
func (g *Graph) SubgraphByPredicates(keep map[ID]bool) *Graph {
	sub := NewGraph(g.Dict)
	for _, t := range g.order {
		if keep[t.P] {
			sub.Add(t)
		}
	}
	return sub
}

package rdf

import (
	"fmt"
	"sort"
)

// Triple is a dictionary-encoded RDF triple 〈subject, property, object〉.
type Triple struct {
	S, P, O ID
}

// String renders the triple with raw IDs; use Graph.TripleString for terms.
func (t Triple) String() string {
	return fmt.Sprintf("(%d %d %d)", t.S, t.P, t.O)
}

// Edge is one directed labelled edge as seen from one endpoint.
type Edge struct {
	P     ID   // property (edge label)
	Other ID   // the vertex on the far end
	Out   bool // true if the edge leaves the vertex owning this adjacency entry
}

// Graph is an in-memory RDF graph (Definition 1): vertices are all subjects
// and objects, directed edges are triples labelled by property. It keeps
// SPO-ordered triples plus adjacency and per-property indexes for matching.
//
// Graph is not safe for concurrent mutation; concurrent reads are fine once
// loading has finished.
type Graph struct {
	Dict *Dict

	triples map[Triple]struct{}
	order   []Triple // insertion order, for deterministic iteration

	out    map[ID][]halfEdge // subject -> (P,O)
	in     map[ID][]halfEdge // object  -> (P,S)
	byPred map[ID][]Triple   // property -> triples
}

type halfEdge struct {
	P     ID
	Other ID
}

// NewGraph returns an empty graph sharing the given dictionary. A nil dict
// allocates a fresh one.
func NewGraph(d *Dict) *Graph {
	if d == nil {
		d = NewDict()
	}
	return &Graph{
		Dict:    d,
		triples: make(map[Triple]struct{}),
		out:     make(map[ID][]halfEdge),
		in:      make(map[ID][]halfEdge),
		byPred:  make(map[ID][]Triple),
	}
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.triples[t]; ok {
		return false
	}
	g.triples[t] = struct{}{}
	g.order = append(g.order, t)
	g.out[t.S] = append(g.out[t.S], halfEdge{P: t.P, Other: t.O})
	g.in[t.O] = append(g.in[t.O], halfEdge{P: t.P, Other: t.S})
	g.byPred[t.P] = append(g.byPred[t.P], t)
	return true
}

// AddTerms interns the three terms and inserts the resulting triple.
func (g *Graph) AddTerms(s, p, o Term) Triple {
	t := Triple{S: g.Dict.Encode(s), P: g.Dict.Encode(p), O: g.Dict.Encode(o)}
	g.Add(t)
	return t
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.triples[t]
	return ok
}

// NumTriples returns |E(G)|.
func (g *Graph) NumTriples() int { return len(g.order) }

// NumVertices returns |V(G)| (distinct subjects and objects).
func (g *Graph) NumVertices() int {
	seen := make(map[ID]struct{}, len(g.out)+len(g.in))
	for v := range g.out {
		seen[v] = struct{}{}
	}
	for v := range g.in {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// Triples returns the triples in insertion order. The returned slice is
// owned by the graph and must not be mutated.
func (g *Graph) Triples() []Triple { return g.order }

// Out returns the outgoing (P, O) pairs of vertex s.
func (g *Graph) Out(s ID) []Edge {
	hs := g.out[s]
	es := make([]Edge, len(hs))
	for i, h := range hs {
		es[i] = Edge{P: h.P, Other: h.Other, Out: true}
	}
	return es
}

// In returns the incoming (P, S) pairs of vertex o.
func (g *Graph) In(o ID) []Edge {
	hs := g.in[o]
	es := make([]Edge, len(hs))
	for i, h := range hs {
		es[i] = Edge{P: h.P, Other: h.Other, Out: false}
	}
	return es
}

// Degree returns the total degree (in+out) of v.
func (g *Graph) Degree(v ID) int { return len(g.out[v]) + len(g.in[v]) }

// ByPredicate returns all triples whose property is p. The slice is owned
// by the graph.
func (g *Graph) ByPredicate(p ID) []Triple { return g.byPred[p] }

// PredicateCount returns the number of triples labelled p.
func (g *Graph) PredicateCount(p ID) int { return len(g.byPred[p]) }

// Predicates returns the distinct properties in ascending ID order.
func (g *Graph) Predicates() []ID {
	ps := make([]ID, 0, len(g.byPred))
	for p := range g.byPred {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// Vertices returns the distinct vertices in ascending ID order.
func (g *Graph) Vertices() []ID {
	seen := make(map[ID]struct{}, len(g.out)+len(g.in))
	for v := range g.out {
		seen[v] = struct{}{}
	}
	for v := range g.in {
		seen[v] = struct{}{}
	}
	vs := make([]ID, 0, len(seen))
	for v := range seen {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// TripleString renders a triple with decoded terms.
func (g *Graph) TripleString(t Triple) string {
	return fmt.Sprintf("%s %s %s .", g.Dict.Decode(t.S), g.Dict.Decode(t.P), g.Dict.Decode(t.O))
}

// Clone returns a deep copy of the graph structure sharing the dictionary.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Dict)
	for _, t := range g.order {
		c.Add(t)
	}
	return c
}

// Merge inserts all triples of other into g (dictionaries must be shared).
func (g *Graph) Merge(other *Graph) {
	if other == nil {
		return
	}
	if other.Dict != g.Dict {
		panic("rdf: Merge requires a shared dictionary")
	}
	for _, t := range other.order {
		g.Add(t)
	}
}

// SubgraphByPredicates returns a new graph (sharing the dictionary)
// containing exactly the triples whose property is in keep.
func (g *Graph) SubgraphByPredicates(keep map[ID]bool) *Graph {
	sub := NewGraph(g.Dict)
	for _, t := range g.order {
		if keep[t.P] {
			sub.Add(t)
		}
	}
	return sub
}

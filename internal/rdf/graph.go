package rdf

import (
	"fmt"
	"sort"
	"sync"
)

// Triple is a dictionary-encoded RDF triple 〈subject, property, object〉.
type Triple struct {
	S, P, O ID
}

// String renders the triple with raw IDs; use Graph.TripleString for terms.
func (t Triple) String() string {
	return fmt.Sprintf("(%d %d %d)", t.S, t.P, t.O)
}

// Edge is one directed labelled edge as seen from one endpoint.
type Edge struct {
	P     ID   // property (edge label)
	Other ID   // the vertex on the far end
	Out   bool // true if the edge leaves the vertex owning this adjacency entry
}

// HalfEdge is one adjacency entry: the edge label and the far endpoint.
// The direction is implied by which index (out or in) it came from.
type HalfEdge struct {
	P     ID
	Other ID
}

// DefaultCompactFraction is the auto-compaction threshold: a frozen
// graph folds its delta into the CSR once the delta exceeds this
// fraction of the CSR's triples (see SetAutoCompact).
const DefaultCompactFraction = 0.25

// minCompactDelta is the smallest delta worth compacting automatically;
// below it a rebuild costs more than the merged reads save.
const minCompactDelta = 64

// maxCompactDelta caps the auto-compact threshold in absolute terms.
// Delta inserts are binary-search-and-shift, O(run length) each, so on a
// huge graph a fraction-of-|E| threshold alone would let a skewed update
// stream (every triple sharing one predicate) grow a single sorted run
// to millions of entries and turn the stream quadratic. The cap bounds
// any run — and the per-read merge work — regardless of graph size.
const maxCompactDelta = 1 << 16

// Graph is an in-memory RDF graph (Definition 1): vertices are all subjects
// and objects, directed edges are triples labelled by property.
//
// The graph has two storage modes. While loading it keeps map-of-slices
// indexes (adjacency and per-property), cheap to append to. Freeze
// compiles those into an immutable CSR index — flat adjacency arenas with
// per-vertex offset tables, runs sorted by (P, Other) — which the matcher
// iterates without allocating; the maps are released.
//
// Add on a frozen graph does NOT thaw: the triple lands in a small sorted
// delta side-index (LSM-style) and reads merge the CSR run with the delta
// run, preserving the CSR order. Compact folds the delta back into the
// CSR in one rebuild; it runs automatically once the delta crosses the
// auto-compact threshold, so the delta's per-read merge cost stays
// bounded.
//
// Graph is not safe for concurrent mutation, nor for mutation concurrent
// with reads; concurrent reads are fine between mutations. Layers that
// interleave live updates with queries (internal/serve) serialize the two
// with a reader/writer lock.
type Graph struct {
	Dict *Dict

	triples map[Triple]struct{}
	order   []Triple // insertion order, for deterministic iteration

	// Map-mode indexes; nil while frozen.
	out    map[ID][]HalfEdge // subject -> (P,O)
	in     map[ID][]HalfEdge // object  -> (P,S)
	byPred map[ID][]Triple   // property -> triples

	// frozen is the CSR index; non-nil once Freeze has run. delta holds
	// post-freeze Adds until Compact folds them into a rebuilt CSR.
	frozen *csrIndex
	delta  *deltaIndex

	// autoCompact is the delta/CSR size ratio that triggers Compact from
	// Add; 0 means DefaultCompactFraction, negative disables.
	autoCompact float64
	compactions uint64

	// epoch increments on every successful Add. Derived caches (Stats)
	// compare epochs to decide whether they are stale.
	epoch uint64

	// vertCache memoizes the sorted vertex set; Add invalidates it.
	// Guarded by vertMu so lazy computation is safe under the concurrent
	// readers the matcher runs.
	vertMu    sync.Mutex
	vertCache []ID
}

// NewGraph returns an empty graph sharing the given dictionary. A nil dict
// allocates a fresh one.
func NewGraph(d *Dict) *Graph {
	if d == nil {
		d = NewDict()
	}
	return &Graph{
		Dict:    d,
		triples: make(map[Triple]struct{}),
		out:     make(map[ID][]HalfEdge),
		in:      make(map[ID][]HalfEdge),
		byPred:  make(map[ID][]Triple),
	}
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new. On a frozen graph the triple goes to the delta overlay
// (possibly triggering an auto-compaction) and the graph stays frozen.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.triples[t]; ok {
		return false
	}
	g.triples[t] = struct{}{}
	g.order = append(g.order, t)
	g.epoch++
	if g.frozen != nil {
		if g.delta == nil {
			g.delta = newDeltaIndex()
		}
		g.delta.add(t)
		g.invalidateVertCache()
		if g.shouldCompact() {
			g.Compact()
		}
		return true
	}
	g.out[t.S] = append(g.out[t.S], HalfEdge{P: t.P, Other: t.O})
	g.in[t.O] = append(g.in[t.O], HalfEdge{P: t.P, Other: t.S})
	g.byPred[t.P] = append(g.byPred[t.P], t)
	g.invalidateVertCache()
	return true
}

// AddTerms interns the three terms and inserts the resulting triple.
func (g *Graph) AddTerms(s, p, o Term) Triple {
	t := Triple{S: g.Dict.Encode(s), P: g.Dict.Encode(p), O: g.Dict.Encode(o)}
	g.Add(t)
	return t
}

// Freeze compiles the graph into its immutable CSR form and releases the
// map indexes. Idempotent; call after bulk loading and before issuing
// queries. On an already-frozen graph carrying a delta it compacts, so
// Freeze always leaves a pure CSR behind.
func (g *Graph) Freeze() {
	if g.frozen != nil {
		g.Compact()
		return
	}
	g.frozen = buildCSR(g.order)
	g.out, g.in, g.byPred = nil, nil, nil
	g.vertMu.Lock()
	g.vertCache = g.frozen.verts
	g.vertMu.Unlock()
}

// Frozen reports whether the graph is in CSR mode (possibly carrying a
// delta overlay; see DeltaLen).
func (g *Graph) Frozen() bool { return g.frozen != nil }

// DeltaLen returns the number of post-freeze triples waiting in the delta
// overlay (0 in map mode or right after a compaction).
func (g *Graph) DeltaLen() int {
	if g.delta == nil {
		return 0
	}
	return g.delta.n
}

// Compactions returns how many times the delta has been folded into the
// CSR, by Compact directly or by the auto-compaction threshold.
func (g *Graph) Compactions() uint64 { return g.compactions }

// Epoch returns the graph's mutation counter: it increments on every
// successful Add. Derived caches (Stats) use it to detect staleness.
func (g *Graph) Epoch() uint64 { return g.epoch }

// SetAutoCompact sets the delta/CSR ratio beyond which Add compacts
// automatically. 0 restores DefaultCompactFraction; a negative fraction
// disables auto-compaction (Compact/Freeze still work explicitly).
func (g *Graph) SetAutoCompact(fraction float64) { g.autoCompact = fraction }

func (g *Graph) shouldCompact() bool {
	if g.autoCompact < 0 || g.delta == nil {
		return false
	}
	frac := g.autoCompact
	if frac == 0 {
		frac = DefaultCompactFraction
	}
	base := len(g.order) - g.delta.n
	threshold := int(frac * float64(base))
	if threshold < minCompactDelta {
		threshold = minCompactDelta
	}
	if threshold > maxCompactDelta {
		threshold = maxCompactDelta
	}
	return g.delta.n >= threshold
}

// Compact folds the delta overlay into a freshly rebuilt CSR (one pass
// over the triple list) and drops the delta. No-op in map mode or when
// the delta is empty.
func (g *Graph) Compact() {
	if g.frozen == nil || g.delta == nil {
		return
	}
	g.frozen = buildCSR(g.order)
	g.delta = nil
	g.compactions++
	g.vertMu.Lock()
	g.vertCache = g.frozen.verts
	g.vertMu.Unlock()
}

func (g *Graph) invalidateVertCache() {
	g.vertMu.Lock()
	g.vertCache = nil
	g.vertMu.Unlock()
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.triples[t]
	return ok
}

// NumTriples returns |E(G)|.
func (g *Graph) NumTriples() int { return len(g.order) }

// NumVertices returns |V(G)| (distinct subjects and objects).
func (g *Graph) NumVertices() int { return len(g.Vertices()) }

// Triples returns the triples in insertion order (delta triples included —
// they are the newest suffix). The returned slice is owned by the graph
// and must not be mutated.
func (g *Graph) Triples() []Triple { return g.order }

// OutEdges returns the outgoing (P, Other) adjacency of vertex s. With no
// delta the slice is owned by the graph: zero-copy, do not mutate. When
// the graph is frozen the run is sorted by (P, Other); in map mode it is
// in insertion order. A frozen graph with delta edges at s returns a
// freshly merged (allocated) slice in the same sorted order; the matcher
// avoids that allocation via OutEdges2.
func (g *Graph) OutEdges(s ID) []HalfEdge {
	base, delta := g.OutEdges2(s)
	if len(delta) == 0 {
		return base
	}
	return mergeHalf(base, delta)
}

// InEdges returns the incoming (P, S) adjacency of vertex o, with the
// same ownership and ordering contract as OutEdges.
func (g *Graph) InEdges(o ID) []HalfEdge {
	base, delta := g.InEdges2(o)
	if len(delta) == 0 {
		return base
	}
	return mergeHalf(base, delta)
}

// OutEdges2 is the two-run overlay variant of OutEdges: the base run
// (CSR or map mode) and the delta run, both zero-copy. The delta run is
// nil unless the graph is frozen and carries post-freeze edges at s; both
// runs are then sorted by (P, Other), so a two-way merge reproduces
// exactly the adjacency a rebuilt CSR would serve.
func (g *Graph) OutEdges2(s ID) (base, delta []HalfEdge) {
	if c := g.frozen; c != nil {
		if g.delta != nil {
			delta = g.delta.out[s]
		}
		return c.out(s), delta
	}
	return g.out[s], nil
}

// InEdges2 is OutEdges2 for incoming edges of o.
func (g *Graph) InEdges2(o ID) (base, delta []HalfEdge) {
	if c := g.frozen; c != nil {
		if g.delta != nil {
			delta = g.delta.in[o]
		}
		return c.in(o), delta
	}
	return g.in[o], nil
}

// OutRun returns s's outgoing edges labelled p. On a frozen graph this is
// the contiguous (binary-searched) sub-run and exact is true; in map mode
// it returns the full adjacency with exact false and the caller must
// filter by P. Zero-copy unless a delta run exists for (s, p), in which
// case the result is a freshly merged slice (see OutRun2 for the
// allocation-free form).
func (g *Graph) OutRun(s, p ID) (run []HalfEdge, exact bool) {
	base, delta, exact := g.OutRun2(s, p)
	if len(delta) == 0 {
		return base, exact
	}
	return mergeHalf(base, delta), exact
}

// InRun is OutRun for incoming edges of o.
func (g *Graph) InRun(o, p ID) (run []HalfEdge, exact bool) {
	base, delta, exact := g.InRun2(o, p)
	if len(delta) == 0 {
		return base, exact
	}
	return mergeHalf(base, delta), exact
}

// OutRun2 is the two-run overlay variant of OutRun: the CSR sub-run and
// the delta sub-run for (s, p), both zero-copy and sorted by (P, Other).
// In map mode it returns the full adjacency with exact false (delta nil).
func (g *Graph) OutRun2(s, p ID) (base, delta []HalfEdge, exact bool) {
	if c := g.frozen; c != nil {
		if g.delta != nil {
			delta = predRange(g.delta.out[s], p)
		}
		return predRange(c.out(s), p), delta, true
	}
	return g.out[s], nil, false
}

// InRun2 is OutRun2 for incoming edges of o.
func (g *Graph) InRun2(o, p ID) (base, delta []HalfEdge, exact bool) {
	if c := g.frozen; c != nil {
		if g.delta != nil {
			delta = predRange(g.delta.in[o], p)
		}
		return predRange(c.in(o), p), delta, true
	}
	return g.in[o], nil, false
}

// Out returns the outgoing (P, O) pairs of vertex s as Edge values. It
// allocates; the matcher uses OutEdges2/OutRun2 instead.
func (g *Graph) Out(s ID) []Edge {
	hs := g.OutEdges(s)
	es := make([]Edge, len(hs))
	for i, h := range hs {
		es[i] = Edge{P: h.P, Other: h.Other, Out: true}
	}
	return es
}

// In returns the incoming (P, S) pairs of vertex o as Edge values. It
// allocates; the matcher uses InEdges2/InRun2 instead.
func (g *Graph) In(o ID) []Edge {
	hs := g.InEdges(o)
	es := make([]Edge, len(hs))
	for i, h := range hs {
		es[i] = Edge{P: h.P, Other: h.Other, Out: false}
	}
	return es
}

// OutDegree returns the number of outgoing edges of v, merging CSR and
// delta without materializing either.
func (g *Graph) OutDegree(v ID) int {
	base, delta := g.OutEdges2(v)
	return len(base) + len(delta)
}

// InDegree is OutDegree for incoming edges.
func (g *Graph) InDegree(v ID) int {
	base, delta := g.InEdges2(v)
	return len(base) + len(delta)
}

// Degree returns the total degree (in+out) of v.
func (g *Graph) Degree(v ID) int {
	return g.OutDegree(v) + g.InDegree(v)
}

// OutDegreeP returns the number of outgoing edges of v labelled p: an
// exact (vertex, predicate) selectivity. O(log deg) frozen, O(deg) in map
// mode.
func (g *Graph) OutDegreeP(v, p ID) int {
	base, delta, exact := g.OutRun2(v, p)
	if exact {
		return len(base) + len(delta)
	}
	n := 0
	for _, h := range base {
		if h.P == p {
			n++
		}
	}
	return n
}

// InDegreeP is OutDegreeP for incoming edges.
func (g *Graph) InDegreeP(v, p ID) int {
	base, delta, exact := g.InRun2(v, p)
	if exact {
		return len(base) + len(delta)
	}
	n := 0
	for _, h := range base {
		if h.P == p {
			n++
		}
	}
	return n
}

// ByPredicate returns all triples whose property is p. On a frozen graph
// the run comes from the sorted triple arena (ordered by S then O); in
// map mode it is in insertion order. Zero-copy unless a delta run exists
// for p, in which case the result is a freshly merged slice (see
// ByPredicate2).
func (g *Graph) ByPredicate(p ID) []Triple {
	base, delta := g.ByPredicate2(p)
	if len(delta) == 0 {
		return base
	}
	return mergeTriples(base, delta)
}

// ByPredicate2 is the two-run overlay variant of ByPredicate: the CSR
// arena run and the delta run for p, both zero-copy and sorted by (S, O)
// when frozen. In map mode the delta run is nil and the base run is in
// insertion order.
func (g *Graph) ByPredicate2(p ID) (base, delta []Triple) {
	if c := g.frozen; c != nil {
		if g.delta != nil {
			delta = g.delta.byPred[p]
		}
		return c.pred(p), delta
	}
	return g.byPred[p], nil
}

// PredicateCount returns the number of triples labelled p.
func (g *Graph) PredicateCount(p ID) int {
	base, delta := g.ByPredicate2(p)
	return len(base) + len(delta)
}

// Predicates returns the distinct properties in ascending ID order.
func (g *Graph) Predicates() []ID {
	if c := g.frozen; c != nil {
		if g.delta == nil {
			return c.preds
		}
		return mergeIDs(c.preds, sortedKeysNotIn(g.delta.byPred, func(p ID) bool {
			return len(c.pred(p)) > 0
		}))
	}
	ps := make([]ID, 0, len(g.byPred))
	for p := range g.byPred {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// Vertices returns the distinct vertices in ascending ID order. The slice
// is cached (Add invalidates it) and owned by the graph; do not mutate.
func (g *Graph) Vertices() []ID {
	g.vertMu.Lock()
	defer g.vertMu.Unlock()
	if g.vertCache != nil {
		return g.vertCache
	}
	if c := g.frozen; c != nil {
		if g.delta == nil {
			g.vertCache = c.verts
			return g.vertCache
		}
		seen := make(map[ID]struct{}, 2*g.delta.n)
		for v := range g.delta.out {
			seen[v] = struct{}{}
		}
		for v := range g.delta.in {
			seen[v] = struct{}{}
		}
		extra := make([]ID, 0, len(seen))
		for v := range seen {
			if len(c.out(v)) == 0 && len(c.in(v)) == 0 {
				extra = append(extra, v)
			}
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		g.vertCache = mergeIDs(c.verts, extra)
		return g.vertCache
	}
	seen := make(map[ID]struct{}, len(g.out)+len(g.in))
	for v := range g.out {
		seen[v] = struct{}{}
	}
	for v := range g.in {
		seen[v] = struct{}{}
	}
	vs := make([]ID, 0, len(seen))
	for v := range seen {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	if vs == nil {
		vs = []ID{} // cache the empty result too
	}
	g.vertCache = vs
	return g.vertCache
}

// sortedKeysNotIn collects the map's keys that fail the exclusion test,
// sorted ascending.
func sortedKeysNotIn[V any](m map[ID]V, inBase func(ID) bool) []ID {
	out := make([]ID, 0, len(m))
	for k := range m {
		if !inBase(k) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeIDs merges two sorted, disjoint ID slices. With an empty extra it
// returns base unchanged (zero-copy).
func mergeIDs(base, extra []ID) []ID {
	if len(extra) == 0 {
		return base
	}
	return mergeSorted(base, extra, func(a, b ID) int {
		if a < b {
			return -1
		} else if a > b {
			return 1
		}
		return 0
	})
}

// TripleString renders a triple with decoded terms.
func (g *Graph) TripleString(t Triple) string {
	return fmt.Sprintf("%s %s %s .", g.Dict.Decode(t.S), g.Dict.Decode(t.P), g.Dict.Decode(t.O))
}

// Clone returns a deep copy of the graph structure sharing the dictionary.
// The copy is in map mode regardless of the receiver's mode.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Dict)
	for _, t := range g.order {
		c.Add(t)
	}
	return c
}

// Merge inserts all triples of other into g (dictionaries must be shared).
func (g *Graph) Merge(other *Graph) {
	if other == nil {
		return
	}
	if other.Dict != g.Dict {
		panic("rdf: Merge requires a shared dictionary")
	}
	for _, t := range other.order {
		g.Add(t)
	}
}

// SubgraphByPredicates returns a new graph (sharing the dictionary)
// containing exactly the triples whose property is in keep.
func (g *Graph) SubgraphByPredicates(keep map[ID]bool) *Graph {
	sub := NewGraph(g.Dict)
	for _, t := range g.order {
		if keep[t.P] {
			sub.Add(t)
		}
	}
	return sub
}

package rdf

import "slices"

// csrIndex is the frozen storage engine: the graph compiled into
// compressed-sparse-row form. Adjacency lives in two flat []HalfEdge
// arenas (outgoing grouped by subject, incoming grouped by object), each
// vertex's run sorted by (P, Other) so a constant-predicate lookup on a
// bound endpoint is a binary search to a contiguous sub-run instead of a
// full adjacency scan. Triples additionally live in a per-predicate arena
// sorted by (P, S, O), replacing the byPred map. All lookups return
// subslices of the arenas: zero allocations on the match/join hot path.
//
// The index is immutable; Graph.Add on a frozen graph accumulates in the
// mutable delta side-index (delta.go) instead, and Compact rebuilds this
// index with the delta folded in.
type csrIndex struct {
	n int // ID-space bound: every S/P/O in the graph is < n

	outOff    []uint32   // len n+1; outArena[outOff[v]:outOff[v+1]] = out-edges of v
	inOff     []uint32   // len n+1; inArena[inOff[v]:inOff[v+1]] = in-edges of v
	predOff   []uint32   // len n+1; predArena[predOff[p]:predOff[p+1]] = triples labelled p
	outArena  []HalfEdge // grouped by S, each group sorted by (P, Other)
	inArena   []HalfEdge // grouped by O, each group sorted by (P, Other)
	predArena []Triple   // sorted by (P, S, O)

	preds []ID // distinct predicates, ascending
	verts []ID // distinct vertices (subjects ∪ objects), ascending
}

// buildCSR compiles the triple list. One scratch slice is sorted three
// ways to derive the arenas, so peak extra memory is ~one triple copy.
func buildCSR(order []Triple) *csrIndex {
	n := 0
	for _, t := range order {
		if int(t.S) >= n {
			n = int(t.S) + 1
		}
		if int(t.P) >= n {
			n = int(t.P) + 1
		}
		if int(t.O) >= n {
			n = int(t.O) + 1
		}
	}
	c := &csrIndex{
		n:       n,
		outOff:  make([]uint32, n+1),
		inOff:   make([]uint32, n+1),
		predOff: make([]uint32, n+1),
	}
	scratch := append([]Triple(nil), order...)

	// Out-adjacency: sort by (S, P, O), group by subject.
	slices.SortFunc(scratch, func(a, b Triple) int { return cmp3(a.S, b.S, a.P, b.P, a.O, b.O) })
	c.outArena = make([]HalfEdge, len(scratch))
	for i, t := range scratch {
		c.outArena[i] = HalfEdge{P: t.P, Other: t.O}
		c.outOff[t.S+1]++
	}
	prefixSum(c.outOff)

	// In-adjacency: sort by (O, P, S), group by object.
	slices.SortFunc(scratch, func(a, b Triple) int { return cmp3(a.O, b.O, a.P, b.P, a.S, b.S) })
	c.inArena = make([]HalfEdge, len(scratch))
	for i, t := range scratch {
		c.inArena[i] = HalfEdge{P: t.P, Other: t.S}
		c.inOff[t.O+1]++
	}
	prefixSum(c.inOff)

	// Predicate arena: sort by (P, S, O); the sorted scratch is the arena.
	slices.SortFunc(scratch, func(a, b Triple) int { return cmp3(a.P, b.P, a.S, b.S, a.O, b.O) })
	c.predArena = scratch
	for _, t := range scratch {
		c.predOff[t.P+1]++
	}
	prefixSum(c.predOff)

	for v := 0; v < n; v++ {
		if c.outOff[v+1] > c.outOff[v] || c.inOff[v+1] > c.inOff[v] {
			c.verts = append(c.verts, ID(v))
		}
		if c.predOff[v+1] > c.predOff[v] {
			c.preds = append(c.preds, ID(v))
		}
	}
	return c
}

func cmp3(a1, b1, a2, b2, a3, b3 ID) int {
	switch {
	case a1 != b1:
		return int(a1) - int(b1)
	case a2 != b2:
		return int(a2) - int(b2)
	default:
		return int(a3) - int(b3)
	}
}

func prefixSum(off []uint32) {
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
}

// out returns vertex v's run of the out arena (empty if v is unknown).
func (c *csrIndex) out(v ID) []HalfEdge {
	if int(v) >= c.n {
		return nil
	}
	return c.outArena[c.outOff[v]:c.outOff[v+1]]
}

// in returns vertex v's run of the in arena.
func (c *csrIndex) in(v ID) []HalfEdge {
	if int(v) >= c.n {
		return nil
	}
	return c.inArena[c.inOff[v]:c.inOff[v+1]]
}

// pred returns predicate p's run of the triple arena.
func (c *csrIndex) pred(p ID) []Triple {
	if int(p) >= c.n {
		return nil
	}
	return c.predArena[c.predOff[p]:c.predOff[p+1]]
}

// predRange narrows a (P, Other)-sorted adjacency run to the contiguous
// sub-run labelled p via two hand-rolled binary searches (no closures, so
// the hot path stays allocation-free).
func predRange(hs []HalfEdge, p ID) []HalfEdge {
	lo, hi := 0, len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid].P < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	hi = len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid].P <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return hs[start:lo]
}

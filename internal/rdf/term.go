// Package rdf implements the RDF data model used throughout the repository:
// terms, dictionary encoding, triples and an in-memory indexed RDF graph
// (Definition 1 of the paper). All strings are interned through a Dict so
// the rest of the system works on dense integer IDs.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind classifies an RDF term.
type TermKind uint8

const (
	// IRI is an absolute or prefixed IRI reference, e.g. <http://ex/a>.
	IRI TermKind = iota
	// Literal is an RDF literal, e.g. "Aristotle" (datatype/lang folded in).
	Literal
	// Blank is a blank node, e.g. _:b1.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	}
	return fmt.Sprintf("TermKind(%d)", uint8(k))
}

// Term is a single RDF term. Value holds the lexical form without
// surrounding syntax markers (no angle brackets, no quotes).
type Term struct {
	Kind  TermKind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewBlank returns a blank-node term.
func NewBlank(v string) Term { return Term{Kind: Blank, Value: v} }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Literal:
		return `"` + escapeLiteral(t.Value) + `"`
	case Blank:
		return "_:" + t.Value
	}
	return t.Value
}

// Key returns a string that uniquely identifies the term across kinds,
// suitable for dictionary interning. IRIs and literals with identical
// lexical forms must not collide.
func (t Term) Key() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value
	case Literal:
		return `"` + t.Value
	case Blank:
		return "_" + t.Value
	}
	return t.Value
}

// TermFromKey reverses Term.Key.
func TermFromKey(k string) (Term, error) {
	if k == "" {
		return Term{}, fmt.Errorf("rdf: empty term key")
	}
	switch k[0] {
	case '<':
		return NewIRI(k[1:]), nil
	case '"':
		return NewLiteral(k[1:]), nil
	case '_':
		return NewBlank(k[1:]), nil
	}
	return Term{}, fmt.Errorf("rdf: malformed term key %q", k)
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func unescapeLiteral(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

package rdf

import (
	"sync"
	"sync/atomic"
)

// Stats caches per-predicate statistics of a graph: triple counts and
// distinct subject/object counts. The cost models use these to estimate
// constant selectivities (a triple pattern with a bound object matches
// count/distinctObjects triples on average). Computation is lazy and
// epoch-aware: the cache rebuilds on first use after any mutation
// (Graph.Epoch), so live updates through the delta overlay cannot leave
// stale cardinalities behind.
type Stats struct {
	g *Graph

	// built is 1 + the graph epoch the cache was computed at (0 = never):
	// concurrent planners take only the read path while it matches the
	// graph's current epoch. Mutations are externally serialized against
	// reads (the graph's concurrency contract), so the epoch cannot move
	// during a read window.
	built   atomic.Uint64
	mu      sync.RWMutex
	perPred map[ID]PredStats
}

// PredStats summarizes one property.
type PredStats struct {
	Count            int
	DistinctSubjects int
	DistinctObjects  int
}

// NewStats wraps a graph; computation happens lazily on first use.
func NewStats(g *Graph) *Stats { return &Stats{g: g} }

func (s *Stats) compute() {
	s.perPred = make(map[ID]PredStats)
	for _, p := range s.g.Predicates() {
		subs := make(map[ID]struct{})
		objs := make(map[ID]struct{})
		count := 0
		base, delta := s.g.ByPredicate2(p)
		for _, run := range [][]Triple{base, delta} {
			for _, t := range run {
				subs[t.S] = struct{}{}
				objs[t.O] = struct{}{}
			}
			count += len(run)
		}
		s.perPred[p] = PredStats{
			Count:            count,
			DistinctSubjects: len(subs),
			DistinctObjects:  len(objs),
		}
	}
}

// Predicate returns the statistics for property p (zero value if absent).
// The cache recomputes when the graph has mutated since the last call;
// fresh-cache lookups contend only on a read lock.
func (s *Stats) Predicate(p ID) PredStats {
	want := s.g.Epoch() + 1
	if s.built.Load() == want {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.perPred[p]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.built.Load() != want { // lost the recompute race: already fresh
		s.compute()
		s.built.Store(want)
	}
	return s.perPred[p]
}

// EstimateTriplePattern estimates the matches of a single triple pattern
// with optional bound endpoints: count scaled by 1/distinct per bound
// side. Always at least 1 when the predicate exists.
func (s *Stats) EstimateTriplePattern(p ID, subjectBound, objectBound bool) int {
	ps := s.Predicate(p)
	if ps.Count == 0 {
		return 0
	}
	est := float64(ps.Count)
	if subjectBound && ps.DistinctSubjects > 0 {
		est /= float64(ps.DistinctSubjects)
	}
	if objectBound && ps.DistinctObjects > 0 {
		est /= float64(ps.DistinctObjects)
	}
	if est < 1 {
		est = 1
	}
	return int(est)
}

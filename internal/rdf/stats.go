package rdf

import "sync"

// Stats caches per-predicate statistics of a graph: triple counts and
// distinct subject/object counts. The cost models use these to estimate
// constant selectivities (a triple pattern with a bound object matches
// count/distinctObjects triples on average).
//
// Refresh is incremental: the cache keeps persistent per-predicate
// aggregates (count plus distinct-subject/object sets) and a high-water
// mark of how many insertion-order triples have been folded in. A
// lookup that finds new triples folds only that suffix — O(new), not
// O(|E|) — which is what makes planning affordable under a live update
// stream. Because the graph is append-only and a compaction changes
// representation but not content, the insertion-order prefix length IS
// the cache key: a (generation, delta length) snapshot cut corresponds
// to exactly one prefix length, so folded-to-length stats are
// snapshot-consistent for every view at that cut. Safe for concurrent
// readers racing the single writer on a frozen graph: the visible
// length and order prefix are read through the graph's published
// atomics.
type Stats struct {
	g *Graph

	mu      sync.RWMutex
	folded  int // order-prefix triples folded into the aggregates
	perPred map[ID]*predAgg
}

// predAgg is the persistent aggregate for one predicate.
type predAgg struct {
	count int
	subs  map[ID]struct{}
	objs  map[ID]struct{}
}

// PredStats summarizes one property.
type PredStats struct {
	Count            int
	DistinctSubjects int
	DistinctObjects  int
}

// NewStats wraps a graph; computation happens lazily on first use.
func NewStats(g *Graph) *Stats {
	return &Stats{g: g, perPred: make(map[ID]*predAgg)}
}

// Predicate returns the statistics for property p (zero value if absent).
// New triples since the last call are folded in incrementally;
// fresh-cache lookups contend only on a read lock.
func (s *Stats) Predicate(p ID) PredStats {
	target := s.g.visibleLen()
	s.mu.RLock()
	if s.folded >= target {
		ps := s.read(p)
		s.mu.RUnlock()
		return ps
	}
	s.mu.RUnlock()

	s.mu.Lock()
	if s.folded < target { // lost the fold race: already fresh
		for _, t := range s.g.orderPrefix(target)[s.folded:] {
			agg := s.perPred[t.P]
			if agg == nil {
				agg = &predAgg{subs: make(map[ID]struct{}), objs: make(map[ID]struct{})}
				s.perPred[t.P] = agg
			}
			agg.count++
			agg.subs[t.S] = struct{}{}
			agg.objs[t.O] = struct{}{}
		}
		s.folded = target
	}
	ps := s.read(p)
	s.mu.Unlock()
	return ps
}

// read assembles the exported numbers for p; caller holds a lock.
func (s *Stats) read(p ID) PredStats {
	agg := s.perPred[p]
	if agg == nil {
		return PredStats{}
	}
	return PredStats{
		Count:            agg.count,
		DistinctSubjects: len(agg.subs),
		DistinctObjects:  len(agg.objs),
	}
}

// EstimateTriplePattern estimates the matches of a single triple pattern
// with optional bound endpoints: count scaled by 1/distinct per bound
// side. Always at least 1 when the predicate exists.
func (s *Stats) EstimateTriplePattern(p ID, subjectBound, objectBound bool) int {
	ps := s.Predicate(p)
	if ps.Count == 0 {
		return 0
	}
	est := float64(ps.Count)
	if subjectBound && ps.DistinctSubjects > 0 {
		est /= float64(ps.DistinctSubjects)
	}
	if objectBound && ps.DistinctObjects > 0 {
		est /= float64(ps.DistinctObjects)
	}
	if est < 1 {
		est = 1
	}
	return int(est)
}

package rdf

import "sync"

// Stats caches per-predicate statistics of a graph: triple counts and
// distinct subject/object counts. The cost models use these to estimate
// constant selectivities (a triple pattern with a bound object matches
// count/distinctObjects triples on average). Build once after loading;
// the underlying graph must not change afterwards.
type Stats struct {
	g    *Graph
	once sync.Once

	perPred map[ID]PredStats
}

// PredStats summarizes one property.
type PredStats struct {
	Count            int
	DistinctSubjects int
	DistinctObjects  int
}

// NewStats wraps a graph; computation happens lazily on first use.
func NewStats(g *Graph) *Stats { return &Stats{g: g} }

func (s *Stats) compute() {
	s.perPred = make(map[ID]PredStats)
	for _, p := range s.g.Predicates() {
		subs := make(map[ID]struct{})
		objs := make(map[ID]struct{})
		ts := s.g.ByPredicate(p)
		for _, t := range ts {
			subs[t.S] = struct{}{}
			objs[t.O] = struct{}{}
		}
		s.perPred[p] = PredStats{
			Count:            len(ts),
			DistinctSubjects: len(subs),
			DistinctObjects:  len(objs),
		}
	}
}

// Predicate returns the statistics for property p (zero value if absent).
func (s *Stats) Predicate(p ID) PredStats {
	s.once.Do(s.compute)
	return s.perPred[p]
}

// EstimateTriplePattern estimates the matches of a single triple pattern
// with optional bound endpoints: count scaled by 1/distinct per bound
// side. Always at least 1 when the predicate exists.
func (s *Stats) EstimateTriplePattern(p ID, subjectBound, objectBound bool) int {
	ps := s.Predicate(p)
	if ps.Count == 0 {
		return 0
	}
	est := float64(ps.Count)
	if subjectBound && ps.DistinctSubjects > 0 {
		est /= float64(ps.DistinctSubjects)
	}
	if objectBound && ps.DistinctObjects > 0 {
		est /= float64(ps.DistinctObjects)
	}
	if est < 1 {
		est = 1
	}
	return int(est)
}

package rdf

import "sync"

// Stats caches per-predicate statistics of a graph: triple counts and
// distinct subject/object counts. The cost models use these to estimate
// constant selectivities (a triple pattern with a bound object matches
// count/distinctObjects triples on average).
//
// Refresh is incremental within a CSR generation: the cache keeps
// persistent per-predicate aggregates (count plus refcounted
// distinct-subject/object maps) keyed by the generation id, folds the
// generation's base order once, and then folds only the delta op-log
// suffix on later lookups — O(new ops), not O(|E|). Delete ops
// decrement the refcounts, so distinct counts shrink exactly when the
// last triple carrying a subject/object under a predicate goes away. A
// compaction starts a new generation (its order list may have been
// rewritten to fold tombstones), which resets the cache and refolds;
// compactions are rare enough that the amortized cost stays negligible.
// Safe for concurrent readers racing the single writer on a frozen
// graph: every input is read through the generation's published
// atomics. Map-mode graphs refold fully when the epoch moves (the old
// no-readers-during-mutation contract).
type Stats struct {
	g *Graph

	mu        sync.RWMutex
	mapMode   bool
	foldedGen uint64 // CSR generation the aggregates cover (0 = none)
	foldedOps int    // delta ops of that generation folded in
	foldedEp  uint64 // map mode: graph epoch covered
	perPred   map[ID]*predAgg
}

// predAgg is the persistent aggregate for one predicate. The maps count
// how many live triples of this predicate carry each subject/object, so
// deletes can retire a distinct value exactly when its count reaches 0.
type predAgg struct {
	count int
	subs  map[ID]int
	objs  map[ID]int
}

// PredStats summarizes one property.
type PredStats struct {
	Count            int
	DistinctSubjects int
	DistinctObjects  int
}

// NewStats wraps a graph; computation happens lazily on first use.
func NewStats(g *Graph) *Stats {
	return &Stats{g: g, perPred: make(map[ID]*predAgg)}
}

// Predicate returns the statistics for property p (zero value if absent).
// New ops since the last call are folded in incrementally; fresh-cache
// lookups contend only on a read lock.
func (s *Stats) Predicate(p ID) PredStats {
	gen := s.g.gen.Load()
	if gen == nil {
		return s.predicateMap(p)
	}
	n := int(gen.delta.n.Load())
	s.mu.RLock()
	if !s.mapMode && s.foldedGen == gen.id && s.foldedOps >= n {
		ps := s.read(p)
		s.mu.RUnlock()
		return ps
	}
	s.mu.RUnlock()

	s.mu.Lock()
	if s.mapMode || s.foldedGen != gen.id {
		s.perPred = make(map[ID]*predAgg)
		for _, t := range (*gen.ord.Load())[:gen.base] {
			s.foldAdd(t)
		}
		s.mapMode = false
		s.foldedGen = gen.id
		s.foldedOps = 0
	}
	if n > s.foldedOps {
		ops := (*gen.delta.opsHdr.Load())[:n]
		for _, op := range ops[s.foldedOps:] {
			if op.Del {
				s.foldDel(op.T)
			} else {
				s.foldAdd(op.T)
			}
		}
		s.foldedOps = n
	}
	ps := s.read(p)
	s.mu.Unlock()
	return ps
}

// predicateMap is the map-mode path: refold everything when the epoch
// moved (map-mode mutation splices in place, so there is no stable
// suffix to fold incrementally).
func (s *Stats) predicateMap(p ID) PredStats {
	epoch := s.g.epoch.Load()
	s.mu.RLock()
	if s.mapMode && s.foldedEp == epoch {
		ps := s.read(p)
		s.mu.RUnlock()
		return ps
	}
	s.mu.RUnlock()

	s.mu.Lock()
	if !s.mapMode || s.foldedEp != epoch {
		s.perPred = make(map[ID]*predAgg)
		for _, t := range s.g.order {
			s.foldAdd(t)
		}
		s.mapMode = true
		s.foldedEp = epoch
		s.foldedGen = 0
		s.foldedOps = 0
	}
	ps := s.read(p)
	s.mu.Unlock()
	return ps
}

// foldAdd folds one live triple into the aggregates; caller holds mu.
func (s *Stats) foldAdd(t Triple) {
	agg := s.perPred[t.P]
	if agg == nil {
		agg = &predAgg{subs: make(map[ID]int), objs: make(map[ID]int)}
		s.perPred[t.P] = agg
	}
	agg.count++
	agg.subs[t.S]++
	agg.objs[t.O]++
}

// foldDel undoes foldAdd for one deleted triple; caller holds mu.
func (s *Stats) foldDel(t Triple) {
	agg := s.perPred[t.P]
	if agg == nil {
		return
	}
	agg.count--
	if agg.subs[t.S]--; agg.subs[t.S] == 0 {
		delete(agg.subs, t.S)
	}
	if agg.objs[t.O]--; agg.objs[t.O] == 0 {
		delete(agg.objs, t.O)
	}
}

// read assembles the exported numbers for p; caller holds a lock.
func (s *Stats) read(p ID) PredStats {
	agg := s.perPred[p]
	if agg == nil {
		return PredStats{}
	}
	return PredStats{
		Count:            agg.count,
		DistinctSubjects: len(agg.subs),
		DistinctObjects:  len(agg.objs),
	}
}

// EstimateTriplePattern estimates the matches of a single triple pattern
// with optional bound endpoints: count scaled by 1/distinct per bound
// side. Always at least 1 when the predicate exists.
func (s *Stats) EstimateTriplePattern(p ID, subjectBound, objectBound bool) int {
	ps := s.Predicate(p)
	if ps.Count == 0 {
		return 0
	}
	est := float64(ps.Count)
	if subjectBound && ps.DistinctSubjects > 0 {
		est /= float64(ps.DistinctSubjects)
	}
	if objectBound && ps.DistinctObjects > 0 {
		est /= float64(ps.DistinctObjects)
	}
	if est < 1 {
		est = 1
	}
	return int(est)
}

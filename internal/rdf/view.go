package rdf

import (
	"sync"
	"sync/atomic"
)

// ViewSource publishes batch-atomic read views over a set of graphs
// (the deployment's global graph, hot/cold split and fragment graphs).
// The single writer calls Publish after each update batch, capturing a
// consistent (generation, delta length) cut of every registered graph;
// queries call Acquire to pin the latest published view lock-free. This
// is what makes a multi-graph query see either all or none of a batch's
// triples, the atomicity the old data lock provided — without the lock.
type ViewSource struct {
	mu     sync.Mutex // guards graphs and Publish/Register (writer-side)
	graphs []*Graph
	cur    atomic.Pointer[View]
}

// View is one published cut: an immutable per-graph snapshot vector.
// Views are shared by every handle acquired from them; pin accounting
// happens per handle, so the snapshots themselves are unpinned.
type View struct {
	snaps map[*Graph]*Snapshot
}

// ViewHandle is one query's lease on a View. Close releases the
// generation pins; the handle and its snapshots stay readable after
// Close (pins are observability, not lifetime — the GC owns memory),
// but well-behaved callers Close exactly once when the query finishes.
type ViewHandle struct {
	v      *View
	closed atomic.Bool
}

// NewViewSource returns an empty source; Register graphs, then Publish.
func NewViewSource() *ViewSource { return &ViewSource{} }

// Register adds a graph to the view set and republishes so the next
// Acquire sees it. Writer-side (serialized with Publish and updates).
func (vs *ViewSource) Register(g *Graph) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	for _, have := range vs.graphs {
		if have == g {
			vs.publishLocked()
			return
		}
	}
	vs.graphs = append(vs.graphs, g)
	vs.publishLocked()
}

// Publish captures the current cut of every registered graph as the new
// view. Writer-side: call after an update batch is fully applied, never
// mid-batch.
func (vs *ViewSource) Publish() {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.publishLocked()
}

func (vs *ViewSource) publishLocked() {
	snaps := make(map[*Graph]*Snapshot, len(vs.graphs))
	for _, g := range vs.graphs {
		snaps[g] = g.snapshotAt()
	}
	vs.cur.Store(&View{snaps: snaps})
}

// Acquire pins the latest published view. Lock-free: it never contends
// with the writer, and the writer never waits for it. Close the handle
// when the query finishes. Acquire on a source that never published
// returns an empty handle whose Snap falls back to live snapshots.
func (vs *ViewSource) Acquire() *ViewHandle {
	v := vs.cur.Load()
	if v == nil {
		return &ViewHandle{}
	}
	for _, s := range v.snaps {
		if s.gen != nil {
			s.gen.pins.Add(1)
		}
	}
	return &ViewHandle{v: v}
}

// Snap returns the view's pinned snapshot of g. A graph outside the
// view (registered after this view was published) falls back to an
// unpinned snapshot of its current state — consistent per graph, just
// not part of the batch cut.
func (h *ViewHandle) Snap(g *Graph) *Snapshot {
	if h != nil && h.v != nil {
		if s, ok := h.v.snaps[g]; ok {
			return s
		}
	}
	return g.snapshotAt()
}

// Close releases the handle's generation pins. Idempotent; nil-safe.
func (h *ViewHandle) Close() {
	if h == nil || h.v == nil || h.closed.Swap(true) {
		return
	}
	for _, s := range h.v.snaps {
		if s.gen != nil {
			s.gen.pins.Add(-1)
			s.g.pruneRetired()
		}
	}
}

// Generations sums LiveGenerations over the registered graphs — the
// /metrics gauge for how many CSR builds are still alive.
func (vs *ViewSource) Generations() int {
	vs.mu.Lock()
	graphs := append([]*Graph(nil), vs.graphs...)
	vs.mu.Unlock()
	n := 0
	for _, g := range graphs {
		n += g.LiveGenerations()
	}
	return n
}

// PinnedSnapshots sums the pinned-snapshot gauge over the registered
// graphs.
func (vs *ViewSource) PinnedSnapshots() int {
	vs.mu.Lock()
	graphs := append([]*Graph(nil), vs.graphs...)
	vs.mu.Unlock()
	n := 0
	for _, g := range graphs {
		n += g.PinnedSnapshots()
	}
	return n
}

package rdf

import (
	"slices"
	"sync"
	"sync/atomic"
)

// DeltaHalf is one adjacency entry of a generation's delta overlay: the
// half-edge plus the sequence number of the triple that produced it
// (its 0-based position in the generation's append order). Snapshots pin
// a delta length n and treat entries with Seq >= n as invisible, so a
// writer appending mid-query never changes what a pinned reader sees.
type DeltaHalf struct {
	H   HalfEdge
	Seq uint32
}

// DeltaTriple is DeltaHalf for the per-predicate triple runs.
type DeltaTriple struct {
	T   Triple
	Seq uint32
}

// genDelta is the mutable side of one CSR generation: post-freeze Adds
// accumulate here instead of thawing the CSR, LSM-style. Each per-vertex
// run is kept sorted by (P, Other) and each per-predicate run by (S, O) —
// the same orders the CSR arenas use — so read paths can two-way merge a
// CSR run with its delta run and produce exactly the sequence a freshly
// rebuilt CSR would serve.
//
// The index is single-writer, many-reader. Runs are immutable once
// published: the writer inserts copy-on-write (load the run, build a new
// slice with the entry spliced in, store it back), so a reader holding a
// run can iterate it while the writer publishes successors. Run stores
// happen before the length counter's increment, so a reader that loads
// n is guaranteed to find every entry with Seq < n in the runs it loads
// afterwards; entries beyond its n it filters by Seq.
type genDelta struct {
	n      atomic.Int64 // published delta length (triples fully indexed)
	out    sync.Map     // ID -> []DeltaHalf, sorted by (P, Other)
	in     sync.Map     // ID -> []DeltaHalf, sorted by (P, Other)
	byPred sync.Map     // ID -> []DeltaTriple, sorted by (S, O)
}

// CompareHalf orders adjacency entries by (P, Other) — the CSR run order.
func CompareHalf(a, b HalfEdge) int {
	if a.P != b.P {
		return int(a.P) - int(b.P)
	}
	return int(a.Other) - int(b.Other)
}

// CompareSO orders same-predicate triples by (S, O) — the predicate
// arena's within-run order.
func CompareSO(a, b Triple) int {
	if a.S != b.S {
		return int(a.S) - int(b.S)
	}
	return int(a.O) - int(b.O)
}

// add indexes one (already deduplicated) triple under sequence number
// seq, keeping every run sorted. Writer-only; the caller publishes the
// triple to readers afterwards by incrementing n.
func (d *genDelta) add(t Triple, seq uint32) {
	d.out.Store(t.S, insertDeltaHalf(loadHalfRun(&d.out, t.S), DeltaHalf{H: HalfEdge{P: t.P, Other: t.O}, Seq: seq}))
	d.in.Store(t.O, insertDeltaHalf(loadHalfRun(&d.in, t.O), DeltaHalf{H: HalfEdge{P: t.P, Other: t.S}, Seq: seq}))
	run := loadTripleRun(&d.byPred, t.P)
	i, _ := slices.BinarySearchFunc(run, t, func(a DeltaTriple, b Triple) int { return CompareSO(a.T, b) })
	d.byPred.Store(t.P, insertAt(run, i, DeltaTriple{T: t, Seq: seq}))
}

func loadHalfRun(m *sync.Map, k ID) []DeltaHalf {
	if v, ok := m.Load(k); ok {
		return v.([]DeltaHalf)
	}
	return nil
}

func loadTripleRun(m *sync.Map, k ID) []DeltaTriple {
	if v, ok := m.Load(k); ok {
		return v.([]DeltaTriple)
	}
	return nil
}

func insertDeltaHalf(run []DeltaHalf, dh DeltaHalf) []DeltaHalf {
	i, _ := slices.BinarySearchFunc(run, dh.H, func(a DeltaHalf, b HalfEdge) int { return CompareHalf(a.H, b) })
	return insertAt(run, i, dh)
}

// insertAt splices v into run at i. Readers may hold the old run
// header, so no element below len(run) is ever moved or overwritten:
// mid-run inserts copy into a fresh slice (with capacity headroom so
// future inserts can use the fast path). The one safe in-place case is
// an end-insert into spare capacity — the write lands one past every
// published header's length, invisible to readers until the new header
// is stored — which makes sorted streams of ascending keys (fresh dict
// IDs are monotone) amortized O(1) instead of a full copy per Add.
func insertAt[T any](run []T, i int, v T) []T {
	if i == len(run) && cap(run) > len(run) {
		return append(run, v)
	}
	out := make([]T, 0, 2*(len(run)+1))
	out = append(out, run[:i]...)
	out = append(out, v)
	return append(out, run[i:]...)
}

// predRangeDeltaHalf narrows a (P, Other)-sorted delta run to the
// contiguous sub-run labelled p (the DeltaHalf analogue of predRange).
func predRangeDeltaHalf(hs []DeltaHalf, p ID) []DeltaHalf {
	lo, hi := 0, len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid].H.P < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	hi = len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid].H.P <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return hs[start:lo]
}

// mergeSorted interleaves two sorted runs into one allocated slice,
// preferring base on ties (ties cannot occur between a CSR run and its
// delta — a triple lives in exactly one of the two). It backs the
// allocating single-slice snapshot accessors and the vertex/predicate
// set merges; the hot path merges inline in the match cursor instead.
func mergeSorted[T any](base, delta []T, cmp func(T, T) int) []T {
	out := make([]T, 0, len(base)+len(delta))
	i, j := 0, 0
	for i < len(base) && j < len(delta) {
		if cmp(delta[j], base[i]) < 0 {
			out = append(out, delta[j])
			j++
		} else {
			out = append(out, base[i])
			i++
		}
	}
	out = append(out, base[i:]...)
	return append(out, delta[j:]...)
}

// visibleHalf filters a delta adjacency run down to the entries a
// snapshot with visibility bound n sees, as bare half-edges. Allocates
// only when the run carries invisible entries.
func visibleHalf(run []DeltaHalf, bound uint32) []HalfEdge {
	hs := make([]HalfEdge, 0, len(run))
	for _, dh := range run {
		if dh.Seq < bound {
			hs = append(hs, dh.H)
		}
	}
	return hs
}

// visibleTriples is visibleHalf for per-predicate delta runs.
func visibleTriples(run []DeltaTriple, bound uint32) []Triple {
	ts := make([]Triple, 0, len(run))
	for _, dt := range run {
		if dt.Seq < bound {
			ts = append(ts, dt.T)
		}
	}
	return ts
}

// countVisibleHalf counts the entries of a delta run visible at bound.
func countVisibleHalf(run []DeltaHalf, bound uint32) int {
	n := 0
	for _, dh := range run {
		if dh.Seq < bound {
			n++
		}
	}
	return n
}

// countVisibleTriples is countVisibleHalf for per-predicate runs.
func countVisibleTriples(run []DeltaTriple, bound uint32) int {
	n := 0
	for _, dt := range run {
		if dt.Seq < bound {
			n++
		}
	}
	return n
}

// mergeHalf merges a CSR adjacency run and a filtered delta run in
// (P, Other) order.
func mergeHalf(base, delta []HalfEdge) []HalfEdge {
	return mergeSorted(base, delta, CompareHalf)
}

// mergeTriples merges a predicate arena run and its filtered delta run
// in (S, O) order.
func mergeTriples(base, delta []Triple) []Triple {
	return mergeSorted(base, delta, CompareSO)
}

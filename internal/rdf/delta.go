package rdf

import "slices"

// deltaIndex is the mutable side-index of a frozen graph: post-freeze
// Adds accumulate here instead of thawing the CSR, LSM-style. Each
// per-vertex run is kept sorted by (P, Other) and each per-predicate run
// by (S, O) — the same orders the CSR arenas use — so read paths can
// two-way merge a CSR run with its delta run and produce exactly the
// sequence a freshly rebuilt CSR would serve. Inserts are
// binary-search-and-shift, O(run) per triple; runs stay small because the
// graph compacts the delta into the CSR once it crosses the auto-compact
// threshold (Graph.SetAutoCompact).
//
// The index is not safe for mutation concurrent with reads; callers that
// interleave updates and queries (internal/serve) serialize them with a
// reader/writer lock.
type deltaIndex struct {
	n      int               // triples in the delta
	out    map[ID][]HalfEdge // subject -> (P,O), sorted by (P, Other)
	in     map[ID][]HalfEdge // object  -> (P,S), sorted by (P, Other)
	byPred map[ID][]Triple   // property -> triples, sorted by (S, O)
}

func newDeltaIndex() *deltaIndex {
	return &deltaIndex{
		out:    make(map[ID][]HalfEdge),
		in:     make(map[ID][]HalfEdge),
		byPred: make(map[ID][]Triple),
	}
}

// CompareHalf orders adjacency entries by (P, Other) — the CSR run order.
func CompareHalf(a, b HalfEdge) int {
	if a.P != b.P {
		return int(a.P) - int(b.P)
	}
	return int(a.Other) - int(b.Other)
}

// CompareSO orders same-predicate triples by (S, O) — the predicate arena's
// within-run order.
func CompareSO(a, b Triple) int {
	if a.S != b.S {
		return int(a.S) - int(b.S)
	}
	return int(a.O) - int(b.O)
}

// add inserts one (already deduplicated) triple, keeping every run sorted.
func (d *deltaIndex) add(t Triple) {
	d.n++
	d.out[t.S] = insertHalf(d.out[t.S], HalfEdge{P: t.P, Other: t.O})
	d.in[t.O] = insertHalf(d.in[t.O], HalfEdge{P: t.P, Other: t.S})
	run := d.byPred[t.P]
	i, _ := slices.BinarySearchFunc(run, t, CompareSO)
	d.byPred[t.P] = slices.Insert(run, i, t)
}

func insertHalf(run []HalfEdge, h HalfEdge) []HalfEdge {
	i, _ := slices.BinarySearchFunc(run, h, CompareHalf)
	return slices.Insert(run, i, h)
}

// mergeSorted interleaves two sorted runs into one allocated slice,
// preferring base on ties (ties cannot occur between a CSR run and its
// delta — a triple lives in exactly one of the two). It backs the legacy
// single-slice accessors and the vertex/predicate set merges; the hot
// path merges inline in the match cursor instead.
func mergeSorted[T any](base, delta []T, cmp func(T, T) int) []T {
	out := make([]T, 0, len(base)+len(delta))
	i, j := 0, 0
	for i < len(base) && j < len(delta) {
		if cmp(delta[j], base[i]) < 0 {
			out = append(out, delta[j])
			j++
		} else {
			out = append(out, base[i])
			i++
		}
	}
	out = append(out, base[i:]...)
	return append(out, delta[j:]...)
}

// mergeHalf merges a CSR adjacency run and a delta run in (P, Other)
// order.
func mergeHalf(base, delta []HalfEdge) []HalfEdge {
	return mergeSorted(base, delta, CompareHalf)
}

// mergeTriples merges a predicate arena run and its delta run in (S, O)
// order.
func mergeTriples(base, delta []Triple) []Triple {
	return mergeSorted(base, delta, CompareSO)
}

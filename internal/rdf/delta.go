package rdf

import (
	"slices"
	"sync"
	"sync/atomic"
)

// DeltaHalf is one adjacency entry of a generation's delta overlay: the
// half-edge plus the sequence number of the triple that produced it
// (its 0-based position in the generation's append order). Snapshots pin
// a delta length n and treat entries with Seq >= n as invisible, so a
// writer appending mid-query never changes what a pinned reader sees.
type DeltaHalf struct {
	H   HalfEdge
	Seq uint32
}

// DeltaTriple is DeltaHalf for the per-predicate triple runs.
type DeltaTriple struct {
	T   Triple
	Seq uint32
}

// deltaOp is one entry of a generation's operation log: the triple, the
// running add count through this op (so a reader can turn an op-window
// length into an order-prefix length in O(1)), and whether the op is a
// delete. The op at index i has sequence number i — the same space the
// runs' Seq fields index into.
type deltaOp struct {
	T    Triple
	Adds uint32 // adds among ops[0..i] inclusive
	Del  bool
}

// genDelta is the mutable side of one CSR generation: post-freeze Adds
// and Deletes accumulate here instead of thawing the CSR, LSM-style.
// Inserts land in the out/in/byPred runs, deletes land as tombstones in
// the tombOut/tombIn/tombByPred side-runs with the same sort discipline.
// Each per-vertex run is kept sorted by (P, Other) and each
// per-predicate run by (S, O) — the same orders the CSR arenas use — so
// read paths can merge a CSR run with its delta runs and produce exactly
// the sequence a freshly rebuilt CSR would serve.
//
// The index is single-writer, many-reader. Runs are immutable once
// published: the writer inserts copy-on-write (load the run, build a new
// slice with the entry spliced in, store it back), so a reader holding a
// run can iterate it while the writer publishes successors. Run stores
// happen before the length counter's increment, so a reader that loads
// n is guaranteed to find every entry with Seq < n in the runs it loads
// afterwards; entries beyond its n it filters by Seq.
//
// Per-triple visibility is latest-op-wins: within one key, the highest
// visible insert seq vs the highest visible tombstone seq decides (the
// writer's Add/Delete preconditions guarantee the two alternate, so the
// comparison is total). dels is a published hint — a reader that loads
// n and then reads dels == 0 knows no tombstone can be visible at its
// bound and takes the insert-only fast paths unchanged.
type genDelta struct {
	n      atomic.Int64 // published delta length (ops fully indexed)
	dels   atomic.Int64 // published tombstone count (0 = insert-only so far)
	out    sync.Map     // ID -> []DeltaHalf, sorted by (P, Other)
	in     sync.Map     // ID -> []DeltaHalf, sorted by (P, Other)
	byPred sync.Map     // ID -> []DeltaTriple, sorted by (S, O)

	tombOut    sync.Map // ID -> []DeltaHalf tombstones, sorted by (P, Other)
	tombIn     sync.Map // ID -> []DeltaHalf tombstones, sorted by (P, Other)
	tombByPred sync.Map // ID -> []DeltaTriple tombstones, sorted by (S, O)

	// ops is the writer-owned operation log; opsHdr republishes its
	// header after every append (before n increments), so a reader with
	// bound n can slice ops[:n] and replay its exact visibility window.
	ops    []deltaOp
	opsHdr atomic.Pointer[[]deltaOp]
}

// CompareHalf orders adjacency entries by (P, Other) — the CSR run order.
func CompareHalf(a, b HalfEdge) int {
	if a.P != b.P {
		return int(a.P) - int(b.P)
	}
	return int(a.Other) - int(b.Other)
}

// CompareSO orders same-predicate triples by (S, O) — the predicate
// arena's within-run order.
func CompareSO(a, b Triple) int {
	if a.S != b.S {
		return int(a.S) - int(b.S)
	}
	return int(a.O) - int(b.O)
}

// add indexes one (already deduplicated) triple under sequence number
// seq, keeping every run sorted. Writer-only; the caller publishes the
// triple to readers afterwards by incrementing n.
func (d *genDelta) add(t Triple, seq uint32) {
	d.out.Store(t.S, insertDeltaHalf(loadHalfRun(&d.out, t.S), DeltaHalf{H: HalfEdge{P: t.P, Other: t.O}, Seq: seq}))
	d.in.Store(t.O, insertDeltaHalf(loadHalfRun(&d.in, t.O), DeltaHalf{H: HalfEdge{P: t.P, Other: t.S}, Seq: seq}))
	run := loadTripleRun(&d.byPred, t.P)
	i, _ := slices.BinarySearchFunc(run, t, func(a DeltaTriple, b Triple) int { return CompareSO(a.T, b) })
	d.byPred.Store(t.P, insertAt(run, i, DeltaTriple{T: t, Seq: seq}))
}

// addTomb indexes one tombstone under sequence number seq, mirroring add
// into the tombstone side-runs. Writer-only; the caller publishes via
// dels and n afterwards.
func (d *genDelta) addTomb(t Triple, seq uint32) {
	d.tombOut.Store(t.S, insertDeltaHalf(loadHalfRun(&d.tombOut, t.S), DeltaHalf{H: HalfEdge{P: t.P, Other: t.O}, Seq: seq}))
	d.tombIn.Store(t.O, insertDeltaHalf(loadHalfRun(&d.tombIn, t.O), DeltaHalf{H: HalfEdge{P: t.P, Other: t.S}, Seq: seq}))
	run := loadTripleRun(&d.tombByPred, t.P)
	i, _ := slices.BinarySearchFunc(run, t, func(a DeltaTriple, b Triple) int { return CompareSO(a.T, b) })
	d.tombByPred.Store(t.P, insertAt(run, i, DeltaTriple{T: t, Seq: seq}))
}

// appendOp records one op in the log and republishes the header. The
// end-append into spare capacity is safe for the same reason insertAt's
// fast path is: the write lands one past every published header's
// length, invisible to readers until the new header is stored.
func (d *genDelta) appendOp(t Triple, del bool) {
	adds := uint32(0)
	if len(d.ops) > 0 {
		adds = d.ops[len(d.ops)-1].Adds
	}
	if !del {
		adds++
	}
	d.ops = append(d.ops, deltaOp{T: t, Adds: adds, Del: del})
	hdr := d.ops
	d.opsHdr.Store(&hdr)
}

func loadHalfRun(m *sync.Map, k ID) []DeltaHalf {
	if v, ok := m.Load(k); ok {
		return v.([]DeltaHalf)
	}
	return nil
}

func loadTripleRun(m *sync.Map, k ID) []DeltaTriple {
	if v, ok := m.Load(k); ok {
		return v.([]DeltaTriple)
	}
	return nil
}

func insertDeltaHalf(run []DeltaHalf, dh DeltaHalf) []DeltaHalf {
	i, _ := slices.BinarySearchFunc(run, dh.H, func(a DeltaHalf, b HalfEdge) int { return CompareHalf(a.H, b) })
	return insertAt(run, i, dh)
}

// insertAt splices v into run at i. Readers may hold the old run
// header, so no element below len(run) is ever moved or overwritten:
// mid-run inserts copy into a fresh slice (with capacity headroom so
// future inserts can use the fast path). The one safe in-place case is
// an end-insert into spare capacity — the write lands one past every
// published header's length, invisible to readers until the new header
// is stored — which makes sorted streams of ascending keys (fresh dict
// IDs are monotone) amortized O(1) instead of a full copy per Add.
func insertAt[T any](run []T, i int, v T) []T {
	if i == len(run) && cap(run) > len(run) {
		return append(run, v)
	}
	out := make([]T, 0, 2*(len(run)+1))
	out = append(out, run[:i]...)
	out = append(out, v)
	return append(out, run[i:]...)
}

// predRangeDeltaHalf narrows a (P, Other)-sorted delta run to the
// contiguous sub-run labelled p (the DeltaHalf analogue of predRange).
func predRangeDeltaHalf(hs []DeltaHalf, p ID) []DeltaHalf {
	lo, hi := 0, len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid].H.P < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	hi = len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid].H.P <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return hs[start:lo]
}

// mergeSorted interleaves two sorted runs into one allocated slice,
// preferring base on ties (ties cannot occur between a CSR run and its
// delta — a triple lives in exactly one of the two). It backs the
// allocating single-slice snapshot accessors and the vertex/predicate
// set merges; the hot path merges inline in the match cursor instead.
func mergeSorted[T any](base, delta []T, cmp func(T, T) int) []T {
	out := make([]T, 0, len(base)+len(delta))
	i, j := 0, 0
	for i < len(base) && j < len(delta) {
		if cmp(delta[j], base[i]) < 0 {
			out = append(out, delta[j])
			j++
		} else {
			out = append(out, base[i])
			i++
		}
	}
	out = append(out, base[i:]...)
	return append(out, delta[j:]...)
}

// visibleHalf filters a delta adjacency run down to the entries a
// snapshot with visibility bound n sees, as bare half-edges. Allocates
// only when the run carries invisible entries.
func visibleHalf(run []DeltaHalf, bound uint32) []HalfEdge {
	hs := make([]HalfEdge, 0, len(run))
	for _, dh := range run {
		if dh.Seq < bound {
			hs = append(hs, dh.H)
		}
	}
	return hs
}

// visibleTriples is visibleHalf for per-predicate delta runs.
func visibleTriples(run []DeltaTriple, bound uint32) []Triple {
	ts := make([]Triple, 0, len(run))
	for _, dt := range run {
		if dt.Seq < bound {
			ts = append(ts, dt.T)
		}
	}
	return ts
}

// countVisibleHalf counts the entries of a delta run visible at bound.
func countVisibleHalf(run []DeltaHalf, bound uint32) int {
	n := 0
	for _, dh := range run {
		if dh.Seq < bound {
			n++
		}
	}
	return n
}

// countVisibleTriples is countVisibleHalf for per-predicate runs.
func countVisibleTriples(run []DeltaTriple, bound uint32) int {
	n := 0
	for _, dt := range run {
		if dt.Seq < bound {
			n++
		}
	}
	return n
}

// mergeHalf merges a CSR adjacency run and a filtered delta run in
// (P, Other) order.
func mergeHalf(base, delta []HalfEdge) []HalfEdge {
	return mergeSorted(base, delta, CompareHalf)
}

// mergeTriples merges a predicate arena run and its filtered delta run
// in (S, O) order.
func mergeTriples(base, delta []Triple) []Triple {
	return mergeSorted(base, delta, CompareSO)
}

// VisibleKey resolves latest-op-wins visibility for one key: the highest
// visible insert seq vs the highest visible tombstone seq, falling back
// to base presence when neither op is visible. The writer's Add/Delete
// preconditions (Add only when absent, Delete only when present) make
// inserts and tombstones of one key alternate, so comparing the two
// maxima is exact.
func VisibleKey(basePresent, insVis bool, insSeq uint32, tombVis bool, tombSeq uint32) bool {
	if insVis {
		return !tombVis || insSeq > tombSeq
	}
	return basePresent && !tombVis
}

// maxVisibleSeqHalf scans a (P, Other)-sorted delta run for entries
// matching key and returns whether any is visible at bound, with the
// highest visible seq.
func maxVisibleSeqHalf(run []DeltaHalf, key HalfEdge, bound uint32) (vis bool, seq uint32) {
	i, _ := slices.BinarySearchFunc(run, key, func(a DeltaHalf, b HalfEdge) int { return CompareHalf(a.H, b) })
	for ; i < len(run) && run[i].H == key; i++ {
		if run[i].Seq < bound && (!vis || run[i].Seq > seq) {
			vis, seq = true, run[i].Seq
		}
	}
	return vis, seq
}

// visibleMergedHalf merges a CSR adjacency run with its insert and
// tombstone delta runs at visibility bound, resolving each key with
// latest-op-wins. It produces exactly the run a freshly rebuilt CSR
// would serve for the visible triple set.
func visibleMergedHalf(base []HalfEdge, ins, tomb []DeltaHalf, bound uint32) []HalfEdge {
	out := make([]HalfEdge, 0, len(base)+len(ins))
	i, j, k := 0, 0, 0
	for i < len(base) || j < len(ins) || k < len(tomb) {
		var key HalfEdge
		have := false
		if i < len(base) {
			key, have = base[i], true
		}
		if j < len(ins) && (!have || CompareHalf(ins[j].H, key) < 0) {
			key, have = ins[j].H, true
		}
		if k < len(tomb) && (!have || CompareHalf(tomb[k].H, key) < 0) {
			key = tomb[k].H
		}
		basePresent := i < len(base) && base[i] == key
		if basePresent {
			i++
		}
		var insVis, tombVis bool
		var insSeq, tombSeq uint32
		for ; j < len(ins) && ins[j].H == key; j++ {
			if ins[j].Seq < bound && (!insVis || ins[j].Seq > insSeq) {
				insVis, insSeq = true, ins[j].Seq
			}
		}
		for ; k < len(tomb) && tomb[k].H == key; k++ {
			if tomb[k].Seq < bound && (!tombVis || tomb[k].Seq > tombSeq) {
				tombVis, tombSeq = true, tomb[k].Seq
			}
		}
		if VisibleKey(basePresent, insVis, insSeq, tombVis, tombSeq) {
			out = append(out, key)
		}
	}
	return out
}

// visibleMergedTriples is visibleMergedHalf for per-predicate runs.
func visibleMergedTriples(base []Triple, ins, tomb []DeltaTriple, bound uint32) []Triple {
	out := make([]Triple, 0, len(base)+len(ins))
	i, j, k := 0, 0, 0
	for i < len(base) || j < len(ins) || k < len(tomb) {
		var key Triple
		have := false
		if i < len(base) {
			key, have = base[i], true
		}
		if j < len(ins) && (!have || CompareSO(ins[j].T, key) < 0) {
			key, have = ins[j].T, true
		}
		if k < len(tomb) && (!have || CompareSO(tomb[k].T, key) < 0) {
			key = tomb[k].T
		}
		basePresent := i < len(base) && base[i] == key
		if basePresent {
			i++
		}
		var insVis, tombVis bool
		var insSeq, tombSeq uint32
		for ; j < len(ins) && ins[j].T == key; j++ {
			if ins[j].Seq < bound && (!insVis || ins[j].Seq > insSeq) {
				insVis, insSeq = true, ins[j].Seq
			}
		}
		for ; k < len(tomb) && tomb[k].T == key; k++ {
			if tomb[k].Seq < bound && (!tombVis || tomb[k].Seq > tombSeq) {
				tombVis, tombSeq = true, tomb[k].Seq
			}
		}
		if VisibleKey(basePresent, insVis, insSeq, tombVis, tombSeq) {
			out = append(out, key)
		}
	}
	return out
}

// countMergedHalf counts the visible entries of a merged (base, ins,
// tomb) adjacency run without materializing it: len(base) plus a
// per-key adjustment for every key the delta touches. O(|delta| log
// |base|) and allocation-free, so the exact-degree selectivity probes
// stay cheap with tombstones present.
func countMergedHalf(base []HalfEdge, ins, tomb []DeltaHalf, bound uint32) int {
	n := len(base)
	j, k := 0, 0
	for j < len(ins) || k < len(tomb) {
		var key HalfEdge
		if j < len(ins) && (k >= len(tomb) || CompareHalf(ins[j].H, tomb[k].H) <= 0) {
			key = ins[j].H
		} else {
			key = tomb[k].H
		}
		var insVis, tombVis bool
		var insSeq, tombSeq uint32
		for ; j < len(ins) && ins[j].H == key; j++ {
			if ins[j].Seq < bound && (!insVis || ins[j].Seq > insSeq) {
				insVis, insSeq = true, ins[j].Seq
			}
		}
		for ; k < len(tomb) && tomb[k].H == key; k++ {
			if tomb[k].Seq < bound && (!tombVis || tomb[k].Seq > tombSeq) {
				tombVis, tombSeq = true, tomb[k].Seq
			}
		}
		_, basePresent := slices.BinarySearchFunc(base, key, CompareHalf)
		if vis := VisibleKey(basePresent, insVis, insSeq, tombVis, tombSeq); vis && !basePresent {
			n++
		} else if !vis && basePresent {
			n--
		}
	}
	return n
}

// countMergedTriples is countMergedHalf for per-predicate runs.
func countMergedTriples(base []Triple, ins, tomb []DeltaTriple, bound uint32) int {
	n := len(base)
	j, k := 0, 0
	for j < len(ins) || k < len(tomb) {
		var key Triple
		if j < len(ins) && (k >= len(tomb) || CompareSO(ins[j].T, tomb[k].T) <= 0) {
			key = ins[j].T
		} else {
			key = tomb[k].T
		}
		var insVis, tombVis bool
		var insSeq, tombSeq uint32
		for ; j < len(ins) && ins[j].T == key; j++ {
			if ins[j].Seq < bound && (!insVis || ins[j].Seq > insSeq) {
				insVis, insSeq = true, ins[j].Seq
			}
		}
		for ; k < len(tomb) && tomb[k].T == key; k++ {
			if tomb[k].Seq < bound && (!tombVis || tomb[k].Seq > tombSeq) {
				tombVis, tombSeq = true, tomb[k].Seq
			}
		}
		_, basePresent := slices.BinarySearchFunc(base, key, CompareSO)
		if vis := VisibleKey(basePresent, insVis, insSeq, tombVis, tombSeq); vis && !basePresent {
			n++
		} else if !vis && basePresent {
			n--
		}
	}
	return n
}

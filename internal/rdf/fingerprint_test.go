package rdf

import (
	"fmt"
	"testing"
)

func fpDict(n int) *Dict {
	d := NewDict()
	for i := 0; i < n; i++ {
		d.MustIRI(fmt.Sprintf("http://example.org/t%d", i))
	}
	return d
}

func TestFingerprintDeterministic(t *testing.T) {
	a, b := fpDict(20), fpDict(20)
	for _, n := range []int{0, 1, 7, 20} {
		if a.Fingerprint(n) != b.Fingerprint(n) {
			t.Fatalf("prefix %d: identical dictionaries hash differently", n)
		}
	}
	if a.Fingerprint(0) == a.Fingerprint(20) {
		t.Fatal("empty and full prefixes collide")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := fpDict(10)
	// Same length, one term different.
	b := NewDict()
	for i := 0; i < 10; i++ {
		if i == 4 {
			b.MustIRI("http://example.org/OTHER")
		} else {
			b.MustIRI(fmt.Sprintf("http://example.org/t%d", i))
		}
	}
	if a.Fingerprint(10) != b.Fingerprint(10) && a.Fingerprint(4) == b.Fingerprint(4) {
		// Prefixes before the divergence agree; after it they must not.
	} else {
		t.Fatalf("fingerprint not sensitive to term content at the right position")
	}
	// Term kind matters, not just value: an IRI and a literal with the
	// same text must hash differently.
	c, d := NewDict(), NewDict()
	c.Encode(Term{Kind: IRI, Value: "x"})
	d.Encode(Term{Kind: Literal, Value: "x"})
	if c.Fingerprint(1) == d.Fingerprint(1) {
		t.Fatal("IRI vs literal of the same value collide")
	}
	// Length framing: ["ab","c"] must not collide with ["a","bc"].
	e, f := NewDict(), NewDict()
	e.MustIRI("ab")
	e.MustIRI("c")
	f.MustIRI("a")
	f.MustIRI("bc")
	if e.Fingerprint(2) == f.Fingerprint(2) {
		t.Fatal("concatenation ambiguity: length framing is broken")
	}
}

// TestFingerprintPrefixStableAcrossGrowth is the property the transport
// and WAL rely on: the dictionary is append-only, so a prefix
// fingerprint taken before later interning still verifies.
func TestFingerprintPrefixStableAcrossGrowth(t *testing.T) {
	d := fpDict(5)
	fp5 := d.Fingerprint(5)
	for i := 0; i < 100; i++ {
		d.MustIRI(fmt.Sprintf("http://example.org/extra%d", i))
	}
	if d.Fingerprint(5) != fp5 {
		t.Fatal("prefix fingerprint changed after append-only growth")
	}
}

// TestFingerprintRollingMatchesFresh: the incremental (rolling + memo)
// computation must agree with hashing from scratch in any query order.
func TestFingerprintRollingMatchesFresh(t *testing.T) {
	d := fpDict(50)
	// Out-of-order queries exercise the memo and the restart-from-zero
	// path (n < fpN forces a fresh walk).
	order := []int{50, 10, 30, 10, 50, 1, 49, 0, 25, 50}
	got := make(map[int]uint64)
	for _, n := range order {
		fp := d.Fingerprint(n)
		if prev, ok := got[n]; ok && prev != fp {
			t.Fatalf("prefix %d: unstable across queries (%x vs %x)", n, prev, fp)
		}
		got[n] = fp
	}
	// An independently built identical dictionary, queried ascending,
	// must agree with every memoized answer.
	fresh := fpDict(50)
	for n, fp := range got {
		if fresh.Fingerprint(n) != fp {
			t.Fatalf("prefix %d: rolling result diverges from fresh dictionary", n)
		}
	}
}

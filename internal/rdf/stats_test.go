package rdf

import "testing"

func statsGraph() *Graph {
	g := NewGraph(nil)
	add := func(s, p, o string) { g.AddTerms(NewIRI(s), NewIRI(p), NewIRI(o)) }
	// p: 6 triples, 3 distinct subjects, 2 distinct objects.
	add("s1", "p", "o1")
	add("s1", "p", "o2")
	add("s2", "p", "o1")
	add("s2", "p", "o2")
	add("s3", "p", "o1")
	add("s3", "p", "o2")
	// q: 2 triples, 2 subjects, 1 object.
	add("a", "q", "x")
	add("b", "q", "x")
	return g
}

func TestPredicateStats(t *testing.T) {
	g := statsGraph()
	st := NewStats(g)
	p, _ := g.Dict.Lookup(NewIRI("p"))
	ps := st.Predicate(p)
	if ps.Count != 6 || ps.DistinctSubjects != 3 || ps.DistinctObjects != 2 {
		t.Errorf("stats = %+v", ps)
	}
	q, _ := g.Dict.Lookup(NewIRI("q"))
	qs := st.Predicate(q)
	if qs.Count != 2 || qs.DistinctSubjects != 2 || qs.DistinctObjects != 1 {
		t.Errorf("stats = %+v", qs)
	}
	// Unknown predicate: zero value.
	if st.Predicate(9999).Count != 0 {
		t.Error("unknown predicate has non-zero count")
	}
}

func TestEstimateTriplePattern(t *testing.T) {
	g := statsGraph()
	st := NewStats(g)
	p, _ := g.Dict.Lookup(NewIRI("p"))
	if got := st.EstimateTriplePattern(p, false, false); got != 6 {
		t.Errorf("unbound = %d, want 6", got)
	}
	if got := st.EstimateTriplePattern(p, true, false); got != 2 {
		t.Errorf("subject bound = %d, want 6/3=2", got)
	}
	if got := st.EstimateTriplePattern(p, false, true); got != 3 {
		t.Errorf("object bound = %d, want 6/2=3", got)
	}
	if got := st.EstimateTriplePattern(p, true, true); got != 1 {
		t.Errorf("both bound = %d, want 1", got)
	}
	if got := st.EstimateTriplePattern(9999, false, false); got != 0 {
		t.Errorf("unknown predicate = %d, want 0", got)
	}
}

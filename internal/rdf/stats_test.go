package rdf

import "testing"

func statsGraph() *Graph {
	g := NewGraph(nil)
	add := func(s, p, o string) { g.AddTerms(NewIRI(s), NewIRI(p), NewIRI(o)) }
	// p: 6 triples, 3 distinct subjects, 2 distinct objects.
	add("s1", "p", "o1")
	add("s1", "p", "o2")
	add("s2", "p", "o1")
	add("s2", "p", "o2")
	add("s3", "p", "o1")
	add("s3", "p", "o2")
	// q: 2 triples, 2 subjects, 1 object.
	add("a", "q", "x")
	add("b", "q", "x")
	return g
}

func TestPredicateStats(t *testing.T) {
	g := statsGraph()
	st := NewStats(g)
	p, _ := g.Dict.Lookup(NewIRI("p"))
	ps := st.Predicate(p)
	if ps.Count != 6 || ps.DistinctSubjects != 3 || ps.DistinctObjects != 2 {
		t.Errorf("stats = %+v", ps)
	}
	q, _ := g.Dict.Lookup(NewIRI("q"))
	qs := st.Predicate(q)
	if qs.Count != 2 || qs.DistinctSubjects != 2 || qs.DistinctObjects != 1 {
		t.Errorf("stats = %+v", qs)
	}
	// Unknown predicate: zero value.
	if st.Predicate(9999).Count != 0 {
		t.Error("unknown predicate has non-zero count")
	}
}

// TestStatsRefreshOnMutation is the stale-stats regression test: the
// per-predicate cache must recompute after any Add — map mode, delta
// overlay, and across a compaction — instead of serving the counts from
// the first computation forever.
func TestStatsRefreshOnMutation(t *testing.T) {
	g := statsGraph()
	st := NewStats(g)
	p, _ := g.Dict.Lookup(NewIRI("p"))
	if got := st.Predicate(p).Count; got != 6 {
		t.Fatalf("initial count = %d, want 6", got)
	}
	// Map-mode Add.
	g.AddTerms(NewIRI("s4"), NewIRI("p"), NewIRI("o3"))
	if ps := st.Predicate(p); ps.Count != 7 || ps.DistinctSubjects != 4 || ps.DistinctObjects != 3 {
		t.Fatalf("stats after map-mode add = %+v (stale cache)", ps)
	}
	// Delta-overlay Add on the frozen graph.
	g.Freeze()
	if got := st.Predicate(p).Count; got != 7 {
		t.Fatalf("count after freeze = %d, want 7", got)
	}
	g.AddTerms(NewIRI("s5"), NewIRI("p"), NewIRI("o1"))
	if !g.Frozen() || g.DeltaLen() != 1 {
		t.Fatalf("setup: frozen=%v delta=%d", g.Frozen(), g.DeltaLen())
	}
	if ps := st.Predicate(p); ps.Count != 8 || ps.DistinctSubjects != 5 {
		t.Fatalf("stats after delta add = %+v (stale cache)", ps)
	}
	// Unchanged across compaction (same logical content).
	g.Compact()
	if ps := st.Predicate(p); ps.Count != 8 || ps.DistinctSubjects != 5 || ps.DistinctObjects != 3 {
		t.Fatalf("stats after compaction = %+v", ps)
	}
	// A brand-new predicate arriving via the delta must appear.
	g.AddTerms(NewIRI("a"), NewIRI("r"), NewIRI("b"))
	r, _ := g.Dict.Lookup(NewIRI("r"))
	if got := st.Predicate(r).Count; got != 1 {
		t.Fatalf("new delta predicate count = %d, want 1", got)
	}
}

// TestStatsFoldDeletes: tombstone ops fold into the persistent
// aggregates incrementally — counts drop, and a distinct
// subject/object retires exactly when its last carrier under the
// predicate dies, never a delete earlier.
func TestStatsFoldDeletes(t *testing.T) {
	g := statsGraph()
	g.Freeze()
	st := NewStats(g)
	p, _ := g.Dict.Lookup(NewIRI("p"))
	if got := st.Predicate(p); got.Count != 6 {
		t.Fatalf("baseline count = %d, want 6", got.Count)
	}
	del := func(s, o string) {
		t.Helper()
		sid, _ := g.Dict.Lookup(NewIRI(s))
		oid, _ := g.Dict.Lookup(NewIRI(o))
		if !g.Delete(Triple{S: sid, P: p, O: oid}) {
			t.Fatalf("Delete(%s p %s) missed", s, o)
		}
	}
	// s3 keeps (s3,p,o2), so the subject must NOT retire yet.
	del("s3", "o1")
	if ps := st.Predicate(p); ps.Count != 5 || ps.DistinctSubjects != 3 || ps.DistinctObjects != 2 {
		t.Fatalf("after first delete = %+v, want {5 3 2}", ps)
	}
	// s3's last triple: now the subject retires.
	del("s3", "o2")
	if ps := st.Predicate(p); ps.Count != 4 || ps.DistinctSubjects != 2 || ps.DistinctObjects != 2 {
		t.Fatalf("after s3 gone = %+v, want {4 2 2}", ps)
	}
	// Every remaining o1 carrier: the object retires.
	del("s1", "o1")
	del("s2", "o1")
	if ps := st.Predicate(p); ps.Count != 2 || ps.DistinctSubjects != 2 || ps.DistinctObjects != 1 {
		t.Fatalf("after o1 gone = %+v, want {2 2 1}", ps)
	}
	// A reinsert after deletes folds back in.
	g.AddTerms(NewIRI("s3"), NewIRI("p"), NewIRI("o1"))
	if ps := st.Predicate(p); ps.Count != 3 || ps.DistinctSubjects != 3 || ps.DistinctObjects != 2 {
		t.Fatalf("after reinsert = %+v, want {3 3 2}", ps)
	}
	// Compaction starts a new generation; the refold agrees.
	g.Compact()
	if ps := st.Predicate(p); ps.Count != 3 || ps.DistinctSubjects != 3 || ps.DistinctObjects != 2 {
		t.Fatalf("after compaction = %+v, want {3 3 2}", ps)
	}
	// The lock-free live counter the planner scales by tracks too:
	// 3 live p triples + 2 untouched q triples.
	if got := g.LiveTriples(); got != 5 {
		t.Fatalf("LiveTriples = %d, want 5", got)
	}
}

// TestSnapshotIdentityAccessors smokes the snapshot's identity surface
// and the delta visibility bound the cursors filter by.
func TestSnapshotIdentityAccessors(t *testing.T) {
	g := statsGraph()
	g.Freeze()
	g.AddTerms(NewIRI("s9"), NewIRI("p"), NewIRI("o9"))
	sn := g.Snapshot()
	defer sn.Close()
	if sn.Dict() != g.Dict {
		t.Error("Snapshot.Dict is not the graph's dictionary")
	}
	if sn.Graph() != g {
		t.Error("Snapshot.Graph is not the source graph")
	}
	if sn.Bound() != uint32(g.DeltaLen()) {
		t.Errorf("Bound = %d, want the pinned delta length %d", sn.Bound(), g.DeltaLen())
	}
	if g.Epoch() == 0 {
		t.Error("Epoch still 0 after mutations")
	}
	if id := g.Dict.MustLiteral("lit"); g.Dict.Decode(id).Value != "lit" {
		t.Error("MustLiteral round trip failed")
	}
	if g.Dict.String() == "" || (Triple{1, 2, 3}).String() == "" {
		t.Error("debug Strings empty")
	}
}

func TestEstimateTriplePattern(t *testing.T) {
	g := statsGraph()
	st := NewStats(g)
	p, _ := g.Dict.Lookup(NewIRI("p"))
	if got := st.EstimateTriplePattern(p, false, false); got != 6 {
		t.Errorf("unbound = %d, want 6", got)
	}
	if got := st.EstimateTriplePattern(p, true, false); got != 2 {
		t.Errorf("subject bound = %d, want 6/3=2", got)
	}
	if got := st.EstimateTriplePattern(p, false, true); got != 3 {
		t.Errorf("object bound = %d, want 6/2=3", got)
	}
	if got := st.EstimateTriplePattern(p, true, true); got != 1 {
		t.Errorf("both bound = %d, want 1", got)
	}
	if got := st.EstimateTriplePattern(9999, false, false); got != 0 {
		t.Errorf("unknown predicate = %d, want 0", got)
	}
}

package rdf

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// generation is one immutable CSR build plus the mutable delta overlay
// that accumulates on top of it. Compact builds the next generation off
// to the side and swaps the graph's generation pointer atomically;
// snapshots pinned to the old generation keep reading it untouched until
// they drain (Go's GC reclaims the arenas once the last reference
// drops; the pin count is the observability hook that tells the graph
// when to forget a retired generation).
type generation struct {
	id    uint64
	csr   *csrIndex
	base  int // triples compiled into csr (the order-prefix length)
	delta *genDelta
	pins  atomic.Int64 // snapshots currently pinning this generation

	// ord republishes the graph's order slice header after every
	// frozen-mode Add of this generation. It lives on the generation —
	// not the graph — because Compact rebuilds the order list (folding
	// tombstones away), and a snapshot must pair the generation it
	// pinned with the order array that generation's base/seq space
	// indexes into.
	ord atomic.Pointer[[]Triple]
}

// Snapshot is an immutable, lock-free read view of a graph: it pins a
// (CSR generation, delta length) pair at acquisition, so concurrent
// writer appends and even compactions are invisible to it. It is the
// only type the read path (match, exec, cluster, serve) consumes; all
// two-run accessors live here. A Snapshot is safe for concurrent use by
// many goroutines and stays valid indefinitely; Close releases its pin
// on the generation (needed only for the generation-lifecycle gauges —
// an unclosed snapshot leaks a gauge increment, not memory).
//
// Snapshots of a map-mode (never frozen) graph are a compatibility
// fallback: they read the live map indexes and are only consistent while
// no writer runs, exactly the old Graph read contract. Frozen-graph
// snapshots are the real MVCC path.
type Snapshot struct {
	g      *Graph
	gen    *generation // nil = map-mode fallback
	n      uint32      // delta visibility bound: entries with Seq < n are visible
	order  []Triple    // pinned insertion-order prefix (frozen mode)
	pinned bool
	closed atomic.Bool

	// ops is the visible op window when it contains deletes; nil for
	// insert-only windows, whose read paths are byte-for-byte the
	// two-run fast paths of the delete-free engine. With ops set, the
	// order prefix may carry stale occurrences; Triples/NumTriples
	// materialize the live list lazily (once) instead of slicing.
	ops     []deltaOp
	matOnce sync.Once
	mat     []Triple
}

// Snapshot pins the graph's current read view. The returned snapshot is
// lock-free and immune to concurrent Add/Compact; Close it when done so
// the generation gauges drain. Snapshots taken from a ViewSource view
// are shared and must not be Closed individually (the view handle owns
// the pins).
func (g *Graph) Snapshot() *Snapshot {
	s := g.snapshotAt()
	if s.gen != nil {
		s.pinned = true
		s.gen.pins.Add(1)
	}
	return s
}

// snapshotAt captures the current (generation, delta length) cut without
// pinning — the building block for Snapshot and for ViewSource views,
// which do their own pin accounting per acquired handle.
func (g *Graph) snapshotAt() *Snapshot {
	gen := g.gen.Load()
	if gen == nil {
		return &Snapshot{g: g}
	}
	// Load n before the order header: the writer publishes the order
	// first and increments n last, so the header seen here covers at
	// least the window's adds. The dels hint is loaded after n: reading
	// 0 proves no tombstone has seq < n, so the window is insert-only
	// and every op extended the order prefix.
	n := uint32(gen.delta.n.Load())
	ord := *gen.ord.Load()
	if n == 0 || gen.delta.dels.Load() == 0 {
		return &Snapshot{g: g, gen: gen, n: n, order: ord[:gen.base+int(n)]}
	}
	ops := (*gen.delta.opsHdr.Load())[:n]
	adds := int(ops[n-1].Adds)
	s := &Snapshot{g: g, gen: gen, n: n, order: ord[:gen.base+adds]}
	if int(n) > adds { // the window itself contains deletes
		s.ops = ops
	}
	return s
}

// Close releases the snapshot's generation pin. Idempotent; a nil or
// unpinned (view-owned or map-mode) snapshot is a no-op.
func (s *Snapshot) Close() {
	if s == nil || !s.pinned || s.gen == nil || s.closed.Swap(true) {
		return
	}
	s.gen.pins.Add(-1)
	s.g.pruneRetired()
}

// Dict returns the shared dictionary of the underlying graph.
func (s *Snapshot) Dict() *Dict { return s.g.Dict }

// Graph returns the graph this snapshot was taken from. The graph's
// writer-side API (Add, Compact) is NOT safe to call from readers; this
// exists for identity checks and dictionary access.
func (s *Snapshot) Graph() *Graph { return s.g }

// Bound returns the delta visibility bound: delta entries with
// Seq < Bound belong to this snapshot. The match cursor uses it to
// filter raw delta runs during its inline merges.
func (s *Snapshot) Bound() uint32 { return s.n }

// Generation returns the pinned CSR generation's id (0 in map mode).
func (s *Snapshot) Generation() uint64 {
	if s.gen == nil {
		return 0
	}
	return s.gen.id
}

// NumTriples returns the number of triples visible in this snapshot.
func (s *Snapshot) NumTriples() int {
	if s.gen == nil {
		return len(s.g.order)
	}
	if s.ops == nil {
		return len(s.order)
	}
	return len(s.materialize())
}

// Triples returns the visible triples in insertion order (a triple
// re-inserted after a delete counts from its latest insertion). The
// slice is owned by the store and must not be mutated.
func (s *Snapshot) Triples() []Triple {
	if s.gen == nil {
		return s.g.order
	}
	if s.ops == nil {
		return s.order
	}
	return s.materialize()
}

// materialize folds the snapshot's op window over its order prefix into
// the live triple list, once, caching the result. Last-op-wins per
// triple; a live triple keeps its latest insertion position, matching
// what a rebuild from scratch would produce.
func (s *Snapshot) materialize() []Triple {
	s.matOnce.Do(func() {
		state := make(map[Triple]bool, len(s.ops))
		for _, op := range s.ops {
			state[op.T] = !op.Del
		}
		out := make([]Triple, 0, len(s.order))
		var emitted map[Triple]struct{}
		for i := len(s.order) - 1; i >= 0; i-- {
			t := s.order[i]
			if live, touched := state[t]; touched {
				if !live {
					continue
				}
				if emitted == nil {
					emitted = make(map[Triple]struct{}, len(state))
				}
				if _, dup := emitted[t]; dup {
					continue
				}
				emitted[t] = struct{}{}
			}
			out = append(out, t)
		}
		slices.Reverse(out)
		s.mat = out
	})
	return s.mat
}

// Has reports whether the triple is visible in this snapshot.
func (s *Snapshot) Has(t Triple) bool {
	if s.gen == nil {
		_, ok := s.g.triples[t]
		return ok
	}
	key := HalfEdge{P: t.P, Other: t.O}
	base := predRange(s.gen.csr.out(t.S), t.P)
	_, basePresent := slices.BinarySearchFunc(base, key, CompareHalf)
	if s.n == 0 {
		return basePresent
	}
	insVis, insSeq := maxVisibleSeqHalf(predRangeDeltaHalf(loadHalfRun(&s.gen.delta.out, t.S), t.P), key, s.n)
	if s.ops == nil {
		return basePresent || insVis
	}
	tombVis, tombSeq := maxVisibleSeqHalf(predRangeDeltaHalf(loadHalfRun(&s.gen.delta.tombOut, t.S), t.P), key, s.n)
	return VisibleKey(basePresent, insVis, insSeq, tombVis, tombSeq)
}

// OutEdges2 returns the outgoing (P, Other) adjacency of vertex v as
// zero-copy runs: the immutable CSR run plus the raw insert and
// tombstone delta runs, all sorted by (P, Other). Delta entries with
// Seq >= Bound() belong to writes after this snapshot and must be
// skipped by the caller (the match cursor does this inline; the
// allocating OutEdges pre-filters). The tombstone run is nil whenever
// the snapshot's window is insert-only — the common case, where callers
// keep their two-run merge. In map mode both delta runs are nil and the
// base run is in insertion order.
func (s *Snapshot) OutEdges2(v ID) (base []HalfEdge, ins, tomb []DeltaHalf) {
	if s.gen == nil {
		return s.g.out[v], nil, nil
	}
	if s.n == 0 { // empty visible delta: skip the side-index lookup
		return s.gen.csr.out(v), nil, nil
	}
	if s.ops != nil {
		tomb = loadHalfRun(&s.gen.delta.tombOut, v)
	}
	return s.gen.csr.out(v), loadHalfRun(&s.gen.delta.out, v), tomb
}

// InEdges2 is OutEdges2 for incoming edges of v.
func (s *Snapshot) InEdges2(v ID) (base []HalfEdge, ins, tomb []DeltaHalf) {
	if s.gen == nil {
		return s.g.in[v], nil, nil
	}
	if s.n == 0 {
		return s.gen.csr.in(v), nil, nil
	}
	if s.ops != nil {
		tomb = loadHalfRun(&s.gen.delta.tombIn, v)
	}
	return s.gen.csr.in(v), loadHalfRun(&s.gen.delta.in, v), tomb
}

// OutRun2 narrows OutEdges2 to the sub-runs labelled p. On a frozen
// graph the runs are binary-searched and exact is true; in map mode it
// returns the full adjacency with exact false and the caller filters by
// P. The delta runs are raw: filter by Seq < Bound().
func (s *Snapshot) OutRun2(v, p ID) (base []HalfEdge, ins, tomb []DeltaHalf, exact bool) {
	if s.gen == nil {
		return s.g.out[v], nil, nil, false
	}
	if s.n == 0 {
		return predRange(s.gen.csr.out(v), p), nil, nil, true
	}
	if s.ops != nil {
		tomb = predRangeDeltaHalf(loadHalfRun(&s.gen.delta.tombOut, v), p)
	}
	return predRange(s.gen.csr.out(v), p), predRangeDeltaHalf(loadHalfRun(&s.gen.delta.out, v), p), tomb, true
}

// InRun2 is OutRun2 for incoming edges of v.
func (s *Snapshot) InRun2(v, p ID) (base []HalfEdge, ins, tomb []DeltaHalf, exact bool) {
	if s.gen == nil {
		return s.g.in[v], nil, nil, false
	}
	if s.n == 0 {
		return predRange(s.gen.csr.in(v), p), nil, nil, true
	}
	if s.ops != nil {
		tomb = predRangeDeltaHalf(loadHalfRun(&s.gen.delta.tombIn, v), p)
	}
	return predRange(s.gen.csr.in(v), p), predRangeDeltaHalf(loadHalfRun(&s.gen.delta.in, v), p), tomb, true
}

// ByPredicate2 returns the triples labelled p as zero-copy runs: the
// CSR arena run plus the raw insert and tombstone delta runs, all
// sorted by (S, O) when frozen. The delta runs are raw: filter by
// Seq < Bound(). In map mode both delta runs are nil and the base run
// is in insertion order.
func (s *Snapshot) ByPredicate2(p ID) (base []Triple, ins, tomb []DeltaTriple) {
	if s.gen == nil {
		return s.g.byPred[p], nil, nil
	}
	if s.n == 0 {
		return s.gen.csr.pred(p), nil, nil
	}
	if s.ops != nil {
		tomb = loadTripleRun(&s.gen.delta.tombByPred, p)
	}
	return s.gen.csr.pred(p), loadTripleRun(&s.gen.delta.byPred, p), tomb
}

// OutEdges returns the outgoing adjacency of v merged into one run
// sorted by (P, Other). It allocates when v has visible delta edges;
// the matcher uses OutEdges2 instead.
func (s *Snapshot) OutEdges(v ID) []HalfEdge {
	base, ins, tomb := s.OutEdges2(v)
	if len(tomb) > 0 {
		return visibleMergedHalf(base, ins, tomb, s.n)
	}
	if len(ins) == 0 {
		return base
	}
	return mergeHalf(base, visibleHalf(ins, s.n))
}

// InEdges is OutEdges for incoming edges of v.
func (s *Snapshot) InEdges(v ID) []HalfEdge {
	base, ins, tomb := s.InEdges2(v)
	if len(tomb) > 0 {
		return visibleMergedHalf(base, ins, tomb, s.n)
	}
	if len(ins) == 0 {
		return base
	}
	return mergeHalf(base, visibleHalf(ins, s.n))
}

// OutRun returns v's outgoing edges labelled p, merged. exact is false
// in map mode, where the caller must filter by P.
func (s *Snapshot) OutRun(v, p ID) (run []HalfEdge, exact bool) {
	base, ins, tomb, exact := s.OutRun2(v, p)
	if len(tomb) > 0 {
		return visibleMergedHalf(base, ins, tomb, s.n), exact
	}
	if len(ins) == 0 {
		return base, exact
	}
	return mergeHalf(base, visibleHalf(ins, s.n)), exact
}

// InRun is OutRun for incoming edges of v.
func (s *Snapshot) InRun(v, p ID) (run []HalfEdge, exact bool) {
	base, ins, tomb, exact := s.InRun2(v, p)
	if len(tomb) > 0 {
		return visibleMergedHalf(base, ins, tomb, s.n), exact
	}
	if len(ins) == 0 {
		return base, exact
	}
	return mergeHalf(base, visibleHalf(ins, s.n)), exact
}

// ByPredicate returns all visible triples labelled p, merged into one
// (S, O)-sorted run when frozen.
func (s *Snapshot) ByPredicate(p ID) []Triple {
	base, ins, tomb := s.ByPredicate2(p)
	if len(tomb) > 0 {
		return visibleMergedTriples(base, ins, tomb, s.n)
	}
	if len(ins) == 0 {
		return base
	}
	return mergeTriples(base, visibleTriples(ins, s.n))
}

// OutDegree returns the number of visible outgoing edges of v.
func (s *Snapshot) OutDegree(v ID) int {
	base, ins, tomb := s.OutEdges2(v)
	if len(tomb) > 0 {
		return countMergedHalf(base, ins, tomb, s.n)
	}
	return len(base) + countVisibleHalf(ins, s.n)
}

// InDegree is OutDegree for incoming edges.
func (s *Snapshot) InDegree(v ID) int {
	base, ins, tomb := s.InEdges2(v)
	if len(tomb) > 0 {
		return countMergedHalf(base, ins, tomb, s.n)
	}
	return len(base) + countVisibleHalf(ins, s.n)
}

// Degree returns the total (out + in) degree of v.
func (s *Snapshot) Degree(v ID) int { return s.OutDegree(v) + s.InDegree(v) }

// OutDegreeP returns the number of visible outgoing edges of v labelled
// p: an exact (vertex, predicate) selectivity. O(log deg + delta) when
// frozen, O(deg) in map mode.
func (s *Snapshot) OutDegreeP(v, p ID) int {
	base, ins, tomb, exact := s.OutRun2(v, p)
	if exact {
		if len(tomb) > 0 {
			return countMergedHalf(base, ins, tomb, s.n)
		}
		return len(base) + countVisibleHalf(ins, s.n)
	}
	n := 0
	for _, h := range base {
		if h.P == p {
			n++
		}
	}
	return n
}

// InDegreeP is OutDegreeP for incoming edges.
func (s *Snapshot) InDegreeP(v, p ID) int {
	base, ins, tomb, exact := s.InRun2(v, p)
	if exact {
		if len(tomb) > 0 {
			return countMergedHalf(base, ins, tomb, s.n)
		}
		return len(base) + countVisibleHalf(ins, s.n)
	}
	n := 0
	for _, h := range base {
		if h.P == p {
			n++
		}
	}
	return n
}

// PredicateCount returns the number of visible triples labelled p.
func (s *Snapshot) PredicateCount(p ID) int {
	base, ins, tomb := s.ByPredicate2(p)
	if len(tomb) > 0 {
		return countMergedTriples(base, ins, tomb, s.n)
	}
	return len(base) + countVisibleTriples(ins, s.n)
}

// Predicates returns the distinct visible properties in ascending ID
// order.
func (s *Snapshot) Predicates() []ID {
	if s.gen == nil {
		ps := make([]ID, 0, len(s.g.byPred))
		for p := range s.g.byPred {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		return ps
	}
	c := s.gen.csr
	if s.n == 0 {
		return c.preds
	}
	if s.ops != nil {
		// Deletes pending: a predicate stays only while a live triple
		// carries it. Derive the set from the materialized triple list,
		// exactly as a rebuild would.
		seen := make(map[ID]struct{})
		ps := make([]ID, 0, len(c.preds))
		for _, t := range s.materialize() {
			if _, dup := seen[t.P]; !dup {
				seen[t.P] = struct{}{}
				ps = append(ps, t.P)
			}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		return ps
	}
	var extra []ID
	s.gen.delta.byPred.Range(func(k, v any) bool {
		p := k.(ID)
		if len(c.pred(p)) == 0 && countVisibleTriples(v.([]DeltaTriple), s.n) > 0 {
			extra = append(extra, p)
		}
		return true
	})
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return mergeIDs(c.preds, extra)
}

// Vertices returns the distinct visible vertices (subjects ∪ objects) in
// ascending ID order.
func (s *Snapshot) Vertices() []ID {
	if s.gen == nil {
		seen := make(map[ID]struct{}, len(s.g.out)+len(s.g.in))
		for v := range s.g.out {
			seen[v] = struct{}{}
		}
		for v := range s.g.in {
			seen[v] = struct{}{}
		}
		vs := make([]ID, 0, len(seen))
		for v := range seen {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		return vs
	}
	c := s.gen.csr
	if s.n == 0 {
		return c.verts
	}
	if s.ops != nil {
		// Deletes pending: derive the vertex set from the materialized
		// triple list, exactly as a rebuild would.
		seen := make(map[ID]struct{})
		for _, t := range s.materialize() {
			seen[t.S] = struct{}{}
			seen[t.O] = struct{}{}
		}
		vs := make([]ID, 0, len(seen))
		for v := range seen {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		return vs
	}
	seen := make(map[ID]struct{})
	for _, side := range []*sync.Map{&s.gen.delta.out, &s.gen.delta.in} {
		side.Range(func(k, v any) bool {
			id := k.(ID)
			if _, dup := seen[id]; dup {
				return true
			}
			if len(c.out(id)) > 0 || len(c.in(id)) > 0 {
				return true // already in the CSR vertex set
			}
			if countVisibleHalf(v.([]DeltaHalf), s.n) > 0 {
				seen[id] = struct{}{}
			}
			return true
		})
	}
	extra := make([]ID, 0, len(seen))
	for v := range seen {
		extra = append(extra, v)
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return mergeIDs(c.verts, extra)
}

// NumVertices returns the number of distinct visible vertices.
func (s *Snapshot) NumVertices() int { return len(s.Vertices()) }
